package sim

import (
	"testing"

	"streamline/internal/core"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/triangel"
	"streamline/internal/trace"
	"streamline/internal/workloads"
)

// Temporal prefetcher factories for the scaled-down test system: the LLC is
// 256KB (256 sets x 16 ways), so the metadata partition ceiling is 128KB.
const testMetaBytes = 128 << 10

func streamlineFactory(b meta.Bridge) prefetch.Prefetcher {
	o := core.DefaultOptions()
	o.MetaBytes = testMetaBytes
	o.MinSets = 16
	return core.New(o, b)
}

func triangelFactory(b meta.Bridge) prefetch.Prefetcher {
	c := triangel.DefaultConfig()
	c.MetaBytes = testMetaBytes
	return triangel.New(c, b)
}

// coverage returns the fraction of would-be L2 misses covered by prefetches.
func coverage(base, pf Result) float64 {
	bm := base.Cores[0].L2.DemandMisses
	pm := pf.Cores[0].L2.DemandMisses
	if bm == 0 {
		return 0
	}
	if pm > bm {
		return 0
	}
	return float64(bm-pm) / float64(bm)
}

func runTemporal(t *testing.T, workload string, temporal TemporalFactory) (base, pf Result) {
	t.Helper()
	cfg := smallConfig(1)
	cfg.WarmupInstructions = 400_000
	cfg.MeasureInstructions = 800_000
	base = New(cfg).RunTrace(traceFor(t, workload, 21))

	cfg2 := cfg
	cfg2.Temporal = temporal
	pf = New(cfg2).RunTrace(traceFor(t, workload, 21))
	return base, pf
}

func TestStreamlineSpeedsUpPointerChase(t *testing.T) {
	base, pf := runTemporal(t, "sphinx06", streamlineFactory)
	speedup := pf.IPC() / base.IPC()
	if speedup < 1.3 {
		t.Errorf("Streamline speedup on stable chase = %.3f, want >= 1.3 (base %.4f, pf %.4f)",
			speedup, base.IPC(), pf.IPC())
	}
	if cov := coverage(base, pf); cov < 0.3 {
		t.Errorf("Streamline coverage = %.2f, want >= 0.3", cov)
	}
}

func TestTriangelSpeedsUpPointerChase(t *testing.T) {
	base, pf := runTemporal(t, "sphinx06", triangelFactory)
	speedup := pf.IPC() / base.IPC()
	if speedup < 1.2 {
		t.Errorf("Triangel speedup on stable chase = %.3f, want >= 1.2 (base %.4f, pf %.4f)",
			speedup, base.IPC(), pf.IPC())
	}
}

func TestStreamlineCoverageBeatsTriangelUnderCapacityPressure(t *testing.T) {
	// The headline claim: same metadata budget, 33% more correlations,
	// higher coverage. Run the chase at a footprint (~40K lines) that
	// exceeds both stores' capacity (24K pairwise vs 32K stream
	// correlations at the 128KB test budget), so storage efficiency
	// decides coverage.
	w, err := workloads.Get("sphinx06")
	if err != nil {
		t.Fatal(err)
	}
	mk := func() trace.Trace {
		return w.NewTrace(workloads.Scale{Footprint: 0.14}, 21)
	}
	cfg := smallConfig(1)
	cfg.WarmupInstructions = 400_000
	cfg.MeasureInstructions = 800_000
	base := New(cfg).RunTrace(mk())
	cfgS := cfg
	cfgS.Temporal = streamlineFactory
	str := New(cfgS).RunTrace(mk())
	cfgT := cfg
	cfgT.Temporal = triangelFactory
	tri := New(cfgT).RunTrace(mk())
	cs, ct := coverage(base, str), coverage(base, tri)
	if cs <= ct {
		t.Errorf("Streamline coverage %.3f <= Triangel %.3f", cs, ct)
	}
}

func TestTemporalPrefetchersGenerateMetadataTraffic(t *testing.T) {
	_, pf := runTemporal(t, "sphinx06", streamlineFactory)
	m := pf.Cores[0].Meta
	if m.Reads == 0 || m.Writes == 0 {
		t.Errorf("no metadata traffic: %+v", m)
	}
	if pf.LLC.MetaReads == 0 {
		t.Error("LLC saw no metadata reads")
	}
}

func TestStreamlineMetadataTrafficBelowTriangel(t *testing.T) {
	// Figure 13b: the stream format cuts metadata traffic.
	_, str := runTemporal(t, "sphinx06", streamlineFactory)
	_, tri := runTemporal(t, "sphinx06", triangelFactory)
	st, tt := str.Cores[0].Meta.Traffic(), tri.Cores[0].Meta.Traffic()
	if st >= tt {
		t.Errorf("Streamline metadata traffic %d >= Triangel %d", st, tt)
	}
}

func TestTriangelRearrangementTrafficExists(t *testing.T) {
	// Triangel's dynamic partitioner must shuffle metadata when it
	// resizes; Streamline must never.
	_, tri := runTemporal(t, "mcf06", triangelFactory)
	_, str := runTemporal(t, "mcf06", streamlineFactory)
	if str.Cores[0].Meta.RearrangeReads+str.Cores[0].Meta.RearrangeWrites != 0 {
		t.Error("Streamline generated rearrangement traffic")
	}
	if tri.Cores[0].Meta.Resizes == 0 {
		t.Skip("Triangel never resized in this short run")
	}
	_ = tri
}

func TestTemporalUselessOnStreaming(t *testing.T) {
	// Streaming with a stride prefetcher leaves nothing for temporal
	// prefetching; it must not hurt much.
	cfg := smallConfig(1)
	cfg.L1DPrefetcher = strideFactory
	base := New(cfg).RunTrace(traceFor(t, "libquantum06", 22))

	cfg2 := cfg
	cfg2.Temporal = streamlineFactory
	pf := New(cfg2).RunTrace(traceFor(t, "libquantum06", 22))
	ratio := pf.IPC() / base.IPC()
	if ratio < 0.85 {
		t.Errorf("Streamline hurt streaming by %.1f%%", (1-ratio)*100)
	}
}

func TestDedicatedMetadataDoesNotReserveLLC(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Temporal = triangelFactory
	cfg.DedicatedMetadata = true
	sys := New(cfg)
	llc := sys.LLC()
	reserved := 0
	for s := 0; s < llc.Sets(); s++ {
		reserved += llc.ReservedWays(s)
	}
	if reserved != 0 {
		t.Errorf("dedicated metadata still reserved %d ways", reserved)
	}
}

func TestLLCPartitionReservedForStreamline(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Temporal = streamlineFactory
	sys := New(cfg)
	llc := sys.LLC()
	reserved := 0
	for s := 0; s < llc.Sets(); s++ {
		reserved += llc.ReservedWays(s)
	}
	if reserved == 0 {
		t.Error("Streamline reserved no LLC capacity")
	}
}

func TestMultiCoreTemporalRunCompletes(t *testing.T) {
	cfg := smallConfig(2)
	cfg.MeasureInstructions = 200_000
	cfg.Temporal = streamlineFactory
	sys := New(cfg)
	sys.SetTrace(0, traceFor(t, "sphinx06", 23))
	sys.SetTrace(1, traceFor(t, "pr", 23))
	res := sys.Run()
	for i, c := range res.Cores {
		if c.IPC <= 0 {
			t.Errorf("core %d IPC = %v", i, c.IPC)
		}
	}
}
