// Package serve is the simulation-as-a-service layer behind cmd/streamd: an
// HTTP JSON daemon that accepts simulation requests carrying the same knobs
// as cmd/streamsim's flags, validates them against the workload and
// prefetcher registries, and executes them on a bounded worker pool with
// per-request fault isolation (internal/exp/runner's policy: panic
// isolation, per-attempt timeout).
//
// Three layers keep repeated work off the simulator:
//
//   - single-flight batching: N concurrent identical requests run one
//     simulation and share its response bytes;
//   - an in-memory LRU over marshaled response bodies;
//   - an optional content-addressed durable store (internal/exp/store, the
//     same SHA-256 record format as cmd/experiments' -checkpoint sweeps),
//     so results survive restarts and replay with checksum verification.
//
// Because a simulation is a pure function of its Spec, a cached reply is
// byte-identical to a cold one: the response body is marshaled exactly once
// and the same bytes are served from every layer.
package serve

import (
	"fmt"
	"strings"

	"streamline/internal/cache"
	"streamline/internal/core"
	"streamline/internal/dram"
	"streamline/internal/exp/store"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/berti"
	"streamline/internal/prefetch/bingo"
	"streamline/internal/prefetch/ipcp"
	"streamline/internal/prefetch/spp"
	"streamline/internal/prefetch/stms"
	"streamline/internal/prefetch/stride"
	"streamline/internal/prefetch/triage"
	"streamline/internal/prefetch/triangel"
	"streamline/internal/sim"
	"streamline/internal/workloads"
)

// FormatFingerprint names the request/response format version. It is mixed
// into every content-addressed result key and pinned in the store manifest,
// so a format change can never replay stale records.
const FormatFingerprint = "streamd-v1"

// The accepted values for each prefetcher slot, in the order flag help and
// validation errors list them.
var (
	L1Options       = []string{"none", "stride", "berti"}
	L2Options       = []string{"none", "ipcp", "bingo", "spp"}
	TemporalOptions = []string{"none", "triage", "triangel", "streamline", "streamline-bypass", "stms"}
)

// Defaults for every optional Spec field; a zero value selects its default
// (and an empty prefetcher slot selects cmd/streamsim's flag default).
const (
	DefaultL1        = "stride"
	DefaultL2        = "none"
	DefaultTemporal  = "none"
	DefaultCores     = 1
	DefaultFootprint = 0.1
	DefaultWarmup    = 400_000
	DefaultMeasure   = 1_200_000
	DefaultMetaKB    = 128
	DefaultLLCSets   = 256
	DefaultSeed      = 1
)

// Service-side bounds: one request may not be arbitrarily expensive.
const (
	MaxCores        = 16
	MaxInstructions = 100_000_000 // warmup + measure, per core
	MaxLLCSets      = 8192
	MaxMetaKB       = 16384
)

// Spec is one simulation request — the same knobs as cmd/streamsim's flags.
// The zero value of every field except Workload selects its default, so the
// minimal request is {"workload":"sphinx06"}.
type Spec struct {
	Workload  string  `json:"workload"`
	L1        string  `json:"l1,omitempty"`
	L2        string  `json:"l2,omitempty"`
	Temporal  string  `json:"temporal,omitempty"`
	Cores     int     `json:"cores,omitempty"`
	Footprint float64 `json:"footprint,omitempty"`
	Warmup    uint64  `json:"warmup,omitempty"`
	Measure   uint64  `json:"measure,omitempty"`
	MetaKB    int     `json:"metaKb,omitempty"`
	LLCSets   int     `json:"llcSets,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
}

// optionList renders allowed values for an error message: "a, b or c".
func optionList(opts []string) string {
	if len(opts) < 2 {
		return strings.Join(opts, "")
	}
	return strings.Join(opts[:len(opts)-1], ", ") + " or " + opts[len(opts)-1]
}

func validOption(v string, opts []string) bool {
	for _, o := range opts {
		if v == o {
			return true
		}
	}
	return false
}

// workloadNames lists every registered workload for validation errors.
func workloadNames() string {
	names := make([]string, 0, len(workloads.All()))
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	return strings.Join(names, ", ")
}

// Normalize fills defaults into zero-valued fields and validates everything
// against the registries and service bounds. The returned error names the
// offending knob and the allowed values, so it is directly servable as a 400
// body or a CLI usage error.
func (sp *Spec) Normalize() error {
	if sp.L1 == "" {
		sp.L1 = DefaultL1
	}
	if sp.L2 == "" {
		sp.L2 = DefaultL2
	}
	if sp.Temporal == "" {
		sp.Temporal = DefaultTemporal
	}
	if sp.Cores == 0 {
		sp.Cores = DefaultCores
	}
	if sp.Footprint == 0 {
		sp.Footprint = DefaultFootprint
	}
	if sp.Warmup == 0 {
		sp.Warmup = DefaultWarmup
	}
	if sp.Measure == 0 {
		sp.Measure = DefaultMeasure
	}
	if sp.MetaKB == 0 {
		sp.MetaKB = DefaultMetaKB
	}
	if sp.LLCSets == 0 {
		sp.LLCSets = DefaultLLCSets
	}
	if sp.Seed == 0 {
		sp.Seed = DefaultSeed
	}

	if sp.Workload == "" {
		return fmt.Errorf("missing workload (want one of %s)", workloadNames())
	}
	if _, err := workloads.Get(sp.Workload); err != nil {
		return fmt.Errorf("unknown workload %q (want one of %s)", sp.Workload, workloadNames())
	}
	if !validOption(sp.L1, L1Options) {
		return fmt.Errorf("unknown l1 prefetcher %q (want %s)", sp.L1, optionList(L1Options))
	}
	if !validOption(sp.L2, L2Options) {
		return fmt.Errorf("unknown l2 prefetcher %q (want %s)", sp.L2, optionList(L2Options))
	}
	if !validOption(sp.Temporal, TemporalOptions) {
		return fmt.Errorf("unknown temporal prefetcher %q (want %s)", sp.Temporal, optionList(TemporalOptions))
	}
	if sp.Cores < 1 || sp.Cores > MaxCores {
		return fmt.Errorf("cores must be between 1 and %d, got %d", MaxCores, sp.Cores)
	}
	if sp.Footprint <= 0 || sp.Footprint > 1 {
		return fmt.Errorf("footprint must be in (0, 1], got %g", sp.Footprint)
	}
	if sp.Measure < 1 {
		return fmt.Errorf("measure must be at least 1 instruction")
	}
	if sp.Warmup > MaxInstructions || sp.Measure > MaxInstructions ||
		sp.Warmup+sp.Measure > MaxInstructions {
		return fmt.Errorf("warmup+measure must not exceed %d instructions, got %d",
			MaxInstructions, sp.Warmup+sp.Measure)
	}
	if sp.MetaKB < 1 || sp.MetaKB > MaxMetaKB {
		return fmt.Errorf("metaKb must be between 1 and %d, got %d", MaxMetaKB, sp.MetaKB)
	}
	if sp.LLCSets < 16 || sp.LLCSets > MaxLLCSets || sp.LLCSets&(sp.LLCSets-1) != 0 {
		return fmt.Errorf("llcSets must be a power of two between 16 and %d, got %d",
			MaxLLCSets, sp.LLCSets)
	}
	return nil
}

// ID is the canonical human-readable identity of a normalized spec; two
// requests that simulate the same configuration have equal IDs.
func (sp Spec) ID() string {
	return fmt.Sprintf("%s|%s|%s|%s|x%d|fp%g|w%d|m%d|meta%d|llc%d|seed%d",
		sp.Workload, sp.L1, sp.L2, sp.Temporal, sp.Cores, sp.Footprint,
		sp.Warmup, sp.Measure, sp.MetaKB, sp.LLCSets, sp.Seed)
}

// Key is the content-addressed result key for a normalized spec — the same
// length-prefixed SHA-256 scheme the sweep store uses, salted with the
// format fingerprint.
func (sp Spec) Key() string {
	return store.Key("streamd-sim", FormatFingerprint, sp.ID())
}

// ServiceManifest is the manifest under which streamd opens its result
// store: a fixed pseudo-scale naming the request format, so a daemon pointed
// at a sweep directory (or vice versa) fails fast instead of mixing records.
func ServiceManifest() store.Manifest {
	return store.Manifest{
		Version:   store.Version,
		ScaleName: "streamd",
		ScaleFP:   FormatFingerprint,
		Seed:      0,
	}
}

// Config builds the system configuration for a normalized spec, mirroring
// cmd/streamsim's flag wiring exactly (so CLI and daemon runs of the same
// knobs produce identical results).
func (sp Spec) Config() (sim.Config, error) {
	cfg := sim.DefaultConfig(sp.Cores)
	cfg.LLC.Sets = sp.LLCSets
	cfg.L2.Sets = max(64, sp.LLCSets/2)
	cfg.WarmupInstructions = sp.Warmup
	cfg.MeasureInstructions = sp.Measure

	switch sp.L1 {
	case "stride":
		cfg.L1DPrefetcher = func() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) }
	case "berti":
		cfg.L1DPrefetcher = func() prefetch.Prefetcher { return berti.New(berti.DefaultConfig) }
	case "none":
	default:
		return sim.Config{}, fmt.Errorf("unknown l1 prefetcher %q (want %s)", sp.L1, optionList(L1Options))
	}
	switch sp.L2 {
	case "ipcp":
		cfg.L2Prefetcher = func() prefetch.Prefetcher { return ipcp.New(ipcp.DefaultConfig) }
	case "bingo":
		cfg.L2Prefetcher = func() prefetch.Prefetcher { return bingo.New(bingo.DefaultConfig) }
	case "spp":
		cfg.L2Prefetcher = func() prefetch.Prefetcher { return spp.New(spp.DefaultConfig) }
	case "none":
	default:
		return sim.Config{}, fmt.Errorf("unknown l2 prefetcher %q (want %s)", sp.L2, optionList(L2Options))
	}
	metaBytes := sp.MetaKB << 10
	llcSets := sp.LLCSets
	switch sp.Temporal {
	case "triage":
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			c := triage.DefaultConfig()
			c.MetaBytes = metaBytes
			return triage.New(c, b)
		}
	case "triangel":
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			c := triangel.DefaultConfig()
			c.MetaBytes = metaBytes
			return triangel.New(c, b)
		}
	case "streamline", "streamline-bypass":
		bypass := sp.Temporal == "streamline-bypass"
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			o := core.DefaultOptions()
			o.MetaBytes = metaBytes
			o.MinSets = max(8, llcSets/16)
			o.Bypass = bypass
			return core.New(o, b)
		}
	case "stms":
		cfg.TemporalDRAM = func(d *dram.DRAM) prefetch.Prefetcher {
			return stms.New(stms.DefaultConfig(), d)
		}
	case "none":
	default:
		return sim.Config{}, fmt.Errorf("unknown temporal prefetcher %q (want %s)", sp.Temporal, optionList(TemporalOptions))
	}
	return cfg, nil
}

// NewSystem builds the simulated system for cfg and attaches one trace of
// the spec's workload per core, seeded the way cmd/streamsim seeds them.
// cfg should come from Config (possibly with audit/telemetry attached).
func (sp Spec) NewSystem(cfg sim.Config) (*sim.System, error) {
	w, err := workloads.Get(sp.Workload)
	if err != nil {
		return nil, err
	}
	sys := sim.New(cfg)
	for c := 0; c < sp.Cores; c++ {
		sys.SetTrace(c, w.NewTrace(workloads.Scale{Footprint: sp.Footprint}, sp.Seed+int64(c)))
	}
	return sys, nil
}

// Result is the response document: the run configuration, every core's raw
// statistics plus the derived rates the tables print, and the per-engine
// prefetch lifecycle attribution. cmd/streamsim's -json emits the same
// document.
type Result struct {
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`
	L1       string `json:"l1"`
	L2       string `json:"l2"`
	Temporal string `json:"temporal"`
	Seed     int64  `json:"seed"`

	CoreResults []CoreResult `json:"coreResults"`
	LLC         cache.Stats  `json:"llc"`
	DRAM        dram.Stats   `json:"dram"`
}

// CoreResult is one core's slice of the Result document.
type CoreResult struct {
	Core             int     `json:"core"`
	Instructions     uint64  `json:"instructions"`
	Cycles           uint64  `json:"cycles"`
	IPC              float64 `json:"ipc"`
	L1DMPKI          float64 `json:"l1dMpki"`
	L2MPKI           float64 `json:"l2Mpki"`
	PrefetchAccuracy float64 `json:"prefetchAccuracy"`

	L1D cache.Stats `json:"l1d"`
	L2  cache.Stats `json:"l2"`

	PrefetchesIssued uint64             `json:"prefetchesIssued"`
	Prefetchers      []PrefetcherResult `json:"prefetchers"`
	Meta             meta.Stats         `json:"meta"`
}

// PrefetcherResult is one engine's lifecycle attribution within a CoreResult.
type PrefetcherResult struct {
	Source           string  `json:"source"`
	Issued           uint64  `json:"issued"`
	DroppedDuplicate uint64  `json:"droppedDuplicate"`
	Fills            uint64  `json:"fills"`
	UsefulTimely     uint64  `json:"usefulTimely"`
	UsefulLate       uint64  `json:"usefulLate"`
	EvictedUnused    uint64  `json:"evictedUnused"`
	Accuracy         float64 `json:"accuracy"`
	Pollution        float64 `json:"pollution"`
}

// BuildResult assembles the response document for a normalized spec's run.
func BuildResult(sp Spec, res sim.Result) Result {
	out := Result{
		Workload: sp.Workload, Cores: sp.Cores, L1: sp.L1, L2: sp.L2,
		Temporal: sp.Temporal, Seed: sp.Seed,
		LLC: res.LLC, DRAM: res.DRAM,
	}
	for i, c := range res.Cores {
		cr := CoreResult{
			Core:             i,
			Instructions:     c.Instructions,
			Cycles:           c.Cycles,
			IPC:              c.IPC,
			L1DMPKI:          c.L1DMPKI(),
			L2MPKI:           c.L2MPKI(),
			PrefetchAccuracy: c.PrefetchAccuracy(),
			L1D:              c.L1D,
			L2:               c.L2,
			PrefetchesIssued: c.PrefetchesIssued,
			Meta:             c.Meta,
		}
		for _, p := range c.Prefetchers {
			cr.Prefetchers = append(cr.Prefetchers, PrefetcherResult{
				Source:           p.Source,
				Issued:           p.Issued,
				DroppedDuplicate: p.DroppedDuplicate,
				Fills:            p.Fills,
				UsefulTimely:     p.UsefulTimely,
				UsefulLate:       p.UsefulLate,
				EvictedUnused:    p.EvictedUnused,
				Accuracy:         p.Accuracy(),
				Pollution:        p.Pollution(),
			})
		}
		out.CoreResults = append(out.CoreResults, cr)
	}
	return out
}
