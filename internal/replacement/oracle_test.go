package replacement

import (
	"math/rand"
	"testing"

	"streamline/internal/mem"
)

// Figure 6's example: trigger B is unstable (its successor alternates), so
// MIN — which maximizes trigger hits — stores B's correlations yet covers
// nothing, while TP-MIN stores the stable (A, B) correlation and covers the
// repeats.
func TestFig6TPMINBeatsMINOnUnstableTrigger(t *testing.T) {
	const (
		A mem.Line = 1
		B mem.Line = 2
	)
	// Periodic stream A, B, k, B, k' where every k is fresh: trigger B is
	// hot (recurs soonest) but its successor never repeats, while (A -> B)
	// recurs every period. MIN pins B's entry and covers nothing; TP-MIN
	// keeps (A, B) and covers every period.
	var lines []mem.Line
	k := mem.Line(100)
	for period := 0; period < 10; period++ {
		lines = append(lines, A, B, k, B, k+1)
		k += 2
	}
	stream := CorrelationsOf(lines)

	minStats := ReplayOracle(stream, 1, MIN)
	tpStats := ReplayOracle(stream, 1, TPMIN)

	if tpStats.CorrelationHits <= minStats.CorrelationHits {
		t.Errorf("TP-MIN correlation hits (%d) should exceed MIN's (%d)",
			tpStats.CorrelationHits, minStats.CorrelationHits)
	}
	if tpStats.CorrelationHitRate() == 0 {
		t.Error("TP-MIN covered nothing on a stream with a stable correlation")
	}
}

func TestOracleStatsRates(t *testing.T) {
	s := OracleStats{Lookups: 10, TriggerHits: 5, CorrelationHits: 2}
	if s.TriggerHitRate() != 0.5 {
		t.Errorf("TriggerHitRate = %v, want 0.5", s.TriggerHitRate())
	}
	if s.CorrelationHitRate() != 0.2 {
		t.Errorf("CorrelationHitRate = %v, want 0.2", s.CorrelationHitRate())
	}
	var zero OracleStats
	if zero.TriggerHitRate() != 0 || zero.CorrelationHitRate() != 0 {
		t.Error("zero-lookup rates should be 0")
	}
}

func TestCorrelationsOf(t *testing.T) {
	lines := []mem.Line{1, 2, 3}
	got := CorrelationsOf(lines)
	want := []Correlation{{1, 2}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d correlations, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("correlation %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if CorrelationsOf(nil) != nil || CorrelationsOf([]mem.Line{1}) != nil {
		t.Error("short streams should yield no correlations")
	}
}

func TestOracleUnlimitedCapacityHitsEverythingStable(t *testing.T) {
	// A perfectly repeating sequence with capacity >= footprint: after the
	// cold pass every correlation hits under both oracles.
	var lines []mem.Line
	for lap := 0; lap < 5; lap++ {
		for l := mem.Line(0); l < 100; l++ {
			lines = append(lines, l)
		}
	}
	stream := CorrelationsOf(lines)
	for _, kind := range []OracleKind{MIN, TPMIN} {
		s := ReplayOracle(stream, 1000, kind)
		cold := uint64(100) // one miss per distinct trigger
		if s.CorrelationHits < s.Lookups-cold {
			t.Errorf("%v: correlation hits %d < %d", kind, s.CorrelationHits, s.Lookups-cold)
		}
	}
}

func TestTPMINNeverBelowMINOnCorrelationHits(t *testing.T) {
	// TP-MIN optimizes correlation hits, so across random streams it should
	// never do materially worse than MIN on that metric.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		var lines []mem.Line
		// Mixed stable/unstable stream.
		perm := rng.Perm(64)
		for lap := 0; lap < 4; lap++ {
			for _, p := range perm {
				lines = append(lines, mem.Line(p))
				if rng.Intn(4) == 0 {
					lines = append(lines, mem.Line(64+rng.Intn(32)))
				}
			}
		}
		stream := CorrelationsOf(lines)
		m := ReplayOracle(stream, 16, MIN)
		tp := ReplayOracle(stream, 16, TPMIN)
		if float64(tp.CorrelationHits) < 0.9*float64(m.CorrelationHits) {
			t.Errorf("trial %d: TP-MIN correlation hits %d well below MIN %d",
				trial, tp.CorrelationHits, m.CorrelationHits)
		}
	}
}

func TestMINMaximizesTriggerHitsVsTPMIN(t *testing.T) {
	// Conversely MIN should win (or tie) on trigger hits: that is what it
	// optimizes.
	rng := rand.New(rand.NewSource(11))
	var lines []mem.Line
	for i := 0; i < 4000; i++ {
		if rng.Intn(2) == 0 {
			lines = append(lines, mem.Line(rng.Intn(32))) // hot triggers
		} else {
			lines = append(lines, mem.Line(100+rng.Intn(400)))
		}
	}
	stream := CorrelationsOf(lines)
	m := ReplayOracle(stream, 24, MIN)
	tp := ReplayOracle(stream, 24, TPMIN)
	if float64(m.TriggerHits) < 0.9*float64(tp.TriggerHits) {
		t.Errorf("MIN trigger hits %d well below TP-MIN %d", m.TriggerHits, tp.TriggerHits)
	}
}

func TestZeroCapacity(t *testing.T) {
	stream := CorrelationsOf([]mem.Line{1, 2, 3, 1, 2, 3})
	s := ReplayOracle(stream, 0, MIN)
	if s.TriggerHits != 0 || s.CorrelationHits != 0 {
		t.Error("zero-capacity store should never hit")
	}
	if s.Lookups != uint64(len(stream)) {
		t.Error("lookups should still be counted")
	}
}
