// Package workloads provides the synthetic benchmark suite used in place of
// the SPEC 2006, SPEC 2017, and GAP traces evaluated in the paper. Each
// workload reproduces the memory-access archetype that makes the
// corresponding real benchmark interesting for temporal prefetching:
// repeated irregular pointer chases (mcf, sphinx, omnetpp), graph analytics
// gathers (GAP), sparse algebra (soplex, milc), mixed scans, and regular
// streaming/strided kernels that temporal prefetchers should leave alone.
//
// Workloads are deterministic: a workload name plus a seed fully determines
// the generated trace, so experiments are reproducible run to run.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"streamline/internal/trace"
)

// Suite identifies the benchmark suite a workload imitates.
type Suite string

// The three suites evaluated in the paper.
const (
	SPEC06 Suite = "spec06"
	SPEC17 Suite = "spec17"
	GAP    Suite = "gap"
)

// Scale adjusts workload working-set sizes and per-lap lengths so the same
// definitions serve both quick benchmarks and paper-scale runs.
type Scale struct {
	// Footprint multiplies each workload's working-set size. 1.0 is the
	// calibrated default sized against the 2MB-per-core LLC of Table II.
	Footprint float64
}

// DefaultScale is the calibrated scale used by the experiment harness.
var DefaultScale = Scale{Footprint: 1.0}

func (s Scale) size(base int) int {
	if s.Footprint <= 0 {
		return base
	}
	n := int(float64(base) * s.Footprint)
	if n < 64 {
		n = 64
	}
	return n
}

// LapSource generates a workload one "lap" (outer iteration) at a time.
// Implementations rebuild all state in Reset and emit one lap of records per
// Lap call; the laps loop forever (the simulator bounds instructions).
type LapSource interface {
	// Reset rebuilds the workload's initial state from the given RNG.
	Reset(rng *rand.Rand)
	// Lap emits the records of the next outer iteration.
	Lap(emit func(trace.Record))
}

// Workload is a named, registered benchmark definition.
type Workload struct {
	// Name is the workload's short identifier (e.g. "mcf06", "pr").
	Name string
	// Suite is the benchmark suite the workload imitates.
	Suite Suite
	// Irregular marks membership in the paper's "irregular subset":
	// benchmarks with at least 5% headroom under an idealized temporal
	// prefetcher with unlimited metadata.
	Irregular bool
	// Build constructs the workload's lap source at the given scale.
	Build func(s Scale) LapSource
}

// lapTrace adapts a LapSource to trace.Trace, buffering one lap at a time so
// arbitrarily long traces use bounded memory.
type lapTrace struct {
	src  LapSource
	seed int64
	buf  []trace.Record
	pos  int
}

// NewTrace returns an endless, resettable trace for the workload at the
// given scale and seed. Wrap it with trace.NewLimit to bound instructions.
func (w Workload) NewTrace(s Scale, seed int64) trace.Trace {
	lt := &lapTrace{src: w.Build(s), seed: seed}
	lt.Reset()
	return lt
}

func (t *lapTrace) Reset() {
	t.src.Reset(rand.New(rand.NewSource(t.seed)))
	t.buf = t.buf[:0]
	t.pos = 0
}

func (t *lapTrace) Next() (trace.Record, bool) {
	for t.pos >= len(t.buf) {
		t.buf = t.buf[:0]
		t.pos = 0
		t.src.Lap(func(r trace.Record) { t.buf = append(t.buf, r) })
		if len(t.buf) == 0 {
			return trace.Record{}, false
		}
	}
	r := t.buf[t.pos]
	t.pos++
	return r, true
}

// registry of all workloads, populated by the generator files' init funcs.
var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate registration of %q", w.Name))
	}
	registry[w.Name] = w
}

// Get returns the workload registered under name.
func Get(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return w, nil
}

// All returns every registered workload, sorted by name for determinism.
func All() []Workload {
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BySuite returns the workloads of one suite, sorted by name.
func BySuite(s Suite) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Suite == s {
			out = append(out, w)
		}
	}
	return out
}

// IrregularSubset returns the workloads in the paper's irregular subset.
func IrregularSubset() []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Irregular {
			out = append(out, w)
		}
	}
	return out
}

// Names returns the names of the given workloads.
func Names(ws []Workload) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// Mix is a multi-programmed workload assignment: one workload name per core.
type Mix struct {
	// ID numbers the mix within its generated batch.
	ID int
	// Members lists the workload assigned to each core.
	Members []Workload
}

// Mixes generates count deterministic multi-programmed mixes of the
// memory-intensive workloads for the given core count, mirroring the
// paper's 150 random mixes per core count.
func Mixes(count, cores int, seed int64) []Mix {
	pool := All()
	rng := rand.New(rand.NewSource(seed))
	mixes := make([]Mix, count)
	for i := range mixes {
		members := make([]Workload, cores)
		for c := range members {
			members[c] = pool[rng.Intn(len(pool))]
		}
		mixes[i] = Mix{ID: i, Members: members}
	}
	return mixes
}
