package ipcp_test

import (
	"testing"

	"streamline/internal/prefetch"
	"streamline/internal/prefetch/ipcp"
	"streamline/internal/prefetch/ptest"
)

func TestConformance(t *testing.T) {
	cfgs := map[string]ipcp.Config{
		"default": ipcp.DefaultConfig,
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			ptest.Exercise(t, func() prefetch.Prefetcher { return ipcp.New(cfg) })
		})
	}
}

// TestOracle runs this engine's request stream against the differential
// cache oracle (see ptest.Oracle).
func TestOracle(t *testing.T) {
	ptest.Oracle(t, func() prefetch.Prefetcher { return ipcp.New(ipcp.DefaultConfig) })
}
