package workloads

import (
	"testing"

	"streamline/internal/mem"
	"streamline/internal/trace"
)

// fuzzRecords pulls n records from a fresh trace of w.
func fuzzRecords(w Workload, fp float64, seed int64, n int) []trace.Record {
	tr := w.NewTrace(Scale{Footprint: fp}, seed)
	out := make([]trace.Record, 0, n)
	for len(out) < n {
		r, ok := tr.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// FuzzTraceGenerators fuzzes every workload generator over (workload, seed,
// footprint) and checks the properties the simulator depends on:
//
//   - determinism: two traces built from the same (scale, seed) emit
//     identical record streams, and Reset rewinds to the identical stream —
//     the foundation of the golden-stats and parallel-vs-serial tests;
//   - address hygiene: every address lies in the generator arena region
//     [arenaBase, arenaBase+2^31), so per-core striping in the simulator
//     (stride 2^44) can never collide across cores;
//   - bounded footprint: the distinct-line count of a generous prefix stays
//     within the arena bound above, so a fuzzed footprint cannot make a
//     workload outgrow the address budget.
func FuzzTraceGenerators(f *testing.F) {
	f.Add(uint8(0), int64(1), uint8(10))
	f.Add(uint8(3), int64(42), uint8(1))
	f.Add(uint8(7), int64(-5), uint8(25))
	f.Add(uint8(200), int64(1<<40), uint8(0))
	f.Fuzz(func(t *testing.T, widx uint8, seed int64, fpRaw uint8) {
		ws := All()
		w := ws[int(widx)%len(ws)]
		// Footprint in (0, 0.32]: small enough to stay fast, varied enough
		// to hit the size-scaling paths (including the 64-element floor).
		fp := float64(fpRaw%32+1) / 100
		const n = 4000

		recs := fuzzRecords(w, fp, seed, n)
		if len(recs) == 0 {
			t.Fatalf("%s: empty trace", w.Name)
		}
		again := fuzzRecords(w, fp, seed, n)
		if len(again) != len(recs) {
			t.Fatalf("%s: rerun emitted %d records, first run %d", w.Name, len(again), len(recs))
		}

		distinct := map[mem.Line]struct{}{}
		for i, r := range recs {
			if r != again[i] {
				t.Fatalf("%s: record %d differs across identical builds: %+v vs %+v",
					w.Name, i, r, again[i])
			}
			if r.Addr < arenaBase || r.Addr >= arenaBase+(1<<31) {
				t.Fatalf("%s: record %d address %#x outside the arena region",
					w.Name, i, uint64(r.Addr))
			}
			distinct[mem.LineOf(r.Addr)] = struct{}{}
		}
		if len(distinct)*mem.LineSize > 1<<31 {
			t.Fatalf("%s: footprint %.2f touches %d distinct lines (> 2GiB)",
				w.Name, fp, len(distinct))
		}

		// Reset must rewind to the same stream.
		tr := w.NewTrace(Scale{Footprint: fp}, seed)
		for i := 0; i < 100 && i < len(recs); i++ {
			if r, ok := tr.Next(); !ok || r != recs[i] {
				t.Fatalf("%s: pre-reset record %d diverges", w.Name, i)
			}
		}
		tr.Reset()
		for i := 0; i < 100 && i < len(recs); i++ {
			if r, ok := tr.Next(); !ok || r != recs[i] {
				t.Fatalf("%s: post-reset record %d diverges from record stream", w.Name, i)
			}
		}
	})
}
