package workloads

import (
	"math/rand"

	"streamline/internal/mem"
	"streamline/internal/trace"
)

// The regular family models the streaming and strided SPEC workloads
// (libquantum, lbm, roms, bzip2, soplex, xz). Stride prefetchers cover most
// of these; they exist in the suite so the temporal prefetchers are measured
// on workloads where their metadata partition is pure cost — the dynamic
// partitioners must learn to shrink it.

// streamSource sweeps one or more large arrays sequentially at 8-byte
// element granularity (eight touches per cache line, like real array code),
// writing a fraction of elements (lbm-style read-modify-write streaming).
type streamSource struct {
	name    string
	lines   int // lines per array
	arrays  int
	stride  int     // element stride within each sweep
	storePW float64 // probability a touch is a store
	nonMem  uint8

	rng  *rand.Rand
	arrs []array
}

func (s *streamSource) Reset(rng *rand.Rand) {
	s.rng = rng
	a := newArena()
	s.arrs = make([]array, s.arrays)
	for i := range s.arrs {
		s.arrs[i] = a.array(s.lines*8, 8)
	}
}

func (s *streamSource) Lap(emit func(trace.Record)) {
	e := &emitter{emit: emit, nonMem: s.nonMem}
	pc := pcBase(s.name)
	stride := s.stride
	if stride < 1 {
		stride = 1
	}
	for ai, arr := range s.arrs {
		apc := pc + mem.PC(8*ai)
		for i := 0; i < s.lines*8; i += stride {
			if s.storePW > 0 && s.rng.Float64() < s.storePW {
				e.store(apc, arr.at(i))
			} else {
				e.load(apc, arr.at(i))
			}
		}
	}
}

// stencilSource models roms/lbm-style structured-grid sweeps: for each
// interior point, load a small neighborhood at fixed offsets (rows apart)
// and store the result. Cells are 8-byte elements, giving multiple
// concurrent fixed strides — ideal for stride/Berti prefetchers, useless
// for temporal ones.
type stencilSource struct {
	name   string
	rows   int
	cols   int // elements per row
	nonMem uint8

	grid array
	outg array
}

func (s *stencilSource) Reset(rng *rand.Rand) {
	a := newArena()
	s.grid = a.array(s.rows*s.cols, 8)
	s.outg = a.array(s.rows*s.cols, 8)
}

func (s *stencilSource) Lap(emit func(trace.Record)) {
	e := &emitter{emit: emit, nonMem: s.nonMem}
	pc := pcBase(s.name)
	for r := 1; r < s.rows-1; r++ {
		for c := 0; c < s.cols; c++ {
			i := r*s.cols + c
			e.load(pc, s.grid.at(i-s.cols)) // north
			e.load(pc+8, s.grid.at(i))      // center
			e.load(pc+16, s.grid.at(i+s.cols))
			e.store(pc+24, s.outg.at(i))
		}
	}
}

// cacheResidentSource models bzip2-like low-MPKI behavior: a working set
// that fits in the L2 with occasional excursions to a larger table. Almost
// no LLC misses, so any space a temporal prefetcher steals from the LLC is
// wasted — this is the workload the paper says penalizes Streamline's 64
// permanently allocated metadata sets.
type cacheResidentSource struct {
	name      string
	hotLines  int // L2-resident working set
	coldLines int // rarely-touched overflow table
	steps     int
	nonMem    uint8

	rng  *rand.Rand
	hot  array
	cold array
}

func (c *cacheResidentSource) Reset(rng *rand.Rand) {
	c.rng = rng
	a := newArena()
	c.hot = a.array(c.hotLines, mem.LineSize)
	c.cold = a.array(c.coldLines, mem.LineSize)
}

func (c *cacheResidentSource) Lap(emit func(trace.Record)) {
	e := &emitter{emit: emit, nonMem: c.nonMem}
	pc := pcBase(c.name)
	for i := 0; i < c.steps; i++ {
		e.load(pc, c.hot.at(c.rng.Intn(c.hotLines)))
		if i&63 == 0 {
			e.load(pc+8, c.cold.at(c.rng.Intn(c.coldLines)))
		}
	}
}

func init() {
	register(Workload{
		Name: "libquantum06", Suite: SPEC06, Irregular: false,
		Build: func(s Scale) LapSource {
			return &streamSource{name: "libquantum06", lines: s.size(96 << 10),
				arrays: 2, storePW: 0.3, nonMem: 2}
		},
	})
	register(Workload{
		Name: "lbm17", Suite: SPEC17, Irregular: false,
		Build: func(s Scale) LapSource {
			return &streamSource{name: "lbm17", lines: s.size(48 << 10),
				arrays: 4, storePW: 0.5, nonMem: 2}
		},
	})
	register(Workload{
		Name: "roms17", Suite: SPEC17, Irregular: false,
		Build: func(s Scale) LapSource {
			return &stencilSource{name: "roms17", rows: s.size(256), cols: 2048, nonMem: 3}
		},
	})
	register(Workload{
		Name: "leslie3d06", Suite: SPEC06, Irregular: false,
		Build: func(s Scale) LapSource {
			// Multi-stride fluid dynamics sweeps.
			return &streamSource{name: "leslie3d06", lines: s.size(40 << 10),
				arrays: 3, stride: 2, storePW: 0.25, nonMem: 3}
		},
	})
	register(Workload{
		Name: "cactu17", Suite: SPEC17, Irregular: false,
		Build: func(s Scale) LapSource {
			// A wider stencil grid than roms.
			return &stencilSource{name: "cactu17", rows: s.size(320), cols: 1536, nonMem: 4}
		},
	})
	register(Workload{
		Name: "bzip206", Suite: SPEC06, Irregular: false,
		Build: func(s Scale) LapSource {
			return &cacheResidentSource{name: "bzip206", hotLines: s.size(6 << 10),
				coldLines: s.size(64 << 10), steps: 256 << 10, nonMem: 4}
		},
	})
}
