package bingo_test

import (
	"testing"

	"streamline/internal/prefetch"
	"streamline/internal/prefetch/bingo"
	"streamline/internal/prefetch/ptest"
)

func TestConformance(t *testing.T) {
	cfgs := map[string]bingo.Config{
		"default": bingo.DefaultConfig,
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			ptest.Exercise(t, func() prefetch.Prefetcher { return bingo.New(cfg) })
		})
	}
}

// TestOracle runs this engine's request stream against the differential
// cache oracle (see ptest.Oracle).
func TestOracle(t *testing.T) {
	ptest.Oracle(t, func() prefetch.Prefetcher { return bingo.New(bingo.DefaultConfig) })
}
