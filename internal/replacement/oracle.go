package replacement

import "streamline/internal/mem"

// This file implements the offline oracles of Section IV-D1. Belady's MIN,
// applied to temporal-prefetch metadata the way Triage did, maximizes
// *trigger* hits: it evicts the entry whose trigger address is referenced
// furthest in the future. The paper's TP-MIN instead maximizes *correlation*
// hits: it evicts the entry whose exact (trigger -> target) correlation
// recurs furthest in the future, so triggers with unstable targets — which
// would only generate useless prefetches — are discarded early (Figure 6).
//
// Both oracles replay a correlation stream (the sequence of consecutive-
// access pairs a temporal prefetcher would train on) through a fully
// associative metadata store of fixed capacity and report hit statistics.

// Correlation is one observed (trigger, target) pair in training order.
type Correlation struct {
	Trigger mem.Line
	Target  mem.Line
}

// OracleKind selects which future-knowledge policy an oracle run uses.
type OracleKind int

const (
	// MIN evicts the entry whose trigger is referenced furthest in the
	// future (trigger-hit-optimal, as prior work applied Belady to
	// metadata).
	MIN OracleKind = iota
	// TPMIN evicts the entry whose exact correlation recurs furthest in
	// the future (correlation-hit-optimal; the paper's reformulation).
	TPMIN
)

// String names the oracle kind.
func (k OracleKind) String() string {
	if k == TPMIN {
		return "tp-min"
	}
	return "min"
}

// OracleStats summarizes an oracle replay.
type OracleStats struct {
	// Lookups is the number of correlations replayed.
	Lookups uint64
	// TriggerHits counts lookups whose trigger was resident.
	TriggerHits uint64
	// CorrelationHits counts lookups whose resident entry also predicted
	// the correct target — i.e. prefetches that would have been useful.
	CorrelationHits uint64
}

// TriggerHitRate returns the fraction of lookups whose trigger was resident.
func (s OracleStats) TriggerHitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.TriggerHits) / float64(s.Lookups)
}

// CorrelationHitRate returns the fraction of lookups that would have issued
// a correct prefetch.
func (s OracleStats) CorrelationHitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.CorrelationHits) / float64(s.Lookups)
}

const oracleNever = int(^uint(0) >> 1) // sentinel: no future use

// ReplayOracle replays the correlation stream through a fully associative
// metadata store holding capacity entries, using the given oracle's eviction
// rule, and returns hit statistics. The store is keyed by trigger: storing a
// correlation for a trigger overwrites that trigger's previous target,
// exactly like a pairwise metadata store with one target per trigger.
func ReplayOracle(stream []Correlation, capacity int, kind OracleKind) OracleStats {
	if capacity <= 0 {
		return OracleStats{Lookups: uint64(len(stream))}
	}

	// Precompute, for each position, the next position at which the same
	// key (trigger for MIN, full correlation for TP-MIN) appears.
	nextUse := make([]int, len(stream))
	switch kind {
	case MIN:
		last := make(map[mem.Line]int, len(stream))
		for i := len(stream) - 1; i >= 0; i-- {
			if n, ok := last[stream[i].Trigger]; ok {
				nextUse[i] = n
			} else {
				nextUse[i] = oracleNever
			}
			last[stream[i].Trigger] = i
		}
	case TPMIN:
		last := make(map[Correlation]int, len(stream))
		for i := len(stream) - 1; i >= 0; i-- {
			if n, ok := last[stream[i]]; ok {
				nextUse[i] = n
			} else {
				nextUse[i] = oracleNever
			}
			last[stream[i]] = i
		}
	}

	type entry struct {
		target  mem.Line
		nextUse int
	}
	store := make(map[mem.Line]entry, capacity)

	var stats OracleStats
	for i, c := range stream {
		stats.Lookups++
		if e, ok := store[c.Trigger]; ok {
			stats.TriggerHits++
			if e.target == c.Target {
				stats.CorrelationHits++
			}
			// Update in place: new target, new future-use time.
			store[c.Trigger] = entry{target: c.Target, nextUse: nextUse[i]}
			continue
		}
		if nextUse[i] == oracleNever {
			// Neither oracle caches an entry with no future use; MIN would
			// also skip triggers that never recur, and TP-MIN skips
			// correlations that never recur.
			continue
		}
		if len(store) >= capacity {
			// Evict the entry used furthest in the future; ties break by
			// trigger value so the replay is deterministic despite map
			// iteration order.
			var victim mem.Line
			worst := -1
			for t, e := range store {
				if e.nextUse > worst || (e.nextUse == worst && t < victim) {
					worst = e.nextUse
					victim = t
				}
			}
			if worst <= nextUse[i] && worst != oracleNever {
				// The incoming entry is the furthest-future one: bypass.
				continue
			}
			delete(store, victim)
		}
		store[c.Trigger] = entry{target: c.Target, nextUse: nextUse[i]}
	}
	return stats
}

// CorrelationsOf converts an address stream into the correlation stream a
// pairwise temporal prefetcher would train on: each consecutive pair of
// lines becomes one correlation.
func CorrelationsOf(lines []mem.Line) []Correlation {
	if len(lines) < 2 {
		return nil
	}
	out := make([]Correlation, 0, len(lines)-1)
	for i := 1; i < len(lines); i++ {
		out = append(out, Correlation{Trigger: lines[i-1], Target: lines[i]})
	}
	return out
}
