// Package store is the crash-safe, content-addressed result store behind
// cmd/experiments' -checkpoint/-resume flags. A sweep directory holds:
//
//   - MANIFEST.json — identifies the sweep (format version, scale
//     fingerprint, seed) so a resume into a foreign directory fails fast
//     instead of silently mixing incompatible results;
//   - results.jsonl — one fsynced record per completed job, keyed by a
//     canonical content hash and carrying a SHA-256 checksum of its payload;
//   - quarantine.jsonl — records that failed validation on open (truncated
//     tails from a crash, bit flips, conflicting duplicates), kept for
//     forensics and never replayed.
//
// The durability contract: a record is either fully present and
// checksum-valid, or it is quarantined on the next open — a killed process
// can lose at most the in-flight record, never corrupt a finished one. Open
// rewrites results.jsonl atomically (temp file, fsync, rename) whenever it
// quarantines, so recovery is idempotent: a second open quarantines nothing.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Version is the store format version; bumped on incompatible changes.
const Version = 1

const (
	manifestName   = "MANIFEST.json"
	recordsName    = "results.jsonl"
	quarantineName = "quarantine.jsonl"
)

// Manifest identifies the sweep a directory belongs to. Every field must
// match for a resume to proceed.
type Manifest struct {
	Version   int    `json:"version"`
	ScaleName string `json:"scale"`
	// ScaleFP fingerprints every sizing parameter of the scale (not just
	// its name), so a resume against a tweaked scale is rejected rather
	// than replaying results computed under different parameters.
	ScaleFP string `json:"scale_fingerprint"`
	Seed    int64  `json:"seed"`
}

// Record is one persisted job result. Key is the content-addressed job
// identity (hex SHA-256 over the canonical job description), ID the
// human-readable job key it was derived from, and Sum the hex SHA-256 of
// the exact Payload bytes.
type Record struct {
	Key     string          `json:"key"`
	ID      string          `json:"id"`
	Sum     string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// Verify re-checks the record's payload against its stored checksum.
func (r Record) Verify() error {
	if sum := payloadSum(r.Payload); sum != r.Sum {
		return fmt.Errorf("record %s (%s): checksum mismatch: stored %s, payload hashes to %s",
			r.Key, r.ID, r.Sum, sum)
	}
	return nil
}

func payloadSum(p []byte) string {
	s := sha256.Sum256(p)
	return hex.EncodeToString(s[:])
}

// Key derives the canonical content hash for a job from its identifying
// parts. Parts are length-prefixed before hashing, so no concatenation of
// distinct part lists can collide.
func Key(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:%s|", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DecodeRecord parses and validates one results.jsonl line. It returns an
// error for anything that must not be replayed: malformed JSON, a missing
// or malformed key or checksum, or a payload that does not hash to its
// checksum.
func DecodeRecord(line []byte) (Record, error) {
	var r Record
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Record{}, fmt.Errorf("malformed record: %w", err)
	}
	// A line holding a record followed by trailing junk is not a record we
	// wrote; reject it rather than silently dropping the junk.
	if err := trailingData(dec); err != nil {
		return Record{}, err
	}
	if !validHex(r.Key) {
		return Record{}, fmt.Errorf("malformed record key %q", r.Key)
	}
	if !validHex(r.Sum) {
		return Record{}, fmt.Errorf("malformed record checksum %q", r.Sum)
	}
	if len(r.Payload) == 0 {
		return Record{}, errors.New("record has no payload")
	}
	if err := r.Verify(); err != nil {
		return Record{}, err
	}
	return r, nil
}

func trailingData(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after record")
	}
	return nil
}

func validHex(s string) bool {
	if len(s) != sha256.Size*2 {
		return false
	}
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}

// Store is an open sweep directory. Put is safe for concurrent use by the
// worker pool; Get is read-only after open.
type Store struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	records map[string]Record
	// loaded and quarantined summarize the last open: how many valid
	// records were recovered and how many lines were rejected.
	loaded      int
	quarantined int
	afterAppend func(total int)
}

// Create opens dir as a sweep store, creating the directory and manifest
// if needed. An existing manifest must match man exactly (so re-running
// with -checkpoint into the same directory resumes it, and running with a
// different scale or seed fails instead of poisoning it).
func Create(dir string, man Manifest) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	mPath := filepath.Join(dir, manifestName)
	if _, err := os.Stat(mPath); errors.Is(err, os.ErrNotExist) {
		if err := WriteFileAtomic(mPath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			return enc.Encode(man)
		}); err != nil {
			return nil, fmt.Errorf("writing %s: %w", mPath, err)
		}
	} else if err != nil {
		return nil, err
	}
	return open(dir, man)
}

// Open opens an existing sweep directory for resumption. A missing
// directory or manifest, or a manifest that does not match man, is an
// error naming the expected manifest file.
func Open(dir string, man Manifest) (*Store, error) {
	mPath := filepath.Join(dir, manifestName)
	if _, err := os.Stat(mPath); err != nil {
		return nil, fmt.Errorf("%s is not a resumable sweep directory: expected manifest %s (%v)",
			dir, mPath, err)
	}
	return open(dir, man)
}

func open(dir string, man Manifest) (*Store, error) {
	mPath := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(mPath)
	if err != nil {
		return nil, err
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		return nil, fmt.Errorf("%s: malformed manifest: %w", mPath, err)
	}
	if got != man {
		return nil, fmt.Errorf("%s does not match this run: directory holds {version %d, scale %s, fingerprint %.12s…, seed %d}, this run is {version %d, scale %s, fingerprint %.12s…, seed %d}",
			mPath, got.Version, got.ScaleName, got.ScaleFP, got.Seed,
			man.Version, man.ScaleName, man.ScaleFP, man.Seed)
	}
	s := &Store{dir: dir, records: make(map[string]Record)}
	if err := s.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.path(recordsName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.f = f
	return s, nil
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// load reads results.jsonl, keeping every checksum-valid record and
// quarantining the rest. Duplicate keys with identical payloads keep the
// first copy; conflicting duplicates distrust both. If anything was
// quarantined, the records file is compacted atomically so the next open
// starts clean.
func (s *Store) load() error {
	f, err := os.Open(s.path(recordsName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()

	var bad []badLine
	order := []string{} // first-seen key order, for a faithful compaction
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			trimmed := bytes.TrimSuffix(line, []byte("\n"))
			if len(bytes.TrimSpace(trimmed)) == 0 {
				// Blank lines carry no data; drop silently.
			} else if rec, derr := DecodeRecord(trimmed); derr != nil {
				bad = append(bad, badLine{trimmed, derr.Error()})
			} else if prev, dup := s.records[rec.Key]; dup {
				if bytes.Equal(prev.Payload, rec.Payload) {
					bad = append(bad, badLine{trimmed, "duplicate record (identical payload; first copy kept)"})
				} else {
					// Two valid records disagree about the same job:
					// neither can be trusted.
					bad = append(bad, badLine{trimmed, "conflicting duplicate record"})
					bad = append(bad, badLine{mustMarshal(prev), "conflicting duplicate record (first copy)"})
					delete(s.records, rec.Key)
				}
			} else {
				s.records[rec.Key] = rec
				order = append(order, rec.Key)
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
	}
	s.loaded = len(s.records)
	s.quarantined = len(bad)
	if len(bad) == 0 {
		return nil
	}
	if err := s.appendQuarantine(bad); err != nil {
		return err
	}
	// Compact: rewrite only the surviving records, atomically.
	return WriteFileAtomic(s.path(recordsName), func(w io.Writer) error {
		for _, key := range order {
			rec, ok := s.records[key]
			if !ok {
				continue // dropped as a conflicting duplicate
			}
			if _, err := w.Write(append(mustMarshal(rec), '\n')); err != nil {
				return err
			}
		}
		return nil
	})
}

func mustMarshal(rec Record) []byte {
	b, err := json.Marshal(rec)
	if err != nil {
		panic(err) // Record marshaling cannot fail: all fields are marshalable
	}
	return b
}

type badLine struct {
	line   []byte
	reason string
}

func (s *Store) appendQuarantine(bad []badLine) error {
	q, err := os.OpenFile(s.path(quarantineName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer q.Close()
	enc := json.NewEncoder(q)
	for _, b := range bad {
		if err := enc.Encode(struct {
			Reason string `json:"reason"`
			Line   string `json:"line"`
		}{b.reason, string(b.line)}); err != nil {
			return err
		}
	}
	return q.Sync()
}

// Get returns the payload stored under key, re-validated against its
// checksum. A record that no longer validates is never returned.
func (s *Store) Get(key string) (json.RawMessage, bool) {
	s.mu.Lock()
	rec, ok := s.records[key]
	s.mu.Unlock()
	if !ok || rec.Verify() != nil {
		return nil, false
	}
	return rec.Payload, true
}

// Put persists payload under key: the record is appended to results.jsonl
// and fsynced before Put returns, so a completed job survives any
// subsequent crash. Re-putting an identical payload is a no-op; a
// conflicting payload for an existing key is an error (it would mean the
// run is not deterministic).
func (s *Store) Put(key, id string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	return s.PutRaw(key, id, raw)
}

// PutRaw is Put for callers that already hold the payload's exact JSON
// encoding: the given bytes are stored and replayed verbatim by Get, so
// responses built from them are byte-identical across cache hits and
// restarts (the serving daemon relies on this). The bytes must be one JSON
// value in encoding/json's canonical form (compact, HTML-escaped — exactly
// what json.Marshal emits); anything else would re-encode differently inside
// the record line and quarantine itself on the next open, so it is rejected
// here instead.
func (s *Store) PutRaw(key, id string, raw json.RawMessage) error {
	if len(raw) == 0 || !json.Valid(raw) {
		return fmt.Errorf("store: payload for %s (%s) is not a JSON value", key, id)
	}
	canon, err := json.Marshal(raw)
	if err != nil || !bytes.Equal(canon, raw) {
		return fmt.Errorf("store: payload for %s (%s) is not in canonical JSON form", key, id)
	}
	rec := Record{Key: key, ID: id, Sum: payloadSum(raw), Payload: raw}
	line := append(mustMarshal(rec), '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.records[key]; ok {
		if bytes.Equal(prev.Payload, rec.Payload) {
			return nil
		}
		return fmt.Errorf("store: conflicting result for %s (%s): stored payload differs", key, id)
	}
	if _, err := s.f.Write(line); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.records[key] = rec
	if s.afterAppend != nil {
		s.afterAppend(len(s.records))
	}
	return nil
}

// SetAfterAppend installs a hook called (under the store lock) after each
// durable append with the total record count. The crash-injection harness
// uses it to kill the process at a deterministic point mid-sweep.
func (s *Store) SetAfterAppend(fn func(total int)) {
	s.mu.Lock()
	s.afterAppend = fn
	s.mu.Unlock()
}

// Len returns the number of valid records currently held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Loaded returns how many valid records the open recovered from disk.
func (s *Store) Loaded() int { return s.loaded }

// Quarantined returns how many lines the open rejected and quarantined.
func (s *Store) Quarantined() int { return s.quarantined }

// Dir returns the sweep directory path.
func (s *Store) Dir() string { return s.dir }

// Close closes the append handle. Get keeps working; Put does not.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// WriteFileAtomic writes a file via a temp file in the same directory,
// fsyncs it, and renames it over path — a crash leaves either the old
// content or the new, never a truncated mix. The containing directory is
// fsynced best-effort so the rename itself is durable.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
