package triage_test

import (
	"testing"

	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/ptest"
	"streamline/internal/prefetch/triage"
)

func TestConformance(t *testing.T) {
	mkCfg := map[string]func() triage.Config{
		"default": triage.DefaultConfig,
		"small-budget": func() triage.Config {
			c := triage.DefaultConfig()
			c.MetaBytes = 32 << 10
			return c
		},
	}
	for name, mk := range mkCfg {
		mk := mk
		t.Run(name, func(t *testing.T) {
			ptest.Exercise(t, func() prefetch.Prefetcher {
				return triage.New(mk(), &meta.NullBridge{Sets: 256, Ways: 16, Latency: 20})
			})
		})
	}
}

// TestOracle runs this engine's request stream against the differential
// cache oracle (see ptest.Oracle).
func TestOracle(t *testing.T) {
	ptest.Oracle(t, func() prefetch.Prefetcher {
		return triage.New(triage.DefaultConfig(), &meta.NullBridge{Sets: 256, Ways: 16, Latency: 20})
	})
}
