// Package dram models main memory with the banked, channelled timing of
// Table II: DDR4-3200 with an 8-byte channel, 12.5ns tCAS/tRCD/tRP, 8 banks
// per rank, and per-core-count channel/rank scaling. The model captures the
// three first-order effects the paper's evaluation depends on: row-buffer
// locality, per-channel bandwidth occupancy (Figure 10c's sweep), and
// queueing under multi-core contention.
package dram

import (
	"streamline/internal/mem"
	"streamline/internal/telemetry"
)

// Config describes the memory system, with timings in core cycles (4GHz:
// one cycle is 0.25ns, so 12.5ns is 50 cycles).
type Config struct {
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	// RowLines is the row-buffer size in cache lines (8KB rows: 128).
	RowLines int
	// TransferCycles is the channel occupancy per 64B line (DDR4-3200 at
	// 8B width moves 64B in 2.5ns: 10 cycles).
	TransferCycles uint64
	// CAS, RCD and RP are the usual DRAM timing parameters in cycles.
	CAS, RCD, RP uint64
}

// ConfigFor returns the Table II memory configuration for a core count:
// 1, 2, 4 and 8 cores use 1, 2, 2 and 4 channels with 1, 1, 2 and 2 ranks
// per channel respectively.
func ConfigFor(cores int) Config {
	cfg := Config{
		BanksPerRank:   8,
		RowLines:       128,
		TransferCycles: 10,
		CAS:            50,
		RCD:            50,
		RP:             50,
	}
	switch {
	case cores <= 1:
		cfg.Channels, cfg.RanksPerChannel = 1, 1
	case cores == 2:
		cfg.Channels, cfg.RanksPerChannel = 2, 1
	case cores <= 4:
		cfg.Channels, cfg.RanksPerChannel = 2, 2
	default:
		cfg.Channels, cfg.RanksPerChannel = 4, 2
	}
	return cfg
}

// ScaleBandwidth returns a copy of the config with channel bandwidth
// multiplied by factor (>1 means more bandwidth), used for the Figure 10c
// DRAM bandwidth sweep.
func (c Config) ScaleBandwidth(factor float64) Config {
	if factor <= 0 {
		return c
	}
	t := float64(c.TransferCycles) / factor
	if t < 1 {
		t = 1
	}
	c.TransferCycles = uint64(t + 0.5)
	return c
}

// Stats counts DRAM events.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64 // closed bank
	RowConflicts uint64 // open row mismatch
	QueueCycles  uint64 // cycles requests waited for channel/bank
}

// Accesses returns total reads plus writes.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// RowHitRate returns row-buffer hits over accesses.
func (s Stats) RowHitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses())
}

// Requests arrive with out-of-order timestamps (prefetch chains are stamped
// ahead of the demands that trigger them), so channel bandwidth and bank
// occupancy are modeled with the order-insensitive bucketed rate limiter of
// mem.RateLimiter instead of next-free ratchets.

type bank struct {
	openRow int64 // -1 when precharged
	busy    mem.RateLimiter
}

type channel struct {
	busy mem.RateLimiter
}

// DRAM is the memory-system timing model.
type DRAM struct {
	cfg   Config
	chans []channel
	banks [][]bank // [channel][rank*banksPerRank+bank]

	// chanXfers shadow-counts line transfers per channel for the audit
	// subsystem's bandwidth-conservation check (every access must be
	// charged to exactly one channel).
	chanXfers []uint64

	// tel receives row-conflict events; nil (the default) disables them.
	tel *telemetry.Emitter

	Stats Stats
}

// SetTelemetry attaches a telemetry emitter for discrete DRAM events
// (row-buffer conflicts). A nil emitter (telemetry disabled) is fine.
func (d *DRAM) SetTelemetry(tel *telemetry.Emitter) { d.tel = tel }

// New constructs a DRAM model from cfg.
func New(cfg Config) *DRAM {
	d := &DRAM{
		cfg:       cfg,
		chans:     make([]channel, cfg.Channels),
		banks:     make([][]bank, cfg.Channels),
		chanXfers: make([]uint64, cfg.Channels),
	}
	for ch := range d.chans {
		d.chans[ch].busy = mem.RateLimiter{BucketCycles: 128, Capacity: 128}
		d.banks[ch] = make([]bank, cfg.RanksPerChannel*cfg.BanksPerRank)
		for b := range d.banks[ch] {
			d.banks[ch][b].openRow = -1
			d.banks[ch][b].busy = mem.RateLimiter{BucketCycles: 512, Capacity: 512}
		}
	}
	return d
}

// Config returns the model's configuration.
func (d *DRAM) Config() Config { return d.cfg }

// route maps a line to its channel, bank, and row. Lines interleave across
// channels at line granularity for bandwidth; within a channel, RowLines
// consecutive lines share a row.
func (d *DRAM) route(l mem.Line) (ch, bk int, row int64) {
	v := uint64(l)
	ch = int(v % uint64(d.cfg.Channels))
	v /= uint64(d.cfg.Channels)
	rowIdx := v / uint64(d.cfg.RowLines)
	nbanks := uint64(d.cfg.RanksPerChannel * d.cfg.BanksPerRank)
	bk = int(rowIdx % nbanks)
	row = int64(rowIdx / nbanks)
	return
}

// Write enqueues a writeback of one line at cycle now. Writebacks drain
// from the memory controller's write buffer: they consume channel bandwidth
// (which reads then queue behind) but no requester waits on them, so no
// latency is returned and bank/row state is left to the reads.
func (d *DRAM) Write(now uint64, l mem.Line) {
	ch, _, _ := d.route(l)
	d.chans[ch].busy.Charge(now, d.cfg.TransferCycles)
	d.chanXfers[ch]++
	d.Stats.Writes++
}

// Access issues a read of one line at cycle now and returns its latency
// (completion minus now), accounting for channel queueing, bank
// availability, and row-buffer state.
func (d *DRAM) Access(now uint64, l mem.Line, write bool) uint64 {
	if write {
		d.Write(now, l)
		return 0
	}
	ch, bk, row := d.route(l)
	b := &d.banks[ch][bk]
	c := &d.chans[ch]

	var rowLat uint64
	switch {
	case b.openRow == row:
		rowLat = d.cfg.CAS
		d.Stats.RowHits++
	case b.openRow == -1:
		rowLat = d.cfg.RCD + d.cfg.CAS
		d.Stats.RowMisses++
	default:
		rowLat = d.cfg.RP + d.cfg.RCD + d.cfg.CAS
		d.Stats.RowConflicts++
		if d.tel.Enabled(telemetry.Debug) {
			d.tel.Eventf(now, telemetry.Debug, "row-conflict",
				"ch %d bank %d: open row %d closed for %d", ch, bk, b.openRow, row)
		}
	}
	b.openRow = row

	// Channel bandwidth: one burst per TransferCycles. Bank occupancy:
	// activation (if any) plus the burst; the CAS latency pipelines with
	// the next access to an open row.
	start := now + c.busy.Charge(now, d.cfg.TransferCycles)
	bankOcc := (rowLat - d.cfg.CAS) + d.cfg.TransferCycles
	start += b.busy.Charge(start, bankOcc)
	d.Stats.QueueCycles += start - now
	d.chanXfers[ch]++

	done := start + rowLat + d.cfg.TransferCycles
	d.Stats.Reads++
	return done - now
}
