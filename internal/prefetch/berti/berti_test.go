package berti

import (
	"testing"

	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

// drive feeds addresses with a fixed cycle gap per access.
func drive(p *Prefetcher, pc mem.PC, lines []mem.Line, gap uint64) []prefetch.Request {
	var all, buf []prefetch.Request
	for i, l := range lines {
		buf = p.Train(prefetch.Event{Now: uint64(i) * gap, PC: pc, Addr: mem.AddrOf(l)}, buf[:0])
		all = append(all, buf...)
	}
	return all
}

func TestLearnsTimelyDelta(t *testing.T) {
	p := New(DefaultConfig)
	var lines []mem.Line
	for i := 0; i < 300; i++ {
		lines = append(lines, mem.Line(1000+i))
	}
	reqs := drive(p, 1, lines, 30) // 30 cycles/access: delta 2+ is timely
	if len(reqs) == 0 {
		t.Fatal("no prefetches on a dense unit stream")
	}
	// Issued deltas should jump far enough ahead to be timely (>= 2).
	ahead := 0
	for _, r := range reqs {
		if mem.LineOf(r.Addr) >= 2 {
			ahead++
		}
	}
	if ahead == 0 {
		t.Error("no timely-deep prefetches issued")
	}
}

func TestTimelinessFiltersTightDeltas(t *testing.T) {
	cfg := DefaultConfig
	cfg.TimelyCycles = 1000
	p := New(cfg)
	var lines []mem.Line
	for i := 0; i < 100; i++ {
		lines = append(lines, mem.Line(1000+i))
	}
	// 10 cycles per access: only deltas >= 100 lines back are timely, and
	// the history is only 16 deep, so nothing should qualify.
	reqs := drive(p, 1, lines, 10)
	if len(reqs) != 0 {
		t.Errorf("%d prefetches from untimely deltas", len(reqs))
	}
}

func TestMultipleDeltas(t *testing.T) {
	// A two-phase pattern: +3 / +5 alternating; Berti should learn the +8
	// composite or the individual deltas and prefetch something useful.
	p := New(DefaultConfig)
	var lines []mem.Line
	l := mem.Line(5000)
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			l += 3
		} else {
			l += 5
		}
		lines = append(lines, l)
	}
	reqs := drive(p, 1, lines, 40)
	if len(reqs) == 0 {
		t.Fatal("no prefetches on an alternating-delta stream")
	}
	// Check that prefetched lines actually occur later in the stream.
	future := map[mem.Line]bool{}
	for _, ln := range lines {
		future[ln] = true
	}
	hit := 0
	for _, r := range reqs {
		if future[mem.LineOf(r.Addr)] {
			hit++
		}
	}
	if float64(hit)/float64(len(reqs)) < 0.5 {
		t.Errorf("only %d/%d prefetches land on the stream", hit, len(reqs))
	}
}

func TestRandomStreamStaysQuiet(t *testing.T) {
	p := New(DefaultConfig)
	x := uint64(7)
	var lines []mem.Line
	for i := 0; i < 500; i++ {
		x = x*6364136223846793005 + 1
		lines = append(lines, mem.Line(x>>20))
	}
	reqs := drive(p, 1, lines, 30)
	if len(reqs) > 50 {
		t.Errorf("%d prefetches on random stream", len(reqs))
	}
}

func TestDefaults(t *testing.T) {
	p := New(Config{})
	if p.Name() != "berti" {
		t.Errorf("name = %q", p.Name())
	}
	if p.cfg.HistoryLen != DefaultConfig.HistoryLen {
		t.Error("defaults not applied")
	}
}
