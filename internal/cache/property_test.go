package cache

import (
	"testing"
	"testing/quick"

	"streamline/internal/audit"
	"streamline/internal/mem"
)

// Property-based tests over the cache's replacement/eviction machinery:
// invariants that must hold for every geometry under arbitrary interleavings
// of lookups, fills, reservations, and MSHR traffic (mirroring the metadata
// store's property suite).

// anyGeometry derives a random but valid cache configuration.
func anyGeometry(setSel, waySel uint8) Config {
	return Config{
		Name:    "prop",
		Sets:    4 << (setSel % 5), // 4..64, power of two
		Ways:    1 + int(waySel%8), // 1..8
		Latency: 10,
		MSHRs:   4,
		Ports:   1,
	}
}

// driveOps replays an encoded operation sequence against c. Each op word
// selects an action from its low bits and a line from its high bits; MSHR
// reservations are always paired with completions, as every access path in
// the simulator does.
func driveOps(c *Cache, ops []uint16) {
	now := uint64(0)
	for _, op := range ops {
		now += uint64(op%7) + 1
		l := mem.Line(op >> 4)
		acc := mem.Access{Addr: mem.AddrOf(l), Kind: mem.Load}
		switch op % 8 {
		case 0, 1:
			c.Lookup(now, acc)
		case 2:
			if !c.Lookup(now, acc).Hit {
				c.Fill(acc, now+50, SrcDemand)
			}
		case 3:
			c.Fill(acc, now+50, SrcL2)
		case 4:
			acc.Kind = mem.Store
			if !c.Lookup(now, acc).Hit {
				c.Fill(acc, now+50, SrcDemand)
			}
		case 5:
			c.MarkDirty(l)
		case 6:
			c.Reserve(c.SetOf(l), int(op>>4)%(c.cfg.Ways+1))
		case 7:
			slot, delay := c.MSHRReserve(now)
			c.MSHRComplete(slot, now+delay+20)
		}
	}
}

func TestPropertyOccupancyAndAccounting(t *testing.T) {
	f := func(setSel, waySel uint8, ops []uint16) bool {
		c := New(anyGeometry(setSel, waySel))
		driveOps(c, ops)

		// Occupancy never exceeds the capacity left to data.
		capacity := 0
		for s := 0; s < c.Sets(); s++ {
			capacity += c.DataWays(s)
		}
		if c.OccupiedLines() > capacity {
			t.Logf("occupied %d > data capacity %d", c.OccupiedLines(), capacity)
			return false
		}

		// Demand accounting: every access is exactly one hit or one miss.
		if c.Stats.DemandHits+c.Stats.DemandMisses != c.Stats.DemandAccesses {
			t.Logf("hits %d + misses %d != accesses %d",
				c.Stats.DemandHits, c.Stats.DemandMisses, c.Stats.DemandAccesses)
			return false
		}

		// The audit's full sweep agrees: no violation under any sequence.
		a := audit.New(0)
		c.AuditScan(a, 0)
		if a.Total() != 0 {
			for _, v := range a.Violations() {
				t.Log(v)
			}
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFillThenProbe(t *testing.T) {
	f := func(setSel, waySel uint8, raw uint16, ops []uint16) bool {
		c := New(anyGeometry(setSel, waySel))
		driveOps(c, ops)
		l := mem.Line(raw)
		set := c.SetOf(l)
		c.Fill(mem.Access{Addr: mem.AddrOf(l), Kind: mem.Load}, 100, SrcDemand)
		if c.DataWays(set) == 0 {
			// Fully reserved set: the fill is dropped by design.
			return !c.Probe(l)
		}
		return c.Probe(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyReserveFlushesRegion(t *testing.T) {
	f := func(setSel, waySel uint8, ops []uint16, set uint8, ways uint8) bool {
		c := New(anyGeometry(setSel, waySel))
		driveOps(c, ops)
		s := int(set) % c.Sets()
		w := int(ways) % (c.Ways() + 1)
		before := c.OccupiedLines()
		flushed, dirty := c.Reserve(s, w)
		if dirty > flushed {
			return false
		}
		if c.ReservedWays(s) != w {
			return false
		}
		// Reserved region holds no valid data lines.
		for way := 0; way < w; way++ {
			if c.sets[s][way].valid {
				return false
			}
		}
		// Flushes are the only occupancy change a Reserve makes.
		return c.OccupiedLines() == before-flushed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
