package core

import (
	"streamline/internal/mem"
	"streamline/internal/meta"
)

// tpMockingjay is Streamline's metadata replacement policy (Section IV-E5):
// Mockingjay's sampled reuse-distance machinery retargeted to emulate
// TP-MIN instead of Belady's MIN. Sampler entries store correlations —
// hashed trigger and first target — so the reuse distance being learned is
// that of the *correlation*, not the trigger: a trigger that recurs with a
// different target trains toward "no reuse", exactly the utility signal of
// Figure 6. Each resident entry carries a 3-bit estimated-time-remaining
// counter decayed by a per-set clock; the victim is the entry with the
// largest |ETR| (longest-dead or furthest-future).
type tpMockingjay struct {
	slots int

	etr [][]int8 // 3-bit signed: -4..3 scaled time remaining

	rdp []int8 // predicted correlation reuse distance per hashed PC

	samplers    map[int]*tpSampler
	clock       []uint8
	granularity uint8
}

const (
	tpRDPBits   = 8 // 8-bit hashed PC (paper's sampler entry)
	tpMaxETR    = 3 // 3-bit signed ETR: [-4, 3]
	tpMinETR    = -4
	tpInfRD     = 63
	tpSamplerSz = 32 // per sampled set (paper: 32-set, 10-way sampler per 8 sampled LLC sets)
)

// tpSample is one sampled correlation observation.
type tpSample struct {
	valid bool
	corr  uint16 // hashed (trigger, first target) pair
	pc    uint8
	ts    uint8
}

type tpSampler struct {
	entries [tpSamplerSz]tpSample
	now     uint8
}

// NewTPMockingjay returns the TP-Mockingjay entry policy factory for a
// metadata store with the given geometry.
func NewTPMockingjay(sets, slots int) meta.EntryPolicy {
	p := &tpMockingjay{
		slots:       slots,
		etr:         make([][]int8, sets),
		rdp:         make([]int8, 1<<tpRDPBits),
		samplers:    make(map[int]*tpSampler),
		clock:       make([]uint8, sets),
		granularity: uint8(max(1, slots/4)),
	}
	for i := range p.etr {
		p.etr[i] = make([]int8, slots)
	}
	for i := range p.rdp {
		p.rdp[i] = -1
	}
	// Sample 8 sets out of every 2048 (every 256th); small stores sample
	// every set so tests exercise the machinery.
	stride := 256
	if sets < 512 {
		stride = max(1, sets/8)
	}
	for s := 0; s < sets; s += stride {
		p.samplers[s] = &tpSampler{}
	}
	return p
}

func (p *tpMockingjay) Name() string { return "tp-mockingjay" }

func corrHash(a meta.EntryAccess) uint16 {
	// Hash the full correlation: trigger AND first target. This is the
	// TP-MIN reformulation — MIN would hash only the trigger.
	h := mem.HashLine64(a.Trigger) ^ (mem.HashLine64(a.FirstTarget) >> 16)
	return uint16(h>>13) ^ uint16(h)
}

func (p *tpMockingjay) pcSig(pc mem.PC) uint8 { return uint8(mem.HashPC(pc, tpRDPBits)) }

// train blends an observed correlation reuse distance into the RDP.
func (p *tpMockingjay) train(sig uint8, observed int8) {
	cur := p.rdp[sig]
	if cur < 0 {
		p.rdp[sig] = observed
		return
	}
	d := observed - cur
	step := d / 4
	if step == 0 && d != 0 {
		if d > 0 {
			step = 1
		} else {
			step = -1
		}
	}
	n := cur + step
	if n < 0 {
		n = 0
	}
	if n > tpInfRD {
		n = tpInfRD
	}
	p.rdp[sig] = n
}

// sample feeds the sampled sets: re-observing the same correlation measures
// its reuse distance; evicting a never-reused correlation trains its PC
// toward scan treatment.
func (p *tpMockingjay) sample(set int, a meta.EntryAccess) {
	s, ok := p.samplers[set]
	if !ok {
		return
	}
	s.now++
	c := corrHash(a)
	sig := p.pcSig(a.PC)
	oldest, oldestAge := 0, -1
	for i := range s.entries {
		e := &s.entries[i]
		if e.valid && e.corr == c {
			p.train(e.pc, int8(s.now-e.ts))
			e.pc = sig
			e.ts = s.now
			return
		}
		age := int(s.now - e.ts)
		if !e.valid {
			age = 1 << 16
		}
		if age > oldestAge {
			oldest, oldestAge = i, age
		}
	}
	if s.entries[oldest].valid {
		p.train(s.entries[oldest].pc, tpInfRD)
	}
	s.entries[oldest] = tpSample{valid: true, corr: c, pc: sig, ts: s.now}
}

// tick decays every ETR in the set once per granularity accesses.
func (p *tpMockingjay) tick(set int) {
	p.clock[set]++
	if p.clock[set] < p.granularity {
		return
	}
	p.clock[set] = 0
	for i := range p.etr[set] {
		if p.etr[set][i] > tpMinETR {
			p.etr[set][i]--
		}
	}
}

// predict converts the PC's RDP value into a 3-bit ETR.
func (p *tpMockingjay) predict(pc mem.PC) int8 {
	rd := p.rdp[p.pcSig(pc)]
	if rd < 0 {
		return 1 // untrained: middle-of-the-road protection
	}
	e := rd / int8(p.granularity)
	if e > tpMaxETR {
		e = tpMaxETR
	}
	return e
}

func (p *tpMockingjay) Touch(set, slot int, a meta.EntryAccess) {
	p.sample(set, a)
	p.tick(set)
	p.etr[set][slot] = p.predict(a.PC)
}

func (p *tpMockingjay) Fill(set, slot int, a meta.EntryAccess) {
	p.sample(set, a)
	p.tick(set)
	p.etr[set][slot] = p.predict(a.PC)
}

func (p *tpMockingjay) Evict(set, slot int) { p.etr[set][slot] = 0 }

func (p *tpMockingjay) Victim(set, lo, hi int, _ meta.EntryAccess) int {
	best, bestAbs := lo, int8(-1)
	for c := lo; c < hi; c++ {
		e := p.etr[set][c]
		abs := e
		if abs < 0 {
			abs = -abs
		}
		if abs > bestAbs || (abs == bestAbs && e < 0 && p.etr[set][best] >= 0) {
			best, bestAbs = c, abs
		}
	}
	return best
}
