package stms

import (
	"math/rand"
	"testing"

	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

// fakeDRAM counts accesses with a fixed latency.
type fakeDRAM struct {
	reads, writes uint64
}

func (d *fakeDRAM) Access(_ uint64, _ mem.Line, write bool) uint64 {
	if write {
		d.writes++
		return 0
	}
	d.reads++
	return 100
}

func (d *fakeDRAM) Write(_ uint64, _ mem.Line) { d.writes++ }

func drive(p *Prefetcher, lines []mem.Line) []prefetch.Request {
	var all, buf []prefetch.Request
	for i, l := range lines {
		buf = p.Train(prefetch.Event{Now: uint64(i * 30), PC: 7, Addr: mem.AddrOf(l)}, buf[:0])
		all = append(all, buf...)
	}
	return all
}

func lap(n int, seed int64) []mem.Line {
	rng := rand.New(rand.NewSource(seed))
	out := make([]mem.Line, n)
	for i, v := range rng.Perm(n) {
		out[i] = mem.Line(4000 + v)
	}
	return out
}

func laps(l []mem.Line, n int) []mem.Line {
	var out []mem.Line
	for i := 0; i < n; i++ {
		out = append(out, l...)
	}
	return out
}

func TestLearnsRepeatingStream(t *testing.T) {
	d := &fakeDRAM{}
	p := New(DefaultConfig(), d)
	l := lap(5000, 1)
	reqs := drive(p, laps(l, 4))
	if len(reqs) < len(l) {
		t.Fatalf("only %d prefetches over %d accesses", len(reqs), 4*len(l))
	}
	inStream := map[mem.Line]bool{}
	for _, x := range l {
		inStream[x] = true
	}
	good := 0
	for _, r := range reqs {
		if inStream[mem.LineOf(r.Addr)] {
			good++
		}
	}
	if frac := float64(good) / float64(len(reqs)); frac < 0.9 {
		t.Errorf("only %.0f%% of prefetches on-stream", frac*100)
	}
}

func TestGeneratesOffchipTraffic(t *testing.T) {
	d := &fakeDRAM{}
	p := New(DefaultConfig(), d)
	drive(p, laps(lap(3000, 2), 3))
	if p.Stats.OffchipTraffic() == 0 {
		t.Fatal("no off-chip metadata traffic recorded")
	}
	if p.Stats.GHBWrites == 0 || p.Stats.GHBReads == 0 {
		t.Errorf("GHB traffic missing: %+v", p.Stats)
	}
	if d.reads == 0 || d.writes == 0 {
		t.Error("fake DRAM saw no metadata accesses")
	}
}

func TestWriteSamplingAmortizes(t *testing.T) {
	// With SamplePeriod N, GHB writes must be about events/N.
	cfg := DefaultConfig()
	cfg.SamplePeriod = 8
	d := &fakeDRAM{}
	p := New(cfg, d)
	n := 8000
	drive(p, lap(n, 3))
	if p.Stats.GHBWrites > uint64(n/8+8) {
		t.Errorf("GHB writes %d exceed sampled rate for %d events", p.Stats.GHBWrites, n)
	}
}

func TestIndexCacheReducesIndexReads(t *testing.T) {
	d := &fakeDRAM{}
	p := New(DefaultConfig(), d)
	// A small hot set: the index cache should absorb most index lookups.
	var lines []mem.Line
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		lines = append(lines, mem.Line(100+rng.Intn(256)))
	}
	drive(p, lines)
	if p.Stats.IndexCacheHits == 0 {
		t.Fatal("index cache never hit")
	}
	if p.Stats.IndexReads > p.Stats.IndexCacheHits {
		t.Errorf("index reads %d exceed cache hits %d on a hot set",
			p.Stats.IndexReads, p.Stats.IndexCacheHits)
	}
}

func TestMetadataDelayPropagatesToRequests(t *testing.T) {
	d := &fakeDRAM{}
	p := New(DefaultConfig(), d)
	l := lap(2000, 5)
	drive(p, l)
	reqs := drive(p, l)
	if len(reqs) == 0 {
		t.Fatal("no prefetches")
	}
	withDelay := 0
	for _, r := range reqs {
		if r.Delay > 0 {
			withDelay++
		}
	}
	if withDelay == 0 {
		t.Error("no request carries off-chip metadata latency")
	}
}

func TestDefaults(t *testing.T) {
	p := New(Config{}, &fakeDRAM{})
	if p.Name() != "stms" {
		t.Errorf("name = %q", p.Name())
	}
	if p.cfg.GHBEntries != DefaultConfig().GHBEntries {
		t.Error("defaults not applied")
	}
}
