package meta

import (
	"math/rand"
	"testing"

	"streamline/internal/audit"
	"streamline/internal/mem"
)

func storeRules(s *Store) map[string]int {
	a := audit.New(0)
	s.AuditScan(a, 0)
	rules := map[string]int{}
	for _, v := range a.Violations() {
		rules[v.Rule]++
	}
	return rules
}

func exercisedStore() *Store {
	s := NewStore(anyConfig(true, true, true, 16), &NullBridge{Sets: 256, Ways: 16})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		tr := mem.Line(rng.Uint64() >> 24)
		s.Insert(0, 1, Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}})
		s.Lookup(0, 1, tr)
	}
	return s
}

func TestAuditCleanAfterUse(t *testing.T) {
	if r := storeRules(exercisedStore()); len(r) != 0 {
		t.Fatalf("clean store reports violations: %v", r)
	}
}

func TestAuditDetectsStructuralOverflow(t *testing.T) {
	s := exercisedStore()
	s.curBytes = s.maxBytes() + mem.LineSize
	if r := storeRules(s); r["structural-capacity"] == 0 {
		t.Fatalf("structural capacity overflow not detected: %v", r)
	}
}

func TestAuditDetectsMalformedEntry(t *testing.T) {
	s := exercisedStore()
	found := false
scan:
	for set := range s.slots {
		for idx := range s.slots[set] {
			if s.slots[set][idx].valid {
				s.slots[set][idx].targets = nil
				found = true
				break scan
			}
		}
	}
	if !found {
		t.Fatal("exercised store holds no valid entries")
	}
	if r := storeRules(s); r["entry-malformed"] == 0 {
		t.Fatalf("target-less entry not detected: %v", r)
	}
}

func TestAuditDetectsAccountingDrift(t *testing.T) {
	s := exercisedStore()
	s.Stats.Lookups++
	if r := storeRules(s); r["lookup-accounting"] == 0 {
		t.Fatalf("lookup accounting drift not detected: %v", r)
	}
	s = exercisedStore()
	s.Stats.Writes++
	if r := storeRules(s); r["write-accounting"] == 0 {
		t.Fatalf("write accounting drift not detected: %v", r)
	}
}

func TestReservedBlocksMatchesSize(t *testing.T) {
	s := exercisedStore()
	if got, want := s.ReservedBlocks(), s.SizeBytes()/mem.LineSize; got != want {
		t.Fatalf("ReservedBlocks = %d, want %d", got, want)
	}
}
