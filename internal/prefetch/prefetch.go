// Package prefetch defines the interface between the simulator's cache
// hierarchy and its hardware prefetchers, plus shared plumbing. Concrete
// prefetchers live in subpackages (stride, berti, ipcp, bingo, spp, triage,
// triangel) and in internal/core (Streamline).
package prefetch

import (
	"streamline/internal/mem"
	"streamline/internal/meta"
)

// Event describes one demand access observed at a prefetcher's attach
// level. Temporal prefetchers attach to the L2 and are fed misses and
// prefetch hits; L1 prefetchers see every L1D access.
type Event struct {
	// Now is the core cycle at which the access reached the attach level.
	Now uint64
	// PC is the load/store instruction's program counter.
	PC mem.PC
	// Addr is the full byte address (prefetchers that work at line
	// granularity call Line()).
	Addr mem.Addr
	// IsStore marks write accesses.
	IsStore bool
	// Hit reports whether the access hit at the attach level.
	Hit bool
	// PrefetchHit reports a demand hit on a line a prefetch installed —
	// the "prefetch hit" training signal of the temporal prefetchers.
	PrefetchHit bool
}

// Line returns the accessed cache line.
func (e Event) Line() mem.Line { return mem.LineOf(e.Addr) }

// Request is a prefetch the prefetcher asks the hierarchy to issue.
type Request struct {
	// Addr is the byte address to prefetch (line-aligned is fine).
	Addr mem.Addr
	// Delay is the extra issue latency already incurred before the
	// request can leave the prefetcher — for temporal prefetchers, the
	// metadata read time.
	Delay uint64
}

// Prefetcher is a hardware prefetcher. Train observes one event and appends
// any requests to out, returning the extended slice (the caller recycles the
// buffer to keep the hot path allocation-free).
type Prefetcher interface {
	Name() string
	Train(ev Event, out []Request) []Request
}

// AccuracyConsumer is implemented by prefetchers whose policies depend on
// observed global prefetch accuracy — Streamline's utility-aware dynamic
// partitioner scores metadata hits with it (Section IV-E4). The simulator
// delivers epoch accuracy every 2048 prefetch fills.
type AccuracyConsumer interface {
	ObserveAccuracy(acc float64)
}

// MetaReporter is implemented by temporal prefetchers so the simulator can
// include their metadata-store statistics in results.
type MetaReporter interface {
	MetaStats() meta.Stats
}

// LLCDataObserver is implemented by temporal prefetchers whose dynamic
// partitioner profiles the utility of LLC data capacity; the simulator
// feeds it the core's LLC data accesses.
type LLCDataObserver interface {
	ObserveLLCData(set int, line mem.Line)
}

// Nil is the absent prefetcher: it never issues requests.
type Nil struct{}

// Name implements Prefetcher.
func (Nil) Name() string { return "none" }

// Train implements Prefetcher.
func (Nil) Train(_ Event, out []Request) []Request { return out }
