package sim

import (
	"testing"

	"streamline/internal/cache"
	"streamline/internal/mem"
	"streamline/internal/prefetch"
	"streamline/internal/trace"
)

// scriptedPF emits one prefetch for addr on its fireOn-th training event,
// letting tests stage exact cross-level prefetch interleavings.
type scriptedPF struct {
	name   string
	fireOn int
	addr   mem.Addr
	delay  uint64
	seen   int
}

func (p *scriptedPF) Name() string { return p.name }

func (p *scriptedPF) Train(ev prefetch.Event, out []prefetch.Request) []prefetch.Request {
	p.seen++
	if p.seen == p.fireOn {
		return append(out, prefetch.Request{Addr: p.addr, Delay: p.delay})
	}
	return out
}

// TestPromoteCarriesInFlightWait pins the fix for a timing-accounting bug
// the differential oracle's conservation pass flagged: when an L1 prefetch
// promoted a line whose L2 copy was still in flight, the promote path
// ignored the lookup's ExtraWait and stamped the L1 copy ready at
// now+L2.Latency — backdating it by the remaining DRAM time, so a demand
// hit on the promoted line observed (and accounted) almost no wait.
//
// Staging: record 1 (load A) trains the L2 engine, which prefetches X — a
// DRAM-bound fill whose L2 readyAt is far in the future. Record 2 (load A,
// an L1 hit) trains the L1 engine, which prefetches X while that fill is
// still in flight: X is resident in the L2, so the request resolves as an
// L2→L1 promote. Record 3 (load X) demand-hits the promoted L1 copy, which
// must still carry the in-flight fill's DRAM-scale wait.
func TestPromoteCarriesInFlightWait(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 3
	const xAddr = mem.Addr(1 << 20)
	cfg.L1DPrefetcher = func() prefetch.Prefetcher {
		return &scriptedPF{name: "l1-script", fireOn: 2, addr: xAddr}
	}
	// The 400-cycle issue delay pushes X's fill completion far past record
	// 2's issue time, so the promote observes a wide in-flight window.
	cfg.L2Prefetcher = func() prefetch.Prefetcher {
		return &scriptedPF{name: "l2-script", fireOn: 1, addr: xAddr, delay: 400}
	}
	sys := New(cfg)
	// Records 2 and 3 depend on their predecessors so each issues only
	// after the previous access completed — the waits the test measures
	// then come from X's fill alone, not from overlapping A's miss.
	res := sys.RunTrace(&oneShotTrace{recs: []trace.Record{
		{PC: 1, Addr: 0},
		{PC: 1, Addr: 0, DependsOnPrev: true},
		{PC: 2, Addr: xAddr, DependsOnPrev: true},
	}})

	c := res.Cores[0]
	if got := c.L1D.Sources[cache.SrcL1].Fills; got != 1 {
		t.Fatalf("L1 engine fills = %d, want 1 (the promote)", got)
	}
	if got := c.L1D.UsefulPrefetches; got != 1 {
		t.Fatalf("L1D useful prefetches = %d, want 1 (load X hit the promoted copy)", got)
	}
	// The discriminator: the promoted copy must still carry the in-flight
	// fill's DRAM-scale wait. The backdated path reports at most the L2
	// latency (~12 cycles); the carried wait is >100 (row activation + CAS
	// + transfer still outstanding).
	if c.L1D.ExtraWaitCycles <= 50 {
		t.Errorf("demand hit on promoted line waited %d cycles; "+
			"in-flight DRAM wait was dropped on promote", c.L1D.ExtraWaitCycles)
	}
	if got := c.L1D.Sources[cache.SrcL1].UsefulLate; got != 1 {
		t.Errorf("L1 engine useful-late = %d, want 1", got)
	}
}
