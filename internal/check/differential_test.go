package check

import (
	"math/rand"
	"testing"

	"streamline/internal/cache"
	"streamline/internal/mem"
)

// shadowGeometry derives a valid shadowed-pair geometry from two selector
// bytes (mirroring the cache package's property-test idiom).
func shadowGeometry(setSel, waySel uint8) cache.Config {
	return cache.Config{
		Name:    "diff",
		Sets:    4 << (setSel % 5), // 4..64, power of two
		Ways:    1 + int(waySel%8), // 1..8
		Latency: 10,
	}
}

// applyOps replays an encoded operation stream through the shadowed pair,
// comparing full state periodically and at the end. Three bytes per op:
// opcode/clock-advance, line selector (an 8-bit space, forcing heavy set
// and line collisions), and an operand (fill source, readiness delay,
// reservation width). Every byte sequence is a valid program — the decoder
// is total, so the fuzzer can explore freely.
func applyOps(sh *Shadow, data []byte) {
	var now uint64
	op := 0
	for i := 0; i+2 < len(data); i += 3 {
		b0, b1, b2 := data[i], data[i+1], data[i+2]
		now += uint64(b0 >> 4 & 3) // advance 0..3 cycles
		l := mem.Line(b1)
		addr := mem.AddrOf(l)
		switch b0 % 8 {
		case 0:
			sh.Lookup(now, mem.Access{PC: 0x400100, Addr: addr, Kind: mem.Load})
		case 1:
			sh.Lookup(now, mem.Access{PC: 0x400104, Addr: addr, Kind: mem.Store})
		case 2:
			sh.Lookup(now, mem.Access{Addr: addr, Kind: mem.Prefetch})
		case 3:
			src := cache.Source(1 + b2%3) // SrcL1, SrcL2, SrcTemporal
			sh.Fill(mem.Access{Addr: addr, Kind: mem.Prefetch}, now+uint64(b2%64), src)
		case 4:
			kind := mem.Load
			switch b2 % 3 {
			case 1:
				kind = mem.Store
			case 2:
				kind = mem.Writeback
			}
			sh.Fill(mem.Access{PC: 0x400108, Addr: addr, Kind: kind}, now+uint64(b2%32), cache.SrcDemand)
		case 5:
			sh.MarkDirty(l)
		case 6:
			if b2&1 == 0 {
				sh.Probe(l)
			} else {
				sh.LookupResident(now, mem.Access{PC: 0x40010c, Addr: addr, Kind: mem.Load})
			}
		case 7:
			set := int(b1) % sh.Ref.sets
			ways := int(b2) % (sh.Ref.ways + 1)
			sh.Reserve(set, ways)
		}
		if op++; op%64 == 0 {
			sh.CheckState()
		}
	}
	sh.CheckState()
}

// failOnMismatch reports every recorded divergence as a test failure.
func failOnMismatch(t *testing.T, sh *Shadow) {
	t.Helper()
	for _, m := range sh.Mismatches() {
		t.Errorf("divergence: %s", m)
	}
	if t.Failed() {
		t.Logf("after %d ops", sh.Ops())
	}
}

// TestDifferentialRandomStreams replays long random operation streams
// through the shadowed pair across a spread of geometries. Any divergence
// between internal/cache and the reference LRU semantics fails the test
// with the op sequence position.
func TestDifferentialRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		cfg := shadowGeometry(uint8(rng.Uint32()), uint8(rng.Uint32()))
		sh := NewShadow(cfg)
		data := make([]byte, 3*2000)
		rng.Read(data)
		applyOps(sh, data)
		failOnMismatch(t, sh)
		if t.Failed() {
			t.Fatalf("trial %d, geometry %d sets x %d ways", trial, cfg.Sets, cfg.Ways)
		}
	}
}

// TestDifferentialReserveChurn focuses on the reservation/flush interplay:
// repeated repartitioning while prefetched and dirty lines are resident is
// where lifecycle accounting is easiest to leak (the cache.Reserve bug this
// suite flagged lived exactly there).
func TestDifferentialReserveChurn(t *testing.T) {
	sh := NewShadow(cache.Config{Name: "churn", Sets: 8, Ways: 4, Latency: 10})
	rng := rand.New(rand.NewSource(2))
	var now uint64
	for i := 0; i < 5000; i++ {
		now += uint64(rng.Intn(3))
		l := mem.Line(rng.Intn(128))
		switch rng.Intn(5) {
		case 0:
			sh.Lookup(now, mem.Access{PC: 0x400200, Addr: mem.AddrOf(l), Kind: mem.Load})
		case 1:
			sh.Fill(mem.Access{Addr: mem.AddrOf(l), Kind: mem.Prefetch},
				now+uint64(rng.Intn(100)), cache.SrcTemporal)
		case 2:
			sh.Fill(mem.Access{PC: 0x400204, Addr: mem.AddrOf(l), Kind: mem.Store},
				now+20, cache.SrcDemand)
		case 3:
			sh.Reserve(rng.Intn(8), rng.Intn(5))
		case 4:
			sh.MarkDirty(l)
		}
		if i%32 == 0 {
			sh.CheckState()
		}
	}
	sh.CheckState()
	failOnMismatch(t, sh)
}

// TestStackInclusion verifies the LRU stack property on the real cache: for
// a fixed set count, demand misses are monotonically non-increasing in
// associativity. LRU is a stack algorithm, so a larger cache's content is a
// superset of a smaller one's at every step — more ways can only remove
// misses. A violation means replacement is not actually LRU.
func TestStackInclusion(t *testing.T) {
	const sets = 16
	rng := rand.New(rand.NewSource(3))
	// A mix of looped sequential runs and random pointer-chase re-references,
	// so every associativity sees both streaming evictions and reuse.
	accesses := make([]mem.Line, 0, 20000)
	for len(accesses) < cap(accesses) {
		switch rng.Intn(3) {
		case 0:
			base := mem.Line(rng.Intn(512))
			for i := 0; i < 64; i++ {
				accesses = append(accesses, base+mem.Line(i))
			}
		case 1:
			accesses = append(accesses, mem.Line(rng.Intn(64)))
		case 2:
			accesses = append(accesses, mem.Line(rng.Intn(2048)))
		}
	}

	var prev uint64
	for ways := 1; ways <= 8; ways++ {
		c := cache.New(cache.Config{Name: "stack", Sets: sets, Ways: ways, Latency: 10})
		var now uint64
		for _, l := range accesses {
			now++
			if !c.Lookup(now, mem.Access{PC: 0x400300, Addr: mem.AddrOf(l), Kind: mem.Load}).Hit {
				c.Fill(mem.Access{PC: 0x400300, Addr: mem.AddrOf(l), Kind: mem.Load}, now, cache.SrcDemand)
			}
		}
		misses := c.Stats.DemandMisses
		if ways > 1 && misses > prev {
			t.Errorf("stack inclusion violated: %d ways yields %d misses, %d ways yielded %d",
				ways, misses, ways-1, prev)
		}
		prev = misses
	}
}

// TestShadowDetectsDivergence proves the differ itself works: a shadowed
// pair whose reference is perturbed must report mismatches (guards against
// a vacuously green oracle).
func TestShadowDetectsDivergence(t *testing.T) {
	sh := NewShadow(cache.Config{Name: "neg", Sets: 4, Ways: 2, Latency: 10})
	l := mem.Line(7)
	// Install via the real cache only, bypassing the shadowed entry point.
	sh.Real.Fill(mem.Access{Addr: mem.AddrOf(l), Kind: mem.Load}, 0, cache.SrcDemand)
	sh.CheckState()
	if len(sh.Mismatches()) == 0 {
		t.Fatal("CheckState missed a content divergence")
	}

	sh2 := NewShadow(cache.Config{Name: "neg2", Sets: 4, Ways: 2, Latency: 10})
	sh2.Ref.Stats.DemandAccesses++
	sh2.Lookup(0, mem.Access{Addr: mem.AddrOf(l), Kind: mem.Load})
	sh2.CheckState()
	if len(sh2.Mismatches()) == 0 {
		t.Fatal("CheckState missed a stats divergence")
	}
}
