package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestMain re-execs the test binary as the streamsim command when
// STREAMSIM_BE_MAIN=1, so the tests below drive the real CLI — real flag
// parsing, real exit codes — without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("STREAMSIM_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// run executes the CLI with args, returning exit code, stdout, and stderr.
func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "STREAMSIM_BE_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running streamsim %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return code, stdout.String(), stderr.String()
}

// TestFlagValidation: every enum and bounds flag is checked up front — a bad
// value exits 2 with an error listing the allowed values, before any
// simulation state is built.
func TestFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the CLI in child processes")
	}
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"bad l1", []string{"-l1", "ghb"}, "none, stride or berti"},
		{"bad l2", []string{"-l2", "ghb"}, "none, ipcp, bingo or spp"},
		{"bad temporal", []string{"-temporal", "markov"}, "streamline-bypass or stms"},
		{"bad workload", []string{"-workload", "nope"}, `unknown workload "nope"`},
		{"bad llc-sets", []string{"-llc-sets", "100"}, "power of two"},
		{"bad cores", []string{"-cores", "-2"}, "cores must be between"},
		{"bad footprint", []string{"-footprint", "1.5"}, "footprint must be in (0, 1]"},
		{"bad telemetry level", []string{"-telemetry-level", "loud"}, "unknown severity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := run(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2\nstderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Errorf("stderr %q does not list the allowed values (%q)", stderr, tc.wantErr)
			}
			if stdout != "" {
				t.Errorf("invalid invocation printed to stdout: %q", stdout)
			}
		})
	}
}

// TestTinyRunSucceeds: a valid invocation still simulates and prints the
// stats header.
func TestTinyRunSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation in a child process")
	}
	code, stdout, stderr := run(t,
		"-warmup", "1000", "-measure", "4000", "-footprint", "0.02",
		"-llc-sets", "16", "-meta-kb", "8")
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "workload=sphinx06") || !strings.Contains(stdout, "core 0: IPC") {
		t.Errorf("stats header missing from stdout:\n%s", stdout)
	}
}

// TestListStillWorks: -list bypasses spec validation entirely.
func TestListStillWorks(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the CLI in a child process")
	}
	code, stdout, _ := run(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	if !strings.Contains(stdout, "workloads:") || !strings.Contains(stdout, "sphinx06") {
		t.Errorf("-list output:\n%s", stdout)
	}
}

// TestInterruptCancelsRun: SIGINT mid-simulation stops the engine at the next
// epoch boundary, prints a cancellation summary to stderr, and exits 130 —
// instead of ignoring the signal for the rest of a long run. The measure
// budget is the spec ceiling (~10s of simulation at the observed rate, an
// order of magnitude past the signal point), so a 0 exit would mean the run
// ignored the interrupt and simulated to completion.
func TestInterruptCancelsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs and signals a simulation in a child process")
	}
	cmd := exec.Command(os.Args[0],
		"-warmup", "1000", "-measure", "99000000", "-footprint", "0.05",
		"-llc-sets", "16", "-meta-kb", "8")
	cmd.Env = append(os.Environ(), "STREAMSIM_BE_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the child time to parse flags, build the system, and install the
	// signal handler; the engine then runs for minutes unless interrupted.
	time.Sleep(1 * time.Second)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("interrupted run: err=%v stdout=%q stderr=%q", err, stdout.String(), stderr.String())
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("exit %d, want 130\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "canceled after") ||
		!strings.Contains(stderr.String(), "% of measure") {
		t.Errorf("stderr lacks the cancellation summary:\n%s", stderr.String())
	}
	if strings.Contains(stdout.String(), "core 0: IPC") {
		t.Errorf("interrupted run still printed statistics:\n%s", stdout.String())
	}
}
