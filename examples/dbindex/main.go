// Database index probing: a hash-join-style scenario. One PC performs
// dependent index probes (temporally prefetchable when the probe schedule
// repeats), another scans relations sequentially. The example inspects
// Streamline's per-PC machinery: stability-based degree control throttles
// the churning phase while the stable phase runs at full degree, and the
// dynamic partitioner sizes the metadata store.
//
//	go run ./examples/dbindex
package main

import (
	"fmt"

	"streamline/internal/core"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/stride"
	"streamline/internal/sim"
	"streamline/internal/workloads"
)

func run(workload string, temporal bool) (sim.Result, *sim.System) {
	cfg := sim.DefaultConfig(1)
	cfg.L2.Sets = 128
	cfg.LLC.Sets = 256
	cfg.WarmupInstructions = 300_000
	cfg.MeasureInstructions = 900_000
	cfg.L1DPrefetcher = func() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) }
	if temporal {
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			o := core.DefaultOptions()
			o.MetaBytes = 128 << 10
			o.MinSets = 16
			return core.New(o, b)
		}
	}
	sys := sim.New(cfg)
	w, err := workloads.Get(workload)
	if err != nil {
		panic(err)
	}
	sys.SetTrace(0, w.NewTrace(workloads.Scale{Footprint: 0.1}, 7))
	return sys.Run(), sys
}

func main() {
	fmt.Println("Index probing scenarios: stable (gcc17-like) vs churning (xz17-like)")
	fmt.Println()
	for _, wl := range []string{"gcc17", "xz17"} {
		base, _ := run(wl, false)
		with, sys := run(wl, true)
		fmt.Printf("%s:\n", wl)
		fmt.Printf("  IPC %.4f -> %.4f (%.2fx)\n", base.IPC(), with.IPC(), with.IPC()/base.IPC())
		fmt.Printf("  L2 misses %d -> %d\n",
			base.Cores[0].L2.DemandMisses, with.Cores[0].L2.DemandMisses)

		// Inspect the prefetcher's internal view.
		if p, ok := sys.TemporalOf(0).(*core.Prefetcher); ok {
			s := p.Stats
			total := s.BufferHits + s.BufferMisses
			if total > 0 {
				fmt.Printf("  metadata buffer hit rate: %.0f%% (stable PCs sit near 75%%)\n",
					100*float64(s.BufferHits)/float64(total))
			}
			fmt.Printf("  stream alignments: %d of %d opportunities\n",
				s.Alignments, s.AlignmentOpportunities)
			fmt.Printf("  partition: %d KB of %d KB max (utility-aware)\n",
				p.Store().SizeBytes()>>10, p.Store().Config().MaxBytes>>10)
		}
		fmt.Println()
	}
	fmt.Println("the churning schedule destabilizes its PC: degree control and the")
	fmt.Println("confidence bits suppress most of the useless prefetches it would cause.")
}
