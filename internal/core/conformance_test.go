package core_test

import (
	"testing"

	"streamline/internal/core"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/ptest"
)

// The streamline core prefetcher runs the same shared conformance harness
// as every other engine in the repository (the other eight live in their
// own packages under internal/prefetch).

func confFactory() prefetch.Prefetcher {
	return core.New(core.DefaultOptions(), &meta.NullBridge{Sets: 256, Ways: 16, Latency: 20})
}

func TestConformance(t *testing.T) {
	ptest.Exercise(t, confFactory)
}

// TestOracle runs this engine's request stream against the differential
// cache oracle (see ptest.Oracle).
func TestOracle(t *testing.T) {
	ptest.Oracle(t, confFactory)
}
