package triage

import (
	"testing"

	"streamline/internal/mem"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
)

func testBridge() *meta.NullBridge { return &meta.NullBridge{Sets: 2048, Ways: 16, Latency: 20} }

func drive(p *Prefetcher, pc mem.PC, lines []mem.Line) []prefetch.Request {
	var all, buf []prefetch.Request
	for i, l := range lines {
		buf = p.Train(prefetch.Event{Now: uint64(i), PC: pc, Addr: mem.AddrOf(l)}, buf[:0])
		all = append(all, buf...)
	}
	return all
}

func lap(start, n, stride int) []mem.Line {
	out := make([]mem.Line, n)
	for i := range out {
		out[i] = mem.Line(start + i*stride)
	}
	return out
}

func TestLearnsRepeatingSequence(t *testing.T) {
	p := New(DefaultConfig(), testBridge())
	l := lap(1000, 128, 7)
	drive(p, 1, l)
	reqs := drive(p, 1, l)
	if len(reqs) == 0 {
		t.Fatal("no prefetches on second lap")
	}
	inStream := map[mem.Line]bool{}
	for _, x := range l {
		inStream[x] = true
	}
	good := 0
	for _, r := range reqs {
		if inStream[mem.LineOf(r.Addr)] {
			good++
		}
	}
	if float64(good)/float64(len(reqs)) < 0.8 {
		t.Errorf("only %d/%d prefetches on-stream", good, len(reqs))
	}
}

func TestIdealVariantUnlimited(t *testing.T) {
	p := NewIdeal()
	if p.Name() != "triage-ideal" {
		t.Errorf("name = %q", p.Name())
	}
	// A sequence much larger than any realistic partition still gets full
	// coverage from the ideal store.
	l := lap(1, 50_000, 3)
	drive(p, 1, l)
	reqs := drive(p, 1, l)
	if len(reqs) < len(l) {
		t.Errorf("ideal Triage issued %d prefetches for %d accesses", len(reqs), len(l))
	}
	if p.Store() != nil {
		t.Error("ideal variant should have no LLC store")
	}
}

func TestLUTRecyclingCorruptsOldTargets(t *testing.T) {
	// Fill the LUT far beyond capacity: early targets' regions get
	// recycled, so decoding can return wrong-region addresses. The
	// prefetcher must survive and the decode must stay deterministic.
	l := newLUT(8)
	firstIdx := l.encode(0 << 11)
	for r := 1; r < 100; r++ {
		l.encode(mem.Line(r) << 11)
	}
	got := l.decode(firstIdx, 5)
	if got>>11 == 0 {
		t.Error("expected the recycled slot to point to a different region")
	}
}

func TestLUTRoundTripWhileResident(t *testing.T) {
	l := newLUT(1024)
	target := mem.Line(0xabcd<<11 | 0x123)
	idx := l.encode(target)
	if got := l.decode(idx, target); got != target {
		t.Errorf("decode = %#x, want %#x", got, target)
	}
}

func TestMetaStatsExposed(t *testing.T) {
	p := New(DefaultConfig(), testBridge())
	drive(p, 1, lap(1, 100, 2))
	if p.MetaStats().Writes == 0 {
		t.Error("no metadata writes recorded")
	}
	var _ prefetch.MetaReporter = p
}
