package serve

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU over marshaled response bodies, keyed by the
// content-addressed request key. It is the fast tier in front of the durable
// store: a memory hit serves the exact bytes a cold computation produced
// without re-hashing or re-reading anything.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached body for key, promoting it to most recently used.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// add inserts (or refreshes) key's body, evicting the least recently used
// entry when over capacity.
func (c *resultCache) add(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
