// Package telemetry is the simulator's opt-in observability layer: an
// interval sampler that turns the hierarchy's cumulative counters into a
// per-core time series, and a structured event trace for discrete
// occurrences (metadata resizes, accuracy-epoch deliveries, MSHR-full
// stalls, DRAM row conflicts, audit violations). Both share one bounded,
// severity-filtered JSONL sink.
//
// The design constraints mirror internal/audit's, in order:
//
//  1. Telemetry must never perturb the simulation. Every sample is computed
//     from counters the simulator already maintains, so an instrumented run
//     produces a byte-identical Result to an uninstrumented one.
//  2. Disabled telemetry must cost (near) nothing. A nil Collector or
//     Emitter reduces every hook to a nil check and a branch.
//  3. Output must be deterministic. Records are emitted in simulation order
//     from a single goroutine, floats serialize via encoding/json's
//     shortest round-trip form, and the closing summary sorts its keys, so
//     two runs with the same seed emit byte-identical JSONL.
package telemetry

import (
	"fmt"
	"io"
)

// Severity classifies event records so high-frequency detail (MSHR stalls,
// row conflicts) can be filtered out without losing the rare structural
// events (resizes, audit violations).
type Severity uint8

const (
	// Debug marks high-frequency microarchitectural events.
	Debug Severity = iota
	// Info marks structural events worth seeing by default.
	Info
	// Warn marks events that indicate something is wrong (audit violations).
	Warn
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// ParseSeverity converts a flag value into a Severity.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "debug":
		return Debug, nil
	case "info":
		return Info, nil
	case "warn":
		return Warn, nil
	}
	return Info, fmt.Errorf("telemetry: unknown severity %q (want debug, info or warn)", s)
}

// EventRecord is one discrete event in the JSONL trace.
type EventRecord struct {
	Type string `json:"type"` // always "event"
	// Cycle is the core cycle the event occurred at.
	Cycle uint64 `json:"cycle"`
	// Core is the reporting core, or -1 for shared components (LLC, DRAM).
	Core int `json:"core"`
	// Component names the structure that emitted the event ("L1D", "L2",
	// "LLC", "dram", "meta", "sim"), matching the audit subsystem's names.
	Component string `json:"component"`
	// Event is the short event name ("mshr-full", "row-conflict", "resize",
	// "accuracy-epoch", "audit-<rule>").
	Event    string `json:"event"`
	Severity string `json:"severity"`
	Detail   string `json:"detail,omitempty"`
}

// IntervalRecord is one per-core sample of the interval time series. Fields
// under Cum are cumulative over the measured phase and monotonically
// non-decreasing; everything else is an interval delta or an instantaneous
// occupancy.
type IntervalRecord struct {
	Type string `json:"type"` // always "interval"
	Core int    `json:"core"`
	// Seq numbers this core's samples from 0.
	Seq int `json:"seq"`
	// Instructions and Cycles are cumulative measured-phase counts.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`

	// IPC and the MPKI/accuracy figures below cover this interval only.
	IPC        float64 `json:"ipc"`
	L1DMPKI    float64 `json:"l1dMpki"`
	L2MPKI     float64 `json:"l2Mpki"`
	PFAccuracy float64 `json:"pfAccuracy"`
	// PFCoverage is useful prefetches over useful plus remaining L2 demand
	// misses in the interval (the fraction of would-be misses covered).
	PFCoverage float64 `json:"pfCoverage"`
	// PFLateRate is the fraction of the interval's useful prefetches whose
	// fill was still in flight when the demand arrived.
	PFLateRate float64 `json:"pfLateRate"`

	LLC  LLCSample  `json:"llc"`
	DRAM DRAMSample `json:"dram"`
	Meta MetaSample `json:"meta"`

	// Prefetchers is the per-source lifecycle attribution for the interval.
	Prefetchers []PrefetcherSample `json:"prefetchers,omitempty"`

	Cum CumSample `json:"cum"`
}

// LLCSample is the shared LLC's state: an instantaneous occupancy split plus
// the interval demand hit rate. Occupancies are whole-LLC (shared across
// cores); interval counters are deltas over this core's sample window.
type LLCSample struct {
	// DemandLines counts valid lines last touched by demand; PrefetchLines
	// counts prefetched lines not yet referenced; MetaBlocks counts way
	// slots reserved for temporal-prefetcher metadata partitions.
	DemandLines   int     `json:"demandLines"`
	PrefetchLines int     `json:"prefetchLines"`
	MetaBlocks    int     `json:"metaBlocks"`
	DemandHitRate float64 `json:"demandHitRate"`
}

// DRAMSample is the memory system's interval activity (shared; deltas over
// this core's sample window).
type DRAMSample struct {
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	// BytesPerCycle is line transfers times 64B over the interval's core
	// cycles — the observed bandwidth in bytes per core cycle.
	BytesPerCycle float64 `json:"bytesPerCycle"`
	RowHitRate    float64 `json:"rowHitRate"`
}

// MetaSample is the core's temporal-prefetcher metadata activity for the
// interval (zero when no temporal prefetcher is configured).
type MetaSample struct {
	// Traffic is metadata blocks moved to/from the LLC in the interval,
	// including rearrangement traffic.
	Traffic        uint64  `json:"traffic"`
	Lookups        uint64  `json:"lookups"`
	TriggerHitRate float64 `json:"triggerHitRate"`
	Resizes        uint64  `json:"resizes"`
	// OccupancyEntries and SizeBytes are instantaneous store state.
	OccupancyEntries int `json:"occupancyEntries"`
	SizeBytes        int `json:"sizeBytes"`
}

// PrefetcherSample is one prefetcher's interval lifecycle breakdown.
type PrefetcherSample struct {
	// Source is "l1", "l2" or "temporal".
	Source           string  `json:"source"`
	Issued           uint64  `json:"issued"`
	DroppedDuplicate uint64  `json:"droppedDuplicate"`
	Fills            uint64  `json:"fills"`
	UsefulTimely     uint64  `json:"usefulTimely"`
	UsefulLate       uint64  `json:"usefulLate"`
	EvictedUnused    uint64  `json:"evictedUnused"`
	Accuracy         float64 `json:"accuracy"`
}

// CumSample carries cumulative measured-phase counters; every field is
// monotonically non-decreasing across a core's records.
type CumSample struct {
	L1DMisses        uint64 `json:"l1dMisses"`
	L2Misses         uint64 `json:"l2Misses"`
	PrefetchesIssued uint64 `json:"prefetchesIssued"`
	PrefetchFills    uint64 `json:"prefetchFills"`
	UsefulPrefetches uint64 `json:"usefulPrefetches"`
	DRAMReads        uint64 `json:"dramReads"`
	DRAMWrites       uint64 `json:"dramWrites"`
	MetaTraffic      uint64 `json:"metaTraffic"`
}

// Collector is one run's telemetry instance, threaded through sim.Config.
// A nil Collector disables everything; all methods are nil-safe.
type Collector struct {
	sink     *Sink
	interval uint64
	keep     bool
	records  []IntervalRecord
}

// New returns a Collector sampling every interval measured instructions per
// core, writing to sink. sink may be nil (timeline-only use); interval zero
// disables interval sampling (events still flow to the sink).
func New(sink *Sink, interval uint64) *Collector {
	return &Collector{sink: sink, interval: interval}
}

// SampleInterval returns the per-core instruction sampling interval (zero
// when sampling is disabled).
func (c *Collector) SampleInterval() uint64 {
	if c == nil {
		return 0
	}
	return c.interval
}

// KeepIntervals retains interval records in memory so Timeline can render
// them after the run.
func (c *Collector) KeepIntervals() {
	if c != nil {
		c.keep = true
	}
}

// RecordInterval emits one interval sample.
func (c *Collector) RecordInterval(r IntervalRecord) {
	if c == nil {
		return
	}
	r.Type = "interval"
	if c.keep {
		c.records = append(c.records, r)
	}
	c.sink.Interval(r)
}

// Intervals returns the retained interval records (KeepIntervals only).
func (c *Collector) Intervals() []IntervalRecord {
	if c == nil {
		return nil
	}
	return c.records
}

// WantEvent reports whether an event at the given severity would be
// recorded, so hot paths can skip formatting entirely.
func (c *Collector) WantEvent(sev Severity) bool {
	return c != nil && c.sink.wants(sev)
}

// Eventf records one event.
func (c *Collector) Eventf(cycle uint64, core int, component, event string, sev Severity, format string, args ...any) {
	if !c.WantEvent(sev) {
		return
	}
	c.sink.Event(EventRecord{
		Type:      "event",
		Cycle:     cycle,
		Core:      core,
		Component: component,
		Event:     event,
		Severity:  sev.String(),
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Emitter returns an event emitter bound to a component and core, or nil
// when this collector has no event sink — so components hold a single
// pointer whose nil check is the entire disabled-path cost.
func (c *Collector) Emitter(component string, core int) *Emitter {
	if c == nil || c.sink == nil {
		return nil
	}
	return &Emitter{c: c, component: component, core: core}
}

// Close finalizes the sink (summary record and flush). Safe on nil and on
// sink-less collectors.
func (c *Collector) Close() error {
	if c == nil {
		return nil
	}
	return c.sink.Close()
}

// Timeline renders the retained interval records as an aligned ASCII table
// (one row per sample, grouped by emission order). KeepIntervals must have
// been called before the run.
func (c *Collector) Timeline(w io.Writer) {
	if c == nil {
		return
	}
	writeTimeline(w, c.interval, c.records)
}

// Emitter is a Collector handle pre-bound to one component and core.
// Components store a *Emitter that is nil when telemetry is off; both
// methods are nil-safe so call sites guard with Enabled alone.
type Emitter struct {
	c         *Collector
	component string
	core      int
}

// Enabled reports whether an event at sev would be recorded.
func (e *Emitter) Enabled(sev Severity) bool {
	return e != nil && e.c.WantEvent(sev)
}

// Eventf records one event from this emitter's component.
func (e *Emitter) Eventf(cycle uint64, sev Severity, event, format string, args ...any) {
	if e == nil {
		return
	}
	e.c.Eventf(cycle, e.core, e.component, event, sev, format, args...)
}
