package mem

import (
	"testing"
	"testing/quick"
)

func TestRateLimiterUnderCapacityIsFree(t *testing.T) {
	r := RateLimiter{BucketCycles: 64, Capacity: 64}
	for i := 0; i < 64; i++ {
		if d := r.Charge(1000, 1); d != 0 {
			t.Fatalf("charge %d delayed %d under capacity", i, d)
		}
	}
	if d := r.Charge(1000, 1); d == 0 {
		t.Error("overflow charge not delayed")
	}
}

func TestRateLimiterSpillGrowsWithExcess(t *testing.T) {
	r := RateLimiter{BucketCycles: 64, Capacity: 64}
	for i := 0; i < 64; i++ {
		r.Charge(0, 1)
	}
	d1 := r.Charge(0, 1)
	d2 := r.Charge(0, 1)
	if d2 <= d1 {
		t.Errorf("spill delays not increasing: %d then %d", d1, d2)
	}
}

func TestRateLimiterBucketsAreIndependentInTime(t *testing.T) {
	r := RateLimiter{BucketCycles: 64, Capacity: 4}
	// Saturate the bucket at t=0.
	for i := 0; i < 10; i++ {
		r.Charge(0, 1)
	}
	// A different (much later) bucket is unaffected.
	if d := r.Charge(10_000, 1); d != 0 {
		t.Errorf("later bucket delayed %d by earlier saturation", d)
	}
	// And returning to a reused slot after wraparound resets it.
	if d := r.Charge(10_000+8*64, 1); d != 0 {
		t.Errorf("wrapped bucket delayed %d", d)
	}
}

func TestRateLimiterOutOfOrderTolerance(t *testing.T) {
	r := RateLimiter{BucketCycles: 64, Capacity: 8}
	// Future-stamped work lands in its own bucket.
	for i := 0; i < 20; i++ {
		r.Charge(100_000, 1)
	}
	// Earlier-stamped accesses in a different bucket are unaffected.
	if d := r.Charge(500, 1); d != 0 {
		t.Errorf("earlier access delayed %d by future work", d)
	}
}

func TestRateLimiterVariableCosts(t *testing.T) {
	r := RateLimiter{BucketCycles: 128, Capacity: 128}
	if d := r.Charge(0, 100); d != 0 {
		t.Errorf("first big charge delayed %d", d)
	}
	if d := r.Charge(0, 100); d == 0 {
		t.Error("second big charge should spill")
	}
}

func TestRateLimiterDelayNonNegativeProperty(t *testing.T) {
	f := func(times []uint32, cost uint8) bool {
		r := RateLimiter{BucketCycles: 64, Capacity: 64}
		for _, tm := range times {
			d := r.Charge(uint64(tm), uint64(cost%16)+1)
			if d > 1<<32 {
				return false // delays must stay bounded by accumulated work
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
