// Package triangel implements the Triangel temporal prefetcher (Ainsworth &
// Mukhanov, ISCA 2024), the paper's state-of-the-art baseline. Triangel
// extends Triage with (1) per-PC reuse and pattern confidence measured by a
// history sampler and second-chance sampler, which filter scan PCs out of
// the metadata and control prefetch degree; (2) a metadata reuse buffer
// (MRB) that reduces LLC metadata traffic; and (3) dynamic partitioning of
// its pairwise, way-partitioned metadata store — whose two-level index
// function forces a costly metadata rearrangement on every resize, the
// overhead Streamline's filtered indexing eliminates.
package triangel

import (
	"streamline/internal/mem"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
)

// Config parameterizes Triangel.
type Config struct {
	// TUSize is the number of training-unit entries (per-PC state).
	TUSize int
	// HSSets and HSWays shape the history sampler.
	HSSets, HSWays int
	// SCSSize is the second-chance sampler capacity.
	SCSSize int
	// SampleShift is the initial per-PC sampling period exponent: one in
	// 2^SampleShift training events enters the HS. The period adapts per
	// PC (Triangel's 4-bit dynamic sampling rate): unused evictions grow
	// it until sampled correlations survive to their reuse.
	SampleShift uint8
	// ReuseThreshold gates metadata insertion: PCs whose correlations are
	// not reused (scans) are bypassed. Range 0..15.
	ReuseThreshold int
	// MRBSize is the metadata reuse buffer capacity (entries).
	MRBSize int
	// MaxDegree bounds the prefetch chain (4 in the paper).
	MaxDegree int
	// MetaBytes is the maximum metadata partition size (1MB).
	MetaBytes int
	// FixedBytes pins the partition and disables dynamic partitioning
	// when positive (used by the storage-efficiency sweeps).
	FixedBytes int
	// ResizeEpoch is the dynamic partitioner's decision period.
	ResizeEpoch uint64
	// Lookahead enables distance-2 correlation for pattern-confident PCs.
	Lookahead bool
	// Policy overrides the metadata replacement policy (default SRRIP,
	// per the Triangel paper; Figure 13c swaps in TP-Mockingjay).
	Policy meta.EntryPolicyFactory
	// StoreOverride replaces the whole store configuration (used by the
	// Table I partitioning-scheme sweep); nil uses Triangel's RUW store.
	StoreOverride *meta.StoreConfig
}

// DefaultConfig returns the paper's Triangel configuration.
func DefaultConfig() Config {
	return Config{
		TUSize:         256,
		HSSets:         32,
		HSWays:         4,
		SCSSize:        16,
		SampleShift:    7,
		ReuseThreshold: 6,
		MRBSize:        32,
		MaxDegree:      4,
		MetaBytes:      1 << 20,
		ResizeEpoch:    50_000,
		Lookahead:      true,
	}
}

// tuEntry is one PC's training state.
type tuEntry struct {
	tag       uint32
	last0     mem.Line // most recent address
	last1     mem.Line // the one before
	valid     bool
	haveLast1 bool

	// Recently issued prefetch lines, skipped without spending degree so
	// the chain runs ahead of the demand stream (timeliness).
	issued    [64]mem.Line
	issuedIdx int
}

func (tu *tuEntry) wasIssued(l mem.Line) bool {
	for _, x := range tu.issued {
		if x == l {
			return true
		}
	}
	return false
}

func (tu *tuEntry) markIssued(l mem.Line) {
	tu.issued[tu.issuedIdx] = l
	tu.issuedIdx = (tu.issuedIdx + 1) % len(tu.issued)
}

// hsEntry is a sampled correlation in the history sampler.
type hsEntry struct {
	valid   bool
	trigger mem.Line
	target  mem.Line
	pcSig   uint32
	dist    uint8 // correlation distance: 1, or 2 under lookahead
	used    bool
	lru     uint64
}

// scsEntry is a second-chance sampler slot.
type scsEntry struct {
	valid   bool
	trigger mem.Line
	pcSig   uint32
}

// mrbEntry caches a recently fetched metadata entry.
type mrbEntry struct {
	valid   bool
	conf    bool
	trigger mem.Line
	target  mem.Line
	lru     uint64
}

// Prefetcher is the Triangel temporal prefetcher.
type Prefetcher struct {
	cfg   Config
	store *meta.Store
	part  *meta.Partitioner

	tu  []tuEntry
	hs  [][]hsEntry
	scs []scsEntry
	mrb []mrbEntry

	pcConf pcConfTable

	clock    uint64
	scsNext  int
	accesses uint64

	// insTarget backs the one-element Targets slice of pairwise inserts;
	// the store copies what it keeps.
	insTarget [1]mem.Line

	// MRBHits counts metadata reads avoided by the reuse buffer.
	MRBHits uint64
}

// pcState holds confidence shared across TU replacements of the same PC.
type pcState struct {
	reuseConf   int8
	patternConf int8
	sampleShift uint8 // dynamic sampling period exponent (0..12)
	sampleCtr   uint32
	laMode      bool // lookahead engaged (hysteretic)
}

// pcConfTable maps 24-bit PC signatures to their pcState: an open-addressed
// index over a chunked arena, replacing a map on the per-train hot path.
// Growing rehashes only the index arrays; the states live in fixed-size
// arena chunks, so *pcState pointers stay valid for the table's lifetime
// (Train holds one across conf calls that may insert other signatures).
type pcConfTable struct {
	keys  []uint32 // sig+1; 0 marks an empty probe slot
	idx   []int32  // arena position of the slot's state
	arena [][]pcState
	n     int
}

const pcConfChunk = 256

func (t *pcConfTable) at(j int32) *pcState {
	return &t.arena[j/pcConfChunk][j%pcConfChunk]
}

// find returns the signature's state, or nil if absent. Signatures are
// already hashed (HashPC), so they probe directly.
func (t *pcConfTable) find(sig uint32) *pcState {
	if len(t.keys) == 0 {
		return nil
	}
	mask := uint32(len(t.keys) - 1)
	for i := sig & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case sig + 1:
			return t.at(t.idx[i])
		case 0:
			return nil
		}
	}
}

// insert adds a state for a signature not already present.
func (t *pcConfTable) insert(sig uint32, st pcState) *pcState {
	if 4*(t.n+1) > 3*len(t.keys) {
		t.grow()
	}
	j := int32(t.n)
	if t.n%pcConfChunk == 0 {
		t.arena = append(t.arena, make([]pcState, pcConfChunk))
	}
	*t.at(j) = st
	t.n++
	mask := uint32(len(t.keys) - 1)
	for i := sig & mask; ; i = (i + 1) & mask {
		if t.keys[i] == 0 {
			t.keys[i], t.idx[i] = sig+1, j
			break
		}
	}
	return t.at(j)
}

func (t *pcConfTable) grow() {
	oldKeys, oldIdx := t.keys, t.idx
	size := 2 * len(oldKeys)
	if size == 0 {
		size = 64
	}
	t.keys = make([]uint32, size)
	t.idx = make([]int32, size)
	mask := uint32(size - 1)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		for j := (k - 1) & mask; ; j = (j + 1) & mask {
			if t.keys[j] == 0 {
				t.keys[j], t.idx[j] = k, oldIdx[i]
				break
			}
		}
	}
}

// lookahead applies hysteresis: engage at pattern >= 12, disengage < 6.
func (st *pcState) lookahead(*Prefetcher) bool {
	if st.laMode {
		if st.patternConf < 6 {
			st.laMode = false
		}
	} else if st.patternConf >= 12 {
		st.laMode = true
	}
	return st.laMode
}

// New constructs a Triangel instance over the given LLC bridge.
func New(cfg Config, bridge meta.Bridge) *Prefetcher {
	if cfg.TUSize <= 0 {
		cfg = DefaultConfig()
	}
	storeCfg := meta.StoreConfig{
		Format:         meta.Pairwise,
		Tagged:         false,
		Filtered:       false,
		SetPartitioned: false,
		MetaWaysPerSet: 8,
		MaxBytes:       cfg.MetaBytes,
		Policy:         cfg.Policy,
	}
	if storeCfg.Policy == nil {
		storeCfg.Policy = meta.NewEntrySRRIP
	}
	if cfg.StoreOverride != nil {
		storeCfg = *cfg.StoreOverride
	}
	p := &Prefetcher{
		cfg:   cfg,
		store: meta.NewStore(storeCfg, bridge),
		tu:    make([]tuEntry, cfg.TUSize),
		hs:    make([][]hsEntry, cfg.HSSets),
		scs:   make([]scsEntry, cfg.SCSSize),
		mrb:   make([]mrbEntry, cfg.MRBSize),
	}
	for i := range p.hs {
		p.hs[i] = make([]hsEntry, cfg.HSWays)
	}
	_, llcWays := bridge.Geometry()
	sizes := make([]int, 0, 9)
	for w := 0; w <= storeCfg.MetaWaysPerSet; w++ {
		sizes = append(sizes, cfg.MetaBytes*w/storeCfg.MetaWaysPerSet)
	}
	p.part = meta.NewPartitioner(meta.PartitionerConfig{
		Mode:            meta.WayMode,
		Sizes:           sizes,
		MaxBytes:        cfg.MetaBytes,
		LLCWays:         llcWays,
		MetaWaysPerSet:  storeCfg.MetaWaysPerSet,
		EntriesPerBlock: meta.EntriesPerBlock(storeCfg.Format, storeCfg.StreamLength),
		EpochAccesses:   cfg.ResizeEpoch,
		DataWeight:      16,
		MetaWeight:      meta.EqualMetaWeight,
	})
	if cfg.FixedBytes > 0 {
		p.store.Resize(cfg.FixedBytes)
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "triangel" }

// MetaStats implements prefetch.MetaReporter.
func (p *Prefetcher) MetaStats() meta.Stats { return p.store.Stats }

// Store exposes the metadata store for experiments.
func (p *Prefetcher) Store() *meta.Store { return p.store }

// ObserveLLCData implements prefetch.LLCDataObserver, feeding the dynamic
// partitioner's data-utility profile.
func (p *Prefetcher) ObserveLLCData(set int, line mem.Line) {
	if p.cfg.FixedBytes > 0 {
		return
	}
	p.part.ObserveData(set, line)
}

func (p *Prefetcher) conf(sig uint32) *pcState {
	if st := p.pcConf.find(sig); st != nil {
		return st
	}
	// New PCs start mildly trusted so cold workloads begin training.
	return p.pcConf.insert(sig, pcState{reuseConf: 8, patternConf: 8, sampleShift: p.cfg.SampleShift})
}

func bump(v *int8, d int8) {
	n := *v + d
	if n < 0 {
		n = 0
	}
	if n > 15 {
		n = 15
	}
	*v = n
}

// degree maps pattern confidence to prefetch degree (0..MaxDegree).
func (p *Prefetcher) degree(st *pcState) int {
	switch {
	case st.patternConf < 4:
		return 0
	case st.patternConf < 8:
		return 1
	case st.patternConf < 11:
		return 2
	case st.patternConf < 14:
		return p.cfg.MaxDegree - 1
	default:
		return p.cfg.MaxDegree
	}
}

// ---- history sampler -------------------------------------------------

func (p *Prefetcher) hsSet(trigger mem.Line) int {
	return int(mem.HashLine64(trigger)>>40) % len(p.hs)
}

// hsProbeTrigger checks whether a trigger has a sampled correlation at the
// given distance: finding one means the correlation was reused before
// eviction (the reuse signal), and comparing its stored target against the
// actual access at that distance measures pattern stability. Distances must
// match — a lookahead (distance-2) sample validated against the distance-1
// successor would falsely demerit a perfectly stable stream.
func (p *Prefetcher) hsProbeTrigger(trigger, actualNext mem.Line, dist uint8) {
	set := p.hs[p.hsSet(trigger)]
	for i := range set {
		e := &set[i]
		if e.valid && e.trigger == trigger && e.dist == dist {
			st := p.conf(e.pcSig)
			if !e.used {
				e.used = true
			}
			// Reused before eviction: reward strongly enough to outweigh
			// the unused evictions a finite sampler inevitably causes.
			bump(&st.reuseConf, 2)
			if e.target == actualNext {
				bump(&st.patternConf, 1)
				if st.sampleShift > 0 {
					st.sampleShift--
				}
				p.clock++
				e.lru = p.clock
			} else {
				// Proven unstable: one demerit, then stop sampling this
				// trigger — a hot trigger probed on every recurrence would
				// otherwise outvote every stable correlation the PC has.
				bump(&st.patternConf, -1)
				e.valid = false
			}
			return
		}
	}
	// Second chance: a reordered reuse still deserves partial credit.
	for i := range p.scs {
		e := &p.scs[i]
		if e.valid && e.trigger == trigger {
			bump(&p.conf(e.pcSig).reuseConf, 1)
			e.valid = false
			return
		}
	}
}

// hsInsert samples a correlation into the history sampler, demoting the
// owner of any unused victim and giving the victim a second chance.
func (p *Prefetcher) hsInsert(trigger, target mem.Line, pcSig uint32, dist uint8) {
	set := p.hs[p.hsSet(trigger)]
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.trigger == trigger && e.dist == dist {
			e.target = target
			e.pcSig = pcSig
			return
		}
		if !e.valid {
			victim = i
			break
		}
		if e.lru < set[victim].lru {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid && !v.used {
		vs := p.conf(v.pcSig)
		bump(&vs.reuseConf, -1)
		// Sample less often so future samples survive to their reuse.
		if vs.sampleShift < 12 {
			vs.sampleShift++
		}
		p.scs[p.scsNext] = scsEntry{valid: true, trigger: v.trigger, pcSig: v.pcSig}
		p.scsNext = (p.scsNext + 1) % len(p.scs)
	}
	p.clock++
	*v = hsEntry{valid: true, trigger: trigger, target: target, pcSig: pcSig, dist: dist, lru: p.clock}
}

// ---- metadata reuse buffer --------------------------------------------

func (p *Prefetcher) mrbLookup(trigger mem.Line) (mem.Line, bool, bool) {
	for i := range p.mrb {
		e := &p.mrb[i]
		if e.valid && e.trigger == trigger {
			p.clock++
			e.lru = p.clock
			return e.target, e.conf, true
		}
	}
	return 0, false, false
}

func (p *Prefetcher) mrbInsert(trigger, target mem.Line, conf bool) {
	victim := 0
	for i := range p.mrb {
		e := &p.mrb[i]
		if e.valid && e.trigger == trigger {
			e.target = target
			e.conf = conf
			p.clock++
			e.lru = p.clock
			return
		}
		if !e.valid {
			victim = i
			break
		}
		if e.lru < p.mrb[victim].lru {
			victim = i
		}
	}
	p.clock++
	p.mrb[victim] = mrbEntry{valid: true, conf: conf, trigger: trigger, target: target, lru: p.clock}
}

// ---- main operation ----------------------------------------------------

// Train implements prefetch.Prefetcher. The simulator calls it on L2 misses
// and prefetch hits.
func (p *Prefetcher) Train(ev prefetch.Event, out []prefetch.Request) []prefetch.Request {
	line := ev.Line()
	pcSig := uint32(mem.HashPC(ev.PC, 24))
	idx := int(mem.HashPC(ev.PC, 16)) % len(p.tu)
	tu := &p.tu[idx]
	st := p.conf(pcSig)

	p.accesses++

	if !tu.valid || tu.tag != pcSig {
		*tu = tuEntry{tag: pcSig, last0: line, valid: true}
		p.maybeResize()
		return out
	}

	// Lookahead (distance-2 correlation) engages with hysteresis so the
	// metadata store is not churned by mode flapping.
	dist := uint8(1)
	trigger := tu.last0
	if p.cfg.Lookahead && tu.haveLast1 && st.lookahead(p) {
		trigger = tu.last1
		dist = 2
	}

	// Reuse/pattern measurement: did a sampled correlation for this
	// trigger survive to be used, and does its target still hold? Probe
	// at both distances so samples validate against the successor they
	// actually recorded.
	p.hsProbeTrigger(tu.last0, line, 1)
	if tu.haveLast1 {
		p.hsProbeTrigger(tu.last1, line, 2)
	}

	if trigger != line {
		// Sample into the HS at the PC's adaptive period.
		st.sampleCtr++
		if st.sampleCtr >= 1<<st.sampleShift {
			st.sampleCtr = 0
			p.hsInsert(trigger, line, pcSig, dist)
		}

		// Store the correlation only for PCs whose metadata gets reused
		// — this is the bypass that protects mcf's scans.
		if int(st.reuseConf) >= p.cfg.ReuseThreshold {
			if t, _, ok := p.mrbLookup(trigger); !ok || t != line {
				p.insTarget[0] = line
				_, conf := p.store.Insert(ev.Now, ev.PC, meta.Entry{
					Trigger: trigger, Targets: p.insTarget[:],
				})
				p.mrbInsert(trigger, line, conf)
			}
			if p.cfg.FixedBytes == 0 {
				p.part.ObserveTrigger(p.store.LogicalSetOf(trigger), trigger)
			}
		}
	}

	// Prefetch chain: follow correlations until the PC's degree of new
	// prefetches is met, paying a metadata read for every MRB miss.
	// Recently issued lines are skipped without spending degree so the
	// chain runs ahead of the demand stream.
	deg := p.degree(st)
	cur := line
	var delay uint64
	issued := 0
	for hops := 0; issued < deg && hops < deg+8; hops++ {
		target, conf, hit := p.mrbLookup(cur)
		if hit {
			p.MRBHits++
		} else {
			e, found, lat := p.store.Lookup(ev.Now+delay, ev.PC, cur)
			if !found {
				break
			}
			delay += lat
			target = e.Targets[0]
			conf = e.Conf
			p.mrbInsert(cur, target, e.Conf)
		}
		if !tu.wasIssued(target) {
			out = append(out, prefetch.Request{Addr: mem.AddrOf(target), Delay: delay})
			tu.markIssued(target)
			issued++
		}
		if !conf && hops > 0 {
			// The entry format's confidence bit: an unconfirmed
			// correlation ends the chain rather than steering it onto
			// some other stream.
			break
		}
		cur = target
	}

	tu.last1, tu.haveLast1 = tu.last0, true
	tu.last0 = line
	p.maybeResize()
	return out
}

// maybeResize lets the dynamic partitioner act at epoch boundaries,
// triggering Triangel's costly metadata rearrangement on changes.
func (p *Prefetcher) maybeResize() {
	if p.cfg.FixedBytes > 0 {
		return
	}
	if size, changed := p.part.Tick(); changed {
		p.store.Resize(size)
	}
}
