package cpu

import (
	"testing"

	"streamline/internal/audit"
)

func cpuRules(c *Core) map[string]int {
	a := audit.New(0)
	c.AuditScan(a, c.Now())
	rules := map[string]int{}
	for _, v := range a.Violations() {
		rules[v.Rule]++
	}
	return rules
}

func exercisedCore() *Core {
	c := New(DefaultConfig)
	for i := 0; i < 500; i++ {
		c.Advance(3)
		t := c.BeginMem(i%3 == 0)
		c.EndMem(t+uint64(10+i%90), true)
	}
	return c
}

func TestAuditCleanAfterExecution(t *testing.T) {
	if r := cpuRules(exercisedCore()); len(r) != 0 {
		t.Fatalf("clean core reports violations: %v", r)
	}
}

func TestAuditDetectsDependenceClockDrift(t *testing.T) {
	c := exercisedCore()
	c.lastMemDone = c.maxDone + 1000
	if r := cpuRules(c); r["dependence-clock"] == 0 {
		t.Fatalf("dependence clock ahead of completion horizon not detected: %v", r)
	}
}

func TestAuditDetectsROBOrderViolation(t *testing.T) {
	c := exercisedCore()
	if c.count < 2 {
		t.Fatal("test core must retain in-flight ROB entries")
	}
	// Swap the head entry's instruction index far forward.
	c.rob[c.head].instrIdx = c.rob[(c.head+1)%len(c.rob)].instrIdx + 1000
	r := cpuRules(c)
	if r["rob-order"] == 0 && r["rob-future-entry"] == 0 {
		t.Fatalf("out-of-order ROB entry not detected: %v", r)
	}
}

func TestAuditEndMemDetectsRetireBeforeIssue(t *testing.T) {
	c := New(DefaultConfig)
	a := audit.New(0)
	c.SetAuditor(a)
	c.Advance(100)
	issue := c.BeginMem(false)
	c.EndMem(issue+10, true)
	if a.Total() != 0 {
		t.Fatalf("legal completion flagged: %v", a.Violations())
	}
	c.Advance(100)
	issue = c.BeginMem(false)
	if issue == 0 {
		t.Fatal("issue cycle unexpectedly zero")
	}
	c.EndMem(issue-1, true)
	if a.Total() == 0 {
		t.Fatal("completion before issue not detected")
	}
	if a.Violations()[0].Rule != "retired-before-issued" {
		t.Fatalf("wrong rule: %v", a.Violations()[0])
	}
}
