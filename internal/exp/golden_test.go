package exp

import (
	"sync"
	"testing"

	"streamline/internal/check"
)

// Golden-stats regression net for the parallel harness: two Small-scale
// workloads under no prefetching and under Streamline, with every counter
// pinned to a committed value. The simulator is deterministic from (config,
// workload, seed), so ANY deviation here is a real behavior change — most
// importantly, nondeterminism introduced by the worker pool (shared state
// between jobs, seed drift, iteration-order leaks) fails this test loudly
// rather than silently skewing experiment tables.
//
// If a deliberate simulator change moves these numbers, regenerate them from
// the failure output and say so in the commit.

// goldenScale pins the exact configuration the golden values were recorded
// at. Budgets are microScale-sized so the test stays in the seconds range.
func goldenScale() Scale {
	sc := Small
	sc.Workloads = []string{"mcf06", "bfs", "pr", "sphinx06"}
	sc.Warmup = 40_000
	sc.Measure = 120_000
	return sc
}

var goldenStats = []struct {
	arm, workload string
	instructions  uint64
	cycles        uint64
	l2Misses      uint64
	issued        uint64
	fills         uint64
	useful        uint64
}{
	{"none", "mcf06", 120000, 2772080, 30000, 0, 0, 0},
	{"none", "bfs", 120000, 126227, 14988, 0, 0, 0},
	{"streamline", "mcf06", 120000, 603658, 6654, 23690, 23690, 23346},
	{"streamline", "bfs", 120000, 136780, 13379, 3615, 3615, 1729},
	{"streamline", "pr", 120000, 204770, 12425, 12373, 12373, 8485},
	{"triangel", "sphinx06", 120000, 3867400, 21504, 2708, 2708, 2496},
}

func goldenArm(name string) Arm {
	switch name {
	case "streamline":
		return streamlineArm("streamline", "", "", nil)
	case "triangel":
		return triangelArm("triangel", "", "", nil)
	}
	return baseArm("", "")
}

func checkGolden(t *testing.T, r *Runner) {
	t.Helper()
	for _, g := range goldenStats {
		res := r.Run(goldenArm(g.arm), g.workload)
		c := res.Cores[0]
		got := []struct {
			name string
			got  uint64
			want uint64
		}{
			{"instructions", c.Instructions, g.instructions},
			{"cycles", c.Cycles, g.cycles},
			{"l2-demand-misses", c.L2.DemandMisses, g.l2Misses},
			{"prefetches-issued", c.PrefetchesIssued, g.issued},
			{"prefetch-fills", c.L2.PrefetchFills, g.fills},
			{"useful-prefetches", c.L2.UsefulPrefetches, g.useful},
		}
		for _, f := range got {
			if f.got != f.want {
				t.Errorf("%s/%s: %s = %d, want %d", g.arm, g.workload, f.name, f.got, f.want)
			}
		}
		// Conservation laws on top of the pinned values. Golden runs have a
		// warmup, so per-core stats are a measured window: window-safe laws
		// only (wholeRun=false). No golden arm uses DRAM-resident metadata.
		for _, viol := range check.SimLaws(res, check.MetaDRAMTraffic{}, false) {
			t.Errorf("%s/%s: conservation law violated: %s", g.arm, g.workload, viol)
		}
	}
}

// TestGoldenStatsSerial pins the simulator's exact counters on the serial
// path.
func TestGoldenStatsSerial(t *testing.T) {
	r := NewRunner(goldenScale())
	r.Jobs = 1
	checkGolden(t, r)
}

// TestGoldenStatsParallel runs the same four simulations through an
// oversubscribed worker pool (8 workers for 4 jobs) and demands the same
// exact counters: the pool must not perturb results.
func TestGoldenStatsParallel(t *testing.T) {
	r := NewRunner(goldenScale())
	r.Jobs = 8
	var sims []Sim
	for _, g := range goldenStats {
		sims = append(sims, Sim{Arm: goldenArm(g.arm), Mix: []string{g.workload}, Cores: 1})
	}
	r.Precompute(sims)
	checkGolden(t, r)
}

// TestGoldenStatsConcurrentCallers hammers RunMix directly from many
// goroutines (no Precompute dedup in front), exercising the single-flight
// memo: every caller must observe the same exact result.
func TestGoldenStatsConcurrentCallers(t *testing.T) {
	r := NewRunner(goldenScale())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		for _, g := range goldenStats {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				res := r.Run(goldenArm(g.arm), g.workload)
				if got := res.Cores[0].Cycles; got != g.cycles {
					t.Errorf("%s/%s: cycles = %d, want %d", g.arm, g.workload, got, g.cycles)
				}
			}()
		}
	}
	wg.Wait()
	if len(r.memo) != len(goldenStats) {
		t.Errorf("memo has %d entries, want %d (duplicate computes?)", len(r.memo), len(goldenStats))
	}
}
