package cache

import (
	"testing"
	"testing/quick"

	"streamline/internal/mem"
	"streamline/internal/replacement"
)

func testConfig() Config {
	return Config{Name: "test", Sets: 16, Ways: 4, Latency: 10, MSHRs: 4, Ports: 1}
}

func loadAt(l mem.Line) mem.Access {
	return mem.Access{PC: 1, Addr: mem.AddrOf(l), Kind: mem.Load}
}

func TestMissThenHit(t *testing.T) {
	c := New(testConfig())
	a := loadAt(5)
	if r := c.Lookup(0, a); r.Hit {
		t.Fatal("cold lookup hit")
	}
	c.Fill(a, 0, SrcDemand)
	if r := c.Lookup(1, a); !r.Hit {
		t.Fatal("lookup after fill missed")
	}
	if c.Stats.DemandAccesses != 2 || c.Stats.DemandHits != 1 || c.Stats.DemandMisses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestSizeBytes(t *testing.T) {
	if got := testConfig().SizeBytes(); got != 16*4*64 {
		t.Errorf("SizeBytes = %d, want %d", got, 16*4*64)
	}
}

func TestEvictionWithinSet(t *testing.T) {
	c := New(testConfig())
	// Fill set 0 beyond associativity: lines 0, 16, 32, 48, 64 share set 0.
	for i := 0; i < 5; i++ {
		l := mem.Line(i * 16)
		a := loadAt(l)
		c.Lookup(uint64(i), a)
		v := c.Fill(a, uint64(i), SrcDemand)
		if i < 4 && v.Valid {
			t.Errorf("fill %d evicted %+v from a non-full set", i, v)
		}
		if i == 4 && !v.Valid {
			t.Error("fill into full set returned no victim")
		}
	}
	if c.Stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats.Evictions)
	}
}

func TestDirtyVictimProducesWriteback(t *testing.T) {
	c := New(testConfig())
	st := mem.Access{PC: 1, Addr: mem.AddrOf(0), Kind: mem.Store}
	c.Fill(st, 0, SrcDemand)
	for i := 1; i <= 4; i++ {
		a := loadAt(mem.Line(i * 16))
		c.Fill(a, 0, SrcDemand)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestStoreHitMarksDirty(t *testing.T) {
	c := New(testConfig())
	a := loadAt(3)
	c.Fill(a, 0, SrcDemand)
	st := mem.Access{PC: 1, Addr: mem.AddrOf(3), Kind: mem.Store}
	if r := c.Lookup(0, st); !r.Hit {
		t.Fatal("store missed a resident line")
	}
	// Evict it (same set: lines 3+16i) and confirm the writeback.
	for i := 1; i <= 4; i++ {
		c.Fill(loadAt(mem.Line(3+i*16)), 0, SrcDemand)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestPrefetchCoverageAccounting(t *testing.T) {
	c := New(testConfig())
	pf := mem.Access{PC: 1, Addr: mem.AddrOf(7), Kind: mem.Prefetch}
	c.Fill(pf, 0, SrcL2)
	if c.Stats.PrefetchFills != 1 {
		t.Fatalf("PrefetchFills = %d", c.Stats.PrefetchFills)
	}
	r := c.Lookup(5, loadAt(7))
	if !r.Hit || !r.WasPrefetched {
		t.Fatalf("demand on prefetched line: %+v", r)
	}
	if c.Stats.UsefulPrefetches != 1 {
		t.Errorf("UsefulPrefetches = %d", c.Stats.UsefulPrefetches)
	}
	// Second demand hit is no longer "prefetched".
	if r := c.Lookup(6, loadAt(7)); r.WasPrefetched {
		t.Error("prefetch bit not cleared after first demand hit")
	}
}

func TestUnusedPrefetchCounted(t *testing.T) {
	c := New(testConfig())
	pf := mem.Access{PC: 1, Addr: mem.AddrOf(16), Kind: mem.Prefetch}
	c.Fill(pf, 0, SrcL2)
	for i := 0; i < 5; i++ {
		if i == 1 {
			continue // skip the prefetched line's slot aliasing trick
		}
		c.Fill(loadAt(mem.Line(i*16+32)), 0, SrcDemand)
	}
	// Set 0 holds lines 16(pf),32,64,96,128 -> one eviction occurred.
	if c.Stats.UnusedPrefetches == 0 {
		t.Error("evicted unused prefetch not counted")
	}
}

func TestLatePrefetchWait(t *testing.T) {
	c := New(testConfig())
	pf := mem.Access{PC: 1, Addr: mem.AddrOf(9), Kind: mem.Prefetch}
	c.Fill(pf, 100, SrcL2) // fill completes at cycle 100
	r := c.Lookup(40, loadAt(9))
	if !r.Hit {
		t.Fatal("missed in-flight line")
	}
	if r.ExtraWait != 60 {
		t.Errorf("ExtraWait = %d, want 60", r.ExtraWait)
	}
	if c.Stats.LatePrefetches != 1 {
		t.Errorf("LatePrefetches = %d, want 1", c.Stats.LatePrefetches)
	}
	// After the fill completes there is no extra wait.
	if r := c.Lookup(200, loadAt(9)); r.ExtraWait != 0 {
		t.Errorf("ExtraWait after completion = %d", r.ExtraWait)
	}
}

func TestPortContention(t *testing.T) {
	c := New(testConfig()) // 1 port: one bucket absorbs 64 accesses
	for i := 0; i < 64; i++ {
		if d := c.PortDelay(100, false); d != 0 {
			t.Fatalf("access %d in burst delayed %d", i, d)
		}
	}
	// The 65th same-bucket access spills.
	if d := c.PortDelay(100, false); d == 0 {
		t.Error("bucket overflow not delayed")
	}
	// Far in the future the port is idle again.
	if d := c.PortDelay(10_000, false); d != 0 {
		t.Errorf("later access delayed %d", d)
	}
}

func TestDemandPriorityNeverDelayed(t *testing.T) {
	c := New(testConfig())
	for i := 0; i < 200; i++ {
		c.PortDelay(100, false)
	}
	if d := c.PortDelay(100, true); d != 0 {
		t.Errorf("demand access delayed %d behind prefetch traffic", d)
	}
}

func TestTwoPortsDoubleRate(t *testing.T) {
	cfg := testConfig()
	cfg.Ports = 2
	c := New(cfg)
	for i := 0; i < 128; i++ {
		if d := c.PortDelay(100, false); d != 0 {
			t.Fatalf("access %d in burst delayed %d", i, d)
		}
	}
	if d := c.PortDelay(100, false); d == 0 {
		t.Error("129th same-cycle access not delayed")
	}
}

func TestPortDelayToleratesOutOfOrderTimestamps(t *testing.T) {
	// Accesses stamped far in the future must not stall a burst of
	// earlier-stamped accesses (prefetch chains produce such patterns).
	c := New(testConfig())
	for i := 0; i < 100; i++ {
		c.PortDelay(100_000, false)
	}
	total := uint64(0)
	for i := 0; i < 15; i++ {
		total += c.PortDelay(500, false)
	}
	if total != 0 {
		t.Errorf("earlier-stamped burst delayed %d cycles by future outliers", total)
	}
}

func TestMSHROccupancy(t *testing.T) {
	c := New(testConfig()) // 4 MSHRs
	for i := 0; i < 4; i++ {
		if d := c.MSHRDelay(0, 100); d != 0 {
			t.Fatalf("miss %d delayed %d with free MSHRs", i, d)
		}
	}
	// Fifth concurrent miss waits for the oldest (ready at 100).
	if d := c.MSHRDelay(0, 100); d != 100 {
		t.Errorf("5th miss delayed %d, want 100", d)
	}
}

func TestReserveFlushesData(t *testing.T) {
	c := New(testConfig())
	// Fill all 4 ways of set 0, one dirty.
	c.Fill(mem.Access{PC: 1, Addr: mem.AddrOf(0), Kind: mem.Store}, 0, SrcDemand)
	for i := 1; i < 4; i++ {
		c.Fill(loadAt(mem.Line(i*16)), 0, SrcDemand)
	}
	flushed, dirty := c.Reserve(0, 2)
	if flushed != 2 {
		t.Errorf("flushed = %d, want 2", flushed)
	}
	if dirty != 1 {
		t.Errorf("dirty = %d, want 1", dirty)
	}
	if c.DataWays(0) != 2 {
		t.Errorf("DataWays = %d, want 2", c.DataWays(0))
	}
	// Lines in the reserved region are gone; later ways survive.
	if c.Probe(0) {
		t.Error("line 0 survived reservation of its way")
	}
	if !c.Probe(32) && !c.Probe(48) {
		t.Error("no data lines survived partial reservation")
	}
	// Shrinking the reservation frees the ways again without flushing.
	if f, _ := c.Reserve(0, 0); f != 0 {
		t.Errorf("unreserving flushed %d lines", f)
	}
	if c.DataWays(0) != 4 {
		t.Errorf("DataWays = %d, want 4", c.DataWays(0))
	}
}

func TestFullyReservedSetRefusesFills(t *testing.T) {
	c := New(testConfig())
	c.Reserve(0, 4)
	v := c.Fill(loadAt(0), 0, SrcDemand)
	if v.Valid {
		t.Error("fill into fully reserved set produced a victim")
	}
	if c.Probe(0) {
		t.Error("line cached in a fully reserved set")
	}
}

func TestLookupSkipsReservedWays(t *testing.T) {
	c := New(testConfig())
	c.Fill(loadAt(0), 0, SrcDemand) // lands in way 0 (first free)
	c.Reserve(0, 1)                 // way 0 now reserved; line flushed
	if r := c.Lookup(0, loadAt(0)); r.Hit {
		t.Error("hit a line in a reserved way")
	}
}

func TestMetaCounting(t *testing.T) {
	c := New(testConfig())
	c.CountMeta(mem.MetaRead)
	c.CountMeta(mem.MetaRead)
	c.CountMeta(mem.MetaWrite)
	if c.Stats.MetaReads != 2 || c.Stats.MetaWrites != 1 {
		t.Errorf("meta stats = %d/%d", c.Stats.MetaReads, c.Stats.MetaWrites)
	}
}

func TestProbeDoesNotTouchState(t *testing.T) {
	c := New(testConfig())
	c.Fill(loadAt(1), 0, SrcDemand)
	before := c.Stats
	if !c.Probe(1) || c.Probe(2) {
		t.Error("probe results wrong")
	}
	if c.Stats != before {
		t.Error("Probe changed stats")
	}
}

func TestFillRefreshExistingLine(t *testing.T) {
	c := New(testConfig())
	a := loadAt(4)
	c.Fill(a, 0, SrcDemand)
	v := c.Fill(a, 0, SrcDemand) // re-fill same line
	if v.Valid {
		t.Error("re-fill produced a victim")
	}
	if c.OccupiedLines() != 1 {
		t.Errorf("occupied = %d, want 1", c.OccupiedLines())
	}
}

func prefetchAt(l mem.Line) mem.Access {
	return mem.Access{Addr: mem.AddrOf(l), Kind: mem.Prefetch}
}

func TestFillRefreshPreservesDirty(t *testing.T) {
	c := New(testConfig())
	st := mem.Access{PC: 1, Addr: mem.AddrOf(4), Kind: mem.Store}
	c.Fill(st, 0, SrcDemand)
	// A racing prefetch fill for the same line must not clear the dirty
	// bit: the pending writeback would be lost.
	c.Fill(prefetchAt(4), 0, SrcL1)
	// Evict the line by filling the set beyond associativity.
	var v Victim
	for i := 1; i <= 4; i++ {
		a := loadAt(mem.Line(4 + i*16))
		if w := c.Fill(a, 0, SrcDemand); w.Valid {
			v = w
		}
	}
	if !v.Valid || v.Line != 4 {
		t.Fatalf("victim = %+v, want line 4", v)
	}
	if !v.Dirty {
		t.Error("refresh dropped the dirty bit: victim not dirty")
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestFillRefreshAttribution(t *testing.T) {
	c := New(testConfig())
	pf := prefetchAt(4)

	// A prefetch refreshing a demand-owned line is not a new fill: no
	// PrefetchFills/Sources credit, and the line stays demand-owned.
	c.Fill(loadAt(4), 0, SrcDemand)
	c.Fill(pf, 0, SrcL1)
	if c.Stats.PrefetchFills != 0 || c.Stats.Sources[SrcL1].Fills != 0 {
		t.Errorf("refresh counted as fill: PrefetchFills=%d Sources=%d",
			c.Stats.PrefetchFills, c.Stats.Sources[SrcL1].Fills)
	}
	if r := c.Lookup(1, loadAt(4)); r.WasPrefetched {
		t.Error("refresh re-marked a demand-owned line as prefetched")
	}

	// A prefetch refreshing a prefetch-owned line keeps a single fill's
	// worth of attribution: one fill, and at most one useful outcome.
	c.Fill(prefetchAt(20), 0, SrcL1)
	c.Fill(prefetchAt(20), 0, SrcL1)
	if c.Stats.PrefetchFills != 1 || c.Stats.Sources[SrcL1].Fills != 1 {
		t.Errorf("double-counted resident prefetch: PrefetchFills=%d Sources=%d",
			c.Stats.PrefetchFills, c.Stats.Sources[SrcL1].Fills)
	}
	c.Lookup(2, loadAt(20))
	s := c.Stats.Sources[SrcL1]
	if got := s.UsefulTimely + s.UsefulLate; got != 1 {
		t.Errorf("useful outcomes = %d, want 1", got)
	}
	if fills := s.Fills; fills != s.UsefulTimely+s.UsefulLate+s.EvictedUnused {
		t.Errorf("attribution unbalanced: fills=%d outcomes=%d",
			fills, s.UsefulTimely+s.UsefulLate+s.EvictedUnused)
	}
}

func TestFillRefreshKeepsEarlierReadyAt(t *testing.T) {
	c := New(testConfig())
	a := loadAt(4)
	c.Fill(a, 100, SrcDemand)
	c.Fill(a, 200, SrcDemand)
	if r := c.Lookup(150, a); r.ExtraWait != 0 {
		t.Errorf("refresh pushed readyAt back: ExtraWait = %d, want 0", r.ExtraWait)
	}

	b := loadAt(20)
	c.Fill(b, 200, SrcDemand)
	c.Fill(b, 100, SrcDemand)
	if r := c.Lookup(150, b); r.ExtraWait != 0 {
		t.Errorf("refresh ignored earlier readyAt: ExtraWait = %d, want 0", r.ExtraWait)
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := New(Config{Name: "d", Sets: 2, Ways: 1})
	if c.Config().Ports != 1 || c.Config().MSHRs != 8 {
		t.Errorf("defaults not applied: %+v", c.Config())
	}
	if c.repl == nil {
		t.Fatal("nil policy not defaulted")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets did not panic")
		}
	}()
	New(Config{Name: "bad", Sets: 3, Ways: 1})
}

func TestSetOfProperty(t *testing.T) {
	c := New(Config{Name: "p", Sets: 64, Ways: 2, Policy: replacement.NewLRU})
	f := func(l uint64) bool {
		s := c.SetOf(mem.Line(l))
		return s >= 0 && s < 64 && s == int(l%64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarkDirty(t *testing.T) {
	c := New(testConfig())
	c.Fill(loadAt(2), 0, SrcDemand)
	if !c.MarkDirty(2) {
		t.Error("MarkDirty failed on resident line")
	}
	if c.MarkDirty(99) {
		t.Error("MarkDirty succeeded on absent line")
	}
	for i := 1; i <= 4; i++ {
		c.Fill(loadAt(mem.Line(2+i*16)), 0, SrcDemand)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

// TestReserveFlushCountsUnusedPrefetch pins the fix for a lifecycle leak
// the differential oracle flagged: a prefetched line flushed by a way
// reservation left the cache without a demand hit, but Reserve did not
// count it as evicted-unused, so the per-source partition (fills = useful +
// evicted-unused + still-resident) leaked one line per repartition flush.
func TestReserveFlushCountsUnusedPrefetch(t *testing.T) {
	c := New(testConfig())
	// Way 0 of set 2 holds an unused temporal prefetch; way 1 a used one.
	pf := mem.Access{Addr: mem.AddrOf(2), Kind: mem.Prefetch}
	c.Fill(pf, 0, SrcTemporal)
	used := mem.Access{Addr: mem.AddrOf(2 + 16), Kind: mem.Prefetch}
	c.Fill(used, 0, SrcTemporal)
	c.Lookup(1, loadAt(2+16)) // demand hit consumes the prefetch bit

	flushed, _ := c.Reserve(2, c.Ways())
	if flushed != 2 {
		t.Fatalf("flushed = %d, want 2", flushed)
	}
	if c.Stats.UnusedPrefetches != 1 {
		t.Errorf("UnusedPrefetches = %d, want 1 (the unused flushed line)", c.Stats.UnusedPrefetches)
	}
	if got := c.Stats.Sources[SrcTemporal].EvictedUnused; got != 1 {
		t.Errorf("Sources[temporal].EvictedUnused = %d, want 1", got)
	}
	// The partition closes: fills = useful + evicted-unused, nothing resident.
	ss := c.Stats.Sources[SrcTemporal]
	if ss.Fills != ss.UsefulTimely+ss.UsefulLate+ss.EvictedUnused {
		t.Errorf("lifecycle partition leaks: %+v", ss)
	}
}
