package meta

import (
	"streamline/internal/audit"
	"streamline/internal/mem"
)

// AuditScan verifies the metadata store's invariants against a, reporting
// each breach at cycle now. All checks are read-only.
//
// Invariants:
//   - byte budget: the current partition never exceeds the configured
//     maximum or the store's structural capacity — the bound every
//     "fraction of the metadata budget" claim in the paper rests on;
//   - placement soundness: every resident entry lives in a set and way the
//     current partition actually allocates (a shrink that strands entries
//     outside the partition would let the store exceed its budget while
//     reporting compliance);
//   - entry well-formedness: valid entries hold between 1 and StreamLength
//     targets;
//   - traffic identities: every lookup was either filtered or charged one
//     LLC read, every insert/update charged one LLC write, and trigger
//     hits never exceed lookups.
func (s *Store) AuditScan(a *audit.Auditor, now uint64) {
	if a == nil {
		return
	}
	// When maxBytes() > MaxBytes the configured budget was below the
	// scheme's one-set/one-way granularity floor and is unsatisfiable by
	// construction; the structural-capacity check governs then.
	if s.curBytes > s.cfg.MaxBytes && s.maxBytes() <= s.cfg.MaxBytes {
		a.Reportf(now, "meta", "byte-budget",
			"partition %dB exceeds configured maximum %dB (scheme %s)",
			s.curBytes, s.cfg.MaxBytes, s.SchemeName())
	}
	if s.curBytes > s.maxBytes() {
		a.Reportf(now, "meta", "structural-capacity",
			"partition %dB exceeds structural capacity %dB", s.curBytes, s.maxBytes())
	}
	maxTargets := s.cfg.StreamLength
	if s.cfg.Format != Stream {
		maxTargets = 1
	}
	for set := range s.slots {
		live := s.setLive(set) || !s.cfg.SetPartitioned
		for idx := range s.slots[set] {
			sl := &s.slots[set][idx]
			if !sl.valid {
				continue
			}
			way := idx / s.epb
			switch {
			case !live:
				a.Reportf(now, "meta", "entry-outside-partition",
					"set %d is deallocated but holds trigger %#x", set, uint64(sl.trigger))
			case way >= s.curWays:
				a.Reportf(now, "meta", "entry-outside-partition",
					"way %d of set %d beyond the %d allocated ways (trigger %#x)",
					way, set, s.curWays, uint64(sl.trigger))
			}
			if len(sl.targets) < 1 || len(sl.targets) > maxTargets {
				a.Reportf(now, "meta", "entry-malformed",
					"set %d entry for trigger %#x holds %d targets (want 1..%d)",
					set, uint64(sl.trigger), len(sl.targets), maxTargets)
			}
		}
	}
	st := s.Stats
	if st.Reads+st.FilteredLookups != st.Lookups {
		a.Reportf(now, "meta", "lookup-accounting",
			"reads %d + filtered %d != lookups %d", st.Reads, st.FilteredLookups, st.Lookups)
	}
	if st.Writes != st.Inserts+st.Updates {
		a.Reportf(now, "meta", "write-accounting",
			"writes %d != inserts %d + updates %d", st.Writes, st.Inserts, st.Updates)
	}
	if st.TriggerHits > st.Lookups {
		a.Reportf(now, "meta", "hit-accounting",
			"trigger hits %d > lookups %d", st.TriggerHits, st.Lookups)
	}
}

// ReservedBlocks returns the number of 64B host-LLC blocks the current
// partition occupies; the simulator's audit cross-checks the sum across
// cores against the LLC's actual way reservations.
func (s *Store) ReservedBlocks() int { return s.curBytes / mem.LineSize }
