// Package ipcp implements the IPCP prefetcher (Pakalapati & Panda, ISCA
// 2020): each instruction pointer is classified as constant-stride (CS),
// complex-stride (CPLX, via a delta-signature table), or global-stream (GS),
// and the strongest class prefetches. IPCP is one of Figure 11c's L2
// regular-prefetcher baselines.
package ipcp

import (
	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

// Config parameterizes IPCP.
type Config struct {
	TableSize int
	CSDegree  int
	CPLXDepth int // lookahead depth through the delta signature table
	GSDegree  int
}

// DefaultConfig matches the published configuration's intent.
var DefaultConfig = Config{TableSize: 256, CSDegree: 4, CPLXDepth: 3, GSDegree: 4}

type ipEntry struct {
	tag      uint32
	valid    bool
	last     mem.Line
	stride   int64
	strideOK int // CS confidence
	sig      uint16
}

// cplxEntry is a delta-signature-table slot.
type cplxEntry struct {
	delta int64
	conf  int
}

// Prefetcher is the IPCP prefetcher.
type Prefetcher struct {
	cfg  Config
	ips  []ipEntry
	cplx []cplxEntry // indexed by signature

	// Global stream detector: recent line window occupancy.
	gsWindow  [32]mem.Line
	gsNext    int
	gsDenseCt int
}

// New returns an IPCP instance.
func New(cfg Config) *Prefetcher {
	if cfg.TableSize <= 0 {
		cfg = DefaultConfig
	}
	return &Prefetcher{
		cfg:  cfg,
		ips:  make([]ipEntry, cfg.TableSize),
		cplx: make([]cplxEntry, 1<<12),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "ipcp" }

func nextSig(sig uint16, delta int64) uint16 {
	return (sig<<3 ^ uint16(uint64(delta)&0x3f)) & 0xfff
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event, out []prefetch.Request) []prefetch.Request {
	line := ev.Line()
	idx := int(mem.HashPC(ev.PC, 16)) % len(p.ips)
	tag := uint32(mem.HashPC(ev.PC, 24))
	e := &p.ips[idx]
	if !e.valid || e.tag != tag {
		*e = ipEntry{tag: tag, valid: true, last: line}
		return out
	}
	delta := int64(line) - int64(e.last)
	if delta == 0 {
		return out
	}

	// CS classification.
	if delta == e.stride {
		if e.strideOK < 3 {
			e.strideOK++
		}
	} else {
		e.strideOK--
		if e.strideOK <= 0 {
			e.strideOK = 0
			e.stride = delta
		}
	}

	// CPLX: train the delta signature table.
	ce := &p.cplx[e.sig]
	if ce.delta == delta {
		if ce.conf < 3 {
			ce.conf++
		}
	} else {
		ce.conf--
		if ce.conf <= 0 {
			ce.conf = 0
			ce.delta = delta
		}
	}
	sig := nextSig(e.sig, delta)

	// GS: detect dense region streaming.
	p.gsWindow[p.gsNext] = line >> 5 // 2KB region
	p.gsNext = (p.gsNext + 1) % len(p.gsWindow)
	dense := 0
	for _, r := range p.gsWindow {
		if r == line>>5 {
			dense++
		}
	}

	e.last = line
	e.sig = sig

	switch {
	case e.strideOK >= 2 && e.stride != 0:
		// Constant stride: the strongest class.
		for d := 1; d <= p.cfg.CSDegree; d++ {
			t := int64(line) + e.stride*int64(d)
			if t <= 0 {
				break
			}
			out = append(out, prefetch.Request{Addr: mem.AddrOf(mem.Line(t))})
		}
	case p.cplxConfident(sig):
		// Complex stride: walk the signature chain.
		cur := int64(line)
		s := sig
		for i := 0; i < p.cfg.CPLXDepth; i++ {
			ce := p.cplx[s]
			if ce.conf < 2 || ce.delta == 0 {
				break
			}
			cur += ce.delta
			if cur <= 0 {
				break
			}
			out = append(out, prefetch.Request{Addr: mem.AddrOf(mem.Line(cur))})
			s = nextSig(s, ce.delta)
		}
	case dense >= 24:
		// Global stream: prefetch ahead in the region.
		for d := 1; d <= p.cfg.GSDegree; d++ {
			out = append(out, prefetch.Request{Addr: mem.AddrOf(line + mem.Line(d))})
		}
	}
	return out
}

func (p *Prefetcher) cplxConfident(sig uint16) bool {
	return p.cplx[sig].conf >= 2 && p.cplx[sig].delta != 0
}
