// Partitioning schemes: a direct demonstration of Table I and Section IV-C.
// Builds the eight {Rearranged,Filtered} x {Untagged,Tagged} x {Way,Set}
// metadata stores, fills them with a reused trigger population, and shows
// (a) how much each retains (associativity/conflicts) and (b) what one
// repartition costs in shuffled LLC blocks — the operation Streamline's
// filtered tagged set-partitioning (FTS) eliminates.
//
//	go run ./examples/partitioning
package main

import (
	"fmt"
	"math/rand"

	"streamline/internal/mem"
	"streamline/internal/meta"
)

const (
	llcSets  = 2048 // a 2MB LLC, as in Table II
	llcWays  = 16
	maxBytes = 1 << 20
)

func build(filtered, tagged, setPart bool) *meta.Store {
	return meta.NewStore(meta.StoreConfig{
		Format:         meta.Stream,
		StreamLength:   4,
		Filtered:       filtered,
		Tagged:         tagged,
		SetPartitioned: setPart,
		MetaWaysPerSet: 8,
		MaxBytes:       maxBytes,
	}, &meta.NullBridge{Sets: llcSets, Ways: llcWays})
}

// retention fills the store to 75% of capacity with reused triggers and
// reports how many remain findable (lost entries mean conflict evictions).
func retention(st *meta.Store, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	n := st.SizeBytes() / mem.LineSize * 3 // 75% of the 4-entries/block capacity
	triggers := make([]mem.Line, 0, n)
	for len(triggers) < n {
		tr := mem.Line(rng.Uint64() >> 16)
		if st.WouldFilter(tr) {
			continue
		}
		triggers = append(triggers, tr)
	}
	for _, tr := range triggers {
		st.Insert(0, 1, meta.Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}})
	}
	found := 0
	for _, tr := range triggers {
		if _, ok, _ := st.Lookup(0, 1, tr); ok {
			found++
		}
	}
	return float64(found) / float64(len(triggers))
}

func main() {
	fmt.Println("Table I live: the eight metadata partitioning schemes")
	fmt.Printf("%-6s %-28s %12s %16s\n", "scheme", "configuration", "retention", "resize traffic")
	for _, filtered := range []bool{false, true} {
		for _, tagged := range []bool{false, true} {
			for _, setPart := range []bool{false, true} {
				st := build(filtered, tagged, setPart)
				ret := retention(st, 1)

				// Refill and halve the partition: rearranged schemes
				// shuffle misplaced entries through the LLC.
				st2 := build(filtered, tagged, setPart)
				retention(st2, 2)
				traffic := st2.Resize(maxBytes / 2)

				desc := map[bool]string{true: "filtered", false: "rearranged"}[filtered] +
					" " + map[bool]string{true: "tagged", false: "untagged"}[tagged] +
					" " + map[bool]string{true: "set-part", false: "way-part"}[setPart]
				marker := ""
				if st.SchemeName() == "FTS" {
					marker = "  <- Streamline"
				}
				fmt.Printf("%-6s %-28s %11.1f%% %9d blocks%s\n",
					st.SchemeName(), desc, ret*100, traffic, marker)
			}
		}
	}
	fmt.Println()
	fmt.Println("FTS combines full retention (tag-checked 32-entry associativity) with")
	fmt.Println("zero-cost repartitioning (the fixed index function never misplaces an")
	fmt.Println("entry; shrinking just filters) — the Table I conclusion.")
}
