package workloads

import (
	"math/rand"

	"streamline/internal/mem"
	"streamline/internal/trace"
)

// The graph family models the GAP benchmark suite: vertex-centric analytics
// over a synthetic power-law graph. Property arrays use one cache line per
// vertex (fat vertex records), so every gather touches a distinct line and
// the per-iteration gather sequence — identical lap after lap — is the long
// correlated stream that gives temporal prefetchers their largest wins.

// graph is a CSR-format directed graph.
type graph struct {
	n       int
	offsets []int32
	edges   []int32
}

// buildGraph creates a graph with n vertices and roughly n*avgDeg edges whose
// in-degree distribution is skewed (preferential attachment-ish), mirroring
// the power-law structure of the GAP inputs.
func buildGraph(n, avgDeg int, rng *rand.Rand) *graph {
	deg := make([]int32, n)
	total := 0
	for i := range deg {
		d := 1 + rng.Intn(2*avgDeg-1) // mean avgDeg, min 1
		deg[i] = int32(d)
		total += d
	}
	g := &graph{n: n, offsets: make([]int32, n+1), edges: make([]int32, total)}
	for i := 0; i < n; i++ {
		g.offsets[i+1] = g.offsets[i] + deg[i]
	}
	// Skewed endpoint sampling: a fourth-power uniform sample concentrates
	// in-edges on low vertex ids, giving the heavy-tailed in-degree
	// distribution of real graphs. The hot endpoints stay cache-resident,
	// so the miss stream a temporal prefetcher trains on is dominated by
	// cold, mostly-single-occurrence vertices — stable correlations.
	for i := range g.edges {
		u := rng.Float64()
		v := int(u * u * u * u * float64(n))
		if v >= n {
			v = n - 1
		}
		g.edges[i] = int32(v)
	}
	return g
}

// gatherSource is the shared skeleton of the GAP kernels: stream through
// the edge list and gather a property line per edge. Edge targets split
// into a hot head (hub vertices, revisited often and therefore
// cache-resident) and a cold mass that — as in real graphs, where the
// expected per-iteration repeat count of a non-hub vertex is about one —
// each appear once per lap, in a fixed irregular order. The cold gather
// sequence is the long repeating correlated stream temporal prefetchers
// exist for. Variants layer dependent gathers and per-lap mutation on top.
type gatherSource struct {
	name    string
	edges   int     // gathers per lap
	hubs    int     // hot vertex lines (cache-resident head)
	hotFrac float64 // fraction of gathers that touch the hot head
	chase   bool    // dependent gathers (rank propagation via pointers)
	mutate  float64 // fraction of the cold order reshuffled per lap
	writeTo bool    // write a result line per 8 edges
	nonMem  uint8

	rng    *rand.Rand
	isHot  []bool  // per edge slot
	hotIdx []int32 // hub index per hot slot
	cold   []int32 // permutation of cold lines over cold slots
	hot    array
	coldA  array
	out    array
	edgeA  array
}

func (g *gatherSource) Reset(rng *rand.Rand) {
	g.rng = rng
	g.isHot = make([]bool, g.edges)
	g.hotIdx = make([]int32, g.edges)
	nCold := 0
	for i := range g.isHot {
		if rng.Float64() < g.hotFrac {
			g.isHot[i] = true
			// Zipf-ish hub choice: squared uniform concentrates on few.
			u := rng.Float64()
			g.hotIdx[i] = int32(u * u * float64(g.hubs))
		} else {
			nCold++
		}
	}
	perm := rng.Perm(nCold)
	g.cold = make([]int32, 0, nCold)
	for _, p := range perm {
		g.cold = append(g.cold, int32(p))
	}
	a := newArena()
	g.hot = a.array(g.hubs, mem.LineSize)
	g.coldA = a.array(nCold, mem.LineSize)
	g.out = a.array(g.edges/8+1, mem.LineSize)
	g.edgeA = a.array(g.edges, 4)
}

func (g *gatherSource) Lap(emit func(trace.Record)) {
	e := &emitter{emit: emit, nonMem: g.nonMem}
	pc := pcBase(g.name)
	edgePC, gatherPC, outPC := pc, pc+8, pc+16
	coldPos := 0
	for ei := 0; ei < g.edges; ei++ {
		e.load(edgePC, g.edgeA.at(ei)) // sequential edge stream
		var target mem.Addr
		if g.isHot[ei] {
			target = g.hot.at(int(g.hotIdx[ei]))
		} else {
			target = g.coldA.at(int(g.cold[coldPos]))
			coldPos++
		}
		if g.chase {
			e.chase(gatherPC, target)
		} else {
			e.load(gatherPC, target)
		}
		if g.writeTo && ei%8 == 7 {
			e.store(outPC, g.out.at(ei/8))
		}
	}
	if g.mutate > 0 {
		n := int(float64(len(g.cold)) * g.mutate)
		for i := 0; i < n; i++ {
			a := g.rng.Intn(len(g.cold))
			b := g.rng.Intn(len(g.cold))
			g.cold[a], g.cold[b] = g.cold[b], g.cold[a]
		}
	}
}

// bfsSource runs repeated BFS traversals from a fixed source: the vertex
// visit order is the BFS frontier order (each vertex once per lap —
// exactly the unique-per-iteration stream of real BFS), and each visit
// also streams the vertex's edge list.
type bfsSource struct {
	name   string
	n      int
	avgDeg int
	nonMem uint8

	g     *graph
	order []int32 // precomputed BFS vertex visit order
	dist  array
	edgeA array
}

func (b *bfsSource) Reset(rng *rand.Rand) {
	b.g = buildGraph(b.n, b.avgDeg, rng)
	a := newArena()
	b.dist = a.array(b.n, mem.LineSize)
	b.edgeA = a.array(len(b.g.edges), 4)
	b.order = bfsOrder(b.g, 0)
}

// bfsOrder returns the vertex visit order of a BFS from src, including
// unreached vertices appended in id order (GAP BFS re-seeds components).
func bfsOrder(g *graph, src int) []int32 {
	seen := make([]bool, g.n)
	order := make([]int32, 0, g.n)
	queue := make([]int32, 0, g.n)
	enqueue := func(v int32) {
		if !seen[v] {
			seen[v] = true
			queue = append(queue, v)
		}
	}
	enqueue(int32(src))
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		order = append(order, v)
		for ei := g.offsets[v]; ei < g.offsets[v+1]; ei++ {
			enqueue(g.edges[ei])
		}
	}
	for v := 0; v < g.n; v++ {
		if !seen[v] {
			seen[int32(v)] = true
			queue = append(queue, int32(v))
			for head := len(queue) - 1; head < len(queue); head++ {
				u := queue[head]
				order = append(order, u)
				for ei := g.offsets[u]; ei < g.offsets[u+1]; ei++ {
					enqueue(g.edges[ei])
				}
			}
		}
	}
	return order
}

func (b *bfsSource) Lap(emit func(trace.Record)) {
	e := &emitter{emit: emit, nonMem: b.nonMem}
	pc := pcBase(b.name)
	edgePC, visitPC := pc, pc+8
	for _, v := range b.order {
		// The frontier-order dist access: irregular, once per vertex per
		// lap, identical order across laps.
		e.load(visitPC, b.dist.at(int(v)))
		for ei := b.g.offsets[v]; ei < b.g.offsets[v+1]; ei++ {
			e.load(edgePC, b.edgeA.at(int(ei)))
		}
	}
}

func init() {
	register(Workload{
		Name: "pr", Suite: GAP, Irregular: true,
		Build: func(s Scale) LapSource {
			return &gatherSource{name: "pr", edges: s.size(160 << 10),
				hubs: s.size(8 << 10), hotFrac: 0.25, writeTo: true, nonMem: 2}
		},
	})
	register(Workload{
		Name: "cc", Suite: GAP, Irregular: true,
		Build: func(s Scale) LapSource {
			return &gatherSource{name: "cc", edges: s.size(128 << 10),
				hubs: s.size(6 << 10), hotFrac: 0.3, mutate: 0.01, nonMem: 2}
		},
	})
	register(Workload{
		Name: "bc", Suite: GAP, Irregular: true,
		Build: func(s Scale) LapSource {
			return &gatherSource{name: "bc", edges: s.size(112 << 10),
				hubs: s.size(6 << 10), hotFrac: 0.25, chase: true,
				writeTo: true, nonMem: 2}
		},
	})
	register(Workload{
		Name: "bfs", Suite: GAP, Irregular: true,
		Build: func(s Scale) LapSource {
			return &bfsSource{name: "bfs", n: s.size(96 << 10), avgDeg: 4, nonMem: 2}
		},
	})
	register(Workload{
		Name: "tc", Suite: GAP, Irregular: true,
		Build: func(s Scale) LapSource {
			// Triangle counting: dense dependent gathers over a hotter
			// head (hub-hub edges dominate).
			return &gatherSource{name: "tc", edges: s.size(96 << 10),
				hubs: s.size(4 << 10), hotFrac: 0.4, chase: true, nonMem: 2}
		},
	})
	register(Workload{
		Name: "sssp", Suite: GAP, Irregular: true,
		Build: func(s Scale) LapSource {
			// SSSP's bucketed relaxations: BFS-like order with denser edges.
			return &bfsSource{name: "sssp", n: s.size(72 << 10), avgDeg: 6, nonMem: 3}
		},
	})
}
