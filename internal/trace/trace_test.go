package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"streamline/internal/mem"
)

func sampleRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			PC:            mem.PC(rng.Uint64()),
			Addr:          mem.Addr(rng.Uint64()),
			IsWrite:       rng.Intn(2) == 0,
			DependsOnPrev: rng.Intn(3) == 0,
			NonMem:        uint8(rng.Intn(256)),
		}
	}
	return recs
}

func TestSliceTrace(t *testing.T) {
	recs := sampleRecords(10, 1)
	tr := NewSlice(recs)
	for i := 0; i < 2; i++ { // two passes exercise Reset
		for j, want := range recs {
			got, ok := tr.Next()
			if !ok {
				t.Fatalf("pass %d: Next() ended early at %d", i, j)
			}
			if got != want {
				t.Fatalf("pass %d record %d: got %+v want %+v", i, j, got, want)
			}
		}
		if _, ok := tr.Next(); ok {
			t.Fatal("Next() returned a record past the end")
		}
		tr.Reset()
	}
}

func TestLoopingWraps(t *testing.T) {
	recs := sampleRecords(3, 2)
	l := NewLooping(NewSlice(recs))
	for i := 0; i < 10; i++ {
		got, ok := l.Next()
		if !ok {
			t.Fatalf("looping trace ended at %d", i)
		}
		if want := recs[i%3]; got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if l.Laps != 3 {
		t.Errorf("Laps = %d, want 3", l.Laps)
	}
	l.Reset()
	if l.Laps != 0 {
		t.Errorf("Laps after Reset = %d, want 0", l.Laps)
	}
}

func TestLoopingEmpty(t *testing.T) {
	l := NewLooping(NewSlice(nil))
	if _, ok := l.Next(); ok {
		t.Fatal("looping over an empty trace should end")
	}
}

func TestLimitBudget(t *testing.T) {
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = Record{PC: 1, Addr: mem.Addr(i), NonMem: 4} // 5 instr each
	}
	lim := NewLimit(NewLooping(NewSlice(recs)), 23)
	var n, instr uint64
	for {
		r, ok := lim.Next()
		if !ok {
			break
		}
		n++
		instr += r.Instructions()
	}
	// Budget 23 with 5-instruction records: stops once used >= 23, so 5
	// records (25 instructions).
	if n != 5 || instr != 25 {
		t.Errorf("got %d records / %d instructions, want 5 / 25", n, instr)
	}
	lim.Reset()
	if r, ok := lim.Next(); !ok || r.Addr != 0 {
		t.Errorf("after Reset, first record = %+v, %v", r, ok)
	}
}

func TestRecordInstructions(t *testing.T) {
	if got := (Record{NonMem: 0}).Instructions(); got != 1 {
		t.Errorf("Instructions() = %d, want 1", got)
	}
	if got := (Record{NonMem: 255}).Instructions(); got != 256 {
		t.Errorf("Instructions() = %d, want 256", got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	recs := sampleRecords(1000, 3)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 1000 {
		t.Errorf("Count() = %d, want 1000", w.Count())
	}

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("file round trip changed records")
	}
}

func TestReaderImplementsResettableTrace(t *testing.T) {
	recs := sampleRecords(5, 4)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var tr Trace = r
	for pass := 0; pass < 2; pass++ {
		for i := 0; ; i++ {
			rec, ok := tr.Next()
			if !ok {
				if i != 5 {
					t.Fatalf("pass %d ended after %d records", pass, i)
				}
				break
			}
			if rec != recs[i] {
				t.Fatalf("pass %d record %d mismatch", pass, i)
			}
		}
		tr.Reset()
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("NewReader accepted garbage header")
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(pc, addr uint64, w, dep bool, nm uint8) bool {
		rec := Record{PC: mem.PC(pc), Addr: mem.Addr(addr), IsWrite: w,
			DependsOnPrev: dep, NonMem: nm}
		var buf bytes.Buffer
		wr, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if wr.Write(rec) != nil || wr.Flush() != nil {
			return false
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
