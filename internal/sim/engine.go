package sim

// This file is the steppable execution engine: the per-record scheduling
// kernel that Run() used to inline. An Engine advances the system in bounded
// batches of trace records (Step), exposes mid-run observation points
// (Progress), and produces the final statistics (Finish). Run() is a thin
// wrapper — one Engine driven to completion — so stepped and one-shot
// execution share a single code path and are bit-identical by construction.
// The engine is also the one mechanism that drives the periodic machinery:
// the audit scan cadence and the telemetry interval sampler both tick from
// its record loop rather than owning loops of their own.

import (
	"context"
	"math"
)

// DefaultEpoch is the record granularity drivers use between cancellation
// checks when stepping an engine (RunCtx, streamd, experiments). It bounds
// cancellation latency to a few microseconds of simulation without adding a
// measurable per-record cost, and — like all epoch sizes — does not perturb
// the simulated statistics.
const DefaultEpoch = 4096

// Progress is a point-in-time view of a run, safe to read between Step
// calls.
type Progress struct {
	// Records is the number of trace records retired across all cores.
	Records uint64
	// Instructions is the fewest instructions any unfinished core has
	// executed; once every core completes it is clamped to Target.
	Instructions uint64
	// WarmupTarget and Target are the per-core warmup and warmup+measure
	// instruction bounds from the Config.
	WarmupTarget uint64
	Target       uint64
	// Measuring reports whether every core has finished warmup and is in
	// the measured window.
	Measuring bool
	// Cycle is the clock of the core the engine will step next; after
	// completion it is the latest core's finish cycle.
	Cycle uint64
	// Done reports whether every core has completed its run.
	Done bool
}

// MeasuredFraction returns how much of the measured window the slowest core
// has completed, in [0, 1].
func (p Progress) MeasuredFraction() float64 {
	meas := p.Target - p.WarmupTarget
	if meas == 0 {
		if p.Done {
			return 1
		}
		return 0
	}
	if p.Instructions <= p.WarmupTarget {
		return 0
	}
	f := float64(p.Instructions-p.WarmupTarget) / float64(meas)
	if f > 1 {
		f = 1
	}
	return f
}

// Engine drives a System in bounded steps. Create one with System.Engine,
// advance it with Step until Done, then call Finish for the Result. An
// engine is single-use and not safe for concurrent use; Progress may be
// read between Step calls (from the same goroutine or with external
// synchronization).
type Engine struct {
	s           *System
	warm, total uint64
	// next is the core being stepped (nil once every core is done);
	// runnerUp caches the second-earliest core so the scheduler only
	// rescans when next stops beating it.
	next, runnerUp *coreState
	records        uint64
	finished       bool
	result         Result
}

// Engine returns a fresh engine positioned at the start of the run.
func (s *System) Engine() *Engine {
	e := &Engine{
		s:     s,
		warm:  s.cfg.WarmupInstructions,
		total: s.cfg.WarmupInstructions + s.cfg.MeasureInstructions,
	}
	e.next, e.runnerUp = s.pickNext()
	return e
}

// Step executes up to n trace records, interleaving cores by current cycle
// time so contention is modeled, and returns how many it executed. A return
// value less than n means the run completed. Step(0) performs only pending
// phase bookkeeping (warmup snapshots, completion checks).
func (e *Engine) Step(n uint64) uint64 {
	s := e.s
	var executed uint64
	for e.next != nil {
		next := e.next
		if !next.measured && next.core.Instructions() >= e.warm {
			next.warmBase = s.snapshotCore(next)
			next.measured = true
			if iv := s.cfg.Telemetry.SampleInterval(); iv > 0 {
				next.lastSample = next.warmBase
				next.nextSample = next.core.Instructions() + iv
			}
		}
		if next.core.Instructions() >= e.total {
			s.telemetryFinish(next)
			next.final = s.snapshotCore(next)
			next.done = true
			e.next, e.runnerUp = s.pickNext()
			continue
		}
		if executed >= n {
			break
		}
		if s.step(next) {
			e.records++
			executed++
		} else {
			s.telemetryFinish(next)
			next.final = s.snapshotCore(next)
			if !next.measured {
				// The trace exhausted before warmup completed, so the
				// measured window never opened: snapshot the baseline at
				// the end too, or collect() would subtract a zero
				// baseline and report the warmup activity as measured.
				next.warmBase = next.final
				next.measured = true
			}
			next.done = true
		}
		if s.cfg.Audit != nil {
			s.auditTick(next)
		}
		if s.cfg.Telemetry != nil {
			s.telemetryTick(next)
		}
		if next.done || !stillEarliest(next, e.runnerUp) {
			e.next, e.runnerUp = s.pickNext()
		}
	}
	return executed
}

// Done reports whether every core has completed its run. Once true, Finish
// returns the result without executing further records.
func (e *Engine) Done() bool { return e.next == nil }

// Progress returns a point-in-time view of the run.
func (e *Engine) Progress() Progress {
	p := Progress{
		Records:      e.records,
		WarmupTarget: e.warm,
		Target:       e.total,
		Done:         e.next == nil,
	}
	measuring := true
	found := false
	for _, cs := range e.s.cores {
		if cs.tr == nil {
			continue
		}
		if !cs.measured {
			measuring = false
		}
		if cs.done {
			continue
		}
		if !found || cs.core.Instructions() < p.Instructions {
			p.Instructions = cs.core.Instructions()
		}
		found = true
	}
	if !found {
		p.Instructions = e.total
	} else if p.Instructions > e.total {
		p.Instructions = e.total
	}
	p.Measuring = measuring
	if e.next != nil {
		p.Cycle = e.next.core.Now()
	} else {
		for _, cs := range e.s.cores {
			if f := cs.core.Finish(); f > p.Cycle {
				p.Cycle = f
			}
		}
	}
	return p
}

// Finish drives any remaining records to completion, runs the final audit
// scan, and returns the measured-phase results. It is idempotent.
func (e *Engine) Finish() Result {
	if e.finished {
		return e.result
	}
	for e.next != nil {
		e.Step(math.MaxUint64)
	}
	s := e.s
	if s.cfg.Audit != nil {
		var end uint64
		for _, cs := range s.cores {
			if f := cs.core.Finish(); f > end {
				end = f
			}
		}
		s.auditScan(end)
	}
	e.result = s.collect()
	e.finished = true
	return e.result
}

// RunCtx drives a fresh engine to completion in epochs of `epoch` records
// (0 means DefaultEpoch), checking ctx between epochs and invoking observe
// (when non-nil) with fresh Progress after each. On cancellation it stops at
// the next epoch boundary and returns ctx.Err(); the partial run's
// statistics are never collected.
func (s *System) RunCtx(ctx context.Context, epoch uint64, observe func(Progress)) (Result, error) {
	if epoch == 0 {
		epoch = DefaultEpoch
	}
	e := s.Engine()
	for !e.Done() {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		e.Step(epoch)
		if observe != nil {
			observe(e.Progress())
		}
	}
	return e.Finish(), nil
}
