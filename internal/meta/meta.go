// Package meta implements the on-chip temporal-prefetch metadata substrate:
// the storage organizations of Triage, Triangel, and Streamline, living in a
// partition of the LLC. One generic store covers both metadata formats
// (pairwise and stream-based) and all eight partitioning schemes of Table I
// — {Rearranged, Filtered} indexing x {Untagged, Tagged} x {Way, Set}
// partitioning — so the paper's partitioning study is a configuration sweep
// rather than eight implementations.
//
// The store accounts for every block of LLC traffic it generates: lookup
// reads, insertion writes, and — for rearranged indexing — the shuffle
// traffic each repartition causes (the cost Streamline's filtered indexing
// eliminates, Section IV-C).
package meta

import (
	"fmt"

	"streamline/internal/mem"
)

// Entry is one metadata entry: a trigger line and the correlated targets
// that followed it. Pairwise formats have exactly one target; Streamline's
// stream entries have StreamLength targets. Conf is the format's confidence
// bit: set once the entry has been re-stored with identical targets, and
// cleared when a store overwrites it with different ones — an unstable
// (frequently re-targeted) trigger never confirms.
type Entry struct {
	Trigger mem.Line
	Targets []mem.Line
	Conf    bool
}

// Valid reports whether the entry holds at least one target.
func (e Entry) Valid() bool { return len(e.Targets) > 0 }

// Bridge connects a metadata store to its host LLC. The simulator's bridge
// charges port contention and latency on the real LLC and carves capacity
// out of it; a dedicated-storage bridge (Triangel-Ideal in Figure 13a)
// reserves nothing.
type Bridge interface {
	// MetaAccess charges one metadata block access beginning at cycle now
	// and returns its latency.
	MetaAccess(now uint64, kind mem.Kind) uint64
	// ReserveWays reserves the low ways of an LLC set for metadata
	// (ways=0 releases the set back to data).
	ReserveWays(set, ways int)
	// Geometry returns the host LLC's sets and ways.
	Geometry() (sets, ways int)
}

// NullBridge is a Bridge with no host LLC: fixed-latency metadata access and
// no capacity accounting. It models dedicated metadata storage and serves
// unit tests.
type NullBridge struct {
	Sets, Ways int
	Latency    uint64
	Reads      uint64
	Writes     uint64
}

// MetaAccess implements Bridge.
func (b *NullBridge) MetaAccess(_ uint64, kind mem.Kind) uint64 {
	if kind == mem.MetaWrite {
		b.Writes++
	} else {
		b.Reads++
	}
	return b.Latency
}

// ReserveWays implements Bridge (no capacity to reserve).
func (b *NullBridge) ReserveWays(int, int) {}

// Geometry implements Bridge.
func (b *NullBridge) Geometry() (int, int) { return b.Sets, b.Ways }

// Format selects the metadata entry layout.
type Format int

const (
	// Pairwise stores (trigger, target) pairs: Triangel's uncompressed
	// format, 12 correlations per 64B block.
	Pairwise Format = iota
	// PairwiseCompressed is Triage's LUT-compressed pairwise format,
	// 16 correlations per block (at an accuracy cost modeled by the
	// Triage prefetcher, not the store).
	PairwiseCompressed
	// Stream stores length-K streams: Streamline's format.
	Stream
)

// String names the format.
func (f Format) String() string {
	switch f {
	case Pairwise:
		return "pairwise"
	case PairwiseCompressed:
		return "pairwise-compressed"
	case Stream:
		return "stream"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// CorrelationsPerBlock returns how many correlations one 64B metadata block
// holds under the format. For streams this matches the paper's Section V-C1
// accounting: lengths 2, 3 and 5 hold 14, 15 and 15 correlations; lengths
// 4, 8 and 16 hold the full 16.
func CorrelationsPerBlock(f Format, streamLen int) int {
	switch f {
	case Pairwise:
		return 12
	case PairwiseCompressed:
		return 16
	case Stream:
		switch {
		case streamLen < 2:
			return 12
		case streamLen == 2:
			return 14
		case streamLen == 3:
			return 15
		case streamLen == 4:
			return 16
		case streamLen == 5:
			return 15
		default: // 8, 16, ... pack evenly; longer streams hold one entry
			n := 16 / streamLen
			if n < 1 {
				n = 1
			}
			return n * streamLen
		}
	default:
		return 12
	}
}

// EntriesPerBlock returns how many entries of the format fit in a block.
func EntriesPerBlock(f Format, streamLen int) int {
	if f == Stream {
		if streamLen < 1 {
			streamLen = 1
		}
		n := CorrelationsPerBlock(f, streamLen) / streamLen
		if n < 1 {
			n = 1
		}
		return n
	}
	return CorrelationsPerBlock(f, streamLen)
}

// Stats counts metadata store events and LLC traffic (in 64B blocks).
type Stats struct {
	Lookups     uint64 // store lookups (after any prefetcher-side buffering)
	TriggerHits uint64 // lookups that found the trigger
	Inserts     uint64 // new entries written
	Updates     uint64 // in-place overwrites of an existing trigger's entry

	Reads  uint64 // LLC blocks read (lookups)
	Writes uint64 // LLC blocks written (inserts/updates)

	RearrangeReads  uint64 // shuffle traffic from repartitioning
	RearrangeWrites uint64

	FilteredInserts uint64 // entries dropped by filtered indexing
	FilteredLookups uint64 // lookups short-circuited by filtered indexing

	AliasedInserts uint64 // inserts constrained by partial-tag aliasing
	Evictions      uint64 // entries displaced by replacement
	DroppedResize  uint64 // entries lost when a resize shrank the store
	Resizes        uint64
}

// Traffic returns total metadata blocks moved to/from the LLC, including
// rearrangement traffic.
func (s Stats) Traffic() uint64 {
	return s.Reads + s.Writes + s.RearrangeReads + s.RearrangeWrites
}

// TriggerHitRate returns trigger hits over lookups.
func (s Stats) TriggerHitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.TriggerHits) / float64(s.Lookups)
}
