package runner

import (
	"time"

	"streamline/internal/metrics"
)

// Metrics is the runner-level instrument set: job completion accounting and
// the per-attempt latency histogram, shared by every surface that executes
// jobs under the fault policy — the experiment sweep and the serving
// daemon's cache-miss computations alike. Resolve it with NewMetrics and
// hand it to FaultPolicy.Metrics; a nil *Metrics disables everything.
type Metrics struct {
	// Completed counts jobs whose final attempt succeeded.
	Completed *metrics.Counter
	// Failed counts jobs that failed permanently (panic, timeout,
	// exhausted retries).
	Failed *metrics.Counter
	// Retries counts additional attempts after a transient failure.
	Retries *metrics.Counter
	// Gapped counts failed jobs the sweep layer degraded to GAP cells
	// (incremented by internal/exp's failure log, not by Execute).
	Gapped *metrics.Counter
	// Replayed counts jobs answered from a checkpoint store instead of
	// recomputed (incremented by internal/exp's resume path).
	Replayed *metrics.Counter
	// Attempts observes every attempt's wall clock, successes and failures
	// alike.
	Attempts *metrics.Histogram
}

// NewMetrics resolves (get-or-create) the runner instrument family on reg,
// so independently wired subsystems sharing one registry get one set of
// counters.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		Completed: reg.Counter("runner_jobs_completed_total",
			"jobs whose final attempt succeeded"),
		Failed: reg.Counter("runner_jobs_failed_total",
			"jobs that failed permanently (panic, timeout, exhausted retries)"),
		Retries: reg.Counter("runner_job_retries_total",
			"additional attempts after a transient failure"),
		Gapped: reg.Counter("runner_jobs_gapped_total",
			"failed jobs degraded to GAP cells by the sweep layer"),
		Replayed: reg.Counter("runner_jobs_replayed_total",
			"jobs answered from a checkpoint store instead of recomputed"),
		Attempts: reg.Histogram("runner_job_attempt_seconds",
			"per-attempt job wall clock", metrics.LatencyBuckets),
	}
}

// The nil-safe hooks Execute calls; a nil receiver is the disabled path.

func (m *Metrics) attempt(d time.Duration) {
	if m != nil {
		m.Attempts.Observe(d.Seconds())
	}
}

func (m *Metrics) completed() {
	if m != nil {
		m.Completed.Inc()
	}
}

func (m *Metrics) failed() {
	if m != nil {
		m.Failed.Inc()
	}
}

func (m *Metrics) retried() {
	if m != nil {
		m.Retries.Inc()
	}
}

// GapInc and ReplayInc are the nil-safe increments for the sweep layer's
// degradation and resume accounting.

// GapInc counts one job degraded to a gap.
func (m *Metrics) GapInc() {
	if m != nil {
		m.Gapped.Inc()
	}
}

// ReplayInc counts one job replayed from a checkpoint store.
func (m *Metrics) ReplayInc() {
	if m != nil {
		m.Replayed.Inc()
	}
}
