// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run all -scale paper
//	experiments -run fig10a,fig13b -v
//	experiments -run all -jobs 8 -json results.json
//	experiments -run all -checkpoint sweep.d   # crash-safe: results persist
//	experiments -run all -resume sweep.d       # replay finished jobs, run the rest
//
// Independent simulations (one per configuration x workload x mix) run on a
// bounded worker pool; -jobs sets its size. Table output on stdout is
// byte-identical for every -jobs value: results are aggregated in
// deterministic job order, and everything scheduling-dependent (progress,
// timings) goes to stderr. With -checkpoint/-resume every completed
// simulation is persisted (fsynced, checksummed) to the sweep directory, and
// a resumed run's stdout is byte-identical to an uninterrupted one.
//
// A permanently failing job (panic, exhausted -job-retries, -job-timeout)
// does not abort the sweep: its cells render as GAP, the affected tables are
// annotated, and the process exits nonzero after completing everything else.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"streamline/internal/exp"
	"streamline/internal/exp/runner"
	"streamline/internal/exp/store"
	"streamline/internal/metrics"
)

func main() {
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		scale    = flag.String("scale", "small", "experiment scale: micro, small, or paper")
		list     = flag.Bool("list", false, "list available experiments")
		verbose  = flag.Bool("v", false, "print per-run progress")
		quiet    = flag.Bool("q", false, "suppress per-job progress/ETA reporting on stderr")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation jobs (1 = serial)")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonDest = flag.String("json", "", "write all results as JSON to this file ('-' for stdout)")
		check    = flag.Bool("check", false, "run every simulation with the invariant audit enabled; exit 1 on violations")

		checkpoint = flag.String("checkpoint", "", "persist completed simulations into this sweep directory (created if needed; reopening resumes it)")
		resumeDir  = flag.String("resume", "", "resume a sweep: replay completed simulations from this existing sweep directory, run the rest, keep checkpointing into it")
		jobTimeout = flag.Duration("job-timeout", 0, "per-attempt wall-clock bound for one simulation (0: unbounded); a timed-out job becomes a GAP")
		jobRetries = flag.Int("job-retries", 0, "additional attempts for a transiently failing simulation")
		jobBackoff = flag.Duration("job-backoff", time.Second, "pause before a job's first retry, doubling per retry")

		progress    = flag.Duration("progress", 0, "print a sweep-progress line (jobs completed/failed/retried/gapped/replayed) to stderr at this interval (0: off)")
		metricsDest = flag.String("metrics", "", "write the final metrics exposition to this file at exit ('-' for stderr)")

		telDir     = flag.String("telemetry-dir", "", "write per-simulation telemetry JSONL files into this directory")
		sampleIvl  = flag.Uint64("sample-interval", 0, "measured instructions between telemetry samples per core (0: a tenth of the measured window)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *list || *runIDs == "" {
		fmt.Println("available experiments:")
		for _, e := range exp.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *runIDs == "" {
			fmt.Println("\nrun with: experiments -run <id>[,<id>...] | all")
		}
		return
	}

	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "invalid -jobs %d: need at least 1 worker\n", *jobs)
		os.Exit(2)
	}
	if *checkpoint != "" && *resumeDir != "" {
		fmt.Fprintln(os.Stderr, "-checkpoint and -resume are mutually exclusive (resume already keeps checkpointing into its directory)")
		os.Exit(2)
	}

	var sc exp.Scale
	switch *scale {
	case "micro":
		sc = exp.Micro
	case "small":
		sc = exp.Small
	case "paper":
		sc = exp.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want micro, small, or paper)\n", *scale)
		os.Exit(2)
	}

	var selected []exp.Experiment
	if *runIDs == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	st, err := openStore(*checkpoint, *resumeDir, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// os.Exit skips defers, so every exit after this point goes through
	// exit() to flush the profiles.
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// SIGINT cancels the sweep cooperatively: in-flight simulations stop at
	// their next engine epoch boundary, pending jobs fail fast, and results
	// already checkpointed stay durable for a later -resume.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	r := exp.NewRunner(sc)
	r.Ctx = ctx
	r.Jobs = *jobs
	r.Check = *check
	r.Store = st
	r.Fault = runner.FaultPolicy{Timeout: *jobTimeout, Retries: *jobRetries, Backoff: *jobBackoff}
	r.FailKey = os.Getenv("EXPERIMENTS_FAIL_KEY")

	// EnableMetrics must follow the Fault assignment (it hooks the policy).
	reg := metrics.NewRegistry()
	jm := r.EnableMetrics(reg)
	stopProgress := startProgress(*progress, jm)
	exit := func(code int) {
		stopProgress()
		if err := writeMetrics(*metricsDest, reg); err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
		stopProfiles()
		os.Exit(code)
	}
	if st != nil {
		fmt.Fprintf(os.Stderr, "sweep: %s holds %d completed job(s) (%d quarantined)\n",
			st.Dir(), st.Loaded(), st.Quarantined())
		armCrashAfter(st)
	}
	if !*quiet {
		r.JobProgress = os.Stderr
	}
	if *verbose {
		r.Progress = os.Stderr
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}
	if *telDir != "" {
		if err := os.MkdirAll(*telDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		r.TelemetryDir = *telDir
		r.SampleInterval = *sampleIvl
	}
	report := jsonReport{Scale: sc.Name, Jobs: r.Jobs}
	failedJobs := 0
	for _, e := range selected {
		if ctx.Err() != nil {
			break
		}
		start := time.Now()
		fmt.Printf("# %s — %s (%s scale)\n", e.ID, e.Title, sc.Name)
		tables := e.Run(r)
		if ctx.Err() != nil {
			// Interrupted mid-experiment: the aborted jobs' tables are
			// gap-ridden and misleading — discard them and exit below.
			break
		}
		// Mark this experiment's gaps in its own output, deterministically
		// (failures are as reproducible as the simulations themselves).
		fails := r.DrainFailures()
		failedJobs += len(fails)
		exp.AnnotateGaps(tables, fails)
		for _, t := range tables {
			fmt.Println(t)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintln(os.Stderr, err)
					exit(1)
				}
			}
		}
		fmt.Println()
		// Wall-clock lines are scheduling-dependent; keep stdout
		// byte-identical across -jobs values by reporting them on stderr.
		fmt.Fprintf(os.Stderr, "# %s done in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID: e.ID, Title: e.Title, Tables: tables,
		})
	}
	if ctx.Err() != nil {
		stopSignals() // a second ^C now kills the process the default way
		if st != nil {
			fmt.Fprintf(os.Stderr, "sweep: interrupted; %d completed result(s) remain durable in %s\n",
				st.Len(), st.Dir())
			st.Close()
		} else {
			fmt.Fprintln(os.Stderr, "interrupted")
		}
		exit(130)
	}
	if *jsonDest != "" {
		if err := writeJSON(*jsonDest, report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}
	if st != nil {
		fmt.Fprintf(os.Stderr, "sweep: replayed %d cached result(s), store now holds %d\n",
			r.ResumedJobs(), st.Len())
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			exit(1)
		}
	}
	if err := r.StoreErr(); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: checkpoint incomplete: %v\n", err)
		exit(1)
	}
	if err := r.TelemetryErr(); err != nil {
		fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
		exit(1)
	}
	if *check {
		// The audit summary goes to stderr so stdout stays byte-identical
		// with unaudited runs.
		if r.AuditSummary(os.Stderr) > 0 {
			exit(1)
		}
	}
	if failedJobs > 0 {
		// Degradation summary: the sweep completed, but with gaps. This is
		// on stdout — a degraded result must not look like a clean one —
		// and deterministic, so resumed runs stay byte-identical.
		fmt.Printf("sweep degraded: %d job(s) failed; affected cells are marked %s above\n",
			failedJobs, exp.GapCell)
		exit(1)
	}
	exit(0)
}

// startProgress launches the periodic sweep-progress reporter: every ivl it
// prints one line of runner counters to stderr (never stdout, which must stay
// byte-identical across configurations). The returned stop function waits
// for the reporter goroutine so no line races the final exit.
func startProgress(ivl time.Duration, m *runner.Metrics) func() {
	if ivl <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(ivl)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(os.Stderr, progressLine(m))
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// progressLine renders one sweep-progress report from the runner counters.
func progressLine(m *runner.Metrics) string {
	line := fmt.Sprintf("progress: %d completed, %d failed, %d retried, %d gapped, %d replayed",
		m.Completed.Value(), m.Failed.Value(), m.Retries.Value(), m.Gapped.Value(), m.Replayed.Value())
	if m.Attempts.Count() > 0 {
		mean := time.Duration(m.Attempts.Mean() * float64(time.Second))
		line += fmt.Sprintf(", mean attempt %v", mean.Round(time.Millisecond))
	}
	return line
}

// writeMetrics renders the final exposition at exit: to stderr for '-', or
// atomically to a file. A sweep's stdout never carries metrics.
func writeMetrics(dest string, reg *metrics.Registry) error {
	switch dest {
	case "":
		return nil
	case "-":
		return reg.WriteText(os.Stderr)
	}
	return store.WriteFileAtomic(dest, reg.WriteText)
}

// openStore resolves the -checkpoint/-resume flags into an open result
// store, or nil when neither was given.
func openStore(checkpoint, resumeDir string, sc exp.Scale) (*store.Store, error) {
	man := store.Manifest{
		Version:   store.Version,
		ScaleName: sc.Name,
		ScaleFP:   sc.Fingerprint(),
		Seed:      sc.Seed,
	}
	switch {
	case resumeDir != "":
		return store.Open(resumeDir, man)
	case checkpoint != "":
		return store.Create(checkpoint, man)
	}
	return nil, nil
}

// armCrashAfter wires the crash-injection harness: when
// EXPERIMENTS_CRASH_AFTER=N is set, the process SIGKILLs itself right after
// the Nth result becomes durable — a real mid-sweep crash at a
// deterministic point, used by the kill-and-resume end-to-end test.
func armCrashAfter(st *store.Store) {
	v := os.Getenv("EXPERIMENTS_CRASH_AFTER")
	if v == "" {
		return
	}
	after, err := strconv.Atoi(v)
	if err != nil || after < 1 {
		fmt.Fprintf(os.Stderr, "invalid EXPERIMENTS_CRASH_AFTER %q\n", v)
		os.Exit(2)
	}
	st.SetAfterAppend(func(total int) {
		if total >= after {
			p, _ := os.FindProcess(os.Getpid())
			p.Kill()
			select {} // die before the append is acknowledged
		}
	})
}

// startProfiles begins CPU profiling and arranges a heap profile, returning
// a stop function that must run before every exit (os.Exit skips defers).
func startProfiles(cpuDest, memDest string) (func(), error) {
	var cpuFile *os.File
	if cpuDest != "" {
		f, err := os.Create(cpuDest)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memDest != "" {
			f, err := os.Create(memDest)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

// jsonReport is the -json results document: everything the text tables
// carry, machine-readable, with no scheduling-dependent fields so the same
// run configuration always serializes identically.
type jsonReport struct {
	Scale       string           `json:"scale"`
	Jobs        int              `json:"jobs"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Tables []exp.Table `json:"tables"`
}

// writeJSON writes the report atomically (temp file + fsync + rename), so a
// crash mid-write never leaves a truncated results file that parses as a
// partial run.
func writeJSON(dest string, report jsonReport) error {
	emit := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	if dest == "-" {
		return emit(os.Stdout)
	}
	return store.WriteFileAtomic(dest, emit)
}

// writeCSV saves one result table as <dir>/<id>.csv, atomically (see
// writeJSON).
func writeCSV(dir string, t exp.Table) error {
	return store.WriteFileAtomic(filepath.Join(dir, t.ID+".csv"), func(iw io.Writer) error {
		w := csv.NewWriter(iw)
		if err := w.Write(t.Columns); err != nil {
			return err
		}
		for _, row := range t.Rows {
			if err := w.Write(row); err != nil {
				return err
			}
		}
		w.Flush()
		return w.Error()
	})
}
