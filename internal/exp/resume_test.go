package exp

import (
	"strings"
	"testing"

	"streamline/internal/exp/store"
)

func resumeManifest(sc Scale) store.Manifest {
	return store.Manifest{Version: store.Version, ScaleName: sc.Name,
		ScaleFP: sc.Fingerprint(), Seed: sc.Seed}
}

// renderWithRunner runs one experiment on the given runner and returns the
// rendered tables plus any annotated gaps — exactly what cmd/experiments
// prints for it.
func renderWithRunner(t *testing.T, r *Runner, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q missing", id)
	}
	tables := e.Run(r)
	AnnotateGaps(tables, r.DrainFailures())
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestStoreResumeByteIdentical: the same experiment rendered three ways —
// without a store, populating a fresh store, and replaying from that store —
// must be byte-identical, and the replay must come from cache, not recompute.
func TestStoreResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs micro-scale simulations")
	}
	sc := Micro
	const id = "fig9"

	plain := renderWithRunner(t, NewRunner(sc), id)

	dir := t.TempDir()
	st, err := store.Create(dir, resumeManifest(sc))
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(sc)
	r1.Store = st
	first := renderWithRunner(t, r1, id)
	if first != plain {
		t.Errorf("storing results changed the rendered output:\n--- plain ---\n%s\n--- stored ---\n%s", plain, first)
	}
	if st.Len() == 0 {
		t.Fatal("no results persisted to the store")
	}
	stored := st.Len()
	if r1.ResumedJobs() != 0 {
		t.Errorf("fresh run replayed %d jobs from an empty store", r1.ResumedJobs())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, resumeManifest(sc))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Loaded() != stored {
		t.Fatalf("reopened store holds %d records, want %d", st2.Loaded(), stored)
	}
	r2 := NewRunner(sc)
	r2.Store = st2
	resumed := renderWithRunner(t, r2, id)
	if resumed != plain {
		t.Errorf("resumed output differs from the uninterrupted run:\n--- plain ---\n%s\n--- resumed ---\n%s", plain, resumed)
	}
	if r2.ResumedJobs() != stored {
		t.Errorf("replayed %d jobs from cache, want all %d", r2.ResumedJobs(), stored)
	}
	if err := r2.StoreErr(); err != nil {
		t.Errorf("store error during resume: %v", err)
	}
}

// TestStoreScaleMismatch: a store checkpointed at one scale must refuse a
// runner at another — replaying results across scales would silently produce
// wrong tables.
func TestStoreScaleMismatch(t *testing.T) {
	sc := Micro
	dir := t.TempDir()
	st, err := store.Create(dir, resumeManifest(sc))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	other := sc
	other.Seed = sc.Seed + 1
	if _, err := store.Open(dir, resumeManifest(other)); err == nil {
		t.Error("store opened under a mismatched seed")
	}
	other = sc
	other.Footprint = sc.Footprint * 2
	if _, err := store.Open(dir, resumeManifest(other)); err == nil {
		t.Error("store opened under a mismatched scale fingerprint")
	}
}

// TestFailKeyDegradesToGap: with an injected per-job failure the experiment
// still completes, the failed cell renders as GAP, the failure is reported
// once via DrainFailures, and unaffected rows match the clean run.
func TestFailKeyDegradesToGap(t *testing.T) {
	if testing.Short() {
		t.Skip("runs micro-scale simulations")
	}
	sc := Micro
	const id = "fig9"
	failKey := "triangel|" + sc.Workloads[0]

	clean := renderWithRunner(t, NewRunner(sc), id)
	if strings.Contains(clean, GapCell) {
		t.Fatalf("clean run already contains %s cells", GapCell)
	}

	r := NewRunner(sc)
	r.FailKey = failKey
	e, _ := ByID(id)
	tables := e.Run(r)
	fails := r.DrainFailures()
	if len(fails) == 0 {
		t.Fatal("injected failure was not recorded")
	}
	for _, f := range fails {
		if !strings.Contains(f.Key, failKey) {
			t.Errorf("unexpected failure %q (injected only %q)", f.Key, failKey)
		}
	}
	AnnotateGaps(tables, fails)
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.String())
		sb.WriteString("\n")
	}
	out := sb.String()
	if !strings.Contains(out, GapCell) {
		t.Errorf("failed job did not surface as a %s cell:\n%s", GapCell, out)
	}
	if !strings.Contains(out, "GAP: job") {
		t.Errorf("gap note missing from annotated tables:\n%s", out)
	}

	// Rows not touched by the failure must be unchanged: every line of the
	// degraded output either appears verbatim in the clean output, mentions
	// the gap, or is an aggregate (geomeans legitimately shift when the
	// failed sample is excluded).
	cleanLines := map[string]bool{}
	for _, line := range strings.Split(clean, "\n") {
		cleanLines[line] = true
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, GapCell) || strings.Contains(line, "GAP: job") ||
			strings.Contains(line, "geomean") {
			continue
		}
		if !cleanLines[line] {
			t.Errorf("line changed outside the gapped cell: %q", line)
		}
	}

	// A second drain reports nothing new.
	if extra := r.DrainFailures(); len(extra) != 0 {
		t.Errorf("DrainFailures not idempotent: %v", extra)
	}
}
