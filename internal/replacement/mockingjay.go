package replacement

import "streamline/internal/mem"

// mockingjay implements the Mockingjay replacement policy (Shah, Jain & Lin,
// HPCA 2022): a sampled reuse-distance predictor (RDP) estimates each load
// PC's reuse distance, each cached line carries an estimated-time-remaining
// (ETR) counter that a per-set clock decays, and the victim is the line with
// the largest |ETR| — either long-dead or furthest-future. Streamline's
// TP-Mockingjay (internal/core) specializes this machinery to correlations.
type mockingjay struct {
	sets, ways int

	etr    [][]int16
	linePC [][]uint16

	rdp []int16 // predicted reuse distance per PC signature, in clock units

	sampler     map[int]*mjSampler
	clock       []uint8 // per-set access counter driving ETR decay
	granularity uint8   // set accesses per ETR tick
}

const (
	mjSigBits    = 11
	mjInfRD      = 127 // scan prediction: effectively never reused
	mjMaxETR     = 127
	mjSamplerWay = 10
)

// mjSampler tracks recent accesses to one sampled set to measure observed
// reuse distances.
type mjSampler struct {
	valid []bool
	tag   []uint16
	pc    []uint16
	ts    []uint8
	now   uint8
}

// NewMockingjay returns the Mockingjay policy.
func NewMockingjay(sets, ways int) Policy {
	p := &mockingjay{
		sets: sets, ways: ways,
		etr:         make([][]int16, sets),
		linePC:      make([][]uint16, sets),
		rdp:         make([]int16, 1<<mjSigBits),
		sampler:     make(map[int]*mjSampler),
		clock:       make([]uint8, sets),
		granularity: uint8(max(1, ways/2)),
	}
	for i := range p.etr {
		p.etr[i] = make([]int16, ways)
		p.linePC[i] = make([]uint16, ways)
	}
	for i := range p.rdp {
		p.rdp[i] = -1 // untrained
	}
	stride := 16
	if sets < 64 {
		stride = 1
	}
	for s := 0; s < sets; s += stride {
		p.sampler[s] = &mjSampler{
			valid: make([]bool, mjSamplerWay),
			tag:   make([]uint16, mjSamplerWay),
			pc:    make([]uint16, mjSamplerWay),
			ts:    make([]uint8, mjSamplerWay),
		}
	}
	return p
}

func (p *mockingjay) Name() string { return "mockingjay" }

func (p *mockingjay) sig(pc mem.PC) uint16 { return uint16(mem.HashPC(pc, mjSigBits)) }

// trainRDP blends an observed reuse distance into the predictor with the
// temporal-difference update Mockingjay uses.
func (p *mockingjay) trainRDP(sig uint16, observed int16) {
	cur := p.rdp[sig]
	if cur < 0 {
		p.rdp[sig] = observed
		return
	}
	diff := observed - cur
	step := diff / 8
	if step == 0 {
		if diff > 0 {
			step = 1
		} else if diff < 0 {
			step = -1
		}
	}
	next := cur + step
	if next < 0 {
		next = 0
	}
	if next > mjInfRD {
		next = mjInfRD
	}
	p.rdp[sig] = next
}

// sample feeds sampled sets: hits measure reuse distance, replacements of
// unreused victims mark their PCs as scans.
func (p *mockingjay) sample(set int, a Access) {
	s, ok := p.sampler[set]
	if !ok {
		return
	}
	s.now++
	tag := uint16(mem.HashLine(a.Line, 16))
	sig := p.sig(a.PC)
	oldest, oldestAge := 0, -1
	for i := range s.valid {
		if s.valid[i] && s.tag[i] == tag {
			observed := int16(s.now - s.ts[i]) // uint8 wraparound distance
			p.trainRDP(s.pc[i], observed)
			s.pc[i] = sig
			s.ts[i] = s.now
			return
		}
		age := int(s.now - s.ts[i])
		if !s.valid[i] {
			age = 1 << 16 // free slot wins
		}
		if age > oldestAge {
			oldest, oldestAge = i, age
		}
	}
	if s.valid[oldest] {
		// Evicted without reuse within the sampler's horizon: scan-like.
		p.trainRDP(s.pc[oldest], mjInfRD)
	}
	s.valid[oldest] = true
	s.tag[oldest] = tag
	s.pc[oldest] = sig
	s.ts[oldest] = s.now
}

// tick advances the per-set clock, decaying every resident line's ETR once
// per granularity accesses.
func (p *mockingjay) tick(set int) {
	p.clock[set]++
	if p.clock[set] < p.granularity {
		return
	}
	p.clock[set] = 0
	for w := range p.etr[set] {
		if p.etr[set][w] > -mjMaxETR {
			p.etr[set][w]--
		}
	}
}

// predictETR converts the RDP prediction for pc into an initial ETR value.
func (p *mockingjay) predictETR(pc mem.PC) int16 {
	rd := p.rdp[p.sig(pc)]
	if rd < 0 {
		// Untrained PCs get a median prediction rather than scan treatment.
		return int16(p.ways)
	}
	etr := rd / int16(p.granularity)
	if etr > mjMaxETR {
		etr = mjMaxETR
	}
	return etr
}

func (p *mockingjay) Hit(set, way int, a Access) {
	p.sample(set, a)
	p.tick(set)
	p.etr[set][way] = p.predictETR(a.PC)
	p.linePC[set][way] = p.sig(a.PC)
}

func (p *mockingjay) Fill(set, way int, a Access) {
	p.sample(set, a)
	p.tick(set)
	p.etr[set][way] = p.predictETR(a.PC)
	p.linePC[set][way] = p.sig(a.PC)
}

func (p *mockingjay) Evict(set, way int) { p.etr[set][way] = 0 }

func (p *mockingjay) Victim(set, lo int, a Access) int {
	// Bypass opportunity: if the incoming line is predicted a scan and no
	// resident line is deader, Mockingjay would bypass; since our caller
	// always installs, evict the max-|ETR| line.
	best, bestAbs := lo, int16(-1)
	for w := lo; w < len(p.etr[set]); w++ {
		e := p.etr[set][w]
		abs := e
		if abs < 0 {
			abs = -abs
		}
		// Prefer dead lines (negative ETR) on ties: they are already past
		// their predicted reuse.
		if abs > bestAbs || (abs == bestAbs && e < 0 && p.etr[set][best] >= 0) {
			best, bestAbs = w, abs
		}
	}
	return best
}
