// Package spp implements the Signature Path Prefetcher with Perceptron
// Prefetch Filtering (SPP-PPF, Bhatia et al., ISCA 2019): per-page delta
// signatures index a pattern table whose confident deltas are followed with
// multiplicative path confidence, and a perceptron filter accepts or rejects
// each candidate using PC/signature/delta features. SPP-PPF is one of
// Figure 11c's L2 regular-prefetcher baselines.
package spp

import (
	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

// Config parameterizes SPP-PPF.
type Config struct {
	// PageLines is the spatial scope of signatures (64: 4KB pages).
	PageLines int
	// Trackers is the number of concurrently tracked pages.
	Trackers int
	// LookaheadDepth bounds the signature chain walk.
	LookaheadDepth int
	// PathThreshold is the minimum multiplicative path confidence
	// (percent) to continue prefetching.
	PathThreshold int
	// FilterThreshold is the perceptron acceptance threshold.
	FilterThreshold int
}

// DefaultConfig matches the published design's intent.
var DefaultConfig = Config{
	PageLines:       64,
	Trackers:        64,
	LookaheadDepth:  4,
	PathThreshold:   25,
	FilterThreshold: 0,
}

type pageTracker struct {
	valid  bool
	page   mem.Line
	last   int // last offset
	sig    uint16
	lru    uint64
	filled bool
}

type patternEntry struct {
	delta int64
	count int
	total int
}

// perceptron is the PPF: small weight tables over hashed features.
type perceptron struct {
	wPC    []int8
	wSig   []int8
	wDelta []int8
}

func newPerceptron() *perceptron {
	return &perceptron{
		wPC:    make([]int8, 1<<10),
		wSig:   make([]int8, 1<<10),
		wDelta: make([]int8, 1<<8),
	}
}

func (pf *perceptron) features(pc mem.PC, sig uint16, delta int64) (int, int, int) {
	return int(mem.HashPC(pc, 10)),
		int(sig) & 1023,
		int(uint64(delta)) & 255
}

func (pf *perceptron) score(pc mem.PC, sig uint16, delta int64) int {
	a, b, c := pf.features(pc, sig, delta)
	return int(pf.wPC[a]) + int(pf.wSig[b]) + int(pf.wDelta[c])
}

func (pf *perceptron) train(pc mem.PC, sig uint16, delta int64, useful bool) {
	a, b, c := pf.features(pc, sig, delta)
	upd := func(w *int8, d int8) {
		n := *w + d
		if n > 31 {
			n = 31
		}
		if n < -32 {
			n = -32
		}
		*w = n
	}
	d := int8(1)
	if !useful {
		d = -1
	}
	upd(&pf.wPC[a], d)
	upd(&pf.wSig[b], d)
	upd(&pf.wDelta[c], d)
}

// issuedRecord remembers a recent prefetch decision for filter training.
type issuedRecord struct {
	line  mem.Line
	pc    mem.PC
	sig   uint16
	delta int64
	valid bool
}

// Prefetcher is the SPP-PPF prefetcher.
type Prefetcher struct {
	cfg      Config
	trackers []pageTracker
	patterns map[uint16]*patternEntry
	filter   *perceptron
	issued   []issuedRecord
	issuedN  int
	clock    uint64
}

// New returns an SPP-PPF instance.
func New(cfg Config) *Prefetcher {
	if cfg.PageLines <= 0 {
		cfg = DefaultConfig
	}
	return &Prefetcher{
		cfg:      cfg,
		trackers: make([]pageTracker, cfg.Trackers),
		patterns: make(map[uint16]*patternEntry),
		filter:   newPerceptron(),
		issued:   make([]issuedRecord, 256),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "spp-ppf" }

func sigNext(sig uint16, delta int64) uint16 {
	return (sig<<3 ^ uint16(uint64(delta)&0x3f)) & 0xfff
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event, out []prefetch.Request) []prefetch.Request {
	line := ev.Line()
	page := line / mem.Line(p.cfg.PageLines)
	offset := int(line % mem.Line(p.cfg.PageLines))
	p.clock++

	// Filter training: a demand access to a line we recently prefetched
	// confirms the decision.
	for i := range p.issued {
		r := &p.issued[i]
		if r.valid && r.line == line {
			p.filter.train(r.pc, r.sig, r.delta, true)
			r.valid = false
		}
	}

	tr := p.findTracker(page)
	if tr == nil {
		return out
	}
	if !tr.filled {
		tr.last = offset
		tr.filled = true
		tr.lru = p.clock
		return out
	}
	delta := int64(offset - tr.last)
	if delta == 0 {
		return out
	}

	// Train the pattern table for the old signature.
	pe, ok := p.patterns[tr.sig]
	if !ok {
		pe = &patternEntry{}
		p.patterns[tr.sig] = pe
	}
	pe.total++
	if pe.delta == delta {
		pe.count++
	} else if pe.count > 0 {
		pe.count--
	} else {
		pe.delta = delta
		pe.count = 1
	}
	if pe.total > 64 {
		pe.total /= 2
		pe.count = (pe.count + 1) / 2
	}

	tr.sig = sigNext(tr.sig, delta)
	tr.last = offset
	tr.lru = p.clock

	// Lookahead walk with multiplicative path confidence.
	conf := 100
	sig := tr.sig
	cur := int64(offset)
	for depth := 0; depth < p.cfg.LookaheadDepth; depth++ {
		pe, ok := p.patterns[sig]
		// Require minimum support and a majority delta before trusting a
		// signature; fresh or churning signatures (conf trivially high)
		// would otherwise spray prefetches on random access patterns.
		if !ok || pe.total < 4 || pe.delta == 0 || pe.count*2 <= pe.total {
			break
		}
		conf = conf * pe.count * 100 / pe.total / 100
		if conf < p.cfg.PathThreshold {
			break
		}
		cur += pe.delta
		if cur < 0 || cur >= int64(p.cfg.PageLines) {
			break // SPP stops at page boundaries
		}
		target := mem.Line(uint64(page)*uint64(p.cfg.PageLines)) + mem.Line(cur)
		if p.filter.score(ev.PC, sig, pe.delta) >= p.cfg.FilterThreshold {
			out = append(out, prefetch.Request{Addr: mem.AddrOf(target)})
			p.remember(target, ev.PC, sig, pe.delta)
		}
		sig = sigNext(sig, pe.delta)
	}
	return out
}

// remember records an issued prefetch; stale slots train the filter down.
func (p *Prefetcher) remember(line mem.Line, pc mem.PC, sig uint16, delta int64) {
	r := &p.issued[p.issuedN]
	if r.valid {
		// Evicted unconfirmed: the prefetch was (probably) useless.
		p.filter.train(r.pc, r.sig, r.delta, false)
	}
	*r = issuedRecord{line: line, pc: pc, sig: sig, delta: delta, valid: true}
	p.issuedN = (p.issuedN + 1) % len(p.issued)
}

func (p *Prefetcher) findTracker(page mem.Line) *pageTracker {
	victim := 0
	for i := range p.trackers {
		t := &p.trackers[i]
		if t.valid && t.page == page {
			return t
		}
		if !t.valid {
			victim = i
			continue
		}
		if p.trackers[victim].valid && t.lru < p.trackers[victim].lru {
			victim = i
		}
	}
	p.trackers[victim] = pageTracker{valid: true, page: page}
	return &p.trackers[victim]
}
