// Package streamline is a from-scratch Go reproduction of "Streamlined
// On-Chip Temporal Prefetching" (Duong & Lin, HPCA 2026): the Streamline
// temporal prefetcher, its Triage/Triangel baselines, the regular
// prefetchers of the paper's evaluation, and the full trace-driven
// simulation substrate they run on.
//
// Layout:
//
//   - internal/core — the Streamline prefetcher (the paper's contribution)
//   - internal/meta — the on-chip metadata substrate: pairwise and stream
//     stores, the Table I partitioning schemes, utility partitioning
//   - internal/prefetch/... — stride, Berti, IPCP, Bingo, SPP-PPF, Triage,
//     Triangel
//   - internal/{cache,cpu,dram,sim} — the simulated system of Table II
//   - internal/workloads — synthetic SPEC/GAP-like benchmark suite
//   - internal/exp — the experiment harness (one runner per table/figure)
//   - internal/serve — the simulation-as-a-service layer behind cmd/streamd
//   - internal/metrics — counters/gauges/histograms with Prometheus text
//     exposition, shared by the daemon and the sweep runner
//   - cmd/{streamsim,experiments,tracegen,streamd} — executables
//   - examples/ — runnable scenarios built on the public pieces
//
// The benchmarks in bench_test.go regenerate a reduced version of every
// table and figure; `go run ./cmd/experiments -run all` produces the full
// set, and `-scale paper` uses the Table II hierarchy with full synthetic
// footprints. DESIGN.md maps every experiment to the modules that implement
// it; EXPERIMENTS.md records paper-reported versus measured results.
package streamline
