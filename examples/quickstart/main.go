// Quickstart: build a simulated system with the Streamline temporal
// prefetcher, run a pointer-chasing workload through it, and print the
// speedup over the same system without Streamline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"streamline/internal/core"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/stride"
	"streamline/internal/sim"
	"streamline/internal/workloads"
)

func main() {
	// A scaled-down system (256KB LLC) so the demo runs in seconds; use
	// sim.DefaultConfig(1) unmodified for the Table II hierarchy.
	cfg := sim.DefaultConfig(1)
	cfg.L2.Sets = 128  // 64KB L2
	cfg.LLC.Sets = 256 // 256KB LLC
	cfg.WarmupInstructions = 400_000
	cfg.MeasureInstructions = 1_200_000
	cfg.L1DPrefetcher = func() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) }

	// The workload: a pointer chase whose node-visit order repeats every
	// lap — the irregular-but-repetitive pattern temporal prefetching
	// exists for. Stride prefetchers can do nothing with it.
	workload, err := workloads.Get("sphinx06")
	if err != nil {
		panic(err)
	}
	scale := workloads.Scale{Footprint: 0.1}

	// Baseline: L1 stride prefetcher only.
	base := sim.New(cfg).RunTrace(workload.NewTrace(scale, 42))

	// Same system + Streamline: metadata lives in a partition of the LLC.
	cfgS := cfg
	cfgS.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
		o := core.DefaultOptions()
		o.MetaBytes = 128 << 10 // scale the 1MB budget with the 256KB LLC
		o.MinSets = 16
		return core.New(o, b)
	}
	with := sim.New(cfgS).RunTrace(workload.NewTrace(scale, 42))

	fmt.Println("Streamline quickstart — repeating pointer chase (sphinx-like)")
	fmt.Printf("  baseline IPC:    %.4f   (L2 misses: %d)\n",
		base.IPC(), base.Cores[0].L2.DemandMisses)
	fmt.Printf("  +Streamline IPC: %.4f   (L2 misses: %d)\n",
		with.IPC(), with.Cores[0].L2.DemandMisses)
	fmt.Printf("  speedup: %.2fx\n", with.IPC()/base.IPC())

	m := with.Cores[0].Meta
	fmt.Printf("\n  metadata: %d lookups (%.0f%% trigger hits), %d block reads, %d block writes\n",
		m.Lookups, m.TriggerHitRate()*100, m.Reads, m.Writes)
	fmt.Printf("  prefetches: %d filled into L2, %d useful (%.0f%% accuracy)\n",
		with.Cores[0].L2.PrefetchFills, with.Cores[0].L2.UsefulPrefetches,
		with.Cores[0].PrefetchAccuracy()*100)
}
