package telemetry

import (
	"fmt"
	"io"
)

// writeTimeline renders interval records as an aligned ASCII table — the
// quick way to see phase behavior (warmup transients, accuracy epochs,
// partition resizes showing up as MPKI/IPC steps) without leaving the
// terminal. Records are printed in emission order, which interleaves cores
// by simulated time.
func writeTimeline(w io.Writer, interval uint64, recs []IntervalRecord) {
	if len(recs) == 0 {
		fmt.Fprintf(w, "timeline: no interval records (is -sample-interval set?)\n")
		return
	}
	fmt.Fprintf(w, "timeline: %d records, %d instructions/interval\n", len(recs), interval)
	header := fmt.Sprintf("%-4s %-4s %12s %8s %9s %9s %7s %7s %9s",
		"core", "seq", "instr(cum)", "ipc", "l1d-mpki", "l2-mpki", "pf-acc", "pf-cov", "dram-B/cy")
	fmt.Fprintln(w, header)
	for _, r := range recs {
		fmt.Fprintf(w, "%-4d %-4d %12d %8.4f %9.2f %9.2f %6.1f%% %6.1f%% %9.3f\n",
			r.Core, r.Seq, r.Instructions, r.IPC, r.L1DMPKI, r.L2MPKI,
			r.PFAccuracy*100, r.PFCoverage*100, r.DRAM.BytesPerCycle)
	}
}
