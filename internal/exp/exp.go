// Package exp is the experiment harness: one runner per table and figure of
// the paper's evaluation (see DESIGN.md's experiment index). Each runner
// assembles the system configurations, drives the synthetic workloads, and
// prints the same rows/series the paper reports, so `cmd/experiments -run
// fig9` regenerates Figure 9's data.
//
// Two scales are provided: Small (scaled-down caches and footprints; runs in
// seconds per arm, used by the benchmark harness) and Paper (the Table II
// hierarchy with full footprints).
package exp

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"streamline/internal/core"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/berti"
	"streamline/internal/prefetch/bingo"
	"streamline/internal/prefetch/ipcp"
	"streamline/internal/prefetch/spp"
	"streamline/internal/prefetch/stride"
	"streamline/internal/prefetch/triangel"
	"streamline/internal/sim"
	"streamline/internal/workloads"
)

// Scale fixes the experiment sizing so cache capacity and workload
// footprints stay proportioned the way Table II and the SPEC/GAP footprints
// are.
type Scale struct {
	Name      string
	Footprint float64
	L2Sets    int
	LLCSets   int
	// MetaBytes is the per-core maximum metadata partition (half the LLC).
	MetaBytes int
	// MinSets is Streamline's permanent metadata set floor.
	MinSets int
	Warmup  uint64
	Measure uint64
	// Workloads restricts the suite (nil: every registered workload).
	Workloads []string
	// MixCount is the number of multi-programmed mixes per core count.
	MixCount int
	// Bandwidth scales DRAM channel bandwidth. The small scale shrinks
	// the caches 8x under a full-size core, which multiplies the miss
	// rate; bandwidth must scale with it or every workload degenerates
	// to bandwidth-bound and prefetching cannot help.
	Bandwidth float64
	// Seed makes every run reproducible.
	Seed int64
}

// Small is the scaled-down sizing used by tests and benches: an 8x smaller
// hierarchy with 10x smaller footprints, preserving the capacity ratios that
// drive the paper's results.
var Small = Scale{
	Name:      "small",
	Footprint: 0.1,
	L2Sets:    128, // 64KB
	LLCSets:   256, // 256KB/core
	MetaBytes: 128 << 10,
	MinSets:   16,
	Warmup:    400_000,
	Measure:   1_200_000,
	Workloads: []string{
		"sphinx06", "mcf06", "omnetpp06", "soplex06", "libquantum06", "bzip206",
		"mcf17", "xz17", "lbm17", "gcc17",
		"pr", "cc", "bfs", "sssp",
	},
	MixCount:  6,
	Bandwidth: 4.0,
	Seed:      12345,
}

// Paper is the Table II sizing with full synthetic footprints.
var Paper = Scale{
	Name:      "paper",
	Footprint: 1.0,
	L2Sets:    1024, // 512KB
	LLCSets:   2048, // 2MB/core
	MetaBytes: 1 << 20,
	MinSets:   64,
	Warmup:    4_000_000,
	Measure:   12_000_000,
	MixCount:  12,
	Seed:      12345,
}

// workloadList resolves the scale's workload subset.
func (sc Scale) workloadList() []workloads.Workload {
	if sc.Workloads == nil {
		return workloads.All()
	}
	out := make([]workloads.Workload, 0, len(sc.Workloads))
	for _, n := range sc.Workloads {
		w, err := workloads.Get(n)
		if err != nil {
			panic(err)
		}
		out = append(out, w)
	}
	return out
}

func (sc Scale) irregular() []workloads.Workload {
	var out []workloads.Workload
	for _, w := range sc.workloadList() {
		if w.Irregular {
			out = append(out, w)
		}
	}
	return out
}

// baseConfig builds the system config for this scale.
func (sc Scale) baseConfig(cores int) sim.Config {
	cfg := sim.DefaultConfig(cores)
	cfg.L2.Sets = sc.L2Sets
	cfg.LLC.Sets = sc.LLCSets
	cfg.WarmupInstructions = sc.Warmup
	cfg.MeasureInstructions = sc.Measure
	if sc.Bandwidth > 1 {
		// Scale channel count, not burst time: the small hierarchy needs
		// proportional bank-level parallelism too, or random-access
		// workloads stay bank-throughput-bound no matter the bus speed.
		cfg.DRAM.Channels *= int(sc.Bandwidth)
	}
	return cfg
}

// ---- arms ------------------------------------------------------------

// Arm is one system configuration under test. Name must uniquely identify
// the configuration: results are memoized by (arm, workload(s), cores).
type Arm struct {
	Name  string
	Apply func(cfg *sim.Config, sc Scale)
}

func l1Factory(kind string) sim.PrefetcherFactory {
	switch kind {
	case "stride":
		return func() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) }
	case "berti":
		return func() prefetch.Prefetcher { return berti.New(berti.DefaultConfig) }
	default:
		return nil
	}
}

func l2Factory(kind string) sim.PrefetcherFactory {
	switch kind {
	case "ipcp":
		return func() prefetch.Prefetcher { return ipcp.New(ipcp.DefaultConfig) }
	case "bingo":
		return func() prefetch.Prefetcher { return bingo.New(bingo.DefaultConfig) }
	case "spp":
		return func() prefetch.Prefetcher { return spp.New(spp.DefaultConfig) }
	default:
		return nil
	}
}

// baseArm is the no-temporal baseline with the given L1/L2 prefetchers.
func baseArm(l1, l2 string) Arm {
	name := "base"
	if l1 != "" {
		name += "+" + l1
	}
	if l2 != "" {
		name += "+" + l2
	}
	return Arm{Name: name, Apply: func(cfg *sim.Config, sc Scale) {
		cfg.L1DPrefetcher = l1Factory(l1)
		cfg.L2Prefetcher = l2Factory(l2)
	}}
}

// triangelArm builds a Triangel arm; mod may adjust the configuration and
// must be reflected in name.
func triangelArm(name, l1, l2 string, mod func(*triangel.Config)) Arm {
	return Arm{Name: name, Apply: func(cfg *sim.Config, sc Scale) {
		cfg.L1DPrefetcher = l1Factory(l1)
		cfg.L2Prefetcher = l2Factory(l2)
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			c := triangel.DefaultConfig()
			c.MetaBytes = sc.MetaBytes
			if mod != nil {
				mod(&c)
			}
			return triangel.New(c, b)
		}
	}}
}

// streamlineArm builds a Streamline arm; mod may adjust the options and must
// be reflected in name.
func streamlineArm(name, l1, l2 string, mod func(*core.Options)) Arm {
	return Arm{Name: name, Apply: func(cfg *sim.Config, sc Scale) {
		cfg.L1DPrefetcher = l1Factory(l1)
		cfg.L2Prefetcher = l2Factory(l2)
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			o := core.DefaultOptions()
			o.MetaBytes = sc.MetaBytes
			o.MinSets = sc.MinSets
			if mod != nil {
				mod(&o)
			}
			return core.New(o, b)
		}
	}}
}

// ---- runner ------------------------------------------------------------

// Runner executes arms with memoization so shared baselines are simulated
// once per harness invocation.
type Runner struct {
	Scale    Scale
	Progress io.Writer
	memo     map[string]sim.Result
}

// NewRunner returns a runner at the given scale.
func NewRunner(sc Scale) *Runner {
	return &Runner{Scale: sc, memo: make(map[string]sim.Result)}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, format, args...)
	}
}

// Run executes one arm on a single workload (1 core).
func (r *Runner) Run(arm Arm, workload string) sim.Result {
	return r.RunMix(arm, []string{workload}, 1, 0)
}

// RunMix executes one arm on a multi-programmed mix. bwFactor scales DRAM
// bandwidth when nonzero (Figure 10c).
func (r *Runner) RunMix(arm Arm, mix []string, cores int, bwFactor float64) sim.Result {
	key := fmt.Sprintf("%s|%s|%d|%.3f", arm.Name, strings.Join(mix, ","), cores, bwFactor)
	if res, ok := r.memo[key]; ok {
		return res
	}
	cfg := r.Scale.baseConfig(cores)
	if bwFactor > 0 {
		cfg.DRAM = cfg.DRAM.ScaleBandwidth(bwFactor)
	}
	arm.Apply(&cfg, r.Scale)
	sys := sim.New(cfg)
	for c := 0; c < cores; c++ {
		w, err := workloads.Get(mix[c%len(mix)])
		if err != nil {
			panic(err)
		}
		sys.SetTrace(c, w.NewTrace(workloads.Scale{Footprint: r.Scale.Footprint},
			r.Scale.Seed+int64(c)))
	}
	r.logf("  [%s] %s x%d\n", arm.Name, strings.Join(mix, ","), cores)
	res := sys.Run()
	r.memo[key] = res
	return res
}

// ---- metrics -------------------------------------------------------------

// Speedup returns pf's IPC over base's (single-core).
func Speedup(base, pf sim.Result) float64 {
	if base.IPC() == 0 {
		return 0
	}
	return pf.IPC() / base.IPC()
}

// ThroughputSpeedup returns the ratio of summed IPCs (multi-core).
func ThroughputSpeedup(base, pf sim.Result) float64 {
	var b, p float64
	for i := range base.Cores {
		b += base.Cores[i].IPC
		p += pf.Cores[i].IPC
	}
	if b == 0 {
		return 0
	}
	return p / b
}

// Coverage returns the fraction of the baseline's L2 demand misses that the
// prefetching configuration removed.
func Coverage(base, pf sim.Result) float64 {
	bm := base.Cores[0].L2.DemandMisses
	pm := pf.Cores[0].L2.DemandMisses
	if bm == 0 || pm >= bm {
		return 0
	}
	return float64(bm-pm) / float64(bm)
}

// Accuracy returns useful prefetches over prefetch fills at the L2.
func Accuracy(res sim.Result) float64 { return res.Cores[0].PrefetchAccuracy() }

// Geomean returns the geometric mean of xs (zero entries are floored).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-6
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ---- tables ---------------------------------------------------------------

// Table is a formatted experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of pre-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// F formats a float for table cells.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ---- registry ---------------------------------------------------------------

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) []Table
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
