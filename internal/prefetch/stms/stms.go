// Package stms implements an STMS-style off-chip temporal prefetcher
// (Wenisch et al., HPCA 2009), the design generation the paper's on-chip
// prefetchers replaced. Its metadata — a global history buffer (GHB) of the
// miss stream plus an index table mapping addresses to their latest GHB
// position — lives in DRAM. Writes are amortized through a coalescing
// buffer and probabilistic sampling; reads fetch long stream chunks to
// amortize their latency. The cost the paper's Section II-A1 highlights is
// exactly what this model charges: every metadata access is DRAM traffic
// with DRAM latency, competing with demand bandwidth.
package stms

import (
	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

// DRAM is the slice of the memory system the prefetcher's metadata engine
// uses; *dram.DRAM satisfies it.
type DRAM interface {
	// Access reads one line at cycle now, returning its latency.
	Access(now uint64, l mem.Line, write bool) uint64
	// Write enqueues a writeback (bandwidth only, no waiter).
	Write(now uint64, l mem.Line)
}

// Config parameterizes STMS.
type Config struct {
	// GHBEntries is the history buffer capacity (off-chip; large).
	GHBEntries int
	// IndexCacheEntries is the small on-chip cache of index-table rows.
	IndexCacheEntries int
	// StreamChunk is how many history entries one metadata read returns
	// (read amortization: a chunk is contiguous in DRAM).
	StreamChunk int
	// MaxDegree bounds prefetches per trigger.
	MaxDegree int
	// SamplePeriod writes only one in N history appends to DRAM
	// (probabilistic write amortization).
	SamplePeriod int
	// MetadataBase is the line address region where metadata lives.
	MetadataBase mem.Line
}

// DefaultConfig mirrors the published design's intent.
func DefaultConfig() Config {
	return Config{
		GHBEntries:        1 << 20,
		IndexCacheEntries: 1024,
		StreamChunk:       16,
		MaxDegree:         4,
		SamplePeriod:      2,
		MetadataBase:      1 << 40,
	}
}

// Stats counts the prefetcher's off-chip metadata activity.
type Stats struct {
	// IndexReads/IndexWrites and GHBReads/GHBWrites are DRAM accesses
	// (64B lines) for each structure.
	IndexReads  uint64
	IndexWrites uint64
	GHBReads    uint64
	GHBWrites   uint64
	// IndexCacheHits avoided an off-chip index read.
	IndexCacheHits uint64
	// StreamsFollowed counts successful stream fetches.
	StreamsFollowed uint64
}

// OffchipTraffic returns total metadata DRAM accesses.
func (s Stats) OffchipTraffic() uint64 {
	return s.IndexReads + s.IndexWrites + s.GHBReads + s.GHBWrites
}

type indexCacheEntry struct {
	valid bool
	tag   mem.Line
	pos   int
	lru   uint64
}

// Prefetcher is the STMS-style off-chip temporal prefetcher.
type Prefetcher struct {
	cfg  Config
	dram DRAM

	// The functional metadata (what DRAM "contains").
	ghb   []mem.Line
	head  int
	index map[mem.Line]int // address -> latest GHB position

	icache []indexCacheEntry
	clock  uint64
	events uint64

	// Per-PC issued rings for timeliness, as in the on-chip models.
	issued    [64]mem.Line
	issuedIdx int

	Stats Stats
}

// New constructs the prefetcher over the given DRAM.
func New(cfg Config, d DRAM) *Prefetcher {
	if cfg.GHBEntries <= 0 {
		cfg = DefaultConfig()
	}
	return &Prefetcher{
		cfg:    cfg,
		dram:   d,
		ghb:    make([]mem.Line, cfg.GHBEntries),
		index:  make(map[mem.Line]int),
		icache: make([]indexCacheEntry, cfg.IndexCacheEntries),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "stms" }

// metaLine maps a metadata structure offset to a DRAM line for traffic
// accounting (index rows and GHB chunks are line-sized).
func (p *Prefetcher) metaLine(offset int) mem.Line {
	return p.cfg.MetadataBase + mem.Line(offset)
}

// icacheLookup checks the on-chip index cache.
func (p *Prefetcher) icacheLookup(l mem.Line) (int, bool) {
	slot := int(mem.HashLine64(l) % uint64(len(p.icache)))
	e := &p.icache[slot]
	if e.valid && e.tag == l {
		p.clock++
		e.lru = p.clock
		return e.pos, true
	}
	return 0, false
}

func (p *Prefetcher) icacheFill(l mem.Line, pos int) {
	slot := int(mem.HashLine64(l) % uint64(len(p.icache)))
	p.clock++
	p.icache[slot] = indexCacheEntry{valid: true, tag: l, pos: pos, lru: p.clock}
}

func (p *Prefetcher) wasIssued(l mem.Line) bool {
	for _, x := range p.issued {
		if x == l {
			return true
		}
	}
	return false
}

func (p *Prefetcher) markIssued(l mem.Line) {
	p.issued[p.issuedIdx] = l
	p.issuedIdx = (p.issuedIdx + 1) % len(p.issued)
}

// Train implements prefetch.Prefetcher: append the miss to the GHB, look up
// the address's previous occurrence, and prefetch the stream that followed
// it. All metadata movement is charged to DRAM.
func (p *Prefetcher) Train(ev prefetch.Event, out []prefetch.Request) []prefetch.Request {
	line := ev.Line()
	p.events++

	// ---- record: append to the GHB and update the index.
	p.ghb[p.head] = line
	prevPos, hadPrev := p.index[line]
	p.index[line] = p.head
	myPos := p.head
	p.head = (p.head + 1) % len(p.ghb)
	// Write amortization: appends coalesce; only sampled appends (and
	// their index update) pay a DRAM write.
	if p.events%uint64(p.cfg.SamplePeriod) == 0 {
		p.dram.Write(ev.Now, p.metaLine(myPos/8)) // 8 GHB entries per line
		p.Stats.GHBWrites++
		p.dram.Write(ev.Now, p.metaLine(1<<20+int(mem.HashLine64(line)%(1<<19))))
		p.Stats.IndexWrites++
	}
	p.icacheFill(line, myPos)

	if !hadPrev {
		return out
	}

	// ---- prefetch: find the previous occurrence and fetch its stream.
	var delay uint64
	if _, hit := p.icacheLookup(line); hit {
		p.Stats.IndexCacheHits++
	} else {
		// Off-chip index read.
		delay += p.dram.Access(ev.Now, p.metaLine(1<<20+int(mem.HashLine64(line)%(1<<19))), false)
		p.Stats.IndexReads++
	}

	// Stream fetch: StreamChunk entries = chunk/8 line reads from the GHB.
	chunkLines := (p.cfg.StreamChunk + 7) / 8
	for i := 0; i < chunkLines; i++ {
		delay += p.dram.Access(ev.Now+delay, p.metaLine(prevPos/8+i), false)
		p.Stats.GHBReads++
	}
	p.Stats.StreamsFollowed++

	issued := 0
	for i := 1; i <= p.cfg.StreamChunk && issued < p.cfg.MaxDegree; i++ {
		pos := (prevPos + i) % len(p.ghb)
		if pos == p.head {
			break // reached the present
		}
		t := p.ghb[pos]
		if t == 0 || t == line || p.wasIssued(t) {
			continue
		}
		out = append(out, prefetch.Request{Addr: mem.AddrOf(t), Delay: delay})
		p.markIssued(t)
		issued++
	}
	return out
}
