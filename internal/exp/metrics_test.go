package exp

import (
	"testing"

	"streamline/internal/exp/store"
	"streamline/internal/metrics"
)

// TestSweepMetricsAccounting wires EnableMetrics through the three sweep
// paths that feed the runner_job_* instruments: a computed simulation, a
// replay from a checkpoint store, and a pool job degraded to a gap.
func TestSweepMetricsAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a micro-scale simulation")
	}
	sc := Micro
	arm := baseArm("stride", "")
	wl := sc.Workloads[0]

	dir := t.TempDir()
	st, err := store.Create(dir, resumeManifest(sc))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(sc)
	r.Store = st
	m := r.EnableMetrics(metrics.NewRegistry())
	if _, ok := r.TryRun(arm, wl); !ok {
		t.Fatal("simulation failed")
	}
	if m.Completed.Value() != 1 || m.Attempts.Count() != 1 {
		t.Errorf("completed=%d attempts=%d, want 1/1", m.Completed.Value(), m.Attempts.Count())
	}
	if m.Replayed.Value() != 0 || m.Gapped.Value() != 0 {
		t.Errorf("replayed=%d gapped=%d, want 0/0", m.Replayed.Value(), m.Gapped.Value())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh runner over the reopened store answers the same job from the
	// checkpoint: replayed counts, completed does not.
	st2, err := store.Open(dir, resumeManifest(sc))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2 := NewRunner(sc)
	r2.Store = st2
	m2 := r2.EnableMetrics(metrics.NewRegistry())
	if _, ok := r2.TryRun(arm, wl); !ok {
		t.Fatal("replayed simulation failed")
	}
	if m2.Replayed.Value() != 1 || m2.Completed.Value() != 0 {
		t.Errorf("replayed=%d completed=%d, want 1/0", m2.Replayed.Value(), m2.Completed.Value())
	}

	// An injected pool-job panic degrades to a gap and is counted once.
	r3 := NewRunner(sc)
	r3.FailKey = "doomed"
	m3 := r3.EnableMetrics(metrics.NewRegistry())
	res := ParallelMap(r3, []int{1, 2},
		func(i int) string {
			if i == 1 {
				return "doomed-job"
			}
			return "fine-job"
		},
		func(i int) int { return i * 2 })
	if m3.Gapped.Value() != 1 {
		t.Errorf("gapped = %d, want 1", m3.Gapped.Value())
	}
	if res[1] != 4 {
		t.Errorf("unaffected job returned %d, want 4", res[1])
	}
	if !r3.Gapped("doomed-job") {
		t.Error("failure log does not report the gapped key")
	}

	// Derived runners inherit the wiring: the fault policy hook is copied and
	// the shared failure log keeps counting on the same instruments.
	d := r3.Derived(sc)
	if d.Fault.Metrics != m3 {
		t.Error("derived runner lost the metrics hook")
	}
	ParallelMap(d, []int{3}, func(int) string { return "doomed-too" }, func(i int) int { return i })
	if m3.Gapped.Value() != 2 {
		t.Errorf("gapped after derived failure = %d, want 2", m3.Gapped.Value())
	}
}
