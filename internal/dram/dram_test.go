package dram

import (
	"testing"

	"streamline/internal/mem"
)

func TestConfigFor(t *testing.T) {
	tests := []struct {
		cores, channels, ranks int
	}{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 2},
	}
	for _, tt := range tests {
		cfg := ConfigFor(tt.cores)
		if cfg.Channels != tt.channels || cfg.RanksPerChannel != tt.ranks {
			t.Errorf("ConfigFor(%d) = %d ch / %d ranks, want %d / %d",
				tt.cores, cfg.Channels, cfg.RanksPerChannel, tt.channels, tt.ranks)
		}
	}
}

func TestRowBufferHit(t *testing.T) {
	d := New(ConfigFor(1))
	cfg := d.Config()
	// First access to a row: closed bank -> RCD + CAS + transfer.
	lat1 := d.Access(0, 0, false)
	want1 := cfg.RCD + cfg.CAS + cfg.TransferCycles
	if lat1 != want1 {
		t.Errorf("cold access latency = %d, want %d", lat1, want1)
	}
	// Same row, much later (no queueing): row hit -> CAS + transfer.
	lat2 := d.Access(10000, 1, false)
	want2 := cfg.CAS + cfg.TransferCycles
	if lat2 != want2 {
		t.Errorf("row-hit latency = %d, want %d", lat2, want2)
	}
	if d.Stats.RowHits != 1 || d.Stats.RowMisses != 1 {
		t.Errorf("row stats: %+v", d.Stats)
	}
}

func TestRowConflict(t *testing.T) {
	d := New(ConfigFor(1))
	cfg := d.Config()
	d.Access(0, 0, false)
	// A line in the same bank but a different row: with 1 channel, 8 banks,
	// 128 lines/row, rows of the same bank are 8*128 lines apart.
	conflictLine := mem.Line(8 * 128)
	lat := d.Access(100000, conflictLine, false)
	want := cfg.RP + cfg.RCD + cfg.CAS + cfg.TransferCycles
	if lat != want {
		t.Errorf("row-conflict latency = %d, want %d", lat, want)
	}
	if d.Stats.RowConflicts != 1 {
		t.Errorf("RowConflicts = %d, want 1", d.Stats.RowConflicts)
	}
}

func TestChannelBandwidthQueueing(t *testing.T) {
	d := New(ConfigFor(1)) // one channel
	// Issue many same-cycle accesses to different banks: beyond the
	// channel's burst window they serialize at TransferCycles apart.
	n := 64
	var total uint64
	for i := 0; i < n; i++ {
		total += d.Access(0, mem.Line(i*128), false) // distinct banks/rows
	}
	if d.Stats.QueueCycles == 0 {
		t.Error("no queueing observed on a saturated channel")
	}
	// Average latency should exceed the unloaded latency.
	unloaded := d.Config().RCD + d.Config().CAS + d.Config().TransferCycles
	if total/uint64(n) <= unloaded {
		t.Errorf("avg latency %d under load <= unloaded %d", total/uint64(n), unloaded)
	}
}

func TestMoreChannelsReduceQueueing(t *testing.T) {
	run := func(cores int) uint64 {
		d := New(ConfigFor(cores))
		for i := 0; i < 512; i++ {
			// Consecutive lines interleave across channels.
			d.Access(0, mem.Line(i), false)
		}
		return d.Stats.QueueCycles
	}
	if q1, q8 := run(1), run(8); q8 >= q1 {
		t.Errorf("8-core config queueing (%d) >= 1-core (%d)", q8, q1)
	}
}

func TestScaleBandwidth(t *testing.T) {
	base := ConfigFor(1)
	half := base.ScaleBandwidth(0.5)
	if half.TransferCycles != base.TransferCycles*2 {
		t.Errorf("half bandwidth transfer = %d, want %d", half.TransferCycles, base.TransferCycles*2)
	}
	double := base.ScaleBandwidth(2)
	if double.TransferCycles >= base.TransferCycles {
		t.Errorf("double bandwidth transfer = %d, want < %d", double.TransferCycles, base.TransferCycles)
	}
	if ScaleBandwidth := base.ScaleBandwidth(0); ScaleBandwidth != base {
		t.Error("non-positive factor should be identity")
	}
	// Extreme scaling saturates at 1 cycle.
	if fast := base.ScaleBandwidth(1e9); fast.TransferCycles != 1 {
		t.Errorf("extreme scale transfer = %d, want 1", fast.TransferCycles)
	}
}

func TestReadsWritesCounted(t *testing.T) {
	d := New(ConfigFor(1))
	d.Access(0, 1, false)
	d.Access(0, 2, true)
	d.Access(0, 3, true)
	if d.Stats.Reads != 1 || d.Stats.Writes != 2 {
		t.Errorf("reads/writes = %d/%d, want 1/2", d.Stats.Reads, d.Stats.Writes)
	}
	if d.Stats.Accesses() != 3 {
		t.Errorf("Accesses = %d, want 3", d.Stats.Accesses())
	}
}

func TestRowHitRate(t *testing.T) {
	d := New(ConfigFor(1))
	for i := 0; i < 100; i++ {
		d.Access(uint64(i*1000), mem.Line(i%64), false) // same row
	}
	if r := d.Stats.RowHitRate(); r < 0.9 {
		t.Errorf("sequential row hit rate = %.2f, want >= 0.9", r)
	}
	var empty Stats
	if empty.RowHitRate() != 0 {
		t.Error("empty stats row hit rate should be 0")
	}
}

func TestRouteDeterministicAndInRange(t *testing.T) {
	d := New(ConfigFor(8))
	for i := 0; i < 10000; i++ {
		ch, bk, row := d.route(mem.Line(i * 37))
		if ch < 0 || ch >= 4 || bk < 0 || bk >= 16 || row < 0 {
			t.Fatalf("route out of range: ch=%d bk=%d row=%d", ch, bk, row)
		}
	}
}
