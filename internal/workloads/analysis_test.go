package workloads

import "testing"

func analyze(t *testing.T, name string) Analysis {
	t.Helper()
	w, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(w, Scale{Footprint: 0.05}, 1, 300_000)
}

func TestChaseArchetype(t *testing.T) {
	a := analyze(t, "sphinx06")
	if a.DependentFraction < 0.9 {
		t.Errorf("chase dependent fraction = %.2f, want >= 0.9", a.DependentFraction)
	}
	if a.PairStability < 0.9 {
		t.Errorf("stable chase pair stability = %.2f, want >= 0.9", a.PairStability)
	}
	if a.SequentialFraction > 0.1 {
		t.Errorf("chase sequential fraction = %.2f, want tiny", a.SequentialFraction)
	}
}

func TestStreamingArchetype(t *testing.T) {
	a := analyze(t, "libquantum06")
	if a.SequentialFraction < 0.9 {
		t.Errorf("streaming sequential fraction = %.2f, want >= 0.9", a.SequentialFraction)
	}
	if a.DependentFraction > 0.01 {
		t.Errorf("streaming dependent fraction = %.2f, want ~0", a.DependentFraction)
	}
	if a.StoreFraction < 0.1 {
		t.Errorf("lbm-style store fraction = %.2f, want >= 0.1", a.StoreFraction)
	}
}

func TestGatherArchetype(t *testing.T) {
	a := analyze(t, "pr")
	// The edge stream is sequential; the gathers are not: a mix.
	if a.SequentialFraction < 0.2 || a.SequentialFraction > 0.9 {
		t.Errorf("gather sequential fraction = %.2f, want mixed", a.SequentialFraction)
	}
	// Mostly-unique cold gathers keep pairwise stability moderate-high.
	if a.PairStability < 0.5 {
		t.Errorf("gather pair stability = %.2f, want >= 0.5", a.PairStability)
	}
	if a.PCs < 2 {
		t.Errorf("gather PCs = %d, want >= 2", a.PCs)
	}
}

func TestScanChurnArchetype(t *testing.T) {
	// xz churns 65% of its schedule per lap: pair stability must be well
	// below the stable chases'.
	churn := analyze(t, "xz17")
	stable := analyze(t, "gcc17")
	if churn.PairStability >= stable.PairStability {
		t.Errorf("xz stability %.2f >= gcc %.2f", churn.PairStability, stable.PairStability)
	}
}

func TestCacheResidentArchetype(t *testing.T) {
	a := analyze(t, "bzip206")
	if a.LineMultiplicity < 5 {
		t.Errorf("cache-resident multiplicity = %.1f, want high reuse", a.LineMultiplicity)
	}
	if a.PairStability > 0.5 {
		t.Errorf("random hot-set stability = %.2f, want low", a.PairStability)
	}
}

func TestAnalyzeEmptyBudget(t *testing.T) {
	w, _ := Get("pr")
	a := Analyze(w, Scale{Footprint: 0.05}, 1, 0)
	if a.Records != 0 {
		t.Errorf("zero budget analyzed %d records", a.Records)
	}
}

func TestEveryWorkloadHasSaneAnalysis(t *testing.T) {
	for _, w := range All() {
		a := Analyze(w, Scale{Footprint: 0.05}, 2, 100_000)
		if a.Records == 0 {
			t.Errorf("%s: no records analyzed", w.Name)
			continue
		}
		if a.FootprintLines < 32 {
			t.Errorf("%s: footprint only %d lines", w.Name, a.FootprintLines)
		}
		if a.Instructions < a.Records {
			t.Errorf("%s: instructions < records", w.Name)
		}
	}
}
