package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testManifest() Manifest {
	return Manifest{Version: Version, ScaleName: "micro", ScaleFP: "scale-v1|test", Seed: 7}
}

type payload struct {
	Value string `json:"value"`
	N     int    `json:"n"`
}

// TestRoundTrip: Put then Get across a reopen returns the identical payload
// bytes, and the loaded count reflects what was recovered.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("job", "arm|wl|1|0.000")
	if err := s.Put(key, "arm|wl|1|0.000", payload{Value: "hello", N: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Loaded() != 1 || s2.Quarantined() != 0 {
		t.Fatalf("loaded=%d quarantined=%d, want 1, 0", s2.Loaded(), s2.Quarantined())
	}
	raw, ok := s2.Get(key)
	if !ok {
		t.Fatal("record missing after reopen")
	}
	var got payload
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Value != "hello" || got.N != 3 {
		t.Errorf("payload = %+v", got)
	}
	if _, ok := s2.Get(Key("job", "other")); ok {
		t.Error("Get returned a record for an unknown key")
	}
}

// TestKeyCanonical: the content hash is stable, part-order-sensitive, and
// immune to concatenation ambiguity thanks to length prefixes.
func TestKeyCanonical(t *testing.T) {
	if Key("a", "b") != Key("a", "b") {
		t.Error("Key is not deterministic")
	}
	if Key("a", "b") == Key("b", "a") {
		t.Error("Key ignores part order")
	}
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("Key collides across part boundaries")
	}
	if Key("a|b") == Key("a", "b") {
		t.Error("Key collides with separator-containing parts")
	}
}

// TestOpenMissingDirectory: resuming a directory with no manifest fails fast
// and names the manifest file the caller expected to find.
func TestOpenMissingDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nope")
	_, err := Open(dir, testManifest())
	if err == nil {
		t.Fatal("Open succeeded on a missing directory")
	}
	if !strings.Contains(err.Error(), "not a resumable sweep directory") ||
		!strings.Contains(err.Error(), filepath.Join(dir, "MANIFEST.json")) {
		t.Errorf("error does not name the expected manifest: %v", err)
	}
}

// TestManifestMismatch: a directory created under one scale/seed refuses a
// resume under another, naming both sides.
func TestManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	other := testManifest()
	other.Seed = 8
	if _, err := Open(dir, other); err == nil {
		t.Error("Open accepted a mismatched seed")
	} else if !strings.Contains(err.Error(), "does not match this run") {
		t.Errorf("unhelpful mismatch error: %v", err)
	}
	other = testManifest()
	other.ScaleFP = "scale-v1|tweaked"
	if _, err := Open(dir, other); err == nil {
		t.Error("Open accepted a mismatched scale fingerprint")
	}
	// Create into an existing directory must also validate.
	if _, err := Create(dir, other); err == nil {
		t.Error("Create accepted a mismatched manifest")
	}
}

// TestTruncatedTailQuarantined: a crash mid-append leaves a truncated last
// line; open must keep every whole record, quarantine the fragment, and a
// second open must quarantine nothing (recovery is idempotent).
func TestTruncatedTailQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(Key("job", fmt.Sprint(i)), fmt.Sprint(i), payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Truncate the final record mid-line, as a crash during append would.
	rp := filepath.Join(dir, "results.jsonl")
	data, err := os.ReadFile(rp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rp, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Loaded() != 2 || s2.Quarantined() != 1 {
		t.Fatalf("loaded=%d quarantined=%d, want 2, 1", s2.Loaded(), s2.Quarantined())
	}
	if _, ok := s2.Get(Key("job", "2")); ok {
		t.Error("truncated record was replayed")
	}
	s2.Close()

	q, err := os.ReadFile(filepath.Join(dir, "quarantine.jsonl"))
	if err != nil || !bytes.Contains(q, []byte("reason")) {
		t.Errorf("quarantine file missing or empty: %v", err)
	}

	// Idempotent: the compacted file must open clean.
	s3, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Loaded() != 2 || s3.Quarantined() != 0 {
		t.Errorf("second open: loaded=%d quarantined=%d, want 2, 0 (recovery not idempotent)",
			s3.Loaded(), s3.Quarantined())
	}
}

// TestBitFlipQuarantined: a single flipped payload byte fails the checksum
// and the record is quarantined, never returned.
func TestBitFlipQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("job", "x")
	if err := s.Put(key, "x", payload{Value: "pristine"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	rp := filepath.Join(dir, "results.jsonl")
	data, err := os.ReadFile(rp)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte("pristine"))
	if i < 0 {
		t.Fatal("payload not found in file")
	}
	data[i] ^= 0x01 // "pristine" -> "qristine": valid JSON, wrong hash
	if err := os.WriteFile(rp, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Loaded() != 0 || s2.Quarantined() != 1 {
		t.Fatalf("loaded=%d quarantined=%d, want 0, 1", s2.Loaded(), s2.Quarantined())
	}
	if _, ok := s2.Get(key); ok {
		t.Error("bit-flipped record was replayed")
	}
}

// TestDuplicateRecords: an identical duplicate keeps the first copy (and
// quarantines the extra line); conflicting duplicates distrust BOTH copies.
func TestDuplicateRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	kSame, kConf := Key("same"), Key("conflict")
	if err := s.Put(kSame, "same", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(kConf, "conflict", payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Append an identical copy of the first record and a conflicting copy
	// of the second, as overlapping writers or a replayed journal might.
	rp := filepath.Join(dir, "results.jsonl")
	data, err := os.ReadFile(rp)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	confRaw, _ := json.Marshal(payload{N: 99})
	conflict := Record{Key: kConf, ID: "conflict", Sum: payloadSum(confRaw), Payload: confRaw}
	extra := append(append([]byte{}, lines[0]...), append(mustMarshal(conflict), '\n')...)
	f, err := os.OpenFile(rp, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(extra); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(kSame); !ok {
		t.Error("identical duplicate evicted the original")
	}
	if _, ok := s2.Get(kConf); ok {
		t.Error("conflicting duplicate survived: neither copy can be trusted")
	}
	if s2.Quarantined() != 3 { // identical dup + both conflicting copies
		t.Errorf("quarantined = %d, want 3", s2.Quarantined())
	}
}

// TestPutConflict: re-putting an identical payload is a no-op; a different
// payload under the same key is an error (the run would be nondeterministic).
func TestPutConflict(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := Key("job")
	if err := s.Put(key, "job", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, "job", payload{N: 1}); err != nil {
		t.Errorf("identical re-put errored: %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after idempotent re-put, want 1", s.Len())
	}
	if err := s.Put(key, "job", payload{N: 2}); err == nil {
		t.Error("conflicting re-put succeeded")
	}
}

// TestConcurrentPut: many goroutines appending distinct keys must not race
// or corrupt the file (run under -race by the suite).
func TestConcurrentPut(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(Key("job", fmt.Sprint(i)), fmt.Sprint(i), payload{N: i}); err != nil {
				t.Errorf("Put %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	s.Close()

	s2, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Loaded() != n || s2.Quarantined() != 0 {
		t.Fatalf("after reopen: loaded=%d quarantined=%d, want %d, 0",
			s2.Loaded(), s2.Quarantined(), n)
	}
	for i := 0; i < n; i++ {
		raw, ok := s2.Get(Key("job", fmt.Sprint(i)))
		if !ok {
			t.Fatalf("record %d missing", i)
		}
		var p payload
		if err := json.Unmarshal(raw, &p); err != nil || p.N != i {
			t.Fatalf("record %d corrupt: %v %+v", i, err, p)
		}
	}
}

// TestWriteFileAtomic: the write replaces the destination wholly, and a
// failing writer leaves the previous content untouched with no temp litter.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomic(p, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(p, func(w io.Writer) error {
		_, err := io.WriteString(w, "second")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil || string(got) != "second" {
		t.Fatalf("content = %q, %v; want 'second'", got, err)
	}

	boom := fmt.Errorf("writer failed")
	if err := WriteFileAtomic(p, func(io.Writer) error { return boom }); err != boom {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	got, _ = os.ReadFile(p)
	if string(got) != "second" {
		t.Errorf("failed write clobbered the destination: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp files left behind: %v", ents)
	}
}

// TestPutRawVerbatimReplay: PutRaw stores the caller's exact bytes; Get and
// a full close/reopen cycle replay them byte-identically (the daemon's
// cached-response contract), while non-canonical payloads are rejected
// before they could quarantine themselves on the next open.
func TestPutRawVerbatimReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(map[string]any{"ipc": 0.05, "name": "sphinx06"})
	key := Key("raw", "one")
	if err := s.PutRaw(key, "raw|one", raw); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, raw) {
		t.Fatalf("Get = %q, %v; want the exact PutRaw bytes %q", got, ok, raw)
	}

	for name, bad := range map[string]string{
		"whitespace":    `{"a": 1}`,
		"trailing":      `{"a":1} `,
		"not-json":      `{"a":`,
		"empty":         ``,
		"html-unescape": `"<script>"`,
	} {
		if err := s.PutRaw(Key("raw", name), name, json.RawMessage(bad)); err == nil {
			t.Errorf("PutRaw accepted non-canonical payload %s (%q)", name, bad)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Quarantined() != 0 {
		t.Errorf("reopen quarantined %d records after PutRaw", s2.Quarantined())
	}
	got, ok = s2.Get(key)
	if !ok || !bytes.Equal(got, raw) {
		t.Fatalf("reopened Get = %q, %v; want verbatim replay of %q", got, ok, raw)
	}
}
