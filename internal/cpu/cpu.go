// Package cpu provides the cycle-approximate out-of-order core timing model.
// It is not a microarchitectural simulator; it reproduces the two effects
// that turn cache misses into stalls: a finite reorder buffer bounds how far
// execution runs ahead of an outstanding miss (bounding memory-level
// parallelism), and issue width bounds throughput when memory is fast.
// Dependent loads (pointer chases) additionally serialize on the previous
// memory operation's completion — the behavior that makes temporal
// prefetching valuable.
package cpu

import "streamline/internal/audit"

// Config describes the core, per Table II (6-wide, 352-entry ROB).
type Config struct {
	Width int
	ROB   int
}

// DefaultConfig is the Ice-Lake-like core of Table II.
var DefaultConfig = Config{Width: 6, ROB: 352}

// robEntry records one in-flight memory operation.
type robEntry struct {
	done     uint64 // completion cycle
	instrIdx uint64 // cumulative instruction index at dispatch
}

// Core tracks one hardware context's timing state.
type Core struct {
	cfg Config

	// fetchFP is the fetch-cycle clock in 1/256-cycle fixed point, so a
	// 6-wide core advances 256/6 per instruction without float drift.
	fetchFP uint64
	stall   uint64 // extra cycles accumulated from ROB-full stalls

	rob   []robEntry
	head  int
	count int

	instrs      uint64
	lastMemDone uint64 // completion of the most recent load (dependences)
	maxDone     uint64

	// lastIssue is the issue cycle handed out by the most recent BeginMem,
	// kept so the audit hook in EndMem can reject completions that precede
	// their own issue (a retired-before-issued operation).
	lastIssue uint64
	aud       *audit.Auditor
}

// SetAuditor attaches an invariant auditor (nil disables the hooks).
func (c *Core) SetAuditor(a *audit.Auditor) { c.aud = a }

// New returns a core with the given configuration.
func New(cfg Config) *Core {
	if cfg.Width <= 0 {
		cfg.Width = DefaultConfig.Width
	}
	if cfg.ROB <= 0 {
		cfg.ROB = DefaultConfig.ROB
	}
	return &Core{cfg: cfg, rob: make([]robEntry, cfg.ROB/4+1)}
}

// Now returns the core's current front-end cycle.
func (c *Core) Now() uint64 { return c.fetchFP/256 + c.stall }

// Instructions returns the number of instructions executed so far.
func (c *Core) Instructions() uint64 { return c.instrs }

// Advance fetches n instructions, advancing the front-end clock at the
// configured width.
func (c *Core) Advance(n uint64) {
	c.instrs += n
	c.fetchFP += n * 256 / uint64(c.cfg.Width)
}

// BeginMem dispatches a memory operation and returns the cycle at which it
// may issue, accounting for ROB-full stalls and (for dependent operations)
// the completion of the previous memory op.
func (c *Core) BeginMem(dependsOnPrev bool) uint64 {
	// Retire completed entries; stall if the ROB window is exhausted.
	for c.count > 0 {
		e := c.rob[c.head]
		if c.instrs-e.instrIdx < uint64(c.cfg.ROB) && c.count < len(c.rob) {
			break
		}
		// The head must retire before this op can dispatch: time jumps to
		// its completion if the front end got there first.
		if now := c.Now(); e.done > now {
			c.stall += e.done - now
		}
		c.head = (c.head + 1) % len(c.rob)
		c.count--
	}
	t := c.Now()
	if dependsOnPrev && c.lastMemDone > t {
		t = c.lastMemDone
	}
	c.lastIssue = t
	return t
}

// EndMem records the completion of the memory operation begun at BeginMem.
// isLoad marks operations later instructions may depend on.
func (c *Core) EndMem(done uint64, isLoad bool) {
	if c.aud != nil {
		c.auditEndMem(c.aud, done)
	}
	tail := (c.head + c.count) % len(c.rob)
	c.rob[tail] = robEntry{done: done, instrIdx: c.instrs}
	if c.count < len(c.rob) {
		c.count++
	} else {
		c.head = (c.head + 1) % len(c.rob)
	}
	if isLoad {
		c.lastMemDone = done
	}
	if done > c.maxDone {
		c.maxDone = done
	}
}

// Finish drains the pipeline and returns the total cycle count.
func (c *Core) Finish() uint64 {
	n := c.Now()
	if c.maxDone > n {
		return c.maxDone
	}
	return n
}

// IPC returns instructions per cycle over the whole run so far.
func (c *Core) IPC() float64 {
	cy := c.Finish()
	if cy == 0 {
		return 0
	}
	return float64(c.instrs) / float64(cy)
}
