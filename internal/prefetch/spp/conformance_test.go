package spp_test

import (
	"testing"

	"streamline/internal/prefetch"
	"streamline/internal/prefetch/ptest"
	"streamline/internal/prefetch/spp"
)

func TestConformance(t *testing.T) {
	cfgs := map[string]spp.Config{
		"default": spp.DefaultConfig,
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			ptest.Exercise(t, func() prefetch.Prefetcher { return spp.New(cfg) })
		})
	}
}
