package serve

import (
	"encoding/hex"
	"strings"
	"testing"
)

// TestNormalizeDefaults: the minimal request fills every documented default.
func TestNormalizeDefaults(t *testing.T) {
	sp := Spec{Workload: "sphinx06"}
	if err := sp.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	want := Spec{
		Workload: "sphinx06", L1: DefaultL1, L2: DefaultL2, Temporal: DefaultTemporal,
		Cores: DefaultCores, Footprint: DefaultFootprint,
		Warmup: DefaultWarmup, Measure: DefaultMeasure,
		MetaKB: DefaultMetaKB, LLCSets: DefaultLLCSets, Seed: DefaultSeed,
	}
	if sp != want {
		t.Errorf("defaults:\n got %+v\nwant %+v", sp, want)
	}
}

// TestNormalizeValidation: every knob rejects out-of-range values with an
// error naming the knob and (for enums) the allowed values.
func TestNormalizeValidation(t *testing.T) {
	valid := func() Spec {
		return Spec{Workload: "sphinx06", Footprint: 0.02, Warmup: 1000,
			Measure: 4000, LLCSets: 16, MetaKB: 8}
	}
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"missing workload", func(s *Spec) { s.Workload = "" }, "missing workload"},
		{"unknown workload", func(s *Spec) { s.Workload = "nope" }, `unknown workload "nope"`},
		{"unknown l1", func(s *Spec) { s.L1 = "ghb" }, "none, stride or berti"},
		{"unknown l2", func(s *Spec) { s.L2 = "ghb" }, "none, ipcp, bingo or spp"},
		{"unknown temporal", func(s *Spec) { s.Temporal = "markov" }, "streamline-bypass or stms"},
		{"negative cores", func(s *Spec) { s.Cores = -1 }, "cores must be between 1 and 16"},
		{"too many cores", func(s *Spec) { s.Cores = MaxCores + 1 }, "cores must be between"},
		{"negative footprint", func(s *Spec) { s.Footprint = -0.5 }, "footprint must be in (0, 1]"},
		{"footprint over one", func(s *Spec) { s.Footprint = 1.5 }, "footprint must be in (0, 1]"},
		{"instruction budget", func(s *Spec) { s.Warmup = MaxInstructions; s.Measure = 2 },
			"warmup+measure must not exceed"},
		{"metaKb too large", func(s *Spec) { s.MetaKB = MaxMetaKB + 1 }, "metaKb must be between"},
		{"llcSets not power of two", func(s *Spec) { s.LLCSets = 100 }, "power of two"},
		{"llcSets too small", func(s *Spec) { s.LLCSets = 8 }, "power of two between 16"},
		{"llcSets too large", func(s *Spec) { s.LLCSets = 2 * MaxLLCSets }, "power of two between 16"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := valid()
			tc.mutate(&sp)
			err := sp.Normalize()
			if err == nil {
				t.Fatalf("Normalize accepted %+v", sp)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestNormalizeIdempotent: normalizing twice changes nothing, so a decoded
// request and its marshaled round-trip share one identity.
func TestNormalizeIdempotent(t *testing.T) {
	sp := Spec{Workload: "sphinx06", Temporal: "streamline"}
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	again := sp
	if err := again.Normalize(); err != nil {
		t.Fatal(err)
	}
	if again != sp {
		t.Errorf("second Normalize changed the spec:\n got %+v\nwas %+v", again, sp)
	}
}

// TestSpecIdentity: equal configurations key identically; any knob change
// moves the content address.
func TestSpecIdentity(t *testing.T) {
	a := Spec{Workload: "sphinx06", Temporal: "streamline"}
	b := Spec{Workload: "sphinx06", Temporal: "streamline"}
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.Normalize(); err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() || a.Key() != b.Key() {
		t.Errorf("identical specs disagree: %q vs %q", a.ID(), b.ID())
	}
	if raw, err := hex.DecodeString(a.Key()); err != nil || len(raw) != 32 {
		t.Errorf("Key %q is not a SHA-256 hex digest", a.Key())
	}
	b.Seed = 7
	if a.Key() == b.Key() {
		t.Error("seed change did not move the content address")
	}
}

// TestConfigMirrorsStreamsim: derived geometry follows the documented
// formulas and every enum value builds.
func TestConfigMirrorsStreamsim(t *testing.T) {
	sp := Spec{Workload: "sphinx06", LLCSets: 1024}
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LLC.Sets != 1024 || cfg.L2.Sets != 512 {
		t.Errorf("geometry: llc=%d l2=%d, want 1024/512", cfg.LLC.Sets, cfg.L2.Sets)
	}
	for _, l1 := range L1Options {
		for _, l2 := range L2Options {
			for _, tmp := range TemporalOptions {
				sp := Spec{Workload: "sphinx06", L1: l1, L2: l2, Temporal: tmp}
				if err := sp.Normalize(); err != nil {
					t.Fatalf("%s/%s/%s: %v", l1, l2, tmp, err)
				}
				if _, err := sp.Config(); err != nil {
					t.Errorf("Config(%s/%s/%s): %v", l1, l2, tmp, err)
				}
			}
		}
	}
}
