package spp

import (
	"testing"

	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

func drive(p *Prefetcher, pc mem.PC, lines []mem.Line) []prefetch.Request {
	var all, buf []prefetch.Request
	for i, l := range lines {
		buf = p.Train(prefetch.Event{Now: uint64(i), PC: pc, Addr: mem.AddrOf(l)}, buf[:0])
		all = append(all, buf...)
	}
	return all
}

func TestUnitStrideWithinPages(t *testing.T) {
	p := New(DefaultConfig)
	var lines []mem.Line
	for i := 0; i < 1000; i++ {
		lines = append(lines, mem.Line(i))
	}
	reqs := drive(p, 1, lines)
	if len(reqs) == 0 {
		t.Fatal("no prefetches on unit stride")
	}
	future := map[mem.Line]bool{}
	for _, l := range lines {
		future[l] = true
	}
	hit := 0
	for _, r := range reqs {
		if future[mem.LineOf(r.Addr)] {
			hit++
		}
	}
	if float64(hit)/float64(len(reqs)) < 0.8 {
		t.Errorf("only %d/%d prefetches on-stream", hit, len(reqs))
	}
}

func TestStopsAtPageBoundaries(t *testing.T) {
	p := New(DefaultConfig)
	var lines []mem.Line
	for i := 0; i < 640; i++ {
		lines = append(lines, mem.Line(i))
	}
	reqs := drive(p, 1, lines)
	for _, r := range reqs {
		// A prefetch must stay within the page of some trained access.
		if mem.LineOf(r.Addr) >= 640+64 {
			t.Errorf("prefetch %d beyond trained pages", mem.LineOf(r.Addr))
		}
	}
}

func TestLowConfidencePatternsSuppressed(t *testing.T) {
	p := New(DefaultConfig)
	x := uint64(11)
	var lines []mem.Line
	for i := 0; i < 800; i++ {
		x = x*6364136223846793005 + 1
		// Use high LCG bits: the low bits are periodic and would form a
		// genuinely learnable pattern.
		lines = append(lines, mem.Line((x>>33)%(64*8))) // random within 8 pages
	}
	reqs := drive(p, 1, lines)
	if len(reqs) > 200 {
		t.Errorf("%d prefetches on random in-page accesses", len(reqs))
	}
}

func TestPerceptronLearnsFromOutcomes(t *testing.T) {
	p := New(DefaultConfig)
	// Issue and confirm a stream: weights should become nonnegative for
	// the stream's features and stay usable.
	var lines []mem.Line
	for i := 0; i < 2000; i++ {
		lines = append(lines, mem.Line(i%2048))
	}
	reqs := drive(p, 1, lines)
	if len(reqs) == 0 {
		t.Fatal("filter rejected a perfectly predictable stream")
	}
}

func TestDefaults(t *testing.T) {
	p := New(Config{})
	if p.Name() != "spp-ppf" {
		t.Errorf("name = %q", p.Name())
	}
}
