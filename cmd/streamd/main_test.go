package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestMain re-execs the test binary as the streamd command when
// STREAMD_BE_MAIN=1, so the end-to-end tests below drive the real daemon —
// real sockets, real signals, real SIGKILL crashes — without a separate
// build step (the same machinery as cmd/experiments' crash harness).
func TestMain(m *testing.M) {
	if os.Getenv("STREAMD_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemon is one running child streamd.
type daemon struct {
	cmd      *exec.Cmd
	addr     string
	scanDone chan struct{}

	mu     sync.Mutex
	stderr bytes.Buffer
}

// startDaemon launches the child on an ephemeral port and waits for its
// "listening on" line.
func startDaemon(t *testing.T, extraArgs ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "STREAMD_BE_MAIN=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, scanDone: make(chan struct{})}
	addrCh := make(chan string, 1)
	go func() {
		defer close(d.scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.stderr.WriteString(line + "\n")
			d.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "streamd: listening on "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case d.addr = <-addrCh:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon did not report its address; stderr so far:\n%s", d.stderrText())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return d
}

func (d *daemon) stderrText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// wait reaps the child, returning its exit code (negative for signal deaths).
// It joins the stderr scanner first, so stderrText afterwards is complete.
func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	select {
	case <-d.scanDone:
	case <-time.After(10 * time.Second):
		t.Error("stderr scanner did not finish")
	}
	err := d.cmd.Wait()
	if err == nil {
		return 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("waiting for daemon: %v", err)
	}
	ws := ee.Sys().(syscall.WaitStatus)
	if ws.Signaled() {
		return -int(ws.Signal())
	}
	return ee.ExitCode()
}

// simulate POSTs body to the daemon and returns status, cache tier header,
// and response body.
func (d *daemon) simulate(t *testing.T, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post("http://"+d.addr+"/simulate", "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /simulate: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Streamd-Cache"), data
}

// statusz fetches and decodes the /statusz counters the tests assert on.
func (d *daemon) statusz(t *testing.T) map[string]any {
	t.Helper()
	resp, err := http.Get("http://" + d.addr + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	data, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("statusz: %v\n%s", err, data)
	}
	return st
}

// tinySpec is a sub-second simulation request.
const tinySpec = `{"workload":"sphinx06","temporal":"streamline","footprint":0.02,"warmup":1000,"measure":4000,"llcSets":16,"metaKb":8}`

// TestKillAndRestartPersistence is the satellite acceptance test: populate
// the durable store through the daemon, SIGKILL it, restart on the same
// -checkpoint directory, and require the same request to be a verified cache
// hit — byte-identical body, zero re-simulation.
func TestKillAndRestartPersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations in child processes")
	}
	dir := t.TempDir() + "/results.d"

	d1 := startDaemon(t, "-checkpoint", dir)
	status, tier, cold := d1.simulate(t, tinySpec)
	if status != http.StatusOK || tier != "none" {
		t.Fatalf("cold request: status %d, tier %q; want 200/none\nbody: %s", status, tier, cold)
	}
	st := d1.statusz(t)
	if st["computed"] != 1.0 || st["storeHits"] != 0.0 {
		t.Fatalf("cold statusz: computed=%v storeHits=%v, want 1/0", st["computed"], st["storeHits"])
	}
	// The response was served, so the record is already durable (PutRaw
	// fsyncs before the flight is published) — a SIGKILL now must lose
	// nothing.
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if code := d1.wait(t); code != -9 {
		t.Fatalf("killed daemon exited %d, want SIGKILL (-9)", code)
	}

	d2 := startDaemon(t, "-checkpoint", dir)
	if !strings.Contains(d2.stderrText(), "holds 1 result(s)") {
		t.Errorf("restarted daemon did not recover the record:\n%s", d2.stderrText())
	}
	status, tier, warm := d2.simulate(t, tinySpec)
	if status != http.StatusOK || tier != "store" {
		t.Fatalf("replayed request: status %d, tier %q; want 200/store", status, tier)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("replayed body differs from the cold one:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	st = d2.statusz(t)
	if st["computed"] != 0.0 || st["storeHits"] != 1.0 {
		t.Errorf("replayed statusz: computed=%v storeHits=%v, want 0/1 (no re-simulation)", st["computed"], st["storeHits"])
	}

	// Clean shutdown: SIGTERM drains and exits 0.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d2.wait(t); code != 0 {
		t.Errorf("SIGTERM exit code %d, want 0\nstderr:\n%s", code, d2.stderrText())
	}
	if out := d2.stderrText(); !strings.Contains(out, "draining") || !strings.Contains(out, "drained, bye") {
		t.Errorf("graceful drain not reported:\n%s", out)
	}
}

// TestObservabilityEndToEnd: the daemon started with -access-log and
// -slow-request serves a scrapeable /metricz and, after a graceful drain,
// leaves a valid JSONL access log whose IDs match the X-Streamd-Request
// response headers.
func TestObservabilityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations in child processes")
	}
	logPath := t.TempDir() + "/access.jsonl"
	d := startDaemon(t, "-access-log", logPath, "-slow-request", "1ns")

	var ids []string
	for i, wantTier := range []string{"none", "memory"} {
		resp, err := http.Post("http://"+d.addr+"/simulate", "application/json",
			strings.NewReader(tinySpec))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Streamd-Cache") != wantTier {
			t.Fatalf("request %d: status %d tier %q, want 200/%s",
				i, resp.StatusCode, resp.Header.Get("X-Streamd-Cache"), wantTier)
		}
		id := resp.Header.Get("X-Streamd-Request")
		if id == "" {
			t.Fatalf("request %d carries no X-Streamd-Request header", i)
		}
		ids = append(ids, id)
	}

	mresp, err := http.Get("http://" + d.addr + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	exposition, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metricz: status %d", mresp.StatusCode)
	}
	for _, want := range []string{
		`streamd_responses_total{outcome="computed"} 1`,
		`streamd_responses_total{outcome="memory_hit"} 1`,
		"runner_jobs_completed_total 1",
	} {
		if !strings.Contains(string(exposition), want+"\n") {
			t.Errorf("/metricz is missing %q:\n%s", want, exposition)
		}
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("SIGTERM exit code %d\nstderr:\n%s", code, d.stderrText())
	}

	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log holds %d lines, want 2:\n%s", len(lines), data)
	}
	for i, line := range lines {
		var rec struct {
			Type    string `json:"type"`
			ID      string `json:"id"`
			Status  int    `json:"status"`
			Outcome string `json:"outcome"`
			Slow    bool   `json:"slow"`
			Stages  *struct {
				SimulateUs int64 `json:"simulateUs"`
			} `json:"stages"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access log line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if rec.Type != "access" || rec.Status != 200 {
			t.Errorf("record %d: type %q status %d", i, rec.Type, rec.Status)
		}
		if rec.ID != ids[i] {
			t.Errorf("record %d ID %q does not match response header %q", i, rec.ID, ids[i])
		}
		if !rec.Slow || rec.Stages == nil {
			t.Errorf("record %d was not promoted by -slow-request 1ns: %s", i, line)
		}
	}
}

// TestDaemonFlagValidation: bad invocations exit 2 before binding a socket.
func TestDaemonFlagValidation(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-telemetry-level", "loud")
	cmd.Env = append(os.Environ(), "STREAMD_BE_MAIN=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("exit = %v, want code 2", err)
	}
	if !strings.Contains(stderr.String(), "unknown severity") {
		t.Errorf("stderr: %q", stderr.String())
	}
}
