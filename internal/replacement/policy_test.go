package replacement

import (
	"math/rand"
	"testing"

	"streamline/internal/mem"
)

// simCache drives a policy through a tiny set-associative cache simulation
// and returns the hit count. It exists so policy tests measure behavior
// (hit rates on structured streams) rather than internal state.
type simCache struct {
	sets, ways int
	tags       [][]mem.Line
	valid      [][]bool
	pol        Policy
	hits, miss uint64
}

func newSimCache(sets, ways int, f Factory) *simCache {
	c := &simCache{sets: sets, ways: ways, pol: f(sets, ways)}
	c.tags = make([][]mem.Line, sets)
	c.valid = make([][]bool, sets)
	for i := range c.tags {
		c.tags[i] = make([]mem.Line, ways)
		c.valid[i] = make([]bool, ways)
	}
	return c
}

func (c *simCache) access(pc mem.PC, line mem.Line) bool {
	set := int(uint64(line) % uint64(c.sets))
	a := Access{PC: pc, Line: line}
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == line {
			c.hits++
			c.pol.Hit(set, w, a)
			return true
		}
	}
	c.miss++
	way := -1
	for w := 0; w < c.ways; w++ {
		if !c.valid[set][w] {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.pol.Victim(set, 0, a)
		c.pol.Evict(set, way)
	}
	c.valid[set][way] = true
	c.tags[set][way] = line
	c.pol.Fill(set, way, a)
	return false
}

func allPolicies() []string {
	return []string{"lru", "random", "srrip", "brrip", "drrip", "ship", "hawkeye", "mockingjay"}
}

func TestVictimInRange(t *testing.T) {
	for _, name := range allPolicies() {
		f := Factories[name]
		c := newSimCache(8, 4, f)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 20000; i++ {
			c.access(mem.PC(rng.Intn(16)), mem.Line(rng.Intn(512)))
		}
		if c.hits == 0 {
			t.Errorf("%s: zero hits on a reuse-heavy stream", name)
		}
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := newSimCache(1, 4, NewLRU)
	for l := mem.Line(0); l < 4; l++ {
		c.access(1, l)
	}
	c.access(1, 0) // refresh line 0
	c.access(1, 4) // evicts line 1 (oldest)
	if !c.access(1, 0) {
		t.Error("line 0 should have survived")
	}
	if c.access(1, 1) {
		t.Error("line 1 should have been evicted")
	}
}

func TestLRUHitRateOnCyclicStreamWithinCapacity(t *testing.T) {
	c := newSimCache(16, 4, NewLRU)
	// 64-line cyclic working set fits exactly: all accesses after the
	// first lap hit.
	for lap := 0; lap < 10; lap++ {
		for l := mem.Line(0); l < 64; l++ {
			c.access(1, l)
		}
	}
	if c.miss != 64 {
		t.Errorf("misses = %d, want 64 (cold only)", c.miss)
	}
}

// thrashStream builds the classic RRIP motivation: a small reused working
// set with interleaved scan bursts sized so that LRU evicts the hot lines
// between their touches while re-reference-aware policies keep them. Hot
// lines land 2 per set and each burst adds 3 scan lines per set (16 sets,
// 4 ways).
func thrashStream(c *simCache, laps int) (reuseHits, reuseTotal uint64) {
	scan := mem.Line(1 << 20)
	for lap := 0; lap < laps; lap++ {
		for chunk := 0; chunk < 4; chunk++ {
			// Touch the hot set twice so hot lines earn a hit (and thus a
			// near re-reference prediction) before the scan burst arrives.
			for pass := 0; pass < 2; pass++ {
				for l := mem.Line(0); l < 32; l++ {
					before := c.hits
					c.access(1, l)
					if lap > 0 || chunk > 0 || pass > 0 {
						reuseTotal++
						if c.hits > before {
							reuseHits++
						}
					}
				}
			}
			for i := 0; i < 48; i++ {
				c.access(2, scan)
				scan++
			}
		}
	}
	return
}

func TestSRRIPResistsScansBetterThanLRU(t *testing.T) {
	lru := newSimCache(16, 4, NewLRU)
	srrip := newSimCache(16, 4, NewSRRIP)
	lruHits, total := thrashStream(lru, 20)
	srripHits, _ := thrashStream(srrip, 20)
	if total == 0 {
		t.Fatal("no reuse accesses measured")
	}
	if srripHits <= lruHits {
		t.Errorf("SRRIP hot-set hits (%d) should exceed LRU's (%d) under scanning",
			srripHits, lruHits)
	}
}

func TestSHiPLearnsScanPC(t *testing.T) {
	// SHiP should learn that PC 2 (the scan) never reuses and insert its
	// lines at distant RRPV, protecting PC 1's hot set.
	ship := newSimCache(16, 4, NewSHiP)
	srrip := newSimCache(16, 4, NewSRRIP)
	shipHits, _ := thrashStream(ship, 30)
	srripHits, _ := thrashStream(srrip, 30)
	if shipHits < srripHits {
		t.Errorf("SHiP hot-set hits (%d) below SRRIP (%d); scan PC not learned",
			shipHits, srripHits)
	}
}

func TestHawkeyeProtectsReusedPC(t *testing.T) {
	hk := newSimCache(16, 4, NewHawkeye)
	lru := newSimCache(16, 4, NewLRU)
	hkHits, _ := thrashStream(hk, 30)
	lruHits, _ := thrashStream(lru, 30)
	if hkHits <= lruHits {
		t.Errorf("Hawkeye hot-set hits (%d) should beat LRU (%d) under scanning",
			hkHits, lruHits)
	}
}

func TestMockingjayResistsScans(t *testing.T) {
	mj := newSimCache(16, 4, NewMockingjay)
	lru := newSimCache(16, 4, NewLRU)
	mjHits, _ := thrashStream(mj, 30)
	lruHits, _ := thrashStream(lru, 30)
	if mjHits <= lruHits {
		t.Errorf("Mockingjay hot-set hits (%d) should beat LRU (%d) under scanning",
			mjHits, lruHits)
	}
}

func TestDRRIPTracksBetterComponent(t *testing.T) {
	// On the thrash stream, BRRIP > SRRIP; DRRIP should land near the
	// better of the two, and never be catastrophically worse than both.
	dr := newSimCache(64, 4, NewDRRIP)
	sr := newSimCache(64, 4, NewSRRIP)
	drHits, _ := thrashStream(dr, 30)
	srHits, _ := thrashStream(sr, 30)
	if float64(drHits) < 0.5*float64(srHits) {
		t.Errorf("DRRIP hits (%d) below half of SRRIP (%d)", drHits, srHits)
	}
}

func TestPoliciesAreDeterministic(t *testing.T) {
	for _, name := range allPolicies() {
		f := Factories[name]
		run := func() uint64 {
			c := newSimCache(8, 4, f)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 5000; i++ {
				c.access(mem.PC(rng.Intn(8)), mem.Line(rng.Intn(256)))
			}
			return c.hits
		}
		if a, b := run(), run(); a != b {
			t.Errorf("%s: nondeterministic hit counts %d vs %d", name, a, b)
		}
	}
}

func TestFactoryNames(t *testing.T) {
	for name, f := range Factories {
		p := f(4, 2)
		if p.Name() != name {
			t.Errorf("factory %q built policy named %q", name, p.Name())
		}
	}
}
