// Package sim wires the substrates into the simulated system of Table II —
// out-of-order cores, a three-level cache hierarchy with a partitionable
// shared LLC, prefetchers at the L1D and L2, temporal prefetchers with
// LLC-resident metadata, and banked DRAM — and drives traces through it,
// producing the statistics every experiment in the paper reports.
package sim

import (
	"fmt"

	"streamline/internal/audit"
	"streamline/internal/cache"
	"streamline/internal/cpu"
	"streamline/internal/dram"
	"streamline/internal/mem"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/telemetry"
	"streamline/internal/trace"
)

// TemporalFactory builds a core's temporal prefetcher over its LLC metadata
// bridge. A nil factory means no temporal prefetcher.
type TemporalFactory func(bridge meta.Bridge) prefetch.Prefetcher

// PrefetcherFactory builds a per-core prefetcher. nil means none.
type PrefetcherFactory func() prefetch.Prefetcher

// Config describes a simulated system. The zero value is unusable; start
// from DefaultConfig.
type Config struct {
	Cores int
	CPU   cpu.Config

	L1D cache.Config
	L2  cache.Config
	// LLC is the per-core LLC slice; the constructed LLC scales Sets by
	// the core count (Table II: 2MB/core).
	LLC  cache.Config
	DRAM dram.Config

	// L1DPrefetcher and L2Prefetcher build each core's regular
	// prefetchers.
	L1DPrefetcher PrefetcherFactory
	L2Prefetcher  PrefetcherFactory
	// Temporal builds each core's temporal prefetcher (attached to the
	// L2, metadata in the LLC).
	Temporal TemporalFactory
	// TemporalDRAM builds an off-chip temporal prefetcher whose metadata
	// engine accesses DRAM directly (the STMS-style baseline); mutually
	// exclusive with Temporal.
	TemporalDRAM func(d *dram.DRAM) prefetch.Prefetcher
	// DedicatedMetadata gives temporal prefetchers dedicated storage
	// instead of LLC capacity (the Triangel-Ideal arm of Figure 13a).
	DedicatedMetadata bool

	// WarmupInstructions and MeasureInstructions bound each core's run.
	WarmupInstructions  uint64
	MeasureInstructions uint64

	// Audit, when non-nil, enables the runtime invariant-checking
	// subsystem: the hierarchy's structural invariants are verified during
	// and after the run and violations reported to this auditor. Checks
	// are read-only, so an audited run produces byte-identical statistics;
	// nil (the default) reduces every hook to a branch.
	Audit *audit.Auditor
	// AuditInterval is the number of trace records between periodic full
	// invariant scans when Audit is set; zero means the default (4096).
	// A final scan always runs when the simulation completes.
	AuditInterval uint64

	// Telemetry, when non-nil, enables the observability layer: an interval
	// sampler that emits one JSONL record per core every
	// Telemetry.SampleInterval() measured instructions, and a structured
	// event trace fed by the hierarchy (MSHR-full stalls, DRAM row
	// conflicts, metadata resizes, accuracy epochs, audit violations).
	// Instrumentation is read-only, so an instrumented run produces a
	// byte-identical Result; nil (the default) reduces every hook to a
	// branch.
	Telemetry *telemetry.Collector
}

// DefaultConfig returns the Table II system for the given core count.
func DefaultConfig(cores int) Config {
	if cores < 1 {
		cores = 1
	}
	return Config{
		Cores: cores,
		CPU:   cpu.DefaultConfig,
		L1D: cache.Config{
			Name: "L1D", Sets: 64, Ways: 12, Latency: 5, MSHRs: 16, Ports: 2,
		},
		L2: cache.Config{
			Name: "L2", Sets: 1024, Ways: 8, Latency: 10, MSHRs: 32, Ports: 1,
		},
		LLC: cache.Config{
			Name: "LLC", Sets: 2048, Ways: 16, Latency: 20, MSHRs: 64, Ports: 1,
		},
		DRAM:                dram.ConfigFor(cores),
		WarmupInstructions:  2_000_000,
		MeasureInstructions: 8_000_000,
	}
}

// coreState is the per-core machinery.
type coreState struct {
	id    int
	core  *cpu.Core
	l1d   *cache.Cache
	l2    *cache.Cache
	tr    trace.Trace
	done  bool
	l1pf  prefetch.Prefetcher
	l2pf  prefetch.Prefetcher
	tempf prefetch.Prefetcher

	reqBuf []prefetch.Request

	// epoch accuracy feedback for the temporal prefetcher
	lastFills, lastUseful uint64

	issued uint64 // prefetches issued by all of this core's prefetchers
	// issuedBy/droppedBy attribute issue and duplicate-drop counts to the
	// issuing prefetcher (lifecycle attribution). Kept on unconditionally —
	// plain increments on paths that already update several statistics.
	issuedBy  [cache.NumSources]uint64
	droppedBy [cache.NumSources]uint64

	warmBase snapshot
	measured bool
	final    snapshot

	// tel carries this core's "sim"-component telemetry events (accuracy
	// epochs); nil when telemetry is off.
	tel *telemetry.Emitter
	// interval-sampler state: the next cumulative instruction count to
	// sample at, the previous sample's snapshot, and the sample sequence
	// number.
	nextSample uint64
	lastSample snapshot
	sampleSeq  int
}

// System is a constructed simulator instance.
type System struct {
	cfg    Config
	cores  []*coreState
	llc    *cache.Cache
	dram   *dram.DRAM
	bridge []*llcBridge

	// sinceScan counts trace records since the last periodic audit scan.
	sinceScan uint64
}

// llcBridge adapts the shared LLC to one core's metadata store, interleaving
// metadata sets across cores so multi-core prefetchers do not collide.
type llcBridge struct {
	llc    *cache.Cache
	dram   *dram.DRAM
	offset int
	stride int
	// dedicated suppresses capacity reservation (Triangel-Ideal).
	dedicated bool
}

// MetaAccess implements meta.Bridge: metadata reads/writes contend for the
// LLC port and pay its latency.
func (b *llcBridge) MetaAccess(now uint64, kind mem.Kind) uint64 {
	d := b.llc.PortDelay(now, false)
	b.llc.CountMeta(kind)
	return d + b.llc.Latency()
}

// ReserveWays implements meta.Bridge. Dirty data flushed by a repartition is
// written back to DRAM immediately (traffic accounting).
func (b *llcBridge) ReserveWays(set, ways int) {
	if b.dedicated {
		return
	}
	phys := set*b.stride + b.offset
	_, dirty := b.llc.Reserve(phys, ways)
	for i := 0; i < dirty; i++ {
		b.dram.Write(0, mem.Line(phys))
	}
}

// Geometry implements meta.Bridge.
func (b *llcBridge) Geometry() (int, int) {
	return b.llc.Sets() / b.stride, b.llc.Ways()
}

// New constructs a system; traces are attached per core with SetTrace or by
// Run/RunMix.
func New(cfg Config) *System {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	llcCfg := cfg.LLC
	llcCfg.Sets *= cfg.Cores
	s := &System{
		cfg:  cfg,
		llc:  cache.New(llcCfg),
		dram: dram.New(cfg.DRAM),
	}
	col := cfg.Telemetry
	s.llc.SetTelemetry(col.Emitter("LLC", -1))
	s.dram.SetTelemetry(col.Emitter("dram", -1))
	if col != nil && cfg.Audit != nil && cfg.Audit.OnViolation == nil {
		// Mirror invariant violations into the event trace so a telemetry
		// file is self-contained evidence of a broken run.
		cfg.Audit.OnViolation = func(v audit.Violation) {
			col.Eventf(v.Cycle, -1, v.Component, "audit-"+v.Rule, telemetry.Warn, "%s", v.Detail)
		}
	}
	for c := 0; c < cfg.Cores; c++ {
		cs := &coreState{
			id:     c,
			core:   cpu.New(cfg.CPU),
			l1d:    cache.New(cfg.L1D),
			l2:     cache.New(cfg.L2),
			reqBuf: make([]prefetch.Request, 0, 16),
			l1pf:   prefetch.Nil{},
			l2pf:   prefetch.Nil{},
			tempf:  prefetch.Nil{},
		}
		if cfg.Audit != nil {
			cs.core.SetAuditor(cfg.Audit)
		}
		cs.tel = col.Emitter("sim", c)
		cs.l1d.SetTelemetry(col.Emitter("L1D", c))
		cs.l2.SetTelemetry(col.Emitter("L2", c))
		if cfg.L1DPrefetcher != nil {
			cs.l1pf = cfg.L1DPrefetcher()
		}
		if cfg.L2Prefetcher != nil {
			cs.l2pf = cfg.L2Prefetcher()
		}
		if cfg.Temporal != nil {
			b := &llcBridge{
				llc: s.llc, dram: s.dram,
				offset: c, stride: cfg.Cores,
				dedicated: cfg.DedicatedMetadata,
			}
			s.bridge = append(s.bridge, b)
			cs.tempf = cfg.Temporal(b)
		} else if cfg.TemporalDRAM != nil {
			cs.tempf = cfg.TemporalDRAM(s.dram)
		}
		if sp, ok := cs.tempf.(storeProvider); ok {
			if st := sp.Store(); st != nil {
				st.SetTelemetry(col.Emitter("meta", c))
			}
		}
		s.cores = append(s.cores, cs)
	}
	return s
}

// SetTrace attaches a trace to a core. The trace is wrapped to loop so the
// core stays busy until every core completes its measured instructions.
func (s *System) SetTrace(core int, tr trace.Trace) {
	if core < 0 || core >= len(s.cores) {
		panic(fmt.Sprintf("sim: core %d out of range", core))
	}
	s.cores[core].tr = trace.NewLooping(tr)
}

// LLC exposes the shared LLC (diagnostics and tests).
func (s *System) LLC() *cache.Cache { return s.llc }

// DRAM exposes the memory model (diagnostics and tests).
func (s *System) DRAM() *dram.DRAM { return s.dram }

// TemporalOf returns a core's temporal prefetcher (nil interface when none
// is configured); experiments use it to read prefetcher-internal statistics
// after a run.
func (s *System) TemporalOf(core int) prefetch.Prefetcher {
	return s.cores[core].tempf
}
