// Command streamsim runs one workload through one system configuration and
// prints its statistics — the quick way to poke at the simulator.
//
// Usage:
//
//	streamsim -workload sphinx06 -temporal streamline
//	streamsim -workload pr -l1 stride -temporal triangel -cores 4
//	streamsim -workload mcf06 -temporal streamline -telemetry out.jsonl -timeline
//	streamsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"streamline/internal/audit"
	"streamline/internal/cache"
	"streamline/internal/core"
	"streamline/internal/dram"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/berti"
	"streamline/internal/prefetch/bingo"
	"streamline/internal/prefetch/ipcp"
	"streamline/internal/prefetch/spp"
	"streamline/internal/prefetch/stms"
	"streamline/internal/prefetch/stride"
	"streamline/internal/prefetch/triage"
	"streamline/internal/prefetch/triangel"
	"streamline/internal/sim"
	"streamline/internal/telemetry"
	"streamline/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "sphinx06", "workload name")
		l1        = flag.String("l1", "stride", "L1D prefetcher: none|stride|berti")
		l2        = flag.String("l2", "none", "L2 prefetcher: none|ipcp|bingo|spp")
		temporal  = flag.String("temporal", "none", "temporal prefetcher: none|triage|triangel|streamline|streamline-bypass|stms")
		cores     = flag.Int("cores", 1, "core count (same workload on every core)")
		footprint = flag.Float64("footprint", 0.1, "workload footprint scale")
		warmup    = flag.Uint64("warmup", 400_000, "warmup instructions")
		measure   = flag.Uint64("measure", 1_200_000, "measured instructions")
		metaKB    = flag.Int("meta-kb", 128, "max metadata partition per core (KB)")
		llcSets   = flag.Int("llc-sets", 256, "LLC sets per core (256=256KB, 2048=2MB)")
		seed      = flag.Int64("seed", 1, "workload seed")
		list      = flag.Bool("list", false, "list workloads and exit")
		check     = flag.Bool("check", false, "enable the runtime invariant audit; exit 1 on violations")

		telOut     = flag.String("telemetry", "", "write interval samples and events as JSONL to this file")
		telLevel   = flag.String("telemetry-level", "info", "minimum event severity to record: debug|info|warn")
		sampleIvl  = flag.Uint64("sample-interval", 100_000, "measured instructions between telemetry samples per core (0 disables sampling)")
		timeline   = flag.Bool("timeline", false, "render the per-interval IPC/MPKI timeline on stderr after the run")
		jsonDest   = flag.String("json", "", "write the final result as JSON to this file ('-' for stdout)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range workloads.All() {
			irr := ""
			if w.Irregular {
				irr = " (irregular)"
			}
			fmt.Printf("  %-14s %s%s\n", w.Name, w.Suite, irr)
		}
		return
	}

	w, err := workloads.Get(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *cores < 1 {
		*cores = 1
	}
	if *llcSets < 16 || *llcSets&(*llcSets-1) != 0 {
		fmt.Fprintf(os.Stderr, "-llc-sets must be a power of two >= 16, got %d\n", *llcSets)
		os.Exit(2)
	}
	sev, err := telemetry.ParseSeverity(*telLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := sim.DefaultConfig(*cores)
	cfg.LLC.Sets = *llcSets
	cfg.L2.Sets = max(64, *llcSets/2)
	cfg.WarmupInstructions = *warmup
	cfg.MeasureInstructions = *measure

	switch *l1 {
	case "stride":
		cfg.L1DPrefetcher = func() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) }
	case "berti":
		cfg.L1DPrefetcher = func() prefetch.Prefetcher { return berti.New(berti.DefaultConfig) }
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "unknown l1 prefetcher %q\n", *l1)
		os.Exit(2)
	}
	switch *l2 {
	case "ipcp":
		cfg.L2Prefetcher = func() prefetch.Prefetcher { return ipcp.New(ipcp.DefaultConfig) }
	case "bingo":
		cfg.L2Prefetcher = func() prefetch.Prefetcher { return bingo.New(bingo.DefaultConfig) }
	case "spp":
		cfg.L2Prefetcher = func() prefetch.Prefetcher { return spp.New(spp.DefaultConfig) }
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "unknown l2 prefetcher %q\n", *l2)
		os.Exit(2)
	}
	metaBytes := *metaKB << 10
	switch *temporal {
	case "triage":
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			c := triage.DefaultConfig()
			c.MetaBytes = metaBytes
			return triage.New(c, b)
		}
	case "triangel":
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			c := triangel.DefaultConfig()
			c.MetaBytes = metaBytes
			return triangel.New(c, b)
		}
	case "streamline", "streamline-bypass":
		bypass := *temporal == "streamline-bypass"
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			o := core.DefaultOptions()
			o.MetaBytes = metaBytes
			o.MinSets = max(8, *llcSets/16)
			o.Bypass = bypass
			return core.New(o, b)
		}
	case "stms":
		cfg.TemporalDRAM = func(d *dram.DRAM) prefetch.Prefetcher {
			return stms.New(stms.DefaultConfig(), d)
		}
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "unknown temporal prefetcher %q\n", *temporal)
		os.Exit(2)
	}

	// os.Exit skips defers, so every exit after this point goes through
	// exit() to flush the profiles.
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	var aud *audit.Auditor
	if *check {
		aud = audit.New(*seed)
		aud.Label = fmt.Sprintf("%s|%s|%s|%s|x%d", *workload, *l1, *l2, *temporal, *cores)
		cfg.Audit = aud
	}

	// Telemetry: a sink only when an output file is requested; the timeline
	// works sink-less by retaining interval records in memory. Both write
	// nothing to stdout, so instrumented runs print identical statistics.
	var col *telemetry.Collector
	var telFile *os.File
	if *telOut != "" || *timeline {
		var sink *telemetry.Sink
		if *telOut != "" {
			f, err := os.Create(*telOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(1)
			}
			telFile = f
			sink = telemetry.NewSink(f)
			sink.SetMinSeverity(sev)
		}
		col = telemetry.New(sink, *sampleIvl)
		if *timeline {
			col.KeepIntervals()
		}
		cfg.Telemetry = col
	}

	sys := sim.New(cfg)
	for c := 0; c < *cores; c++ {
		sys.SetTrace(c, w.NewTrace(workloads.Scale{Footprint: *footprint}, *seed+int64(c)))
	}
	res := sys.Run()

	fmt.Printf("workload=%s cores=%d l1=%s l2=%s temporal=%s\n",
		*workload, *cores, *l1, *l2, *temporal)
	for i, c := range res.Cores {
		fmt.Printf("core %d: IPC %.4f  (%d instr, %d cycles)\n", i, c.IPC, c.Instructions, c.Cycles)
		fmt.Printf("  L1D: %.1f%% hit, %d misses     L2: %.1f%% hit, %d misses (%.2f MPKI)\n",
			c.L1D.DemandHitRate()*100, c.L1D.DemandMisses,
			c.L2.DemandHitRate()*100, c.L2.DemandMisses, c.L2MPKI())
		if c.PrefetchesIssued > 0 {
			fmt.Printf("  prefetch: %d issued, %d L2 fills, %d useful (%.1f%% accuracy)\n",
				c.PrefetchesIssued, c.L2.PrefetchFills, c.L2.UsefulPrefetches,
				c.PrefetchAccuracy()*100)
		}
		for _, p := range c.Prefetchers {
			if p.Issued == 0 && p.Fills == 0 {
				continue
			}
			fmt.Printf("    %-8s %d issued (%d dup-dropped), %d fills: %d timely + %d late useful, %d evicted unused (%.1f%% accuracy)\n",
				p.Source+":", p.Issued, p.DroppedDuplicate, p.Fills,
				p.UsefulTimely, p.UsefulLate, p.EvictedUnused, p.Accuracy()*100)
		}
		if c.Meta.Lookups > 0 {
			fmt.Printf("  metadata: %d lookups (%.1f%% trigger hit), %d reads, %d writes, %d rearrange blocks, %d filtered\n",
				c.Meta.Lookups, c.Meta.TriggerHitRate()*100, c.Meta.Reads, c.Meta.Writes,
				c.Meta.RearrangeReads+c.Meta.RearrangeWrites, c.Meta.FilteredInserts)
		}
	}
	fmt.Printf("LLC: %.1f%% demand hit, %d meta reads, %d meta writes\n",
		res.LLC.DemandHitRate()*100, res.LLC.MetaReads, res.LLC.MetaWrites)
	fmt.Printf("DRAM: %d reads, %d writes, %.1f%% row hits, %d queue cycles\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.RowHitRate()*100, res.DRAM.QueueCycles)

	if *timeline {
		col.Timeline(os.Stderr)
	}
	if err := col.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
		exit(1)
	}
	if telFile != nil {
		if err := telFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			exit(1)
		}
	}

	if *jsonDest != "" {
		if err := writeJSON(*jsonDest, buildJSON(*workload, *l1, *l2, *temporal, *cores, *seed, res)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}

	if aud != nil {
		// Audit output goes to stderr so stdout stays byte-identical with
		// unaudited runs.
		if aud.Total() > 0 {
			aud.WriteReport(os.Stderr)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "audit: clean (%d scans)\n", aud.Scans())
	}
	stopProfiles()
}

// jsonResult is the -json document: the run configuration, every core's raw
// statistics plus the derived rates the tables print, and the per-engine
// prefetch lifecycle attribution.
type jsonResult struct {
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`
	L1       string `json:"l1"`
	L2       string `json:"l2"`
	Temporal string `json:"temporal"`
	Seed     int64  `json:"seed"`

	CoreResults []jsonCore  `json:"coreResults"`
	LLC         cache.Stats `json:"llc"`
	DRAM        dram.Stats  `json:"dram"`
}

type jsonCore struct {
	Core             int     `json:"core"`
	Instructions     uint64  `json:"instructions"`
	Cycles           uint64  `json:"cycles"`
	IPC              float64 `json:"ipc"`
	L1DMPKI          float64 `json:"l1dMpki"`
	L2MPKI           float64 `json:"l2Mpki"`
	PrefetchAccuracy float64 `json:"prefetchAccuracy"`

	L1D cache.Stats `json:"l1d"`
	L2  cache.Stats `json:"l2"`

	PrefetchesIssued uint64           `json:"prefetchesIssued"`
	Prefetchers      []jsonPrefetcher `json:"prefetchers"`
	Meta             meta.Stats       `json:"meta"`
}

type jsonPrefetcher struct {
	Source           string  `json:"source"`
	Issued           uint64  `json:"issued"`
	DroppedDuplicate uint64  `json:"droppedDuplicate"`
	Fills            uint64  `json:"fills"`
	UsefulTimely     uint64  `json:"usefulTimely"`
	UsefulLate       uint64  `json:"usefulLate"`
	EvictedUnused    uint64  `json:"evictedUnused"`
	Accuracy         float64 `json:"accuracy"`
	Pollution        float64 `json:"pollution"`
}

func buildJSON(workload, l1, l2, temporal string, cores int, seed int64, res sim.Result) jsonResult {
	out := jsonResult{
		Workload: workload, Cores: cores, L1: l1, L2: l2, Temporal: temporal, Seed: seed,
		LLC: res.LLC, DRAM: res.DRAM,
	}
	for i, c := range res.Cores {
		jc := jsonCore{
			Core:             i,
			Instructions:     c.Instructions,
			Cycles:           c.Cycles,
			IPC:              c.IPC,
			L1DMPKI:          c.L1DMPKI(),
			L2MPKI:           c.L2MPKI(),
			PrefetchAccuracy: c.PrefetchAccuracy(),
			L1D:              c.L1D,
			L2:               c.L2,
			PrefetchesIssued: c.PrefetchesIssued,
			Meta:             c.Meta,
		}
		for _, p := range c.Prefetchers {
			jc.Prefetchers = append(jc.Prefetchers, jsonPrefetcher{
				Source:           p.Source,
				Issued:           p.Issued,
				DroppedDuplicate: p.DroppedDuplicate,
				Fills:            p.Fills,
				UsefulTimely:     p.UsefulTimely,
				UsefulLate:       p.UsefulLate,
				EvictedUnused:    p.EvictedUnused,
				Accuracy:         p.Accuracy(),
				Pollution:        p.Pollution(),
			})
		}
		out.CoreResults = append(out.CoreResults, jc)
	}
	return out
}

func writeJSON(dest string, res jsonResult) error {
	var w io.Writer = os.Stdout
	if dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// startProfiles begins CPU profiling and arranges a heap profile, returning
// a stop function that must run before every exit (os.Exit skips defers).
func startProfiles(cpuDest, memDest string) (func(), error) {
	var cpuFile *os.File
	if cpuDest != "" {
		f, err := os.Create(cpuDest)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memDest != "" {
			f, err := os.Create(memDest)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
