package check

import (
	"testing"
)

// FuzzDifferentialCache feeds arbitrary operation programs to the shadowed
// cache pair: the first two bytes select the geometry, the rest decode (via
// applyOps' total decoder) into lookups, fills, reservations, and dirty
// markings. The property is full behavioral equivalence — every return
// value, every statistics counter, and the complete resident content must
// match the reference LRU model at every checkpoint.
func FuzzDifferentialCache(f *testing.F) {
	// Seed corpus: each seed aims one opcode family at a small geometry so
	// the fuzzer starts adjacent to every interesting interleaving.
	f.Add([]byte{0, 0, 0, 0, 0, 4, 0, 0, 3, 4, 1, 1, 0, 4, 0})                           // fill then demand lookups
	f.Add([]byte{1, 1, 3, 5, 2, 3, 9, 1, 7, 3, 3, 60, 0, 3, 0})                          // prefetch fills + reserve
	f.Add([]byte{2, 0, 7, 2, 8, 7, 4, 2, 1, 12, 2, 2, 5, 2, 0})                          // stores, writebacks, dirty
	f.Add([]byte{0, 7, 15, 0, 15, 7, 6, 15, 1, 6, 15, 0, 14, 8, 2})                      // resident lookups + probes
	f.Add([]byte{4, 3, 11, 3, 11, 40, 0, 11, 0, 7, 11, 4, 3, 11, 7, 7, 11, 0, 0, 11, 0}) // reserve churn over a live line
	if f.Failed() {
		return
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		sh := NewShadow(shadowGeometry(data[0], data[1]))
		applyOps(sh, data[2:])
		for _, m := range sh.Mismatches() {
			t.Errorf("divergence: %s", m)
		}
	})
}
