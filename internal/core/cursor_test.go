package core

import (
	"testing"

	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

// seqLines yields an arithmetic line sequence (distinct, non-sequential).
func seqLines(start, n, stride int) []mem.Line {
	out := make([]mem.Line, n)
	for i := range out {
		out[i] = mem.Line(start + i*stride)
	}
	return out
}

func TestCursorRunsAheadOfDemand(t *testing.T) {
	p := New(DefaultOptions(), testBridge())
	lap := seqLines(1000, 512, 9)
	feed(p, 1, lap) // train
	// Second lap: after warm-up accesses, the furthest issued line should
	// sit well ahead of the current demand position.
	var buf []prefetch.Request
	maxIssued := mem.Line(0)
	for i, l := range lap[:128] {
		buf = p.Train(prefetch.Event{Now: uint64(i * 10), PC: 1, Addr: mem.AddrOf(l)}, buf[:0])
		for _, r := range buf {
			if mem.LineOf(r.Addr) > maxIssued {
				maxIssued = mem.LineOf(r.Addr)
			}
		}
	}
	demandPos := lap[127]
	leadLines := (int(maxIssued) - int(demandPos)) / 9
	if leadLines < 8 {
		t.Errorf("cursor lead = %d stream positions, want >= 8", leadLines)
	}
	if leadLines > maxLead+8 {
		t.Errorf("cursor lead = %d exceeds the %d bound", leadLines, maxLead)
	}
}

func TestLeadBoundRespected(t *testing.T) {
	p := New(DefaultOptions(), testBridge())
	lap := seqLines(5000, 600, 3)
	feed(p, 1, lap)
	tu := p.tuFor(1)
	if tu.lead > maxLead {
		t.Errorf("lead = %d exceeds maxLead %d", tu.lead, maxLead)
	}
	// Replay and check the invariant continuously.
	var buf []prefetch.Request
	for i, l := range lap {
		buf = p.Train(prefetch.Event{Now: uint64(i * 10), PC: 1, Addr: mem.AddrOf(l)}, buf[:0])
		if tu := p.tuFor(1); tu.lead > maxLead {
			t.Fatalf("lead %d exceeded bound at access %d", tu.lead, i)
		}
	}
}

func TestCursorReanchorsOffStream(t *testing.T) {
	p := New(DefaultOptions(), testBridge())
	lapA := seqLines(1000, 256, 7)
	lapB := seqLines(100000, 256, 11)
	feed(p, 1, lapA)
	feed(p, 1, lapA)
	// Jump to an unrelated region: the cursor must not keep issuing lapA
	// lines for long.
	var buf []prefetch.Request
	staleIssues := 0
	for i, l := range lapB {
		buf = p.Train(prefetch.Event{Now: uint64(i * 10), PC: 1, Addr: mem.AddrOf(l)}, buf[:0])
		for _, r := range buf {
			if mem.LineOf(r.Addr) < 10000 { // a lapA address
				staleIssues++
			}
		}
	}
	if staleIssues > maxLead {
		t.Errorf("%d stale lapA prefetches after the stream moved", staleIssues)
	}
}

func TestIssuedRingDeduplicates(t *testing.T) {
	p := New(DefaultOptions(), testBridge())
	lap := seqLines(2000, 400, 5)
	feed(p, 1, lap)
	reqs := feed(p, 1, lap)
	counts := map[mem.Addr]int{}
	for _, r := range reqs {
		counts[r.Addr]++
	}
	for a, n := range counts {
		if n > 3 {
			t.Errorf("address %#x issued %d times within one lap", a, n)
		}
	}
}

func TestWasIssuedRing(t *testing.T) {
	tu := &tuEntry{}
	for i := 0; i < len(tu.issued)+10; i++ {
		tu.markIssued(mem.Line(i + 1))
	}
	if tu.wasIssued(1) {
		t.Error("oldest entry should have rotated out")
	}
	if !tu.wasIssued(mem.Line(len(tu.issued) + 10)) {
		t.Error("newest entry missing from ring")
	}
}

func TestOptionsDefaultsApplied(t *testing.T) {
	p := New(Options{}, testBridge())
	if p.opt.StreamLength != 4 {
		t.Errorf("zero options stream length = %d, want 4 (defaults)", p.opt.StreamLength)
	}
	o := DefaultOptions()
	o.MaxDegree = 0
	p2 := New(o, testBridge())
	if p2.opt.MaxDegree != p2.opt.StreamLength {
		t.Errorf("MaxDegree default = %d, want stream length", p2.opt.MaxDegree)
	}
}

func TestBufferlessVariantHasFixedDegree(t *testing.T) {
	o := DefaultOptions()
	o.MetaBufferSize = 0
	p := New(o, testBridge())
	if !p.opt.DisableDegreeControl {
		t.Error("bufferless variant should pin the degree (instability is meaningless)")
	}
}

func TestStreamLengthSweepCapacity(t *testing.T) {
	// The store capacity must follow the Section V-C1 packing per length.
	for _, k := range []int{2, 3, 4, 5, 8, 16} {
		o := DefaultOptions()
		o.StreamLength = k
		o.MaxDegree = 4
		p := New(o, testBridge())
		if got := p.store.StreamLength(); got != k {
			t.Errorf("store stream length = %d, want %d", got, k)
		}
	}
}
