package spp_test

import (
	"testing"

	"streamline/internal/prefetch"
	"streamline/internal/prefetch/ptest"
	"streamline/internal/prefetch/spp"
)

func TestConformance(t *testing.T) {
	cfgs := map[string]spp.Config{
		"default": spp.DefaultConfig,
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			ptest.Exercise(t, func() prefetch.Prefetcher { return spp.New(cfg) })
		})
	}
}

// TestOracle runs this engine's request stream against the differential
// cache oracle (see ptest.Oracle).
func TestOracle(t *testing.T) {
	ptest.Oracle(t, func() prefetch.Prefetcher { return spp.New(spp.DefaultConfig) })
}
