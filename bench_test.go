package streamline_test

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each runs the corresponding experiment from internal/exp at a
// reduced scale (a trimmed workload subset on the scaled-down hierarchy) so
// `go test -bench=. -benchmem` regenerates every result in minutes; the
// cmd/experiments binary produces the full versions. Key quantities are
// reported as custom benchmark metrics.

import (
	"strconv"
	"strings"
	"testing"

	"streamline/internal/exp"
)

// benchScale trims the Small scale further: three representative irregular
// workloads (a chase, a gather, a frontier traversal) plus one regular and
// one cache-resident workload keep each benchmark to a few seconds.
func benchScale() exp.Scale {
	sc := exp.Small
	sc.Workloads = []string{"sphinx06", "soplex06", "bfs", "libquantum06", "bzip206"}
	sc.Warmup = 300_000
	sc.Measure = 700_000
	sc.MixCount = 2
	return sc
}

// runExperiment executes one experiment per benchmark iteration and reports
// selected metrics parsed from its tables.
func runExperiment(b *testing.B, id string, metrics map[string]cell) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		runner := exp.NewRunner(benchScale())
		tables := e.Run(runner)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
		if i == 0 {
			for name, c := range metrics {
				if v, ok := lookup(tables, c); ok {
					b.ReportMetric(v, name)
				}
			}
		}
	}
}

// cell addresses one numeric value in an experiment's output tables.
type cell struct {
	table string // table ID ("" = first table)
	row   string // row label (first column)
	col   int    // column index
}

func lookup(tables []exp.Table, c cell) (float64, bool) {
	for _, t := range tables {
		if c.table != "" && t.ID != c.table {
			continue
		}
		for _, row := range t.Rows {
			if len(row) > c.col && row[0] == c.row {
				s := strings.TrimSuffix(row[c.col], "%")
				if v, err := strconv.ParseFloat(s, 64); err == nil {
					return v, true
				}
			}
		}
		if c.table == "" {
			break
		}
	}
	return 0, false
}

func BenchmarkTable1Partitioning(b *testing.B) {
	runExperiment(b, "table1", map[string]cell{
		"FTS-retention-small-%": {row: "FTS", col: 1},
		"RUW-resize-blocks":     {row: "RUW", col: 3},
	})
}

func BenchmarkTable2Parameters(b *testing.B) {
	runExperiment(b, "table2", nil)
}

func BenchmarkFig9SingleCore(b *testing.B) {
	runExperiment(b, "fig9", map[string]cell{
		"triangel-geomean":   {row: "geomean-all", col: 2},
		"streamline-geomean": {row: "geomean-all", col: 3},
	})
}

func BenchmarkFig10aMultiCore(b *testing.B) {
	runExperiment(b, "fig10a", map[string]cell{
		"streamline-2core": {row: "2", col: 2},
	})
}

func BenchmarkFig10bMixWinRate(b *testing.B) {
	runExperiment(b, "fig10b", nil)
}

func BenchmarkFig10cBandwidth(b *testing.B) {
	runExperiment(b, "fig10c", map[string]cell{
		"streamline-1x-bw": {row: "1.00x", col: 2},
	})
}

func BenchmarkFig10deCoverageAccuracy(b *testing.B) {
	runExperiment(b, "fig10de", map[string]cell{
		"triangel-coverage-%":   {row: "mean", col: 1},
		"streamline-coverage-%": {row: "mean", col: 2},
	})
}

func BenchmarkFig10fDegree(b *testing.B) {
	runExperiment(b, "fig10f", map[string]cell{
		"streamline-degree4": {row: "4", col: 2},
	})
}

func BenchmarkFig11abBerti(b *testing.B) {
	runExperiment(b, "fig11ab", map[string]cell{
		"streamline-geomean": {table: "fig11a", row: "geomean-all", col: 3},
	})
}

func BenchmarkFig11cdL2Prefetchers(b *testing.B) {
	runExperiment(b, "fig11cd", map[string]cell{
		"streamline-over-ipcp": {table: "fig11c", row: "ipcp", col: 3},
	})
}

func BenchmarkFig12aStreamLength(b *testing.B) {
	runExperiment(b, "fig12a", map[string]cell{
		"len4-coverage-%":  {row: "4", col: 3},
		"len16-coverage-%": {row: "16", col: 3},
	})
}

func BenchmarkFig12bRedundancy(b *testing.B) {
	runExperiment(b, "fig12b", map[string]cell{
		"redundancy-noSA-%": {row: "mean", col: 1},
		"redundancy-SA-%":   {row: "mean", col: 2},
	})
}

func BenchmarkFig12cMetadataBuffer(b *testing.B) {
	runExperiment(b, "fig12c", map[string]cell{
		"buf3-alignment-%": {row: "3", col: 1},
	})
}

func BenchmarkFig13aStorageEfficiency(b *testing.B) {
	runExperiment(b, "fig13a", map[string]cell{
		"streamline-half-speedup": {row: "streamline-0.5x", col: 1},
		"triangel-full-speedup":   {row: "triangel-1x", col: 1},
	})
}

func BenchmarkFig13bMetadataTraffic(b *testing.B) {
	runExperiment(b, "fig13b", map[string]cell{
		"traffic-ratio-at-max-%": {row: "128KB", col: 3},
	})
}

func BenchmarkFig13cCorrelationHitRate(b *testing.B) {
	runExperiment(b, "fig13c", map[string]cell{
		"streamline-tpmj-coverage-%": {table: "fig13c", row: "streamline-tpmj", col: 1},
	})
}

func BenchmarkFig14Ablation(b *testing.B) {
	runExperiment(b, "fig14", map[string]cell{
		"unopt-coverage-%": {row: "unopt", col: 1},
		"full-coverage-%":  {row: "streamline", col: 1},
	})
}

func BenchmarkFig15Filtering(b *testing.B) {
	runExperiment(b, "fig15", map[string]cell{
		"realign-quarter-speedup": {row: "filtered-realign-4", col: 3},
	})
}

func BenchmarkSubsetDefinition(b *testing.B) {
	runExperiment(b, "subset", nil)
}

func BenchmarkExtBypass(b *testing.B) {
	runExperiment(b, "ext-bypass", nil)
}

func BenchmarkExtOffchip(b *testing.B) {
	runExperiment(b, "ext-offchip", nil)
}

func BenchmarkExtCompression(b *testing.B) {
	runExperiment(b, "ext-compression", nil)
}

func BenchmarkWorkloadCharacterization(b *testing.B) {
	runExperiment(b, "workloads", nil)
}

func BenchmarkExtAliasing(b *testing.B) {
	runExperiment(b, "ext-aliasing", map[string]cell{
		"alias-rate-6bit-%": {row: "6", col: 2},
	})
}
