// Package mem defines the basic memory-system vocabulary shared by every
// component of the simulator: byte addresses, cache-line addresses, program
// counters, and the access records that flow through the cache hierarchy.
package mem

import "fmt"

// Cache-line geometry. The entire simulator assumes 64-byte lines, matching
// the configuration in Table II of the paper.
const (
	LineShift = 6
	LineSize  = 1 << LineShift // bytes per cache line
)

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Line is a cache-line address (a byte address with the offset bits removed).
// Prefetcher metadata correlates Line values, never byte addresses.
type Line uint64

// PC identifies the load/store instruction that issued an access. Temporal
// prefetchers localize their training per PC.
type PC uint64

// LineOf returns the cache line containing the byte address a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// AddrOf returns the base byte address of line l.
func AddrOf(l Line) Addr { return Addr(l) << LineShift }

// Offset returns the byte offset of a within its cache line.
func Offset(a Addr) uint64 { return uint64(a) & (LineSize - 1) }

// Kind distinguishes the flavors of traffic observed by a cache level.
type Kind uint8

const (
	// Load is a demand data read.
	Load Kind = iota
	// Store is a demand data write.
	Store
	// Ifetch is an instruction fetch.
	Ifetch
	// Prefetch is a hardware prefetch request.
	Prefetch
	// Writeback is a dirty eviction propagating downward.
	Writeback
	// MetaRead is a temporal-prefetcher metadata read served by the LLC.
	MetaRead
	// MetaWrite is a temporal-prefetcher metadata write served by the LLC.
	MetaWrite
)

// String returns the conventional short name of the access kind.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Ifetch:
		return "ifetch"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	case MetaRead:
		return "meta-read"
	case MetaWrite:
		return "meta-write"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsDemand reports whether the access kind is demand traffic (loads, stores,
// instruction fetches), as opposed to prefetch or metadata traffic.
func (k Kind) IsDemand() bool { return k == Load || k == Store || k == Ifetch }

// IsMeta reports whether the access kind is prefetcher-metadata traffic.
func (k Kind) IsMeta() bool { return k == MetaRead || k == MetaWrite }

// Access is a single memory reference presented to a cache level.
type Access struct {
	PC   PC
	Addr Addr
	Kind Kind
	Core int
}

// Line returns the cache line touched by the access.
func (a Access) Line() Line { return LineOf(a.Addr) }

// HashLine64 mixes a cache-line address into a full 64-bit hash using the
// splitmix64 finalizer (cheap, well-distributed, deterministic). Consumers
// that need several independent hash functions of the same line — a set
// index, a trigger tag, a partial tag — must slice DISJOINT bit ranges of
// this value; masking the same value to different widths yields correlated
// hashes.
func HashLine64(l Line) uint64 {
	x := uint64(l)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashLine hashes a cache-line address into nbits bits. It is the shared
// trigger-hash used by the on-chip temporal prefetchers: Triage, Triangel,
// and Streamline all store hashed (not full) trigger addresses, accepting a
// small aliasing probability in exchange for compact metadata.
func HashLine(l Line, nbits uint) uint64 {
	return HashLine64(l) & ((1 << nbits) - 1)
}

// HashPC hashes a program counter into nbits bits, used for compact PC
// signatures in samplers and perceptron features.
func HashPC(pc PC, nbits uint) uint64 {
	x := uint64(pc) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	return x & ((1 << nbits) - 1)
}

// RateLimiter models a throughput-limited resource (a cache port, a DRAM
// channel or bank) as a fluid of work accumulated in coarse time buckets.
// Each access charges its occupancy cost to the bucket its timestamp falls
// in; once a bucket exceeds capacity, further accesses in it are delayed
// into the spill. Because the bucket is addressed by the access's own
// timestamp, the model is insensitive to arrival order — prefetch chains
// stamped ahead of the demands that trigger them cannot stall unrelated
// earlier-stamped work, which next-free ratchet models get badly wrong.
type RateLimiter struct {
	// BucketCycles is the bucket width in cycles.
	BucketCycles uint64
	// Capacity is the work (in cycles of occupancy) a bucket absorbs.
	Capacity uint64

	epochs [8]uint64
	load   [8]uint64
}

// Charge records cost cycles of occupancy at time now and returns the
// queueing delay the access suffers.
func (r *RateLimiter) Charge(now, cost uint64) uint64 {
	e := now / r.BucketCycles
	b := e % uint64(len(r.load))
	if r.epochs[b] != e {
		r.epochs[b] = e
		r.load[b] = 0
	}
	r.load[b] += cost
	if r.load[b] <= r.Capacity {
		return 0
	}
	excess := r.load[b] - r.Capacity
	return (e+1)*r.BucketCycles - now + excess*r.BucketCycles/r.Capacity
}
