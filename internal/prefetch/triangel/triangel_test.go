package triangel

import (
	"math/rand"
	"testing"

	"streamline/internal/mem"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
)

func testBridge() *meta.NullBridge { return &meta.NullBridge{Sets: 256, Ways: 16, Latency: 20} }

func newTest() *Prefetcher {
	cfg := DefaultConfig()
	cfg.MetaBytes = 128 << 10
	return New(cfg, testBridge())
}

func drive(p *Prefetcher, pc mem.PC, lines []mem.Line) []prefetch.Request {
	var all, buf []prefetch.Request
	for i, l := range lines {
		buf = p.Train(prefetch.Event{Now: uint64(i * 30), PC: pc, Addr: mem.AddrOf(l)}, buf[:0])
		all = append(all, buf...)
	}
	return all
}

func chaseLap(n int, seed int64) []mem.Line {
	rng := rand.New(rand.NewSource(seed))
	lap := make([]mem.Line, n)
	for i, v := range rng.Perm(n) {
		lap[i] = mem.Line(5000 + v)
	}
	return lap
}

func laps(lap []mem.Line, n int) []mem.Line {
	var out []mem.Line
	for i := 0; i < n; i++ {
		out = append(out, lap...)
	}
	return out
}

func TestLearnsStableChase(t *testing.T) {
	p := newTest()
	lap := chaseLap(6000, 1)
	reqs := drive(p, 7, laps(lap, 6))
	if len(reqs) < len(lap) {
		t.Fatalf("only %d prefetches over %d accesses", len(reqs), 6*len(lap))
	}
	inStream := map[mem.Line]bool{}
	for _, l := range lap {
		inStream[l] = true
	}
	good := 0
	for _, r := range reqs {
		if inStream[mem.LineOf(r.Addr)] {
			good++
		}
	}
	if frac := float64(good) / float64(len(reqs)); frac < 0.9 {
		t.Errorf("only %.0f%% of prefetches on-stream", frac*100)
	}
}

func TestConfidenceRisesOnStableStream(t *testing.T) {
	p := newTest()
	lap := chaseLap(4000, 2)
	drive(p, 7, laps(lap, 6))
	st := p.conf(uint32(mem.HashPC(7, 24)))
	if st.reuseConf < 10 {
		t.Errorf("reuseConf = %d after stable laps, want >= 10", st.reuseConf)
	}
	if st.patternConf < 10 {
		t.Errorf("patternConf = %d after stable laps, want >= 10", st.patternConf)
	}
}

func TestScanPCBypassed(t *testing.T) {
	// A pure scan: addresses never recur, so reuse confidence must fall
	// and the PC must stop inserting metadata (the mcf protection).
	p := newTest()
	var lines []mem.Line
	for i := 0; i < 60000; i++ {
		lines = append(lines, mem.Line(1_000_000+i))
	}
	drive(p, 9, lines)
	st := p.conf(uint32(mem.HashPC(9, 24)))
	if st.reuseConf >= int8(p.cfg.ReuseThreshold) {
		t.Errorf("scan PC reuseConf = %d, want < %d (bypass)", st.reuseConf, p.cfg.ReuseThreshold)
	}
	// Inserts must stop growing once confidence collapses: compare totals
	// in the second half against the first.
	p2 := newTest()
	drive(p2, 9, lines[:30000])
	firstHalf := p2.store.Stats.Inserts
	drive(p2, 9, lines[30000:])
	secondHalf := p2.store.Stats.Inserts - firstHalf
	if secondHalf*2 > firstHalf {
		t.Errorf("scan PC still inserting: %d then %d", firstHalf, secondHalf)
	}
}

func TestLookaheadEngagesWithHysteresis(t *testing.T) {
	p := newTest()
	lap := chaseLap(4000, 3)
	drive(p, 7, laps(lap, 6))
	st := p.conf(uint32(mem.HashPC(7, 24)))
	if !st.laMode {
		t.Error("lookahead not engaged on a highly stable stream")
	}
}

func TestMRBReducesMetadataReads(t *testing.T) {
	p := newTest()
	lap := chaseLap(4000, 4)
	drive(p, 7, laps(lap, 6))
	if p.MRBHits == 0 {
		t.Error("MRB never hit")
	}
}

func TestDynamicResizeGeneratesRearrangeTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MetaBytes = 128 << 10
	cfg.ResizeEpoch = 4096
	p := New(cfg, testBridge())
	// Alternate phases of temporal-friendly and data-friendly behavior to
	// push the partitioner around.
	lap := chaseLap(6000, 5)
	drive(p, 7, laps(lap, 4))
	// Feed strong data utility so the partitioner shrinks the metadata.
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300000; i++ {
		p.ObserveLLCData(rng.Intn(256)&^63, mem.Line(rng.Intn(128)))
		p.maybeResize()
	}
	if p.store.Stats.Resizes == 0 {
		t.Skip("partitioner never resized in this scenario")
	}
	if p.store.Stats.RearrangeReads+p.store.Stats.RearrangeWrites == 0 {
		t.Error("Triangel resized without rearrangement traffic (RUW must shuffle)")
	}
}

func TestFixedBytesPinsPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MetaBytes = 128 << 10
	cfg.FixedBytes = 32 << 10
	p := New(cfg, testBridge())
	drive(p, 7, laps(chaseLap(3000, 7), 4))
	if got := p.store.SizeBytes(); got != 32<<10 {
		t.Errorf("store size = %d, want pinned 32KB", got)
	}
	if p.store.Stats.Resizes != 1 { // the initial pin only
		t.Errorf("resizes = %d, want 1", p.store.Stats.Resizes)
	}
}

func TestInterfaces(t *testing.T) {
	p := newTest()
	var _ prefetch.Prefetcher = p
	var _ prefetch.MetaReporter = p
	var _ prefetch.LLCDataObserver = p
	if p.Name() != "triangel" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestIssuedRingPreventsDuplicates(t *testing.T) {
	p := newTest()
	lap := chaseLap(3000, 8)
	reqs := drive(p, 7, laps(lap, 6))
	seen := map[mem.Addr]int{}
	dups := 0
	for _, r := range reqs {
		seen[r.Addr]++
	}
	for _, n := range seen {
		if n > 8 { // issued once per lap-ish is fine; tight loops are not
			dups++
		}
	}
	if dups > len(seen)/10 {
		t.Errorf("%d of %d addresses re-issued excessively", dups, len(seen))
	}
}
