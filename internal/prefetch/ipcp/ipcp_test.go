package ipcp

import (
	"testing"

	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

func drive(p *Prefetcher, pc mem.PC, lines []mem.Line) []prefetch.Request {
	var all, buf []prefetch.Request
	for i, l := range lines {
		buf = p.Train(prefetch.Event{Now: uint64(i), PC: pc, Addr: mem.AddrOf(l)}, buf[:0])
		all = append(all, buf...)
	}
	return all
}

func TestConstantStrideClass(t *testing.T) {
	p := New(DefaultConfig)
	var lines []mem.Line
	for i := 0; i < 20; i++ {
		lines = append(lines, mem.Line(100+i*5))
	}
	reqs := drive(p, 1, lines)
	if len(reqs) == 0 {
		t.Fatal("CS class issued nothing on constant stride")
	}
	d := int64(mem.LineOf(reqs[len(reqs)-1].Addr)) - int64(lines[len(lines)-1])
	if d%5 != 0 {
		t.Errorf("CS prefetch delta %d not stride multiple", d)
	}
}

func TestComplexStrideClass(t *testing.T) {
	// A repeating delta pattern +1,+2,+3 defeats CS but trains CPLX.
	p := New(DefaultConfig)
	var lines []mem.Line
	l := mem.Line(1000)
	deltas := []int64{1, 2, 3}
	for i := 0; i < 600; i++ {
		l += mem.Line(deltas[i%3])
		lines = append(lines, l)
	}
	reqs := drive(p, 1, lines)
	if len(reqs) == 0 {
		t.Fatal("CPLX class issued nothing on a repeating delta pattern")
	}
	future := map[mem.Line]bool{}
	for _, ln := range lines {
		future[ln] = true
	}
	hit := 0
	for _, r := range reqs {
		if future[mem.LineOf(r.Addr)] {
			hit++
		}
	}
	if float64(hit)/float64(len(reqs)) < 0.6 {
		t.Errorf("only %d/%d CPLX prefetches on-stream", hit, len(reqs))
	}
}

func TestRandomQuiet(t *testing.T) {
	p := New(DefaultConfig)
	x := uint64(3)
	var lines []mem.Line
	for i := 0; i < 500; i++ {
		x = x*6364136223846793005 + 1
		lines = append(lines, mem.Line(x>>18))
	}
	reqs := drive(p, 1, lines)
	if len(reqs) > 60 {
		t.Errorf("%d prefetches on random stream", len(reqs))
	}
}

func TestDefaults(t *testing.T) {
	p := New(Config{})
	if p.Name() != "ipcp" {
		t.Errorf("name = %q", p.Name())
	}
}
