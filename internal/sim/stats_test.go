package sim

import (
	"testing"
	"testing/quick"

	"streamline/internal/cache"
	"streamline/internal/meta"
)

func TestSubStatsSelfIsZero(t *testing.T) {
	f := func(a, b, c, d, e uint64) bool {
		s := cache.Stats{
			DemandAccesses: a, DemandHits: b, DemandMisses: c,
			PrefetchFills: d, UsefulPrefetches: e,
		}
		return subStats(s, s) == (cache.Stats{})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubMetaSelfIsZero(t *testing.T) {
	f := func(a, b, c uint64) bool {
		s := meta.Stats{Lookups: a, TriggerHits: b, Reads: c}
		return subMeta(s, s) == (meta.Stats{})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubStatsDeltas(t *testing.T) {
	base := cache.Stats{DemandAccesses: 10, DemandHits: 4, Writebacks: 1}
	fin := cache.Stats{DemandAccesses: 25, DemandHits: 14, Writebacks: 3}
	d := subStats(fin, base)
	if d.DemandAccesses != 15 || d.DemandHits != 10 || d.Writebacks != 2 {
		t.Errorf("delta = %+v", d)
	}
}

func TestCoreResultHelpers(t *testing.T) {
	r := CoreResult{
		Instructions: 2000,
		L2: cache.Stats{
			DemandMisses: 10, PrefetchFills: 8, UsefulPrefetches: 6,
		},
	}
	if got := r.L2MPKI(); got != 5 {
		t.Errorf("MPKI = %v, want 5", got)
	}
	if got := r.PrefetchAccuracy(); got != 0.75 {
		t.Errorf("accuracy = %v, want 0.75", got)
	}
	var zero CoreResult
	if zero.L2MPKI() != 0 || zero.PrefetchAccuracy() != 0 {
		t.Error("zero-value helpers should return 0")
	}
}

func TestResultHelpers(t *testing.T) {
	var empty Result
	if empty.IPC() != 0 {
		t.Error("empty result IPC should be 0")
	}
	r := Result{Cores: []CoreResult{
		{IPC: 1.5, Meta: meta.Stats{Reads: 3, Writes: 2}},
		{IPC: 0.5, Meta: meta.Stats{Reads: 1, RearrangeReads: 4}},
	}}
	if r.IPC() != 1.5 {
		t.Errorf("IPC = %v, want core 0's", r.IPC())
	}
	if got := r.TotalMetaTraffic(); got != 10 {
		t.Errorf("TotalMetaTraffic = %d, want 10", got)
	}
}
