package cache

import (
	"testing"
	"testing/quick"

	"streamline/internal/audit"
	"streamline/internal/mem"
)

// Property-based tests over the cache's replacement/eviction machinery:
// invariants that must hold for every geometry under arbitrary interleavings
// of lookups, fills, reservations, and MSHR traffic (mirroring the metadata
// store's property suite).

// anyGeometry derives a random but valid cache configuration.
func anyGeometry(setSel, waySel uint8) Config {
	return Config{
		Name:    "prop",
		Sets:    4 << (setSel % 5), // 4..64, power of two
		Ways:    1 + int(waySel%8), // 1..8
		Latency: 10,
		MSHRs:   4,
		Ports:   1,
	}
}

// driveOps replays an encoded operation sequence against c. Each op word
// selects an action from its low bits and a line from its high bits; MSHR
// reservations are always paired with completions, as every access path in
// the simulator does.
func driveOps(c *Cache, ops []uint16) {
	now := uint64(0)
	for _, op := range ops {
		now += uint64(op%7) + 1
		l := mem.Line(op >> 4)
		acc := mem.Access{Addr: mem.AddrOf(l), Kind: mem.Load}
		switch op % 8 {
		case 0, 1:
			c.Lookup(now, acc)
		case 2:
			if !c.Lookup(now, acc).Hit {
				c.Fill(acc, now+50, SrcDemand)
			}
		case 3:
			c.Fill(acc, now+50, SrcL2)
		case 4:
			acc.Kind = mem.Store
			if !c.Lookup(now, acc).Hit {
				c.Fill(acc, now+50, SrcDemand)
			}
		case 5:
			c.MarkDirty(l)
		case 6:
			c.Reserve(c.SetOf(l), int(op>>4)%(c.cfg.Ways+1))
		case 7:
			slot, delay := c.MSHRReserve(now)
			c.MSHRComplete(slot, now+delay+20)
		}
	}
}

func TestPropertyOccupancyAndAccounting(t *testing.T) {
	f := func(setSel, waySel uint8, ops []uint16) bool {
		c := New(anyGeometry(setSel, waySel))
		driveOps(c, ops)

		// Occupancy never exceeds the capacity left to data.
		capacity := 0
		for s := 0; s < c.Sets(); s++ {
			capacity += c.DataWays(s)
		}
		if c.OccupiedLines() > capacity {
			t.Logf("occupied %d > data capacity %d", c.OccupiedLines(), capacity)
			return false
		}

		// Demand accounting: every access is exactly one hit or one miss.
		if c.Stats.DemandHits+c.Stats.DemandMisses != c.Stats.DemandAccesses {
			t.Logf("hits %d + misses %d != accesses %d",
				c.Stats.DemandHits, c.Stats.DemandMisses, c.Stats.DemandAccesses)
			return false
		}

		// The audit's full sweep agrees: no violation under any sequence.
		a := audit.New(0)
		c.AuditScan(a, 0)
		if a.Total() != 0 {
			for _, v := range a.Violations() {
				t.Log(v)
			}
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFillThenProbe(t *testing.T) {
	f := func(setSel, waySel uint8, raw uint16, ops []uint16) bool {
		c := New(anyGeometry(setSel, waySel))
		driveOps(c, ops)
		l := mem.Line(raw)
		set := c.SetOf(l)
		c.Fill(mem.Access{Addr: mem.AddrOf(l), Kind: mem.Load}, 100, SrcDemand)
		if c.DataWays(set) == 0 {
			// Fully reserved set: the fill is dropped by design.
			return !c.Probe(l)
		}
		return c.Probe(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLookupResidentEquivalence: LookupResident must be
// decision-identical to the Probe-then-Lookup sequence it replaced on the
// promote path — same hit/miss answer, same LookupResult, same statistics,
// and the same resident-line state afterwards — for every geometry, cache
// history, and randomized probe stream. Two identically-driven caches are
// advanced in lockstep, one per protocol.
func TestPropertyLookupResidentEquivalence(t *testing.T) {
	f := func(setSel, waySel uint8, ops []uint16, probes []uint16) bool {
		one := New(anyGeometry(setSel, waySel))
		two := New(anyGeometry(setSel, waySel))
		driveOps(one, ops)
		driveOps(two, ops)

		now := uint64(0)
		for i, p := range probes {
			now += uint64(p%7) + 1
			l := mem.Line(p >> 4)
			kind := mem.Load
			switch p % 3 {
			case 1:
				kind = mem.Store
			case 2:
				kind = mem.Prefetch
			}
			acc := mem.Access{Addr: mem.AddrOf(l), Kind: kind}

			r1, ok1 := one.LookupResident(now, acc)
			var r2 LookupResult
			ok2 := two.Probe(l)
			if ok2 {
				r2 = two.Lookup(now, acc)
			}
			if ok1 != ok2 || r1 != r2 {
				t.Logf("probe %d line %#x kind %v: LookupResident (%+v,%v) vs Probe+Lookup (%+v,%v)",
					i, uint64(l), kind, r1, ok1, r2, ok2)
				return false
			}
			if one.Stats != two.Stats {
				t.Logf("probe %d: stats diverged\nresident %+v\nprobe+lookup %+v",
					i, one.Stats, two.Stats)
				return false
			}
			// Interleave a fill on both sides so later probes see evolving
			// residency, not just the driveOps endstate.
			if p%5 == 0 {
				fl := mem.Line(p >> 6)
				fa := mem.Access{Addr: mem.AddrOf(fl), Kind: mem.Load}
				one.Fill(fa, now+50, SrcL2)
				two.Fill(fa, now+50, SrcL2)
			}
		}

		var s1, s2 []LineState
		one.ForEachLineState(func(ls LineState) { s1 = append(s1, ls) })
		two.ForEachLineState(func(ls LineState) { s2 = append(s2, ls) })
		if len(s1) != len(s2) {
			t.Logf("line counts diverged: %d vs %d", len(s1), len(s2))
			return false
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Logf("line state %d diverged: %+v vs %+v", i, s1[i], s2[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyReserveFlushesRegion(t *testing.T) {
	f := func(setSel, waySel uint8, ops []uint16, set uint8, ways uint8) bool {
		c := New(anyGeometry(setSel, waySel))
		driveOps(c, ops)
		s := int(set) % c.Sets()
		w := int(ways) % (c.Ways() + 1)
		before := c.OccupiedLines()
		flushed, dirty := c.Reserve(s, w)
		if dirty > flushed {
			return false
		}
		if c.ReservedWays(s) != w {
			return false
		}
		// Reserved region holds no valid data lines.
		for way := 0; way < w; way++ {
			if c.sets[s][way].valid {
				return false
			}
		}
		// Flushes are the only occupancy change a Reserve makes.
		return c.OccupiedLines() == before-flushed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
