package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreDecode feeds arbitrary bytes through both decode paths — the
// single-line DecodeRecord and a full Open over a results file containing the
// input — and checks the store's core safety property: no invalid record is
// ever accepted, and every accepted record verifies.
//
// The seed corpus under testdata/fuzz/FuzzStoreDecode covers the interesting
// classes: a valid record, a truncated record, a bit-flipped payload, a
// wrong-length key, and duplicate lines.
func FuzzStoreDecode(f *testing.F) {
	// A genuine record, produced exactly as Put would.
	raw, _ := json.Marshal(map[string]int{"n": 1})
	valid := mustMarshal(Record{
		Key: Key("fuzz", "seed"), ID: "fuzz|seed",
		Sum: payloadSum(raw), Payload: raw,
	})
	f.Add(append(valid, '\n'))
	f.Add(valid[:len(valid)/2]) // truncated mid-record
	flipped := append([]byte{}, valid...)
	flipped[bytes.Index(flipped, []byte(`"n":1`))+4] = '2' // payload bit-flip
	f.Add(append(flipped, '\n'))
	f.Add([]byte(`{"key":"short","id":"x","sha256":"deadbeef","payload":{}}` + "\n"))
	f.Add(append(append(append([]byte{}, valid...), '\n'), append(valid, '\n')...)) // duplicate
	f.Add([]byte("{}\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: DecodeRecord accepts a line only if the decoded
		// record re-verifies and re-encodes to an equivalent record.
		for _, line := range bytes.Split(data, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			rec, err := DecodeRecord(line)
			if err != nil {
				continue
			}
			if verr := rec.Verify(); verr != nil {
				t.Fatalf("DecodeRecord accepted a record that fails Verify: %v\nline: %q", verr, line)
			}
			again, err := DecodeRecord(mustMarshal(rec))
			if err != nil || again.Key != rec.Key || again.Sum != rec.Sum {
				t.Fatalf("accepted record does not round-trip: %v", err)
			}
		}

		// Property 2: opening a store over the raw bytes never errors out
		// on content (only quarantines), never loads an unverifiable
		// record, and loaded+quarantined accounts for every line.
		dir := t.TempDir()
		s, err := Create(dir, testManifest())
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
		if err := os.WriteFile(filepath.Join(dir, "results.jsonl"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, testManifest())
		if err != nil {
			t.Fatalf("Open failed on arbitrary results content (should quarantine, not error): %v", err)
		}
		lines := 0
		for _, line := range bytes.Split(data, []byte("\n")) {
			if len(bytes.TrimSpace(line)) > 0 {
				lines++
			}
		}
		if s2.Loaded()+s2.Quarantined() < lines {
			t.Fatalf("lines unaccounted for: %d lines, %d loaded + %d quarantined",
				lines, s2.Loaded(), s2.Quarantined())
		}
		s2.Close()

		// Property 3: recovery is idempotent — the compacted file reopens
		// with the same records and nothing further to quarantine.
		s3, err := Open(dir, testManifest())
		if err != nil {
			t.Fatalf("reopen after compaction failed: %v", err)
		}
		defer s3.Close()
		if s3.Loaded() != s2.Loaded() || s3.Quarantined() != 0 {
			t.Fatalf("compaction not idempotent: first open loaded %d, second loaded %d with %d quarantined",
				s2.Loaded(), s3.Loaded(), s3.Quarantined())
		}
	})
}

// TestFuzzSeedCorpusCommitted pins the committed corpus so the fuzz smoke in
// the verify skill always starts from the interesting record classes.
func TestFuzzSeedCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzStoreDecode")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	if len(ents) < 3 {
		t.Fatalf("seed corpus has %d entries, want >= 3", len(ents))
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, []byte("go test fuzz v1\n")) {
			t.Errorf("%s: not a go fuzz corpus file", e.Name())
		}
	}
}
