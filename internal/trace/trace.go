// Package trace defines the instruction-trace abstraction consumed by the
// simulator. A trace is a stream of Record values, each describing one
// memory-referencing instruction together with the number of non-memory
// instructions that precede it. Traces are produced either by the synthetic
// workload generators in internal/workloads or read back from a compact
// binary file written by Writer.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"streamline/internal/mem"
)

// Record describes one memory-referencing instruction in program order.
type Record struct {
	// PC is the program counter of the memory instruction.
	PC mem.PC
	// Addr is the byte address referenced.
	Addr mem.Addr
	// IsWrite marks stores; everything else is a load.
	IsWrite bool
	// DependsOnPrev marks a load whose address was produced by the
	// immediately preceding memory instruction (a pointer chase). The
	// timing model serializes such loads, which is what makes temporal
	// prefetching profitable on linked traversals.
	DependsOnPrev bool
	// NonMem is the number of non-memory instructions executed between the
	// previous record and this one. It lets the timing model account for
	// compute density without materializing every instruction.
	NonMem uint8
}

// Instructions returns the number of instructions the record represents:
// the memory instruction itself plus its preceding non-memory instructions.
func (r Record) Instructions() uint64 { return 1 + uint64(r.NonMem) }

// Trace is a resettable stream of records. Next returns the next record and
// true, or a zero Record and false at end of trace. Reset rewinds the trace
// to its beginning so a single definition can serve warmup and measurement.
type Trace interface {
	Next() (Record, bool)
	Reset()
}

// Slice is an in-memory trace over a fixed record slice.
type Slice struct {
	recs []Record
	pos  int
}

// NewSlice returns a trace that replays recs.
func NewSlice(recs []Record) *Slice { return &Slice{recs: recs} }

// Next implements Trace.
func (s *Slice) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Reset implements Trace.
func (s *Slice) Reset() { s.pos = 0 }

// Len returns the number of records in the trace.
func (s *Slice) Len() int { return len(s.recs) }

// Looping wraps a trace so that it restarts transparently when exhausted,
// which multi-core simulations use to keep all cores busy until the slowest
// one finishes its measured instruction budget.
type Looping struct {
	inner Trace
	// Laps counts how many times the inner trace wrapped around.
	Laps int
}

// NewLooping returns a trace that replays inner forever.
func NewLooping(inner Trace) *Looping { return &Looping{inner: inner} }

// Next implements Trace. It never returns false unless the inner trace is
// empty.
func (l *Looping) Next() (Record, bool) {
	r, ok := l.inner.Next()
	if ok {
		return r, true
	}
	l.inner.Reset()
	l.Laps++
	r, ok = l.inner.Next()
	return r, ok
}

// Reset implements Trace.
func (l *Looping) Reset() {
	l.inner.Reset()
	l.Laps = 0
}

// Limit wraps a trace and stops it after a fixed instruction budget.
type Limit struct {
	inner  Trace
	budget uint64
	used   uint64
}

// NewLimit returns a trace that yields records from inner until the total
// instruction count (memory + non-memory) reaches budget.
func NewLimit(inner Trace, budget uint64) *Limit {
	return &Limit{inner: inner, budget: budget}
}

// Next implements Trace.
func (l *Limit) Next() (Record, bool) {
	if l.used >= l.budget {
		return Record{}, false
	}
	r, ok := l.inner.Next()
	if !ok {
		return Record{}, false
	}
	l.used += r.Instructions()
	return r, true
}

// Reset implements Trace.
func (l *Limit) Reset() {
	l.inner.Reset()
	l.used = 0
}

// File format: a little-endian stream of fixed-size records behind a short
// header. The format is deliberately trivial — the simulator is the only
// consumer — but it lets long synthetic traces be generated once and reused.
const (
	fileMagic   = 0x53544c4e // "STLN"
	fileVersion = 1
	recordBytes = 8 + 8 + 1 + 1 // pc, addr, flags, nonmem
)

const (
	flagWrite = 1 << 0
	flagDep   = 1 << 1
)

// Writer serializes records to an io.Writer in the trace file format.
type Writer struct {
	w     *bufio.Writer
	count uint64
}

// NewWriter writes the file header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], fileVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	var buf [recordBytes]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(r.PC))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(r.Addr))
	var flags byte
	if r.IsWrite {
		flags |= flagWrite
	}
	if r.DependsOnPrev {
		flags |= flagDep
	}
	buf[16] = flags
	buf[17] = r.NonMem
	if _, err := w.w.Write(buf[:]); err != nil {
		return fmt.Errorf("trace: writing record %d: %w", w.count, err)
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes a trace file produced by Writer. It implements Trace only
// over an io.ReadSeeker (for Reset); use ReadAll for one-shot decoding.
type Reader struct {
	rs  io.ReadSeeker
	br  *bufio.Reader
	err error
}

// ErrBadHeader is returned when a trace file does not start with the
// expected magic number and version.
var ErrBadHeader = errors.New("trace: bad file header")

// NewReader validates the header and returns a Reader positioned at the
// first record.
func NewReader(rs io.ReadSeeker) (*Reader, error) {
	r := &Reader{rs: rs}
	if err := r.rewind(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reader) rewind() error {
	if _, err := r.rs.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("trace: seeking to start: %w", err)
	}
	r.br = bufio.NewReader(r.rs)
	var hdr [8]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != fileMagic ||
		binary.LittleEndian.Uint32(hdr[4:8]) != fileVersion {
		return ErrBadHeader
	}
	r.err = nil
	return nil
}

// Next implements Trace.
func (r *Reader) Next() (Record, bool) {
	if r.err != nil {
		return Record{}, false
	}
	var buf [recordBytes]byte
	if _, err := io.ReadFull(r.br, buf[:]); err != nil {
		r.err = err
		return Record{}, false
	}
	return Record{
		PC:            mem.PC(binary.LittleEndian.Uint64(buf[0:8])),
		Addr:          mem.Addr(binary.LittleEndian.Uint64(buf[8:16])),
		IsWrite:       buf[16]&flagWrite != 0,
		DependsOnPrev: buf[16]&flagDep != 0,
		NonMem:        buf[17],
	}, true
}

// Reset implements Trace.
func (r *Reader) Reset() {
	if err := r.rewind(); err != nil {
		r.err = err
	}
}

// Err returns the first error encountered while reading, excluding io.EOF.
func (r *Reader) Err() error {
	if r.err == io.EOF {
		return nil
	}
	return r.err
}

// ReadAll decodes every record from rs into memory.
func ReadAll(rs io.ReadSeeker) ([]Record, error) {
	r, err := NewReader(rs)
	if err != nil {
		return nil, err
	}
	var recs []Record
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if err := r.Err(); err != nil && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	return recs, nil
}
