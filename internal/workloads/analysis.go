package workloads

import (
	"streamline/internal/mem"
	"streamline/internal/trace"
)

// Analysis summarizes the temporal structure of a workload's access stream:
// the quantities that determine how prefetchable it is. The experiment
// harness and tracegen use it to document the suite, and tests use it to
// pin each generator's archetype.
type Analysis struct {
	// Records and Instructions counted over the analyzed window.
	Records      uint64
	Instructions uint64
	// Stores and DependentLoads as fractions of records.
	StoreFraction     float64
	DependentFraction float64
	// FootprintLines is the number of distinct lines touched.
	FootprintLines int
	// PCs is the number of distinct program counters.
	PCs int
	// LineMultiplicity is the mean occurrences of each line within the
	// window — per-lap multiplicity drives trigger ambiguity.
	LineMultiplicity float64
	// PairStability is the fraction of per-PC consecutive-access pairs
	// (trigger, target) whose trigger, when it recurs, keeps the same
	// target — the pairwise-format accuracy ceiling.
	PairStability float64
	// SequentialFraction is the fraction of records whose line equals or
	// follows the same PC's previous line (stride-prefetchable traffic).
	SequentialFraction float64
}

// Analyze inspects the first budget instructions of the workload's trace.
func Analyze(w Workload, s Scale, seed int64, budget uint64) Analysis {
	tr := trace.NewLimit(w.NewTrace(s, seed), budget)

	var a Analysis
	lines := map[mem.Line]uint32{}
	pcs := map[mem.PC]struct{}{}
	lastPC := map[mem.PC]mem.Line{}
	pairTarget := map[[2]uint64]mem.Line{} // (pc,trigger) -> last target
	var pairSame, pairTotal uint64
	var seq uint64

	for {
		rec, ok := tr.Next()
		if !ok {
			break
		}
		a.Records++
		a.Instructions += rec.Instructions()
		if rec.IsWrite {
			a.StoreFraction++
		}
		if rec.DependsOnPrev {
			a.DependentFraction++
		}
		l := mem.LineOf(rec.Addr)
		lines[l]++
		pcs[rec.PC] = struct{}{}

		if prev, ok := lastPC[rec.PC]; ok {
			if l == prev || l == prev+1 {
				seq++
			}
			if prev != l {
				key := [2]uint64{uint64(rec.PC), uint64(prev)}
				if t, seen := pairTarget[key]; seen {
					pairTotal++
					if t == l {
						pairSame++
					}
				}
				pairTarget[key] = l
			}
		}
		lastPC[rec.PC] = l
	}
	if a.Records == 0 {
		return a
	}
	a.StoreFraction /= float64(a.Records)
	a.DependentFraction /= float64(a.Records)
	a.FootprintLines = len(lines)
	a.PCs = len(pcs)
	a.LineMultiplicity = float64(a.Records) / float64(len(lines))
	if pairTotal > 0 {
		a.PairStability = float64(pairSame) / float64(pairTotal)
	}
	a.SequentialFraction = float64(seq) / float64(a.Records)
	return a
}
