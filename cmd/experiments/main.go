// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run all -scale paper
//	experiments -run fig10a,fig13b -v
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"streamline/internal/exp"
)

func main() {
	var (
		runIDs  = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		scale   = flag.String("scale", "small", "experiment scale: small or paper")
		list    = flag.Bool("list", false, "list available experiments")
		verbose = flag.Bool("v", false, "print per-run progress")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	if *list || *runIDs == "" {
		fmt.Println("available experiments:")
		for _, e := range exp.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *runIDs == "" {
			fmt.Println("\nrun with: experiments -run <id>[,<id>...] | all")
		}
		return
	}

	var sc exp.Scale
	switch *scale {
	case "small":
		sc = exp.Small
	case "paper":
		sc = exp.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}

	var selected []exp.Experiment
	if *runIDs == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	runner := exp.NewRunner(sc)
	if *verbose {
		runner.Progress = os.Stderr
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("# %s — %s (%s scale)\n", e.ID, e.Title, sc.Name)
		for _, t := range e.Run(runner) {
			fmt.Println(t)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("# %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// writeCSV saves one result table as <dir>/<id>.csv.
func writeCSV(dir string, t exp.Table) error {
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
