package exp

import (
	"context"
	"fmt"

	"streamline/internal/core"
	"streamline/internal/mem"
	"streamline/internal/meta"
	"streamline/internal/sim"
	"streamline/internal/workloads"
)

// This file regenerates Figure 12: the stream-length sweep (missed
// triggers vs storage capacity), the redundancy/stream-alignment study, and
// the metadata-buffer-size sweep.

// runWithSystem runs one arm on one workload and returns both the result
// and the system, so prefetcher-internal state can be inspected. Results are
// memoized (single-flight, like RunMix); the returned system must be treated
// as read-only.
func (r *Runner) runWithSystem(arm Arm, workload string) (sim.Result, *sim.System) {
	return r.runSystem(arm.Name+"|"+workload, func(ctx context.Context) (sim.Result, *sim.System, error) {
		cfg := r.Scale.baseConfig(1)
		arm.Apply(&cfg, r.Scale)
		r.attachAudit(&cfg, arm.Name+"|"+workload+"|sys")
		finish := r.attachTelemetry(&cfg, arm.Name+"|"+workload+"|sys")
		sys := sim.New(cfg)
		w, err := workloads.Get(workload)
		if err != nil {
			panic(err)
		}
		sys.SetTrace(0, w.NewTrace(workloads.Scale{Footprint: r.Scale.Footprint}, r.Scale.Seed))
		r.logf("  [%s] %s (with system)\n", arm.Name, workload)
		res, err := sys.RunCtx(ctx, 0, nil)
		finish()
		if err != nil {
			return sim.Result{}, nil, err
		}
		return res, sys, nil
	})
}

// streamlineOf extracts the Streamline instance from a system.
func streamlineOf(sys *sim.System) *core.Prefetcher {
	p, _ := sys.TemporalOf(0).(*core.Prefetcher)
	return p
}

func init() {
	register(Experiment{ID: "fig12a", Title: "Stream length sweep",
		Run: func(r *Runner) []Table {
			t := Table{ID: "fig12a", Title: "stream length: capacity, missed triggers, coverage",
				Columns: []string{"length", "corr/block", "missed-triggers", "coverage", "speedup"}}
			ws := r.Scale.irregular()
			base := baseArm("stride", "")
			lengths := []int{2, 3, 4, 5, 8, 16}
			lenArms := map[int]Arm{}
			all := []Arm{base}
			for _, k := range lengths {
				k := k
				lenArms[k] = streamlineArm(fmt.Sprintf("streamline-len%d", k), "stride", "",
					func(o *core.Options) { o.StreamLength = k; o.MaxDegree = min(k, 4) })
				all = append(all, lenArms[k])
			}
			r.Precompute(Singles(all, ws))
			for _, k := range lengths {
				arm := lenArms[k]
				var cov, spd, missed []float64
				for _, w := range ws {
					b, okB := r.TryRun(base, w.Name)
					res, okA := r.TryRun(arm, w.Name)
					if !okB || !okA {
						continue // gapped workload: excluded from the means
					}
					cov = append(cov, Coverage(b, res))
					spd = append(spd, Speedup(b, res))
					m := res.Cores[0].Meta
					if m.Lookups > 0 {
						missed = append(missed, 1-m.TriggerHitRate())
					}
				}
				if len(cov) == 0 {
					t.AddRow(fmt.Sprint(k),
						fmt.Sprint(meta.CorrelationsPerBlock(meta.Stream, k)),
						GapCell, GapCell, GapCell)
					continue
				}
				t.AddRow(fmt.Sprint(k),
					fmt.Sprint(meta.CorrelationsPerBlock(meta.Stream, k)),
					Pct(Mean(missed)), Pct(Mean(cov)), F(Geomean(spd)))
			}
			t.Notes = append(t.Notes,
				"paper: coverage peaks at length 4 (31.5%); missed triggers jump from 6.8% to 25.8% past length 4")
			return []Table{t}
		}})

	register(Experiment{ID: "fig12b", Title: "Redundancy and stream alignment",
		Run: func(r *Runner) []Table {
			t := Table{ID: "fig12b", Title: "metadata redundancy with/without stream alignment",
				Columns: []string{"workload", "redundancy(no-SA)", "redundancy(SA)", "benign-share"}}
			noSA := streamlineArm("streamline-noSA-fixed", "stride", "", func(o *core.Options) {
				o.DisableAlignment = true
				o.FixedBytes = o.MetaBytes
			})
			withSA := streamlineArm("streamline-SA-fixed", "stride", "", func(o *core.Options) {
				o.FixedBytes = o.MetaBytes
			})
			ws := r.Scale.irregular()
			r.PrecomputeSystems([]Arm{noSA, withSA}, workloads.Names(ws))
			var rn, rs []float64
			for _, w := range ws {
				_, sysN := r.runWithSystem(noSA, w.Name)
				_, sysS := r.runWithSystem(withSA, w.Name)
				if sysN == nil || sysS == nil {
					// A failed system-retaining run leaves no prefetcher state
					// to inspect: gap the row, exclude it from the means.
					t.AddRow(w.Name, GapCell, GapCell, GapCell)
					continue
				}
				redN, _ := redundancy(streamlineOf(sysN).Store().DumpEntries())
				redS, benign := redundancy(streamlineOf(sysS).Store().DumpEntries())
				t.AddRow(w.Name, Pct(redN), Pct(redS), Pct(benign))
				rn, rs = append(rn, redN), append(rs, redS)
			}
			if len(rn) == 0 {
				t.AddRow("mean", GapCell, GapCell, "")
			} else {
				t.AddRow("mean", Pct(Mean(rn)), Pct(Mean(rs)), "")
			}
			t.Notes = append(t.Notes,
				"paper: stream alignment halves redundancy; 31% of remaining redundancy is benign")
			return []Table{t}
		}})

	register(Experiment{ID: "fig12c", Title: "Metadata buffer size sweep",
		Run: func(r *Runner) []Table {
			t := Table{ID: "fig12c", Title: "buffer size: alignment rate and coverage",
				Columns: []string{"buffer", "alignment-rate", "coverage", "speedup"}}
			ws := r.Scale.irregular()
			base := baseArm("stride", "")
			sizes := []int{1, 2, 3, 4, 6}
			sizeArms := map[int]Arm{}
			var sysArms []Arm
			for _, n := range sizes {
				n := n
				sizeArms[n] = streamlineArm(fmt.Sprintf("streamline-mb%d", n), "stride", "",
					func(o *core.Options) { o.MetaBufferSize = n })
				sysArms = append(sysArms, sizeArms[n])
			}
			r.Precompute(Singles([]Arm{base}, ws))
			r.PrecomputeSystems(sysArms, workloads.Names(ws))
			for _, n := range sizes {
				arm := sizeArms[n]
				var ar, cov, spd []float64
				for _, w := range ws {
					b, okB := r.TryRun(base, w.Name)
					res, sys := r.runWithSystem(arm, w.Name)
					if !okB || sys == nil {
						continue // gapped workload: excluded from the means
					}
					cov = append(cov, Coverage(b, res))
					spd = append(spd, Speedup(b, res))
					if p := streamlineOf(sys); p != nil && p.Stats.CompletedStreams > 0 {
						// Alignment rate relative to ALL completed entries:
						// a small buffer finds few of the overlaps that
						// exist, which is the effect the sweep measures.
						ar = append(ar, float64(p.Stats.Alignments)/
							float64(p.Stats.CompletedStreams))
					}
				}
				if len(cov) == 0 {
					t.AddRow(fmt.Sprint(n), GapCell, GapCell, GapCell)
					continue
				}
				t.AddRow(fmt.Sprint(n), Pct(Mean(ar)), Pct(Mean(cov)), F(Geomean(spd)))
			}
			t.Notes = append(t.Notes,
				"paper: a 1-entry buffer aligns 11% of redundant entries, a 3-entry buffer 67%; larger buffers add no coverage")
			return []Table{t}
		}})
}

// redundancy measures the fraction of stored correlations duplicated across
// entries, and how much of that duplication is benign (same address pair
// under different stream contexts, which disambiguates predictions).
func redundancy(entries []meta.Entry) (redundant, benignShare float64) {
	type occurrence struct {
		context mem.Line // address preceding the pair within the entry
	}
	pairs := map[[2]mem.Line][]occurrence{}
	total := 0
	for _, e := range entries {
		prev := e.Trigger
		context := mem.Line(0)
		for _, t := range e.Targets {
			pairs[[2]mem.Line{prev, t}] = append(pairs[[2]mem.Line{prev, t}],
				occurrence{context: context})
			context = prev
			prev = t
			total++
		}
	}
	if total == 0 {
		return 0, 0
	}
	dupTotal, benign := 0, 0
	for _, occs := range pairs {
		if len(occs) < 2 {
			continue
		}
		// All but one copy are redundant; copies with distinct contexts
		// are benign (they disambiguate the stream).
		contexts := map[mem.Line]bool{}
		for _, o := range occs {
			contexts[o.context] = true
		}
		dup := len(occs) - 1
		dupTotal += dup
		if len(contexts) > 1 {
			b := len(contexts) - 1
			if b > dup {
				b = dup
			}
			benign += b
		}
	}
	if dupTotal == 0 {
		return 0, 0
	}
	return float64(dupTotal) / float64(total), float64(benign) / float64(dupTotal)
}
