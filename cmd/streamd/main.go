// Command streamd is the simulation-as-a-service daemon: an HTTP JSON server
// that accepts cmd/streamsim-shaped simulation requests, executes them on a
// bounded worker pool with per-request fault isolation, and serves repeated
// configurations from a content-addressed result cache.
//
// Usage:
//
//	streamd -addr :8080
//	streamd -addr :8080 -checkpoint results.d     # durable cache, survives restarts
//	streamd -workers 4 -queue 32 -job-timeout 2m  # bounded pool + backpressure
//
//	curl -d '{"workload":"sphinx06","temporal":"streamline"}' localhost:8080/simulate
//	curl localhost:8080/statusz
//
// Endpoints: POST /simulate, GET /healthz, GET /statusz. Identical concurrent
// requests are single-flighted; a full queue answers 429 with Retry-After;
// SIGTERM/SIGINT drain gracefully (stop accepting, finish and persist
// in-flight simulations, then exit 0).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamline/internal/exp/store"
	"streamline/internal/serve"
	"streamline/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulations (0: GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "max admitted-unfinished computations before 429 (0: 4x workers)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-request simulation bound; exceeded requests answer 504 (0: unbounded)")
		cacheEntries = flag.Int("cache-entries", 256, "in-memory LRU capacity (response bodies)")
		maxBody      = flag.Int64("max-body", 1<<20, "request body cap in bytes")
		checkpoint   = flag.String("checkpoint", "", "durable result store directory (created if needed; same record format as experiments -checkpoint)")
		drainWait    = flag.Duration("drain-timeout", time.Minute, "how long a SIGTERM drain waits for in-flight simulations")
		telOut       = flag.String("telemetry", "", "write per-request lifecycle events as JSONL to this file")
		telLevel     = flag.String("telemetry-level", "info", "minimum event severity to record: debug|info|warn")
		accessOut    = flag.String("access-log", "", "write one structured JSONL record per request to this file")
		slowReq      = flag.Duration("slow-request", 0, "requests at or over this wall clock carry their full stage breakdown in the access log (0: never)")
	)
	flag.Parse()

	sev, err := telemetry.ParseSeverity(*telLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var st *store.Store
	if *checkpoint != "" {
		st, err = store.Create(*checkpoint, serve.ServiceManifest())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "streamd: store %s holds %d result(s) (%d quarantined)\n",
			st.Dir(), st.Loaded(), st.Quarantined())
	}

	var col *telemetry.Collector
	var telFile *os.File
	if *telOut != "" {
		f, err := os.Create(*telOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		telFile = f
		sink := telemetry.NewConcurrentSink(f)
		sink.SetMinSeverity(sev)
		col = telemetry.New(sink, 0)
	}

	var accessSink *telemetry.Sink
	var accessFile *os.File
	if *accessOut != "" {
		f, err := os.Create(*accessOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		accessFile = f
		accessSink = telemetry.NewConcurrentSink(f)
	}

	srv := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		JobTimeout:   *jobTimeout,
		MaxBodyBytes: *maxBody,
		CacheEntries: *cacheEntries,
		Store:        st,
		Telemetry:    col,
		AccessLog:    accessSink,
		SlowRequest:  *slowReq,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The resolved address line is load-bearing: tests (and scripts) listen
	// on :0 and parse the chosen port from it.
	fmt.Fprintf(os.Stderr, "streamd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "streamd: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		hs.Shutdown(ctx)
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Shutdown returned: connections are done, but detached computations may
	// still be persisting — wait for them so every served result is durable.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "streamd: drain: %v\n", err)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "streamd: store: %v\n", err)
			os.Exit(1)
		}
	}
	if col != nil {
		if err := col.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "streamd: telemetry: %v\n", err)
			os.Exit(1)
		}
	}
	if telFile != nil {
		telFile.Close()
	}
	if accessSink != nil {
		// Flush, not Close: the access log is pure JSONL records, no
		// trailing summary.
		if err := accessSink.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "streamd: access log: %v\n", err)
			os.Exit(1)
		}
	}
	if accessFile != nil {
		accessFile.Close()
	}
	fmt.Fprintln(os.Stderr, "streamd: drained, bye")
}
