package sim

import (
	"io"
	"runtime"
	"testing"

	"streamline/internal/telemetry"
	"streamline/internal/workloads"
)

// BenchmarkKernel measures the per-trace-record cost of the simulation
// kernel on each representative scenario. Custom metrics normalize per
// record: ns/record and records/sec come from the wall clock, allocs/record
// from the allocator's Mallocs counter. cmd/bench runs the same scenarios
// to produce the committed BENCH_*.json baselines.
func BenchmarkKernel(b *testing.B) {
	for _, k := range KernelScenarios() {
		b.Run(k.Name, func(b *testing.B) {
			b.ReportAllocs()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			var records uint64
			for i := 0; i < b.N; i++ {
				_, recs, err := k.Run()
				if err != nil {
					b.Fatal(err)
				}
				records += recs
			}
			runtime.ReadMemStats(&ms1)
			if records == 0 {
				b.Fatal("kernel executed no records")
			}
			el := b.Elapsed()
			b.ReportMetric(float64(el.Nanoseconds())/float64(records), "ns/record")
			b.ReportMetric(float64(records)/el.Seconds(), "records/sec")
			b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(records), "allocs/record")
		})
	}
}

// TestKernelAllocsPerRecordCeiling pins the allocation rate of each kernel
// scenario. The hot path is allocation-free after warmup, so per-record
// allocations are amortized setup cost; the ceilings hold 2-3x headroom
// over current values (base 0.02, temporal ~0.18) while failing loudly on
// a per-record allocation regression (pre-optimization rates were 0.8-2.1).
func TestKernelAllocsPerRecordCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel runs")
	}
	ceilings := map[string]float64{
		"1core-base-sphinx06":       0.10,
		"1core-streamline-sphinx06": 0.50,
		"1core-triangel-mcf06":      0.50,
		"4core-streamline-mix":      0.40,
	}
	for _, k := range KernelScenarios() {
		ceil, ok := ceilings[k.Name]
		if !ok {
			t.Errorf("%s: no allocs/record ceiling defined; add one", k.Name)
			continue
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		_, records, err := k.Run()
		runtime.ReadMemStats(&ms1)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if records == 0 {
			t.Fatalf("%s: no records executed", k.Name)
		}
		got := float64(ms1.Mallocs-ms0.Mallocs) / float64(records)
		if got > ceil {
			t.Errorf("%s: %.4f allocs/record exceeds ceiling %.2f", k.Name, got, ceil)
		}
	}
}

// benchmarkRun measures a full simulation; newCollector nil benchmarks the
// disabled path (the overhead telemetry must not add), non-nil the
// instrumented one.
func benchmarkRun(b *testing.B, newCollector func() *telemetry.Collector) {
	w, err := workloads.Get("sphinx06")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := smallConfig(1)
		cfg.WarmupInstructions = 50_000
		cfg.MeasureInstructions = 200_000
		cfg.L1DPrefetcher = strideFactory
		cfg.Temporal = streamlineFactory
		var col *telemetry.Collector
		if newCollector != nil {
			col = newCollector()
			cfg.Telemetry = col
		}
		sys := New(cfg)
		sys.RunTrace(w.NewTrace(workloads.Scale{Footprint: 0.1}, 1))
		if col != nil {
			if err := col.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRunTelemetryOff(b *testing.B) {
	benchmarkRun(b, nil)
}

func BenchmarkRunTelemetryOn(b *testing.B) {
	benchmarkRun(b, func() *telemetry.Collector {
		return telemetry.New(telemetry.NewSink(io.Discard), 50_000)
	})
}
