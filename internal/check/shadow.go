package check

import (
	"fmt"
	"sort"

	"streamline/internal/cache"
	"streamline/internal/mem"
)

// maxMismatches bounds how many divergences a Shadow records before it stops
// collecting details (the op counter keeps running so the total is known).
const maxMismatches = 32

// Shadow drives a real cache and the reference model in lockstep, comparing
// the outcome of every operation and, on demand, their entire visible state.
// Feed it the same operation sequence the system under test would see; any
// recorded mismatch is a divergence between internal/cache and the
// spelled-out LRU semantics in RefCache.
//
// The real cache must be running plain LRU (Shadow forces Policy nil), and
// timing-only features (ports, MSHRs) must not be exercised through the
// shadowed entry points — the reference model has no notion of them.
type Shadow struct {
	Real *cache.Cache
	Ref  *RefCache

	ops        uint64
	mismatched uint64
	mismatches []string
}

// NewShadow builds a shadowed cache pair with the given geometry. The
// replacement policy is forced to LRU: that is the only policy the reference
// model defines.
func NewShadow(cfg cache.Config) *Shadow {
	cfg.Policy = nil
	return &Shadow{
		Real: cache.New(cfg),
		Ref:  NewRef(cfg.Sets, cfg.Ways),
	}
}

func (s *Shadow) reportf(format string, args ...any) {
	s.mismatched++
	if len(s.mismatches) < maxMismatches {
		s.mismatches = append(s.mismatches,
			fmt.Sprintf("op %d: %s", s.ops, fmt.Sprintf(format, args...)))
	}
}

// Mismatches returns the recorded divergences (empty means agreement so far).
func (s *Shadow) Mismatches() []string { return s.mismatches }

// Ops returns the number of operations driven through the pair.
func (s *Shadow) Ops() uint64 { return s.ops }

// Lookup runs the access through both caches and compares results.
func (s *Shadow) Lookup(now uint64, a mem.Access) cache.LookupResult {
	s.ops++
	got := s.Real.Lookup(now, a)
	want := s.Ref.Lookup(now, a)
	if got != want {
		s.reportf("Lookup(%d, %+v): real %+v, ref %+v", now, a, got, want)
	}
	return got
}

// LookupResident runs the fused resident-only lookup through both caches.
func (s *Shadow) LookupResident(now uint64, a mem.Access) (cache.LookupResult, bool) {
	s.ops++
	got, gotOK := s.Real.LookupResident(now, a)
	want, wantOK := s.Ref.LookupResident(now, a)
	if got != want || gotOK != wantOK {
		s.reportf("LookupResident(%d, %+v): real %+v,%v, ref %+v,%v",
			now, a, got, gotOK, want, wantOK)
	}
	return got, gotOK
}

// Probe runs the stateless residency probe through both caches.
func (s *Shadow) Probe(l mem.Line) bool {
	s.ops++
	got := s.Real.Probe(l)
	want := s.Ref.Probe(l)
	if got != want {
		s.reportf("Probe(%#x): real %v, ref %v", uint64(l), got, want)
	}
	return got
}

// Fill runs the fill through both caches and compares the victims.
func (s *Shadow) Fill(a mem.Access, readyAt uint64, src cache.Source) cache.Victim {
	s.ops++
	got := s.Real.Fill(a, readyAt, src)
	want := s.Ref.Fill(a, readyAt, src)
	if got != want {
		s.reportf("Fill(%+v, %d, %v): real victim %+v, ref victim %+v",
			a, readyAt, src, got, want)
	}
	return got
}

// MarkDirty runs the dirty-marking through both caches.
func (s *Shadow) MarkDirty(l mem.Line) bool {
	s.ops++
	got := s.Real.MarkDirty(l)
	want := s.Ref.MarkDirty(l)
	if got != want {
		s.reportf("MarkDirty(%#x): real %v, ref %v", uint64(l), got, want)
	}
	return got
}

// Reserve runs the way reservation through both caches.
func (s *Shadow) Reserve(set, ways int) (flushed, dirty int) {
	s.ops++
	gf, gd := s.Real.Reserve(set, ways)
	wf, wd := s.Ref.Reserve(set, ways)
	if gf != wf || gd != wd {
		s.reportf("Reserve(%d, %d): real flushed %d/dirty %d, ref %d/%d",
			set, ways, gf, gd, wf, wd)
	}
	return gf, gd
}

// lineKey renders one line's full state for content comparison. Way indices
// are deliberately excluded: the two implementations may place the same line
// in different physical ways (first-invalid scan order differs after
// reservation churn) without that being an observable difference.
func lineKey(l mem.Line, dirty, prefetched bool, src cache.Source, readyAt uint64) string {
	return fmt.Sprintf("line=%#x dirty=%v pf=%v src=%v ready=%d",
		uint64(l), dirty, prefetched, src, readyAt)
}

// CheckState compares the two caches' complete visible state: every stats
// counter and the full per-line content (residency, dirty bit, prefetch
// attribution, fill completion time) in both directions.
func (s *Shadow) CheckState() {
	if s.Real.Stats != s.Ref.Stats {
		s.reportf("stats diverge: real %+v, ref %+v", s.Real.Stats, s.Ref.Stats)
	}
	var realLines, refLines []string
	s.Real.ForEachLineState(func(ls cache.LineState) {
		realLines = append(realLines, lineKey(ls.Line, ls.Dirty, ls.Prefetched, ls.Src, ls.ReadyAt))
	})
	for set := range s.Ref.lines {
		for w := s.Ref.reserved[set]; w < s.Ref.ways; w++ {
			if ln := s.Ref.lines[set][w]; ln.valid {
				refLines = append(refLines, lineKey(ln.line, ln.dirty, ln.prefetched, ln.src, ln.readyAt))
			}
		}
	}
	sort.Strings(realLines)
	sort.Strings(refLines)
	if len(realLines) != len(refLines) {
		s.reportf("content diverges: real holds %d lines, ref %d", len(realLines), len(refLines))
		return
	}
	for i := range realLines {
		if realLines[i] != refLines[i] {
			s.reportf("content diverges at sorted index %d: real %q, ref %q",
				i, realLines[i], refLines[i])
			return
		}
	}
}
