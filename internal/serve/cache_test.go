package serve

import (
	"bytes"
	"fmt"
	"testing"
)

// TestResultCacheLRU: capacity is enforced by recency — touching an entry
// saves it from eviction, and the stored bytes come back verbatim.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.add("a", []byte("A"))
	c.add("b", []byte("B"))
	if body, ok := c.get("a"); !ok || !bytes.Equal(body, []byte("A")) {
		t.Fatalf("get a = %q, %v", body, ok)
	}
	c.add("c", []byte("C")) // "b" is now least recently used
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction despite being LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a was evicted despite a recent get")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	c.add("a", []byte("A2")) // refresh replaces in place
	if body, _ := c.get("a"); !bytes.Equal(body, []byte("A2")) {
		t.Errorf("refresh: got %q, want A2", body)
	}
	if c.len() != 2 {
		t.Errorf("len after refresh = %d, want 2", c.len())
	}
}

// TestResultCacheConcurrent exercises the cache from many goroutines so the
// race detector can vet its locking.
func TestResultCacheConcurrent(t *testing.T) {
	c := newResultCache(8)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				c.add(key, []byte(key))
				if body, ok := c.get(key); ok && string(body) != key {
					t.Errorf("goroutine %d: got %q for %q", g, body, key)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if n := c.len(); n > 8 {
		t.Errorf("cache grew past capacity: %d", n)
	}
}
