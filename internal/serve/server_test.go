package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamline/internal/exp/store"
)

// tinyBody is a sub-second simulation request used throughout the suite.
const tinyBody = `{"workload":"sphinx06","temporal":"streamline","footprint":0.02,"warmup":1000,"measure":4000,"llcSets":16,"metaKb":8}`

// tinyVariant is tinyBody with a distinct seed — a different content address.
func tinyVariant(seed int) string {
	return fmt.Sprintf(`{"workload":"sphinx06","footprint":0.02,"warmup":1000,"measure":4000,"llcSets":16,"metaKb":8,"seed":%d}`, seed)
}

// post sends one simulation request, returning status, cache tier, and body.
func post(t *testing.T, url, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /simulate: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Streamd-Cache"), data
}

// waitFor polls cond until it holds or the suite gives up.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestColdThenCachedByteIdentical is the core caching proof: the second
// identical request is served from memory without re-simulation, and its
// bytes equal the cold response exactly.
func TestColdThenCachedByteIdentical(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, tier, cold := post(t, ts.URL, tinyBody)
	if status != http.StatusOK || tier != "none" {
		t.Fatalf("cold: status %d tier %q, want 200/none\n%s", status, tier, cold)
	}
	var doc map[string]any
	if err := json.Unmarshal(cold, &doc); err != nil {
		t.Fatalf("cold body is not JSON: %v", err)
	}
	if doc["workload"] != "sphinx06" || doc["temporal"] != "streamline" {
		t.Errorf("cold body misreports its configuration: %v", doc)
	}

	status, tier, warm := post(t, ts.URL, tinyBody)
	if status != http.StatusOK || tier != "memory" {
		t.Fatalf("warm: status %d tier %q, want 200/memory", status, tier)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("cached reply is not byte-identical:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}

	c := s.Counters()
	if c.Computed != 1 || c.MemoryHits != 1 || c.Requests != 2 {
		t.Errorf("counters after cold+warm: %+v, want computed=1 memoryHits=1 requests=2", c)
	}
	st := s.Status()
	if st.HitRate != 0.5 || st.CacheEntries != 1 || st.StoreRecords != -1 {
		t.Errorf("status: hitRate=%g cacheEntries=%d storeRecords=%d, want 0.5/1/-1",
			st.HitRate, st.CacheEntries, st.StoreRecords)
	}
}

// TestConcurrentIdenticalSingleFlight: N concurrent identical requests run
// exactly one simulation; the other N-1 collapse onto its flight and share
// the same bytes.
func TestConcurrentIdenticalSingleFlight(t *testing.T) {
	const n = 8
	s := New(Config{})
	release := make(chan struct{})
	s.SetComputeHook(func(string) { <-release })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var (
		mu     sync.Mutex
		tiers  = map[string]int{}
		bodies [][]byte
		wg     sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, tier, body := post(t, ts.URL, tinyBody)
			mu.Lock()
			defer mu.Unlock()
			if status != http.StatusOK {
				t.Errorf("status %d, want 200", status)
			}
			tiers[tier]++
			bodies = append(bodies, body)
		}()
	}
	// All duplicates must be parked on the one flight before it completes.
	waitFor(t, "duplicates to collapse", func() bool {
		return s.Counters().Collapsed == n-1
	})
	close(release)
	wg.Wait()

	if tiers["none"] != 1 || tiers["flight"] != n-1 {
		t.Errorf("tiers = %v, want 1 none + %d flight", tiers, n-1)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("collapsed waiter %d got different bytes", i)
		}
	}
	if c := s.Counters(); c.Computed != 1 || c.Collapsed != n-1 {
		t.Errorf("counters: %+v, want computed=1 collapsed=%d", c, n-1)
	}
}

// TestConcurrentDistinctRequests: different specs do not collapse onto each
// other — every one simulates, and each reply reports its own seed.
func TestConcurrentDistinctRequests(t *testing.T) {
	const n = 4
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			status, _, body := post(t, ts.URL, tinyVariant(seed))
			if status != http.StatusOK {
				t.Errorf("seed %d: status %d", seed, status)
				return
			}
			var doc struct {
				Seed int `json:"seed"`
			}
			if err := json.Unmarshal(body, &doc); err != nil || doc.Seed != seed {
				t.Errorf("seed %d: reply reports seed %d (err %v)", seed, doc.Seed, err)
			}
		}(i)
	}
	wg.Wait()
	if c := s.Counters(); c.Computed != n || c.Collapsed != 0 {
		t.Errorf("counters: %+v, want computed=%d collapsed=0", c, n)
	}
}

// TestQueueFullBackpressure: with the queue saturated, a distinct request is
// refused with 429 + Retry-After — but an identical one still collapses onto
// the in-progress flight instead of being rejected.
func TestQueueFullBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.SetComputeHook(func(string) { <-release })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // request A occupies the only queue slot
		defer wg.Done()
		if status, _, _ := post(t, ts.URL, tinyVariant(1)); status != http.StatusOK {
			t.Errorf("admitted request: status %d", status)
		}
	}()
	waitFor(t, "request A to be admitted", func() bool { return s.Status().Queued == 1 })

	// A distinct request B cannot be admitted.
	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(tinyVariant(2)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d, want 429\n%s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After")
	} else if n, err := strconv.Atoi(ra); err != nil || n < 1 || n > 30 {
		t.Errorf("Retry-After %q is not an integer in [1,30]", ra)
	}

	// An identical request C consumes no slot: it collapses, not rejects.
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, tier, _ := post(t, ts.URL, tinyVariant(1))
		if status != http.StatusOK || tier != "flight" {
			t.Errorf("duplicate under saturation: status %d tier %q, want 200/flight", status, tier)
		}
	}()
	waitFor(t, "duplicate to collapse", func() bool { return s.Counters().Collapsed == 1 })

	close(release)
	wg.Wait()
	if c := s.Counters(); c.Rejected != 1 || c.Computed != 1 || c.Collapsed != 1 {
		t.Errorf("counters: %+v, want rejected=1 computed=1 collapsed=1", c)
	}
}

// TestStoreTierSurvivesRestart: a computed result persisted to the durable
// store is replayed byte-identically by a fresh server over the same
// directory — zero re-simulation — then promoted to its memory tier.
func TestStoreTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir() + "/results.d"
	st1, err := store.Create(dir, ServiceManifest())
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Store: st1})
	ts1 := httptest.NewServer(s1.Handler())
	status, tier, cold := post(t, ts1.URL, tinyBody)
	ts1.Close()
	if status != http.StatusOK || tier != "none" {
		t.Fatalf("cold: status %d tier %q", status, tier)
	}
	if s1.Status().StoreRecords != 1 {
		t.Fatalf("store holds %d records after compute, want 1", s1.Status().StoreRecords)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Create(dir, ServiceManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Loaded() != 1 || st2.Quarantined() != 0 {
		t.Fatalf("reopen: loaded=%d quarantined=%d, want 1/0", st2.Loaded(), st2.Quarantined())
	}
	s2 := New(Config{Store: st2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	status, tier, warm := post(t, ts2.URL, tinyBody)
	if status != http.StatusOK || tier != "store" {
		t.Fatalf("replay: status %d tier %q, want 200/store", status, tier)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("store replay is not byte-identical:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	if c := s2.Counters(); c.Computed != 0 || c.StoreHits != 1 {
		t.Errorf("counters: %+v, want computed=0 storeHits=1 (no re-simulation)", c)
	}
	// The store hit also primed the LRU: the next lookup is a memory hit.
	if _, tier, _ := post(t, ts2.URL, tinyBody); tier != "memory" {
		t.Errorf("third request tier %q, want memory", tier)
	}
}

// TestDrainRefusesNewWork: after Drain, new computations answer 503 and
// healthz reports not-ready.
func TestDrainRefusesNewWork(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if status, _, _ := post(t, ts.URL, tinyBody); status != http.StatusServiceUnavailable {
		t.Errorf("simulate while draining: status %d, want 503", status)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
	if !s.Status().Draining {
		t.Error("statusz does not report draining")
	}
}

// TestJobTimeout: a simulation exceeding JobTimeout answers 504; the failure
// is NOT cached, so a retry re-simulates and succeeds.
func TestJobTimeout(t *testing.T) {
	s := New(Config{JobTimeout: 50 * time.Millisecond})
	var slow atomic.Bool
	slow.Store(true)
	s.SetComputeHook(func(string) {
		if slow.CompareAndSwap(true, false) {
			time.Sleep(500 * time.Millisecond)
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, body := post(t, ts.URL, tinyBody)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("hung job: status %d, want 504\n%s", status, body)
	}
	if c := s.Counters(); c.Failed != 1 || c.Computed != 0 {
		t.Fatalf("counters after timeout: %+v, want failed=1 computed=0", c)
	}

	status, tier, _ := post(t, ts.URL, tinyBody)
	if status != http.StatusOK || tier != "none" {
		t.Errorf("retry: status %d tier %q, want 200/none (failure must not be cached)", status, tier)
	}
	if c := s.Counters(); c.Computed != 1 {
		t.Errorf("retry did not re-simulate: %+v", c)
	}
}

// TestInvalidRequests: malformed or out-of-bounds requests are refused before
// touching the simulator, with the status the failure mode documents.
func TestInvalidRequests(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantErr    string
	}{
		{"truncated JSON", `{"workload":"sph`, http.StatusBadRequest, "malformed request"},
		{"unknown field", `{"workload":"sphinx06","bogus":1}`, http.StatusBadRequest, "unknown field"},
		{"trailing data", `{"workload":"sphinx06"} {}`, http.StatusBadRequest, "trailing data"},
		{"unknown workload", `{"workload":"nope"}`, http.StatusBadRequest, "unknown workload"},
		{"negative cores", `{"workload":"sphinx06","cores":-3}`, http.StatusBadRequest, "cores must be"},
		{"bad llcSets", `{"workload":"sphinx06","llcSets":100}`, http.StatusBadRequest, "power of two"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := post(t, ts.URL, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d\n%s", status, tc.wantStatus, body)
			}
			var doc struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("error body is not JSON: %v\n%s", err, body)
			}
			if !strings.Contains(doc.Error, tc.wantErr) {
				t.Errorf("error %q does not mention %q", doc.Error, tc.wantErr)
			}
		})
	}
	if c := s.Counters(); c.Invalid != uint64(len(cases)) || c.Computed != 0 {
		t.Errorf("counters: %+v, want invalid=%d computed=0", c, len(cases))
	}

	t.Run("oversized body", func(t *testing.T) {
		small := New(Config{MaxBodyBytes: 32})
		tss := httptest.NewServer(small.Handler())
		defer tss.Close()
		status, _, body := post(t, tss.URL, tinyBody)
		if status != http.StatusRequestEntityTooLarge {
			t.Errorf("status %d, want 413\n%s", status, body)
		}
	})

	t.Run("wrong method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/simulate")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /simulate: status %d, want 405", resp.StatusCode)
		}
		if resp.Header.Get("Allow") != http.MethodPost {
			t.Errorf("Allow = %q, want POST", resp.Header.Get("Allow"))
		}
	})
}

// TestRetryAfterDerivation: the backpressure Retry-After hint is the time to
// drain the current queue through the worker pool at the observed mean
// simulate latency — ceil(queued*mean/workers) — clamped to [1,30], and is a
// positive integer for every load state (including before any observation,
// when the mean is zero).
func TestRetryAfterDerivation(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})

	// No simulate latency observed yet: the floor, never zero or empty.
	if got := s.retryAfter(0); got != "1" {
		t.Errorf("retryAfter(0) with no observations = %q, want \"1\"", got)
	}
	if got := s.retryAfter(8); got != "1" {
		t.Errorf("retryAfter(8) with no observations = %q, want \"1\"", got)
	}

	// Mean simulate latency 3s: 8 queued / 2 workers -> 12s to drain.
	s.metrics.observeStage(stageSimulate, 3*time.Second)
	if got := s.retryAfter(8); got != "12" {
		t.Errorf("retryAfter(8) at 3s mean over 2 workers = %q, want \"12\"", got)
	}
	// A deep queue clamps at 30 rather than quoting minutes.
	if got := s.retryAfter(1000); got != "30" {
		t.Errorf("retryAfter(1000) = %q, want the 30s clamp", got)
	}
	// Sub-second drain estimates round up to the 1s floor.
	if got := s.retryAfter(1); got != "2" { // ceil(1*3/2)
		t.Errorf("retryAfter(1) = %q, want \"2\"", got)
	}
	fast := New(Config{Workers: 4, QueueDepth: 8})
	fast.metrics.observeStage(stageSimulate, 10*time.Millisecond)
	if got := fast.retryAfter(3); got != "1" {
		t.Errorf("fast retryAfter(3) = %q, want the 1s floor", got)
	}

	// Exhaustive: every queue depth yields an integer in [1,30].
	for q := 0; q <= 256; q++ {
		n, err := strconv.Atoi(s.retryAfter(q))
		if err != nil || n < 1 || n > 30 {
			t.Fatalf("retryAfter(%d) = %q; want an integer in [1,30] (err %v)",
				q, s.retryAfter(q), err)
		}
	}
}
