package check

import (
	"fmt"

	"streamline/internal/cache"
	"streamline/internal/dram"
	"streamline/internal/sim"
)

// Conservation laws: counter identities every run must satisfy, split into
// two classes.
//
// Window-safe laws relate counters whose increments are paired — both sides
// move in the same simulator step — so they hold over any delta window
// (measured-phase results with a warmup) as well as whole runs.
//
// Whole-run laws additionally rely on events before the window: a line
// filled during warmup can be evicted during measurement, so "fills bound
// useful + evicted" only holds when counting starts from an empty cache.
// Apply them only when the statistics cover a run from cycle zero.

// CacheLaws checks the window-safe identities of one cache level's stats.
// It returns a description of each violated law (empty means all hold).
func CacheLaws(name string, st cache.Stats) []string {
	var v []string
	fail := func(format string, args ...any) {
		v = append(v, fmt.Sprintf("%s: ", name)+fmt.Sprintf(format, args...))
	}
	if st.DemandHits+st.DemandMisses != st.DemandAccesses {
		fail("demand hits %d + misses %d != accesses %d",
			st.DemandHits, st.DemandMisses, st.DemandAccesses)
	}
	if st.PrefetchHits > st.PrefetchAccesses {
		fail("prefetch hits %d > prefetch accesses %d", st.PrefetchHits, st.PrefetchAccesses)
	}
	if st.UsefulPrefetches > st.DemandHits {
		fail("useful prefetches %d > demand hits %d", st.UsefulPrefetches, st.DemandHits)
	}
	if st.LatePrefetches > st.UsefulPrefetches {
		fail("late prefetches %d > useful prefetches %d", st.LatePrefetches, st.UsefulPrefetches)
	}
	if st.Writebacks > st.Evictions {
		fail("writebacks %d > evictions %d", st.Writebacks, st.Evictions)
	}
	var fills, timely, late, evicted uint64
	for _, ss := range st.Sources {
		fills += ss.Fills
		timely += ss.UsefulTimely
		late += ss.UsefulLate
		evicted += ss.EvictedUnused
	}
	if fills != st.PrefetchFills {
		fail("per-source fills sum to %d, aggregate PrefetchFills is %d", fills, st.PrefetchFills)
	}
	if timely+late != st.UsefulPrefetches {
		fail("per-source useful sum to %d, aggregate UsefulPrefetches is %d",
			timely+late, st.UsefulPrefetches)
	}
	if late != st.LatePrefetches {
		fail("per-source useful-late sum to %d, aggregate LatePrefetches is %d",
			late, st.LatePrefetches)
	}
	if evicted != st.UnusedPrefetches {
		fail("per-source evicted-unused sum to %d, aggregate UnusedPrefetches is %d",
			evicted, st.UnusedPrefetches)
	}
	if d := st.Sources[cache.SrcDemand]; d != (cache.SourceStats{}) {
		fail("SrcDemand carries prefetch lifecycle counts %+v", d)
	}
	return v
}

// CacheWholeRunLaws checks the whole-run identities of one cache level's
// stats on top of the window-safe set: per source, the fills bound the
// useful + evicted-unused outcomes (the remainder being lines still
// resident). Valid only for statistics counted from an empty cache.
func CacheWholeRunLaws(name string, st cache.Stats) []string {
	v := CacheLaws(name, st)
	for src, ss := range st.Sources {
		if ss.UsefulTimely+ss.UsefulLate+ss.EvictedUnused > ss.Fills {
			v = append(v, fmt.Sprintf(
				"%s: source %s useful %d + evicted-unused %d exceed fills %d",
				name, cache.Source(src), ss.UsefulTimely+ss.UsefulLate,
				ss.EvictedUnused, ss.Fills))
		}
	}
	return v
}

// DRAMLaws checks DRAM counter identities: every read resolves to exactly
// one of row hit, row miss, or row conflict (window-safe: the outcome is
// classified in the same step the read is counted).
func DRAMLaws(name string, d dram.Stats) []string {
	var v []string
	if d.RowHits+d.RowMisses+d.RowConflicts != d.Reads {
		v = append(v, fmt.Sprintf(
			"%s: row hits %d + misses %d + conflicts %d != reads %d",
			name, d.RowHits, d.RowMisses, d.RowConflicts, d.Reads))
	}
	return v
}

// CoreLaws checks one core's measured-phase result. Window-safe: each
// level's CacheLaws, the per-engine issue attribution summing to the
// core total, and — because an issued prefetch installs exactly one line at
// its engine's private level in the same step — per-engine fills equal to
// issues. wholeRun additionally enables the per-level lifecycle bounds.
func CoreLaws(name string, cr sim.CoreResult, wholeRun bool) []string {
	lvl := CacheLaws
	if wholeRun {
		lvl = CacheWholeRunLaws
	}
	v := append(lvl(name+"/L1D", cr.L1D), lvl(name+"/L2", cr.L2)...)
	var issued uint64
	for _, p := range cr.Prefetchers {
		issued += p.Issued
		if p.Fills != p.Issued {
			v = append(v, fmt.Sprintf("%s: engine %s filled %d lines for %d issued prefetches",
				name, p.Source, p.Fills, p.Issued))
		}
		if p.UsefulTimely+p.UsefulLate+p.EvictedUnused > p.Fills && wholeRun {
			v = append(v, fmt.Sprintf(
				"%s: engine %s useful %d + evicted-unused %d exceed fills %d",
				name, p.Source, p.UsefulTimely+p.UsefulLate, p.EvictedUnused, p.Fills))
		}
	}
	if issued != cr.PrefetchesIssued {
		v = append(v, fmt.Sprintf("%s: per-engine issues sum to %d, core total is %d",
			name, issued, cr.PrefetchesIssued))
	}
	return v
}

// MetaDRAMTraffic is DRAM traffic issued by a temporal prefetcher's
// metadata machinery directly against the system DRAM (the STMS
// configuration; LLC-partition metadata never reaches DRAM). SimLaws needs
// it to balance the DRAM ledger.
type MetaDRAMTraffic struct {
	Reads  uint64
	Writes uint64
}

// SimLaws checks a full result: per-core laws, the LLC and DRAM identities
// (always whole-run — Result reports shared resources from cycle zero), and
// the cross-level ledger:
//
//   - every DRAM read is an LLC demand miss, an LLC prefetch miss, or a
//     metadata read (exact — the LLC allocates no MSHRs, so misses never
//     merge);
//   - DRAM writes cover at least the LLC's dirty evictions plus metadata
//     writes (upper-level writebacks that miss the LLC and repartition
//     flushes add more).
//
// wholeRun marks runs with no warmup, enabling the whole-run core laws.
func SimLaws(r sim.Result, meta MetaDRAMTraffic, wholeRun bool) []string {
	var v []string
	for i, cr := range r.Cores {
		v = append(v, CoreLaws(fmt.Sprintf("core%d", i), cr, wholeRun)...)
	}
	v = append(v, CacheWholeRunLaws("LLC", r.LLC)...)
	v = append(v, DRAMLaws("DRAM", r.DRAM)...)
	llcMisses := r.LLC.DemandMisses + (r.LLC.PrefetchAccesses - r.LLC.PrefetchHits)
	if want := llcMisses + meta.Reads; r.DRAM.Reads != want {
		v = append(v, fmt.Sprintf(
			"DRAM reads %d != LLC demand misses %d + prefetch misses %d + metadata reads %d",
			r.DRAM.Reads, r.LLC.DemandMisses,
			r.LLC.PrefetchAccesses-r.LLC.PrefetchHits, meta.Reads))
	}
	if r.DRAM.Writes < r.LLC.Writebacks+meta.Writes {
		v = append(v, fmt.Sprintf(
			"DRAM writes %d < LLC writebacks %d + metadata writes %d",
			r.DRAM.Writes, r.LLC.Writebacks, meta.Writes))
	}
	return v
}
