package workloads

import (
	"streamline/internal/mem"
	"streamline/internal/trace"
)

// arena hands out disjoint, page-aligned address ranges for a workload's
// arrays. Every workload starts its arena at the same virtual base; the
// simulator offsets addresses per core, so identical workloads on different
// cores never collide in the shared LLC.
type arena struct {
	next mem.Addr
}

const arenaBase mem.Addr = 1 << 32

func newArena() *arena { return &arena{next: arenaBase} }

// alloc reserves size bytes rounded up to a 4KB boundary and returns the
// base address, leaving a guard page between allocations so that distinct
// arrays never share a cache line.
func (a *arena) alloc(size int) mem.Addr {
	const page = 4096
	base := a.next
	sz := (mem.Addr(size) + page - 1) &^ (page - 1)
	a.next += sz + page
	return base
}

// array is a typed view over an arena allocation: element i lives at
// base + i*elem. Workload generators use it to compute the addresses their
// synthetic programs would touch.
type array struct {
	base mem.Addr
	elem int
}

func (a *arena) array(count, elemSize int) array {
	return array{base: a.alloc(count * elemSize), elem: elemSize}
}

func (a array) at(i int) mem.Addr { return a.base + mem.Addr(i*a.elem) }

// emitter wraps the per-lap emit callback with convenience constructors for
// the record kinds workloads generate. nonMem is the default compute density
// (non-memory instructions preceding each memory instruction).
type emitter struct {
	emit   func(trace.Record)
	nonMem uint8
}

func (e *emitter) load(pc mem.PC, addr mem.Addr) {
	e.emit(trace.Record{PC: pc, Addr: addr, NonMem: e.nonMem})
}

// chase emits a load whose address depends on the previous memory
// instruction, serializing it in the timing model.
func (e *emitter) chase(pc mem.PC, addr mem.Addr) {
	e.emit(trace.Record{PC: pc, Addr: addr, DependsOnPrev: true, NonMem: e.nonMem})
}

func (e *emitter) store(pc mem.PC, addr mem.Addr) {
	e.emit(trace.Record{PC: pc, Addr: addr, IsWrite: true, NonMem: e.nonMem})
}

// pcBase derives a stable, distinctive PC region for a workload from its
// name, so PC-localized prefetchers see consistent PCs across runs.
func pcBase(name string) mem.PC {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	// Leave room for 256 distinct loop PCs, 8 bytes apart.
	return mem.PC(h&^0x7ff | 0x40000000)
}
