package stride

import (
	"testing"

	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

func drive(p *Prefetcher, pc mem.PC, addrs []mem.Addr) []prefetch.Request {
	var all, buf []prefetch.Request
	for i, a := range addrs {
		buf = p.Train(prefetch.Event{Now: uint64(i), PC: pc, Addr: a}, buf[:0])
		all = append(all, buf...)
	}
	return all
}

func TestDetectsUnitLineStride(t *testing.T) {
	p := New(DefaultConfig)
	var addrs []mem.Addr
	for i := 0; i < 10; i++ {
		addrs = append(addrs, mem.Addr(i*64))
	}
	reqs := drive(p, 1, addrs)
	if len(reqs) == 0 {
		t.Fatal("no prefetches on a unit-stride stream")
	}
	// Requests should be degree-3 ahead of the training address.
	last := reqs[len(reqs)-1]
	if mem.LineOf(last.Addr) != mem.LineOf(addrs[len(addrs)-1])+3 {
		t.Errorf("last prefetch %d lines ahead, want 3",
			mem.LineOf(last.Addr)-mem.LineOf(addrs[len(addrs)-1]))
	}
}

func TestIgnoresSubLineAccesses(t *testing.T) {
	p := New(DefaultConfig)
	var addrs []mem.Addr
	for i := 0; i < 32; i++ {
		addrs = append(addrs, mem.Addr(i*8)) // 8B stride: 8 accesses per line
	}
	reqs := drive(p, 1, addrs)
	// Line-crossings still form a unit line stride; prefetches must target
	// future lines, not the current one.
	for _, r := range reqs {
		if mem.LineOf(r.Addr) <= mem.LineOf(addrs[len(addrs)-1])-1 {
			t.Errorf("prefetch %#x behind the stream", r.Addr)
		}
	}
	if len(reqs) == 0 {
		t.Error("no prefetches despite a line-level stride")
	}
}

func TestDetectsLargeStride(t *testing.T) {
	p := New(DefaultConfig)
	var addrs []mem.Addr
	for i := 0; i < 10; i++ {
		addrs = append(addrs, mem.Addr(i*4096)) // 64-line stride
	}
	reqs := drive(p, 1, addrs)
	if len(reqs) == 0 {
		t.Fatal("no prefetches on a large-stride stream")
	}
	d := int64(mem.LineOf(reqs[0].Addr)) - int64(mem.LineOf(addrs[len(addrs)-1]))
	if d%64 != 0 {
		t.Errorf("prefetch delta %d not a stride multiple", d)
	}
}

func TestNoPrefetchOnRandom(t *testing.T) {
	p := New(DefaultConfig)
	x := uint64(12345)
	var addrs []mem.Addr
	for i := 0; i < 200; i++ {
		x = x*6364136223846793005 + 1
		addrs = append(addrs, mem.Addr(x>>16)&^63)
	}
	reqs := drive(p, 1, addrs)
	if len(reqs) > 20 {
		t.Errorf("%d prefetches on random accesses", len(reqs))
	}
}

func TestPerPCIsolation(t *testing.T) {
	p := New(DefaultConfig)
	// PC 1 strides by +1 line, PC 2 by -2 lines, interleaved.
	var reqs []prefetch.Request
	var buf []prefetch.Request
	for i := 0; i < 20; i++ {
		buf = p.Train(prefetch.Event{PC: 1, Addr: mem.Addr(i * 64)}, buf[:0])
		reqs = append(reqs, buf...)
		buf = p.Train(prefetch.Event{PC: 2, Addr: mem.Addr((1 << 20) - i*128)}, buf[:0])
		reqs = append(reqs, buf...)
	}
	if len(reqs) == 0 {
		t.Fatal("interleaved strided PCs produced no prefetches")
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	p := New(Config{})
	if p.cfg.Degree != DefaultConfig.Degree {
		t.Errorf("degree default = %d", p.cfg.Degree)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}
