package cache

import (
	"streamline/internal/audit"
	"streamline/internal/mem"
)

// ForEachLine visits every valid data line (outside reserved ways), for
// cross-level invariant checks at the simulator layer.
func (c *Cache) ForEachLine(f func(set, way int, l mem.Line)) {
	for s := range c.sets {
		for w := c.reserved[s]; w < c.cfg.Ways; w++ {
			if c.sets[s][w].valid {
				f(s, w, c.sets[s][w].tag)
			}
		}
	}
}

// AuditScan verifies the cache's structural invariants against a, reporting
// each breach at cycle now. All checks are read-only.
//
// Invariants:
//   - tag-array soundness: no duplicate valid line within a set, and no
//     valid data line inside a metadata-reserved way region (the
//     metadata/data exclusion the LLC partitioning relies on);
//   - reservation legality: 0 <= reserved ways <= associativity;
//   - fill/eviction balance: incrementally tracked occupancy equals a full
//     scan, so every install, eviction, and reservation flush was accounted;
//   - MSHR hygiene: every MSHRReserve was matched by an MSHRComplete (leak
//     detection; the scan runs between accesses, when none are in flight);
//   - counter identities: demand hits + misses = accesses, useful
//     prefetches never exceed demand hits, writebacks never exceed
//     evictions, prefetch hits never exceed prefetch accesses.
func (c *Cache) AuditScan(a *audit.Auditor, now uint64) {
	if a == nil {
		return
	}
	name := c.cfg.Name
	valid := 0
	for s := range c.sets {
		rsv := c.reserved[s]
		if rsv < 0 || rsv > c.cfg.Ways {
			a.Reportf(now, name, "reservation-bounds",
				"set %d reserves %d ways of %d", s, rsv, c.cfg.Ways)
			continue
		}
		for w := 0; w < c.cfg.Ways; w++ {
			ln := &c.sets[s][w]
			if !ln.valid {
				continue
			}
			valid++
			if w < rsv {
				a.Reportf(now, name, "data-in-reserved-way",
					"set %d way %d holds line %#x inside the %d reserved ways",
					s, w, uint64(ln.tag), rsv)
			}
			for w2 := w + 1; w2 < c.cfg.Ways; w2++ {
				if c.sets[s][w2].valid && c.sets[s][w2].tag == ln.tag {
					a.Reportf(now, name, "duplicate-line",
						"set %d holds line %#x in ways %d and %d",
						s, uint64(ln.tag), w, w2)
				}
			}
		}
	}
	if valid != c.occupied {
		a.Reportf(now, name, "fill-evict-balance",
			"scan finds %d valid lines, incremental accounting says %d", valid, c.occupied)
	}
	if c.mshrPending != 0 {
		a.Reportf(now, name, "mshr-leak",
			"%d MSHR reservation(s) never completed", c.mshrPending)
	}
	st := c.Stats
	if st.DemandHits+st.DemandMisses != st.DemandAccesses {
		a.Reportf(now, name, "demand-accounting",
			"hits %d + misses %d != accesses %d",
			st.DemandHits, st.DemandMisses, st.DemandAccesses)
	}
	if st.UsefulPrefetches > st.DemandHits {
		a.Reportf(now, name, "useful-exceeds-hits",
			"useful prefetches %d > demand hits %d", st.UsefulPrefetches, st.DemandHits)
	}
	if st.Writebacks > st.Evictions {
		a.Reportf(now, name, "writebacks-exceed-evictions",
			"writebacks %d > evictions %d", st.Writebacks, st.Evictions)
	}
	if st.PrefetchHits > st.PrefetchAccesses {
		a.Reportf(now, name, "prefetch-hit-accounting",
			"prefetch hits %d > prefetch accesses %d", st.PrefetchHits, st.PrefetchAccesses)
	}
}
