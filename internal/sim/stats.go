package sim

import (
	"streamline/internal/cache"
	"streamline/internal/dram"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
)

// snapshot captures the counters that measured-phase deltas are computed
// from. The shared LLC/DRAM stats ride along for the telemetry sampler's
// interval records; whole-run Result fields still come from the live
// structures.
type snapshot struct {
	instr     uint64
	cycles    uint64
	l1d       cache.Stats
	l2        cache.Stats
	issued    uint64
	issuedBy  [cache.NumSources]uint64
	droppedBy [cache.NumSources]uint64
	meta      meta.Stats
	llc       cache.Stats
	dram      dram.Stats
}

func (s *System) snapshotCore(cs *coreState) snapshot {
	sn := snapshot{
		instr:     cs.core.Instructions(),
		cycles:    cs.core.Finish(),
		l1d:       cs.l1d.Stats,
		l2:        cs.l2.Stats,
		issued:    cs.issued,
		issuedBy:  cs.issuedBy,
		droppedBy: cs.droppedBy,
		llc:       s.llc.Stats,
		dram:      s.dram.Stats,
	}
	if mr, ok := cs.tempf.(prefetch.MetaReporter); ok {
		sn.meta = mr.MetaStats()
	}
	return sn
}

// PrefetcherResult is one prefetch engine's measured-phase lifecycle
// attribution, merged across the core's private levels (an L1 engine's
// fills land in the L1D, L2/temporal engines' in the L2).
type PrefetcherResult struct {
	// Source names the engine: "l1", "l2" or "temporal".
	Source string
	// Issued counts requests that reached the hierarchy; DroppedDuplicate
	// counts requests discarded because the line was already resident at
	// the destination.
	Issued           uint64
	DroppedDuplicate uint64
	Fills            uint64
	UsefulTimely     uint64
	UsefulLate       uint64
	EvictedUnused    uint64
}

// Useful returns total useful prefetches (timely plus late).
func (p PrefetcherResult) Useful() uint64 { return p.UsefulTimely + p.UsefulLate }

// Accuracy returns this engine's useful prefetches over its fills.
func (p PrefetcherResult) Accuracy() float64 { return cache.Accuracy(p.Useful(), p.Fills) }

// Pollution returns the fraction of this engine's fills evicted unused.
func (p PrefetcherResult) Pollution() float64 { return cache.Accuracy(p.EvictedUnused, p.Fills) }

// CoreResult is one core's measured-phase statistics.
type CoreResult struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64

	L1D cache.Stats
	L2  cache.Stats

	PrefetchesIssued uint64

	// Prefetchers is the per-engine lifecycle attribution (l1, l2,
	// temporal — present even when an engine is unconfigured, with zero
	// counts).
	Prefetchers []PrefetcherResult

	// Meta is the temporal prefetcher's metadata activity (zero when no
	// temporal prefetcher is configured).
	Meta meta.Stats
}

// L1DMPKI returns L1D demand misses per kilo-instruction.
func (r CoreResult) L1DMPKI() float64 { return mpki(r.L1D.DemandMisses, r.Instructions) }

// L2MPKI returns L2 demand misses per kilo-instruction.
func (r CoreResult) L2MPKI() float64 { return mpki(r.L2.DemandMisses, r.Instructions) }

func mpki(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) / float64(instructions) * 1000
}

// PrefetchAccuracy returns useful prefetches over prefetch fills at the L2
// (cache.Accuracy is the shared definition).
func (r CoreResult) PrefetchAccuracy() float64 {
	return r.L2.PrefetchAccuracy()
}

// Result is a full measured-phase report.
type Result struct {
	Cores []CoreResult
	// LLC and DRAM are whole-run shared-resource statistics.
	LLC  cache.Stats
	DRAM dram.Stats
}

// IPC returns core 0's IPC (the single-core headline number).
func (r Result) IPC() float64 {
	if len(r.Cores) == 0 {
		return 0
	}
	return r.Cores[0].IPC
}

// TotalMetaTraffic sums metadata traffic (blocks) across cores.
func (r Result) TotalMetaTraffic() uint64 {
	var t uint64
	for _, c := range r.Cores {
		t += c.Meta.Traffic()
	}
	return t
}

func subStats(a, b cache.Stats) cache.Stats {
	d := cache.Stats{
		DemandAccesses:   a.DemandAccesses - b.DemandAccesses,
		DemandHits:       a.DemandHits - b.DemandHits,
		DemandMisses:     a.DemandMisses - b.DemandMisses,
		PrefetchAccesses: a.PrefetchAccesses - b.PrefetchAccesses,
		PrefetchHits:     a.PrefetchHits - b.PrefetchHits,
		MetaReads:        a.MetaReads - b.MetaReads,
		MetaWrites:       a.MetaWrites - b.MetaWrites,
		PrefetchFills:    a.PrefetchFills - b.PrefetchFills,
		UsefulPrefetches: a.UsefulPrefetches - b.UsefulPrefetches,
		LatePrefetches:   a.LatePrefetches - b.LatePrefetches,
		UnusedPrefetches: a.UnusedPrefetches - b.UnusedPrefetches,
		Evictions:        a.Evictions - b.Evictions,
		Writebacks:       a.Writebacks - b.Writebacks,
		PortStallCycles:  a.PortStallCycles - b.PortStallCycles,
		MSHRStallCycles:  a.MSHRStallCycles - b.MSHRStallCycles,
		ExtraWaitCycles:  a.ExtraWaitCycles - b.ExtraWaitCycles,
	}
	for i := range d.Sources {
		d.Sources[i] = subSource(a.Sources[i], b.Sources[i])
	}
	return d
}

func subSource(a, b cache.SourceStats) cache.SourceStats {
	return cache.SourceStats{
		Fills:         a.Fills - b.Fills,
		UsefulTimely:  a.UsefulTimely - b.UsefulTimely,
		UsefulLate:    a.UsefulLate - b.UsefulLate,
		EvictedUnused: a.EvictedUnused - b.EvictedUnused,
	}
}

func subMeta(a, b meta.Stats) meta.Stats {
	return meta.Stats{
		Lookups:         a.Lookups - b.Lookups,
		TriggerHits:     a.TriggerHits - b.TriggerHits,
		Inserts:         a.Inserts - b.Inserts,
		Updates:         a.Updates - b.Updates,
		Reads:           a.Reads - b.Reads,
		Writes:          a.Writes - b.Writes,
		RearrangeReads:  a.RearrangeReads - b.RearrangeReads,
		RearrangeWrites: a.RearrangeWrites - b.RearrangeWrites,
		FilteredInserts: a.FilteredInserts - b.FilteredInserts,
		FilteredLookups: a.FilteredLookups - b.FilteredLookups,
		AliasedInserts:  a.AliasedInserts - b.AliasedInserts,
		Evictions:       a.Evictions - b.Evictions,
		DroppedResize:   a.DroppedResize - b.DroppedResize,
		Resizes:         a.Resizes - b.Resizes,
	}
}

func subDRAM(a, b dram.Stats) dram.Stats {
	return dram.Stats{
		Reads:        a.Reads - b.Reads,
		Writes:       a.Writes - b.Writes,
		RowHits:      a.RowHits - b.RowHits,
		RowMisses:    a.RowMisses - b.RowMisses,
		RowConflicts: a.RowConflicts - b.RowConflicts,
		QueueCycles:  a.QueueCycles - b.QueueCycles,
	}
}

// prefetcherDeltas builds the per-engine attribution between two snapshots,
// merging each source's private-level cache stats (L1 engine: L1D; L2 and
// temporal engines: L2) with the sim-side issue/drop counters. Shared by
// collect and the telemetry sampler so final results and interval records
// cannot drift in how attribution is defined.
func prefetcherDeltas(base, fin snapshot) []PrefetcherResult {
	l1d := subStats(fin.l1d, base.l1d)
	l2 := subStats(fin.l2, base.l2)
	out := make([]PrefetcherResult, 0, cache.NumSources-1)
	for src := cache.SrcL1; int(src) < cache.NumSources; src++ {
		ss := l1d.Sources[src]
		o := l2.Sources[src]
		out = append(out, PrefetcherResult{
			Source:           src.String(),
			Issued:           fin.issuedBy[src] - base.issuedBy[src],
			DroppedDuplicate: fin.droppedBy[src] - base.droppedBy[src],
			Fills:            ss.Fills + o.Fills,
			UsefulTimely:     ss.UsefulTimely + o.UsefulTimely,
			UsefulLate:       ss.UsefulLate + o.UsefulLate,
			EvictedUnused:    ss.EvictedUnused + o.EvictedUnused,
		})
	}
	return out
}

// collect assembles the measured-phase result after Run completes.
func (s *System) collect() Result {
	res := Result{LLC: s.llc.Stats, DRAM: s.dram.Stats}
	for _, cs := range s.cores {
		base, fin := cs.warmBase, cs.final
		cr := CoreResult{
			Instructions:     fin.instr - base.instr,
			Cycles:           fin.cycles - base.cycles,
			L1D:              subStats(fin.l1d, base.l1d),
			L2:               subStats(fin.l2, base.l2),
			PrefetchesIssued: fin.issued - base.issued,
			Prefetchers:      prefetcherDeltas(base, fin),
			Meta:             subMeta(fin.meta, base.meta),
		}
		if cr.Cycles > 0 {
			cr.IPC = float64(cr.Instructions) / float64(cr.Cycles)
		}
		res.Cores = append(res.Cores, cr)
	}
	return res
}
