package core

import (
	"math/rand"
	"testing"

	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

// measurePredictionAccuracy feeds a stream of lines (one PC) and measures
// the fraction of issued prefetch addresses that appear within the next
// horizon accesses — prefetcher-logic accuracy isolated from cache effects.
func measurePredictionAccuracy(t *testing.T, p *Prefetcher, lines []mem.Line, horizon int) (acc float64, issued int) {
	t.Helper()
	future := map[mem.Line][]int{}
	for i, l := range lines {
		future[l] = append(future[l], i)
	}
	good := 0
	var buf []prefetch.Request
	for i, l := range lines {
		buf = p.Train(prefetch.Event{Now: uint64(i * 30), PC: 7, Addr: mem.AddrOf(l)}, buf[:0])
		for _, r := range buf {
			issued++
			tl := mem.LineOf(r.Addr)
			for _, pos := range future[tl] {
				if pos > i && pos <= i+horizon {
					good++
					break
				}
			}
		}
	}
	if issued == 0 {
		return 0, 0
	}
	return float64(good) / float64(issued), issued
}

// repeatLaps replays one lap n times.
func repeatLaps(lap []mem.Line, n int) []mem.Line {
	out := make([]mem.Line, 0, len(lap)*n)
	for i := 0; i < n; i++ {
		out = append(out, lap...)
	}
	return out
}

func TestHighAccuracyOnUniqueStream(t *testing.T) {
	// A repeating stream in which each line occurs once per lap: the
	// cleanest temporal signal. Prediction accuracy must be high.
	rng := rand.New(rand.NewSource(3))
	lap := make([]mem.Line, 4000)
	for i, v := range rng.Perm(len(lap)) {
		lap[i] = mem.Line(1000 + v)
	}
	p := New(DefaultOptions(), testBridge())
	acc, issued := measurePredictionAccuracy(t, p, repeatLaps(lap, 6), 64)
	if issued < len(lap) {
		t.Fatalf("only %d prefetches for %d accesses", issued, 6*len(lap))
	}
	if acc < 0.75 {
		t.Errorf("accuracy on unique repeating stream = %.2f, want >= 0.75", acc)
	}
}

func TestAccuracySurvivesHotInterleaving(t *testing.T) {
	// A quarter of accesses hit a small hot head (ambiguous triggers: the
	// same line recurs with different successors); the rest are a cold
	// unique-per-lap permutation. The confidence bit must keep chains from
	// following a hot trigger onto some other instance's stream.
	rng := rand.New(rand.NewSource(9))
	nCold := 10000
	perm := rng.Perm(nCold)
	var lap []mem.Line
	pos := 0
	for pos < nCold {
		if rng.Float64() < 0.25 {
			u := rng.Float64()
			lap = append(lap, mem.Line(100+int(u*u*750)))
		} else {
			lap = append(lap, mem.Line(10000+perm[pos]))
			pos++
		}
	}
	p := New(DefaultOptions(), testBridge())
	acc, issued := measurePredictionAccuracy(t, p, repeatLaps(lap, 5), 80)
	if issued == 0 {
		t.Fatal("no prefetches issued")
	}
	if acc < 0.45 {
		t.Errorf("accuracy with hot interleaving = %.2f, want >= 0.45", acc)
	}
}

func TestAccuracyDegradesGracefullyWithAmbiguity(t *testing.T) {
	// Raising per-lap line multiplicity increases trigger ambiguity;
	// accuracy should fall but never collapse to noise.
	measure := func(mult float64) float64 {
		rng := rand.New(rand.NewSource(5))
		n := 4000
		uses := int(float64(n) * mult)
		lap := make([]mem.Line, uses)
		for i := range lap {
			lap[i] = mem.Line(1000 + rng.Intn(n))
		}
		p := New(DefaultOptions(), testBridge())
		acc, _ := measurePredictionAccuracy(t, p, repeatLaps(lap, 6), 64)
		return acc
	}
	low, high := measure(1.0), measure(3.0)
	if low < high {
		t.Errorf("accuracy at multiplicity 1 (%.2f) below multiplicity 3 (%.2f)", low, high)
	}
	if high < 0.2 {
		t.Errorf("accuracy at multiplicity 3 collapsed to %.2f", high)
	}
}

func TestConfidenceGateLimitsWrongPathIssues(t *testing.T) {
	// With the confidence gate, the fraction of issues landing far from
	// their next occurrence (wrong-instance chains) must stay bounded.
	rng := rand.New(rand.NewSource(9))
	nCold := 8000
	perm := rng.Perm(nCold)
	var lap []mem.Line
	pos := 0
	for pos < nCold {
		if rng.Float64() < 0.25 {
			lap = append(lap, mem.Line(100+rng.Intn(500)))
		} else {
			lap = append(lap, mem.Line(10000+perm[pos]))
			pos++
		}
	}
	lines := repeatLaps(lap, 5)
	future := map[mem.Line][]int{}
	for i, l := range lines {
		future[l] = append(future[l], i)
	}
	p := New(DefaultOptions(), testBridge())
	var buf []prefetch.Request
	far, total := 0, 0
	for i, l := range lines {
		buf = p.Train(prefetch.Event{Now: uint64(i * 30), PC: 7, Addr: mem.AddrOf(l)}, buf[:0])
		for _, r := range buf {
			total++
			next := -1
			for _, fp := range future[mem.LineOf(r.Addr)] {
				if fp > i {
					next = fp - i
					break
				}
			}
			if next < 0 || next > 1000 {
				far++
			}
		}
	}
	if total == 0 {
		t.Fatal("no prefetches issued")
	}
	if frac := float64(far) / float64(total); frac > 0.50 {
		t.Errorf("far/wrong-instance issues = %.2f of %d, want <= 0.50", frac, total)
	}
}
