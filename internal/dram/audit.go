package dram

import "streamline/internal/audit"

// AuditScan verifies the memory model's invariants against a, reporting each
// breach at cycle now. All checks are read-only.
//
// Invariants:
//   - row-buffer state legality: a bank's open row is either -1 (precharged)
//     or a non-negative row number — any other value means the activate/
//     precharge state machine was corrupted;
//   - per-channel bandwidth conservation: every read and write was charged
//     to exactly one channel, so the per-channel transfer counts sum to the
//     global access count (a miscounted channel silently under-models
//     contention);
//   - row-outcome accounting: every read was classified as exactly one of
//     row hit, row miss (closed bank), or row conflict.
func (d *DRAM) AuditScan(a *audit.Auditor, now uint64) {
	if a == nil {
		return
	}
	for ch := range d.banks {
		for bk := range d.banks[ch] {
			if row := d.banks[ch][bk].openRow; row < -1 {
				a.Reportf(now, "dram", "row-state-illegal",
					"channel %d bank %d open row %d (want -1 or >= 0)", ch, bk, row)
			}
		}
	}
	var xfers uint64
	for _, n := range d.chanXfers {
		xfers += n
	}
	if total := d.Stats.Reads + d.Stats.Writes; xfers != total {
		a.Reportf(now, "dram", "channel-conservation",
			"per-channel transfers sum to %d, accesses total %d", xfers, total)
	}
	if outcomes := d.Stats.RowHits + d.Stats.RowMisses + d.Stats.RowConflicts; outcomes != d.Stats.Reads {
		a.Reportf(now, "dram", "row-outcome-accounting",
			"row hits %d + misses %d + conflicts %d != reads %d",
			d.Stats.RowHits, d.Stats.RowMisses, d.Stats.RowConflicts, d.Stats.Reads)
	}
}
