package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// DefaultEventLimit bounds retained event records per sink so a pathological
// run (an MSHR-full storm, say) cannot produce an unbounded trace. Dropped
// events are counted per component/event and reported in the closing
// summary record. Interval records are never dropped: their count is bounded
// by instructions/interval.
const DefaultEventLimit = 4096

// Sink serializes telemetry records to w as JSON Lines. A sink from NewSink
// is not safe for concurrent use; give each simulated system its own Sink
// (the experiment runner does), or use NewConcurrentSink when multiple
// goroutines share one (the serving daemon's request handlers). A nil *Sink
// is a valid no-op sink.
type Sink struct {
	w   *bufio.Writer
	err error

	// mu, when non-nil, serializes record emission (NewConcurrentSink).
	mu *sync.Mutex

	minSev Severity
	limit  int

	intervals uint64
	events    uint64
	dropped   map[string]uint64
	droppedN  uint64
}

// NewSink returns a sink writing to w with the default event limit and a
// minimum severity of Info.
func NewSink(w io.Writer) *Sink {
	return &Sink{
		w:      bufio.NewWriter(w),
		minSev: Info,
		limit:  DefaultEventLimit,
	}
}

// NewConcurrentSink returns a sink like NewSink whose record emission and
// close are mutex-protected, so handlers on many goroutines can share it.
// The severity and limit setters are still setup-time only: call them before
// the first record is emitted.
func NewConcurrentSink(w io.Writer) *Sink {
	s := NewSink(w)
	s.mu = &sync.Mutex{}
	return s
}

// lock acquires the emission mutex when this sink is concurrent; the
// returned function releases it (a no-op for single-goroutine sinks).
func (s *Sink) lock() func() {
	if s == nil || s.mu == nil {
		return func() {}
	}
	s.mu.Lock()
	return s.mu.Unlock
}

// SetMinSeverity sets the lowest severity of event records to retain.
func (s *Sink) SetMinSeverity(sev Severity) {
	if s != nil {
		s.minSev = sev
	}
}

// SetEventLimit overrides the retained-event bound (<=0 restores the
// default).
func (s *Sink) SetEventLimit(n int) {
	if s == nil {
		return
	}
	if n <= 0 {
		n = DefaultEventLimit
	}
	s.limit = n
}

func (s *Sink) wants(sev Severity) bool {
	return s != nil && sev >= s.minSev
}

// emit marshals one record and appends it as a JSONL line.
func (s *Sink) emit(v any) {
	if s == nil || s.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		return
	}
	s.err = s.w.WriteByte('\n')
}

// Record writes one foreign record as a JSONL line, outside the
// event/interval accounting: no severity filter, no retention bound, and no
// contribution to the closing summary. It serves JSONL streams that are not
// simulator telemetry — the daemon's access log — but want the same
// buffered, mutex-guarded, first-error-sticky emission. Pair with Flush
// rather than Close so the stream stays homogeneous (one record shape, no
// trailing summary line).
func (s *Sink) Record(v any) {
	if s == nil {
		return
	}
	defer s.lock()()
	s.emit(v)
}

// Flush writes buffered output without the closing summary record — the
// finalizer for sinks carrying foreign records (see Record), where a
// summary line would corrupt the stream. It returns the first error
// encountered over the sink's lifetime.
func (s *Sink) Flush() error {
	if s == nil {
		return nil
	}
	defer s.lock()()
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Interval writes one interval record (never filtered or dropped).
func (s *Sink) Interval(r IntervalRecord) {
	if s == nil {
		return
	}
	defer s.lock()()
	s.intervals++
	s.emit(r)
}

// Event writes one event record, applying the severity filter and the
// retention bound.
func (s *Sink) Event(e EventRecord) {
	if s == nil {
		return
	}
	if !s.wants(severityOf(e.Severity)) {
		return
	}
	defer s.lock()()
	if s.events >= uint64(s.limit) {
		if s.dropped == nil {
			s.dropped = make(map[string]uint64)
		}
		s.dropped[e.Component+"/"+e.Event]++
		s.droppedN++
		return
	}
	s.events++
	s.emit(e)
}

// severityOf parses a record's severity string, defaulting to Info on
// unknown values so foreign records are not silently filtered.
func severityOf(s string) Severity {
	if sev, err := ParseSeverity(s); err == nil {
		return sev
	}
	return Info
}

// summaryRecord closes the trace with totals, so a reader knows whether the
// event trace is complete and what was dropped.
type summaryRecord struct {
	Type      string `json:"type"` // always "summary"
	Intervals uint64 `json:"intervals"`
	Events    uint64 `json:"events"`
	Dropped   uint64 `json:"droppedEvents"`
	// Drops lists per component/event drop counts, sorted by key so the
	// summary is deterministic.
	Drops []dropCount `json:"drops,omitempty"`
}

type dropCount struct {
	Event string `json:"event"`
	Count uint64 `json:"count"`
}

// Close writes the summary record and flushes. It returns the first error
// encountered over the sink's lifetime.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	defer s.lock()()
	sum := summaryRecord{
		Type:      "summary",
		Intervals: s.intervals,
		Events:    s.events,
		Dropped:   s.droppedN,
	}
	for k, n := range s.dropped {
		sum.Drops = append(sum.Drops, dropCount{Event: k, Count: n})
	}
	sort.Slice(sum.Drops, func(i, j int) bool { return sum.Drops[i].Event < sum.Drops[j].Event })
	s.emit(sum)
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}
