// Command bench runs the kernel benchmark scenarios (the same set
// BenchmarkKernel in internal/sim uses) outside the testing framework and
// writes a JSON baseline with per-record metrics. The committed BENCH_*.json
// files at the repo root are produced by this tool, so future PRs can
// compare against a fixed trajectory:
//
//	go run ./cmd/bench -o BENCH_PR4.json
//	go run ./cmd/bench -runs 5 -scenario 1core-streamline-sphinx06 -o -
//
// Each scenario runs `runs` times; the reported ns/record and records/sec
// come from the fastest run (least scheduler noise), allocs/record from the
// allocator's Mallocs delta of that run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"streamline/internal/sim"
)

// scenarioResult is one scenario's measurement in the JSON baseline.
type scenarioResult struct {
	Name            string  `json:"name"`
	Cores           int     `json:"cores"`
	Records         uint64  `json:"records"`
	NsPerRecord     float64 `json:"ns_per_record"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
	RecordsPerSec   float64 `json:"records_per_sec"`
}

type baseline struct {
	GoVersion string           `json:"go_version"`
	GoArch    string           `json:"go_arch"`
	Runs      int              `json:"runs"`
	Scenarios []scenarioResult `json:"scenarios"`
}

func main() {
	var (
		out      = flag.String("o", "-", "output file (- for stdout)")
		runs     = flag.Int("runs", 3, "runs per scenario (fastest wins)")
		scenario = flag.String("scenario", "", "run only the named scenario")
	)
	flag.Parse()
	if *runs < 1 {
		fmt.Fprintln(os.Stderr, "bench: -runs must be >= 1")
		os.Exit(2)
	}

	scenarios := sim.KernelScenarios()
	if *scenario != "" {
		k, err := sim.KernelScenarioByName(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		scenarios = []sim.KernelScenario{k}
	}

	b := baseline{GoVersion: runtime.Version(), GoArch: runtime.GOARCH, Runs: *runs}
	for _, k := range scenarios {
		res, err := measure(k, *runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", k.Name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%-28s %9.1f ns/record %8.4f allocs/record %11.0f records/sec\n",
			res.Name, res.NsPerRecord, res.AllocsPerRecord, res.RecordsPerSec)
		b.Scenarios = append(b.Scenarios, res)
	}

	enc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
}

// measure runs the scenario `runs` times and keeps the fastest.
func measure(k sim.KernelScenario, runs int) (scenarioResult, error) {
	best := scenarioResult{Name: k.Name, Cores: k.Cores}
	for r := 0; r < runs; r++ {
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		_, records, err := k.Run()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return scenarioResult{}, err
		}
		if records == 0 {
			return scenarioResult{}, fmt.Errorf("no records executed")
		}
		ns := float64(elapsed.Nanoseconds()) / float64(records)
		if r == 0 || ns < best.NsPerRecord {
			best.Records = records
			best.NsPerRecord = ns
			best.AllocsPerRecord = float64(ms1.Mallocs-ms0.Mallocs) / float64(records)
			best.RecordsPerSec = float64(records) / elapsed.Seconds()
		}
	}
	return best, nil
}
