package mem

import (
	"testing"
	"testing/quick"
)

func TestLineGeometry(t *testing.T) {
	tests := []struct {
		addr Addr
		line Line
		off  uint64
	}{
		{0, 0, 0},
		{63, 0, 63},
		{64, 1, 0},
		{65, 1, 1},
		{4096, 64, 0},
		{0xdeadbeef, 0xdeadbeef >> 6, 0xdeadbeef & 63},
	}
	for _, tt := range tests {
		if got := LineOf(tt.addr); got != tt.line {
			t.Errorf("LineOf(%#x) = %#x, want %#x", tt.addr, got, tt.line)
		}
		if got := Offset(tt.addr); got != tt.off {
			t.Errorf("Offset(%#x) = %d, want %d", tt.addr, got, tt.off)
		}
	}
}

func TestAddrOfRoundTrip(t *testing.T) {
	f := func(l uint64) bool {
		line := Line(l & ((1 << 58) - 1))
		return LineOf(AddrOf(line)) == line
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineOfIsMonotonicWithinLine(t *testing.T) {
	f := func(a uint64, off uint8) bool {
		base := Addr(a &^ (LineSize - 1) & ((1 << 60) - 1))
		return LineOf(base) == LineOf(base+Addr(off%LineSize))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashLineWidth(t *testing.T) {
	f := func(l uint64, nb uint8) bool {
		bits := uint(nb%32) + 1
		h := HashLine(Line(l), bits)
		return h < 1<<bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashLineDistribution(t *testing.T) {
	// Hashing sequential lines into 10 bits should spread across most
	// buckets; a badly mixed hash would concentrate.
	seen := map[uint64]bool{}
	for i := Line(0); i < 4096; i++ {
		seen[HashLine(i, 10)] = true
	}
	if len(seen) < 900 {
		t.Errorf("10-bit hash of 4096 sequential lines hit only %d buckets", len(seen))
	}
}

func TestHashPCDeterminism(t *testing.T) {
	if HashPC(0x401234, 8) != HashPC(0x401234, 8) {
		t.Fatal("HashPC is not deterministic")
	}
	if HashPC(0x401234, 8) == HashPC(0x401235, 8) &&
		HashPC(0x401234, 8) == HashPC(0x401236, 8) {
		t.Error("HashPC maps three adjacent PCs to one value; poor mixing")
	}
}

func TestKindPredicates(t *testing.T) {
	demand := []Kind{Load, Store, Ifetch}
	for _, k := range demand {
		if !k.IsDemand() {
			t.Errorf("%v.IsDemand() = false, want true", k)
		}
		if k.IsMeta() {
			t.Errorf("%v.IsMeta() = true, want false", k)
		}
	}
	for _, k := range []Kind{Prefetch, Writeback, MetaRead, MetaWrite} {
		if k.IsDemand() {
			t.Errorf("%v.IsDemand() = true, want false", k)
		}
	}
	for _, k := range []Kind{MetaRead, MetaWrite} {
		if !k.IsMeta() {
			t.Errorf("%v.IsMeta() = false, want true", k)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := Load; k <= MetaWrite; k++ {
		if s := k.String(); s == "" {
			t.Errorf("Kind(%d).String() empty", k)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}
