package exp

import (
	"strings"
	"testing"
)

// microScale is as small as the experiments can meaningfully go — the
// exported Micro scale (`-scale micro`), shared with the crash-injection
// harness. The smoke tests verify every runner executes, produces non-empty
// tables, and emits parseable cells — the full results come from
// cmd/experiments and the bench harness.
func microScale() Scale { return Micro }

// fastExperiments are cheap enough to smoke-test on every `go test` run.
var fastExperiments = []string{
	"table1", "table2", "workloads", "subset",
	"fig9", "fig10de", "fig12b", "fig13b", "ext-bypass",
}

func TestExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not -short")
	}
	for _, id := range fastExperiments {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q missing", id)
			}
			r := NewRunner(microScale())
			tables := e.Run(r)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %s has no rows", tb.ID)
				}
				if len(tb.Columns) == 0 {
					t.Errorf("table %s has no columns", tb.ID)
				}
				out := tb.String()
				if !strings.Contains(out, tb.ID) {
					t.Errorf("rendered table missing its ID")
				}
				for _, row := range tb.Rows {
					if len(row) > len(tb.Columns) {
						t.Errorf("table %s row wider than header: %v", tb.ID, row)
					}
				}
			}
		})
	}
}

func TestHeavyExperimentsRegistered(t *testing.T) {
	// The heavy ones are exercised by the bench harness; here we just
	// ensure they exist and carry titles.
	for _, id := range []string{"fig10a", "fig10b", "fig10c", "fig10f",
		"fig11ab", "fig11cd", "fig12a", "fig12c", "fig13a", "fig13c",
		"fig14", "fig15"} {
		e, ok := ByID(id)
		if !ok {
			t.Errorf("experiment %q missing", id)
			continue
		}
		if e.Title == "" {
			t.Errorf("experiment %q has no title", id)
		}
	}
}
