package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamline/internal/exp/runner"
	"streamline/internal/exp/store"
	"streamline/internal/metrics"
	"streamline/internal/sim"
	"streamline/internal/telemetry"
)

// Config sizes one Server. Zero values select the documented defaults.
type Config struct {
	// Workers bounds concurrently executing simulations; <=0 means
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds admitted-but-unfinished distinct computations
	// (running + waiting for a worker). A request that would exceed it is
	// refused with 429 and Retry-After; <=0 means max(4, 4*Workers).
	// Collapsed duplicates never consume queue slots.
	QueueDepth int
	// JobTimeout bounds one simulation's wall clock via the runner fault
	// policy; an exceeded request answers 504. Zero means unbounded.
	JobTimeout time.Duration
	// MaxBodyBytes caps the request body; over-long bodies answer 413.
	// <=0 means 1MB.
	MaxBodyBytes int64
	// CacheEntries sizes the in-memory LRU over response bodies; <=0
	// means 256.
	CacheEntries int
	// Store, when non-nil, is the durable content-addressed result tier:
	// every computed response is persisted (fsynced, checksummed) and
	// replayed byte-identically across restarts.
	Store *store.Store
	// Telemetry, when non-nil, receives one per-request lifecycle event
	// (component "serve"). Build its sink with telemetry.NewConcurrentSink:
	// handlers emit from many goroutines.
	Telemetry *telemetry.Collector
	// AccessLog, when non-nil, receives one AccessRecord JSONL line per
	// /simulate request (see accesslog.go). Build it with
	// telemetry.NewConcurrentSink — handlers emit from many goroutines —
	// and finalize with its Flush, not Close.
	AccessLog *telemetry.Sink
	// SlowRequest, when positive, promotes the full stage breakdown of any
	// request at least this slow into its access-log record.
	SlowRequest time.Duration
	// Metrics, when non-nil, is the registry /metricz renders and the
	// server's instruments live in; nil means the server creates its own.
	// Pass a shared registry to combine the daemon's serving metrics with
	// other subsystems' on one exposition.
	Metrics *metrics.Registry
}

// Counters is a snapshot of the server's request accounting. Every request
// lands in exactly one of: Invalid, MemoryHits, StoreHits, Collapsed,
// Rejected, DrainRefused, or the computation outcomes
// Computed/Failed/Canceled.
type Counters struct {
	Requests   uint64 `json:"requests"`
	Invalid    uint64 `json:"invalid"`
	MemoryHits uint64 `json:"memoryHits"`
	StoreHits  uint64 `json:"storeHits"`
	Collapsed  uint64 `json:"collapsed"`
	Computed   uint64 `json:"computed"`
	Failed     uint64 `json:"failed"`
	// Canceled counts computations stopped before completion — every waiter
	// disconnected, or the drain deadline passed. Canceled results are never
	// cached.
	Canceled uint64 `json:"canceled"`
	Rejected uint64 `json:"rejected"`
	// DrainRefused counts requests refused with 503 because the server was
	// draining when they asked for a new computation.
	DrainRefused uint64 `json:"drainRefused"`
}

// Status is the /statusz document.
type Status struct {
	Counters
	Workers    int  `json:"workers"`
	QueueDepth int  `json:"queueDepth"`
	Queued     int  `json:"queued"`
	InFlight   int  `json:"inFlight"`
	Draining   bool `json:"draining"`
	// HitRate is cache-served completions (memory + store + collapsed)
	// over all completed lookups.
	HitRate      float64 `json:"hitRate"`
	CacheEntries int     `json:"cacheEntries"`
	// StoreRecords is the durable tier's record count, or -1 without one.
	StoreRecords  int     `json:"storeRecords"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// Server executes validated simulation requests on a bounded worker pool
// with single-flight batching, an LRU response cache, an optional durable
// store tier, and queue-full backpressure. Create with New; expose with
// Handler; stop with Drain.
type Server struct {
	cfg   Config
	cache *resultCache
	sem   chan struct{} // worker slots

	mu       sync.Mutex
	flights  map[string]*flight
	queued   int
	draining bool

	wg       sync.WaitGroup
	inFlight atomic.Int64
	seq      atomic.Uint64
	start    time.Time
	// boot is a per-process nonce prefixed to request IDs so IDs stay
	// unique across daemon restarts sharing one access log.
	boot    string
	metrics *serverMetrics
	// jobMetrics exports cache-miss computations into the shared
	// runner_job_* instrument family on the same registry.
	jobMetrics *runner.Metrics

	requests, invalid, memHits, storeHits atomic.Uint64
	collapsed, computed, failed, rejected atomic.Uint64
	canceled, drainRefused                atomic.Uint64

	hookMu      sync.Mutex
	computeHook func(key string)
}

// flight is one in-progress computation; concurrent identical requests wait
// on done and share its response. status, body, outcome, and stages are
// written by the computing goroutine before done closes, so waiters that
// observed the close may read them (the originating request promotes stages
// into its access record).
type flight struct {
	done    chan struct{}
	status  int
	body    []byte
	outcome string
	stages  StageTimings

	// cancel stops the computation cooperatively: the engine halts at its
	// next epoch boundary and nothing is cached. The last disconnecting
	// waiter calls it, Drain calls it on deadline, and compute calls it on
	// exit to release the context.
	cancel context.CancelFunc
	// waiters counts requests awaiting done; guarded by Server.mu.
	waiters int
	// records is the computation's live progress (trace records retired),
	// published from the engine's epoch observer and summed into the
	// streamd_sim_progress gauge.
	records atomic.Uint64
}

// New returns a server over cfg with defaults applied.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = max(4, 4*cfg.Workers)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	s := &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheEntries),
		sem:     make(chan struct{}, cfg.Workers),
		flights: make(map[string]*flight),
		start:   time.Now(),
	}
	s.boot = fmt.Sprintf("%08x", uint32(s.start.UnixNano()))
	s.metrics = newServerMetrics(s, cfg.Metrics)
	s.jobMetrics = runner.NewMetrics(s.metrics.reg)
	return s
}

// Handler returns the daemon's HTTP surface: POST /simulate, GET /healthz,
// GET /statusz, GET /metricz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/simulate", s.handleSimulate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/metricz", s.handleMetricz)
	return mux
}

// requestID builds the ID exposed as X-Streamd-Request and threaded through
// the access log and per-request telemetry events.
func (s *Server) requestID(seq uint64) string {
	return fmt.Sprintf("%s-%06d", s.boot, seq)
}

// SetComputeHook installs fn, invoked at the start of every cache-miss
// computation (inside the fault policy) with the request key — the test seam
// for saturating the queue and scripting timeouts deterministically.
func (s *Server) SetComputeHook(fn func(key string)) {
	s.hookMu.Lock()
	s.computeHook = fn
	s.hookMu.Unlock()
}

func (s *Server) getComputeHook() func(string) {
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	return s.computeHook
}

// Counters returns a snapshot of the request accounting.
func (s *Server) Counters() Counters {
	return Counters{
		Requests:     s.requests.Load(),
		Invalid:      s.invalid.Load(),
		MemoryHits:   s.memHits.Load(),
		StoreHits:    s.storeHits.Load(),
		Collapsed:    s.collapsed.Load(),
		Computed:     s.computed.Load(),
		Failed:       s.failed.Load(),
		Canceled:     s.canceled.Load(),
		Rejected:     s.rejected.Load(),
		DrainRefused: s.drainRefused.Load(),
	}
}

// Status returns the /statusz document.
func (s *Server) Status() Status {
	s.mu.Lock()
	queued, draining := s.queued, s.draining
	s.mu.Unlock()
	st := Status{
		Counters:      s.Counters(),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.cfg.QueueDepth,
		Queued:        queued,
		InFlight:      int(s.inFlight.Load()),
		Draining:      draining,
		CacheEntries:  s.cache.len(),
		StoreRecords:  -1,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if s.cfg.Store != nil {
		st.StoreRecords = s.cfg.Store.Len()
	}
	hits := st.MemoryHits + st.StoreHits + st.Collapsed
	if total := hits + st.Computed + st.Failed + st.Canceled; total > 0 {
		st.HitRate = float64(hits) / float64(total)
	}
	return st
}

// Drain stops admitting new computations and waits for in-flight ones to
// finish (and persist). If ctx's deadline passes first, every in-flight
// computation is canceled cooperatively and Drain waits for the workers to
// unwind before returning ctx's error — a drained server leaves no
// simulating goroutine behind either way.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, f := range s.flights {
			f.cancel()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// event emits one request-lifecycle telemetry event; seq (the request's
// arrival number) stands in for the cycle field.
func (s *Server) event(seq uint64, outcome, detail string) {
	s.cfg.Telemetry.Eventf(seq, -1, "serve", outcome, telemetry.Info, "%s", detail)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allowGetHead(w, r) {
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if r.Method == http.MethodHead {
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if !allowGetHead(w, r) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r.Method == http.MethodHead {
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Status())
}

// writeError answers a JSON error document, returning its body length.
func writeError(w http.ResponseWriter, status int, msg string) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	doc, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	doc = append(doc, '\n')
	n, _ := w.Write(doc)
	return n
}

// respond serves a response body with its cache-tier tag ("none" for a fresh
// computation, "flight" for a collapsed duplicate, "memory", "store").
func respond(w http.ResponseWriter, body []byte, tier string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Streamd-Cache", tier)
	w.Write(body)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST a simulation request to /simulate")
		return
	}
	seq := s.seq.Add(1)
	s.requests.Add(1)
	span := &accessSpan{id: s.requestID(seq), t0: time.Now()}
	w.Header().Set("X-Streamd-Request", span.id)

	tDecode := time.Now()
	sp, err := DecodeRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	decode := time.Since(tDecode)
	span.stages.DecodeUs = us(decode)
	s.metrics.observeStage(stageDecode, decode)
	if err != nil {
		s.invalid.Add(1)
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		s.event(seq, "invalid", err.Error())
		n := writeError(w, status, err.Error())
		s.finish(span, status, "invalid", "", n)
		return
	}
	span.spec = sp.ID()
	key := sp.Key()

	// Tiers 1 and 2: the in-memory LRU, then the durable store
	// (checksum-verified by Get). Both probes share the lookup span.
	tLookup := time.Now()
	body, hit := s.cache.get(key)
	var lookupTier string
	if hit {
		lookupTier = "memory"
	} else if s.cfg.Store != nil {
		if payload, ok := s.cfg.Store.Get(key); ok {
			s.cache.add(key, payload)
			body, lookupTier = payload, "store"
		}
	}
	lookup := time.Since(tLookup)
	span.stages.LookupUs = us(lookup)
	s.metrics.observeStage(stageLookup, lookup)
	switch lookupTier {
	case "memory":
		s.memHits.Add(1)
		s.event(seq, "hit-memory", sp.ID())
		respond(w, body, "memory")
		s.finish(span, http.StatusOK, "memory-hit", "memory", len(body))
		return
	case "store":
		s.storeHits.Add(1)
		s.event(seq, "hit-store", sp.ID())
		respond(w, body, "store")
		s.finish(span, http.StatusOK, "store-hit", "store", len(body))
		return
	}
	// Tier 3: single-flight on the in-progress computation, else admit.
	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		f.waiters++
		s.mu.Unlock()
		s.collapsed.Add(1)
		s.event(seq, "collapsed", sp.ID())
		s.settle(w, r, span, f, "flight", "collapsed")
		return
	}
	if s.draining {
		queued := s.queued
		s.mu.Unlock()
		s.drainRefused.Add(1)
		s.event(seq, "drain-refused", sp.ID())
		w.Header().Set("Retry-After", s.retryAfter(queued))
		n := writeError(w, http.StatusServiceUnavailable, "draining")
		s.finish(span, http.StatusServiceUnavailable, "drain-refused", "", n)
		return
	}
	if s.queued >= s.cfg.QueueDepth {
		queued := s.queued
		s.mu.Unlock()
		s.rejected.Add(1)
		s.event(seq, "rejected", sp.ID())
		w.Header().Set("Retry-After", s.retryAfter(queued))
		n := writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("queue full (%d computations admitted)", s.cfg.QueueDepth))
		s.finish(span, http.StatusTooManyRequests, "rejected", "", n)
		return
	}
	fctx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	s.flights[key] = f
	s.queued++
	s.wg.Add(1)
	s.mu.Unlock()

	go s.compute(fctx, seq, key, sp, f, time.Now())
	s.settle(w, r, span, f, "none", "computed")
}

// retryAfter derives the Retry-After value for a backpressure response
// (429/503) from live load instead of a hardcoded constant: the time to
// drain the current queue through the worker pool at the observed mean
// simulate latency, rounded up to whole seconds and clamped to [1,30].
// The clamp guarantees a positive integer before any latency has been
// observed (mean 0) and keeps the hint bounded when the queue backs up
// behind pathologically slow jobs.
func (s *Server) retryAfter(queued int) string {
	mean := s.metrics.stage[stageSimulate].Mean() // seconds; 0 with no observations
	secs := math.Ceil(float64(queued) * mean / float64(s.cfg.Workers))
	if secs < 1 || math.IsNaN(secs) {
		secs = 1
	} else if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(int(secs))
}

// settle awaits the flight, serves its response, and closes the request's
// access span. The originating request ("none") inherits the flight's
// compute-side stage spans. A client that goes away before the flight
// completes is logged as abandoned; when it was the flight's last waiter the
// computation has no audience left, so it is canceled — the engine stops at
// its next epoch boundary and nothing is cached.
func (s *Server) settle(w http.ResponseWriter, r *http.Request, span *accessSpan, f *flight, tier, outcome string) {
	select {
	case <-f.done:
		if tier == "none" {
			span.stages.QueueWaitUs = f.stages.QueueWaitUs
			span.stages.SimulateUs = f.stages.SimulateUs
			span.stages.MarshalUs = f.stages.MarshalUs
			span.stages.PersistUs = f.stages.PersistUs
		}
		if f.status == http.StatusOK {
			respond(w, f.body, tier)
			s.finish(span, f.status, outcome, tier, len(f.body))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(f.status)
		w.Write(f.body)
		s.finish(span, f.status, f.outcome, tier, len(f.body))
	case <-r.Context().Done():
		s.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		s.mu.Unlock()
		if last {
			f.cancel()
		}
		// 499: nginx's "client closed request" — never sent, log-only.
		s.finish(span, 499, "abandoned", tier, 0)
	}
}

// compute runs one cache-miss simulation on a worker slot under a
// cooperative fault policy, publishes the marshaled response to the durable
// store and the LRU before releasing the flight, and never lets a panicking,
// hung, or canceled job take the daemon down — or leave a goroutine behind.
// ctx is the flight's context: canceling it (last waiter gone, drain
// deadline) stops the engine at its next epoch boundary, and the partial
// result is never cached.
func (s *Server) compute(ctx context.Context, seq uint64, key string, sp Spec, f *flight, admitted time.Time) {
	defer s.wg.Done()
	defer f.cancel() // release the flight context on every path

	var res sim.Result
	var err error
	select {
	case s.sem <- struct{}{}: // wait for a worker slot
		queueWait := time.Since(admitted)
		f.stages.QueueWaitUs = us(queueWait)
		s.metrics.observeStage(stageQueueWait, queueWait)
		s.inFlight.Add(1)

		tSim := time.Now()
		pol := runner.FaultPolicy{Timeout: s.cfg.JobTimeout, Cooperative: true, Metrics: s.jobMetrics}
		res, err = runner.Execute(ctx, pol, nil, sp.ID(),
			func(ctx context.Context) (sim.Result, error) {
				if hook := s.getComputeHook(); hook != nil {
					hook(key)
				}
				cfg, err := sp.Config()
				if err != nil {
					return sim.Result{}, runner.Permanent(err)
				}
				sys, err := sp.NewSystem(cfg)
				if err != nil {
					return sim.Result{}, runner.Permanent(err)
				}
				return sys.RunCtx(ctx, 0, func(p sim.Progress) {
					f.records.Store(p.Records)
				})
			})
		simulate := time.Since(tSim)
		f.stages.SimulateUs = us(simulate)
		s.metrics.observeStage(stageSimulate, simulate)

		s.inFlight.Add(-1)
		<-s.sem
	case <-ctx.Done():
		// Canceled while still queued: bail without taking a slot.
		err = ctx.Err()
	}

	var body []byte
	status := http.StatusOK
	outcome := "computed"
	if err == nil {
		tMarshal := time.Now()
		body, err = json.Marshal(BuildResult(sp, res))
		marshal := time.Since(tMarshal)
		f.stages.MarshalUs = us(marshal)
		s.metrics.observeStage(stageMarshal, marshal)
	}
	if err != nil {
		var te *runner.TimeoutError
		switch {
		case errors.As(err, &te):
			s.failed.Add(1)
			outcome, status = "failed", http.StatusGatewayTimeout
			s.event(seq, "failed", sp.ID()+": "+err.Error())
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			s.canceled.Add(1)
			outcome, status = "canceled", http.StatusServiceUnavailable
			err = errors.New("simulation canceled before completion")
			s.event(seq, "canceled", sp.ID())
		default:
			s.failed.Add(1)
			outcome, status = "failed", http.StatusInternalServerError
			s.event(seq, "failed", sp.ID()+": "+err.Error())
		}
		doc, _ := json.Marshal(struct {
			Error string `json:"error"`
		}{err.Error()})
		body = doc
	} else {
		// Persist before publishing: a client that saw this response can
		// rely on a restart replaying it (PutRaw fsyncs).
		if s.cfg.Store != nil {
			tPersist := time.Now()
			if perr := s.cfg.Store.PutRaw(key, sp.ID(), body); perr != nil {
				s.event(seq, "store-error", perr.Error())
			}
			persist := time.Since(tPersist)
			f.stages.PersistUs = us(persist)
			s.metrics.observeStage(stagePersist, persist)
		}
		s.cache.add(key, body)
		s.computed.Add(1)
		s.event(seq, "computed", sp.ID())
	}

	f.status = status
	f.body = body
	f.outcome = outcome
	close(f.done)

	// Release the flight last: by now the result (if any) is already in the
	// cache, so there is no window where neither tier covers the key.
	s.mu.Lock()
	delete(s.flights, key)
	s.queued--
	s.mu.Unlock()
}
