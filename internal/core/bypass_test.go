package core

import (
	"math/rand"
	"testing"

	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

// scanPlusChase interleaves a stable chase on PC 1 with a never-repeating
// scan on PC 2, the mcf-like mix where bypassing pays.
func scanPlusChase(laps int, seed int64) (pcs []mem.PC, lines []mem.Line) {
	rng := rand.New(rand.NewSource(seed))
	lap := make([]mem.Line, 3000)
	for i, v := range rng.Perm(len(lap)) {
		lap[i] = mem.Line(5000 + v)
	}
	scan := mem.Line(1 << 24)
	for l := 0; l < laps; l++ {
		for i, x := range lap {
			pcs = append(pcs, 1)
			lines = append(lines, x)
			if i%4 == 0 {
				pcs = append(pcs, 2)
				lines = append(lines, scan)
				scan++
			}
		}
	}
	return
}

// feedOne trains the prefetcher with a single event and returns how many
// prefetches it issued.
func feedOne(p *Prefetcher, pc mem.PC, line mem.Line, i int) int {
	reqs := p.Train(prefetch.Event{Now: uint64(i * 20), PC: pc, Addr: mem.AddrOf(line)}, nil)
	return len(reqs)
}

func TestBypassSuppressesScanInserts(t *testing.T) {
	o := DefaultOptions()
	o.Bypass = true
	p := New(o, testBridge())
	pcs, lines := scanPlusChase(8, 1)
	for i := range lines {
		feedOne(p, pcs[i], lines[i], i)
	}
	if p.Stats.BypassedInserts == 0 {
		t.Fatal("bypass never suppressed a scan insert")
	}
	if !p.bypass.shouldBypass(2) {
		t.Error("scan PC not marked for bypass")
	}
	if p.bypass.shouldBypass(1) {
		t.Error("chase PC wrongly bypassed")
	}
}

func TestBypassPreservesChaseCoverage(t *testing.T) {
	// With bypass on, the chase PC must still be prefetched as before.
	run := func(bypass bool) uint64 {
		o := DefaultOptions()
		o.Bypass = bypass
		p := New(o, testBridge())
		pcs, lines := scanPlusChase(8, 2)
		issued := uint64(0)
		for i := range lines {
			issued += uint64(feedOne(p, pcs[i], lines[i], i))
		}
		return issued
	}
	with, without := run(true), run(false)
	if with*10 < without*8 {
		t.Errorf("bypass cost too many prefetches: %d vs %d", with, without)
	}
}

func TestBypassImprovesStoreRetentionUnderScans(t *testing.T) {
	// The point of bypassing: scans must not evict the chase's metadata.
	// Compare the chase's store trigger-hit rate with and without bypass
	// at a small fixed store.
	run := func(bypass bool) float64 {
		o := DefaultOptions()
		o.Bypass = bypass
		// A small dedicated-size store (max == fixed: no filtering): the
		// chase needs most of it, so scan insertions thrash it.
		o.MetaBytes = 32 << 10
		o.FixedBytes = 32 << 10
		p := New(o, testBridge())
		pcs, lines := scanPlusChase(10, 3)
		for i := range lines {
			feedOne(p, pcs[i], lines[i], i)
		}
		return p.store.Stats.TriggerHitRate()
	}
	with, without := run(true), run(false)
	if with <= without {
		t.Errorf("bypass did not improve trigger hit rate: %.3f vs %.3f", with, without)
	}
}

func TestBypassDisabledByDefault(t *testing.T) {
	p := New(DefaultOptions(), testBridge())
	if p.bypass != nil {
		t.Fatal("bypass state allocated without Options.Bypass")
	}
	pcs, lines := scanPlusChase(2, 4)
	for i := range lines {
		feedOne(p, pcs[i], lines[i], i)
	}
	if p.Stats.BypassedInserts != 0 {
		t.Error("inserts bypassed with the extension off")
	}
}
