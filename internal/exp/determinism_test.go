package exp

import (
	"reflect"
	"strings"
	"testing"
)

// Determinism contract of the parallel harness: rendered experiment output
// is a pure function of (experiment, scale, seed) — worker count and
// scheduling must never show through. These tests are the CI teeth behind
// cmd/experiments' guarantee that -jobs=8 output is byte-identical to
// -jobs=1.

// renderExperiment runs one experiment on a fresh runner with the given
// worker count and returns its full rendered table output.
func renderExperiment(t *testing.T, id string, jobs int) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q missing", id)
	}
	r := NewRunner(microScale())
	r.Jobs = jobs
	var b strings.Builder
	for _, tb := range e.Run(r) {
		b.WriteString(tb.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelOutputMatchesSerial renders a cross-section of experiments —
// pure metadata studies (table1), single-core sims (fig9), system-retaining
// sims (fig12b), and mixed ParallelMap studies (subset) — at -jobs=1 and an
// oversubscribed -jobs=8 and requires byte-identical output.
func TestParallelOutputMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiments twice; not -short")
	}
	for _, id := range []string{"table1", "fig9", "fig12b", "subset"} {
		id := id
		t.Run(id, func(t *testing.T) {
			serial := renderExperiment(t, id, 1)
			parallel := renderExperiment(t, id, 8)
			if serial != parallel {
				t.Errorf("output differs between -jobs=1 and -jobs=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
					serial, parallel)
			}
		})
	}
}

// TestSameSeedSameStats runs one configuration twice on fresh systems with
// the same seed and requires identical full sim.Result structs — the
// run-to-run reproducibility the golden tests and memo keys rely on.
func TestSameSeedSameStats(t *testing.T) {
	sc := microScale()
	arm := streamlineArm("streamline", "stride", "", nil)
	a := NewRunner(sc).Run(arm, "sphinx06")
	b := NewRunner(sc).Run(arm, "sphinx06")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different results:\n%+v\nvs\n%+v", a, b)
	}
	// And a different seed must actually change something, or the equality
	// above proves nothing.
	sc2 := sc
	sc2.Seed += 1
	c := NewRunner(sc2).Run(arm, "sphinx06")
	if reflect.DeepEqual(a, c) {
		t.Error("changing the seed left the result identical; seed is not wired through")
	}
}
