package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock scripts time for the fault machinery: SleepCtx records the
// requested backoff durations (returning immediately, or ctx.Err() when the
// context is already cancelled), and After returns a channel the test fires
// on demand — so timeout behavior is exercised without real waiting.
type fakeClock struct {
	mu     sync.Mutex
	sleeps []time.Duration
	afters []chan time.Time
}

func (c *fakeClock) SleepCtx(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.mu.Unlock()
	return ctx.Err()
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	c.afters = append(c.afters, ch)
	c.mu.Unlock()
	return ch
}

func (c *fakeClock) fireTimeout(i int) {
	c.mu.Lock()
	ch := c.afters[i]
	c.mu.Unlock()
	ch <- time.Time{}
}

func (c *fakeClock) sleepLog() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

// TestRetryFailNTimesThenSucceed: a job failing transiently N times succeeds
// within N retries, and each retry is preceded by a doubling backoff.
func TestRetryFailNTimesThenSucceed(t *testing.T) {
	clock := &fakeClock{}
	attempts := 0
	got, err := Execute(context.Background(),
		FaultPolicy{Retries: 3, Backoff: 10 * time.Millisecond}, clock, "flaky",
		func(context.Context) (int, error) {
			attempts++
			if attempts <= 2 {
				return 0, fmt.Errorf("transient %d", attempts)
			}
			return 42, nil
		})
	if err != nil || got != 42 {
		t.Fatalf("got %d, %v; want 42, nil", got, err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	sleeps := clock.sleepLog()
	if len(sleeps) != len(want) {
		t.Fatalf("backoffs = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Errorf("backoff[%d] = %v, want %v (doubling)", i, sleeps[i], want[i])
		}
	}
}

// TestBackoffSleepRespectsCancellation: cancelling the context while a
// retry backoff is in progress aborts the sleep immediately. Regression:
// the sleep used to be unconditional, so a cancelled sweep still sat out
// the full (exponentially growing) pause before noticing.
func TestBackoffSleepRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	failed := make(chan struct{}, 4)
	done := make(chan error, 1)
	go func() {
		// Real clock on purpose: the hour-long backoff is the trap. The
		// fix returns as soon as cancel fires; the old code sleeps it out.
		_, err := Execute(ctx,
			FaultPolicy{Retries: 2, Backoff: time.Hour}, nil, "slow-retry",
			func(context.Context) (int, error) {
				failed <- struct{}{}
				return 0, errors.New("transient")
			})
		done <- err
	}()
	<-failed // first attempt has failed; Execute is entering the backoff
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Execute still sleeping 5s after cancellation")
	}
	if len(failed) != 0 {
		t.Errorf("job was retried %d time(s) after cancellation", len(failed))
	}
}

// TestBackoffCapsDoubling: the doubling backoff saturates at maxBackoff
// instead of overflowing time.Duration. Regression: backoff << (attempt-1)
// wraps negative after ~60 doublings, and a negative sleep returns
// immediately — a hot retry loop precisely when the longest pauses were
// requested.
func TestBackoffCapsDoubling(t *testing.T) {
	cases := []struct {
		base    time.Duration
		attempt int
		want    time.Duration
	}{
		{10 * time.Millisecond, 1, 10 * time.Millisecond},
		{10 * time.Millisecond, 2, 20 * time.Millisecond},
		{30 * time.Second, 2, time.Minute},  // doubles exactly to the cap
		{30 * time.Second, 3, time.Minute},  // saturates
		{time.Second, 40, time.Minute},      // would be ~35k years unchecked
		{time.Second, 64, time.Minute},      // shift >= word width
		{time.Nanosecond, 100, time.Minute}, // extreme shift, still saturates
		{5 * time.Minute, 1, time.Minute},   // base alone above the cap
		{0, 3, 0},
	}
	for _, c := range cases {
		got := backoffFor(c.base, c.attempt)
		if got != c.want {
			t.Errorf("backoffFor(%v, %d) = %v, want %v", c.base, c.attempt, got, c.want)
		}
		if got < 0 {
			t.Errorf("backoffFor(%v, %d) went negative: %v", c.base, c.attempt, got)
		}
	}

	// End to end: the recorded pauses saturate rather than overflow.
	clock := &fakeClock{}
	_, err := Execute(context.Background(),
		FaultPolicy{Retries: 3, Backoff: 30 * time.Second}, clock, "capped",
		func(context.Context) (int, error) { return 0, errors.New("transient") })
	if err == nil {
		t.Fatal("want final transient error")
	}
	want := []time.Duration{30 * time.Second, time.Minute, time.Minute}
	sleeps := clock.sleepLog()
	if len(sleeps) != len(want) {
		t.Fatalf("backoffs = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Errorf("backoff[%d] = %v, want %v (saturating)", i, sleeps[i], want[i])
		}
	}
}

// TestRetryNeverSucceeds: a persistently failing job is attempted exactly
// 1+Retries times and reports the final error.
func TestRetryNeverSucceeds(t *testing.T) {
	clock := &fakeClock{}
	attempts := 0
	_, err := Execute(context.Background(),
		FaultPolicy{Retries: 2, Backoff: time.Millisecond}, clock, "doomed",
		func(context.Context) (int, error) {
			attempts++
			return 0, fmt.Errorf("failure %d", attempts)
		})
	if err == nil || !strings.Contains(err.Error(), "failure 3") {
		t.Fatalf("err = %v, want the final attempt's error", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", attempts)
	}
}

// TestTimeoutIsPermanent: a job hanging past the timeout yields a
// *TimeoutError and is NOT retried — a hang is assumed to repeat.
func TestTimeoutIsPermanent(t *testing.T) {
	clock := &fakeClock{}
	hang := make(chan struct{})
	defer close(hang)
	started := make(chan struct{}, 8)
	done := make(chan error, 1)
	go func() {
		_, err := Execute(context.Background(),
			FaultPolicy{Timeout: time.Second, Retries: 5, Backoff: time.Millisecond},
			clock, "hung",
			func(context.Context) (int, error) {
				started <- struct{}{}
				<-hang
				return 0, nil
			})
		done <- err
	}()
	<-started // the attempt is running; now fire its timeout
	clock.fireTimeout(0)
	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Execute did not return after timeout fired")
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if te.Key != "hung" || te.After != time.Second {
		t.Errorf("TimeoutError = %+v, want key 'hung' after 1s", te)
	}
	if !IsPermanent(err) {
		t.Error("timeout should be permanent")
	}
	if len(started) != 0 {
		t.Errorf("job was retried after a timeout: %d extra attempts", len(started))
	}
	if sleeps := clock.sleepLog(); len(sleeps) != 0 {
		t.Errorf("backoff slept %v despite permanent failure", sleeps)
	}
}

// TestPanicIsPermanent: a panicking job is attempted once, never retried,
// and the panic value is preserved in the error.
func TestPanicIsPermanent(t *testing.T) {
	clock := &fakeClock{}
	attempts := 0
	_, err := Execute(context.Background(),
		FaultPolicy{Retries: 4, Backoff: time.Millisecond}, clock, "bomb",
		func(context.Context) (int, error) {
			attempts++
			panic("kaboom")
		})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want the panic value", err)
	}
	if !IsPermanent(err) {
		t.Error("panic should be permanent")
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retry after panic)", attempts)
	}
}

// TestPermanentWrapping: Permanent-marked errors stop the retry loop, and
// Permanent(nil) stays nil.
func TestPermanentWrapping(t *testing.T) {
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
	boom := errors.New("boom")
	if !IsPermanent(Permanent(boom)) {
		t.Error("Permanent(err) not detected")
	}
	if IsPermanent(boom) {
		t.Error("plain error detected as permanent")
	}
	if !errors.Is(Permanent(boom), boom) {
		t.Error("Permanent does not unwrap to the original error")
	}
	attempts := 0
	_, err := Execute(context.Background(),
		FaultPolicy{Retries: 3}, &fakeClock{}, "perm",
		func(context.Context) (int, error) {
			attempts++
			return 0, Permanent(boom)
		})
	if !errors.Is(err, boom) || attempts != 1 {
		t.Errorf("err=%v attempts=%d; want boom after exactly 1 attempt", err, attempts)
	}
}

// TestRunAllContinuesPastFailures: RunAll completes every job, reporting
// per-job errors, where Run would have cancelled the remainder.
func TestRunAllContinuesPastFailures(t *testing.T) {
	const n = 16
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job%d", i),
			Run: func(context.Context) (int, error) {
				if i%4 == 0 {
					panic(fmt.Sprintf("injected %d", i))
				}
				return i * 10, nil
			},
		}
	}
	results, errs := RunAll(context.Background(), Options{Workers: 3}, jobs)
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			if errs[i] == nil || !strings.Contains(errs[i].Error(), fmt.Sprintf("injected %d", i)) {
				t.Errorf("errs[%d] = %v, want injected panic", i, errs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Errorf("errs[%d] = %v, want nil", i, errs[i])
		}
		if results[i] != i*10 {
			t.Errorf("results[%d] = %d, want %d", i, results[i], i*10)
		}
	}
}

// TestPoolAppliesFaultPolicy: the worker pool routes jobs through the fault
// policy, so a transiently flaky job succeeds after pool-level retries.
func TestPoolAppliesFaultPolicy(t *testing.T) {
	var mu sync.Mutex
	attempts := map[int]int{}
	jobs := make([]Job[int], 4)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job%d", i),
			Run: func(context.Context) (int, error) {
				mu.Lock()
				attempts[i]++
				a := attempts[i]
				mu.Unlock()
				if i == 2 && a == 1 {
					return 0, errors.New("transient")
				}
				return i, nil
			},
		}
	}
	clock := &fakeClock{}
	opts := Options{Workers: 2, Fault: FaultPolicy{Retries: 1, Backoff: time.Millisecond}, Clock: clock}
	results, errs := RunAll(context.Background(), opts, jobs)
	for i, err := range errs {
		if err != nil {
			t.Errorf("errs[%d] = %v", i, err)
		}
	}
	if results[2] != 2 || attempts[2] != 2 {
		t.Errorf("flaky job: result=%d attempts=%d; want 2 after 2 attempts", results[2], attempts[2])
	}
}

// TestPanicErrorIsTyped: a panic surfaces as a *PanicError carrying the job
// key and panic value, so callers can map the failure class (the daemon's
// HTTP status codes) without string matching.
func TestPanicErrorIsTyped(t *testing.T) {
	_, err := Execute(context.Background(), FaultPolicy{}, nil, "bomb",
		func(context.Context) (int, error) { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Key != "bomb" || pe.Value != "kaboom" {
		t.Errorf("PanicError = %+v, want key bomb / value kaboom", pe)
	}
	if !IsPermanent(err) {
		t.Error("panic error should be permanent")
	}
}

// TestCooperativeTimeoutWaitsForUnwind: with Cooperative set, a timed-out
// attempt's context is cancelled and Execute WAITS for fn to unwind before
// returning the permanent *TimeoutError — no goroutine is abandoned, so the
// worker slot Execute held is genuinely free when the error surfaces.
func TestCooperativeTimeoutWaitsForUnwind(t *testing.T) {
	clock := &fakeClock{}
	started := make(chan struct{})
	var unwound atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := Execute(context.Background(),
			FaultPolicy{Timeout: time.Second, Cooperative: true}, clock, "coop",
			func(ctx context.Context) (int, error) {
				close(started)
				<-ctx.Done() // the engine stopping at its next epoch boundary
				unwound.Store(true)
				return 0, ctx.Err()
			})
		done <- err
	}()
	<-started
	clock.fireTimeout(0)
	select {
	case err := <-done:
		var te *TimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("err = %T %v, want *TimeoutError", err, err)
		}
		if te.Key != "coop" || te.After != time.Second {
			t.Errorf("TimeoutError = %+v, want key coop / after 1s", te)
		}
		if !IsPermanent(err) {
			t.Error("cooperative timeout should be permanent (never retried)")
		}
		if !unwound.Load() {
			t.Error("Execute returned before fn unwound; goroutine abandoned")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Execute did not return after timeout fired")
	}
}

// TestCooperativeParentCancel: cancelling the caller's context surfaces
// ctx.Err() (not a TimeoutError), and still waits for fn to unwind.
func TestCooperativeParentCancel(t *testing.T) {
	clock := &fakeClock{}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var unwound atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := Execute(ctx,
			FaultPolicy{Timeout: time.Hour, Cooperative: true}, clock, "coop-cancel",
			func(ctx context.Context) (int, error) {
				close(started)
				<-ctx.Done()
				unwound.Store(true)
				return 0, ctx.Err()
			})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if !unwound.Load() {
			t.Error("Execute returned before fn unwound; goroutine abandoned")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Execute did not return after parent cancellation")
	}
}

// TestCooperativeSuccess: a cooperative job that completes within its
// timeout passes its value through untouched.
func TestCooperativeSuccess(t *testing.T) {
	got, err := Execute(context.Background(),
		FaultPolicy{Timeout: time.Second, Cooperative: true}, &fakeClock{}, "ok",
		func(context.Context) (int, error) { return 7, nil })
	if err != nil || got != 7 {
		t.Fatalf("got %d, %v; want 7, nil", got, err)
	}
}

// TestCooperativeNoGoroutineLeak: a burst of cooperative timeouts leaves no
// goroutines behind — each timed-out attempt unwinds before Execute returns,
// so the count settles back to the baseline.
func TestCooperativeNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		clock := &fakeClock{}
		started := make(chan struct{})
		ret := make(chan struct{})
		go func() {
			Execute(context.Background(),
				FaultPolicy{Timeout: time.Second, Cooperative: true}, clock, "leak",
				func(ctx context.Context) (int, error) {
					close(started)
					<-ctx.Done()
					return 0, ctx.Err()
				})
			close(ret)
		}()
		<-started
		clock.fireTimeout(0)
		<-ret
	}
	// Settle: scheduling may lag a moment behind channel operations.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d; cooperative timeouts leaked", before, runtime.NumGoroutine())
}
