package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"streamline/internal/metrics"
	"streamline/internal/telemetry"
)

// scrapeLine matches one non-comment exposition line: name{labels} value.
var scrapeLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[0-9eE.+-]+)$`)

// checkScrape asserts text parses as well-formed exposition output.
func checkScrape(t *testing.T, text string) {
	t.Helper()
	if text == "" {
		t.Fatal("empty exposition body")
	}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !scrapeLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

// scrape fetches /metricz and returns the exposition body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metricz")
	if err != nil {
		t.Fatalf("GET /metricz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metricz: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestMetriczExposition: after a computed, a memory-hit, and an invalid
// request, the scrape is well-formed and the deterministic instruments
// (counters, gauges, histogram counts) carry exact values.
func TestMetriczExposition(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if status, _, _ := post(t, ts.URL, tinyBody); status != http.StatusOK {
		t.Fatalf("cold request: status %d", status)
	}
	if status, tier, _ := post(t, ts.URL, tinyBody); status != http.StatusOK || tier != "memory" {
		t.Fatalf("warm request: status %d tier %q", status, tier)
	}
	if status, _, _ := post(t, ts.URL, "{"); status != http.StatusBadRequest {
		t.Fatalf("invalid request: status %d", status)
	}
	// The computing goroutine releases its queue slot after the response is
	// served; wait for the accounting to settle before pinning gauge values.
	waitFor(t, "queue to drain", func() bool { return s.Status().Queued == 0 })

	text := scrape(t, ts.URL)
	checkScrape(t, text)
	for _, want := range []string{
		"streamd_requests_total 3",
		`streamd_responses_total{outcome="computed"} 1`,
		`streamd_responses_total{outcome="memory_hit"} 1`,
		`streamd_responses_total{outcome="invalid"} 1`,
		`streamd_responses_total{outcome="failed"} 0`,
		"streamd_queue_depth 0",
		"streamd_inflight_workers 0",
		"streamd_cache_entries 1",
		"streamd_draining 0",
		"streamd_request_seconds_count 3",
		`streamd_request_stage_seconds_count{stage="decode"} 3`,
		`streamd_request_stage_seconds_count{stage="simulate"} 1`,
		`streamd_request_stage_seconds_count{stage="persist"} 0`,
		"runner_jobs_completed_total 1",
		"runner_job_attempt_seconds_count 1",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("scrape is missing %q", want)
		}
	}

	// Two scrapes of a quiet server are byte-identical except the uptime-free
	// format has no wall-clock lines at all — so fully identical.
	if again := scrape(t, ts.URL); again != text {
		t.Errorf("scrape of idle server is not deterministic:\n--- first ---\n%s\n--- second ---\n%s", text, again)
	}
}

// TestMetricsSharedRegistry: a caller-supplied registry is the one /metricz
// renders, and the daemon's runner-level instruments land on it too.
func TestMetricsSharedRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	own := reg.Counter("my_own_total", "caller instrument")
	own.Add(42)
	s := New(Config{Metrics: reg})
	if s.Metrics() != reg {
		t.Fatal("server did not adopt the supplied registry")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	text := scrape(t, ts.URL)
	for _, want := range []string{"my_own_total 42", "runner_jobs_completed_total 0"} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("shared scrape is missing %q", want)
		}
	}
}

// TestDrainRefusedAccounting: a request refused because the server is
// draining is counted — in Counters, /statusz, and the metrics — and its 503
// carries Retry-After, so the every-request-lands-somewhere invariant holds.
func TestDrainRefusedAccounting(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(tinyBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("simulate while draining: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After %q, want \"1\"", ra)
	}

	if c := s.Counters(); c.DrainRefused != 1 || c.Requests != 1 {
		t.Errorf("counters: %+v, want drainRefused=1 requests=1", c)
	}
	var doc map[string]any
	sresp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["drainRefused"] != 1.0 {
		t.Errorf("statusz drainRefused = %v, want 1", doc["drainRefused"])
	}

	text := scrape(t, ts.URL)
	for _, want := range []string{
		`streamd_responses_total{outcome="drain_refused"} 1`,
		"streamd_draining 1",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("scrape is missing %q", want)
		}
	}
}

// TestReadEndpointMethods: the read-only endpoints accept GET and HEAD only;
// anything else answers 405 with an Allow header.
func TestReadEndpointMethods(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	for _, path := range []string{"/healthz", "/statusz", "/metricz"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, err := http.NewRequest(method, ts.URL+path, strings.NewReader("x"))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s: Allow %q, want \"GET, HEAD\"", method, path, allow)
			}
		}
		resp, err := client.Head(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("HEAD %s: status %d, want 200", path, resp.StatusCode)
		}
		if len(body) != 0 {
			t.Errorf("HEAD %s: body %q, want empty", path, body)
		}
	}
}

// TestStatusUnderConcurrentLoad exercises the accounting under real
// concurrency: distinct gated computations fill the queue and the worker
// pool, duplicates collapse, /metricz is scraped throughout (this test is the
// race detector's view of the scrape path), and after the dust settles the
// transient gauges are back to zero and the hit-rate math is exact.
func TestStatusUnderConcurrentLoad(t *testing.T) {
	const distinct = 6
	const workers = 2
	s := New(Config{Workers: workers, QueueDepth: 32})
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	s.SetComputeHook(func(string) { <-release })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// A failed assertion below must not deadlock ts.Close on gated handlers.
	defer unblock()

	// Seeds start at 1: the spec normalizes seed 0 to the default seed, so
	// tinyVariant(0) and tinyVariant(1) would share one content address.
	var wg sync.WaitGroup
	for i := 0; i < distinct; i++ {
		body := tinyVariant(i + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if status, _, out := post(t, ts.URL, body); status != http.StatusOK {
				t.Errorf("load request: status %d\n%s", status, out)
			}
		}()
	}
	waitFor(t, "queue to fill", func() bool {
		st := s.Status()
		return st.Queued == distinct && st.InFlight == workers
	})
	// Two duplicates of variant 1 collapse onto its still-gated flight.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if status, tier, _ := post(t, ts.URL, tinyVariant(1)); status != http.StatusOK || tier != "flight" {
				t.Errorf("duplicate: status %d tier %q, want 200/flight", status, tier)
			}
		}()
	}
	waitFor(t, "duplicates to collapse", func() bool {
		return s.Status().Collapsed == 2
	})
	// Scrape while everything is gated: the load-bearing gauges are pinned.
	text := scrape(t, ts.URL)
	checkScrape(t, text)
	for _, want := range []string{
		fmt.Sprintf("streamd_queue_depth %d", distinct),
		fmt.Sprintf("streamd_inflight_workers %d", workers),
		fmt.Sprintf("streamd_worker_capacity %d", workers),
		"streamd_queue_capacity 32",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("scrape under load is missing %q", want)
		}
	}

	// Keep scraping concurrently while the computations release and finish.
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 20; i++ {
			checkScrape(t, scrape(t, ts.URL))
			time.Sleep(time.Millisecond)
		}
	}()
	unblock()
	wg.Wait()
	<-scrapeDone

	waitFor(t, "gauges to settle", func() bool {
		st := s.Status()
		return st.Queued == 0 && st.InFlight == 0
	})

	// Four warm hits, then the hit-rate identity:
	// (memory + store + collapsed) / (hits + computed + failed).
	for i := 0; i < 4; i++ {
		if status, tier, _ := post(t, ts.URL, tinyVariant(i+1)); status != http.StatusOK || tier != "memory" {
			t.Fatalf("warm request %d: status %d tier %q", i, status, tier)
		}
	}
	st := s.Status()
	if st.Computed != distinct || st.Collapsed != 2 || st.MemoryHits != 4 {
		t.Fatalf("counters: %+v, want computed=%d collapsed=2 memoryHits=4", st.Counters, distinct)
	}
	want := float64(4+2) / float64(4+2+distinct)
	if st.HitRate != want {
		t.Errorf("hit rate %g, want %g", st.HitRate, want)
	}

	text = scrape(t, ts.URL)
	for _, line := range []string{
		"streamd_queue_depth 0",
		"streamd_inflight_workers 0",
		fmt.Sprintf(`streamd_responses_total{outcome="computed"} %d`, distinct),
		`streamd_responses_total{outcome="collapsed"} 2`,
		`streamd_responses_total{outcome="memory_hit"} 4`,
		fmt.Sprintf("runner_jobs_completed_total %d", distinct),
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("settled scrape is missing %q", line)
		}
	}
}

// postID is post also returning the X-Streamd-Request header.
func postID(t *testing.T, url, body string) (int, string, []byte, string) {
	t.Helper()
	resp, err := http.Post(url+"/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /simulate: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Streamd-Cache"), data, resp.Header.Get("X-Streamd-Request")
}

// TestAccessLog: one JSONL record per request, in completion order, carrying
// the same ID the response exposed as X-Streamd-Request; with a slow-request
// threshold of 1ns every record promotes its stage breakdown, and only the
// request that owned the computation carries compute-side stages.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewConcurrentSink(&buf)
	s := New(Config{AccessLog: sink, SlowRequest: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := make([]string, 0, 3)
	status, _, cold, id := postID(t, ts.URL, tinyBody)
	if status != http.StatusOK {
		t.Fatalf("cold: status %d", status)
	}
	ids = append(ids, id)
	status, tier, _, id := postID(t, ts.URL, tinyBody)
	if status != http.StatusOK || tier != "memory" {
		t.Fatalf("warm: status %d tier %q", status, tier)
	}
	ids = append(ids, id)
	status, _, _, id = postID(t, ts.URL, "{")
	if status != http.StatusBadRequest {
		t.Fatalf("invalid: status %d", status)
	}
	ids = append(ids, id)

	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("access log holds %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var recs []AccessRecord
	for i, line := range lines {
		var rec AccessRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		recs = append(recs, rec)
	}

	for i, rec := range recs {
		if rec.Type != "access" {
			t.Errorf("record %d type %q", i, rec.Type)
		}
		if rec.ID != ids[i] {
			t.Errorf("record %d ID %q does not match X-Streamd-Request %q", i, rec.ID, ids[i])
		}
		if !rec.Slow || rec.Stages == nil {
			t.Errorf("record %d not promoted by the 1ns slow threshold: %+v", i, rec)
		}
		if rec.DurationUs <= 0 {
			t.Errorf("record %d has no duration", i)
		}
	}
	if recs[0].Outcome != "computed" || recs[0].Tier != "none" || recs[0].Status != 200 {
		t.Errorf("cold record: %+v", recs[0])
	}
	if recs[0].Bytes != len(cold) {
		t.Errorf("cold record bytes %d, want %d", recs[0].Bytes, len(cold))
	}
	if recs[0].Stages.SimulateUs <= 0 || recs[0].Stages.QueueWaitUs <= 0 || recs[0].Stages.MarshalUs <= 0 {
		t.Errorf("cold record lacks compute-side stages: %+v", recs[0].Stages)
	}
	if recs[1].Outcome != "memory-hit" || recs[1].Tier != "memory" {
		t.Errorf("warm record: %+v", recs[1])
	}
	if recs[1].Stages.SimulateUs != 0 || recs[1].Stages.LookupUs <= 0 {
		t.Errorf("warm record stages: %+v (a cache hit owns no compute spans)", recs[1].Stages)
	}
	if recs[2].Outcome != "invalid" || recs[2].Status != 400 || recs[2].Spec != "" {
		t.Errorf("invalid record: %+v", recs[2])
	}
	if recs[0].ID == recs[1].ID || recs[1].ID == recs[2].ID {
		t.Errorf("request IDs are not unique: %v", ids)
	}

	// The observability machinery must not perturb responses: a server with
	// no access log serves byte-identical simulation bodies.
	plain := New(Config{})
	ts2 := httptest.NewServer(plain.Handler())
	defer ts2.Close()
	if _, _, bare := post(t, ts2.URL, tinyBody); !bytes.Equal(bare, cold) {
		t.Errorf("response bodies differ with access logging enabled:\n--- logged ---\n%s\n--- bare ---\n%s", cold, bare)
	}
}
