// Package bingo implements the Bingo spatial prefetcher (Bakhshalipour et
// al., HPCA 2019): it records the footprint of lines touched within a region
// and replays it when the region is re-triggered, matching history first by
// the long event (PC+address) and falling back to the short one (PC+offset).
// Bingo is one of Figure 11c's L2 regular-prefetcher baselines.
package bingo

import (
	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

// Config parameterizes Bingo.
type Config struct {
	// RegionLines is the spatial region size in lines (32: 2KB).
	RegionLines int
	// TrackerSize is the number of regions tracked concurrently.
	TrackerSize int
	// HistorySize is the footprint history capacity.
	HistorySize int
}

// DefaultConfig matches the published 2KB-region configuration.
var DefaultConfig = Config{RegionLines: 32, TrackerSize: 64, HistorySize: 4096}

type tracker struct {
	valid     bool
	region    mem.Line // region base line
	footprint uint32
	pc        mem.PC
	offset    int
	lru       uint64
}

type history struct {
	footprint uint32
	valid     bool
}

// Prefetcher is the Bingo spatial prefetcher.
type Prefetcher struct {
	cfg      Config
	trackers []tracker
	longHist map[uint64]uint32 // PC+address -> footprint
	shortHis []history         // PC+offset hashed
	clock    uint64
}

// New returns a Bingo instance.
func New(cfg Config) *Prefetcher {
	if cfg.RegionLines <= 0 {
		cfg = DefaultConfig
	}
	return &Prefetcher{
		cfg:      cfg,
		trackers: make([]tracker, cfg.TrackerSize),
		longHist: make(map[uint64]uint32, cfg.HistorySize),
		shortHis: make([]history, 1<<14),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "bingo" }

func (p *Prefetcher) longKey(pc mem.PC, region mem.Line, offset int) uint64 {
	return mem.HashPC(pc, 20)<<40 ^ uint64(region)<<5 ^ uint64(offset)
}

func (p *Prefetcher) shortKey(pc mem.PC, offset int) int {
	return int((mem.HashPC(pc, 20) ^ uint64(offset)<<9) % uint64(len(p.shortHis)))
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event, out []prefetch.Request) []prefetch.Request {
	line := ev.Line()
	region := line / mem.Line(p.cfg.RegionLines) * mem.Line(p.cfg.RegionLines)
	offset := int(line - region)
	p.clock++

	// Find or allocate the region tracker.
	var tr *tracker
	victim := 0
	for i := range p.trackers {
		t := &p.trackers[i]
		if t.valid && t.region == region {
			tr = t
			break
		}
		if !t.valid {
			victim = i
			continue
		}
		if p.trackers[victim].valid && t.lru < p.trackers[victim].lru {
			victim = i
		}
	}
	if tr == nil {
		// Evict: commit the old tracker's footprint to history.
		old := &p.trackers[victim]
		if old.valid {
			p.commit(old)
		}
		*old = tracker{
			valid: true, region: region, pc: ev.PC, offset: offset, lru: p.clock,
		}
		tr = old

		// A fresh trigger: predict the footprint from history.
		fp, ok := p.longHist[p.longKey(ev.PC, region, offset)]
		if !ok {
			h := p.shortHis[p.shortKey(ev.PC, offset)]
			if h.valid {
				fp, ok = h.footprint, true
			}
		}
		if ok {
			for b := 0; b < p.cfg.RegionLines; b++ {
				if fp&(1<<uint(b)) != 0 && b != offset {
					out = append(out, prefetch.Request{
						Addr: mem.AddrOf(region + mem.Line(b)),
					})
				}
			}
		}
	}
	tr.footprint |= 1 << uint(offset)
	tr.lru = p.clock
	return out
}

// commit stores a completed region footprint under both event keys.
func (p *Prefetcher) commit(t *tracker) {
	if popcount(t.footprint) < 2 {
		return // single-line regions carry no spatial signal
	}
	if len(p.longHist) >= p.cfg.HistorySize {
		// Cheap wholesale aging: drop the table when full.
		p.longHist = make(map[uint64]uint32, p.cfg.HistorySize)
	}
	p.longHist[p.longKey(t.pc, t.region, t.offset)] = t.footprint
	p.shortHis[p.shortKey(t.pc, t.offset)] = history{footprint: t.footprint, valid: true}
}

func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
