package check

import (
	"strings"
	"testing"

	"streamline/internal/cache"
	"streamline/internal/dram"
	"streamline/internal/sim"
)

// balancedStats builds a cache.Stats satisfying every law (the fixture the
// negative tests perturb).
func balancedStats() cache.Stats {
	var st cache.Stats
	st.DemandAccesses = 100
	st.DemandHits = 70
	st.DemandMisses = 30
	st.PrefetchAccesses = 20
	st.PrefetchHits = 5
	st.PrefetchFills = 40
	st.UsefulPrefetches = 25
	st.LatePrefetches = 10
	st.UnusedPrefetches = 8
	st.Evictions = 50
	st.Writebacks = 12
	st.Sources[cache.SrcL2] = cache.SourceStats{
		Fills: 30, UsefulTimely: 10, UsefulLate: 8, EvictedUnused: 6,
	}
	st.Sources[cache.SrcTemporal] = cache.SourceStats{
		Fills: 10, UsefulTimely: 5, UsefulLate: 2, EvictedUnused: 2,
	}
	return st
}

func TestCacheLawsHoldOnBalancedStats(t *testing.T) {
	if v := CacheWholeRunLaws("t", balancedStats()); len(v) != 0 {
		t.Fatalf("balanced fixture violates laws: %v", v)
	}
}

// TestCacheLawsDetectViolations perturbs the balanced fixture one counter at
// a time and asserts the matching law fires — every law is reachable.
func TestCacheLawsDetectViolations(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cache.Stats)
		mention string
	}{
		{"demand-balance", func(s *cache.Stats) { s.DemandMisses++ }, "demand hits"},
		{"prefetch-hits", func(s *cache.Stats) { s.PrefetchHits = s.PrefetchAccesses + 1 }, "prefetch hits"},
		{"useful-bound", func(s *cache.Stats) { s.UsefulPrefetches = s.DemandHits + 1 }, "useful prefetches"},
		{"late-bound", func(s *cache.Stats) { s.LatePrefetches = s.UsefulPrefetches + 1 }, "late prefetches"},
		{"writeback-bound", func(s *cache.Stats) { s.Writebacks = s.Evictions + 1 }, "writebacks"},
		{"source-fills", func(s *cache.Stats) { s.Sources[cache.SrcL2].Fills++ }, "per-source fills"},
		{"source-useful", func(s *cache.Stats) { s.UsefulPrefetches++ }, "per-source useful"},
		{"source-late", func(s *cache.Stats) { s.Sources[cache.SrcL2].UsefulLate-- }, "useful-late"},
		{"source-evicted", func(s *cache.Stats) { s.UnusedPrefetches-- }, "evicted-unused"},
		{"demand-source", func(s *cache.Stats) { s.Sources[cache.SrcDemand].Fills++ }, "SrcDemand"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := balancedStats()
			tc.mutate(&st)
			v := CacheLaws("t", st)
			if len(v) == 0 {
				t.Fatalf("perturbation went undetected")
			}
			if !strings.Contains(strings.Join(v, "\n"), tc.mention) {
				t.Fatalf("violations %v do not mention %q", v, tc.mention)
			}
		})
	}
}

func TestWholeRunLawsDetectLifecycleLeak(t *testing.T) {
	st := balancedStats()
	// More outcomes than fills for the temporal source: a line left the
	// cache twice, or a fill went uncounted.
	st.Sources[cache.SrcTemporal].EvictedUnused += 5
	st.UnusedPrefetches += 5
	if v := CacheWholeRunLaws("t", st); len(v) == 0 {
		t.Fatal("lifecycle overdraw went undetected")
	}
	// The same stats are legal under window semantics (warmup fills can
	// produce measured-phase outcomes).
	if v := CacheLaws("t", st); len(v) != 0 {
		t.Fatalf("window-safe laws should accept warmup overdraw, got %v", v)
	}
}

func TestDRAMLawsDetectUnclassifiedRead(t *testing.T) {
	d := dram.Stats{Reads: 10, RowHits: 4, RowMisses: 3, RowConflicts: 3}
	if v := DRAMLaws("d", d); len(v) != 0 {
		t.Fatalf("balanced DRAM stats rejected: %v", v)
	}
	d.Reads++
	if v := DRAMLaws("d", d); len(v) == 0 {
		t.Fatal("unclassified DRAM read went undetected")
	}
}

func TestCoreLawsDetectAttributionDrift(t *testing.T) {
	cr := sim.CoreResult{
		L1D:              balancedStats(),
		L2:               balancedStats(),
		PrefetchesIssued: 9,
		Prefetchers: []sim.PrefetcherResult{
			{Source: "l1", Issued: 3, Fills: 3, UsefulTimely: 1},
			{Source: "l2", Issued: 4, Fills: 4},
			{Source: "temporal", Issued: 2, Fills: 2, UsefulLate: 1},
		},
	}
	if v := CoreLaws("core0", cr, false); len(v) != 0 {
		t.Fatalf("balanced core result rejected: %v", v)
	}
	bad := cr
	bad.PrefetchesIssued++
	if v := CoreLaws("core0", bad, false); len(v) == 0 {
		t.Fatal("issue-sum drift went undetected")
	}
	bad2 := cr
	bad2.Prefetchers = append([]sim.PrefetcherResult(nil), cr.Prefetchers...)
	bad2.Prefetchers[1].Fills++
	if v := CoreLaws("core0", bad2, false); len(v) == 0 {
		t.Fatal("fills!=issued drift went undetected")
	}
}

func TestSimLawsDetectDRAMLedgerDrift(t *testing.T) {
	r := sim.Result{
		Cores: []sim.CoreResult{{L1D: balancedStats(), L2: balancedStats()}},
		LLC:   balancedStats(),
	}
	llcMisses := r.LLC.DemandMisses + r.LLC.PrefetchAccesses - r.LLC.PrefetchHits
	r.DRAM = dram.Stats{Reads: llcMisses, RowMisses: llcMisses, Writes: r.LLC.Writebacks}
	if v := SimLaws(r, MetaDRAMTraffic{}, false); len(v) != 0 {
		t.Fatalf("balanced result rejected: %v", v)
	}
	// A phantom DRAM read (or a dropped LLC miss) breaks the ledger.
	r.DRAM.Reads++
	r.DRAM.RowMisses++
	if v := SimLaws(r, MetaDRAMTraffic{}, false); len(v) == 0 {
		t.Fatal("DRAM read ledger drift went undetected")
	}
	// Metadata traffic balances it again.
	if v := SimLaws(r, MetaDRAMTraffic{Reads: 1}, false); len(v) != 0 {
		t.Fatalf("metadata-balanced ledger rejected: %v", v)
	}
	// Missing writeback traffic.
	r.DRAM.Writes = r.LLC.Writebacks - 1
	if v := SimLaws(r, MetaDRAMTraffic{Reads: 1}, false); len(v) == 0 {
		t.Fatal("missing writeback traffic went undetected")
	}
}
