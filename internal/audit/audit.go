// Package audit is the simulator's opt-in runtime invariant-checking
// subsystem. Components of the memory hierarchy (caches, DRAM, cores,
// metadata stores) expose AuditScan hooks that verify structural invariants
// — occupancy accounting, MSHR leaks, duplicate lines, partition budgets,
// row-buffer legality — against an Auditor threaded through sim.Config.
//
// The design constraints, in order:
//
//  1. Auditing must never perturb the simulation. Every check is read-only,
//     so a run with auditing enabled produces byte-identical statistics to
//     the same run without it.
//  2. Disabled auditing must cost (near) nothing. Call sites guard hooks
//     with a nil check; the few always-on shadow counters (cache occupancy,
//     per-channel transfer counts) are single integer increments on paths
//     that already update several statistics.
//  3. A violation must be reproducible. Each report carries the cycle it was
//     detected at, the component and rule that fired, and the run's seed and
//     label, so `streamsim -seed N ... -check` replays it deterministically.
//
// The experiment harness aggregates one Auditor per simulation
// (`cmd/experiments -check`); the conformance suite in internal/sim asserts
// zero violations for every prefetcher on every workload family.
package audit

import (
	"fmt"
	"io"
)

// Violation is one detected invariant breach.
type Violation struct {
	// Cycle is the core cycle at which the violation was detected (for
	// periodic scans, the scan time, not necessarily the corrupting event).
	Cycle uint64
	// Component names the structure that failed ("L1D", "LLC", "dram",
	// "cpu", "meta", "sim").
	Component string
	// Rule is the short name of the violated invariant.
	Rule string
	// Detail is the human-readable specifics (observed vs expected).
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d  %s/%s: %s", v.Cycle, v.Component, v.Rule, v.Detail)
}

// Auditor collects violations for one simulation run. It is not safe for
// concurrent use; give each simulated system its own Auditor (the experiment
// runner does).
type Auditor struct {
	// Seed is the workload seed of the audited run, echoed into reports so
	// a violation can be reproduced.
	Seed int64
	// Label identifies the run (arm, workload mix, core count) in reports.
	Label string
	// Limit bounds the retained violations; further ones are counted but
	// dropped, so a systematically broken run cannot exhaust memory.
	Limit int
	// OnViolation, when set, observes every violation as it is reported —
	// including ones past the retention limit. The simulator uses it to
	// mirror violations into the telemetry event trace.
	OnViolation func(Violation)

	violations []Violation
	total      uint64
	scans      uint64
}

// DefaultLimit is the violation retention bound when Limit is unset.
const DefaultLimit = 64

// New returns an Auditor for a run with the given seed.
func New(seed int64) *Auditor {
	return &Auditor{Seed: seed, Limit: DefaultLimit}
}

// Reportf records one violation. It is safe to call on a nil Auditor (a
// no-op), so deeply nested helpers need not re-check enablement.
func (a *Auditor) Reportf(cycle uint64, component, rule, format string, args ...any) {
	if a == nil {
		return
	}
	a.total++
	v := Violation{
		Cycle:     cycle,
		Component: component,
		Rule:      rule,
		Detail:    fmt.Sprintf(format, args...),
	}
	if a.OnViolation != nil {
		a.OnViolation(v)
	}
	limit := a.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	if len(a.violations) >= limit {
		return
	}
	a.violations = append(a.violations, v)
}

// CountScan records that one full invariant scan completed, so reports can
// state how much checking a "clean" run actually performed.
func (a *Auditor) CountScan() {
	if a != nil {
		a.scans++
	}
}

// Scans returns the number of completed invariant scans.
func (a *Auditor) Scans() uint64 {
	if a == nil {
		return 0
	}
	return a.scans
}

// Total returns the total violation count, including ones dropped past Limit.
func (a *Auditor) Total() uint64 {
	if a == nil {
		return 0
	}
	return a.total
}

// Violations returns the retained violations.
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	return a.violations
}

// Err returns nil when the run is clean, or an error summarizing the first
// violation and the total count.
func (a *Auditor) Err() error {
	if a == nil || a.total == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d invariant violation(s), first: %s", a.total, a.violations[0])
}

// WriteReport renders the violation report: the reproduction context (label,
// seed, scan count) followed by each retained violation, one per line.
func (a *Auditor) WriteReport(w io.Writer) {
	if a == nil {
		return
	}
	label := a.Label
	if label == "" {
		label = "(unlabeled run)"
	}
	fmt.Fprintf(w, "audit report: %s (seed %d, %d scans, %d violations)\n",
		label, a.Seed, a.scans, a.total)
	for _, v := range a.violations {
		fmt.Fprintf(w, "  %s\n", v)
	}
	if dropped := a.total - uint64(len(a.violations)); dropped > 0 {
		fmt.Fprintf(w, "  ... and %d more (retention limit %d)\n", dropped, len(a.violations))
	}
}
