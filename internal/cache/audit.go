package cache

import (
	"streamline/internal/audit"
	"streamline/internal/mem"
)

// ForEachLine visits every valid data line (outside reserved ways), for
// cross-level invariant checks at the simulator layer.
func (c *Cache) ForEachLine(f func(set, way int, l mem.Line)) {
	for s := range c.sets {
		for w := c.reserved[s]; w < c.cfg.Ways; w++ {
			if c.sets[s][w].valid {
				f(s, w, c.sets[s][w].tag)
			}
		}
	}
}

// LineState is the full observable state of one resident data line, for
// external differential checkers that mirror the cache's contents.
type LineState struct {
	Set, Way   int
	Line       mem.Line
	Dirty      bool
	Prefetched bool
	Src        Source
	ReadyAt    uint64
}

// ForEachLineState visits every valid data line with its complete state, in
// set-then-way order. Read-only; the differential oracle uses it to compare
// the cache's contents against the reference model's.
func (c *Cache) ForEachLineState(f func(LineState)) {
	for s := range c.sets {
		for w := c.reserved[s]; w < c.cfg.Ways; w++ {
			ln := &c.sets[s][w]
			if ln.valid {
				f(LineState{
					Set: s, Way: w, Line: ln.tag,
					Dirty: ln.dirty, Prefetched: ln.prefetched,
					Src: ln.src, ReadyAt: ln.readyAt,
				})
			}
		}
	}
}

// AuditScan verifies the cache's structural invariants against a, reporting
// each breach at cycle now. All checks are read-only.
//
// Invariants:
//   - tag-array soundness: no duplicate valid line within a set, and no
//     valid data line inside a metadata-reserved way region (the
//     metadata/data exclusion the LLC partitioning relies on);
//   - reservation legality: 0 <= reserved ways <= associativity;
//   - fill/eviction balance: incrementally tracked occupancy equals a full
//     scan, so every install, eviction, and reservation flush was accounted;
//   - MSHR hygiene: every MSHRReserve was matched by an MSHRComplete (leak
//     detection; the scan runs between accesses, when none are in flight);
//   - counter identities: demand hits + misses = accesses, useful
//     prefetches never exceed demand hits, writebacks never exceed
//     evictions, prefetch hits never exceed prefetch accesses;
//   - source-sum identities: the aggregate prefetch counters equal the sum
//     of their per-source attributions, and SrcDemand carries none;
//   - lifecycle partition: per source, fills = useful + evicted-unused +
//     still-resident prefetched lines (counted by the same scan), so no
//     prefetched line ever leaves the cache unaccounted.
func (c *Cache) AuditScan(a *audit.Auditor, now uint64) {
	if a == nil {
		return
	}
	name := c.cfg.Name
	valid := 0
	var residentPF [NumSources]uint64
	for s := range c.sets {
		rsv := c.reserved[s]
		if rsv < 0 || rsv > c.cfg.Ways {
			a.Reportf(now, name, "reservation-bounds",
				"set %d reserves %d ways of %d", s, rsv, c.cfg.Ways)
			continue
		}
		for w := 0; w < c.cfg.Ways; w++ {
			ln := &c.sets[s][w]
			if !ln.valid {
				continue
			}
			valid++
			if ln.prefetched && w >= rsv {
				residentPF[ln.src]++
			}
			if w < rsv {
				a.Reportf(now, name, "data-in-reserved-way",
					"set %d way %d holds line %#x inside the %d reserved ways",
					s, w, uint64(ln.tag), rsv)
			}
			for w2 := w + 1; w2 < c.cfg.Ways; w2++ {
				if c.sets[s][w2].valid && c.sets[s][w2].tag == ln.tag {
					a.Reportf(now, name, "duplicate-line",
						"set %d holds line %#x in ways %d and %d",
						s, uint64(ln.tag), w, w2)
				}
			}
		}
	}
	if valid != c.occupied {
		a.Reportf(now, name, "fill-evict-balance",
			"scan finds %d valid lines, incremental accounting says %d", valid, c.occupied)
	}
	if c.mshrPending != 0 {
		a.Reportf(now, name, "mshr-leak",
			"%d MSHR reservation(s) never completed", c.mshrPending)
	}
	st := c.Stats
	if st.DemandHits+st.DemandMisses != st.DemandAccesses {
		a.Reportf(now, name, "demand-accounting",
			"hits %d + misses %d != accesses %d",
			st.DemandHits, st.DemandMisses, st.DemandAccesses)
	}
	if st.UsefulPrefetches > st.DemandHits {
		a.Reportf(now, name, "useful-exceeds-hits",
			"useful prefetches %d > demand hits %d", st.UsefulPrefetches, st.DemandHits)
	}
	if st.Writebacks > st.Evictions {
		a.Reportf(now, name, "writebacks-exceed-evictions",
			"writebacks %d > evictions %d", st.Writebacks, st.Evictions)
	}
	if st.PrefetchHits > st.PrefetchAccesses {
		a.Reportf(now, name, "prefetch-hit-accounting",
			"prefetch hits %d > prefetch accesses %d", st.PrefetchHits, st.PrefetchAccesses)
	}
	var fills, timely, late, evicted uint64
	for _, ss := range st.Sources {
		fills += ss.Fills
		timely += ss.UsefulTimely
		late += ss.UsefulLate
		evicted += ss.EvictedUnused
	}
	if fills != st.PrefetchFills {
		a.Reportf(now, name, "source-sum",
			"per-source fills sum to %d, aggregate PrefetchFills is %d", fills, st.PrefetchFills)
	}
	if timely+late != st.UsefulPrefetches {
		a.Reportf(now, name, "source-sum",
			"per-source useful sum to %d, aggregate UsefulPrefetches is %d",
			timely+late, st.UsefulPrefetches)
	}
	if late != st.LatePrefetches {
		a.Reportf(now, name, "source-sum",
			"per-source useful-late sum to %d, aggregate LatePrefetches is %d",
			late, st.LatePrefetches)
	}
	if evicted != st.UnusedPrefetches {
		a.Reportf(now, name, "source-sum",
			"per-source evicted-unused sum to %d, aggregate UnusedPrefetches is %d",
			evicted, st.UnusedPrefetches)
	}
	if d := st.Sources[SrcDemand]; d != (SourceStats{}) {
		a.Reportf(now, name, "source-sum",
			"SrcDemand carries prefetch lifecycle counts %+v", d)
	}
	for src, ss := range st.Sources {
		if ss.Fills != ss.UsefulTimely+ss.UsefulLate+ss.EvictedUnused+residentPF[src] {
			a.Reportf(now, name, "lifecycle-partition",
				"source %s: fills %d != useful %d + evicted-unused %d + resident %d",
				Source(src), ss.Fills, ss.UsefulTimely+ss.UsefulLate,
				ss.EvictedUnused, residentPF[src])
		}
	}
}
