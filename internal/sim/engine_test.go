package sim_test

// Stepped-vs-oneshot equivalence: driving a System through Engine.Step with
// any epoch size must produce a Result bit-identical to Run(), because Run is
// the same engine driven to completion. The suite covers every prefetcher arm
// and a spread of epoch sizes (single-record, prime, the default, and
// whole-run), plus the conservation laws and the cancellation/progress
// contracts of RunCtx.

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"streamline/internal/check"
	"streamline/internal/sim"
)

// engineEpochs are the step granularities under test: one record at a time
// (maximum interleaving of bookkeeping with execution), a small prime (epoch
// boundaries misaligned with every internal cadence), the default epoch, and
// a single step covering the whole run.
var engineEpochs = []uint64{1, 7, sim.DefaultEpoch, math.MaxUint64}

func epochName(epoch uint64) string {
	if epoch == math.MaxUint64 {
		return "whole-run"
	}
	return fmt.Sprintf("epoch-%d", epoch)
}

func TestEngineSteppedEquivalence(t *testing.T) {
	families := conformanceFamilies
	for i, arm := range conformanceArms() {
		arm := arm
		// One representative workload per arm, rotating through the
		// families so every family appears under at least one arm without
		// running the full 9x7 matrix four extra times.
		workload := families[i%len(families)]
		t.Run(arm.name+"/"+workload, func(t *testing.T) {
			oneshot, aud, _ := runConformanceSys(t, arm, workload)
			if n := aud.Total(); n != 0 {
				var sb strings.Builder
				aud.WriteReport(&sb)
				t.Fatalf("one-shot run: %d audit violations:\n%s", n, sb.String())
			}

			for _, epoch := range engineEpochs {
				epoch := epoch
				t.Run(epochName(epoch), func(t *testing.T) {
					sys, aud := buildConformanceSys(t, arm, workload)
					eng := sys.Engine()
					for !eng.Done() {
						eng.Step(epoch)
					}
					stepped := eng.Finish()

					if !reflect.DeepEqual(oneshot, stepped) {
						t.Errorf("stepped result differs from Run():\n%s",
							diffSummary(oneshot, stepped))
					}
					if n := aud.Total(); n != 0 {
						var sb strings.Builder
						aud.WriteReport(&sb)
						t.Errorf("stepped run: %d audit violations:\n%s", n, sb.String())
					}
					// The conservation laws must hold on a run assembled
					// from steps, not just on the one-shot path. Warmup is
					// zero in the conformance config, so the whole-run laws
					// apply.
					for _, v := range check.SimLaws(stepped, metaDRAMTraffic(sys), true) {
						t.Errorf("conservation law violated on stepped run: %s", v)
					}
				})
			}
		})
	}
}

// TestEngineFinishIdempotent: Finish must return the same Result on repeated
// calls without re-collecting (stats snapshots are not re-derivable after the
// first collect on some prefetchers).
func TestEngineFinishIdempotent(t *testing.T) {
	arm := conformanceArms()[0]
	sys, _ := buildConformanceSys(t, arm, "mcf06")
	eng := sys.Engine()
	first := eng.Finish()
	second := eng.Finish()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("Finish not idempotent:\n%s", diffSummary(first, second))
	}
	if !eng.Done() {
		t.Error("engine not Done after Finish")
	}
}

// TestEngineProgress checks the observable contract of Progress across a
// stepped run: records and instructions are monotone, MeasuredFraction stays
// in [0,1] and is monotone, and the final view reports completion.
func TestEngineProgress(t *testing.T) {
	arm := conformanceArms()[0]
	sys, _ := buildConformanceSys(t, arm, "pr")
	eng := sys.Engine()

	p := eng.Progress()
	if p.Records != 0 || p.Done {
		t.Fatalf("fresh engine: Records=%d Done=%v, want 0/false", p.Records, p.Done)
	}
	if p.Target == 0 {
		t.Fatal("Progress.Target is zero; config not reflected")
	}

	prev := p
	for !eng.Done() {
		eng.Step(512)
		p = eng.Progress()
		if p.Records < prev.Records {
			t.Fatalf("Records regressed: %d -> %d", prev.Records, p.Records)
		}
		if p.Instructions < prev.Instructions {
			t.Fatalf("Instructions regressed: %d -> %d", prev.Instructions, p.Instructions)
		}
		if f := p.MeasuredFraction(); f < 0 || f > 1 {
			t.Fatalf("MeasuredFraction %f outside [0,1]", f)
		}
		if p.MeasuredFraction() < prev.MeasuredFraction() {
			t.Fatalf("MeasuredFraction regressed: %f -> %f",
				prev.MeasuredFraction(), p.MeasuredFraction())
		}
		prev = p
	}
	if !p.Done {
		t.Error("final Progress.Done is false after engine completed")
	}
	if p.Instructions != p.Target {
		t.Errorf("final Instructions=%d, want Target=%d", p.Instructions, p.Target)
	}
	if got := p.MeasuredFraction(); got != 1 {
		t.Errorf("final MeasuredFraction=%f, want 1", got)
	}
	if p.Cycle == 0 {
		t.Error("final Progress.Cycle is zero")
	}
}

// TestEngineStepZero: Step(0) performs only bookkeeping — it executes no
// records and leaves the later full run bit-identical.
func TestEngineStepZero(t *testing.T) {
	arm := conformanceArms()[0]
	oneshot, _, _ := runConformanceSys(t, arm, "bfs")

	sys, _ := buildConformanceSys(t, arm, "bfs")
	eng := sys.Engine()
	if n := eng.Step(0); n != 0 {
		t.Fatalf("Step(0) executed %d records, want 0", n)
	}
	if eng.Progress().Records != 0 {
		t.Fatal("Step(0) retired records")
	}
	if got := eng.Finish(); !reflect.DeepEqual(oneshot, got) {
		t.Errorf("run after Step(0) differs from Run():\n%s", diffSummary(oneshot, got))
	}
}

// TestRunCtx covers the three RunCtx behaviors: an uncanceled run matches
// Run() exactly and reports monotone progress through observe; a
// pre-canceled context returns immediately with no records executed; and a
// cancellation mid-run stops at the next epoch boundary with ctx.Err() and a
// zero Result.
func TestRunCtx(t *testing.T) {
	arm := conformanceArms()[0]
	oneshot, _, _ := runConformanceSys(t, arm, "omnetpp06")

	t.Run("uncanceled-matches-run", func(t *testing.T) {
		sys, _ := buildConformanceSys(t, arm, "omnetpp06")
		var calls int
		var last sim.Progress
		res, err := sys.RunCtx(context.Background(), 256, func(p sim.Progress) {
			calls++
			if p.Records < last.Records {
				t.Fatalf("observe: Records regressed %d -> %d", last.Records, p.Records)
			}
			last = p
		})
		if err != nil {
			t.Fatalf("RunCtx: %v", err)
		}
		if !reflect.DeepEqual(oneshot, res) {
			t.Errorf("RunCtx result differs from Run():\n%s", diffSummary(oneshot, res))
		}
		if calls == 0 {
			t.Error("observe was never invoked")
		}
		if !last.Done {
			t.Error("last observed Progress not Done")
		}
	})

	t.Run("pre-canceled", func(t *testing.T) {
		sys, _ := buildConformanceSys(t, arm, "omnetpp06")
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := sys.RunCtx(ctx, 0, nil)
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if !reflect.DeepEqual(res, sim.Result{}) {
			t.Error("canceled RunCtx returned a non-zero Result")
		}
	})

	t.Run("cancel-mid-run", func(t *testing.T) {
		sys, _ := buildConformanceSys(t, arm, "omnetpp06")
		ctx, cancel := context.WithCancel(context.Background())
		var observed uint64
		res, err := sys.RunCtx(ctx, 64, func(p sim.Progress) {
			observed = p.Records
			if p.Records >= 512 {
				cancel()
			}
		})
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if !reflect.DeepEqual(res, sim.Result{}) {
			t.Error("canceled RunCtx returned a non-zero Result")
		}
		if observed < 512 {
			t.Fatalf("canceled after %d records, before the trigger point", observed)
		}
		// The run stopped well short of completion: the one-shot run retires
		// far more records than the cancellation point.
		if observed >= oneshot.Cores[0].Instructions {
			t.Errorf("observed %d records at cancel, full run is only %d instructions",
				observed, oneshot.Cores[0].Instructions)
		}
	})
}
