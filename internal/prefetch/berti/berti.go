// Package berti implements the Berti L1D prefetcher (Navarro-Torres et al.,
// MICRO 2022): for each load PC it learns the local deltas that would have
// been *timely* — deltas from accesses old enough that a prefetch issued
// then would have beaten the current demand — and issues the high-coverage
// ones. Berti is the aggressive L1D baseline of Figure 11a/b.
package berti

import (
	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

// Config parameterizes Berti.
type Config struct {
	// TableSize is the number of tracked PCs.
	TableSize int
	// HistoryLen is the per-PC access history depth.
	HistoryLen int
	// MaxDeltas is how many candidate deltas each PC scores.
	MaxDeltas int
	// TimelyCycles is the fill latency a delta must beat to count as
	// timely (roughly the L2/LLC round trip).
	TimelyCycles uint64
	// IssueThreshold is the minimum coverage score (0..63) to prefetch a
	// delta.
	IssueThreshold int
	// MaxIssue bounds prefetches per access.
	MaxIssue int
}

// DefaultConfig returns a configuration matching the paper's setup.
var DefaultConfig = Config{
	TableSize:      256,
	HistoryLen:     16,
	MaxDeltas:      8,
	TimelyCycles:   60,
	IssueThreshold: 30,
	MaxIssue:       4,
}

type histEntry struct {
	line mem.Line
	at   uint64
}

type deltaScore struct {
	delta int64
	score int // saturating 0..63
}

type entry struct {
	tag    uint32
	valid  bool
	hist   []histEntry
	histN  int
	deltas []deltaScore
	seen   int // accesses since last score decay
}

// Prefetcher is the Berti local-delta prefetcher.
type Prefetcher struct {
	cfg   Config
	table []entry
}

// New returns a Berti instance.
func New(cfg Config) *Prefetcher {
	if cfg.TableSize <= 0 {
		cfg = DefaultConfig
	}
	return &Prefetcher{cfg: cfg, table: make([]entry, cfg.TableSize)}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "berti" }

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event, out []prefetch.Request) []prefetch.Request {
	line := ev.Line()
	idx := int(mem.HashPC(ev.PC, 16)) % len(p.table)
	tag := uint32(mem.HashPC(ev.PC, 24))
	e := &p.table[idx]
	if !e.valid || e.tag != tag {
		*e = entry{
			tag: tag, valid: true,
			hist:   make([]histEntry, p.cfg.HistoryLen),
			deltas: make([]deltaScore, 0, p.cfg.MaxDeltas),
		}
	}

	// Score deltas against history entries old enough to have been timely
	// launch points for this access.
	for i := 0; i < e.histN; i++ {
		h := e.hist[i]
		if ev.Now-h.at < p.cfg.TimelyCycles {
			continue
		}
		d := int64(line) - int64(h.line)
		if d == 0 {
			continue
		}
		e.bump(d, p.cfg.MaxDeltas)
	}
	e.seen++
	if e.seen >= 64 {
		e.seen = 0
		for i := range e.deltas {
			e.deltas[i].score /= 2
		}
	}

	// Push history.
	copy(e.hist[1:], e.hist[:len(e.hist)-1])
	e.hist[0] = histEntry{line: line, at: ev.Now}
	if e.histN < len(e.hist) {
		e.histN++
	}

	// Issue the confident deltas.
	issued := 0
	for _, ds := range e.deltas {
		if issued >= p.cfg.MaxIssue {
			break
		}
		if ds.score < p.cfg.IssueThreshold {
			continue
		}
		target := int64(line) + ds.delta
		if target <= 0 {
			continue
		}
		out = append(out, prefetch.Request{Addr: mem.AddrOf(mem.Line(target))})
		issued++
	}
	return out
}

// bump increments a delta's coverage score, tracking at most maxDeltas
// candidates and evicting the weakest.
func (e *entry) bump(d int64, maxDeltas int) {
	weakest, weakestScore := -1, 1<<30
	for i := range e.deltas {
		if e.deltas[i].delta == d {
			if e.deltas[i].score < 63 {
				e.deltas[i].score++
			}
			return
		}
		if e.deltas[i].score < weakestScore {
			weakest, weakestScore = i, e.deltas[i].score
		}
	}
	if len(e.deltas) < maxDeltas {
		e.deltas = append(e.deltas, deltaScore{delta: d, score: 1})
		return
	}
	if weakest >= 0 && weakestScore == 0 {
		e.deltas[weakest] = deltaScore{delta: d, score: 1}
	}
}
