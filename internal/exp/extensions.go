package exp

import (
	"context"
	"fmt"
	"sort"

	"streamline/internal/core"
	"streamline/internal/dram"
	"streamline/internal/exp/runner"
	"streamline/internal/mem"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/stms"
	"streamline/internal/prefetch/triage"
	"streamline/internal/sim"
	"streamline/internal/trace"
	"streamline/internal/workloads"
)

// This file holds experiments beyond the paper's figures:
//
//   - "subset": the Section V-A3 methodology step that defines the paper's
//     irregular subset — benchmarks with at least 5% headroom under an
//     idealized Triage prefetcher given unlimited metadata.
//   - "ext-bypass": the metadata bypass extension (the mechanism Section
//     V-B1 says Streamline lacks, costing it mcf against Triangel).

// idealHeadroom estimates a workload's temporal-prefetch headroom: the
// fraction of its demand stream an unlimited-metadata Triage would cover.
// It replays the trace through the ideal prefetcher functionally (no
// timing), counting accesses whose line was predicted recently — a
// prediction expires after a window, since a prefetch issued thousands of
// accesses early would have been evicted long before its use.
func idealHeadroom(w workloads.Workload, sc Scale, budget uint64) float64 {
	const window = 1024
	tr := trace.NewLimit(w.NewTrace(workloads.Scale{Footprint: sc.Footprint}, sc.Seed), budget)
	ideal := triage.NewIdeal()
	predicted := map[mem.Line]int{} // line -> expiry position
	covered, total := 0, 0
	var buf []prefetch.Request
	i := 0
	for {
		rec, ok := tr.Next()
		if !ok {
			break
		}
		line := mem.LineOf(rec.Addr)
		total++
		if exp, ok := predicted[line]; ok {
			if i <= exp {
				covered++
			}
			delete(predicted, line)
		}
		buf = ideal.Train(prefetch.Event{Now: uint64(i), PC: rec.PC, Addr: rec.Addr}, buf[:0])
		for _, r := range buf {
			predicted[mem.LineOf(r.Addr)] = i + window
		}
		if i%(window*8) == 0 && len(predicted) > 64*1024 {
			for l, exp := range predicted {
				if exp < i {
					delete(predicted, l)
				}
			}
		}
		i++
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

func init() {
	register(Experiment{ID: "subset", Title: "Irregular subset definition (ideal Triage headroom)",
		Run: func(r *Runner) []Table {
			t := Table{ID: "subset",
				Title:   "speedup headroom under unlimited-metadata Triage (>=5% defines the irregular subset)",
				Columns: []string{"workload", "suite", "speedup-headroom", "ideal-coverage", "in-subset", "flagged-irregular"}}
			base := baseArm("stride", "")
			ideal := Arm{Name: "triage-ideal", Apply: func(cfg *sim.Config, sc Scale) {
				cfg.L1DPrefetcher = l1Factory("stride")
				cfg.Temporal = func(meta.Bridge) prefetch.Prefetcher { return triage.NewIdeal() }
				cfg.DedicatedMetadata = true
			}}
			type row struct {
				w      workloads.Workload
				h, cov float64
			}
			ws := r.Scale.workloadList()
			r.Precompute(Singles([]Arm{base, ideal}, ws))
			headrooms := ParallelMap(r, ws,
				func(w workloads.Workload) string { return "headroom|" + w.Name },
				func(w workloads.Workload) float64 { return idealHeadroom(w, r.Scale, 300_000) })
			var rows []row
			var gapped []workloads.Workload
			for i, w := range ws {
				b, okB := r.TryRun(base, w.Name)
				resI, okI := r.TryRun(ideal, w.Name)
				if !okB || !okI || r.Gapped("headroom|"+w.Name) {
					gapped = append(gapped, w)
					continue
				}
				h := Speedup(b, resI) - 1
				rows = append(rows, row{w, h, headrooms[i]})
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].h > rows[j].h })
			agree := 0
			for _, rw := range rows {
				in := rw.h >= 0.05
				if in == rw.w.Irregular {
					agree++
				}
				t.AddRow(rw.w.Name, string(rw.w.Suite), Pct(rw.h), Pct(rw.cov),
					fmt.Sprint(in), fmt.Sprint(rw.w.Irregular))
			}
			for _, w := range gapped {
				t.AddRow(w.Name, string(w.Suite), GapCell, GapCell, GapCell,
					fmt.Sprint(w.Irregular))
			}
			if len(rows) == 0 {
				t.AddRow("agreement", "", "", "", "", GapCell)
			} else {
				t.AddRow("agreement", "", "", "", "", Pct(float64(agree)/float64(len(rows))))
			}
			t.Notes = append(t.Notes,
				"Section V-A3's rule: >=5% speedup headroom under unlimited-metadata Triage",
				"gather workloads (pr/cc/soplex) show NEGATIVE ideal-Triage headroom here: their hot triggers recur with different successors, which a pairwise format mispredicts into wasted bandwidth — the registry flags them irregular from their stream-based coverage (ideal-coverage column), the pattern Streamline exists to exploit")
			return []Table{t}
		}})

	register(Experiment{ID: "ext-bypass", Title: "Extension: metadata bypass (the mcf fix)",
		Run: func(r *Runner) []Table {
			t := Table{ID: "ext-bypass",
				Title:   "Streamline with/without scan bypassing on scan-heavy workloads",
				Columns: []string{"workload", "triangel", "streamline", "streamline+bypass", "bypassed-inserts"}}
			base := baseArm("stride", "")
			tri := triangelArm("triangel", "stride", "", nil)
			plain := streamlineArm("streamline", "stride", "", nil)
			byp := streamlineArm("streamline+bypass", "stride", "",
				func(o *core.Options) { o.Bypass = true })
			// Scan-heavy mcf-likes plus one scan-free control.
			names := []string{"mcf06", "mcf17", "sphinx06"}
			r.Precompute(SingleNames([]Arm{base, tri, plain}, names))
			r.PrecomputeSystems([]Arm{byp}, names)
			for _, name := range names {
				b, okB := r.TryRun(base, name)
				resT, okT := r.TryRun(tri, name)
				resP, okP := r.TryRun(plain, name)
				resB, sys := r.runWithSystem(byp, name)
				if !okB || !okT || !okP || sys == nil {
					t.AddRow(name, GapCell, GapCell, GapCell, GapCell)
					continue
				}
				rt := Speedup(b, resT)
				rs := Speedup(b, resP)
				rb := Speedup(b, resB)
				var bypassed uint64
				if p := streamlineOf(sys); p != nil {
					bypassed = p.Stats.BypassedInserts
				}
				t.AddRow(name, F(rt), F(rs), F(rb), fmt.Sprint(bypassed))
			}
			t.Notes = append(t.Notes,
				"Section V-B1: Triangel wins mcf only because it bypasses scan PCs; this extension gives Streamline the same protection")
			return []Table{t}
		}})
}

func init() {
	register(Experiment{ID: "workloads", Title: "Workload suite characterization",
		Run: func(r *Runner) []Table {
			t := Table{ID: "workloads",
				Title: "temporal structure of the synthetic suite (see internal/workloads)",
				Columns: []string{"workload", "suite", "lines", "pcs", "multiplicity",
					"pair-stability", "sequential", "dependent", "stores"}}
			ws := r.Scale.workloadList()
			analyses := ParallelMap(r, ws,
				func(w workloads.Workload) string { return "analyze|" + w.Name },
				func(w workloads.Workload) workloads.Analysis {
					return workloads.Analyze(w, workloads.Scale{Footprint: r.Scale.Footprint},
						r.Scale.Seed, 500_000)
				})
			for i, w := range ws {
				if r.Gapped("analyze|" + w.Name) {
					t.AddRow(w.Name, string(w.Suite), GapCell, GapCell, GapCell,
						GapCell, GapCell, GapCell, GapCell)
					continue
				}
				a := analyses[i]
				t.AddRow(w.Name, string(w.Suite),
					fmt.Sprint(a.FootprintLines), fmt.Sprint(a.PCs),
					F(a.LineMultiplicity), Pct(a.PairStability),
					Pct(a.SequentialFraction), Pct(a.DependentFraction),
					Pct(a.StoreFraction))
			}
			t.Notes = append(t.Notes,
				"pair stability bounds pairwise-format accuracy; multiplicity drives trigger ambiguity; dependent loads serialize and make coverage pay")
			return []Table{t}
		}})
}

func init() {
	register(Experiment{ID: "ext-offchip", Title: "Extension: on-chip vs off-chip metadata (STMS baseline)",
		Run: func(r *Runner) []Table {
			t := Table{ID: "ext-offchip",
				Title: "off-chip (STMS) vs on-chip (Triangel/Streamline) temporal prefetching",
				Columns: []string{"workload", "stms", "triangel", "streamline",
					"stms-offchip-blocks", "streamline-llc-blocks"}}
			base := baseArm("stride", "")
			tri := triangelArm("triangel", "stride", "", nil)
			str := streamlineArm("streamline", "stride", "", nil)
			ws := r.Scale.irregular()
			r.Precompute(Singles([]Arm{base, tri, str}, ws))
			r.precomputeOffchip(workloads.Names(ws))
			for _, w := range ws {
				b, okB := r.TryRun(base, w.Name)
				resT, okT := r.TryRun(tri, w.Name)
				resS, okS := r.TryRun(str, w.Name)
				resO, sys := r.runWithSystemOffchip(w.Name)
				if !okB || !okT || !okS || sys == nil {
					t.AddRow(w.Name, GapCell, GapCell, GapCell, GapCell, GapCell)
					continue
				}
				rt := Speedup(b, resT)
				rs := Speedup(b, resS)
				ro := Speedup(b, resO)
				var offchip uint64
				if p, ok := sys.TemporalOf(0).(*stms.Prefetcher); ok {
					offchip = p.Stats.OffchipTraffic()
				}
				onchip := resS.Cores[0].Meta.Traffic()
				t.AddRow(w.Name, F(ro), F(rt), F(rs),
					fmt.Sprint(offchip), fmt.Sprint(onchip))
			}
			t.Notes = append(t.Notes,
				"Section II-A: off-chip temporal prefetchers spend DRAM bandwidth and latency on metadata; the on-chip designs confine it to the LLC")
			return []Table{t}
		}})

	register(Experiment{ID: "ext-compression", Title: "Extension: Triage LUT compression accuracy cost",
		Run: func(r *Runner) []Table {
			t := Table{ID: "ext-compression",
				Title:   "Triage with LUT-compressed vs uncompressed targets",
				Columns: []string{"workload", "compressed", "lut-entries", "speedup", "accuracy"}}
			base := baseArm("stride", "")
			// LUT sizes relative to the workloads' region footprints
			// (~15-60 of the 128KB regions at small scale): a 4-entry LUT
			// recycles constantly, 16 occasionally, 2^20 never.
			lutSizes := []int{4, 16, 1 << 20}
			arms := make(map[int]Arm, len(lutSizes))
			for _, lutSize := range lutSizes {
				lutSize := lutSize
				arms[lutSize] = Arm{Name: fmt.Sprintf("triage-lut%d", lutSize),
					Apply: func(cfg *sim.Config, sc Scale) {
						cfg.L1DPrefetcher = l1Factory("stride")
						cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
							c := triage.DefaultConfig()
							c.MetaBytes = sc.MetaBytes
							c.LUTSize = lutSize
							return triage.New(c, b)
						}
					}}
			}
			all := []Arm{base}
			for _, lutSize := range lutSizes {
				all = append(all, arms[lutSize])
			}
			r.Precompute(Singles(all, r.Scale.irregular()))
			for _, lutSize := range lutSizes {
				arm := arms[lutSize]
				var spd, acc []float64
				for _, w := range r.Scale.irregular() {
					b, okB := r.TryRun(base, w.Name)
					res, okA := r.TryRun(arm, w.Name)
					if !okB || !okA {
						continue // gapped workload: excluded from this arm's means
					}
					spd = append(spd, Speedup(b, res))
					if res.Cores[0].L2.PrefetchFills > 0 {
						acc = append(acc, Accuracy(res))
					}
				}
				label := "tiny LUT (heavy recycling)"
				switch lutSize {
				case 16:
					label = "moderate LUT"
				case 1 << 20:
					label = "effectively uncompressed"
				}
				if len(spd) == 0 {
					t.AddRow(label, fmt.Sprint(lutSize != 1<<20), fmt.Sprint(lutSize),
						GapCell, GapCell)
					continue
				}
				t.AddRow(label, fmt.Sprint(lutSize != 1<<20), fmt.Sprint(lutSize),
					F(Geomean(spd)), Pct(Mean(acc)))
			}
			t.Notes = append(t.Notes,
				"Triangel's authors report LUT compression significantly reduces Triage's accuracy; LUT slot recycling silently redirects old correlations")
			return []Table{t}
		}})
}

// runWithSystemOffchip runs the STMS arm, memoized like runWithSystem, and
// exposes the system for its off-chip statistics.
func (r *Runner) runWithSystemOffchip(workload string) (sim.Result, *sim.System) {
	return r.runSystem("stms|"+workload, func(ctx context.Context) (sim.Result, *sim.System, error) {
		cfg := r.Scale.baseConfig(1)
		cfg.L1DPrefetcher = l1Factory("stride")
		cfg.TemporalDRAM = func(d *dram.DRAM) prefetch.Prefetcher {
			return stms.New(stms.DefaultConfig(), d)
		}
		r.attachAudit(&cfg, "stms|"+workload+"|sys")
		finish := r.attachTelemetry(&cfg, "stms|"+workload+"|sys")
		sys := sim.New(cfg)
		w, err := workloads.Get(workload)
		if err != nil {
			panic(err)
		}
		sys.SetTrace(0, w.NewTrace(workloads.Scale{Footprint: r.Scale.Footprint}, r.Scale.Seed))
		r.logf("  [stms] %s\n", workload)
		res, err := sys.RunCtx(ctx, 0, nil)
		finish()
		if err != nil {
			return sim.Result{}, nil, err
		}
		return res, sys, nil
	})
}

// precomputeOffchip runs the STMS simulations for the given workloads on the
// worker pool.
func (r *Runner) precomputeOffchip(names []string) {
	var jobs []runner.Job[struct{}]
	for _, n := range names {
		n := n
		if r.sysMemoized("stms|" + n) {
			continue
		}
		jobs = append(jobs, runner.Job[struct{}]{
			Key: "stms|" + n,
			Run: func(context.Context) (struct{}, error) {
				r.runWithSystemOffchip(n)
				return struct{}{}, nil
			},
		})
	}
	r.runJobs(jobs)
}
