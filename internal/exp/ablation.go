package exp

import (
	"fmt"

	"streamline/internal/core"
	"streamline/internal/meta"
)

// This file regenerates Figure 14 (the component ablation) and Figure 15
// (filtering coverage loss and its mitigations).

// ablationVariants builds the Figure 14 arms: additions on top of
// Streamline-unopt and removals from the complete design.
func ablationVariants() []Arm {
	mk := func(name string, mod func(*core.Options)) Arm {
		return streamlineArm(name, "stride", "", mod)
	}
	unopt := func(o *core.Options) { *o = withScale(core.UnoptOptions(), *o) }
	return []Arm{
		triangelArm("triangel", "stride", "", nil),
		mk("unopt", unopt),
		mk("unopt+MB", func(o *core.Options) {
			unopt(o)
			o.MetaBufferSize = 3
		}),
		mk("unopt+SA", func(o *core.Options) {
			unopt(o)
			o.DisableAlignment = false // without a buffer, alignment has nothing to match
		}),
		mk("unopt+MB,SA", func(o *core.Options) {
			unopt(o)
			o.MetaBufferSize = 3
			o.DisableAlignment = false
		}),
		mk("unopt+TSP", func(o *core.Options) {
			unopt(o)
			o.WayPartitioned = false
			o.Unfiltered = false
		}),
		mk("unopt+TP-MJ", func(o *core.Options) {
			unopt(o)
			o.Policy = nil // TP-Mockingjay default
		}),
		mk("unopt+TSP,TP-MJ", func(o *core.Options) {
			unopt(o)
			o.WayPartitioned = false
			o.Unfiltered = false
			o.Policy = nil
		}),
		mk("full-MB,SA", func(o *core.Options) {
			o.MetaBufferSize = 0
			o.DisableAlignment = true
		}),
		mk("full-TSP", func(o *core.Options) {
			o.WayPartitioned = true
			o.Unfiltered = true
		}),
		mk("full-TP-MJ", func(o *core.Options) { o.Policy = meta.NewEntrySRRIP }),
		mk("streamline", nil),
	}
}

// withScale preserves the scale-dependent fields a runner injected into the
// default options when replacing them with a variant preset.
func withScale(preset, scaled core.Options) core.Options {
	preset.MetaBytes = scaled.MetaBytes
	preset.MinSets = scaled.MinSets
	return preset
}

func init() {
	register(Experiment{ID: "fig14", Title: "Component ablation",
		Run: func(r *Runner) []Table {
			t := Table{ID: "fig14", Title: "ablation: coverage / accuracy / speedup (irregular subset)",
				Columns: []string{"arm", "coverage", "accuracy", "speedup"}}
			base := baseArm("stride", "")
			ws := r.Scale.irregular()
			variants := ablationVariants()
			r.Precompute(Singles(append([]Arm{base}, variants...), ws))
			for _, arm := range variants {
				var cov, acc, spd []float64
				for _, w := range ws {
					b, okB := r.TryRun(base, w.Name)
					res, okA := r.TryRun(arm, w.Name)
					if !okB || !okA {
						continue // gapped workload: excluded from this arm's means
					}
					cov = append(cov, Coverage(b, res))
					spd = append(spd, Speedup(b, res))
					if res.Cores[0].L2.PrefetchFills > 0 {
						acc = append(acc, Accuracy(res))
					}
				}
				if len(cov) == 0 {
					t.AddRow(arm.Name, GapCell, GapCell, GapCell)
					continue
				}
				t.AddRow(arm.Name, Pct(Mean(cov)), Pct(Mean(acc)), F(Geomean(spd)))
			}
			t.Notes = append(t.Notes,
				"paper: unopt alone beats Triangel's coverage by 7.6 pp; MB+SA and TSP+TP-MJ are synergistic pairs; removing any component costs performance")
			return []Table{t}
		}})

	register(Experiment{ID: "fig15", Title: "Filtering coverage loss and mitigations",
		Run: func(r *Runner) []Table {
			t := Table{ID: "fig15", Title: "small partitions: filtering, realignment, skew, hybrid",
				Columns: []string{"arm", "size", "coverage", "speedup", "filtered-inserts"}}
			base := baseArm("stride", "")
			ws := r.Scale.irregular()
			mb := r.Scale.MetaBytes
			fracVariants := map[int][]Arm{}
			all := []Arm{base}
			for _, frac := range []int{2, 4} {
				sz := mb / frac
				variants := []Arm{
					streamlineArm(fmt.Sprintf("unfiltered-%d", frac), "stride", "",
						func(o *core.Options) { o.FixedBytes = sz; o.Unfiltered = true }),
					streamlineArm(fmt.Sprintf("filtered-norealign-%d", frac), "stride", "",
						func(o *core.Options) { o.FixedBytes = sz; o.DisableRealignment = true }),
					streamlineArm(fmt.Sprintf("filtered-realign-%d", frac), "stride", "",
						func(o *core.Options) { o.FixedBytes = sz }),
					streamlineArm(fmt.Sprintf("skewed-%d", frac), "stride", "",
						func(o *core.Options) { o.FixedBytes = sz; o.Skewed = true }),
					streamlineArm(fmt.Sprintf("hybrid-%d", frac), "stride", "",
						func(o *core.Options) { o.FixedBytes = sz; o.Hybrid = true }),
				}
				fracVariants[frac] = variants
				all = append(all, variants...)
			}
			r.Precompute(Singles(all, ws))
			for _, frac := range []int{2, 4} {
				sz := mb / frac
				for _, arm := range fracVariants[frac] {
					var spd, cov []float64
					var filtered uint64
					for _, w := range ws {
						b, okB := r.TryRun(base, w.Name)
						res, okA := r.TryRun(arm, w.Name)
						if !okB || !okA {
							continue // gapped workload: excluded from this arm's means
						}
						spd = append(spd, Speedup(b, res))
						cov = append(cov, Coverage(b, res))
						filtered += res.Cores[0].Meta.FilteredInserts
					}
					if len(spd) == 0 {
						t.AddRow(arm.Name, fmt.Sprintf("%dKB", sz>>10),
							GapCell, GapCell, GapCell)
						continue
					}
					t.AddRow(arm.Name, fmt.Sprintf("%dKB", sz>>10),
						Pct(Mean(cov)), F(Geomean(spd)), fmt.Sprint(filtered))
				}
			}
			t.Notes = append(t.Notes,
				"paper: realignment recoups 72-79% of filtering's loss; skewed indexing recovers it all; hybrid partitioning beats unfiltered at small sizes")
			return []Table{t}
		}})
}
