package sim

import (
	"streamline/internal/cache"
	"streamline/internal/dram"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
)

// snapshot captures the counters that measured-phase deltas are computed
// from.
type snapshot struct {
	instr  uint64
	cycles uint64
	l1d    cache.Stats
	l2     cache.Stats
	issued uint64
	meta   meta.Stats
}

func (s *System) snapshotCore(cs *coreState) snapshot {
	sn := snapshot{
		instr:  cs.core.Instructions(),
		cycles: cs.core.Finish(),
		l1d:    cs.l1d.Stats,
		l2:     cs.l2.Stats,
		issued: cs.issued,
	}
	if mr, ok := cs.tempf.(prefetch.MetaReporter); ok {
		sn.meta = mr.MetaStats()
	}
	return sn
}

// CoreResult is one core's measured-phase statistics.
type CoreResult struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64

	L1D cache.Stats
	L2  cache.Stats

	PrefetchesIssued uint64

	// Meta is the temporal prefetcher's metadata activity (zero when no
	// temporal prefetcher is configured).
	Meta meta.Stats
}

// L2MPKI returns L2 demand misses per kilo-instruction.
func (r CoreResult) L2MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.L2.DemandMisses) / float64(r.Instructions) * 1000
}

// PrefetchAccuracy returns useful prefetches over prefetch fills at the L2.
func (r CoreResult) PrefetchAccuracy() float64 {
	if r.L2.PrefetchFills == 0 {
		return 0
	}
	return float64(r.L2.UsefulPrefetches) / float64(r.L2.PrefetchFills)
}

// Result is a full measured-phase report.
type Result struct {
	Cores []CoreResult
	// LLC and DRAM are whole-run shared-resource statistics.
	LLC  cache.Stats
	DRAM dram.Stats
}

// IPC returns core 0's IPC (the single-core headline number).
func (r Result) IPC() float64 {
	if len(r.Cores) == 0 {
		return 0
	}
	return r.Cores[0].IPC
}

// TotalMetaTraffic sums metadata traffic (blocks) across cores.
func (r Result) TotalMetaTraffic() uint64 {
	var t uint64
	for _, c := range r.Cores {
		t += c.Meta.Traffic()
	}
	return t
}

func subStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		DemandAccesses:   a.DemandAccesses - b.DemandAccesses,
		DemandHits:       a.DemandHits - b.DemandHits,
		DemandMisses:     a.DemandMisses - b.DemandMisses,
		PrefetchAccesses: a.PrefetchAccesses - b.PrefetchAccesses,
		PrefetchHits:     a.PrefetchHits - b.PrefetchHits,
		MetaReads:        a.MetaReads - b.MetaReads,
		MetaWrites:       a.MetaWrites - b.MetaWrites,
		PrefetchFills:    a.PrefetchFills - b.PrefetchFills,
		UsefulPrefetches: a.UsefulPrefetches - b.UsefulPrefetches,
		LatePrefetches:   a.LatePrefetches - b.LatePrefetches,
		UnusedPrefetches: a.UnusedPrefetches - b.UnusedPrefetches,
		Evictions:        a.Evictions - b.Evictions,
		Writebacks:       a.Writebacks - b.Writebacks,
		PortStallCycles:  a.PortStallCycles - b.PortStallCycles,
		MSHRStallCycles:  a.MSHRStallCycles - b.MSHRStallCycles,
		ExtraWaitCycles:  a.ExtraWaitCycles - b.ExtraWaitCycles,
	}
}

func subMeta(a, b meta.Stats) meta.Stats {
	return meta.Stats{
		Lookups:         a.Lookups - b.Lookups,
		TriggerHits:     a.TriggerHits - b.TriggerHits,
		Inserts:         a.Inserts - b.Inserts,
		Updates:         a.Updates - b.Updates,
		Reads:           a.Reads - b.Reads,
		Writes:          a.Writes - b.Writes,
		RearrangeReads:  a.RearrangeReads - b.RearrangeReads,
		RearrangeWrites: a.RearrangeWrites - b.RearrangeWrites,
		FilteredInserts: a.FilteredInserts - b.FilteredInserts,
		FilteredLookups: a.FilteredLookups - b.FilteredLookups,
		AliasedInserts:  a.AliasedInserts - b.AliasedInserts,
		Evictions:       a.Evictions - b.Evictions,
		DroppedResize:   a.DroppedResize - b.DroppedResize,
		Resizes:         a.Resizes - b.Resizes,
	}
}

// collect assembles the measured-phase result after Run completes.
func (s *System) collect() Result {
	res := Result{LLC: s.llc.Stats, DRAM: s.dram.Stats}
	for _, cs := range s.cores {
		base, fin := cs.warmBase, cs.final
		cr := CoreResult{
			Instructions:     fin.instr - base.instr,
			Cycles:           fin.cycles - base.cycles,
			L1D:              subStats(fin.l1d, base.l1d),
			L2:               subStats(fin.l2, base.l2),
			PrefetchesIssued: fin.issued - base.issued,
			Meta:             subMeta(fin.meta, base.meta),
		}
		if cr.Cycles > 0 {
			cr.IPC = float64(cr.Instructions) / float64(cr.Cycles)
		}
		res.Cores = append(res.Cores, cr)
	}
	return res
}
