package replacement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamline/internal/mem"
)

// Property tests: every policy must return victims within [lo, ways) under
// arbitrary access sequences, and never corrupt its own state.

func TestPropertyVictimRespectsLowerBound(t *testing.T) {
	for _, name := range allPolicies() {
		name := name
		f := func(seed int64, loSel uint8, ops []uint16) bool {
			const sets, ways = 8, 8
			p := Factories[name](sets, ways)
			rng := rand.New(rand.NewSource(seed))
			lo := int(loSel) % ways
			for _, op := range ops {
				set := int(op) % sets
				a := Access{PC: mem.PC(op >> 4), Line: mem.Line(op)}
				switch op % 3 {
				case 0:
					w := lo + rng.Intn(ways-lo)
					p.Fill(set, w, a)
				case 1:
					w := lo + rng.Intn(ways-lo)
					p.Hit(set, w, a)
				case 2:
					v := p.Victim(set, lo, a)
					if v < lo || v >= ways {
						return false
					}
					p.Evict(set, v)
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPropertyVictimFullLowerBound(t *testing.T) {
	// With lo = ways-1 there is exactly one candidate.
	for _, name := range allPolicies() {
		p := Factories[name](4, 4)
		for i := 0; i < 100; i++ {
			a := Access{PC: 1, Line: mem.Line(i)}
			p.Fill(i%4, 3, a)
			if v := p.Victim(i%4, 3, a); v != 3 {
				t.Errorf("%s: victim %d with single candidate", name, v)
				break
			}
		}
	}
}

func TestOracleReplayDeterministic(t *testing.T) {
	f := func(seed int64, capSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		lines := make([]mem.Line, 500)
		for i := range lines {
			lines[i] = mem.Line(rng.Intn(64))
		}
		stream := CorrelationsOf(lines)
		capacity := int(capSel)%32 + 1
		a := ReplayOracle(stream, capacity, TPMIN)
		b := ReplayOracle(stream, capacity, TPMIN)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestOracleMonotoneInCapacity(t *testing.T) {
	// More capacity can only help an optimal policy.
	rng := rand.New(rand.NewSource(3))
	var lines []mem.Line
	for lap := 0; lap < 4; lap++ {
		perm := rand.New(rand.NewSource(9)).Perm(200)
		for _, p := range perm {
			lines = append(lines, mem.Line(p))
			if rng.Intn(3) == 0 {
				lines = append(lines, mem.Line(500+rng.Intn(100)))
			}
		}
	}
	stream := CorrelationsOf(lines)
	for _, kind := range []OracleKind{MIN, TPMIN} {
		prev := uint64(0)
		for _, capacity := range []int{8, 32, 128, 512} {
			s := ReplayOracle(stream, capacity, kind)
			metric := s.TriggerHits
			if kind == TPMIN {
				metric = s.CorrelationHits
			}
			if metric < prev {
				t.Errorf("%v: hits decreased from %d to %d as capacity grew",
					kind, prev, metric)
			}
			prev = metric
		}
	}
}

func TestOracleKindString(t *testing.T) {
	if MIN.String() != "min" || TPMIN.String() != "tp-min" {
		t.Error("oracle kind names wrong")
	}
}
