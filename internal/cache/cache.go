// Package cache implements the set-associative caches of the simulated
// hierarchy: tag arrays with pluggable replacement, prefetch bits for
// coverage/accuracy accounting, MSHR occupancy and port contention for
// timing, and — for the LLC — way reservation hooks that carve out the
// temporal prefetchers' metadata partitions.
package cache

import (
	"fmt"

	"streamline/internal/mem"
	"streamline/internal/replacement"
	"streamline/internal/telemetry"
)

// Config describes one cache level.
type Config struct {
	// Name labels the level in reports ("L1D", "L2", "LLC").
	Name string
	// Sets and Ways define the geometry; Sets must be a power of two.
	Sets, Ways int
	// Latency is the access latency in cycles.
	Latency uint64
	// MSHRs bounds outstanding misses.
	MSHRs int
	// Ports is the number of read/write ports (accesses per cycle).
	Ports int
	// Policy constructs the replacement policy; nil defaults to LRU.
	Policy replacement.Factory
}

// SizeBytes returns the data capacity of the configured cache.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * mem.LineSize }

// Source identifies the prefetcher that issued a fill, for lifecycle
// attribution: every prefetched line remembers which engine brought it in,
// so its eventual outcome (useful-timely, useful-late, evicted-unused) is
// credited to that engine. SrcDemand marks ordinary demand fills.
type Source uint8

const (
	SrcDemand Source = iota
	SrcL1
	SrcL2
	SrcTemporal
	// NumSources sizes per-source counter arrays.
	NumSources = int(iota)
)

// String returns the source's report name.
func (s Source) String() string {
	switch s {
	case SrcDemand:
		return "demand"
	case SrcL1:
		return "l1"
	case SrcL2:
		return "l2"
	case SrcTemporal:
		return "temporal"
	}
	return fmt.Sprintf("source(%d)", uint8(s))
}

// SourceStats is one prefetch source's lifecycle breakdown at a cache level.
// The fields partition this source's prefetch fills by outcome (lines still
// resident at the end of a run account for the remainder).
type SourceStats struct {
	Fills uint64
	// UsefulTimely counts first demand hits that found the fill complete;
	// UsefulLate counts first demand hits that had to wait on the in-flight
	// fill. Their sum is this source's share of UsefulPrefetches.
	UsefulTimely uint64
	UsefulLate   uint64
	// EvictedUnused counts prefetched lines evicted before any demand hit —
	// pure pollution.
	EvictedUnused uint64
}

// Useful returns total useful prefetches (timely plus late).
func (s SourceStats) Useful() uint64 { return s.UsefulTimely + s.UsefulLate }

// Accuracy returns useful over fills, clamped to [0,1] — the single
// definition of prefetch accuracy shared by final reports, the epoch
// feedback the simulator delivers to accuracy-consuming prefetchers, and
// the telemetry sampler's interval records.
func Accuracy(useful, fills uint64) float64 {
	if fills == 0 {
		return 0
	}
	a := float64(useful) / float64(fills)
	if a > 1 {
		a = 1
	}
	return a
}

// Stats aggregates a cache level's event counts.
type Stats struct {
	DemandAccesses uint64
	DemandHits     uint64
	DemandMisses   uint64

	PrefetchAccesses uint64
	PrefetchHits     uint64

	MetaReads  uint64
	MetaWrites uint64

	PrefetchFills    uint64
	UsefulPrefetches uint64 // demand hits on lines brought in by prefetch
	LatePrefetches   uint64 // demand hits that had to wait for an in-flight fill
	UnusedPrefetches uint64 // prefetched lines evicted without a demand hit

	Evictions  uint64
	Writebacks uint64

	PortStallCycles uint64 // queueing delay due to port contention
	MSHRStallCycles uint64 // delay waiting for a free MSHR
	ExtraWaitCycles uint64 // demand cycles spent waiting on in-flight fills

	// Sources is the per-prefetcher lifecycle attribution (indexed by
	// Source; the SrcDemand slot stays zero).
	Sources [NumSources]SourceStats
}

// DemandHitRate returns demand hits over demand accesses.
func (s Stats) DemandHitRate() float64 {
	if s.DemandAccesses == 0 {
		return 0
	}
	return float64(s.DemandHits) / float64(s.DemandAccesses)
}

// PrefetchAccuracy returns useful prefetches over prefetch fills.
func (s Stats) PrefetchAccuracy() float64 {
	return Accuracy(s.UsefulPrefetches, s.PrefetchFills)
}

type line struct {
	tag        mem.Line
	pc         mem.PC
	valid      bool
	dirty      bool
	prefetched bool
	src        Source // issuing prefetcher (meaningful while prefetched)
	readyAt    uint64 // cycle at which the fill completes (late prefetches)
}

// Victim describes a line displaced by a fill.
type Victim struct {
	Line       mem.Line
	Dirty      bool
	Prefetched bool // evicted while still unused by demand
	Valid      bool
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg  Config
	sets [][]line
	repl replacement.Policy

	// reserved[s] is the number of low-indexed ways of set s unavailable
	// to data (owned by a metadata partition). Data occupies the rest.
	reserved []int

	port  mem.RateLimiter
	mshr  []uint64 // ring of outstanding miss completion times
	mshrI int

	// Shadow accounting for the audit subsystem: occupied tracks valid
	// data lines incrementally (AuditScan cross-checks it against a full
	// scan), mshrPending tracks unmatched MSHRReserve calls (leak
	// detection). Both are plain increments, kept on even when auditing is
	// off so enabling it mid-run needs no reconstruction.
	occupied    int
	mshrPending int

	// tel, when non-nil, receives this level's structured telemetry events
	// (MSHR-full stalls); nil reduces the hooks to a branch.
	tel *telemetry.Emitter

	Stats Stats
}

// SetTelemetry attaches a telemetry emitter (nil disables the hooks).
func (c *Cache) SetTelemetry(e *telemetry.Emitter) { c.tel = e }

// New constructs a cache from cfg.
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: sets must be a positive power of two, got %d", cfg.Name, cfg.Sets))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive, got %d", cfg.Name, cfg.Ways))
	}
	if cfg.Policy == nil {
		cfg.Policy = replacement.NewLRU
	}
	if cfg.Ports <= 0 {
		cfg.Ports = 1
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 8
	}
	c := &Cache{
		cfg:      cfg,
		sets:     make([][]line, cfg.Sets),
		repl:     cfg.Policy(cfg.Sets, cfg.Ways),
		reserved: make([]int, cfg.Sets),
		port: mem.RateLimiter{
			BucketCycles: portWindow,
			Capacity:     uint64(cfg.Ports) * portWindow,
		},
		mshr: make([]uint64, cfg.MSHRs),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the configured access latency.
func (c *Cache) Latency() uint64 { return c.cfg.Latency }

// SetOf returns the set index for a line.
func (c *Cache) SetOf(l mem.Line) int { return int(uint64(l) & uint64(c.cfg.Sets-1)) }

// portWindow is the port rate limiter's bucket width in cycles: a cache
// with P ports serves at most P*portWindow accesses per portWindow cycles.
const portWindow = 64

// PortDelay models port contention as a bucketed rate limit and returns the
// queueing delay for an access arriving at cycle now (see mem.RateLimiter
// for why arrival-order insensitivity matters here).
//
// Demand accesses have priority: hardware services them from a separate
// queue ahead of prefetch and metadata traffic, so they consume a port slot
// but never wait behind low-priority work.
func (c *Cache) PortDelay(now uint64, demand bool) uint64 {
	delay := c.port.Charge(now, 1)
	if demand {
		return 0
	}
	c.Stats.PortStallCycles += delay
	return delay
}

// MSHRDelay reserves an MSHR for a miss starting at start that completes at
// ready, returning the delay (if any) until an MSHR frees up.
func (c *Cache) MSHRDelay(start, ready uint64) uint64 {
	slot, delay := c.MSHRReserve(start)
	c.MSHRComplete(slot, ready+delay)
	return delay
}

// MSHRReserve claims an MSHR for a miss beginning at start, returning the
// slot and the stall (if any) until one frees. The caller must complete the
// reservation with MSHRComplete once the fill time is known.
func (c *Cache) MSHRReserve(start uint64) (slot int, delay uint64) {
	oldest := c.mshr[c.mshrI]
	if oldest > start {
		delay = oldest - start
	}
	slot = c.mshrI
	c.mshr[slot] = start + delay // placeholder until MSHRComplete
	c.mshrI = (c.mshrI + 1) % len(c.mshr)
	c.Stats.MSHRStallCycles += delay
	c.mshrPending++
	if delay > 0 && c.tel.Enabled(telemetry.Debug) {
		c.tel.Eventf(start, telemetry.Debug, "mshr-full",
			"all %d MSHRs busy; miss stalled %d cycles", len(c.mshr), delay)
	}
	return slot, delay
}

// MSHRComplete records the fill time of a reserved MSHR, freeing it then.
func (c *Cache) MSHRComplete(slot int, ready uint64) {
	if ready > c.mshr[slot] {
		c.mshr[slot] = ready
	}
	c.mshrPending--
}

// LookupResult reports the outcome of a cache lookup.
type LookupResult struct {
	Hit bool
	// WasPrefetched is set when a demand access hit a line installed by a
	// prefetch that had not yet been used — a useful prefetch.
	WasPrefetched bool
	// ExtraWait is the additional delay when the hit line's fill is still
	// in flight (a late prefetch).
	ExtraWait uint64
}

// Lookup searches for the access's line, updating replacement and
// prefetch-bit state. now is the cycle the access reaches this level.
func (c *Cache) Lookup(now uint64, a mem.Access) LookupResult {
	demand := a.Kind.IsDemand()
	if demand {
		c.Stats.DemandAccesses++
	} else if a.Kind == mem.Prefetch {
		c.Stats.PrefetchAccesses++
	}
	res, hit := c.lookupHit(now, a)
	if !hit && demand {
		c.Stats.DemandMisses++
	}
	return res
}

// LookupResident is Lookup restricted to resident lines: one tag walk that
// applies Lookup's full side effects on a hit and none at all on a miss.
// It replaces the Probe-then-Lookup double scan on prefetch promote paths,
// where an absent line must not count as a cache access.
func (c *Cache) LookupResident(now uint64, a mem.Access) (LookupResult, bool) {
	res, hit := c.lookupHit(now, a)
	if hit {
		if a.Kind.IsDemand() {
			c.Stats.DemandAccesses++
		} else if a.Kind == mem.Prefetch {
			c.Stats.PrefetchAccesses++
		}
	}
	return res, hit
}

// lookupHit performs the tag walk, applying every hit-side effect (stats,
// prefetch bit, replacement, dirty marking) when the line is found and
// touching nothing when it is not. Access/miss counting is the caller's.
func (c *Cache) lookupHit(now uint64, a mem.Access) (LookupResult, bool) {
	set := c.SetOf(a.Line())
	demand := a.Kind.IsDemand()
	for w := c.reserved[set]; w < c.cfg.Ways; w++ {
		ln := &c.sets[set][w]
		if !ln.valid || ln.tag != a.Line() {
			continue
		}
		var res LookupResult
		res.Hit = true
		late := false
		if ln.readyAt > now {
			res.ExtraWait = ln.readyAt - now
			if demand {
				c.Stats.ExtraWaitCycles += res.ExtraWait
				if ln.prefetched {
					c.Stats.LatePrefetches++
					late = true
				}
			}
		}
		if demand {
			c.Stats.DemandHits++
			if ln.prefetched {
				res.WasPrefetched = true
				ln.prefetched = false
				c.Stats.UsefulPrefetches++
				if late {
					c.Stats.Sources[ln.src].UsefulLate++
				} else {
					c.Stats.Sources[ln.src].UsefulTimely++
				}
			}
		} else if a.Kind == mem.Prefetch {
			c.Stats.PrefetchHits++
		}
		if a.Kind == mem.Store {
			ln.dirty = true
		}
		c.repl.Hit(set, w, replacement.Access{PC: a.PC, Line: a.Line()})
		return res, true
	}
	return LookupResult{}, false
}

// Probe reports whether the line is resident, without touching any state.
func (c *Cache) Probe(l mem.Line) bool {
	set := c.SetOf(l)
	for w := c.reserved[set]; w < c.cfg.Ways; w++ {
		ln := &c.sets[set][w]
		if ln.valid && ln.tag == l {
			return true
		}
	}
	return false
}

// Fill installs a line, returning the displaced victim (Valid=false when an
// empty way absorbed the fill). readyAt is the cycle the fill data arrives;
// a src other than SrcDemand marks the line prefetch-installed for coverage
// accounting and attributes its lifecycle to that prefetcher.
func (c *Cache) Fill(a mem.Access, readyAt uint64, src Source) Victim {
	prefetch := src != SrcDemand
	set := c.SetOf(a.Line())
	lo := c.reserved[set]
	if lo >= c.cfg.Ways {
		// The whole set is reserved for metadata; cannot cache the line.
		return Victim{}
	}
	way := -1
	for w := lo; w < c.cfg.Ways; w++ {
		ln := &c.sets[set][w]
		if ln.valid && ln.tag == a.Line() {
			// Already present (e.g. a racing fill): refresh in place. A
			// refresh is not a new install, so the resident copy keeps its
			// dirty bit (else the pending writeback is lost), its
			// prefetched/src attribution (a prefetch landing on a
			// demand-owned line earns no coverage credit, and no
			// PrefetchFills/Sources fill is counted — the line was filled
			// once), and whichever fill completes first.
			if a.Kind == mem.Store || a.Kind == mem.Writeback {
				ln.dirty = true
			}
			if readyAt < ln.readyAt {
				ln.readyAt = readyAt
			}
			c.repl.Fill(set, w, replacement.Access{PC: a.PC, Line: a.Line()})
			return Victim{}
		}
		if !ln.valid && way < 0 {
			way = w
		}
	}
	var victim Victim
	if way < 0 {
		way = c.repl.Victim(set, lo, replacement.Access{PC: a.PC, Line: a.Line()})
		ln := &c.sets[set][way]
		victim = Victim{Line: ln.tag, Dirty: ln.dirty, Prefetched: ln.prefetched, Valid: true}
		c.Stats.Evictions++
		if ln.dirty {
			c.Stats.Writebacks++
		}
		if ln.prefetched {
			c.Stats.UnusedPrefetches++
			c.Stats.Sources[ln.src].EvictedUnused++
		}
		c.repl.Evict(set, way)
	}
	if prefetch {
		c.Stats.PrefetchFills++
		c.Stats.Sources[src].Fills++
	}
	if !c.sets[set][way].valid {
		c.occupied++
	}
	c.sets[set][way] = line{
		tag:        a.Line(),
		pc:         a.PC,
		valid:      true,
		dirty:      a.Kind == mem.Store || a.Kind == mem.Writeback,
		prefetched: prefetch,
		src:        src,
		readyAt:    readyAt,
	}
	c.repl.Fill(set, way, replacement.Access{PC: a.PC, Line: a.Line()})
	return victim
}

// MarkDirty sets the dirty bit of a resident line (used when a writeback
// from an upper level lands on a resident copy).
func (c *Cache) MarkDirty(l mem.Line) bool {
	set := c.SetOf(l)
	for w := c.reserved[set]; w < c.cfg.Ways; w++ {
		ln := &c.sets[set][w]
		if ln.valid && ln.tag == l {
			ln.dirty = true
			return true
		}
	}
	return false
}

// ReservedWays returns the number of ways of set s reserved for metadata.
func (c *Cache) ReservedWays(s int) int { return c.reserved[s] }

// Reserve changes the number of reserved ways in set s to ways, flushing any
// data lines occupying the newly reserved region. It returns the number of
// invalidated lines and how many of them were dirty (writeback traffic the
// repartition caused).
func (c *Cache) Reserve(s, ways int) (flushed, dirty int) {
	if ways < 0 {
		ways = 0
	}
	if ways > c.cfg.Ways {
		ways = c.cfg.Ways
	}
	old := c.reserved[s]
	c.reserved[s] = ways
	for w := old; w < ways; w++ {
		ln := &c.sets[s][w]
		if ln.valid {
			flushed++
			if ln.dirty {
				dirty++
			}
			// A flushed line that was prefetched and never demand-hit left
			// the cache unused, exactly like a replacement eviction; without
			// this the per-source lifecycle partition (fills = useful +
			// evicted-unused + still-resident) leaks one line per flush.
			if ln.prefetched {
				c.Stats.UnusedPrefetches++
				c.Stats.Sources[ln.src].EvictedUnused++
			}
			c.repl.Evict(s, w)
			*ln = line{}
		}
	}
	c.occupied -= flushed
	return flushed, dirty
}

// DataWays returns the number of ways of set s available to data.
func (c *Cache) DataWays(s int) int { return c.cfg.Ways - c.reserved[s] }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.cfg.Sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// CountMeta records metadata traffic served by this cache (the LLC).
func (c *Cache) CountMeta(kind mem.Kind) {
	switch kind {
	case mem.MetaRead:
		c.Stats.MetaReads++
	case mem.MetaWrite:
		c.Stats.MetaWrites++
	}
}

// OccupiedLines returns the number of valid data lines (diagnostics).
func (c *Cache) OccupiedLines() int {
	n := 0
	for s := range c.sets {
		for w := c.reserved[s]; w < c.cfg.Ways; w++ {
			if c.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}

// OccupancyBreakdown scans the cache and splits its capacity three ways:
// valid lines owned by demand (including prefetched lines a demand has
// since referenced), prefetched lines not yet referenced, and way slots
// reserved for metadata partitions. The scan is read-only; the telemetry
// sampler uses it for the LLC occupancy series.
func (c *Cache) OccupancyBreakdown() (demand, prefetched, reserved int) {
	for s := range c.sets {
		reserved += c.reserved[s]
		for w := c.reserved[s]; w < c.cfg.Ways; w++ {
			ln := &c.sets[s][w]
			if !ln.valid {
				continue
			}
			if ln.prefetched {
				prefetched++
			} else {
				demand++
			}
		}
	}
	return demand, prefetched, reserved
}
