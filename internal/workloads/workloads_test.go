package workloads

import (
	"math/rand"
	"testing"

	"streamline/internal/mem"
	"streamline/internal/trace"
)

func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestRegistryComplete(t *testing.T) {
	if n := len(All()); n < 15 {
		t.Fatalf("only %d workloads registered, want >= 15", n)
	}
	for _, suite := range []Suite{SPEC06, SPEC17, GAP} {
		if len(BySuite(suite)) < 4 {
			t.Errorf("suite %s has %d workloads, want >= 4", suite, len(BySuite(suite)))
		}
	}
	if len(IrregularSubset()) < 6 {
		t.Errorf("irregular subset has %d workloads, want >= 6", len(IrregularSubset()))
	}
}

func TestGetKnownAndUnknown(t *testing.T) {
	if _, err := Get("pr"); err != nil {
		t.Errorf("Get(pr) failed: %v", err)
	}
	if _, err := Get("no-such-workload"); err == nil {
		t.Error("Get of unknown workload did not fail")
	}
}

func TestAllSortedAndUnique(t *testing.T) {
	names := Names(All())
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("All() not sorted/unique at %q >= %q", names[i-1], names[i])
		}
	}
}

// drain pulls n records from a fresh trace of w.
func drain(t *testing.T, w Workload, n int, seed int64) []trace.Record {
	t.Helper()
	tr := w.NewTrace(Scale{Footprint: 0.05}, seed)
	recs := make([]trace.Record, 0, n)
	for len(recs) < n {
		r, ok := tr.Next()
		if !ok {
			t.Fatalf("%s: trace ended after %d records", w.Name, len(recs))
		}
		recs = append(recs, r)
	}
	return recs
}

func TestEveryWorkloadGenerates(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			recs := drain(t, w, 5000, 42)
			pcs := map[mem.PC]bool{}
			lines := map[mem.Line]bool{}
			for _, r := range recs {
				if r.PC == 0 {
					t.Fatal("record with zero PC")
				}
				if r.Addr < 1<<32 {
					t.Fatalf("record address %#x below arena base", r.Addr)
				}
				pcs[r.PC] = true
				lines[mem.LineOf(r.Addr)] = true
			}
			if len(lines) < 16 {
				t.Errorf("only %d distinct lines in 5000 records", len(lines))
			}
		})
	}
}

func TestDeterminismAcrossInstances(t *testing.T) {
	for _, w := range All() {
		a := drain(t, w, 2000, 7)
		b := drain(t, w, 2000, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: record %d differs between identically seeded traces", w.Name, i)
			}
		}
	}
}

func TestResetReplaysIdentically(t *testing.T) {
	w, err := Get("mcf06")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.NewTrace(Scale{Footprint: 0.05}, 9)
	first := make([]trace.Record, 1000)
	for i := range first {
		r, ok := tr.Next()
		if !ok {
			t.Fatal("trace ended early")
		}
		first[i] = r
	}
	tr.Reset()
	for i := range first {
		r, ok := tr.Next()
		if !ok {
			t.Fatal("trace ended early after Reset")
		}
		if r != first[i] {
			t.Fatalf("record %d differs after Reset", i)
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	w, _ := Get("pr")
	a := drain(t, w, 1000, 1)
	b := drain(t, w, 1000, 2)
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestChaseWorkloadsRepeatSequences(t *testing.T) {
	// A stable pointer chase must revisit the same line sequence across
	// laps: the fraction of (line -> next line) correlations from lap 1
	// that recur in lap 2 should be high. This is the property temporal
	// prefetchers rely on.
	w, _ := Get("sphinx06")
	src := w.Build(Scale{Footprint: 0.02})
	src.Reset(newTestRNG(3))
	lap := func() map[[2]mem.Line]bool {
		var prev mem.Line
		havePrev := false
		pairs := map[[2]mem.Line]bool{}
		src.Lap(func(r trace.Record) {
			l := mem.LineOf(r.Addr)
			if havePrev {
				pairs[[2]mem.Line{prev, l}] = true
			}
			prev, havePrev = l, true
		})
		return pairs
	}
	p1, p2 := lap(), lap()
	common := 0
	for k := range p1 {
		if p2[k] {
			common++
		}
	}
	if frac := float64(common) / float64(len(p1)); frac < 0.95 {
		t.Errorf("only %.1f%% of correlations repeat across laps, want >= 95%%", frac*100)
	}
}

func TestStreamingWorkloadIsSequential(t *testing.T) {
	w, _ := Get("libquantum06")
	recs := drain(t, w, 4000, 11)
	seq := 0
	for i := 1; i < len(recs); i++ {
		d := int64(mem.LineOf(recs[i].Addr)) - int64(mem.LineOf(recs[i-1].Addr))
		if d == 0 || d == 1 {
			seq++
		}
	}
	if frac := float64(seq) / float64(len(recs)-1); frac < 0.9 {
		t.Errorf("streaming workload only %.1f%% sequential", frac*100)
	}
}

func TestMixesDeterministicAndSized(t *testing.T) {
	a := Mixes(10, 4, 99)
	b := Mixes(10, 4, 99)
	if len(a) != 10 {
		t.Fatalf("got %d mixes, want 10", len(a))
	}
	for i := range a {
		if len(a[i].Members) != 4 {
			t.Fatalf("mix %d has %d members, want 4", i, len(a[i].Members))
		}
		for c := range a[i].Members {
			if a[i].Members[c].Name != b[i].Members[c].Name {
				t.Fatal("mixes are not deterministic")
			}
		}
	}
	c := Mixes(10, 4, 100)
	diff := false
	for i := range a {
		for j := range a[i].Members {
			if a[i].Members[j].Name != c[i].Members[j].Name {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical mixes")
	}
}

func TestScaleSize(t *testing.T) {
	s := Scale{Footprint: 0.5}
	if got := s.size(1000); got != 500 {
		t.Errorf("size(1000) at 0.5 = %d, want 500", got)
	}
	if got := (Scale{}).size(1000); got != 1000 {
		t.Errorf("zero-value scale changed size: %d", got)
	}
	if got := (Scale{Footprint: 0.0001}).size(1000); got != 64 {
		t.Errorf("scale floor: got %d, want 64", got)
	}
}
