package exp

import (
	"fmt"

	"streamline/internal/core"
	"streamline/internal/prefetch/triangel"
	"streamline/internal/workloads"
)

// This file regenerates the performance figures: Figure 9 (single-core),
// Figure 10 (multi-core, bandwidth, coverage/accuracy, degree) and
// Figure 11 (upper-level and L2 regular prefetchers).

// the three standard arms over an L1 stride baseline
func standardArms() (base, tri, str Arm) {
	return baseArm("stride", ""),
		triangelArm("triangel", "stride", "", nil),
		streamlineArm("streamline", "stride", "", nil)
}

// suiteSpeedups runs the three arms across a workload list and returns a
// table of per-workload and per-suite speedups.
func suiteSpeedups(r *Runner, id, title string, ws []workloads.Workload, base, tri, str Arm) Table {
	t := Table{ID: id, Title: title,
		Columns: []string{"workload", "suite", "triangel", "streamline", "delta(pp)"}}
	type group struct{ tri, str []float64 }
	groups := map[workloads.Suite]*group{}
	var allT, allS, irrT, irrS []float64
	for _, w := range ws {
		b, okB := r.TryRun(base, w.Name)
		resT, okT := r.TryRun(tri, w.Name)
		resS, okS := r.TryRun(str, w.Name)
		if !okB || !okT || !okS {
			// A failed arm leaves an explicit gap; the workload is excluded
			// from every aggregate below so the means stay meaningful.
			t.AddRow(w.Name, string(w.Suite), GapCell, GapCell, GapCell)
			continue
		}
		rt := Speedup(b, resT)
		rs := Speedup(b, resS)
		t.AddRow(w.Name, string(w.Suite), F(rt), F(rs), fmt.Sprintf("%+.1f", (rs-rt)*100))
		g := groups[w.Suite]
		if g == nil {
			g = &group{}
			groups[w.Suite] = g
		}
		g.tri = append(g.tri, rt)
		g.str = append(g.str, rs)
		allT, allS = append(allT, rt), append(allS, rs)
		if w.Irregular {
			irrT, irrS = append(irrT, rt), append(irrS, rs)
		}
	}
	for _, suite := range []workloads.Suite{workloads.SPEC06, workloads.SPEC17, workloads.GAP} {
		if g, ok := groups[suite]; ok {
			t.AddRow("geomean-"+string(suite), "", F(Geomean(g.tri)), F(Geomean(g.str)),
				fmt.Sprintf("%+.1f", (Geomean(g.str)-Geomean(g.tri))*100))
		}
	}
	t.AddRow("geomean-irregular", "", F(Geomean(irrT)), F(Geomean(irrS)),
		fmt.Sprintf("%+.1f", (Geomean(irrS)-Geomean(irrT))*100))
	t.AddRow("geomean-all", "", F(Geomean(allT)), F(Geomean(allS)),
		fmt.Sprintf("%+.1f", (Geomean(allS)-Geomean(allT))*100))
	t.Notes = append(t.Notes,
		"speedup over the baseline with an L1D stride prefetcher; paper Fig 9 reports Streamline 8.1% vs Triangel 5.1% (mem-intensive), 17% vs 11.5% (irregular)")
	return t
}

func init() {
	register(Experiment{ID: "fig9", Title: "Single-core speedup: Streamline vs Triangel",
		Run: func(r *Runner) []Table {
			base, tri, str := standardArms()
			ws := r.Scale.workloadList()
			r.Precompute(Singles([]Arm{base, tri, str}, ws))
			return []Table{suiteSpeedups(r, "fig9", "single-core speedups (L1 stride baseline)",
				ws, base, tri, str)}
		}})

	register(Experiment{ID: "fig10a", Title: "Multi-core speedup across core counts",
		Run: func(r *Runner) []Table {
			base, tri, str := standardArms()
			t := Table{ID: "fig10a", Title: "multi-core throughput speedup",
				Columns: []string{"cores", "triangel", "streamline", "delta(pp)"}}
			mixesFor := func(cores int) []workloads.Mix {
				mixCount := r.Scale.MixCount
				if cores == 8 {
					mixCount = max(2, mixCount/2)
				}
				return workloads.Mixes(mixCount, cores, r.Scale.Seed)
			}
			var sims [][]Sim
			for _, cores := range []int{2, 4, 8} {
				sims = append(sims, MixSims([]Arm{base, tri, str}, mixesFor(cores), cores, 0))
			}
			r.Precompute(sims...)
			for _, cores := range []int{2, 4, 8} {
				mixes := mixesFor(cores)
				var ts, ss []float64
				for _, m := range mixes {
					names := workloads.Names(m.Members)
					b, okB := r.TryRunMix(base, names, cores, 0)
					resT, okT := r.TryRunMix(tri, names, cores, 0)
					resS, okS := r.TryRunMix(str, names, cores, 0)
					if !okB || !okT || !okS {
						continue // gapped mix: excluded from the geomean
					}
					ts = append(ts, ThroughputSpeedup(b, resT))
					ss = append(ss, ThroughputSpeedup(b, resS))
				}
				if len(ts) == 0 {
					t.AddRow(fmt.Sprint(cores), GapCell, GapCell, GapCell)
					continue
				}
				gt, gs := Geomean(ts), Geomean(ss)
				t.AddRow(fmt.Sprint(cores), F(gt), F(gs), fmt.Sprintf("%+.1f", (gs-gt)*100))
			}
			t.Notes = append(t.Notes, "paper: Streamline wins by 7.2/6.9/6.7 pp at 2/4/8 cores")
			return []Table{t}
		}})

	register(Experiment{ID: "fig10b", Title: "Per-mix win rate (4-core)",
		Run: func(r *Runner) []Table {
			base, tri, str := standardArms()
			mixes := workloads.Mixes(r.Scale.MixCount, 4, r.Scale.Seed)
			r.Precompute(MixSims([]Arm{base, tri, str}, mixes, 4, 0))
			t := Table{ID: "fig10b", Title: "4-core mixes: Streamline vs Triangel",
				Columns: []string{"mix", "triangel", "streamline", "winner"}}
			wins, scored := 0, 0
			for _, m := range mixes {
				names := workloads.Names(m.Members)
				b, okB := r.TryRunMix(base, names, 4, 0)
				resT, okT := r.TryRunMix(tri, names, 4, 0)
				resS, okS := r.TryRunMix(str, names, 4, 0)
				if !okB || !okT || !okS {
					t.AddRow(fmt.Sprintf("mix%02d", m.ID), GapCell, GapCell, GapCell)
					continue
				}
				st := ThroughputSpeedup(b, resT)
				ss := ThroughputSpeedup(b, resS)
				winner := "triangel"
				if ss >= st {
					winner = "streamline"
					wins++
				}
				scored++
				t.AddRow(fmt.Sprintf("mix%02d", m.ID), F(st), F(ss), winner)
			}
			if scored == 0 {
				t.AddRow("win-rate", "", "", GapCell)
			} else {
				t.AddRow("win-rate", "", "", Pct(float64(wins)/float64(scored)))
			}
			t.Notes = append(t.Notes, "paper: Streamline wins 77% of 4-core mixes")
			return []Table{t}
		}})

	register(Experiment{ID: "fig10c", Title: "DRAM bandwidth sensitivity",
		Run: func(r *Runner) []Table {
			base, tri, str := standardArms()
			mixes := workloads.Mixes(max(2, r.Scale.MixCount/2), 4, r.Scale.Seed)
			bws := []float64{0.25, 0.5, 1.0, 2.0}
			var sims [][]Sim
			for _, bw := range bws {
				sims = append(sims, MixSims([]Arm{base, tri, str}, mixes, 4, bw))
			}
			r.Precompute(sims...)
			t := Table{ID: "fig10c", Title: "speedup vs DRAM bandwidth (4-core)",
				Columns: []string{"bandwidth", "triangel", "streamline", "delta(pp)"}}
			for _, bw := range bws {
				var ts, ss []float64
				for _, m := range mixes {
					names := workloads.Names(m.Members)
					b, okB := r.TryRunMix(base, names, 4, bw)
					resT, okT := r.TryRunMix(tri, names, 4, bw)
					resS, okS := r.TryRunMix(str, names, 4, bw)
					if !okB || !okT || !okS {
						continue // gapped mix: excluded from the geomean
					}
					ts = append(ts, ThroughputSpeedup(b, resT))
					ss = append(ss, ThroughputSpeedup(b, resS))
				}
				if len(ts) == 0 {
					t.AddRow(fmt.Sprintf("%.2fx", bw), GapCell, GapCell, GapCell)
					continue
				}
				gt, gs := Geomean(ts), Geomean(ss)
				t.AddRow(fmt.Sprintf("%.2fx", bw), F(gt), F(gs),
					fmt.Sprintf("%+.1f", (gs-gt)*100))
			}
			t.Notes = append(t.Notes,
				"paper: 1.1-2.7 pp margins at low bandwidth, 3-3.3 pp at moderate")
			return []Table{t}
		}})

	register(Experiment{ID: "fig10de", Title: "Prefetch coverage and accuracy",
		Run: func(r *Runner) []Table {
			base, tri, str := standardArms()
			r.Precompute(Singles([]Arm{base, tri, str}, r.Scale.workloadList()))
			t := Table{ID: "fig10de", Title: "L2 coverage / accuracy per workload",
				Columns: []string{"workload", "tri-cov", "str-cov", "tri-acc", "str-acc"}}
			var tc, sc, ta, sa []float64
			for _, w := range r.Scale.workloadList() {
				b, okB := r.TryRun(base, w.Name)
				rt, okT := r.TryRun(tri, w.Name)
				rs, okS := r.TryRun(str, w.Name)
				if !okB || !okT || !okS {
					t.AddRow(w.Name, GapCell, GapCell, GapCell, GapCell)
					continue
				}
				ct, cs := Coverage(b, rt), Coverage(b, rs)
				at, as := Accuracy(rt), Accuracy(rs)
				t.AddRow(w.Name, Pct(ct), Pct(cs), Pct(at), Pct(as))
				tc, sc = append(tc, ct), append(sc, cs)
				if rt.Cores[0].L2.PrefetchFills > 0 {
					ta = append(ta, at)
				}
				if rs.Cores[0].L2.PrefetchFills > 0 {
					sa = append(sa, as)
				}
			}
			t.AddRow("mean", Pct(Mean(tc)), Pct(Mean(sc)), Pct(Mean(ta)), Pct(Mean(sa)))
			t.Notes = append(t.Notes, "paper: Streamline +12.5 pp coverage, +3.6 pp accuracy")
			return []Table{t}
		}})

	register(Experiment{ID: "fig10f", Title: "Prefetch degree sweep",
		Run: func(r *Runner) []Table {
			t := Table{ID: "fig10f", Title: "speedup vs max degree (irregular subset)",
				Columns: []string{"degree", "triangel", "streamline"}}
			ws := r.Scale.irregular()
			base := baseArm("stride", "")
			degs := []int{1, 2, 4, 8}
			degArms := map[int][2]Arm{}
			all := []Arm{base}
			for _, deg := range degs {
				deg := deg
				tri := triangelArm(fmt.Sprintf("triangel-d%d", deg), "stride", "",
					func(c *triangel.Config) { c.MaxDegree = deg })
				str := streamlineArm(fmt.Sprintf("streamline-d%d", deg), "stride", "",
					func(o *core.Options) {
						o.MaxDegree = deg
						o.DisableDegreeControl = true
					})
				degArms[deg] = [2]Arm{tri, str}
				all = append(all, tri, str)
			}
			r.Precompute(Singles(all, ws))
			for _, deg := range degs {
				tri, str := degArms[deg][0], degArms[deg][1]
				var ts, ss []float64
				for _, w := range ws {
					b, okB := r.TryRun(base, w.Name)
					resT, okT := r.TryRun(tri, w.Name)
					resS, okS := r.TryRun(str, w.Name)
					if !okB || !okT || !okS {
						continue // gapped workload: excluded from the geomean
					}
					ts = append(ts, Speedup(b, resT))
					ss = append(ss, Speedup(b, resS))
				}
				if len(ts) == 0 {
					t.AddRow(fmt.Sprint(deg), GapCell, GapCell)
					continue
				}
				t.AddRow(fmt.Sprint(deg), F(Geomean(ts)), F(Geomean(ss)))
			}
			t.Notes = append(t.Notes,
				"paper: Triangel insensitive to degree; Streamline peaks at its stream length (4)")
			return []Table{t}
		}})

	register(Experiment{ID: "fig11ab", Title: "With Berti in the L1D",
		Run: func(r *Runner) []Table {
			base := baseArm("berti", "")
			tri := triangelArm("triangel+berti", "berti", "", nil)
			str := streamlineArm("streamline+berti", "berti", "", nil)
			arms := []Arm{base, tri, str}
			sims := [][]Sim{Singles(arms, r.Scale.workloadList())}
			for _, cores := range []int{2, 4} {
				mixes := workloads.Mixes(max(2, r.Scale.MixCount/2), cores, r.Scale.Seed)
				sims = append(sims, MixSims(arms, mixes, cores, 0))
			}
			r.Precompute(sims...)
			single := suiteSpeedups(r, "fig11a", "single-core speedups (Berti L1D baseline)",
				r.Scale.workloadList(), base, tri, str)
			single.Notes = append(single.Notes,
				"paper: Streamline 22% vs Triangel 20.1% vs Berti-only 19.1%")

			multi := Table{ID: "fig11b", Title: "multi-core with Berti",
				Columns: []string{"cores", "triangel", "streamline", "delta(pp)"}}
			for _, cores := range []int{2, 4} {
				mixes := workloads.Mixes(max(2, r.Scale.MixCount/2), cores, r.Scale.Seed)
				var ts, ss []float64
				for _, m := range mixes {
					names := workloads.Names(m.Members)
					b, okB := r.TryRunMix(base, names, cores, 0)
					resT, okT := r.TryRunMix(tri, names, cores, 0)
					resS, okS := r.TryRunMix(str, names, cores, 0)
					if !okB || !okT || !okS {
						continue // gapped mix: excluded from the geomean
					}
					ts = append(ts, ThroughputSpeedup(b, resT))
					ss = append(ss, ThroughputSpeedup(b, resS))
				}
				if len(ts) == 0 {
					multi.AddRow(fmt.Sprint(cores), GapCell, GapCell, GapCell)
					continue
				}
				gt, gs := Geomean(ts), Geomean(ss)
				multi.AddRow(fmt.Sprint(cores), F(gt), F(gs), fmt.Sprintf("%+.1f", (gs-gt)*100))
			}
			multi.Notes = append(multi.Notes,
				"paper: with Berti, Triangel adds ~0 in multi-core; Streamline adds 3.8-4.1 pp")
			return []Table{single, multi}
		}})

	register(Experiment{ID: "fig11cd", Title: "With L2 regular prefetchers",
		Run: func(r *Runner) []Table {
			t := Table{ID: "fig11c", Title: "speedup with L2 regular prefetchers (irregular subset)",
				Columns: []string{"l2pf", "base", "triangel", "streamline"}}
			cov := Table{ID: "fig11d", Title: "added coverage over the L2 prefetcher",
				Columns: []string{"l2pf", "triangel", "streamline"}}
			ws := r.Scale.irregular()
			plain := baseArm("stride", "")
			l2s := []string{"ipcp", "bingo", "spp"}
			l2Arms := map[string][3]Arm{}
			all := []Arm{plain}
			for _, l2 := range l2s {
				base := baseArm("stride", l2)
				tri := triangelArm("triangel+"+l2, "stride", l2, nil)
				str := streamlineArm("streamline+"+l2, "stride", l2, nil)
				l2Arms[l2] = [3]Arm{base, tri, str}
				all = append(all, base, tri, str)
			}
			r.Precompute(Singles(all, ws))
			for _, l2 := range l2s {
				base, tri, str := l2Arms[l2][0], l2Arms[l2][1], l2Arms[l2][2]
				var bs, ts, ss, tcov, scov []float64
				for _, w := range ws {
					p, okP := r.TryRun(plain, w.Name)
					b, okB := r.TryRun(base, w.Name)
					rt, okT := r.TryRun(tri, w.Name)
					rs, okS := r.TryRun(str, w.Name)
					if !okP || !okB || !okT || !okS {
						continue // gapped workload: excluded from both aggregates
					}
					bs = append(bs, Speedup(p, b))
					ts = append(ts, Speedup(p, rt))
					ss = append(ss, Speedup(p, rs))
					tcov = append(tcov, Coverage(b, rt))
					scov = append(scov, Coverage(b, rs))
				}
				if len(bs) == 0 {
					t.AddRow(l2, GapCell, GapCell, GapCell)
					cov.AddRow(l2, GapCell, GapCell)
					continue
				}
				t.AddRow(l2, F(Geomean(bs)), F(Geomean(ts)), F(Geomean(ss)))
				cov.AddRow(l2, Pct(Mean(tcov)), Pct(Mean(scov)))
			}
			t.Notes = append(t.Notes,
				"paper: Streamline beats Triangel by 1.1/2.4/1.0 pp over IPCP/Bingo/SPP-PPF")
			cov.Notes = append(cov.Notes,
				"paper: Streamline provides twice Triangel's additional coverage")
			return []Table{t, cov}
		}})
}
