// Package replacement implements the cache replacement policies used across
// the simulator: LRU and RRIP variants for the data caches, SHiP, Hawkeye
// and Mockingjay for the LLC studies, and the Belady MIN / TP-MIN offline
// oracles the paper uses to reason about temporal-prefetch metadata
// (Section IV-D1, Figure 6, Figure 13c).
package replacement

import (
	"math/rand"

	"streamline/internal/mem"
)

// Access carries the request context policies may condition on.
type Access struct {
	PC   mem.PC
	Line mem.Line
}

// Policy decides victims within a set-associative structure. The caller owns
// validity; Victim is only consulted when every way in the set is valid.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Hit is invoked when an access hits in (set, way).
	Hit(set, way int, a Access)
	// Fill is invoked when a new line is installed in (set, way).
	Fill(set, way int, a Access)
	// Victim selects the way to evict among ways [lo, ways) of a full
	// set; lo carves out ways reserved for another use (the LLC's
	// metadata partition reserves the low-indexed ways of a set).
	Victim(set, lo int, a Access) int
	// Evict is invoked when (set, way) is invalidated or replaced.
	Evict(set, way int)
}

// Factory constructs a policy for a structure with the given geometry.
type Factory func(sets, ways int) Policy

// Factories maps policy names to constructors, for configuration by name.
var Factories = map[string]Factory{
	"lru":        NewLRU,
	"random":     NewRandom,
	"srrip":      NewSRRIP,
	"brrip":      NewBRRIP,
	"drrip":      NewDRRIP,
	"ship":       NewSHiP,
	"hawkeye":    NewHawkeye,
	"mockingjay": NewMockingjay,
}

// ---------------------------------------------------------------- LRU

type lru struct {
	stamp [][]uint64
	clock uint64
}

// NewLRU returns a least-recently-used policy.
func NewLRU(sets, ways int) Policy {
	p := &lru{stamp: make([][]uint64, sets)}
	for i := range p.stamp {
		p.stamp[i] = make([]uint64, ways)
	}
	return p
}

func (p *lru) Name() string { return "lru" }

func (p *lru) touch(set, way int) {
	p.clock++
	p.stamp[set][way] = p.clock
}

func (p *lru) Hit(set, way int, _ Access)  { p.touch(set, way) }
func (p *lru) Fill(set, way int, _ Access) { p.touch(set, way) }
func (p *lru) Evict(set, way int)          { p.stamp[set][way] = 0 }

func (p *lru) Victim(set, lo int, _ Access) int {
	best, bestStamp := lo, p.stamp[set][lo]
	for w := lo; w < len(p.stamp[set]); w++ {
		if p.stamp[set][w] < bestStamp {
			best, bestStamp = w, p.stamp[set][w]
		}
	}
	return best
}

// ---------------------------------------------------------------- Random

type random struct {
	ways int
	rng  *rand.Rand
}

// NewRandom returns a uniformly random replacement policy (deterministic
// per construction, for reproducibility).
func NewRandom(sets, ways int) Policy {
	return &random{ways: ways, rng: rand.New(rand.NewSource(int64(sets)<<16 | int64(ways)))}
}

func (p *random) Name() string                   { return "random" }
func (p *random) Hit(int, int, Access)           {}
func (p *random) Fill(int, int, Access)          {}
func (p *random) Evict(int, int)                 {}
func (p *random) Victim(_, lo int, _ Access) int { return lo + p.rng.Intn(p.ways-lo) }

// ---------------------------------------------------------------- SRRIP

const (
	rrpvBits    = 2
	rrpvMax     = 1<<rrpvBits - 1 // 3: eviction candidate
	rrpvLong    = rrpvMax - 1     // 2: SRRIP insertion
	rrpvDistant = rrpvMax         // 3: BRRIP common insertion
)

type srrip struct {
	name string
	rrpv [][]uint8
	// insertRRPV returns the insertion prediction for this fill; SRRIP and
	// BRRIP differ only here, and DRRIP switches between them.
	insertRRPV func(set int) uint8
}

// NewSRRIP returns Static RRIP with 2-bit re-reference predictions, the
// policy Triangel uses for its metadata (Jaleel et al., ISCA 2010).
func NewSRRIP(sets, ways int) Policy {
	p := newRRIPBase("srrip", sets, ways)
	p.insertRRPV = func(int) uint8 { return rrpvLong }
	return p
}

// NewBRRIP returns Bimodal RRIP: inserts at distant re-reference except for
// a 1/32 chance of a long insertion.
func NewBRRIP(sets, ways int) Policy {
	p := newRRIPBase("brrip", sets, ways)
	rng := rand.New(rand.NewSource(int64(sets)*31 + int64(ways)))
	p.insertRRPV = func(int) uint8 {
		if rng.Intn(32) == 0 {
			return rrpvLong
		}
		return rrpvDistant
	}
	return p
}

func newRRIPBase(name string, sets, ways int) *srrip {
	p := &srrip{name: name, rrpv: make([][]uint8, sets)}
	for i := range p.rrpv {
		p.rrpv[i] = make([]uint8, ways)
		for w := range p.rrpv[i] {
			p.rrpv[i][w] = rrpvMax
		}
	}
	return p
}

func (p *srrip) Name() string { return p.name }

func (p *srrip) Hit(set, way int, _ Access) { p.rrpv[set][way] = 0 }

func (p *srrip) Fill(set, way int, _ Access) { p.rrpv[set][way] = p.insertRRPV(set) }

func (p *srrip) Evict(set, way int) { p.rrpv[set][way] = rrpvMax }

func (p *srrip) Victim(set, lo int, _ Access) int {
	row := p.rrpv[set]
	for {
		for w := lo; w < len(row); w++ {
			if row[w] >= rrpvMax {
				return w
			}
		}
		for w := lo; w < len(row); w++ {
			row[w]++
		}
	}
}

// ---------------------------------------------------------------- DRRIP

type drrip struct {
	s, b       *srrip
	psel       int
	pselMax    int
	leaderMask int
}

// NewDRRIP returns Dynamic RRIP: set dueling between SRRIP and BRRIP leader
// sets, with follower sets using the currently winning policy.
func NewDRRIP(sets, ways int) Policy {
	return &drrip{
		s:          NewSRRIP(sets, ways).(*srrip),
		b:          NewBRRIP(sets, ways).(*srrip),
		pselMax:    1023,
		psel:       512,
		leaderMask: 63,
	}
}

func (p *drrip) Name() string { return "drrip" }

// leader returns +1 for SRRIP leader sets, -1 for BRRIP leaders, 0 otherwise.
func (p *drrip) leader(set int) int {
	switch set & p.leaderMask {
	case 0:
		return 1
	case 1:
		return -1
	}
	return 0
}

func (p *drrip) useBRRIP(set int) bool {
	switch p.leader(set) {
	case 1:
		return false
	case -1:
		return true
	}
	return p.psel < p.pselMax/2
}

func (p *drrip) Hit(set, way int, a Access) {
	p.s.Hit(set, way, a)
	p.b.Hit(set, way, a)
}

func (p *drrip) Fill(set, way int, a Access) {
	// A fill implies the leader's policy missed; misses in a leader set
	// vote against that leader.
	switch p.leader(set) {
	case 1:
		if p.psel > 0 {
			p.psel--
		}
	case -1:
		if p.psel < p.pselMax {
			p.psel++
		}
	}
	if p.useBRRIP(set) {
		p.b.Fill(set, way, a)
		p.s.rrpv[set][way] = p.b.rrpv[set][way]
	} else {
		p.s.Fill(set, way, a)
		p.b.rrpv[set][way] = p.s.rrpv[set][way]
	}
}

func (p *drrip) Evict(set, way int) {
	p.s.Evict(set, way)
	p.b.Evict(set, way)
}

func (p *drrip) Victim(set, lo int, a Access) int {
	if p.useBRRIP(set) {
		v := p.b.Victim(set, lo, a)
		copy(p.s.rrpv[set], p.b.rrpv[set])
		return v
	}
	v := p.s.Victim(set, lo, a)
	copy(p.b.rrpv[set], p.s.rrpv[set])
	return v
}

// ---------------------------------------------------------------- SHiP

// ship implements SHiP-PC: a signature history counter table predicts, per
// load PC, whether filled lines will be reused, steering RRIP insertion.
type ship struct {
	*srrip
	shct    []uint8 // 2-bit saturating counters per PC signature
	sig     [][]uint16
	reused  [][]bool
	sigBits uint
}

// NewSHiP returns the SHiP-PC insertion policy over an SRRIP backbone.
func NewSHiP(sets, ways int) Policy {
	p := &ship{
		srrip:   newRRIPBase("ship", sets, ways),
		sigBits: 12,
		sig:     make([][]uint16, sets),
		reused:  make([][]bool, sets),
	}
	p.shct = make([]uint8, 1<<p.sigBits)
	for i := range p.shct {
		p.shct[i] = 1
	}
	for i := range p.sig {
		p.sig[i] = make([]uint16, ways)
		p.reused[i] = make([]bool, ways)
	}
	p.insertRRPV = func(int) uint8 { return rrpvDistant }
	return p
}

func (p *ship) Name() string { return "ship" }

func (p *ship) signature(a Access) uint16 {
	return uint16(mem.HashPC(a.PC, p.sigBits))
}

func (p *ship) Hit(set, way int, a Access) {
	p.srrip.Hit(set, way, a)
	if !p.reused[set][way] {
		p.reused[set][way] = true
		s := p.sig[set][way]
		if p.shct[s] < 3 {
			p.shct[s]++
		}
	}
}

func (p *ship) Fill(set, way int, a Access) {
	s := p.signature(a)
	p.sig[set][way] = s
	p.reused[set][way] = false
	if p.shct[s] == 0 {
		p.rrpv[set][way] = rrpvDistant
	} else {
		p.rrpv[set][way] = rrpvLong
	}
}

func (p *ship) Evict(set, way int) {
	if !p.reused[set][way] {
		s := p.sig[set][way]
		if p.shct[s] > 0 {
			p.shct[s]--
		}
	}
	p.srrip.Evict(set, way)
}
