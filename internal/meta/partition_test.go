package meta

import (
	"math/rand"
	"testing"

	"streamline/internal/mem"
)

func partCfg(mode PartitionMode, weight func(float64) float64) PartitionerConfig {
	return PartitionerConfig{
		Mode:            mode,
		Sizes:           []int{0, 64 << 10, 128 << 10},
		MaxBytes:        128 << 10,
		LLCWays:         16,
		MetaWaysPerSet:  8,
		EntriesPerBlock: 4,
		EpochAccesses:   4096,
		DataWeight:      16,
		MetaWeight:      weight,
		SampleShift:     2,
	}
}

func TestPartitionerShrinksUnderPureDataUtility(t *testing.T) {
	p := NewPartitioner(partCfg(SetMode, StreamlineMetaWeight))
	rng := rand.New(rand.NewSource(1))
	// Data with short stack distances (fits in few ways), no trigger reuse.
	for i := 0; i < 50000; i++ {
		set := (rng.Intn(64)) * 4 // sampled sets
		p.ObserveData(set, mem.Line(set*16+rng.Intn(12)))
		if size, changed := p.Tick(); changed && size == 0 {
			return // success: shrank to zero
		}
	}
	if p.Current() != 0 {
		t.Errorf("partition = %d under pure data utility, want 0", p.Current())
	}
}

func TestPartitionerGrowsUnderTriggerUtility(t *testing.T) {
	p := NewPartitioner(partCfg(SetMode, StreamlineMetaWeight))
	p.ObserveAccuracy(0.95) // metadata hits score 8
	rng := rand.New(rand.NewSource(2))
	// Reused triggers (small per-set population, re-touched) and data with
	// huge stack distances (caching it is hopeless).
	for i := 0; i < 50000; i++ {
		set := rng.Intn(64) * 4
		p.ObserveTrigger(set, mem.Line(set*100+rng.Intn(16)))
		p.ObserveData(set, mem.Line(1_000_000+i)) // never reused
		p.Tick()
	}
	if p.Current() != 128<<10 {
		t.Errorf("partition = %d under pure trigger utility, want max", p.Current())
	}
}

func TestAccuracyScalingChangesDecision(t *testing.T) {
	// With the Streamline weighting, low accuracy devalues metadata; the
	// equal weighting (Triangel) keeps it. Construct a marginal case:
	// trigger hits and data hits both present.
	run := func(weight func(float64) float64, acc float64) int {
		p := NewPartitioner(partCfg(SetMode, weight))
		p.ObserveAccuracy(acc)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 60000; i++ {
			set := rng.Intn(64) * 4
			p.ObserveTrigger(set, mem.Line(set*100+rng.Intn(24)))
			// Data reused at stack distance ~10: kept only with 16 ways.
			p.ObserveData(set, mem.Line(set*16+rng.Intn(10)))
			p.Tick()
		}
		return p.Current()
	}
	lowAcc := run(StreamlineMetaWeight, 0.05)
	highAcc := run(StreamlineMetaWeight, 0.97)
	if lowAcc >= highAcc && highAcc != lowAcc {
		t.Errorf("low accuracy chose %d, high accuracy %d", lowAcc, highAcc)
	}
	if highAcc == 0 {
		t.Error("high accuracy should retain a metadata partition")
	}
	if lowAcc != 0 {
		t.Errorf("low accuracy partition = %d, want 0 (data wins)", lowAcc)
	}
}

func TestStreamlineMetaWeightBands(t *testing.T) {
	// The Section IV-E4 increment table.
	cases := []struct {
		acc  float64
		want float64
	}{
		{0.05, 1}, {0.2, 2}, {0.4, 3}, {0.6, 4}, {0.8, 6}, {0.92, 7}, {0.99, 8},
	}
	for _, c := range cases {
		if got := StreamlineMetaWeight(c.acc); got != c.want {
			t.Errorf("weight(%.2f) = %v, want %v", c.acc, got, c.want)
		}
	}
	if EqualMetaWeight(0.1) != 16 || EqualMetaWeight(0.9) != 16 {
		t.Error("EqualMetaWeight should be constant 16")
	}
}

func TestLRUStackDistances(t *testing.T) {
	s := newLRUStack(4)
	if pos := s.touch(1); pos != -1 {
		t.Errorf("cold touch pos = %d, want -1", pos)
	}
	s.touch(2)
	s.touch(3)
	// 1 is now at depth 2.
	if pos := s.touch(1); pos != 2 {
		t.Errorf("reuse pos = %d, want 2", pos)
	}
	// Overflow evicts the LRU entry.
	s.touch(4)
	s.touch(5)
	if pos := s.touch(2); pos != -1 {
		t.Errorf("evicted entry pos = %d, want -1 (miss)", pos)
	}
}

func TestTickHonorsEpoch(t *testing.T) {
	p := NewPartitioner(partCfg(SetMode, EqualMetaWeight))
	for i := 0; i < 100; i++ {
		if _, changed := p.Tick(); changed {
			t.Fatal("Tick decided before any observations")
		}
	}
}

func TestWayModeCapacityScaling(t *testing.T) {
	// In way mode, smaller sizes shrink per-set capacity; trigger hits at
	// small sizes must be no greater than at large sizes.
	p := NewPartitioner(partCfg(WayMode, EqualMetaWeight))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		set := rng.Intn(64) * 4
		p.ObserveTrigger(set, mem.Line(set*100+rng.Intn(40)))
	}
	small := p.trigHits(64 << 10)
	big := p.trigHits(128 << 10)
	if small > big {
		t.Errorf("way-mode trigger hits at half size (%v) > at full (%v)", small, big)
	}
	if p.trigHits(0) != 0 {
		t.Error("zero partition should have zero trigger hits")
	}
}
