package meta

// EntryPolicy decides replacement among the entry slots of one metadata set.
// Unlike cache-line replacement, victims are chosen among an arbitrary
// candidate subset: partial-tag aliasing (tagged stores) and the two-level
// index function (untagged stores) both constrain which slots an incoming
// entry may occupy.
//
// Streamline's TP-Mockingjay implements this interface in internal/core; the
// policies here are the baselines: entry-granularity LRU and the SRRIP that
// Triangel uses for its metadata.
type EntryPolicy interface {
	// Name identifies the policy.
	Name() string
	// Touch records a lookup hit on a slot.
	Touch(set, slot int, a EntryAccess)
	// Fill records installation of a new entry in a slot.
	Fill(set, slot int, a EntryAccess)
	// Victim picks the slot to evict among the candidate slots [lo, hi)
	// (all valid), given the incoming entry's access context. Placement
	// constraints always resolve to a contiguous slot range — a single
	// way's slots or every live slot of the set.
	Victim(set, lo, hi int, a EntryAccess) int
	// Evict records invalidation of a slot.
	Evict(set, slot int)
}

// EntryPolicyFactory builds an EntryPolicy for a store with the given
// geometry (sets metadata sets, each with slots entry slots).
type EntryPolicyFactory func(sets, slots int) EntryPolicy

// ---------------------------------------------------------------- LRU

type entryLRU struct {
	stamp [][]uint64
	clock uint64
}

// NewEntryLRU returns entry-granularity LRU.
func NewEntryLRU(sets, slots int) EntryPolicy {
	p := &entryLRU{stamp: make([][]uint64, sets)}
	for i := range p.stamp {
		p.stamp[i] = make([]uint64, slots)
	}
	return p
}

func (p *entryLRU) Name() string { return "entry-lru" }

func (p *entryLRU) touch(set, slot int) {
	p.clock++
	p.stamp[set][slot] = p.clock
}

func (p *entryLRU) Touch(set, slot int, _ EntryAccess) { p.touch(set, slot) }
func (p *entryLRU) Fill(set, slot int, _ EntryAccess)  { p.touch(set, slot) }
func (p *entryLRU) Evict(set, slot int)                { p.stamp[set][slot] = 0 }

func (p *entryLRU) Victim(set, lo, hi int, _ EntryAccess) int {
	best := lo
	for s := lo + 1; s < hi; s++ {
		if p.stamp[set][s] < p.stamp[set][best] {
			best = s
		}
	}
	return best
}

// ---------------------------------------------------------------- SRRIP

type entrySRRIP struct {
	rrpv [][]uint8
}

const entryRRPVMax = 3

// NewEntrySRRIP returns entry-granularity SRRIP, Triangel's metadata
// replacement policy.
func NewEntrySRRIP(sets, slots int) EntryPolicy {
	p := &entrySRRIP{rrpv: make([][]uint8, sets)}
	for i := range p.rrpv {
		p.rrpv[i] = make([]uint8, slots)
		for j := range p.rrpv[i] {
			p.rrpv[i][j] = entryRRPVMax
		}
	}
	return p
}

func (p *entrySRRIP) Name() string { return "entry-srrip" }

func (p *entrySRRIP) Touch(set, slot int, _ EntryAccess) { p.rrpv[set][slot] = 0 }
func (p *entrySRRIP) Fill(set, slot int, _ EntryAccess)  { p.rrpv[set][slot] = entryRRPVMax - 1 }
func (p *entrySRRIP) Evict(set, slot int)                { p.rrpv[set][slot] = entryRRPVMax }

func (p *entrySRRIP) Victim(set, lo, hi int, _ EntryAccess) int {
	row := p.rrpv[set]
	for {
		for s := lo; s < hi; s++ {
			if row[s] >= entryRRPVMax {
				return s
			}
		}
		for s := lo; s < hi; s++ {
			row[s]++
		}
	}
}
