package runner

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// This file is the per-job fault policy: panic isolation, per-attempt
// timeout, and bounded retry with exponential backoff. Execute is the single
// entry point; the worker pool routes every job through it, and
// internal/exp's memoized simulation paths call it directly so serial
// aggregation enjoys the same isolation as pooled precomputation.

// FaultPolicy bounds how a single job may fail.
type FaultPolicy struct {
	// Timeout bounds one attempt's wall clock; zero means unbounded. A
	// timed-out attempt is reported as a permanent *TimeoutError: a job
	// that hung once is assumed to hang again, so it is not retried. By
	// default the timed-out attempt is abandoned (its goroutine is orphaned
	// — jobs need not observe ctx); set Cooperative for jobs that do.
	Timeout time.Duration
	// Cooperative declares that fn observes its context: on timeout (or
	// caller cancellation) Execute cancels the attempt's context and then
	// WAITS for fn to unwind before returning, so no goroutine is ever
	// abandoned and the worker slot it held is genuinely free. The error
	// semantics are unchanged — a timeout still yields a permanent
	// *TimeoutError even though fn returned ctx.Err(). A cooperative fn
	// must return promptly after cancellation (the simulation engine stops
	// at its next epoch boundary); a fn that ignores its context turns the
	// timeout into a wait for natural completion.
	Cooperative bool
	// Retries is how many additional attempts a transiently failing job
	// gets after its first. Permanent failures (panics, timeouts,
	// Permanent-wrapped errors) are never retried.
	Retries int
	// Backoff is the pause before the first retry, doubling per retry.
	Backoff time.Duration
	// Metrics, when non-nil, receives per-attempt accounting from Execute:
	// an Attempts observation per attempt, a Retries count per retry, and a
	// Completed/Failed count per final outcome. See NewMetrics.
	Metrics *Metrics
}

// Clock abstracts time for the fault machinery so tests inject a fake and
// script timeout/backoff behavior deterministically. The zero value of
// Options uses the real clock.
type Clock interface {
	After(d time.Duration) <-chan time.Time
	// SleepCtx pauses for d or until ctx is done, returning ctx.Err() when
	// the wait was cut short. Backoff pauses go through this so a cancelled
	// run stops immediately instead of finishing a (possibly minutes-long)
	// sleep first.
	SleepCtx(ctx context.Context, d time.Duration) error
}

type realClock struct{}

func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TimeoutError reports an attempt exceeding FaultPolicy.Timeout.
type TimeoutError struct {
	Key   string
	After time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("job %q timed out after %v", e.Key, e.After)
}

// PanicError reports a job attempt that panicked. The panic is converted to
// a permanent error rather than crashing the pool; callers that must map
// failure classes to responses (the serving daemon's status codes) can
// errors.As for it.
type PanicError struct {
	Key   string
	Value any
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Execute will not retry it. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

// IsPermanent reports whether err was marked non-retryable (panics,
// timeouts, and Permanent-wrapped errors).
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Execute runs fn under pol: the attempt is panic-isolated, bounded by
// pol.Timeout, and retried up to pol.Retries times with doubling backoff on
// transient errors. clock may be nil for real time. The returned error is
// the last attempt's.
func Execute[T any](ctx context.Context, pol FaultPolicy, clock Clock, key string, fn func(context.Context) (T, error)) (T, error) {
	if clock == nil {
		clock = realClock{}
	}
	var zero T
	var err error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			pol.Metrics.retried()
			if serr := clock.SleepCtx(ctx, backoffFor(pol.Backoff, attempt)); serr != nil {
				pol.Metrics.failed()
				return zero, serr
			}
		}
		start := time.Now()
		var res T
		res, err = attemptOnce(ctx, pol, clock, key, fn)
		pol.Metrics.attempt(time.Since(start))
		if err == nil {
			pol.Metrics.completed()
			return res, nil
		}
		if IsPermanent(err) || attempt >= pol.Retries || ctx.Err() != nil {
			pol.Metrics.failed()
			return zero, err
		}
	}
}

// maxBackoff caps one retry pause. Doubling per retry must saturate here:
// a naive Backoff << (attempt-1) wraps time.Duration after ~60 doublings,
// and a negative duration sleeps zero — turning the backoff into a hot
// retry loop exactly when the policy asked for its longest pauses.
const maxBackoff = time.Minute

// backoffFor returns the pause before retry `attempt` (1-based): base
// doubling per retry, saturating at maxBackoff instead of overflowing.
func backoffFor(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	if base >= maxBackoff {
		return maxBackoff
	}
	shift := uint(attempt - 1)
	// base << shift would exceed (or overflow past) the cap.
	if shift > 62 || base > maxBackoff>>shift {
		return maxBackoff
	}
	return base << shift
}

// attemptOnce runs one panic-isolated attempt, bounded by pol.Timeout.
func attemptOnce[T any](ctx context.Context, pol FaultPolicy, clock Clock, key string, fn func(context.Context) (T, error)) (T, error) {
	if pol.Timeout <= 0 {
		return protect(ctx, key, fn)
	}
	if pol.Cooperative {
		return attemptCooperative(ctx, pol, clock, key, fn)
	}
	type outcome struct {
		res T
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := protect(ctx, key, fn)
		done <- outcome{res, err}
	}()
	var zero T
	select {
	case o := <-done:
		return o.res, o.err
	case <-clock.After(pol.Timeout):
		return zero, Permanent(&TimeoutError{Key: key, After: pol.Timeout})
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}

// attemptCooperative runs one attempt of a context-observing job. Unlike the
// abandoning path above, the deadline/cancellation branches cancel the
// attempt's context and then drain `done` — the goroutine always unwinds
// (the engine stops at its next epoch boundary) before control returns to
// the caller, so the worker slot is free when Execute reports the failure.
func attemptCooperative[T any](ctx context.Context, pol FaultPolicy, clock Clock, key string, fn func(context.Context) (T, error)) (T, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res T
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := protect(actx, key, fn)
		done <- outcome{res, err}
	}()
	var zero T
	select {
	case o := <-done:
		return o.res, o.err
	case <-clock.After(pol.Timeout):
		cancel()
		<-done
		return zero, Permanent(&TimeoutError{Key: key, After: pol.Timeout})
	case <-ctx.Done():
		cancel()
		<-done
		return zero, ctx.Err()
	}
}

// protect invokes fn converting a panic into a permanent *PanicError, so a
// single bad job cannot take down the pool or the process.
func protect[T any](ctx context.Context, key string, fn func(context.Context) (T, error)) (res T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = Permanent(&PanicError{Key: key, Value: p})
		}
	}()
	return fn(ctx)
}
