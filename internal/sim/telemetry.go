package sim

// This file is the interval sampler of the telemetry subsystem: every
// Telemetry.SampleInterval() measured instructions per core it turns the
// counters the simulator already maintains into one telemetry.IntervalRecord
// — IPC, MPKI, prefetch accuracy/coverage/lateness, the LLC occupancy split,
// DRAM bandwidth and row locality, metadata activity, and the per-engine
// lifecycle attribution. Sampling is read-only (snapshotCore plus an LLC
// occupancy scan), so instrumented runs produce byte-identical Results.

import (
	"streamline/internal/cache"
	"streamline/internal/mem"
	"streamline/internal/telemetry"
)

// telemetryTick emits interval records for every sample boundary cs crossed
// with its last step. Engine.Step calls it after each trace record when
// telemetry is enabled, so the sampler rides the engine's record loop — the
// same mechanism that drives the audit cadence — instead of owning one.
func (s *System) telemetryTick(cs *coreState) {
	n := s.cfg.Telemetry.SampleInterval()
	if n == 0 || !cs.measured || cs.done {
		return
	}
	if cs.core.Instructions() < cs.nextSample {
		return
	}
	s.emitInterval(cs)
	// A single trace record can advance several instructions; one record
	// covers every boundary it crossed.
	for cs.nextSample <= cs.core.Instructions() {
		cs.nextSample += n
	}
}

// telemetryFinish flushes the final partial interval when a core completes.
func (s *System) telemetryFinish(cs *coreState) {
	if s.cfg.Telemetry.SampleInterval() == 0 || !cs.measured {
		return
	}
	if cs.core.Instructions() > cs.lastSample.instr {
		s.emitInterval(cs)
	}
}

// emitInterval records one sample for cs: deltas against the core's
// previous sample, cumulative counters against its warmup base.
func (s *System) emitInterval(cs *coreState) {
	cur := s.snapshotCore(cs)
	prev := cs.lastSample

	dInstr := cur.instr - prev.instr
	dCycles := cur.cycles - prev.cycles
	l1d := subStats(cur.l1d, prev.l1d)
	l2 := subStats(cur.l2, prev.l2)
	llc := subStats(cur.llc, prev.llc)
	dr := subDRAM(cur.dram, prev.dram)
	mt := subMeta(cur.meta, prev.meta)

	rec := telemetry.IntervalRecord{
		Core:         cs.id,
		Seq:          cs.sampleSeq,
		Instructions: cur.instr - cs.warmBase.instr,
		Cycles:       cur.cycles - cs.warmBase.cycles,
		L1DMPKI:      mpki(l1d.DemandMisses, dInstr),
		L2MPKI:       mpki(l2.DemandMisses, dInstr),
		PFAccuracy:   cache.Accuracy(l2.UsefulPrefetches, l2.PrefetchFills),
		PFCoverage:   cache.Accuracy(l2.UsefulPrefetches, l2.UsefulPrefetches+l2.DemandMisses),
		PFLateRate:   cache.Accuracy(l2.LatePrefetches, l2.UsefulPrefetches),
	}
	if dCycles > 0 {
		rec.IPC = float64(dInstr) / float64(dCycles)
		rec.DRAM.BytesPerCycle = float64((dr.Reads+dr.Writes)*mem.LineSize) / float64(dCycles)
	}

	demand, prefetched, reserved := s.llc.OccupancyBreakdown()
	rec.LLC = telemetry.LLCSample{
		DemandLines:   demand,
		PrefetchLines: prefetched,
		MetaBlocks:    reserved,
		DemandHitRate: llc.DemandHitRate(),
	}

	rec.DRAM.Reads = dr.Reads
	rec.DRAM.Writes = dr.Writes
	rec.DRAM.RowHitRate = dr.RowHitRate()

	rec.Meta = telemetry.MetaSample{
		Traffic:        mt.Traffic(),
		Lookups:        mt.Lookups,
		TriggerHitRate: mt.TriggerHitRate(),
		Resizes:        mt.Resizes,
	}
	if sp, ok := cs.tempf.(storeProvider); ok {
		if st := sp.Store(); st != nil {
			rec.Meta.OccupancyEntries = st.Occupancy()
			rec.Meta.SizeBytes = st.SizeBytes()
		}
	}

	for _, p := range prefetcherDeltas(prev, cur) {
		rec.Prefetchers = append(rec.Prefetchers, telemetry.PrefetcherSample{
			Source:           p.Source,
			Issued:           p.Issued,
			DroppedDuplicate: p.DroppedDuplicate,
			Fills:            p.Fills,
			UsefulTimely:     p.UsefulTimely,
			UsefulLate:       p.UsefulLate,
			EvictedUnused:    p.EvictedUnused,
			Accuracy:         p.Accuracy(),
		})
	}

	cum := subStats(cur.l2, cs.warmBase.l2)
	cumL1 := subStats(cur.l1d, cs.warmBase.l1d)
	cumDRAM := subDRAM(cur.dram, cs.warmBase.dram)
	cumMeta := subMeta(cur.meta, cs.warmBase.meta)
	rec.Cum = telemetry.CumSample{
		L1DMisses:        cumL1.DemandMisses,
		L2Misses:         cum.DemandMisses,
		PrefetchesIssued: cur.issued - cs.warmBase.issued,
		PrefetchFills:    cum.PrefetchFills,
		UsefulPrefetches: cum.UsefulPrefetches,
		DRAMReads:        cumDRAM.Reads,
		DRAMWrites:       cumDRAM.Writes,
		MetaTraffic:      cumMeta.Traffic(),
	}

	s.cfg.Telemetry.RecordInterval(rec)
	cs.lastSample = cur
	cs.sampleSeq++
}
