// Package exp is the experiment harness: one runner per table and figure of
// the paper's evaluation (see DESIGN.md's experiment index). Each runner
// assembles the system configurations, drives the synthetic workloads, and
// prints the same rows/series the paper reports, so `cmd/experiments -run
// fig9` regenerates Figure 9's data.
//
// Two scales are provided: Small (scaled-down caches and footprints; runs in
// seconds per arm, used by the benchmark harness) and Paper (the Table II
// hierarchy with full footprints).
package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"streamline/internal/audit"
	"streamline/internal/core"
	"streamline/internal/exp/runner"
	"streamline/internal/exp/store"
	"streamline/internal/meta"
	"streamline/internal/metrics"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/berti"
	"streamline/internal/prefetch/bingo"
	"streamline/internal/prefetch/ipcp"
	"streamline/internal/prefetch/spp"
	"streamline/internal/prefetch/stride"
	"streamline/internal/prefetch/triangel"
	"streamline/internal/sim"
	"streamline/internal/telemetry"
	"streamline/internal/workloads"
)

// Scale fixes the experiment sizing so cache capacity and workload
// footprints stay proportioned the way Table II and the SPEC/GAP footprints
// are.
type Scale struct {
	Name      string
	Footprint float64
	L2Sets    int
	LLCSets   int
	// MetaBytes is the per-core maximum metadata partition (half the LLC).
	MetaBytes int
	// MinSets is Streamline's permanent metadata set floor.
	MinSets int
	Warmup  uint64
	Measure uint64
	// Workloads restricts the suite (nil: every registered workload).
	Workloads []string
	// MixCount is the number of multi-programmed mixes per core count.
	MixCount int
	// Bandwidth scales DRAM channel bandwidth. The small scale shrinks
	// the caches 8x under a full-size core, which multiplies the miss
	// rate; bandwidth must scale with it or every workload degenerates
	// to bandwidth-bound and prefetching cannot help.
	Bandwidth float64
	// Seed makes every run reproducible.
	Seed int64
}

// Small is the scaled-down sizing used by tests and benches: an 8x smaller
// hierarchy with 10x smaller footprints, preserving the capacity ratios that
// drive the paper's results.
var Small = Scale{
	Name:      "small",
	Footprint: 0.1,
	L2Sets:    128, // 64KB
	LLCSets:   256, // 256KB/core
	MetaBytes: 128 << 10,
	MinSets:   16,
	Warmup:    400_000,
	Measure:   1_200_000,
	Workloads: []string{
		"sphinx06", "mcf06", "omnetpp06", "soplex06", "libquantum06", "bzip206",
		"mcf17", "xz17", "lbm17", "gcc17",
		"pr", "cc", "bfs", "sssp",
	},
	MixCount:  6,
	Bandwidth: 4.0,
	Seed:      12345,
}

// Micro is the minimal sizing: the Small hierarchy with two workloads and
// tiny instruction budgets, so a full `-run all` sweep finishes in minutes
// on one core. It exists for the test suite and the crash-injection
// harness (`-scale micro`), not for reproducing numbers.
var Micro = func() Scale {
	sc := Small
	sc.Name = "micro"
	sc.Workloads = []string{"sphinx06", "libquantum06"}
	sc.Warmup = 40_000
	sc.Measure = 120_000
	sc.MixCount = 1
	return sc
}()

// Paper is the Table II sizing with full synthetic footprints.
var Paper = Scale{
	Name:      "paper",
	Footprint: 1.0,
	L2Sets:    1024, // 512KB
	LLCSets:   2048, // 2MB/core
	MetaBytes: 1 << 20,
	MinSets:   64,
	Warmup:    4_000_000,
	Measure:   12_000_000,
	MixCount:  12,
	Seed:      12345,
}

// Fingerprint canonically encodes every sizing parameter of the scale. The
// result store records it in each sweep's manifest and mixes it into every
// job key, so cached results are only ever replayed under the exact scale
// that produced them.
func (sc Scale) Fingerprint() string {
	return fmt.Sprintf("scale-v1|%s|%g|%d|%d|%d|%d|%d|%d|%s|%d|%g|%d",
		sc.Name, sc.Footprint, sc.L2Sets, sc.LLCSets, sc.MetaBytes, sc.MinSets,
		sc.Warmup, sc.Measure, strings.Join(sc.Workloads, ","), sc.MixCount,
		sc.Bandwidth, sc.Seed)
}

// workloadList resolves the scale's workload subset.
func (sc Scale) workloadList() []workloads.Workload {
	if sc.Workloads == nil {
		return workloads.All()
	}
	out := make([]workloads.Workload, 0, len(sc.Workloads))
	for _, n := range sc.Workloads {
		w, err := workloads.Get(n)
		if err != nil {
			panic(err)
		}
		out = append(out, w)
	}
	return out
}

func (sc Scale) irregular() []workloads.Workload {
	var out []workloads.Workload
	for _, w := range sc.workloadList() {
		if w.Irregular {
			out = append(out, w)
		}
	}
	return out
}

// baseConfig builds the system config for this scale.
func (sc Scale) baseConfig(cores int) sim.Config {
	cfg := sim.DefaultConfig(cores)
	cfg.L2.Sets = sc.L2Sets
	cfg.LLC.Sets = sc.LLCSets
	cfg.WarmupInstructions = sc.Warmup
	cfg.MeasureInstructions = sc.Measure
	if sc.Bandwidth > 1 {
		// Scale channel count, not burst time: the small hierarchy needs
		// proportional bank-level parallelism too, or random-access
		// workloads stay bank-throughput-bound no matter the bus speed.
		cfg.DRAM.Channels *= int(sc.Bandwidth)
	}
	return cfg
}

// ---- arms ------------------------------------------------------------

// Arm is one system configuration under test. Name must uniquely identify
// the configuration: results are memoized by (arm, workload(s), cores).
type Arm struct {
	Name  string
	Apply func(cfg *sim.Config, sc Scale)
}

func l1Factory(kind string) sim.PrefetcherFactory {
	switch kind {
	case "stride":
		return func() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) }
	case "berti":
		return func() prefetch.Prefetcher { return berti.New(berti.DefaultConfig) }
	default:
		return nil
	}
}

func l2Factory(kind string) sim.PrefetcherFactory {
	switch kind {
	case "ipcp":
		return func() prefetch.Prefetcher { return ipcp.New(ipcp.DefaultConfig) }
	case "bingo":
		return func() prefetch.Prefetcher { return bingo.New(bingo.DefaultConfig) }
	case "spp":
		return func() prefetch.Prefetcher { return spp.New(spp.DefaultConfig) }
	default:
		return nil
	}
}

// baseArm is the no-temporal baseline with the given L1/L2 prefetchers.
func baseArm(l1, l2 string) Arm {
	name := "base"
	if l1 != "" {
		name += "+" + l1
	}
	if l2 != "" {
		name += "+" + l2
	}
	return Arm{Name: name, Apply: func(cfg *sim.Config, sc Scale) {
		cfg.L1DPrefetcher = l1Factory(l1)
		cfg.L2Prefetcher = l2Factory(l2)
	}}
}

// triangelArm builds a Triangel arm; mod may adjust the configuration and
// must be reflected in name.
func triangelArm(name, l1, l2 string, mod func(*triangel.Config)) Arm {
	return Arm{Name: name, Apply: func(cfg *sim.Config, sc Scale) {
		cfg.L1DPrefetcher = l1Factory(l1)
		cfg.L2Prefetcher = l2Factory(l2)
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			c := triangel.DefaultConfig()
			c.MetaBytes = sc.MetaBytes
			if mod != nil {
				mod(&c)
			}
			return triangel.New(c, b)
		}
	}}
}

// streamlineArm builds a Streamline arm; mod may adjust the options and must
// be reflected in name.
func streamlineArm(name, l1, l2 string, mod func(*core.Options)) Arm {
	return Arm{Name: name, Apply: func(cfg *sim.Config, sc Scale) {
		cfg.L1DPrefetcher = l1Factory(l1)
		cfg.L2Prefetcher = l2Factory(l2)
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			o := core.DefaultOptions()
			o.MetaBytes = sc.MetaBytes
			o.MinSets = sc.MinSets
			if mod != nil {
				mod(&o)
			}
			return core.New(o, b)
		}
	}}
}

// ---- runner ------------------------------------------------------------

// Runner executes arms with memoization so shared baselines are simulated
// once per harness invocation. Run and RunMix are safe for concurrent use:
// each simulation is single-flighted by its memo key, so a result is
// computed exactly once no matter how many goroutines ask for it.
type Runner struct {
	Scale    Scale
	Progress io.Writer
	// Ctx, when non-nil, cancels the sweep cooperatively: in-flight
	// simulations stop at their next engine epoch boundary (a few thousand
	// trace records), pending pool jobs fail fast with ctx.Err(), and
	// every aborted job is recorded as a failure. Results already
	// checkpointed to Store stay durable. Nil means background (never
	// canceled).
	Ctx context.Context
	// Jobs bounds the worker pool used by Precompute and ParallelMap.
	// Zero or negative means GOMAXPROCS; 1 reproduces the serial harness.
	Jobs int
	// JobProgress, when non-nil, receives per-job completion lines (done
	// count, elapsed, ETA) from the worker pool. Point it at stderr: its
	// line order follows completion order and is not deterministic.
	JobProgress io.Writer
	// Check enables the runtime invariant audit on every simulation the
	// runner performs. The checks are read-only — result tables are
	// byte-identical either way — and AuditSummary reports what they found.
	Check bool
	// TelemetryDir, when non-empty, writes each simulation's interval
	// samples and events as JSONL to <dir>/<memo key>.jsonl. Every
	// simulation gets its own file and runs at most once (single-flighted
	// by memo key), so the output is parallel-safe and its content
	// deterministic for any Jobs value. Instrumentation is read-only —
	// result tables are byte-identical either way.
	TelemetryDir string
	// SampleInterval is the measured instructions between telemetry samples
	// per core; zero means a tenth of the scale's measured window.
	SampleInterval uint64
	// Store, when non-nil, persists every completed simulation result and
	// replays validated cached results instead of recomputing (the
	// -checkpoint/-resume machinery). Replayed results are re-validated
	// against their content hash; simulations are deterministic, so a
	// resumed sweep's tables are byte-identical to an uninterrupted run.
	Store *store.Store
	// Fault bounds each simulation job: per-attempt timeout, bounded
	// retry with backoff, and panic isolation. With the zero value a
	// panicking arm still degrades to a recorded gap instead of aborting
	// the sweep (see Failures).
	Fault runner.FaultPolicy
	// FailKey, when non-empty, makes any job whose key contains it panic
	// at the start of its computation — the fault-injection hook behind
	// the EXPERIMENTS_FAIL_KEY harness and the degradation tests.
	FailKey string

	logMu   sync.Mutex
	mu      sync.Mutex
	memo    map[string]*memoEntry
	sysMemo map[string]*sysMemoEntry

	audMu    sync.Mutex
	auditors []*audit.Auditor

	telMu  sync.Mutex
	telErr error

	fails    *failureLog
	resumed  atomic.Int64
	storeMu  sync.Mutex
	storeErr error
}

// memoEntry single-flights one simulation result. A failed job memoizes its
// error: res stays the zero Result (the gap value) and err records why.
type memoEntry struct {
	once sync.Once
	res  sim.Result
	err  error
}

// sysMemoEntry single-flights a simulation that also retains its system for
// prefetcher-internal inspection. The system is read-only after the run;
// on failure sys is nil and err records why.
type sysMemoEntry struct {
	once sync.Once
	res  sim.Result
	sys  *sim.System
	err  error
}

// NewRunner returns a runner at the given scale.
func NewRunner(sc Scale) *Runner {
	return &Runner{
		Scale:   sc,
		memo:    make(map[string]*memoEntry),
		sysMemo: make(map[string]*sysMemoEntry),
		fails:   newFailureLog(),
	}
}

// Derived returns a runner at a modified scale that shares this runner's
// pool sizing, progress sinks, fault policy, result store, and failure log
// — for studies that rerun arms under a perturbed scale (fig13c's
// capacity-pressured runner). Store keys embed the scale fingerprint, so
// the two runners' records never collide.
func (r *Runner) Derived(sc Scale) *Runner {
	nr := NewRunner(sc)
	nr.Progress = r.Progress
	nr.Ctx = r.Ctx
	nr.Jobs = r.Jobs
	nr.JobProgress = r.JobProgress
	nr.Store = r.Store
	nr.Fault = r.Fault
	nr.FailKey = r.FailKey
	nr.fails = r.fails
	return nr
}

// EnableMetrics resolves the runner_job_* instrument family on reg and wires
// it into this runner: Execute-level accounting via the fault policy, gap
// counting via the failure log, and replay counting via the resume path.
// Call it after assigning Fault (assigning Fault later would discard the
// hook). Derived runners inherit the wiring — the fault policy is copied and
// the failure log is shared — so a sweep's counters are complete.
func (r *Runner) EnableMetrics(reg *metrics.Registry) *runner.Metrics {
	m := runner.NewMetrics(reg)
	r.Fault.Metrics = m
	r.fails.mu.Lock()
	r.fails.metrics = m
	r.fails.mu.Unlock()
	return m
}

// ---- failure accounting ---------------------------------------------------

// JobFailure records one permanently failed job: its result is a
// zero-valued gap in every table that consumes it.
type JobFailure struct {
	Key string
	Err error
}

// failureLog accumulates failed job keys. It is shared between a runner and
// its Derived runners so a sweep's degradation summary is complete.
type failureLog struct {
	mu      sync.Mutex
	order   []JobFailure
	keys    map[string]bool
	drained int
	// metrics, when set by EnableMetrics, counts each newly gapped key.
	metrics *runner.Metrics
}

func newFailureLog() *failureLog { return &failureLog{keys: make(map[string]bool)} }

func (l *failureLog) add(key string, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.keys[key] {
		return
	}
	l.keys[key] = true
	l.order = append(l.order, JobFailure{Key: key, Err: err})
	l.metrics.GapInc()
}

func (l *failureLog) has(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.keys[key]
}

// sortedCopy returns fails sorted by key: recording order follows pool
// scheduling and is not deterministic, the sorted view is.
func sortedCopy(fails []JobFailure) []JobFailure {
	out := append([]JobFailure(nil), fails...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Failures returns every failure recorded so far, sorted by job key.
func (r *Runner) Failures() []JobFailure {
	r.fails.mu.Lock()
	defer r.fails.mu.Unlock()
	return sortedCopy(r.fails.order)
}

// DrainFailures returns the failures recorded since the previous drain,
// sorted by job key. cmd/experiments calls it after each experiment to
// annotate that experiment's tables with its gaps.
func (r *Runner) DrainFailures() []JobFailure {
	r.fails.mu.Lock()
	defer r.fails.mu.Unlock()
	newFails := r.fails.order[r.fails.drained:]
	r.fails.drained = len(r.fails.order)
	return sortedCopy(newFails)
}

// Gapped reports whether the job with this key failed permanently. For
// simulation jobs it answers only after the sim was attempted (Precompute
// or a direct Run), which every experiment does before aggregating.
func (r *Runner) Gapped(key string) bool { return r.fails.has(key) }

// GapRun reports whether a single-workload simulation is a gap.
func (r *Runner) GapRun(arm Arm, workload string) bool {
	return r.GapMix(arm, []string{workload}, 1, 0)
}

// GapMix reports whether a mix simulation is a gap.
func (r *Runner) GapMix(arm Arm, mix []string, cores int, bwFactor float64) bool {
	return r.fails.has(simKey(arm, mix, cores, bwFactor))
}

// GapCell is the table cell marking a value whose simulation failed.
const GapCell = "GAP"

// AnnotateGaps appends one deterministic note per failed job to the first
// table, so a degraded sweep's output explicitly marks what is missing.
func AnnotateGaps(tables []Table, fails []JobFailure) {
	if len(tables) == 0 || len(fails) == 0 {
		return
	}
	for _, f := range fails {
		tables[0].Notes = append(tables[0].Notes,
			fmt.Sprintf("GAP: job %q failed: %v", f.Key, f.Err))
	}
}

// ResumedJobs returns how many simulations were replayed from the store
// instead of recomputed.
func (r *Runner) ResumedJobs() int { return int(r.resumed.Load()) }

func (r *Runner) storeFail(err error) {
	r.storeMu.Lock()
	if r.storeErr == nil {
		r.storeErr = err
	}
	r.storeMu.Unlock()
}

// StoreErr returns the first store I/O error encountered, or nil. A store
// write failure does not fail the simulation that produced the result, but
// the sweep must report it: the checkpoint is incomplete.
func (r *Runner) StoreErr() error {
	r.storeMu.Lock()
	defer r.storeMu.Unlock()
	return r.storeErr
}

func (r *Runner) logf(format string, args ...any) {
	if r.Progress != nil {
		r.logMu.Lock()
		defer r.logMu.Unlock()
		fmt.Fprintf(r.Progress, format, args...)
	}
}

// Run executes one arm on a single workload (1 core).
func (r *Runner) Run(arm Arm, workload string) sim.Result {
	return r.RunMix(arm, []string{workload}, 1, 0)
}

// TryRun is Run reporting success (see TryRunMix).
func (r *Runner) TryRun(arm Arm, workload string) (sim.Result, bool) {
	return r.TryRunMix(arm, []string{workload}, 1, 0)
}

func simKey(arm Arm, mix []string, cores int, bwFactor float64) string {
	return fmt.Sprintf("%s|%s|%d|%.3f", arm.Name, strings.Join(mix, ","), cores, bwFactor)
}

// RunMix executes one arm on a multi-programmed mix. bwFactor scales DRAM
// bandwidth when nonzero (Figure 10c). A permanently failed simulation
// (panic, exhausted retries, timeout) returns the zero Result — the gap
// value — and records a JobFailure; callers that must distinguish use
// TryRunMix or GapMix.
func (r *Runner) RunMix(arm Arm, mix []string, cores int, bwFactor float64) sim.Result {
	res, _ := r.TryRunMix(arm, mix, cores, bwFactor)
	return res
}

// TryRunMix is RunMix reporting success: ok is false when the simulation
// failed permanently under the fault policy (res is then the zero Result).
func (r *Runner) TryRunMix(arm Arm, mix []string, cores int, bwFactor float64) (res sim.Result, ok bool) {
	key := simKey(arm, mix, cores, bwFactor)
	r.mu.Lock()
	e, found := r.memo[key]
	if !found {
		e = &memoEntry{}
		r.memo[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		e.res, e.err = r.computeOrReplay(key, arm, mix, cores, bwFactor)
		if e.err != nil {
			r.fails.add(key, e.err)
		}
	})
	return e.res, e.err == nil
}

// computeOrReplay returns the stored result for key when the store holds a
// validated record for it, and otherwise computes the simulation under the
// fault policy and checkpoints the result. Replay is sound because a
// simulation is a pure function of (scale, arm, mix, cores, bwFactor) and
// the store key hashes all of them.
func (r *Runner) computeOrReplay(key string, arm Arm, mix []string, cores int, bwFactor float64) (sim.Result, error) {
	sk := r.storeKey(key)
	if r.Store != nil {
		if payload, found := r.Store.Get(sk); found {
			var res sim.Result
			if err := json.Unmarshal(payload, &res); err == nil {
				r.resumed.Add(1)
				r.Fault.Metrics.ReplayInc()
				r.logf("  [cached] %s\n", key)
				return res, nil
			}
			// An undecodable payload behaves like a missing record:
			// recompute rather than replay anything questionable.
		}
	}
	res, err := runner.Execute(r.ctx(), r.Fault, nil, key,
		func(ctx context.Context) (sim.Result, error) {
			r.maybeInjectFailure(key)
			return r.computeMix(ctx, arm, mix, cores, bwFactor)
		})
	if err != nil {
		return sim.Result{}, err
	}
	if r.Store != nil {
		if perr := r.Store.Put(sk, key, res); perr != nil {
			r.storeFail(perr)
		}
	}
	return res, nil
}

// storeKey derives the content-addressed store key for a simulation memo
// key: the scale fingerprint is mixed in so runners at different scales
// (fig13c's pressured Derived runner) can share one store without collisions.
func (r *Runner) storeKey(key string) string {
	return store.Key("simresult", r.Scale.Fingerprint(), key)
}

// maybeInjectFailure panics when fault injection targets this job — the
// hook behind FailKey and the EXPERIMENTS_FAIL_KEY harness.
func (r *Runner) maybeInjectFailure(key string) {
	if r.FailKey != "" && strings.Contains(key, r.FailKey) {
		panic(fmt.Sprintf("injected failure for job %q (fail key %q)", key, r.FailKey))
	}
}

// computeMix builds a fresh system and runs the simulation, observing ctx
// between engine epochs so a canceled sweep releases its workers promptly.
// Everything it touches is job-private: the config is a value copy of the
// scale, the system and its traces are constructed here, and the workload
// registry is only read — which is what makes concurrent RunMix calls
// race-free.
func (r *Runner) computeMix(ctx context.Context, arm Arm, mix []string, cores int, bwFactor float64) (sim.Result, error) {
	cfg := r.Scale.baseConfig(cores)
	if bwFactor > 0 {
		cfg.DRAM = cfg.DRAM.ScaleBandwidth(bwFactor)
	}
	arm.Apply(&cfg, r.Scale)
	r.attachAudit(&cfg, simKey(arm, mix, cores, bwFactor))
	finish := r.attachTelemetry(&cfg, simKey(arm, mix, cores, bwFactor))
	sys := sim.New(cfg)
	for c := 0; c < cores; c++ {
		w, err := workloads.Get(mix[c%len(mix)])
		if err != nil {
			panic(err)
		}
		sys.SetTrace(c, w.NewTrace(workloads.Scale{Footprint: r.Scale.Footprint},
			r.Scale.Seed+int64(c)))
	}
	r.logf("  [%s] %s x%d\n", arm.Name, strings.Join(mix, ","), cores)
	res, err := sys.RunCtx(ctx, 0, nil)
	finish()
	return res, err
}

// ctx returns the runner's cancellation context, defaulting to background.
func (r *Runner) ctx() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// attachAudit arms cfg with a fresh auditor when Check is set, labeling it
// with the simulation's memo key so a violation traces back to its run. The
// auditor is retained for AuditSummary.
func (r *Runner) attachAudit(cfg *sim.Config, key string) {
	if !r.Check {
		return
	}
	a := audit.New(r.Scale.Seed)
	a.Label = key
	cfg.Audit = a
	r.audMu.Lock()
	r.auditors = append(r.auditors, a)
	r.audMu.Unlock()
}

// attachTelemetry arms cfg with a collector writing to this simulation's own
// file under TelemetryDir, returning a finish function the caller must invoke
// after the run (writes the closing summary record and closes the file). When
// telemetry is off, both are no-ops. File I/O errors are retained for
// TelemetryErr rather than failing the simulation.
func (r *Runner) attachTelemetry(cfg *sim.Config, key string) func() {
	if r.TelemetryDir == "" {
		return func() {}
	}
	f, err := os.Create(filepath.Join(r.TelemetryDir, telemetryFileName(key)))
	if err != nil {
		r.telemetryFail(err)
		return func() {}
	}
	interval := r.SampleInterval
	if interval == 0 {
		interval = r.Scale.Measure / 10
	}
	col := telemetry.New(telemetry.NewSink(f), interval)
	cfg.Telemetry = col
	return func() {
		if err := col.Close(); err != nil {
			r.telemetryFail(err)
		}
		if err := f.Close(); err != nil {
			r.telemetryFail(err)
		}
	}
}

// telemetryFileName maps a memo key to a stable filename: every character
// outside [A-Za-z0-9._+-] becomes '_', and distinct simulations have distinct
// keys, so a sweep's file set is deterministic across runs and Jobs values.
func telemetryFileName(key string) string {
	s := []byte(key)
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '+', c == '-':
		default:
			s[i] = '_'
		}
	}
	return string(s) + ".jsonl"
}

func (r *Runner) telemetryFail(err error) {
	r.telMu.Lock()
	if r.telErr == nil {
		r.telErr = err
	}
	r.telMu.Unlock()
}

// TelemetryErr returns the first telemetry I/O error encountered, or nil.
func (r *Runner) TelemetryErr() error {
	r.telMu.Lock()
	defer r.telMu.Unlock()
	return r.telErr
}

// AuditSummary writes the findings of every audited simulation to w (full
// reports only for runs with violations, sorted by label so concurrent
// scheduling does not reorder output) and returns the total violation count.
// Zero simulations audited means Check was never set.
func (r *Runner) AuditSummary(w io.Writer) int {
	r.audMu.Lock()
	auds := make([]*audit.Auditor, len(r.auditors))
	copy(auds, r.auditors)
	r.audMu.Unlock()
	sort.Slice(auds, func(i, j int) bool { return auds[i].Label < auds[j].Label })
	total := 0
	for _, a := range auds {
		total += int(a.Total())
		if a.Total() > 0 {
			a.WriteReport(w)
		}
	}
	fmt.Fprintf(w, "audit: %d simulation(s) audited, %d violation(s)\n", len(auds), total)
	return total
}

// runSystem single-flights a system-retaining simulation under the given
// memo key. These runs are never replayed from the store — a *sim.System
// cannot be serialized — but they are deterministic, so recomputing them on
// resume still yields byte-identical output. They do run under the fault
// policy: on permanent failure the system is nil and callers must degrade.
func (r *Runner) runSystem(key string, compute func(ctx context.Context) (sim.Result, *sim.System, error)) (sim.Result, *sim.System) {
	r.mu.Lock()
	e, ok := r.sysMemo[key]
	if !ok {
		e = &sysMemoEntry{}
		r.sysMemo[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		type out struct {
			res sim.Result
			sys *sim.System
		}
		o, err := runner.Execute(r.ctx(), r.Fault, nil, key,
			func(ctx context.Context) (out, error) {
				r.maybeInjectFailure(key)
				res, sys, err := compute(ctx)
				return out{res, sys}, err
			})
		if err != nil {
			e.err = err
			r.fails.add(key, err)
			return
		}
		e.res, e.sys = o.res, o.sys
	})
	return e.res, e.sys
}

// ---- parallel precomputation ---------------------------------------------

// Sim identifies one simulation job: an arm applied to a workload mix at a
// core count and bandwidth factor. It is the unit of parallelism the
// experiment runners fan out over.
type Sim struct {
	Arm   Arm
	Mix   []string
	Cores int
	BW    float64
}

// Singles builds one single-core Sim per (arm, workload) pair.
func Singles(arms []Arm, ws []workloads.Workload) []Sim {
	var out []Sim
	for _, a := range arms {
		for _, w := range ws {
			out = append(out, Sim{Arm: a, Mix: []string{w.Name}, Cores: 1})
		}
	}
	return out
}

// SingleNames is Singles over workload names.
func SingleNames(arms []Arm, names []string) []Sim {
	var out []Sim
	for _, a := range arms {
		for _, n := range names {
			out = append(out, Sim{Arm: a, Mix: []string{n}, Cores: 1})
		}
	}
	return out
}

// MixSims builds one Sim per (arm, mix) pair at the given core count and
// bandwidth factor.
func MixSims(arms []Arm, mixes []workloads.Mix, cores int, bw float64) []Sim {
	var out []Sim
	for _, a := range arms {
		for _, m := range mixes {
			out = append(out, Sim{Arm: a, Mix: workloads.Names(m.Members), Cores: cores, BW: bw})
		}
	}
	return out
}

// Precompute executes the given simulations on the runner's worker pool and
// memoizes their results. Duplicate and already-memoized sims are skipped.
// After Precompute returns, Run/RunMix calls for these sims are memo hits,
// so the experiment's serial aggregation loop produces byte-identical output
// regardless of worker count and scheduling. A failed simulation panics,
// matching the serial harness's behavior on bad configurations.
func (r *Runner) Precompute(groups ...[]Sim) {
	seen := map[string]bool{}
	var jobs []runner.Job[struct{}]
	for _, sims := range groups {
		for _, s := range sims {
			s := s
			if s.Cores == 0 {
				s.Cores = 1
			}
			key := simKey(s.Arm, s.Mix, s.Cores, s.BW)
			if seen[key] || r.memoized(key) {
				continue
			}
			seen[key] = true
			jobs = append(jobs, runner.Job[struct{}]{
				Key: key,
				Run: func(context.Context) (struct{}, error) {
					r.RunMix(s.Arm, s.Mix, s.Cores, s.BW)
					return struct{}{}, nil
				},
			})
		}
	}
	r.runJobs(jobs)
}

// PrecomputeSystems is Precompute for system-retaining runs (runWithSystem).
func (r *Runner) PrecomputeSystems(arms []Arm, names []string) {
	var jobs []runner.Job[struct{}]
	for _, a := range arms {
		for _, n := range names {
			a, n := a, n
			key := a.Name + "|" + n
			if r.sysMemoized(key) {
				continue
			}
			jobs = append(jobs, runner.Job[struct{}]{
				Key: key,
				Run: func(context.Context) (struct{}, error) {
					r.runWithSystem(a, n)
					return struct{}{}, nil
				},
			})
		}
	}
	r.runJobs(jobs)
}

func (r *Runner) memoized(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.memo[key] != nil
}

func (r *Runner) sysMemoized(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sysMemo[key] != nil
}

// runJobs drives precomputation jobs through the continue-on-error pool:
// the jobs themselves absorb simulation failures (RunMix memoizes a gap),
// so pool-level errors are unexpected — but if one occurs it is recorded as
// a gap rather than aborting the sweep.
func (r *Runner) runJobs(jobs []runner.Job[struct{}]) {
	if len(jobs) == 0 {
		return
	}
	opts := runner.Options{Workers: r.Jobs, Progress: r.JobProgress}
	_, errs := runner.RunAll(r.ctx(), opts, jobs)
	for i, err := range errs {
		if err != nil {
			r.fails.add(jobs[i].Key, err)
		}
	}
}

// ParallelMap runs fn over items on the runner's worker pool and returns the
// results in item order, so aggregation stays deterministic. key labels each
// job in progress output. fn must not touch shared mutable state. A
// panicking fn degrades to a zero-valued result and a recorded JobFailure
// (check r.Gapped(key) when aggregating) instead of aborting the run.
func ParallelMap[T, R any](r *Runner, items []T, key func(T) string, fn func(T) R) []R {
	jobs := make([]runner.Job[R], len(items))
	for i, it := range items {
		it := it
		k := key(it)
		jobs[i] = runner.Job[R]{
			Key: k,
			Run: func(context.Context) (R, error) {
				r.maybeInjectFailure(k)
				return fn(it), nil
			},
		}
	}
	opts := runner.Options{Workers: r.Jobs, Progress: r.JobProgress}
	res, errs := runner.RunAll(r.ctx(), opts, jobs)
	for i, err := range errs {
		if err != nil {
			r.fails.add(jobs[i].Key, err)
		}
	}
	return res
}

// ---- metrics -------------------------------------------------------------

// Speedup returns pf's IPC over base's (single-core).
func Speedup(base, pf sim.Result) float64 {
	if base.IPC() == 0 {
		return 0
	}
	return pf.IPC() / base.IPC()
}

// ThroughputSpeedup returns the ratio of summed IPCs (multi-core).
func ThroughputSpeedup(base, pf sim.Result) float64 {
	var b, p float64
	for i := range base.Cores {
		b += base.Cores[i].IPC
		p += pf.Cores[i].IPC
	}
	if b == 0 {
		return 0
	}
	return p / b
}

// Coverage returns the fraction of the baseline's L2 demand misses that the
// prefetching configuration removed.
func Coverage(base, pf sim.Result) float64 {
	bm := base.Cores[0].L2.DemandMisses
	pm := pf.Cores[0].L2.DemandMisses
	if bm == 0 || pm >= bm {
		return 0
	}
	return float64(bm-pm) / float64(bm)
}

// Accuracy returns useful prefetches over prefetch fills at the L2.
func Accuracy(res sim.Result) float64 { return res.Cores[0].PrefetchAccuracy() }

// Geomean returns the geometric mean of xs (zero entries are floored).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-6
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ---- tables ---------------------------------------------------------------

// Table is a formatted experiment result. The JSON tags serve the harness's
// -json results emitter.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends a row of pre-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// F formats a float for table cells.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ---- registry ---------------------------------------------------------------

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) []Table
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
