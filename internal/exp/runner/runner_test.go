package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrderedAggregation: results must land at their job's index even when
// jobs complete in reverse order (later jobs finish first).
func TestOrderedAggregation(t *testing.T) {
	const n = 16
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job%d", i),
			Run: func(context.Context) (int, error) {
				// Earlier jobs sleep longer, so completion order is roughly
				// the reverse of submission order.
				time.Sleep(time.Duration(n-i) * time.Millisecond)
				return i * 10, nil
			},
		}
	}
	got, err := Run(context.Background(), Options{Workers: n}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*10 {
			t.Errorf("results[%d] = %d, want %d", i, v, i*10)
		}
	}
}

// TestPoolSaturation: the pool must run exactly Workers jobs concurrently
// when enough jobs are available, and never more.
func TestPoolSaturation(t *testing.T) {
	const workers, n = 4, 12
	var cur, peak atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	jobs := make([]Job[struct{}], n)
	for i := range jobs {
		jobs[i] = Job[struct{}]{
			Key: fmt.Sprintf("job%d", i),
			Run: func(context.Context) (struct{}, error) {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				if c == workers {
					// All workers are busy: let everyone proceed.
					once.Do(func() { close(release) })
				}
				<-release
				cur.Add(-1)
				return struct{}{}, nil
			},
		}
	}
	if _, err := Run(context.Background(), Options{Workers: workers}, jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p != workers {
		t.Errorf("peak concurrency = %d, want %d", p, workers)
	}
}

// TestErrorPropagation: table-driven failure scenarios. A failing job must
// surface its error without wedging the pool, and the lowest-index error
// wins when several fail.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	cases := []struct {
		name    string
		failAt  map[int]error
		panicAt map[int]bool
		n       int
		workers int
		wantIn  []string // substrings the returned error must contain
	}{
		{name: "single failure", failAt: map[int]error{3: boom}, n: 8, workers: 2,
			wantIn: []string{"job3", "boom"}},
		{name: "multiple failures report lowest index",
			failAt: map[int]error{2: boom, 5: boom}, n: 8, workers: 1,
			wantIn: []string{"job2"}},
		{name: "panic becomes error", panicAt: map[int]bool{1: true}, n: 4, workers: 2,
			wantIn: []string{"job1", "panic"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jobs := make([]Job[int], tc.n)
			for i := range jobs {
				i := i
				jobs[i] = Job[int]{
					Key: fmt.Sprintf("job%d", i),
					Run: func(context.Context) (int, error) {
						if tc.panicAt[i] {
							panic("kaboom")
						}
						if err := tc.failAt[i]; err != nil {
							return 0, err
						}
						return i, nil
					},
				}
			}
			done := make(chan struct{})
			var err error
			go func() {
				_, err = Run(context.Background(), Options{Workers: tc.workers}, jobs)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("pool wedged: Run did not return")
			}
			if err == nil {
				t.Fatal("Run returned nil error")
			}
			for _, want := range tc.wantIn {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
		})
	}
}

// TestFailureSkipsRemaining: after a failure, jobs that have not started are
// not run.
func TestFailureSkipsRemaining(t *testing.T) {
	var ran atomic.Int64
	jobs := make([]Job[struct{}], 64)
	for i := range jobs {
		i := i
		jobs[i] = Job[struct{}]{
			Key: fmt.Sprintf("job%d", i),
			Run: func(context.Context) (struct{}, error) {
				if i == 0 {
					return struct{}{}, errors.New("first job fails")
				}
				ran.Add(1)
				time.Sleep(time.Millisecond)
				return struct{}{}, nil
			},
		}
	}
	_, err := Run(context.Background(), Options{Workers: 2}, jobs)
	if err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n >= 63 {
		t.Errorf("all %d remaining jobs ran despite early failure", n)
	}
}

// TestContextCancellation: cancelling the caller's context stops the run
// promptly and reports ctx.Err().
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	var ran atomic.Int64
	jobs := make([]Job[struct{}], 32)
	for i := range jobs {
		jobs[i] = Job[struct{}]{
			Key: fmt.Sprintf("job%d", i),
			Run: func(c context.Context) (struct{}, error) {
				ran.Add(1)
				select {
				case started <- struct{}{}:
				default:
				}
				<-c.Done() // block until cancelled
				return struct{}{}, nil
			},
		}
	}
	go func() {
		<-started
		cancel()
	}()
	done := make(chan struct{})
	var err error
	go func() {
		_, err = Run(ctx, Options{Workers: 2}, jobs)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not honor cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 32 {
		t.Errorf("all jobs ran despite cancellation (%d)", n)
	}
}

// TestEmptyAndDefaults: zero jobs and defaulted worker counts are fine.
func TestEmptyAndDefaults(t *testing.T) {
	res, err := Run[int](context.Background(), Options{}, nil)
	if err != nil || len(res) != 0 {
		t.Errorf("empty run: res=%v err=%v", res, err)
	}
	// Workers <= 0 defaults to GOMAXPROCS; more workers than jobs is capped.
	got, err := Run(context.Background(), Options{Workers: -1}, []Job[string]{
		{Key: "only", Run: func(context.Context) (string, error) { return "ok", nil }},
	})
	if err != nil || got[0] != "ok" {
		t.Errorf("default-worker run: got=%v err=%v", got, err)
	}
}

// TestProgressReporting: progress lines carry the done count and ETA fields.
func TestProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	jobs := make([]Job[int], 3)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("job%d", i),
			Run: func(context.Context) (int, error) { return i, nil }}
	}
	if _, err := Run(context.Background(), Options{Workers: 2, Progress: w, Label: "lbl"}, jobs); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	out := b.String()
	mu.Unlock()
	if got := strings.Count(out, "\n"); got != 3 {
		t.Errorf("progress lines = %d, want 3:\n%s", got, out)
	}
	for _, want := range []string{"lbl: ", "3/3 jobs", "eta", "elapsed"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
