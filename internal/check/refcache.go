// Package check is the simulator's executable correctness oracle. Where
// internal/audit verifies structural invariants of the live hierarchy from
// inside a run, this package verifies the hierarchy's *decisions* from
// outside it, three ways:
//
//   - A reference cache (RefCache): a tiny functional model of
//     internal/cache under exact LRU — no timing, no replacement-policy
//     plumbing, no incremental bookkeeping — replayed in lockstep against
//     the real implementation by Shadow, which compares every hit/miss,
//     victim, dirty-bit, and statistics decision. Any divergence is a bug
//     in one of the two implementations (the reference is deliberately
//     written for obviousness, so in practice: in the real one).
//
//   - Conservation laws (CacheLaws, CoreLaws, SimLaws): counter identities
//     that must hold over every sim.Result — hits+misses=accesses, the
//     per-source partition of prefetch fills into useful / evicted-unused /
//     still-resident, DRAM reads equal to LLC misses plus metadata traffic.
//     The paper's figures are all *relative* miss/coverage/traffic numbers,
//     so a silent off-by-one in any of these corrupts every reproduced
//     claim; the laws make such a slip fail a test instead.
//
//   - Metamorphic transforms (tests in this package): address translation
//     and warm-split/concatenation identities that relate the results of
//     two different runs exactly, catching bugs no single-run invariant can
//     see (e.g. measured-window snapshot accounting).
//
// The oracle is test-only machinery: nothing in the simulator's hot path
// imports it.
package check

import (
	"streamline/internal/cache"
	"streamline/internal/mem"
)

// refLine is one resident line in the reference model.
type refLine struct {
	valid      bool
	line       mem.Line
	dirty      bool
	prefetched bool
	src        cache.Source
	readyAt    uint64
}

// RefCache is the functional reference model of internal/cache under LRU.
// It keeps per-set recency as an explicit most-recent-first order instead of
// timestamps, scans instead of caching counts, and recomputes instead of
// incrementally tracking — every decision is spelled out in the simplest
// form the semantics allow, so the model is easy to verify by eye.
//
// Modeled semantics (mirroring the real cache's documented contract):
//
//   - a fill on an already-resident line is a refresh, not a new install:
//     the copy keeps its dirty bit, its prefetched/src attribution, and the
//     earlier of the two completion times, and no fill is counted;
//   - fills take the first invalid data way, else the exact-LRU victim;
//   - reserving ways flushes the data lines occupying them; with the whole
//     set reserved a fill is dropped;
//   - demand hits on unused prefetched lines consume the prefetch bit and
//     credit the issuing source (timely or late by fill completion).
//
// Timing (ports, MSHRs) is out of scope: the model answers what happens,
// never when.
type RefCache struct {
	sets, ways int
	reserved   []int
	lines      [][]refLine // [set][way]
	order      [][]int     // [set] -> way indices, most recent first

	Stats cache.Stats
}

// NewRef constructs a reference cache with the given geometry.
func NewRef(sets, ways int) *RefCache {
	r := &RefCache{
		sets:     sets,
		ways:     ways,
		reserved: make([]int, sets),
		lines:    make([][]refLine, sets),
		order:    make([][]int, sets),
	}
	for s := range r.lines {
		r.lines[s] = make([]refLine, ways)
	}
	return r
}

// SetOf returns the set index for a line.
func (r *RefCache) SetOf(l mem.Line) int { return int(uint64(l) & uint64(r.sets-1)) }

// touch moves way to the front of set's recency order.
func (r *RefCache) touch(set, way int) {
	ord := r.order[set]
	for i, w := range ord {
		if w == way {
			copy(ord[1:i+1], ord[:i])
			ord[0] = way
			return
		}
	}
	r.order[set] = append([]int{way}, ord...)
}

// forget removes way from set's recency order.
func (r *RefCache) forget(set, way int) {
	ord := r.order[set]
	for i, w := range ord {
		if w == way {
			r.order[set] = append(ord[:i], ord[i+1:]...)
			return
		}
	}
}

// find returns the data way holding l, or -1.
func (r *RefCache) find(l mem.Line) int {
	set := r.SetOf(l)
	for w := r.reserved[set]; w < r.ways; w++ {
		if r.lines[set][w].valid && r.lines[set][w].line == l {
			return w
		}
	}
	return -1
}

// Probe reports whether l is resident, touching nothing.
func (r *RefCache) Probe(l mem.Line) bool { return r.find(l) >= 0 }

// Lookup mirrors cache.Lookup: counts the access, applies hit-side effects
// on a hit, counts the miss on a demand miss.
func (r *RefCache) Lookup(now uint64, a mem.Access) cache.LookupResult {
	demand := a.Kind.IsDemand()
	if demand {
		r.Stats.DemandAccesses++
	} else if a.Kind == mem.Prefetch {
		r.Stats.PrefetchAccesses++
	}
	res, hit := r.hit(now, a)
	if !hit && demand {
		r.Stats.DemandMisses++
	}
	return res
}

// LookupResident mirrors cache.LookupResident: full hit-side effects on a
// hit, no effect at all on a miss.
func (r *RefCache) LookupResident(now uint64, a mem.Access) (cache.LookupResult, bool) {
	res, hit := r.hit(now, a)
	if hit {
		if a.Kind.IsDemand() {
			r.Stats.DemandAccesses++
		} else if a.Kind == mem.Prefetch {
			r.Stats.PrefetchAccesses++
		}
	}
	return res, hit
}

// hit applies every hit-side effect when the line is resident.
func (r *RefCache) hit(now uint64, a mem.Access) (cache.LookupResult, bool) {
	w := r.find(a.Line())
	if w < 0 {
		return cache.LookupResult{}, false
	}
	set := r.SetOf(a.Line())
	ln := &r.lines[set][w]
	demand := a.Kind.IsDemand()
	var res cache.LookupResult
	res.Hit = true
	late := false
	if ln.readyAt > now {
		res.ExtraWait = ln.readyAt - now
		if demand {
			r.Stats.ExtraWaitCycles += res.ExtraWait
			if ln.prefetched {
				r.Stats.LatePrefetches++
				late = true
			}
		}
	}
	if demand {
		r.Stats.DemandHits++
		if ln.prefetched {
			res.WasPrefetched = true
			ln.prefetched = false
			r.Stats.UsefulPrefetches++
			if late {
				r.Stats.Sources[ln.src].UsefulLate++
			} else {
				r.Stats.Sources[ln.src].UsefulTimely++
			}
		}
	} else if a.Kind == mem.Prefetch {
		r.Stats.PrefetchHits++
	}
	if a.Kind == mem.Store {
		ln.dirty = true
	}
	r.touch(set, w)
	return res, true
}

// Fill mirrors cache.Fill, returning the displaced victim.
func (r *RefCache) Fill(a mem.Access, readyAt uint64, src cache.Source) cache.Victim {
	prefetch := src != cache.SrcDemand
	set := r.SetOf(a.Line())
	lo := r.reserved[set]
	if lo >= r.ways {
		return cache.Victim{}
	}
	if w := r.find(a.Line()); w >= 0 {
		// Refresh in place.
		ln := &r.lines[set][w]
		if a.Kind == mem.Store || a.Kind == mem.Writeback {
			ln.dirty = true
		}
		if readyAt < ln.readyAt {
			ln.readyAt = readyAt
		}
		r.touch(set, w)
		return cache.Victim{}
	}
	way := -1
	for w := lo; w < r.ways; w++ {
		if !r.lines[set][w].valid {
			way = w
			break
		}
	}
	var victim cache.Victim
	if way < 0 {
		// Exact LRU: the least recently touched valid data way.
		ord := r.order[set]
		way = ord[len(ord)-1]
		ln := &r.lines[set][way]
		victim = cache.Victim{Line: ln.line, Dirty: ln.dirty, Prefetched: ln.prefetched, Valid: true}
		r.Stats.Evictions++
		if ln.dirty {
			r.Stats.Writebacks++
		}
		if ln.prefetched {
			r.Stats.UnusedPrefetches++
			r.Stats.Sources[ln.src].EvictedUnused++
		}
		r.forget(set, way)
	}
	if prefetch {
		r.Stats.PrefetchFills++
		r.Stats.Sources[src].Fills++
	}
	r.lines[set][way] = refLine{
		valid:      true,
		line:       a.Line(),
		dirty:      a.Kind == mem.Store || a.Kind == mem.Writeback,
		prefetched: prefetch,
		src:        src,
		readyAt:    readyAt,
	}
	r.touch(set, way)
	return victim
}

// MarkDirty mirrors cache.MarkDirty.
func (r *RefCache) MarkDirty(l mem.Line) bool {
	if w := r.find(l); w >= 0 {
		r.lines[r.SetOf(l)][w].dirty = true
		return true
	}
	return false
}

// Reserve mirrors cache.Reserve: lines occupying newly reserved ways are
// flushed; an unused prefetched line flushed this way was evicted without a
// demand hit, so its lifecycle accounting records it as evicted-unused.
func (r *RefCache) Reserve(s, ways int) (flushed, dirty int) {
	if ways < 0 {
		ways = 0
	}
	if ways > r.ways {
		ways = r.ways
	}
	old := r.reserved[s]
	r.reserved[s] = ways
	for w := old; w < ways; w++ {
		ln := &r.lines[s][w]
		if ln.valid {
			flushed++
			if ln.dirty {
				dirty++
			}
			if ln.prefetched {
				r.Stats.UnusedPrefetches++
				r.Stats.Sources[ln.src].EvictedUnused++
			}
			r.forget(s, w)
			*ln = refLine{}
		}
	}
	return flushed, dirty
}

// OccupiedLines counts valid data lines.
func (r *RefCache) OccupiedLines() int {
	n := 0
	for s := range r.lines {
		for w := r.reserved[s]; w < r.ways; w++ {
			if r.lines[s][w].valid {
				n++
			}
		}
	}
	return n
}

// ResidentPrefetchedBySource counts still-unused prefetched lines per source.
func (r *RefCache) ResidentPrefetchedBySource() [cache.NumSources]uint64 {
	var out [cache.NumSources]uint64
	for s := range r.lines {
		for w := r.reserved[s]; w < r.ways; w++ {
			if ln := r.lines[s][w]; ln.valid && ln.prefetched {
				out[ln.src]++
			}
		}
	}
	return out
}
