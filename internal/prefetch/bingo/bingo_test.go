package bingo

import (
	"testing"

	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

func drive(p *Prefetcher, pc mem.PC, lines []mem.Line) []prefetch.Request {
	var all, buf []prefetch.Request
	for i, l := range lines {
		buf = p.Train(prefetch.Event{Now: uint64(i), PC: pc, Addr: mem.AddrOf(l)}, buf[:0])
		all = append(all, buf...)
	}
	return all
}

// footprintWorkload touches the same offsets {0, 3, 7, 12} in many regions,
// with enough interleaving churn to retire trackers into history.
func footprintWorkload(regions int) []mem.Line {
	offsets := []mem.Line{0, 3, 7, 12}
	var lines []mem.Line
	for r := 0; r < regions; r++ {
		base := mem.Line(r * 32)
		for _, o := range offsets {
			lines = append(lines, base+o)
		}
	}
	return lines
}

func TestReplaysLearnedFootprint(t *testing.T) {
	p := New(DefaultConfig)
	// Train across enough regions to evict trackers into history, then
	// fresh regions should be prefetched on first touch.
	lines := footprintWorkload(400)
	reqs := drive(p, 1, lines)
	if len(reqs) == 0 {
		t.Fatal("no footprint replays")
	}
	// Replayed offsets should match the trained footprint.
	good := 0
	for _, r := range reqs {
		off := mem.LineOf(r.Addr) % 32
		switch off {
		case 0, 3, 7, 12:
			good++
		}
	}
	if float64(good)/float64(len(reqs)) < 0.9 {
		t.Errorf("only %d/%d replayed offsets match the footprint", good, len(reqs))
	}
}

func TestSingleLineRegionsNotStored(t *testing.T) {
	p := New(DefaultConfig)
	var lines []mem.Line
	for r := 0; r < 300; r++ {
		lines = append(lines, mem.Line(r*32)) // one touch per region
	}
	reqs := drive(p, 1, lines)
	if len(reqs) != 0 {
		t.Errorf("%d prefetches from single-line footprints", len(reqs))
	}
}

func TestDefaults(t *testing.T) {
	p := New(Config{})
	if p.Name() != "bingo" {
		t.Errorf("name = %q", p.Name())
	}
	if p.cfg.RegionLines != 32 {
		t.Error("defaults not applied")
	}
}
