package meta

import (
	"math/rand"
	"testing"

	"streamline/internal/mem"
)

// llc2MB mirrors the Table II LLC: 2048 sets x 16 ways = 2MB.
func llc2MB() *NullBridge { return &NullBridge{Sets: 2048, Ways: 16, Latency: 20} }

func triangelConfig() StoreConfig {
	return StoreConfig{
		Format:         Pairwise,
		MetaWaysPerSet: 8,
		MaxBytes:       1 << 20,
	}
}

func streamlineConfig() StoreConfig {
	return StoreConfig{
		Format:         Stream,
		StreamLength:   4,
		Tagged:         true,
		Filtered:       true,
		SetPartitioned: true,
		MetaWaysPerSet: 8,
		MaxBytes:       1 << 20,
	}
}

func TestCorrelationsPerBlockTable(t *testing.T) {
	// The Section V-C1 packing: lengths 2,3,4,5,8,16 hold 14,15,16,15,16,16.
	want := map[int]int{2: 14, 3: 15, 4: 16, 5: 15, 8: 16, 16: 16}
	for k, w := range want {
		if got := CorrelationsPerBlock(Stream, k); got != w {
			t.Errorf("stream length %d: %d correlations/block, want %d", k, got, w)
		}
	}
	if got := CorrelationsPerBlock(Pairwise, 0); got != 12 {
		t.Errorf("pairwise: %d, want 12", got)
	}
	if got := CorrelationsPerBlock(PairwiseCompressed, 0); got != 16 {
		t.Errorf("compressed pairwise: %d, want 16", got)
	}
}

func TestStreamHolds33PercentMore(t *testing.T) {
	b := llc2MB()
	tri := NewStore(triangelConfig(), b)
	str := NewStore(streamlineConfig(), b)
	ct, cs := tri.CapacityCorrelations(), str.CapacityCorrelations()
	ratio := float64(cs) / float64(ct)
	if ratio < 1.32 || ratio > 1.34 {
		t.Errorf("stream/pairwise capacity ratio = %.3f (%d vs %d), want ~1.333",
			ratio, cs, ct)
	}
}

func TestInsertLookupRoundTrip(t *testing.T) {
	s := NewStore(streamlineConfig(), llc2MB())
	e := Entry{Trigger: 100, Targets: []mem.Line{101, 102, 103, 104}}
	s.Insert(0, 1, e)
	got, ok, _ := s.Lookup(0, 1, 100)
	if !ok {
		t.Fatal("lookup missed a just-inserted trigger")
	}
	if got.Trigger != 100 || len(got.Targets) != 4 || got.Targets[0] != 101 || got.Targets[3] != 104 {
		t.Errorf("lookup returned %+v", got)
	}
	if _, ok, _ := s.Lookup(0, 1, 999); ok {
		t.Error("lookup hit an absent trigger")
	}
}

func TestPairwiseStoresOneTarget(t *testing.T) {
	s := NewStore(triangelConfig(), llc2MB())
	s.Insert(0, 1, Entry{Trigger: 7, Targets: []mem.Line{8, 9, 10}})
	got, ok, _ := s.Lookup(0, 1, 7)
	if !ok || len(got.Targets) != 1 || got.Targets[0] != 8 {
		t.Errorf("pairwise entry = %+v, ok=%v", got, ok)
	}
}

func TestUpdateInPlace(t *testing.T) {
	s := NewStore(streamlineConfig(), llc2MB())
	s.Insert(0, 1, Entry{Trigger: 5, Targets: []mem.Line{1, 2, 3, 4}})
	s.Insert(0, 1, Entry{Trigger: 5, Targets: []mem.Line{9, 8, 7, 6}})
	if s.Stats.Inserts != 1 || s.Stats.Updates != 1 {
		t.Errorf("inserts/updates = %d/%d, want 1/1", s.Stats.Inserts, s.Stats.Updates)
	}
	got, ok, _ := s.Lookup(0, 1, 5)
	if !ok || got.Targets[0] != 9 {
		t.Errorf("updated entry = %+v", got)
	}
	if s.Occupancy() != 1 {
		t.Errorf("occupancy = %d, want 1", s.Occupancy())
	}
}

func TestTrafficAccounting(t *testing.T) {
	b := llc2MB()
	s := NewStore(streamlineConfig(), b)
	s.Insert(0, 1, Entry{Trigger: 5, Targets: []mem.Line{1, 2, 3, 4}})
	s.Lookup(0, 1, 5)
	s.Lookup(0, 1, 6)
	if s.Stats.Writes != 1 || s.Stats.Reads != 2 {
		t.Errorf("traffic = %d writes / %d reads, want 1/2", s.Stats.Writes, s.Stats.Reads)
	}
	if b.Writes != 1 || b.Reads != 2 {
		t.Errorf("bridge saw %d writes / %d reads", b.Writes, b.Reads)
	}
	if s.Stats.Traffic() != 3 {
		t.Errorf("Traffic() = %d, want 3", s.Stats.Traffic())
	}
}

func TestFilteredIndexingDropsOutOfPartition(t *testing.T) {
	s := NewStore(streamlineConfig(), llc2MB())
	s.Resize(512 << 10) // half: every other set filtered
	rng := rand.New(rand.NewSource(1))
	var filtered int
	const n = 4000
	for i := 0; i < n; i++ {
		tr := mem.Line(rng.Uint64() >> 16)
		if s.WouldFilter(tr) {
			filtered++
			before := s.Stats.FilteredInserts
			s.Insert(0, 1, Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}})
			if s.Stats.FilteredInserts != before+1 {
				t.Fatal("WouldFilter disagreed with Insert filtering")
			}
		}
	}
	frac := float64(filtered) / n
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("filtered fraction at half size = %.2f, want ~0.5", frac)
	}
	// Filtered lookups cost no LLC traffic.
	reads := s.Stats.Reads
	s.Lookup(0, 1, filteredTrigger(s, t))
	if s.Stats.Reads != reads {
		t.Error("filtered lookup generated LLC traffic")
	}
}

// filteredTrigger finds a trigger the store currently filters.
func filteredTrigger(s *Store, t *testing.T) mem.Line {
	t.Helper()
	for i := mem.Line(1); i < 1<<20; i++ {
		if s.WouldFilter(i) {
			return i
		}
	}
	t.Fatal("no filtered trigger found")
	return 0
}

func TestFilteredResizeGeneratesNoShuffleTraffic(t *testing.T) {
	s := NewStore(streamlineConfig(), llc2MB())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		tr := mem.Line(rng.Uint64() >> 16)
		s.Insert(0, 1, Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}})
	}
	if traffic := s.Resize(512 << 10); traffic != 0 {
		t.Errorf("filtered resize produced %d blocks of shuffle traffic", traffic)
	}
	if s.Stats.RearrangeReads != 0 || s.Stats.RearrangeWrites != 0 {
		t.Errorf("rearrange traffic = %d/%d, want 0",
			s.Stats.RearrangeReads, s.Stats.RearrangeWrites)
	}
	if s.Stats.DroppedResize == 0 {
		t.Error("shrinking dropped no entries")
	}
	// Entries that survive are still findable: no misplacement.
	found := 0
	for i := 0; i < 2000; i++ {
		tr := mem.Line(rand.New(rand.NewSource(2)).Uint64() >> 16)
		if _, ok, _ := s.Lookup(0, 1, tr); ok {
			found++
		}
		break // only need the stream's first trigger; cheap smoke check
	}
	_ = found
}

func TestRearrangedResizeShufflesTriangelStyle(t *testing.T) {
	// Triangel: rearranged, untagged, way-partitioned (RUW). Resizing
	// changes the two-level index function and shuffles most metadata.
	s := NewStore(triangelConfig(), llc2MB())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		tr := mem.Line(rng.Uint64() >> 16)
		s.Insert(0, 1, Entry{Trigger: tr, Targets: []mem.Line{tr + 1}})
	}
	occBefore := s.Occupancy()
	traffic := s.Resize(768 << 10) // 8 ways -> 6 ways
	if traffic == 0 {
		t.Fatal("RUW resize produced no shuffle traffic")
	}
	// Surviving entries remain reachable under the new index function.
	rng = rand.New(rand.NewSource(3))
	found := 0
	for i := 0; i < 5000; i++ {
		tr := mem.Line(rng.Uint64() >> 16)
		if _, ok, _ := s.Lookup(0, 1, tr); ok {
			found++
		}
	}
	if found == 0 {
		t.Error("no entries reachable after rearranged resize")
	}
	if s.Occupancy() > occBefore {
		t.Error("occupancy grew across a shrink")
	}
}

func TestSchemeNames(t *testing.T) {
	tests := []struct {
		cfg  StoreConfig
		want string
	}{
		{StoreConfig{Format: Pairwise, MaxBytes: 1 << 20}, "RUW"},
		{StoreConfig{Format: Pairwise, Filtered: true, MaxBytes: 1 << 20}, "FUW"},
		{StoreConfig{Format: Pairwise, Tagged: true, MaxBytes: 1 << 20}, "RTW"},
		{StoreConfig{Format: Stream, StreamLength: 4, Filtered: true, Tagged: true,
			SetPartitioned: true, MaxBytes: 1 << 20}, "FTS"},
		{StoreConfig{Format: Stream, StreamLength: 4, SetPartitioned: true,
			MaxBytes: 1 << 20}, "RUS"},
	}
	for _, tt := range tests {
		s := NewStore(tt.cfg, llc2MB())
		if got := s.SchemeName(); got != tt.want {
			t.Errorf("scheme = %q, want %q", got, tt.want)
		}
	}
}

func TestTaggedAssociativityBeatsUntagged(t *testing.T) {
	// Fill with many triggers mapping everywhere; tagged set-partitioning
	// gives 32-entry effective associativity vs the untagged two-level
	// index, so it should retain more of a reused trigger population.
	mk := func(tagged bool) *Store {
		cfg := streamlineConfig()
		cfg.Tagged = tagged
		return NewStore(cfg, llc2MB())
	}
	run := func(s *Store) float64 {
		rng := rand.New(rand.NewSource(4))
		hot := make([]mem.Line, 300000)
		for i := range hot {
			hot[i] = mem.Line(rng.Uint64() >> 16)
		}
		// Two passes: insert, then measure retention.
		for _, tr := range hot {
			s.Insert(0, 1, Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}})
		}
		found := 0
		for _, tr := range hot {
			if _, ok, _ := s.Lookup(0, 1, tr); ok {
				found++
			}
		}
		return float64(found) / float64(len(hot))
	}
	tagged, untagged := run(mk(true)), run(mk(false))
	if tagged <= untagged {
		t.Errorf("tagged retention %.3f <= untagged %.3f", tagged, untagged)
	}
}

func TestPartialTagAliasingRare(t *testing.T) {
	// Section V-D5: partial-tag aliasing constrains only ~3.8% of
	// correlations; our default tag width should keep it under 8%.
	s := NewStore(streamlineConfig(), llc2MB())
	rng := rand.New(rand.NewSource(5))
	const n = 100000
	for i := 0; i < n; i++ {
		tr := mem.Line(rng.Uint64() >> 16)
		s.Insert(0, 1, Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}})
	}
	frac := float64(s.Stats.AliasedInserts) / n
	if frac > 0.08 {
		t.Errorf("aliased insert fraction = %.3f, want <= 0.08", frac)
	}
	// Each additional tag bit should roughly halve aliasing.
	cfgNarrow := streamlineConfig()
	cfgNarrow.PartialTagBits = 6
	sn := NewStore(cfgNarrow, llc2MB())
	rng = rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		tr := mem.Line(rng.Uint64() >> 16)
		sn.Insert(0, 1, Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}})
	}
	if sn.Stats.AliasedInserts <= s.Stats.AliasedInserts {
		t.Error("narrower partial tags did not increase aliasing")
	}
}

func TestHybridPartitioningFiltersLess(t *testing.T) {
	// Section V-D6: at quarter size, set-partitioning filters 75% of
	// triggers; hybrid (halve sets AND ways) filters only 50%.
	mk := func(hybrid bool) *Store {
		cfg := streamlineConfig()
		cfg.Hybrid = hybrid
		s := NewStore(cfg, llc2MB())
		s.Resize(256 << 10)
		return s
	}
	measure := func(s *Store) float64 {
		rng := rand.New(rand.NewSource(6))
		filtered := 0
		const n = 8000
		for i := 0; i < n; i++ {
			if s.WouldFilter(mem.Line(rng.Uint64() >> 16)) {
				filtered++
			}
		}
		return float64(filtered) / n
	}
	pure, hybrid := measure(mk(false)), measure(mk(true))
	if pure < 0.7 || pure > 0.8 {
		t.Errorf("pure set-partitioned quarter-size filter rate = %.2f, want ~0.75", pure)
	}
	if hybrid < 0.45 || hybrid > 0.55 {
		t.Errorf("hybrid quarter-size filter rate = %.2f, want ~0.5", hybrid)
	}
}

func TestSkewedIndexingFiltersLess(t *testing.T) {
	mk := func(skew bool) *Store {
		cfg := streamlineConfig()
		cfg.Skewed = skew
		s := NewStore(cfg, llc2MB())
		s.Resize(256 << 10)
		return s
	}
	measure := func(s *Store) float64 {
		rng := rand.New(rand.NewSource(7))
		filtered := 0
		const n = 8000
		for i := 0; i < n; i++ {
			if s.WouldFilter(mem.Line(rng.Uint64() >> 16)) {
				filtered++
			}
		}
		return float64(filtered) / n
	}
	plain, skewed := measure(mk(false)), measure(mk(true))
	if skewed >= plain {
		t.Errorf("skewed filter rate %.2f >= plain %.2f", skewed, plain)
	}
}

func TestResizeUpdatesLLCReservations(t *testing.T) {
	type resv struct{ set, ways int }
	var calls []resv
	rec := &recordingBridge{NullBridge: *llc2MB(), onReserve: func(set, ways int) {
		calls = append(calls, resv{set, ways})
	}}
	s := NewStore(streamlineConfig(), rec)
	calls = nil
	s.Resize(0)
	zero := 0
	for _, c := range calls {
		if c.ways == 0 {
			zero++
		}
	}
	if zero != len(calls) || len(calls) == 0 {
		t.Errorf("resize(0) reserved nonzero ways: %d/%d zero", zero, len(calls))
	}
}

type recordingBridge struct {
	NullBridge
	onReserve func(set, ways int)
}

func (b *recordingBridge) ReserveWays(set, ways int) { b.onReserve(set, ways) }

func TestCapacityAtSizes(t *testing.T) {
	s := NewStore(streamlineConfig(), llc2MB())
	if got := s.CapacityCorrelations(); got != 16384*16 {
		t.Errorf("1MB stream capacity = %d correlations, want %d", got, 16384*16)
	}
	s.Resize(512 << 10)
	if got := s.CapacityCorrelations(); got != 8192*16 {
		t.Errorf("0.5MB stream capacity = %d, want %d", got, 8192*16)
	}
	tri := NewStore(triangelConfig(), llc2MB())
	if got := tri.CapacityCorrelations(); got != 16384*12 {
		t.Errorf("1MB pairwise capacity = %d, want %d", got, 16384*12)
	}
}

func TestEvictionWhenSetFull(t *testing.T) {
	// A tiny store: force evictions by inserting many triggers that map to
	// the same logical set.
	cfg := streamlineConfig()
	s := NewStore(cfg, llc2MB())
	// Find 40 triggers sharing one logical set (8 ways x 4 entries = 32).
	target := s.logicalSet(12345)
	var triggers []mem.Line
	for tr := mem.Line(0); len(triggers) < 40; tr++ {
		if s.logicalSet(tr) == target {
			triggers = append(triggers, tr)
		}
	}
	for _, tr := range triggers {
		s.Insert(0, 1, Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}})
	}
	if s.Stats.Evictions == 0 {
		t.Error("no evictions after overfilling a set")
	}
	if s.Stats.Evictions < 8 {
		t.Errorf("evictions = %d, want >= 8 (40 inserts into 32 slots)", s.Stats.Evictions)
	}
}

func TestInvalidEntryIgnored(t *testing.T) {
	s := NewStore(streamlineConfig(), llc2MB())
	if lat, _ := s.Insert(0, 1, Entry{Trigger: 1}); lat != 0 {
		t.Error("inserting an empty entry cost latency")
	}
	if s.Stats.Inserts != 0 {
		t.Error("empty entry was inserted")
	}
}

func TestFormatString(t *testing.T) {
	for _, f := range []Format{Pairwise, PairwiseCompressed, Stream, Format(99)} {
		if f.String() == "" {
			t.Errorf("Format(%d).String() empty", f)
		}
	}
}
