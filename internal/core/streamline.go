// Package core implements Streamline, the paper's on-chip temporal
// prefetcher. Streamline stores its metadata as length-4 streams instead of
// pairs (33% more correlations per block), locates entries with filtered
// tagged set-partitioning (32-entry effective associativity, no metadata
// rearrangement on resize), repairs stream misalignment with a per-PC
// 3-entry metadata buffer, recovers filtered triggers by realigning streams,
// replaces metadata with TP-Mockingjay (correlation-utility-aware), sizes
// its partition with accuracy-scored utility partitioning, and sets the
// prefetch degree from per-PC stream stability.
//
// Every mechanism can be disabled independently, which is how the paper's
// ablations (Figures 12, 14 and 15) are produced.
package core

import (
	"streamline/internal/mem"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
)

// Options configures Streamline. DefaultOptions returns the paper's design
// point; the Disable*/override fields produce the ablation variants.
type Options struct {
	// StreamLength is the targets per stream entry (4; Figure 12a sweeps).
	StreamLength int
	// TUSize is the number of training-unit entries.
	TUSize int
	// MetaBufferSize is the per-PC stream metadata buffer capacity
	// (3; Figure 12c sweeps; 0 disables it, the "- MB" ablation).
	MetaBufferSize int
	// MaxDegree bounds prefetching (defaults to StreamLength).
	MaxDegree int
	// MetaBytes is the maximum metadata partition size (1MB).
	MetaBytes int
	// FixedBytes pins the partition size and disables dynamic
	// partitioning when positive.
	FixedBytes int
	// MinSets is the permanently allocated metadata set count (64), the
	// floor that keeps sampling alive at the 0MB decision.
	MinSets int
	// InstabilityEpoch is the per-PC degree-control period (1024).
	InstabilityEpoch int
	// DegreeCuts are the instability thresholds: fewer than DegreeCuts[0]
	// buffer insertions per epoch prefetches at full degree, and so on
	// (400/600/800).
	DegreeCuts [3]int
	// ResizeEpoch is the partitioner period in sampled accesses (2^15).
	ResizeEpoch uint64

	// DisableAlignment turns off stream alignment (the "- SA" ablation).
	DisableAlignment bool
	// DisableRealignment turns off filtered-trigger realignment
	// (Figure 15's filtering-loss arm).
	DisableRealignment bool
	// DisableDegreeControl pins the degree at MaxDegree.
	DisableDegreeControl bool
	// WayPartitioned swaps the FTS store for an untagged way-partitioned
	// one (the "- TSP" ablation / Streamline-unopt base).
	WayPartitioned bool
	// Unfiltered uses rearranged indexing instead of filtered.
	Unfiltered bool
	// Skewed and Hybrid enable the Section V-D6 filtering mitigations.
	Skewed bool
	Hybrid bool
	// Policy overrides metadata replacement (nil: TP-Mockingjay; the
	// "- TP-MJ" ablation passes meta.NewEntrySRRIP).
	Policy meta.EntryPolicyFactory
	// EqualWeights scores metadata hits like Triangel's partitioner
	// instead of by prefetch accuracy (the Section V-D3 comparison).
	EqualWeights bool
	// Bypass enables the metadata bypass extension (see bypass.go):
	// PCs whose metadata is never reused — scans — stop inserting,
	// addressing the mcf weakness Section V-B1 reports.
	Bypass bool
}

// DefaultOptions returns the paper's Streamline configuration.
func DefaultOptions() Options {
	return Options{
		StreamLength:     4,
		TUSize:           256,
		MetaBufferSize:   3,
		MetaBytes:        1 << 20,
		MinSets:          64,
		InstabilityEpoch: 1024,
		DegreeCuts:       [3]int{400, 600, 800},
		ResizeEpoch:      1 << 15,
	}
}

// UnoptOptions returns Streamline-unopt (Figure 14): only the stream-based
// metadata format, with Triangel-style management everywhere else.
func UnoptOptions() Options {
	o := DefaultOptions()
	o.MetaBufferSize = 0
	o.DisableAlignment = true
	o.WayPartitioned = true
	o.Unfiltered = true
	o.Policy = meta.NewEntrySRRIP
	o.EqualWeights = true
	return o
}

// Stats counts Streamline-specific events (store-level counts live in the
// meta.Stats of the underlying store).
type Stats struct {
	// CompletedStreams counts stream entries finished by the TU.
	CompletedStreams uint64
	// AlignmentOpportunities counts completed entries whose trigger was
	// found in the metadata buffer (an overlap existed).
	AlignmentOpportunities uint64
	// Alignments counts entries merged by stream alignment.
	Alignments uint64
	// Realignments counts filtered triggers recovered by shifting the
	// stream window back; RealignFailures counts unrecoverable ones.
	Realignments    uint64
	RealignFailures uint64
	// BufferHits/BufferMisses count prefetch-side metadata buffer probes.
	BufferHits     uint64
	BufferMisses   uint64
	StoreFetches   uint64 // buffer misses that hit the store
	DegreeSettings [5]uint64
	// BypassedInserts counts entries the bypass extension kept out of the
	// metadata store (zero unless Options.Bypass).
	BypassedInserts uint64
}

// AlignmentRate returns alignments over opportunities.
func (s Stats) AlignmentRate() float64 {
	if s.AlignmentOpportunities == 0 {
		return 0
	}
	return float64(s.Alignments) / float64(s.AlignmentOpportunities)
}

// mbSlot is one metadata-buffer entry.
type mbSlot struct {
	valid bool
	e     meta.Entry
	lru   uint64
}

// tuEntry is one PC's training-unit state.
type tuEntry struct {
	tag   uint32
	valid bool

	// The stream entry under construction.
	cur meta.Entry

	// History of recent accesses (stream length + 2) for realignment.
	hist  []mem.Line
	histN int

	// Per-PC stream metadata buffer.
	mb []mbSlot

	// Recently issued prefetch lines: used to detect whether the demand
	// stream is following the prefetched path and to avoid duplicates.
	issued    [64]mem.Line
	issuedIdx int

	// The prefetch cursor: the stream position up to which prefetches
	// have been issued. It persists across events so each event continues
	// from where the last one stopped (usually a buffer hit on the same
	// entry) instead of re-walking the whole chain through the store.
	cursor mem.Line
	lead   int // issued-but-not-yet-demanded count (bounds the cursor)

	// Stability-based degree control.
	accessCtr int
	insertCtr int
	degree    int
}

// Prefetcher is the Streamline temporal prefetcher.
type Prefetcher struct {
	opt   Options
	store *meta.Store
	part  *meta.Partitioner

	tu    []tuEntry
	clock uint64

	minBytes int
	bypass   *bypassState // nil unless Options.Bypass

	// Scratch target buffers reused across train calls so the hot path
	// does not allocate. Each backs at most one live Entry at a time:
	// trainBuf the completed stream, realignBuf a realigned copy of it,
	// alignBuf the merge of a buffered entry with the fresh one. Every
	// consumer (store.Insert, mbInsert) copies the targets it keeps.
	trainBuf   []mem.Line
	realignBuf []mem.Line
	alignBuf   []mem.Line

	Stats Stats
}

// New constructs Streamline over the given LLC metadata bridge.
func New(opt Options, bridge meta.Bridge) *Prefetcher {
	if opt.StreamLength <= 0 {
		opt = DefaultOptions()
	}
	if opt.MaxDegree <= 0 {
		opt.MaxDegree = opt.StreamLength
	}
	if opt.TUSize <= 0 {
		opt.TUSize = 256
	}
	if opt.MetaBufferSize == 0 {
		// The instability metric counts metadata-buffer insertions; with
		// no buffer every access inserts, which would read as maximal
		// instability. Bufferless variants (the "- MB" ablation) use a
		// fixed degree instead.
		opt.DisableDegreeControl = true
	}
	storeCfg := meta.StoreConfig{
		Format:         meta.Stream,
		StreamLength:   opt.StreamLength,
		Tagged:         !opt.WayPartitioned,
		Filtered:       !opt.Unfiltered,
		SetPartitioned: !opt.WayPartitioned,
		Skewed:         opt.Skewed,
		Hybrid:         opt.Hybrid,
		MetaWaysPerSet: 8,
		MaxBytes:       opt.MetaBytes,
		Policy:         opt.Policy,
	}
	if storeCfg.Policy == nil {
		storeCfg.Policy = NewTPMockingjay
	}
	p := &Prefetcher{
		opt:   opt,
		store: meta.NewStore(storeCfg, bridge),
		tu:    make([]tuEntry, opt.TUSize),
	}
	p.minBytes = opt.MinSets * 8 * mem.LineSize
	if p.minBytes > opt.MetaBytes {
		p.minBytes = opt.MetaBytes
	}

	_, llcWays := bridge.Geometry()
	weight := meta.StreamlineMetaWeight
	if opt.EqualWeights {
		weight = meta.EqualMetaWeight
	}
	mode := meta.SetMode
	if opt.WayPartitioned {
		mode = meta.WayMode
	}
	p.part = meta.NewPartitioner(meta.PartitionerConfig{
		Mode:            mode,
		Sizes:           []int{0, opt.MetaBytes / 2, opt.MetaBytes},
		MaxBytes:        opt.MetaBytes,
		LLCWays:         llcWays,
		MetaWaysPerSet:  8,
		EntriesPerBlock: meta.EntriesPerBlock(meta.Stream, opt.StreamLength),
		EpochAccesses:   opt.ResizeEpoch,
		DataWeight:      16,
		MetaWeight:      weight,
	})
	if opt.FixedBytes > 0 {
		p.store.Resize(opt.FixedBytes)
	}
	if opt.Bypass {
		p.bypass = newBypassState()
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "streamline" }

// MetaStats implements prefetch.MetaReporter.
func (p *Prefetcher) MetaStats() meta.Stats { return p.store.Stats }

// Store exposes the metadata store for experiments.
func (p *Prefetcher) Store() *meta.Store { return p.store }

// ObserveAccuracy implements prefetch.AccuracyConsumer: the utility-aware
// partitioner scores metadata hits by epoch prefetch accuracy.
func (p *Prefetcher) ObserveAccuracy(acc float64) { p.part.ObserveAccuracy(acc) }

// ObserveLLCData implements prefetch.LLCDataObserver.
func (p *Prefetcher) ObserveLLCData(set int, line mem.Line) {
	if p.opt.FixedBytes > 0 {
		return
	}
	p.part.ObserveData(set, line)
}

func (p *Prefetcher) tuFor(pc mem.PC) *tuEntry {
	idx := int(mem.HashPC(pc, 16)) % len(p.tu)
	tag := uint32(mem.HashPC(pc, 24))
	tu := &p.tu[idx]
	if !tu.valid || tu.tag != tag {
		*tu = tuEntry{
			tag:    tag,
			valid:  true,
			hist:   make([]mem.Line, p.opt.StreamLength+2),
			mb:     make([]mbSlot, p.opt.MetaBufferSize),
			degree: p.opt.MaxDegree,
		}
		tu.cur.Targets = make([]mem.Line, 0, p.opt.StreamLength)
	}
	return tu
}

// ---- metadata buffer ----------------------------------------------------

// mbFind locates addr within a buffered entry, returning the entry, its
// position (0 = trigger), and whether it was found somewhere other than the
// final position (final-position hits carry no successor information and,
// for alignment, no overlap).
func (tu *tuEntry) mbFind(addr mem.Line) (slot *mbSlot, pos int, ok bool) {
	for i := range tu.mb {
		s := &tu.mb[i]
		if !s.valid {
			continue
		}
		if s.e.Trigger == addr {
			return s, 0, true
		}
		for j, t := range s.e.Targets {
			if t == addr && j < len(s.e.Targets)-1 {
				return s, j + 1, true
			}
		}
	}
	return nil, 0, false
}

func (p *Prefetcher) mbInsert(tu *tuEntry, e meta.Entry) {
	if len(tu.mb) == 0 {
		return
	}
	p.clock++
	victim := 0
	for i := range tu.mb {
		s := &tu.mb[i]
		if s.valid && s.e.Trigger == e.Trigger {
			s.setEntry(e, p.clock)
			return
		}
		if !s.valid {
			victim = i
			break
		}
		if s.lru < tu.mb[victim].lru {
			victim = i
		}
	}
	tu.mb[victim].setEntry(e, p.clock)
	tu.mb[victim].valid = true
}

// setEntry copies e into the slot, reusing the slot's target buffer: the
// entries handed to mbInsert are backed by scratch buffers (the store's
// lookup buffer, the training unit's stream scratch) that the next store
// or train operation overwrites.
func (s *mbSlot) setEntry(e meta.Entry, clock uint64) {
	s.e.Trigger = e.Trigger
	s.e.Conf = e.Conf
	s.e.Targets = append(s.e.Targets[:0], e.Targets...)
	s.lru = clock
}

// ---- training -----------------------------------------------------------

// pushHist records an access for realignment.
func (tu *tuEntry) pushHist(l mem.Line) {
	copy(tu.hist[1:], tu.hist[:len(tu.hist)-1])
	tu.hist[0] = l
	if tu.histN < len(tu.hist) {
		tu.histN++
	}
}

// train appends the access to the PC's current stream and writes completed
// entries back, performing stream alignment and filtered-trigger
// realignment.
func (p *Prefetcher) train(now uint64, pc mem.PC, tu *tuEntry, line mem.Line) {
	if tu.cur.Trigger == 0 && len(tu.cur.Targets) == 0 {
		tu.cur.Trigger = line
		return
	}
	if tu.cur.Trigger == line && len(tu.cur.Targets) == 0 {
		return // duplicate trigger access; no self-correlation
	}
	tu.cur.Targets = append(tu.cur.Targets, line)
	if len(tu.cur.Targets) < p.opt.StreamLength {
		return
	}

	// The entry is complete.
	p.Stats.CompletedStreams++
	p.trainBuf = append(p.trainBuf[:0], tu.cur.Targets...)
	e := meta.Entry{Trigger: tu.cur.Trigger, Targets: p.trainBuf}

	// Filtered-trigger realignment (Section IV-C): shift the stream
	// window back through recent history until the trigger lands in the
	// partition.
	if p.store.WouldFilter(e.Trigger) && !p.opt.DisableRealignment {
		if re, ok := p.realign(tu, e); ok {
			p.Stats.Realignments++
			e = re
		} else {
			p.Stats.RealignFailures++
		}
	}

	// Stream alignment (Section IV-B2): merge with an overlapping buffered
	// entry so the old trigger keeps prefetching the updated stream. The
	// fresh entry's leftover correlations bootstrap the next entry.
	nextTrigger := line
	var leftover []mem.Line
	if !p.opt.DisableAlignment {
		if old, pos, ok := tu.mbFind(e.Trigger); ok {
			p.Stats.AlignmentOpportunities++
			if aligned, consumed, ok2 := alignStreams(old.e, pos, e, p.opt.StreamLength, p.alignBuf); ok2 {
				p.Stats.Alignments++
				p.alignBuf = aligned.Targets[:0]
				if consumed < len(e.Targets) {
					leftover = e.Targets[consumed:]
					nextTrigger = aligned.Targets[len(aligned.Targets)-1]
				}
				e = aligned
			}
		}
	}

	if p.bypass != nil {
		p.bypass.observeCompleted(pc, e.Trigger)
	}
	if p.bypass == nil || !p.bypass.shouldBypass(pc) {
		p.store.Insert(now, pc, e)
		if p.opt.FixedBytes == 0 {
			p.part.ObserveTrigger(p.store.LogicalSetOf(e.Trigger), e.Trigger)
		}
	} else {
		p.Stats.BypassedInserts++
	}
	p.mbInsert(tu, e)

	// The final address (or the alignment leftover) bootstraps the next
	// entry, keeping the stream chain contiguous.
	tu.cur.Trigger = nextTrigger
	tu.cur.Targets = tu.cur.Targets[:0]
	tu.cur.Targets = append(tu.cur.Targets, leftover...)
}

// realign rebuilds the completed entry with an earlier trigger from the
// access history so that filtered indexing does not discard it.
func (p *Prefetcher) realign(tu *tuEntry, e meta.Entry) (meta.Entry, bool) {
	// hist[0] is the current access (the entry's final target); the
	// window [trigger, t1..tK] occupies hist[K..0]. Shifting back by s
	// uses hist[K+s] as trigger.
	k := p.opt.StreamLength
	for shift := 1; k+shift < tu.histN; shift++ {
		cand := tu.hist[k+shift]
		if p.store.WouldFilter(cand) {
			continue
		}
		re := meta.Entry{Trigger: cand, Targets: p.realignBuf[:0]}
		for j := k + shift - 1; j >= shift && len(re.Targets) < k; j-- {
			re.Targets = append(re.Targets, tu.hist[j])
		}
		p.realignBuf = re.Targets[:0]
		if len(re.Targets) == k {
			return re, true
		}
	}
	return meta.Entry{}, false
}

// alignStreams merges an old entry with a new overlapping one: the aligned
// entry keeps the old trigger and the old prefix up to the overlap point,
// then continues with the new entry's updated correlations (Figure 3b). It
// returns the aligned entry and how many of the fresh entry's targets it
// consumed — the rest bootstrap the next entry. The aligned targets are
// built in buf (which must not alias either input's targets).
func alignStreams(old meta.Entry, pos int, fresh meta.Entry, k int, buf []mem.Line) (meta.Entry, int, bool) {
	if pos >= 1+len(old.Targets) {
		return meta.Entry{}, 0, false
	}
	aligned := meta.Entry{Trigger: old.Trigger, Targets: buf[:0]}
	// Old prefix: targets before the overlap position.
	for j := 0; j < pos-1 && j < len(old.Targets); j++ {
		aligned.Targets = append(aligned.Targets, old.Targets[j])
	}
	if pos >= 1 {
		// The overlap address itself (the fresh entry's trigger).
		aligned.Targets = append(aligned.Targets, fresh.Trigger)
	}
	consumed := 0
	for _, t := range fresh.Targets {
		if len(aligned.Targets) >= k {
			break
		}
		aligned.Targets = append(aligned.Targets, t)
		consumed++
	}
	if len(aligned.Targets) == 0 {
		return meta.Entry{}, 0, false
	}
	return aligned, consumed, true
}

// ---- prefetching ---------------------------------------------------------

// wasIssued reports whether the PC recently issued a prefetch for l.
func (tu *tuEntry) wasIssued(l mem.Line) bool {
	for _, x := range tu.issued {
		if x == l {
			return true
		}
	}
	return false
}

func (tu *tuEntry) markIssued(l mem.Line) {
	tu.issued[tu.issuedIdx] = l
	tu.issuedIdx = (tu.issuedIdx + 1) % len(tu.issued)
}

// maxLead bounds how many issued-but-unconsumed prefetches a PC may have
// outstanding — the prefetch distance, in stream positions. It also bounds
// how much work a wrong-path excursion (a chain hop through an ambiguous
// trigger) can waste before the demand stream re-anchors the cursor.
const maxLead = 16

// prefetchChain issues up to the PC's degree of new prefetch requests,
// continuing from the persistent stream cursor. Because the cursor usually
// sits inside a buffered entry, a stable PC performs about one metadata
// fetch per stream length of accesses — the stability property Section
// IV-E6's degree controller measures. When the demand stream leaves the
// prefetched path, the cursor re-anchors at the demand line.
func (p *Prefetcher) prefetchChain(now uint64, pc mem.PC, tu *tuEntry, line mem.Line, out []prefetch.Request) []prefetch.Request {
	deg := tu.degree
	if p.opt.DisableDegreeControl {
		deg = p.opt.MaxDegree
	}
	if deg <= 0 {
		return out
	}
	// Track whether the demand stream follows the prefetched path.
	if tu.wasIssued(line) {
		if tu.lead > 0 {
			tu.lead--
		}
	} else {
		// Off the prefetched path: re-anchor at the demand line.
		tu.cursor = line
		tu.lead = 0
	}
	if tu.cursor == 0 {
		tu.cursor = line
	}
	// The demand's own buffer position is authoritative: if the cursor's
	// entry no longer contains the demand's forward path (a wrong-path
	// excursion through an ambiguous trigger), snap back to it.
	if _, _, ok := tu.mbFind(tu.cursor); !ok {
		if _, _, ok := tu.mbFind(line); ok {
			tu.cursor = line
			tu.lead = 0
		}
	}
	issued := 0
	cur := tu.cursor
	var delay uint64
	for hops := 0; issued < deg && tu.lead < maxLead && hops < 3; hops++ {
		slot, pos, ok := tu.mbFind(cur)
		var entry meta.Entry
		if ok {
			p.Stats.BufferHits++
			entry = slot.e
		} else {
			p.Stats.BufferMisses++
			// Every buffer miss costs a metadata read attempt — the
			// instability signal of Section IV-E6 — whether or not the
			// trigger is resident.
			tu.insertCtr++
			if p.bypass != nil {
				p.bypass.observeLookup(cur)
			}
			e, found, lat := p.store.Lookup(now+delay, pc, cur)
			if !found {
				break
			}
			p.Stats.StoreFetches++
			delay += lat
			entry = e
			pos = 0
			p.mbInsert(tu, entry)
		}
		// An unconfirmed entry (its trigger recurs with different
		// continuations, or it has not yet been re-validated by a second
		// store) rates only a single cautious prefetch; confirmed entries
		// — and buffer hits, whose match is position-verified context —
		// get the full degree. The confidence bit is what keeps hops
		// through ambiguous triggers from prefetching some other
		// instance's stream.
		budget := deg
		if !ok && !entry.Conf {
			budget = issued + 1
		}
		next := cur
		for j := pos; j < len(entry.Targets) && issued < budget && issued < deg && tu.lead < maxLead; j++ {
			t := entry.Targets[j]
			next = t
			if tu.wasIssued(t) {
				continue // already in flight
			}
			out = append(out, prefetch.Request{Addr: mem.AddrOf(t), Delay: delay})
			tu.markIssued(t)
			issued++
			tu.lead++
		}
		if !ok && !entry.Conf {
			break // do not chain past an unconfirmed entry
		}
		if next == cur {
			break
		}
		cur = next
		tu.cursor = next
	}
	return out
}

// updateDegree applies stability-based degree control (Section IV-E6).
func (p *Prefetcher) updateDegree(tu *tuEntry) {
	tu.accessCtr++
	if tu.accessCtr < p.opt.InstabilityEpoch {
		return
	}
	// Scale thresholds to the epoch length so shorter test epochs work.
	scale := func(cut int) int { return cut * p.opt.InstabilityEpoch / 1024 }
	ins := tu.insertCtr
	switch {
	case ins < scale(p.opt.DegreeCuts[0]):
		tu.degree = p.opt.MaxDegree
	case ins < scale(p.opt.DegreeCuts[1]):
		tu.degree = max(1, p.opt.MaxDegree-1)
	case ins < scale(p.opt.DegreeCuts[2]):
		tu.degree = max(1, p.opt.MaxDegree-2)
	default:
		tu.degree = 1
	}
	if tu.degree < len(p.Stats.DegreeSettings) {
		p.Stats.DegreeSettings[tu.degree]++
	}
	tu.accessCtr = 0
	tu.insertCtr = 0
}

// ---- top level ------------------------------------------------------------

// Train implements prefetch.Prefetcher: called on L2 misses and prefetch
// hits (Figure 8's training and prefetch flows).
func (p *Prefetcher) Train(ev prefetch.Event, out []prefetch.Request) []prefetch.Request {
	line := ev.Line()
	tu := p.tuFor(ev.PC)

	tu.pushHist(line)
	p.train(ev.Now, ev.PC, tu, line)
	out = p.prefetchChain(ev.Now, ev.PC, tu, line, out)
	if !p.opt.DisableDegreeControl {
		p.updateDegree(tu)
	}
	p.maybeResize()
	return out
}

// maybeResize applies the utility-aware partitioner's epoch decisions,
// honoring the permanently allocated minimum sets.
func (p *Prefetcher) maybeResize() {
	if p.opt.FixedBytes > 0 {
		return
	}
	size, changed := p.part.Tick()
	if !changed {
		return
	}
	if size < p.minBytes {
		size = p.minBytes
	}
	p.store.Resize(size)
}
