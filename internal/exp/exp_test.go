package exp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"streamline/internal/mem"
	"streamline/internal/meta"
	"streamline/internal/workloads"
)

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig9", "fig10a", "fig10b", "fig10c", "fig10de", "fig10f",
		"fig11ab", "fig11cd",
		"fig12a", "fig12b", "fig12c",
		"fig13a", "fig13b", "fig13c",
		"fig14", "fig15",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestAllSorted(t *testing.T) {
	es := All()
	for i := 1; i < len(es); i++ {
		if es[i-1].ID >= es[i].ID {
			t.Fatalf("All() unsorted at %q >= %q", es[i-1].ID, es[i].ID)
		}
	}
}

func TestGeomeanProperties(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if Geomean(nil) != 0 {
		t.Error("Geomean(nil) != 0")
	}
	// Scale invariance: geomean(kx) = k*geomean(x).
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a)/16 + 0.1, float64(b)/16 + 0.1, float64(c)/16 + 0.1}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 3
		}
		return math.Abs(Geomean(scaled)-3*Geomean(xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := Table{
		ID: "t", Title: "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tb.AddRow("x", F(1.5))
	tb.AddRow("longer-label", Pct(0.25))
	s := tb.String()
	for _, want := range []string{"demo", "longer-label", "1.500", "25.0%", "a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestScaleWorkloadLists(t *testing.T) {
	if len(Small.workloadList()) != len(Small.Workloads) {
		t.Error("Small workload list does not match its subset")
	}
	irr := Small.irregular()
	if len(irr) == 0 {
		t.Fatal("no irregular workloads in Small scale")
	}
	for _, w := range irr {
		if !w.Irregular {
			t.Errorf("%s in irregular subset but not flagged", w.Name)
		}
	}
	// Paper scale covers all registered workloads.
	if len(Paper.workloadList()) != len(workloads.All()) {
		t.Error("Paper scale should cover every workload")
	}
}

func TestBaseConfigScaling(t *testing.T) {
	cfg := Small.baseConfig(2)
	if cfg.LLC.Sets != Small.LLCSets {
		t.Errorf("LLC sets = %d", cfg.LLC.Sets)
	}
	base := Paper.baseConfig(1)
	if got := cfg.DRAM.Channels; got <= base.DRAM.Channels {
		t.Errorf("Small scale did not boost DRAM channels: %d", got)
	}
}

func TestRedundancyMeasure(t *testing.T) {
	// Two entries sharing the pair (2,3) under DIFFERENT contexts: benign.
	entries := []meta.Entry{
		{Trigger: 1, Targets: []mem.Line{2, 3, 4, 5}},
		{Trigger: 9, Targets: []mem.Line{2, 3, 6, 7}},
	}
	red, benign := redundancy(entries)
	if red <= 0 {
		t.Fatal("no redundancy detected for duplicated pair")
	}
	if benign != 1 {
		t.Errorf("benign share = %v, want 1 (contexts differ)", benign)
	}
	// Identical entries: redundancy with identical context is not benign.
	dup := []meta.Entry{
		{Trigger: 1, Targets: []mem.Line{2, 3, 4, 5}},
		{Trigger: 1, Targets: []mem.Line{2, 3, 4, 5}},
	}
	_, benignDup := redundancy(dup)
	if benignDup != 0 {
		t.Errorf("benign share of identical duplicates = %v, want 0", benignDup)
	}
	if r, b := redundancy(nil); r != 0 || b != 0 {
		t.Error("empty store should have zero redundancy")
	}
}

func TestCorrelationStream(t *testing.T) {
	w, err := workloads.Get("sphinx06")
	if err != nil {
		t.Fatal(err)
	}
	stream := correlationStream(w, Small, 5000)
	if len(stream) != 5000 {
		t.Fatalf("got %d correlations, want 5000", len(stream))
	}
	for i, c := range stream[:100] {
		if c.Trigger == c.Target {
			t.Errorf("correlation %d is a self-loop", i)
		}
	}
}

func TestRunnerMemoization(t *testing.T) {
	sc := Small
	sc.Workloads = []string{"bzip206"}
	sc.Warmup = 50_000
	sc.Measure = 100_000
	r := NewRunner(sc)
	arm := baseArm("stride", "")
	a := r.Run(arm, "bzip206")
	b := r.Run(arm, "bzip206")
	if a.Cores[0].Cycles != b.Cores[0].Cycles {
		t.Error("memoized run returned different result")
	}
	if len(r.memo) != 1 {
		t.Errorf("memo has %d entries, want 1", len(r.memo))
	}
}

func TestArmsProduceDistinctConfigs(t *testing.T) {
	sc := Small
	base := baseArm("stride", "")
	tri := triangelArm("triangel", "stride", "", nil)
	str := streamlineArm("streamline", "stride", "", nil)
	for _, arm := range []Arm{base, tri, str} {
		cfg := sc.baseConfig(1)
		arm.Apply(&cfg, sc)
		switch arm.Name {
		case "base+stride":
			if cfg.Temporal != nil {
				t.Error("base arm has a temporal prefetcher")
			}
		default:
			if cfg.Temporal == nil {
				t.Errorf("%s arm missing temporal prefetcher", arm.Name)
			}
		}
	}
}

func TestSchemeRetentionOrdering(t *testing.T) {
	// Tagged schemes must retain at least as much as untagged ones at the
	// big partition (the Table I associativity claim).
	cfgU := meta.StoreConfig{Format: meta.Stream, StreamLength: 4,
		SetPartitioned: true, MetaWaysPerSet: 8, MaxBytes: 128 << 10}
	cfgT := cfgU
	cfgT.Tagged = true
	u := schemeRetention(cfgU, 256, 16, 128<<10, 1)
	tg := schemeRetention(cfgT, 256, 16, 128<<10, 1)
	if tg < u {
		t.Errorf("tagged retention %.3f < untagged %.3f", tg, u)
	}
}
