package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"streamline/internal/telemetry"
)

// telemetryConfig is the instrumentation test system: an L1 stride engine
// plus a Streamline temporal prefetcher, so all three attribution sources and
// the metadata samples are exercised.
func telemetryConfig() Config {
	cfg := smallConfig(1)
	cfg.L1DPrefetcher = strideFactory
	cfg.Temporal = streamlineFactory
	return cfg
}

func TestTelemetryDoesNotPerturbResult(t *testing.T) {
	plain := New(telemetryConfig()).RunTrace(traceFor(t, "sphinx06", 31))

	var buf bytes.Buffer
	cfg := telemetryConfig()
	col := telemetry.New(telemetry.NewSink(&buf), 50_000)
	cfg.Telemetry = col
	inst := New(cfg).RunTrace(traceFor(t, "sphinx06", 31))
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, inst) {
		t.Errorf("instrumented result differs from plain result:\nplain: %+v\ninstr: %+v",
			plain.Cores[0], inst.Cores[0])
	}
	if buf.Len() == 0 {
		t.Error("instrumented run wrote no telemetry")
	}
}

func TestTelemetryOutputDeterministic(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		cfg := telemetryConfig()
		sink := telemetry.NewSink(&buf)
		sink.SetMinSeverity(telemetry.Debug)
		col := telemetry.New(sink, 50_000)
		cfg.Telemetry = col
		New(cfg).RunTrace(traceFor(t, "mcf06", 32))
		if err := col.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("two instrumented runs produced different JSONL (%d vs %d bytes)", len(a), len(b))
	}
}

func TestIntervalRecordsPerCore(t *testing.T) {
	const interval = 50_000
	cfg := smallConfig(2)
	cfg.L1DPrefetcher = strideFactory
	cfg.MeasureInstructions = 200_000

	var buf bytes.Buffer
	col := telemetry.New(telemetry.NewSink(&buf), interval)
	col.KeepIntervals()
	cfg.Telemetry = col
	sys := New(cfg)
	sys.SetTrace(0, traceFor(t, "sphinx06", 33))
	sys.SetTrace(1, traceFor(t, "libquantum06", 33))
	sys.Run()
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	recs := col.Intervals()
	wantPerCore := int(cfg.MeasureInstructions / interval)
	perCore := map[int][]telemetry.IntervalRecord{}
	for _, r := range recs {
		perCore[r.Core] = append(perCore[r.Core], r)
	}
	for core := 0; core < 2; core++ {
		rs := perCore[core]
		if len(rs) < wantPerCore {
			t.Fatalf("core %d: %d interval records, want >= %d", core, len(rs), wantPerCore)
		}
		var prev telemetry.IntervalRecord
		for i, r := range rs {
			if r.Seq != i {
				t.Errorf("core %d record %d: seq = %d", core, i, r.Seq)
			}
			if i == 0 {
				prev = r
				continue
			}
			if r.Instructions <= prev.Instructions {
				t.Errorf("core %d seq %d: instructions %d not increasing (prev %d)",
					core, r.Seq, r.Instructions, prev.Instructions)
			}
			// Every cumulative counter must be monotonically non-decreasing.
			if r.Cum.L1DMisses < prev.Cum.L1DMisses ||
				r.Cum.L2Misses < prev.Cum.L2Misses ||
				r.Cum.PrefetchesIssued < prev.Cum.PrefetchesIssued ||
				r.Cum.PrefetchFills < prev.Cum.PrefetchFills ||
				r.Cum.UsefulPrefetches < prev.Cum.UsefulPrefetches ||
				r.Cum.DRAMReads < prev.Cum.DRAMReads ||
				r.Cum.DRAMWrites < prev.Cum.DRAMWrites ||
				r.Cum.MetaTraffic < prev.Cum.MetaTraffic {
				t.Errorf("core %d seq %d: cumulative counter decreased: %+v -> %+v",
					core, r.Seq, prev.Cum, r.Cum)
			}
			prev = r
		}
	}

	// The JSONL stream must hold the same records, one parseable object per
	// line, intervals never filtered.
	var intervals int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("unparseable JSONL line: %v\n%s", err, line)
		}
		if probe.Type == "interval" {
			intervals++
		}
	}
	if intervals != len(recs) {
		t.Errorf("sink holds %d interval records, collector retained %d", intervals, len(recs))
	}
}

func TestAttributionConsistentWithCacheStats(t *testing.T) {
	cfg := telemetryConfig()
	res := New(cfg).RunTrace(traceFor(t, "sphinx06", 34))
	c := res.Cores[0]

	var issued, dropped, fills, timely, late, evicted uint64
	for _, p := range c.Prefetchers {
		issued += p.Issued
		dropped += p.DroppedDuplicate
		fills += p.Fills
		timely += p.UsefulTimely
		late += p.UsefulLate
		evicted += p.EvictedUnused
	}
	if issued != c.PrefetchesIssued {
		t.Errorf("per-source issued sum %d != PrefetchesIssued %d", issued, c.PrefetchesIssued)
	}
	if want := c.L1D.PrefetchFills + c.L2.PrefetchFills; fills != want {
		t.Errorf("per-source fills sum %d != L1D+L2 prefetch fills %d", fills, want)
	}
	if want := c.L1D.UsefulPrefetches + c.L2.UsefulPrefetches; timely+late != want {
		t.Errorf("per-source useful sum %d != L1D+L2 useful prefetches %d", timely+late, want)
	}
	if want := c.L1D.UnusedPrefetches + c.L2.UnusedPrefetches; evicted != want {
		t.Errorf("per-source evicted-unused sum %d != L1D+L2 unused prefetches %d", evicted, want)
	}
	if fills == 0 || timely+late == 0 {
		t.Error("attribution test exercised no prefetches")
	}
	// The temporal engine must dominate on a pointer chase.
	var temporal PrefetcherResult
	for _, p := range c.Prefetchers {
		if p.Source == "temporal" {
			temporal = p
		}
	}
	if temporal.Fills == 0 || temporal.Accuracy() <= 0 {
		t.Errorf("temporal attribution empty: %+v", temporal)
	}
}

func TestEventTraceCarriesAccuracyEpochs(t *testing.T) {
	var buf bytes.Buffer
	cfg := telemetryConfig()
	col := telemetry.New(telemetry.NewSink(&buf), 0) // events only
	cfg.Telemetry = col
	New(cfg).RunTrace(traceFor(t, "sphinx06", 35))
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	var epochs int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e telemetry.EventRecord
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("unparseable JSONL line: %v\n%s", err, line)
		}
		if e.Type == "event" && e.Event == "accuracy-epoch" {
			epochs++
			if e.Component != "sim" || e.Severity != "info" {
				t.Errorf("accuracy-epoch misattributed: %+v", e)
			}
		}
	}
	if epochs == 0 {
		t.Error("no accuracy-epoch events recorded for a temporal-prefetcher run")
	}
}
