package check

import (
	"math/rand"
	"reflect"
	"testing"

	"streamline/internal/cache"
	"streamline/internal/mem"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/stride"
	"streamline/internal/sim"
	"streamline/internal/trace"
	"streamline/internal/workloads"
)

// Metamorphic tests: instead of checking one run against an invariant, they
// relate two runs under a transform whose effect on the result is known
// exactly. These catch bugs no single-run check can — a measured-window
// snapshot taken one record early, or replacement state that secretly
// depends on absolute addresses, shifts one side of the relation.

// TestMetamorphicTranslation: shifting every line address by a multiple of
// the set count permutes tags within each set but changes no set index, so
// the cache's entire decision sequence — and therefore all of its counters
// — must be exactly invariant.
func TestMetamorphicTranslation(t *testing.T) {
	for _, shift := range []mem.Line{64, 64 * 3, 64 * 1024} {
		base := cache.New(cache.Config{Name: "base", Sets: 64, Ways: 4, Latency: 10})
		moved := cache.New(cache.Config{Name: "moved", Sets: 64, Ways: 4, Latency: 10})
		rng := rand.New(rand.NewSource(7))
		var now uint64
		for i := 0; i < 30000; i++ {
			now += uint64(rng.Intn(3))
			l := mem.Line(rng.Intn(1024))
			kind := mem.Load
			switch rng.Intn(6) {
			case 1:
				kind = mem.Store
			case 2:
				kind = mem.Prefetch
			}
			// One rng draw per iteration so both caches replay identical
			// choices.
			pfReady := now + uint64(rng.Intn(50))
			run := func(c *cache.Cache, l mem.Line) {
				a := mem.Access{PC: 0x400400, Addr: mem.AddrOf(l), Kind: kind}
				if kind == mem.Prefetch {
					if !c.Probe(l) {
						c.Fill(a, pfReady, cache.SrcL2)
					}
					return
				}
				if !c.Lookup(now, a).Hit {
					c.Fill(a, now+30, cache.SrcDemand)
				}
			}
			run(base, l)
			run(moved, l+shift)
		}
		if base.Stats != moved.Stats {
			t.Errorf("shift %d changed cache behavior:\nbase  %+v\nmoved %+v",
				shift, base.Stats, moved.Stats)
		}
	}
}

// shiftTrace translates every record's address by a fixed offset.
type shiftTrace struct {
	inner trace.Trace
	off   mem.Addr
}

func (s *shiftTrace) Next() (trace.Record, bool) {
	r, ok := s.inner.Next()
	r.Addr += s.off
	return r, ok
}

func (s *shiftTrace) Reset() { s.inner.Reset() }

// decisionCounts is the timing-independent projection of cache.Stats: the
// counters fixed by the access/decision sequence alone. Timing-derived
// counters (wait cycles, the timely/late split, stall cycles) legitimately
// move when DRAM row behavior changes under translation.
type decisionCounts struct {
	da, dh, dm, pa, ph   uint64
	fills, useful, unusd uint64
	ev, wb               uint64
	srcFills             [cache.NumSources]uint64
	srcUseful            [cache.NumSources]uint64
	srcEvicted           [cache.NumSources]uint64
}

func countsOf(st cache.Stats) decisionCounts {
	d := decisionCounts{
		da: st.DemandAccesses, dh: st.DemandHits, dm: st.DemandMisses,
		pa: st.PrefetchAccesses, ph: st.PrefetchHits,
		fills: st.PrefetchFills, useful: st.UsefulPrefetches, unusd: st.UnusedPrefetches,
		ev: st.Evictions, wb: st.Writebacks,
	}
	for i, ss := range st.Sources {
		d.srcFills[i] = ss.Fills
		d.srcUseful[i] = ss.UsefulTimely + ss.UsefulLate
		d.srcEvicted[i] = ss.EvictedUnused
	}
	return d
}

func metamorphicConfig() sim.Config {
	cfg := sim.DefaultConfig(1)
	cfg.LLC.Sets = 128
	cfg.L2.Sets = 64
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 10_000
	cfg.L1DPrefetcher = func() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) }
	return cfg
}

func metamorphicTrace(t *testing.T, name string) trace.Trace {
	t.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return w.NewTrace(workloads.Scale{Footprint: 0.05}, 1)
}

// TestMetamorphicSimTranslation: a whole simulated run under an address
// shift that is a multiple of every cache level's set count. The shift
// permutes DRAM rows, so timing moves — but every cache decision (hits,
// misses, fills, evictions, prefetch lifecycle) must be exactly invariant.
// The stride prefetcher trains on address deltas, which the shift
// preserves. (Temporal prefetchers hash absolute lines into their metadata
// structures, so this invariance deliberately does not extend to them.)
func TestMetamorphicSimTranslation(t *testing.T) {
	// 128 lines covers the LLC (128 sets), L2 (64) and L1D set counts.
	const shift = mem.Addr(128 * mem.LineSize * 5)
	for _, wl := range []string{"mcf06", "libquantum06"} {
		base := sim.New(metamorphicConfig())
		base.SetTrace(0, metamorphicTrace(t, wl))
		rb := base.Run()

		moved := sim.New(metamorphicConfig())
		moved.SetTrace(0, &shiftTrace{inner: metamorphicTrace(t, wl), off: shift})
		rm := moved.Run()

		cb, cm := rb.Cores[0], rm.Cores[0]
		if cb.Instructions != cm.Instructions {
			t.Fatalf("%s: instruction counts differ: %d vs %d", wl, cb.Instructions, cm.Instructions)
		}
		if countsOf(cb.L1D) != countsOf(cm.L1D) {
			t.Errorf("%s: L1D decisions changed under translation:\nbase  %+v\nmoved %+v",
				wl, countsOf(cb.L1D), countsOf(cm.L1D))
		}
		if countsOf(cb.L2) != countsOf(cm.L2) {
			t.Errorf("%s: L2 decisions changed under translation", wl)
		}
		if countsOf(rb.LLC) != countsOf(rm.LLC) {
			t.Errorf("%s: LLC decisions changed under translation", wl)
		}
		if cb.PrefetchesIssued != cm.PrefetchesIssued {
			t.Errorf("%s: issued %d vs %d prefetches", wl, cb.PrefetchesIssued, cm.PrefetchesIssued)
		}
		if rb.DRAM.Reads != rm.DRAM.Reads || rb.DRAM.Writes != rm.DRAM.Writes {
			t.Errorf("%s: DRAM traffic changed under translation: %d/%d vs %d/%d",
				wl, rb.DRAM.Reads, rb.DRAM.Writes, rm.DRAM.Reads, rm.DRAM.Writes)
		}
	}
}

// addCounters returns a+b over every uint64 field, recursing through
// nested structs and arrays (cache.Stats and its Sources array).
func addCounters(a, b reflect.Value, out reflect.Value) {
	switch a.Kind() {
	case reflect.Uint64:
		out.SetUint(a.Uint() + b.Uint())
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			addCounters(a.Field(i), b.Field(i), out.Field(i))
		}
	case reflect.Array:
		for i := 0; i < a.Len(); i++ {
			addCounters(a.Index(i), b.Index(i), out.Index(i))
		}
	default:
		panic("addCounters: unsupported kind " + a.Kind().String())
	}
}

func addStats(a, b cache.Stats) cache.Stats {
	var out cache.Stats
	addCounters(reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(&out).Elem())
	return out
}

// TestMetamorphicWarmSplit: running warmup W + measure M must report a
// measured window that composes exactly with a whole run of W — fieldwise,
// whole(0,W) + measured(W,M) == whole(0,W+M) — and the shared LLC/DRAM
// whole-run statistics of the split run must equal the long run's (both
// execute the identical record sequence). This is the trace-concatenation
// identity: the measured window is precisely "the rest of the trace",
// nothing double-counted at the boundary, nothing lost in the snapshot.
// It pins the warmup-snapshot machinery the golden stats depend on.
func TestMetamorphicWarmSplit(t *testing.T) {
	const warm, measure = 3_000, 7_000
	run := func(w, m uint64) sim.Result {
		cfg := metamorphicConfig()
		cfg.WarmupInstructions = w
		cfg.MeasureInstructions = m
		sys := sim.New(cfg)
		sys.SetTrace(0, metamorphicTrace(t, "mcf06"))
		return sys.Run()
	}
	head := run(0, warm)         // whole run over the warmup prefix
	split := run(warm, measure)  // warmup + measured window
	full := run(0, warm+measure) // whole run over the concatenation

	ch, cs, cf := head.Cores[0], split.Cores[0], full.Cores[0]
	if got := ch.Instructions + cs.Instructions; got != cf.Instructions {
		t.Fatalf("instructions: head %d + measured %d != full %d",
			ch.Instructions, cs.Instructions, cf.Instructions)
	}
	if got := ch.Cycles + cs.Cycles; got != cf.Cycles {
		t.Errorf("cycles: head %d + measured %d != full %d", ch.Cycles, cs.Cycles, cf.Cycles)
	}
	if got := addStats(ch.L1D, cs.L1D); got != cf.L1D {
		t.Errorf("L1D does not compose:\nhead+measured %+v\nfull          %+v", got, cf.L1D)
	}
	if got := addStats(ch.L2, cs.L2); got != cf.L2 {
		t.Errorf("L2 does not compose:\nhead+measured %+v\nfull          %+v", got, cf.L2)
	}
	if got := ch.PrefetchesIssued + cs.PrefetchesIssued; got != cf.PrefetchesIssued {
		t.Errorf("issued: head %d + measured %d != full %d",
			ch.PrefetchesIssued, cs.PrefetchesIssued, cf.PrefetchesIssued)
	}
	// Shared whole-run stats: the split run and the long run executed the
	// same records, so their final LLC and DRAM states are identical.
	if split.LLC != full.LLC {
		t.Errorf("whole-run LLC differs between split and full runs:\nsplit %+v\nfull  %+v",
			split.LLC, full.LLC)
	}
	if split.DRAM != full.DRAM {
		t.Errorf("whole-run DRAM differs between split and full runs:\nsplit %+v\nfull  %+v",
			split.DRAM, full.DRAM)
	}
}
