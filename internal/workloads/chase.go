package workloads

import (
	"math/rand"

	"streamline/internal/mem"
	"streamline/internal/trace"
)

// The pointer-chase family models the irregular SPEC workloads (mcf, sphinx,
// omnetpp): linked traversals whose node-visit order repeats across outer
// iterations, producing long correlated address sequences — the bread and
// butter of temporal prefetching.

// chaseSource walks a random permutation cycle over nodes of one cache line
// each. Every lap revisits the nodes in the same order, except that mutate
// fraction of the links are rewired each lap (modeling slowly changing data
// structures) and scanLines of sequential scan traffic is interleaved every
// scanEvery chase steps (modeling mcf's pointer+scan phases).
type chaseSource struct {
	name      string
	nodes     int
	mutate    float64 // fraction of links rewired per lap
	scanLines int     // sequential lines scanned per lap (0 = no scans)
	scanEvery int     // chase steps between scan bursts
	nonMem    uint8

	rng   *rand.Rand
	next  []int32 // permutation: next[i] is the node after i
	data  array
	scan  array
	cur   int
	sbase int // rotating scan start so scans sweep the scan region
}

func (c *chaseSource) Reset(rng *rand.Rand) {
	c.rng = rng
	a := newArena()
	c.data = a.array(c.nodes, mem.LineSize)
	if c.scanLines > 0 {
		c.scan = a.array(c.scanLines*8, mem.LineSize)
	}
	c.next = randomCycle(c.nodes, rng)
	c.cur = 0
	c.sbase = 0
}

// randomCycle returns a single-cycle permutation of n elements, so a chase
// starting anywhere visits every node before repeating.
func randomCycle(n int, rng *rand.Rand) []int32 {
	order := rng.Perm(n)
	next := make([]int32, n)
	for i := 0; i < n; i++ {
		next[order[i]] = int32(order[(i+1)%n])
	}
	return next
}

func (c *chaseSource) Lap(emit func(trace.Record)) {
	e := &emitter{emit: emit, nonMem: c.nonMem}
	pc := pcBase(c.name)
	scanPC := pc + 8
	steps := c.nodes
	scanPer := 0
	if c.scanLines > 0 && c.scanEvery > 0 {
		scanPer = c.scanLines / (steps / c.scanEvery)
		if scanPer < 1 {
			scanPer = 1
		}
	}
	scanPos := c.sbase
	for i := 0; i < steps; i++ {
		e.chase(pc, c.data.at(c.cur))
		c.cur = int(c.next[c.cur])
		if scanPer > 0 && i%c.scanEvery == c.scanEvery-1 {
			for j := 0; j < scanPer; j++ {
				e.load(scanPC, c.scan.at(scanPos%(c.scanLines*8)))
				scanPos++
			}
		}
	}
	c.sbase = scanPos
	if c.mutate > 0 {
		c.rewire()
	}
}

// rewire splices random short segments to new positions in the cycle.
// Unlike a successor swap — which would split the cycle into disjoint
// subcycles and strand the walker on a fragment — a splice preserves the
// single-cycle property while changing three correlations per mutation.
func (c *chaseSource) rewire() {
	splices := int(float64(c.nodes) * c.mutate / 3)
	for s := 0; s < splices; s++ {
		a := int32(c.rng.Intn(c.nodes))
		segLen := 1 + c.rng.Intn(4)
		// Segment (start..end) follows a; dest must lie outside it.
		start := c.next[a]
		end := start
		inSeg := map[int32]bool{a: true, start: true}
		for k := 1; k < segLen; k++ {
			end = c.next[end]
			inSeg[end] = true
		}
		after := c.next[end]
		if inSeg[after] {
			continue // segment wrapped near a; skip
		}
		// Walk forward a random distance to find the destination.
		b := after
		for k := c.rng.Intn(64); k > 0; k-- {
			b = c.next[b]
		}
		if inSeg[b] {
			continue
		}
		// Cut the segment out and splice it after b.
		c.next[a] = after
		c.next[end] = c.next[b]
		c.next[b] = start
	}
}

// poolSource models omnetpp-style discrete-event simulation: a pool of event
// objects visited in a mostly-stable priority order with Zipf-biased reuse.
// A fraction of each lap's schedule is perturbed, so correlations are strong
// but not perfect.
type poolSource struct {
	name    string
	events  int
	perturb float64 // fraction of schedule slots randomized per lap
	hot     int     // hot event objects revisited with extra loads
	nonMem  uint8

	rng      *rand.Rand
	schedule []int32
	objs     array
	hotObjs  array
}

func (p *poolSource) Reset(rng *rand.Rand) {
	p.rng = rng
	a := newArena()
	p.objs = a.array(p.events, mem.LineSize)
	p.hotObjs = a.array(p.hot, mem.LineSize)
	// The schedule is a permutation: each event object is handled once per
	// lap, in a fixed irregular order (an event calendar's steady state).
	p.schedule = make([]int32, p.events)
	for i, v := range rng.Perm(p.events) {
		p.schedule[i] = int32(v)
	}
}

func (p *poolSource) Lap(emit func(trace.Record)) {
	e := &emitter{emit: emit, nonMem: p.nonMem}
	pc := pcBase(p.name)
	hotPC := pc + 8
	for i, ev := range p.schedule {
		e.chase(pc, p.objs.at(int(ev)))
		if i&7 == 0 { // periodic touch of hot bookkeeping state
			e.load(hotPC, p.hotObjs.at(i%p.hot))
		}
	}
	if p.perturb > 0 {
		// Swap schedule slots so the order churns without duplicating
		// events (new events replace finished ones in real calendars).
		n := int(float64(len(p.schedule)) * p.perturb / 2)
		for i := 0; i < n; i++ {
			a := p.rng.Intn(len(p.schedule))
			b := p.rng.Intn(len(p.schedule))
			p.schedule[a], p.schedule[b] = p.schedule[b], p.schedule[a]
		}
	}
}

func init() {
	register(Workload{
		Name: "mcf06", Suite: SPEC06, Irregular: true,
		Build: func(s Scale) LapSource {
			return &chaseSource{name: "mcf06", nodes: s.size(96 << 10),
				mutate: 0.02, scanLines: 2 << 10, scanEvery: 32, nonMem: 3}
		},
	})
	register(Workload{
		Name: "sphinx06", Suite: SPEC06, Irregular: true,
		Build: func(s Scale) LapSource {
			return &chaseSource{name: "sphinx06", nodes: s.size(288 << 10),
				mutate: 0.005, nonMem: 4}
		},
	})
	register(Workload{
		Name: "omnetpp06", Suite: SPEC06, Irregular: true,
		Build: func(s Scale) LapSource {
			return &poolSource{name: "omnetpp06", events: s.size(64 << 10),
				perturb: 0.02, hot: 512, nonMem: 3}
		},
	})
	register(Workload{
		Name: "astar06", Suite: SPEC06, Irregular: true,
		Build: func(s Scale) LapSource {
			// Pathfinding: linked search whose explored region shifts a
			// little between searches.
			return &chaseSource{name: "astar06", nodes: s.size(56 << 10),
				mutate: 0.04, nonMem: 4}
		},
	})
	register(Workload{
		Name: "xalancbmk06", Suite: SPEC06, Irregular: true,
		Build: func(s Scale) LapSource {
			// DOM-tree walks: event-pool traversal in a highly stable
			// order with a hot symbol table.
			return &poolSource{name: "xalancbmk06", events: s.size(48 << 10),
				perturb: 0.01, hot: 768, nonMem: 4}
		},
	})
	register(Workload{
		Name: "mcf17", Suite: SPEC17, Irregular: true,
		Build: func(s Scale) LapSource {
			return &chaseSource{name: "mcf17", nodes: s.size(128 << 10),
				mutate: 0.03, scanLines: 4 << 10, scanEvery: 24, nonMem: 3}
		},
	})
	register(Workload{
		Name: "omnetpp17", Suite: SPEC17, Irregular: true,
		Build: func(s Scale) LapSource {
			return &poolSource{name: "omnetpp17", events: s.size(88 << 10),
				perturb: 0.04, hot: 1024, nonMem: 3}
		},
	})
}
