package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"streamline/internal/mem"
)

// The experiment harness's worker pool feeds trace decoding from many
// goroutines at once, so the parser must be robust against any byte stream:
// never panic, never loop forever, and stay self-consistent across Reset.

// encodeRecords serializes records through the real Writer.
func encodeRecords(tb testing.TB, recs []Record) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReader throws arbitrary bytes at the file parser. Whatever the input,
// decoding must terminate without panicking, and a Reset must reproduce
// exactly the records of the first pass (the property warmup/measure
// replays depend on).
func FuzzReader(f *testing.F) {
	// Seed corpus: a valid two-record stream, an empty valid stream, a
	// truncated record, a bad magic, a bad version, and assorted garbage.
	valid := encodeRecords(f, []Record{
		{PC: 0x400000, Addr: 0xdeadbeef, IsWrite: true, NonMem: 3},
		{PC: 0x400004, Addr: 0xcafebabe, DependsOnPrev: true},
	})
	f.Add(valid)
	f.Add(encodeRecords(f, nil))
	f.Add(valid[:len(valid)-5])
	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xff
	f.Add(badMagic)
	badVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badVersion[4:8], 99)
	f.Add(badVersion)
	f.Add([]byte{})
	f.Add([]byte("not a trace file at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // malformed header rejected cleanly: fine
		}
		const limit = 1 << 16 // decoding can't yield more records than bytes
		var first []Record
		for len(first) < limit {
			rec, ok := r.Next()
			if !ok {
				break
			}
			first = append(first, rec)
		}
		if max := (len(data) - 8) / recordBytes; len(first) > max {
			t.Fatalf("decoded %d records from %d bytes (max %d)", len(first), len(data), max)
		}
		r.Reset()
		for i := range first {
			rec, ok := r.Next()
			if !ok {
				t.Fatalf("after Reset, stream ended at record %d of %d", i, len(first))
			}
			if rec != first[i] {
				t.Fatalf("after Reset, record %d = %+v, want %+v", i, rec, first[i])
			}
		}
	})
}

// FuzzRecordRoundTrip checks Writer/Reader are exact inverses for every
// representable record.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(0x400000), uint64(0xdeadbeef), true, false, byte(7))
	f.Add(uint64(0), uint64(0), false, false, byte(0))
	f.Add(^uint64(0), ^uint64(0), true, true, byte(255))

	f.Fuzz(func(t *testing.T, pc, addr uint64, isWrite, dep bool, nonMem byte) {
		in := Record{
			PC:            mem.PC(pc),
			Addr:          mem.Addr(addr),
			IsWrite:       isWrite,
			DependsOnPrev: dep,
			NonMem:        nonMem,
		}
		data := encodeRecords(t, []Record{in})
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("decoding freshly written record: %v", err)
		}
		if len(recs) != 1 || recs[0] != in {
			t.Fatalf("round trip: got %+v, want %+v", recs, in)
		}
		if got := in.Instructions(); got != 1+uint64(nonMem) {
			t.Errorf("Instructions() = %d, want %d", got, 1+uint64(nonMem))
		}
	})
}
