package cache

import (
	"testing"

	"streamline/internal/audit"
	"streamline/internal/mem"
)

// Negative tests: each audit rule must actually fire when its invariant is
// broken, so a clean conformance run attests to real checking rather than
// vacuous passes.

func auditRules(c *Cache) map[string]int {
	a := audit.New(0)
	c.AuditScan(a, 0)
	rules := map[string]int{}
	for _, v := range a.Violations() {
		rules[v.Rule]++
	}
	return rules
}

func propCache() *Cache {
	c := New(Config{Name: "t", Sets: 4, Ways: 4, Latency: 1, MSHRs: 4, Ports: 1})
	for i := 0; i < 8; i++ {
		l := mem.Line(i * 5)
		c.Lookup(uint64(i), mem.Access{Addr: mem.AddrOf(l), Kind: mem.Load})
		c.Fill(mem.Access{Addr: mem.AddrOf(l), Kind: mem.Load}, uint64(i), SrcDemand)
	}
	return c
}

func TestAuditDetectsOccupancyImbalance(t *testing.T) {
	c := propCache()
	if r := auditRules(c); len(r) != 0 {
		t.Fatalf("clean cache reports violations: %v", r)
	}
	c.occupied++
	if r := auditRules(c); r["fill-evict-balance"] == 0 {
		t.Fatalf("corrupted occupancy not detected: %v", r)
	}
}

func TestAuditDetectsMSHRLeak(t *testing.T) {
	c := propCache()
	c.MSHRReserve(100) // never completed
	if r := auditRules(c); r["mshr-leak"] == 0 {
		t.Fatalf("leaked MSHR reservation not detected: %v", r)
	}
}

func TestAuditDetectsDuplicateLine(t *testing.T) {
	c := propCache()
	// Plant the same tag twice in one set, bypassing Fill's dedup.
	c.sets[0][0] = line{tag: mem.Line(64), valid: true}
	c.sets[0][1] = line{tag: mem.Line(64), valid: true}
	c.occupied = c.OccupiedLines() // keep the balance check quiet
	if r := auditRules(c); r["duplicate-line"] == 0 {
		t.Fatalf("duplicate line not detected: %v", r)
	}
}

func TestAuditDetectsDataInReservedWay(t *testing.T) {
	c := propCache()
	c.reserved[0] = 2 // reserve over resident lines without flushing
	if r := auditRules(c); r["data-in-reserved-way"] == 0 {
		t.Fatalf("stranded data line in reserved region not detected: %v", r)
	}
}

func TestAuditDetectsCounterDrift(t *testing.T) {
	c := propCache()
	c.Stats.DemandHits++
	if r := auditRules(c); r["demand-accounting"] == 0 {
		t.Fatalf("hit/miss/access drift not detected: %v", r)
	}
}

// pfCache is propCache plus one resident prefetched line, so the
// source-attribution rules have lifecycle counts to audit.
func pfCache() *Cache {
	c := propCache()
	c.Fill(mem.Access{Addr: mem.AddrOf(mem.Line(100)), Kind: mem.Prefetch}, 50, SrcL2)
	return c
}

func TestAuditDetectsSourceSumDrift(t *testing.T) {
	c := pfCache()
	if r := auditRules(c); len(r) != 0 {
		t.Fatalf("clean cache reports violations: %v", r)
	}
	// An aggregate increment with no matching per-source attribution.
	c.Stats.PrefetchFills++
	if r := auditRules(c); r["source-sum"] == 0 {
		t.Fatalf("per-source/aggregate fill drift not detected: %v", r)
	}
}

func TestAuditDetectsDemandSourceContamination(t *testing.T) {
	c := pfCache()
	// A prefetch lifecycle count attributed to the demand pseudo-source.
	c.Stats.Sources[SrcDemand].UsefulTimely++
	c.Stats.UsefulPrefetches++
	c.Stats.DemandHits++ // keep useful<=hits and source-sum quiet elsewhere
	c.Stats.DemandAccesses++
	if r := auditRules(c); r["source-sum"] == 0 {
		t.Fatalf("SrcDemand contamination not detected: %v", r)
	}
}

func TestAuditDetectsLifecycleLeak(t *testing.T) {
	c := pfCache()
	// An eviction that both the per-source and aggregate counters recorded,
	// but for a line the scan still finds resident: the partition no longer
	// closes even though every source-sum identity holds.
	c.Stats.Sources[SrcL2].EvictedUnused++
	c.Stats.UnusedPrefetches++
	r := auditRules(c)
	if r["lifecycle-partition"] == 0 {
		t.Fatalf("lifecycle leak not detected: %v", r)
	}
	if r["source-sum"] != 0 {
		t.Fatalf("source-sum fired on a balanced perturbation: %v", r)
	}
}
