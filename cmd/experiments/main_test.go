package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// TestMain re-execs the test binary as the experiments command when
// EXPERIMENTS_BE_MAIN=1, so the end-to-end tests below drive the real CLI —
// real flags, real exit codes, real SIGKILL crashes — without a separate
// build step.
func TestMain(m *testing.M) {
	if os.Getenv("EXPERIMENTS_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// run invokes the CLI as a child process and returns stdout, stderr, and the
// exit code (negative for signal deaths: -9 for SIGKILL).
func run(t *testing.T, env []string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "EXPERIMENTS_BE_MAIN=1")
	cmd.Env = append(cmd.Env, env...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("running child: %v", err)
		}
		ws := ee.Sys().(syscall.WaitStatus)
		if ws.Signaled() {
			code = -int(ws.Signal())
		} else {
			code = ee.ExitCode()
		}
	}
	return stdout.String(), stderr.String(), code
}

// countRecords returns how many result lines the sweep directory holds.
func countRecords(t *testing.T, dir string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	n := 0
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) > 0 {
			n++
		}
	}
	return n
}

// TestCrashAndResumeByteIdentical is the acceptance test for the crash-safe
// sweep: run uninterrupted; then SIGKILL a fresh run right after its 2nd
// result is durable; resume the half-finished directory and require stdout
// byte-identical to the uninterrupted run, with cached results replayed.
func TestCrashAndResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs micro-scale simulations in child processes")
	}
	args := []string{"-run", "fig9", "-scale", "micro", "-jobs", "2", "-q"}

	wantOut, _, code := run(t, nil, args...)
	if code != 0 {
		t.Fatalf("uninterrupted run exited %d", code)
	}
	if !strings.Contains(wantOut, "fig9") {
		t.Fatalf("unexpected stdout:\n%s", wantOut)
	}

	dir := filepath.Join(t.TempDir(), "sweep.d")
	_, _, code = run(t, []string{"EXPERIMENTS_CRASH_AFTER=2"},
		append(args, "-checkpoint", dir)...)
	if code != -9 {
		t.Fatalf("crash-armed run exited %d, want SIGKILL (-9)", code)
	}
	got := countRecords(t, dir)
	if got != 2 {
		t.Fatalf("crashed sweep holds %d records, want exactly 2 durable before the kill", got)
	}

	out, errOut, code := run(t, nil, append(args, "-resume", dir)...)
	if code != 0 {
		t.Fatalf("resumed run exited %d\nstderr:\n%s", code, errOut)
	}
	if out != wantOut {
		t.Errorf("resumed stdout differs from the uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", wantOut, out)
	}
	if !strings.Contains(errOut, "replayed 2 cached result(s)") {
		t.Errorf("resume did not report replaying the 2 durable results:\n%s", errOut)
	}

	// Resuming the now-complete sweep replays everything and recomputes
	// nothing, still byte-identical.
	total := countRecords(t, dir)
	out2, errOut2, code := run(t, nil, append(args, "-resume", dir)...)
	if code != 0 || out2 != wantOut {
		t.Errorf("second resume: exit %d, identical=%v", code, out2 == wantOut)
	}
	if !strings.Contains(errOut2, "replayed") || countRecords(t, dir) != total {
		t.Errorf("second resume recomputed or re-appended results:\n%s", errOut2)
	}
}

// TestInjectedFailureDegrades: a permanently panicking job must not abort the
// sweep — the run completes, marks the cell GAP, prints the degradation
// banner on stdout, and exits 1.
func TestInjectedFailureDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("runs micro-scale simulations in child processes")
	}
	out, _, code := run(t, []string{"EXPERIMENTS_FAIL_KEY=triangel|"},
		"-run", "fig9", "-scale", "micro", "-jobs", "2", "-q")
	if code != 1 {
		t.Fatalf("degraded sweep exited %d, want 1", code)
	}
	if !strings.Contains(out, "GAP") {
		t.Errorf("no GAP cells in degraded output:\n%s", out)
	}
	if !strings.Contains(out, "sweep degraded:") {
		t.Errorf("degradation banner missing from stdout:\n%s", out)
	}
	if !strings.Contains(out, "fig9") {
		t.Errorf("sweep aborted instead of degrading:\n%s", out)
	}
}

// TestMetricsLeaveStdoutIdentical: -progress and -metrics are pure
// observability — stdout stays byte-identical with them on, the progress
// line lands on stderr, and the exposition file accounts every job.
func TestMetricsLeaveStdoutIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs micro-scale simulations in child processes")
	}
	args := []string{"-run", "fig9", "-scale", "micro", "-jobs", "2", "-q"}

	wantOut, _, code := run(t, nil, args...)
	if code != 0 {
		t.Fatalf("plain run exited %d", code)
	}

	dest := filepath.Join(t.TempDir(), "metrics.txt")
	out, errOut, code := run(t, nil,
		append(args, "-progress", "1ms", "-metrics", dest)...)
	if code != 0 {
		t.Fatalf("instrumented run exited %d\nstderr:\n%s", code, errOut)
	}
	if out != wantOut {
		t.Errorf("-progress/-metrics changed stdout:\n--- want ---\n%s\n--- got ---\n%s", wantOut, out)
	}
	if !strings.Contains(errOut, "progress: ") || !strings.Contains(errOut, "completed") {
		t.Errorf("no progress line on stderr:\n%s", errOut)
	}

	data, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE runner_jobs_completed_total counter",
		"runner_jobs_failed_total 0",
		"runner_jobs_gapped_total 0",
		"# TYPE runner_job_attempt_seconds histogram",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition is missing %q:\n%s", want, text)
		}
	}
	// Every simulation fig9 ran must be accounted as a completed job.
	if !strings.Contains(text, "runner_jobs_completed_total ") ||
		strings.Contains(text, "runner_jobs_completed_total 0\n") {
		t.Errorf("no completed jobs counted:\n%s", text)
	}

	// '-' routes the exposition to stderr, still leaving stdout identical.
	out, errOut, code = run(t, nil, append(args, "-metrics", "-")...)
	if code != 0 || out != wantOut {
		t.Fatalf("-metrics - run: exit %d, stdout identical=%v", code, out == wantOut)
	}
	if !strings.Contains(errOut, "# TYPE runner_jobs_completed_total counter") {
		t.Errorf("exposition missing from stderr:\n%s", errOut)
	}
}

// TestFlagValidation: bad invocations fail fast with exit 2 and a message
// naming the problem, before any simulation starts.
func TestFlagValidation(t *testing.T) {
	t.Run("jobs", func(t *testing.T) {
		_, errOut, code := run(t, nil, "-run", "fig9", "-scale", "micro", "-jobs", "0")
		if code != 2 || !strings.Contains(errOut, "invalid -jobs 0") {
			t.Errorf("exit=%d stderr=%q", code, errOut)
		}
	})
	t.Run("unknown-run", func(t *testing.T) {
		_, errOut, code := run(t, nil, "-run", "fig99", "-scale", "micro")
		if code != 2 || !strings.Contains(errOut, `unknown experiment "fig99"`) {
			t.Errorf("exit=%d stderr=%q", code, errOut)
		}
	})
	t.Run("unknown-scale", func(t *testing.T) {
		_, errOut, code := run(t, nil, "-run", "fig9", "-scale", "huge")
		if code != 2 || !strings.Contains(errOut, `unknown scale "huge"`) {
			t.Errorf("exit=%d stderr=%q", code, errOut)
		}
	})
	t.Run("checkpoint-and-resume", func(t *testing.T) {
		_, errOut, code := run(t, nil, "-run", "fig9", "-scale", "micro",
			"-checkpoint", "a.d", "-resume", "b.d")
		if code != 2 || !strings.Contains(errOut, "mutually exclusive") {
			t.Errorf("exit=%d stderr=%q", code, errOut)
		}
	})
	t.Run("resume-missing-dir", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "never-created")
		_, errOut, code := run(t, nil, "-run", "fig9", "-scale", "micro", "-resume", dir)
		if code != 2 ||
			!strings.Contains(errOut, "not a resumable sweep directory") ||
			!strings.Contains(errOut, filepath.Join(dir, "MANIFEST.json")) {
			t.Errorf("exit=%d stderr=%q", code, errOut)
		}
	})
	t.Run("resume-foreign-dir", func(t *testing.T) {
		// A directory that exists but holds no manifest (someone's random
		// data directory) must be refused, naming the expected manifest.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "data.txt"), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, errOut, code := run(t, nil, "-run", "fig9", "-scale", "micro", "-resume", dir)
		if code != 2 || !strings.Contains(errOut, "MANIFEST.json") {
			t.Errorf("exit=%d stderr=%q", code, errOut)
		}
	})
	t.Run("resume-scale-mismatch", func(t *testing.T) {
		if testing.Short() {
			t.Skip("creates a checkpoint with a real run")
		}
		dir := filepath.Join(t.TempDir(), "sweep.d")
		_, _, code := run(t, nil, "-run", "table2", "-scale", "micro", "-checkpoint", dir, "-q")
		if code != 0 {
			t.Fatalf("checkpoint run exited %d", code)
		}
		_, errOut, code := run(t, nil, "-run", "table2", "-scale", "small", "-resume", dir)
		if code != 2 || !strings.Contains(errOut, "does not match this run") {
			t.Errorf("exit=%d stderr=%q", code, errOut)
		}
	})
}
