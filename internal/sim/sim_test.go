package sim

import (
	"testing"

	"streamline/internal/cache"
	"streamline/internal/mem"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/stride"
	"streamline/internal/trace"
	"streamline/internal/workloads"
)

// smallConfig returns a fast test system: the cache hierarchy is scaled
// down ~8x so the 0.1-footprint test workloads stress it the way the
// full-size workloads stress the Table II hierarchy.
func smallConfig(cores int) Config {
	cfg := DefaultConfig(cores)
	cfg.L2.Sets = 128  // 64KB
	cfg.LLC.Sets = 256 // 256KB per core
	cfg.WarmupInstructions = 100_000
	cfg.MeasureInstructions = 400_000
	return cfg
}

func traceFor(t *testing.T, name string, seed int64) trace.Trace {
	t.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return w.NewTrace(workloads.Scale{Footprint: 0.1}, seed)
}

func strideFactory() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) }

// oneShotTrace yields its records once; Reset does not rewind, modeling a
// source that cannot replay (e.g. a stream whose rewind failed).
type oneShotTrace struct {
	recs []trace.Record
	pos  int
}

func (o *oneShotTrace) Next() (trace.Record, bool) {
	if o.pos >= len(o.recs) {
		return trace.Record{}, false
	}
	r := o.recs[o.pos]
	o.pos++
	return r, true
}

func (o *oneShotTrace) Reset() {}

func TestTraceExhaustedBeforeWarmup(t *testing.T) {
	// A trace that dies before warmup completes never opens the measured
	// window; the result must be empty, not the warmup activity reported
	// against a zero baseline.
	cfg := smallConfig(1)
	sys := New(cfg)
	recs := make([]trace.Record, 1000) // far fewer than WarmupInstructions
	for i := range recs {
		recs[i] = trace.Record{PC: 1, Addr: mem.Addr(i * 64)}
	}
	res := sys.RunTrace(&oneShotTrace{recs: recs})
	c := res.Cores[0]
	if c.Instructions != 0 || c.Cycles != 0 {
		t.Errorf("truncated trace reported a measured window: %d instructions, %d cycles",
			c.Instructions, c.Cycles)
	}
	if c.L1D != (cache.Stats{}) || c.L2 != (cache.Stats{}) {
		t.Errorf("truncated trace reported measured cache stats: L1D=%+v L2=%+v", c.L1D, c.L2)
	}
}

func TestBaselineRunsProduceSaneIPC(t *testing.T) {
	for _, name := range []string{"libquantum06", "sphinx06", "pr"} {
		sys := New(smallConfig(1))
		res := sys.RunTrace(traceFor(t, name, 1))
		if len(res.Cores) != 1 {
			t.Fatalf("%s: %d core results", name, len(res.Cores))
		}
		c := res.Cores[0]
		if c.Instructions < 395_000 {
			t.Errorf("%s: only %d instructions measured", name, c.Instructions)
		}
		if c.IPC <= 0.01 || c.IPC > 6.0 {
			t.Errorf("%s: IPC = %.3f out of sane range", name, c.IPC)
		}
		if c.L2.DemandAccesses == 0 {
			t.Errorf("%s: no L2 traffic", name)
		}
	}
}

func TestMemoryIntensiveWorkloadsMissInLLC(t *testing.T) {
	sys := New(smallConfig(1))
	res := sys.RunTrace(traceFor(t, "sphinx06", 2))
	if res.DRAM.Reads == 0 {
		t.Error("pointer chase generated no DRAM reads")
	}
	if res.Cores[0].L2MPKI() < 1 {
		t.Errorf("L2 MPKI = %.2f, want >= 1 (memory-intensive)", res.Cores[0].L2MPKI())
	}
}

func TestStrideConvertsStreamingMisses(t *testing.T) {
	// Pure streaming with writebacks is bandwidth-bound, so the win shows
	// up as converted misses (and it must not slow the workload down).
	base := New(smallConfig(1)).RunTrace(traceFor(t, "libquantum06", 3))

	cfg := smallConfig(1)
	cfg.L1DPrefetcher = strideFactory
	pf := New(cfg).RunTrace(traceFor(t, "libquantum06", 3))

	if pf.Cores[0].PrefetchesIssued == 0 {
		t.Fatal("stride prefetcher issued nothing on a streaming workload")
	}
	if pf.Cores[0].L1D.DemandMisses*10 > base.Cores[0].L1D.DemandMisses {
		t.Errorf("stride converted too few misses: %d -> %d",
			base.Cores[0].L1D.DemandMisses, pf.Cores[0].L1D.DemandMisses)
	}
	if pf.IPC() < 0.95*base.IPC() {
		t.Errorf("stride slowed streaming: %.3f -> %.3f", base.IPC(), pf.IPC())
	}
}

func TestStridePrefetcherSpeedsUpStencil(t *testing.T) {
	// The stencil has compute between lines and three concurrent streams:
	// latency-bound, so stride prefetching should produce real speedup.
	base := New(smallConfig(1)).RunTrace(traceFor(t, "roms17", 3))

	cfg := smallConfig(1)
	cfg.L1DPrefetcher = strideFactory
	pf := New(cfg).RunTrace(traceFor(t, "roms17", 3))

	speedup := pf.IPC() / base.IPC()
	if speedup < 1.05 {
		t.Errorf("stride speedup on stencil = %.3f, want >= 1.05 (base %.3f, pf %.3f)",
			speedup, base.IPC(), pf.IPC())
	}
}

func TestStridePrefetcherHarmlessOnPointerChase(t *testing.T) {
	base := New(smallConfig(1)).RunTrace(traceFor(t, "sphinx06", 4))
	cfg := smallConfig(1)
	cfg.L1DPrefetcher = strideFactory
	pf := New(cfg).RunTrace(traceFor(t, "sphinx06", 4))
	ratio := pf.IPC() / base.IPC()
	if ratio < 0.85 {
		t.Errorf("stride prefetcher slowed pointer chase by %.1f%%", (1-ratio)*100)
	}
}

func TestDependentChaseSlowerThanStreaming(t *testing.T) {
	chase := New(smallConfig(1)).RunTrace(traceFor(t, "sphinx06", 5))
	stream := New(smallConfig(1)).RunTrace(traceFor(t, "libquantum06", 5))
	if chase.IPC() >= stream.IPC() {
		t.Errorf("pointer chase IPC (%.3f) >= streaming IPC (%.3f)",
			chase.IPC(), stream.IPC())
	}
}

func TestMultiCoreRunCompletes(t *testing.T) {
	cfg := smallConfig(2)
	cfg.MeasureInstructions = 200_000
	sys := New(cfg)
	sys.SetTrace(0, traceFor(t, "sphinx06", 6))
	sys.SetTrace(1, traceFor(t, "libquantum06", 6))
	res := sys.Run()
	if len(res.Cores) != 2 {
		t.Fatalf("%d core results", len(res.Cores))
	}
	for i, c := range res.Cores {
		if c.Instructions < 195_000 {
			t.Errorf("core %d: %d instructions", i, c.Instructions)
		}
		if c.IPC <= 0 {
			t.Errorf("core %d: IPC = %.3f", i, c.IPC)
		}
	}
}

func TestMultiCoreContentionSlowsCores(t *testing.T) {
	// The same workload on 1 core vs alongside 7 memory-hungry neighbors:
	// shared LLC + DRAM contention must reduce its IPC.
	solo := New(smallConfig(1)).RunTrace(traceFor(t, "pr", 7))

	cfg := smallConfig(4)
	cfg.MeasureInstructions = 200_000
	sys := New(cfg)
	for c := 0; c < 4; c++ {
		sys.SetTrace(c, traceFor(t, "pr", 7))
	}
	shared := sys.Run()
	if shared.Cores[0].IPC >= solo.Cores[0].IPC {
		t.Errorf("no contention effect: solo %.3f, shared %.3f",
			solo.Cores[0].IPC, shared.Cores[0].IPC)
	}
}

func TestPrefetchAccuracyOnStreamingIsHigh(t *testing.T) {
	cfg := smallConfig(1)
	cfg.L1DPrefetcher = strideFactory
	res := New(cfg).RunTrace(traceFor(t, "libquantum06", 8))
	// Accuracy accounting lives in the L1D for an L1 prefetcher.
	l1 := res.Cores[0].L1D
	if l1.PrefetchFills == 0 {
		t.Fatal("no prefetch fills")
	}
	acc := float64(l1.UsefulPrefetches) / float64(l1.PrefetchFills)
	if acc < 0.5 {
		t.Errorf("stride accuracy on streaming = %.2f, want >= 0.5", acc)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		cfg := smallConfig(1)
		cfg.L1DPrefetcher = strideFactory
		return New(cfg).RunTrace(traceFor(t, "mcf06", 9))
	}
	a, b := run(), run()
	if a.Cores[0].Cycles != b.Cores[0].Cycles {
		t.Errorf("nondeterministic cycles: %d vs %d", a.Cores[0].Cycles, b.Cores[0].Cycles)
	}
	if a.Cores[0].L2.DemandMisses != b.Cores[0].L2.DemandMisses {
		t.Error("nondeterministic L2 misses")
	}
}

func TestWarmupExcludedFromMeasurement(t *testing.T) {
	cfg := smallConfig(1)
	res := New(cfg).RunTrace(traceFor(t, "sphinx06", 10))
	c := res.Cores[0]
	if c.Instructions > cfg.MeasureInstructions+1000 {
		t.Errorf("measured %d instructions, budget %d", c.Instructions, cfg.MeasureInstructions)
	}
}
