package stms_test

import (
	"testing"

	"streamline/internal/dram"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/ptest"
	"streamline/internal/prefetch/stms"
)

func TestConformance(t *testing.T) {
	ptest.Exercise(t, func() prefetch.Prefetcher {
		return stms.New(stms.DefaultConfig(), dram.New(dram.ConfigFor(1)))
	})
}

// TestStatsMonotonicConsistent drives the prefetcher over the shared stream
// and checks its off-chip statistics never decrease and always satisfy the
// traffic identity (OffchipTraffic is exactly the sum of its parts).
func TestStatsMonotonicConsistent(t *testing.T) {
	p := stms.New(stms.DefaultConfig(), dram.New(dram.ConfigFor(1)))
	var prev stms.Stats
	var buf []prefetch.Request
	for i, ev := range ptest.Stream() {
		buf = p.Train(ev, buf[:0])
		st := p.Stats
		for _, c := range []struct {
			name      string
			prev, cur uint64
		}{
			{"IndexReads", prev.IndexReads, st.IndexReads},
			{"IndexWrites", prev.IndexWrites, st.IndexWrites},
			{"GHBReads", prev.GHBReads, st.GHBReads},
			{"GHBWrites", prev.GHBWrites, st.GHBWrites},
			{"IndexCacheHits", prev.IndexCacheHits, st.IndexCacheHits},
			{"StreamsFollowed", prev.StreamsFollowed, st.StreamsFollowed},
		} {
			if c.cur < c.prev {
				t.Fatalf("event %d: %s decreased %d -> %d", i, c.name, c.prev, c.cur)
			}
		}
		if got := st.OffchipTraffic(); got != st.IndexReads+st.IndexWrites+st.GHBReads+st.GHBWrites {
			t.Fatalf("event %d: OffchipTraffic %d inconsistent with parts", i, got)
		}
		prev = st
	}
	if prev.GHBWrites == 0 {
		t.Fatal("stream never wrote the GHB; the harness stream is not training the prefetcher")
	}
}

// TestOracle runs this engine's request stream against the differential
// cache oracle (see ptest.Oracle).
func TestOracle(t *testing.T) {
	ptest.Oracle(t, func() prefetch.Prefetcher {
		return stms.New(stms.DefaultConfig(), dram.New(dram.ConfigFor(1)))
	})
}
