package triangel_test

import (
	"testing"

	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/ptest"
	"streamline/internal/prefetch/triangel"
)

func TestConformance(t *testing.T) {
	mkCfg := map[string]func() triangel.Config{
		"default": triangel.DefaultConfig,
		"small-budget": func() triangel.Config {
			c := triangel.DefaultConfig()
			c.MetaBytes = 32 << 10
			return c
		},
	}
	for name, mk := range mkCfg {
		mk := mk
		t.Run(name, func(t *testing.T) {
			ptest.Exercise(t, func() prefetch.Prefetcher {
				return triangel.New(mk(), &meta.NullBridge{Sets: 256, Ways: 16, Latency: 20})
			})
		})
	}
}

// TestOracle runs this engine's request stream against the differential
// cache oracle (see ptest.Oracle).
func TestOracle(t *testing.T) {
	ptest.Oracle(t, func() prefetch.Prefetcher {
		return triangel.New(triangel.DefaultConfig(), &meta.NullBridge{Sets: 256, Ways: 16, Latency: 20})
	})
}
