// Package runner is the experiment harness's concurrent job engine: a
// bounded worker pool that executes independent jobs and hands their results
// back in job order, so callers aggregate deterministically no matter how
// the scheduler interleaved the work.
//
// Every (configuration, workload, mix) simulation in internal/exp is
// independent of every other, which makes an experiment a fan-out of Jobs
// followed by a serial render over the ordered results. The pool guarantees:
//
//   - results[i] always corresponds to jobs[i], regardless of completion
//     order, so output built from the slice is byte-identical to a serial
//     run;
//   - under Run, a failing (or panicking) job cancels the jobs that have
//     not started, lets running ones finish, and surfaces the lowest-index
//     error — the pool never wedges; under RunAll, failures degrade to
//     per-job errors and every other job still completes;
//   - every job runs under the configured FaultPolicy (see fault.go):
//     panic isolation, per-attempt timeout, bounded retry with backoff;
//   - cancelling the caller's context stops feeding new jobs promptly.
package runner

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Job is one independent unit of work producing a T.
type Job[T any] struct {
	// Key identifies the job in progress lines and error messages.
	Key string
	// Run computes the job's result. Long-running jobs should observe ctx,
	// but the pool does not require it: cancellation is also enforced
	// between jobs.
	Run func(ctx context.Context) (T, error)
}

// Options configures one pool invocation.
type Options struct {
	// Workers bounds the number of concurrently running jobs. Zero or
	// negative means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives one line per completed job with the
	// done count, elapsed wall clock, and an ETA for the remainder.
	// Progress lines are serialized; their order follows completion order
	// and is NOT deterministic — keep them off any output that must be.
	Progress io.Writer
	// Label prefixes progress lines (typically the experiment ID).
	Label string
	// Fault bounds each job: per-attempt timeout, bounded retry with
	// backoff for transient errors, panic isolation. The zero value means
	// no timeout and no retries (panics still become errors).
	Fault FaultPolicy
	// Clock overrides time for Fault (tests); nil means real time.
	Clock Clock
	// Continue keeps the pool running after a job fails: remaining jobs
	// still execute and per-job errors are reported by RunAll. When false
	// (the Run behavior), the first failure cancels unstarted jobs.
	Continue bool
}

// Run executes jobs on a bounded worker pool and returns their results
// indexed identically to jobs. On error the returned slice is partial:
// entries for unfinished jobs are zero values. The error is the
// lowest-index job failure, or ctx.Err() if the caller's context ended the
// run with no job having failed.
func Run[T any](ctx context.Context, opts Options, jobs []Job[T]) ([]T, error) {
	opts.Continue = false
	results, errs := run(ctx, opts, jobs)
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, ctx.Err()
}

// RunAll executes jobs like Run but degrades instead of aborting: a failing
// job does not cancel the rest, and every job's outcome is reported
// individually — errs[i] is nil iff results[i] is valid. Combined with
// Options.Fault this is the sweep-hardened mode: a panicking or timed-out
// arm becomes a recorded per-job failure while every other job completes.
func RunAll[T any](ctx context.Context, opts Options, jobs []Job[T]) ([]T, []error) {
	opts.Continue = true
	return run(ctx, opts, jobs)
}

func run[T any](ctx context.Context, opts Options, jobs []Job[T]) ([]T, []error) {
	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return results, errs
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// feed serves job indices in order; it closes when all are handed out
	// or the context is cancelled (skipping the rest).
	feed := make(chan int)
	go func() {
		defer close(feed)
		for i := range jobs {
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	prog := &progress{w: opts.Progress, label: opts.Label, total: len(jobs), start: time.Now()}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				if ctx.Err() != nil {
					if opts.Continue {
						errs[i] = ctx.Err()
					}
					continue
				}
				start := time.Now()
				res, err := Execute(ctx, opts.Fault, opts.Clock, jobs[i].Key, jobs[i].Run)
				if err != nil {
					errs[i] = fmt.Errorf("job %q: %w", jobs[i].Key, err)
					if !opts.Continue {
						cancel()
						continue
					}
					prog.finish(jobs[i].Key+" FAILED", time.Since(start))
					continue
				}
				results[i] = res
				prog.finish(jobs[i].Key, time.Since(start))
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// progress serializes per-job completion reporting.
type progress struct {
	w     io.Writer
	label string
	total int
	start time.Time

	mu   sync.Mutex
	done int
}

func (p *progress) finish(key string, took time.Duration) {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	elapsed := time.Since(p.start)
	eta := time.Duration(0)
	if p.done > 0 {
		eta = elapsed / time.Duration(p.done) * time.Duration(p.total-p.done)
	}
	prefix := ""
	if p.label != "" {
		prefix = p.label + ": "
	}
	fmt.Fprintf(p.w, "%s%d/%d jobs, elapsed %s, eta %s (%s took %s)\n",
		prefix, p.done, p.total,
		elapsed.Round(time.Millisecond), eta.Round(time.Millisecond),
		key, took.Round(time.Millisecond))
}
