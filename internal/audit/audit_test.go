package audit

import (
	"strings"
	"testing"
)

func TestNilAuditorIsSafe(t *testing.T) {
	var a *Auditor
	a.Reportf(1, "cpu", "rule", "detail %d", 7)
	a.CountScan()
	a.WriteReport(&strings.Builder{})
	if a.Total() != 0 || a.Scans() != 0 || a.Violations() != nil || a.Err() != nil {
		t.Fatal("nil auditor must behave as an inert no-op")
	}
}

func TestReportfRecordsAndFormats(t *testing.T) {
	a := New(42)
	a.Reportf(100, "L1D", "duplicate-line", "line %#x twice", 0xbeef)
	if a.Total() != 1 {
		t.Fatalf("Total = %d, want 1", a.Total())
	}
	v := a.Violations()[0]
	if v.Cycle != 100 || v.Component != "L1D" || v.Rule != "duplicate-line" {
		t.Fatalf("violation fields wrong: %+v", v)
	}
	if got := v.String(); !strings.Contains(got, "cycle 100") ||
		!strings.Contains(got, "L1D/duplicate-line") ||
		!strings.Contains(got, "0xbeef") {
		t.Fatalf("String() = %q missing expected parts", got)
	}
}

func TestRetentionLimitCapsStorageNotCount(t *testing.T) {
	a := New(1)
	a.Limit = 3
	for i := 0; i < 10; i++ {
		a.Reportf(uint64(i), "dram", "rule", "v%d", i)
	}
	if a.Total() != 10 {
		t.Fatalf("Total = %d, want 10", a.Total())
	}
	if len(a.Violations()) != 3 {
		t.Fatalf("retained %d violations, want 3", len(a.Violations()))
	}
	var sb strings.Builder
	a.WriteReport(&sb)
	if !strings.Contains(sb.String(), "and 7 more") {
		t.Fatalf("report missing dropped-count line:\n%s", sb.String())
	}
}

func TestZeroLimitFallsBackToDefault(t *testing.T) {
	a := &Auditor{}
	for i := 0; i < DefaultLimit+5; i++ {
		a.Reportf(0, "c", "r", "")
	}
	if len(a.Violations()) != DefaultLimit {
		t.Fatalf("retained %d, want DefaultLimit %d", len(a.Violations()), DefaultLimit)
	}
}

func TestErr(t *testing.T) {
	a := New(7)
	if a.Err() != nil {
		t.Fatal("clean auditor must have nil Err")
	}
	a.Reportf(5, "meta", "byte-budget", "over by 64")
	err := a.Err()
	if err == nil {
		t.Fatal("Err must be non-nil after a violation")
	}
	if !strings.Contains(err.Error(), "byte-budget") {
		t.Fatalf("Err = %q, want it to name the first violation's rule", err)
	}
}

func TestWriteReportHeader(t *testing.T) {
	a := New(99)
	a.Label = "streamline|mcf06|1"
	a.CountScan()
	a.CountScan()
	a.Reportf(10, "sim", "partition-sum", "off by one block")
	var sb strings.Builder
	a.WriteReport(&sb)
	out := sb.String()
	for _, want := range []string{"streamline|mcf06|1", "seed 99", "2 scans", "1 violations", "partition-sum"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
