package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"streamline/internal/metrics"
)

// TestExecuteMetrics: the fault policy's instrument hooks account every
// attempt and every final outcome — a flaky-then-successful job, a
// permanently failing one, and a disabled (nil) metrics set.
func TestExecuteMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	pol := FaultPolicy{Retries: 3, Backoff: time.Millisecond, Metrics: m}

	attempts := 0
	_, err := Execute(context.Background(), pol, &fakeClock{}, "flaky",
		func(context.Context) (int, error) {
			attempts++
			if attempts == 1 {
				return 0, fmt.Errorf("transient")
			}
			return 1, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Completed.Value(); got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
	if got := m.Retries.Value(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	if got := m.Attempts.Count(); got != 2 {
		t.Errorf("attempt observations = %d, want 2", got)
	}
	if got := m.Failed.Value(); got != 0 {
		t.Errorf("failed = %d, want 0", got)
	}

	_, err = Execute(context.Background(), pol, &fakeClock{}, "doomed",
		func(context.Context) (int, error) {
			return 0, Permanent(errors.New("broken input"))
		})
	if err == nil {
		t.Fatal("permanent failure did not report an error")
	}
	if got := m.Failed.Value(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}
	if got := m.Attempts.Count(); got != 3 {
		t.Errorf("attempt observations = %d, want 3 (no retry after a permanent error)", got)
	}

	// NewMetrics on the same registry resolves the same instruments.
	if NewMetrics(reg).Completed != m.Completed {
		t.Error("NewMetrics did not get-or-create on the shared registry")
	}
}

// TestExecuteNilMetrics: a policy without metrics runs every path without
// panicking — the nil receiver is the disabled implementation.
func TestExecuteNilMetrics(t *testing.T) {
	attempts := 0
	_, err := Execute(context.Background(),
		FaultPolicy{Retries: 1, Backoff: time.Millisecond}, &fakeClock{}, "quiet",
		func(context.Context) (int, error) {
			attempts++
			if attempts == 1 {
				return 0, fmt.Errorf("transient")
			}
			return 1, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var m *Metrics
	m.attempt(time.Second)
	m.completed()
	m.failed()
	m.retried()
	m.GapInc()
	m.ReplayInc()
}
