package meta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamline/internal/mem"
)

// Property-based tests over the metadata store: invariants that must hold
// for every partitioning scheme under arbitrary operation sequences.

// anyConfig derives a random (but valid) store configuration from fuzz
// inputs.
func anyConfig(filtered, tagged, setPart bool, sizeSel uint8) StoreConfig {
	return StoreConfig{
		Format:         Stream,
		StreamLength:   4,
		Filtered:       filtered,
		Tagged:         tagged,
		SetPartitioned: setPart,
		MetaWaysPerSet: 8,
		MaxBytes:       int(32+uint32(sizeSel)%97) << 10,
	}
}

func TestPropertyLookupAfterInsertFindsEntry(t *testing.T) {
	f := func(filtered, tagged, setPart bool, sizeSel uint8, trig uint32) bool {
		st := NewStore(anyConfig(filtered, tagged, setPart, sizeSel),
			&NullBridge{Sets: 256, Ways: 16})
		tr := mem.Line(trig)
		e := Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}}
		st.Insert(0, 1, e)
		got, ok, _ := st.Lookup(0, 1, tr)
		if st.WouldFilter(tr) {
			return !ok // filtered triggers are never stored
		}
		// The trigger hash can alias, but a lone insert must be found.
		return ok && len(got.Targets) == 4 && got.Targets[0] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(filtered, tagged, setPart bool, sizeSel uint8, seed int64) bool {
		st := NewStore(anyConfig(filtered, tagged, setPart, sizeSel),
			&NullBridge{Sets: 256, Ways: 16})
		capEntries := st.SizeBytes() / mem.LineSize * 4
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			tr := mem.Line(rng.Uint64() >> 20)
			st.Insert(0, 1, Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}})
		}
		return st.Occupancy() <= capEntries
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyResizeNeverGrowsOccupancyAndStaysSound(t *testing.T) {
	f := func(filtered, tagged, setPart bool, seed int64, shrinkSel uint8) bool {
		st := NewStore(anyConfig(filtered, tagged, setPart, 64),
			&NullBridge{Sets: 256, Ways: 16})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			tr := mem.Line(rng.Uint64() >> 20)
			st.Insert(0, 1, Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}})
		}
		before := st.Occupancy()
		newSize := st.SizeBytes() >> (1 + shrinkSel%3)
		st.Resize(newSize)
		after := st.Occupancy()
		if after > before {
			return false
		}
		// Every surviving entry must still be reachable via Lookup (no
		// misplacement): sample the dump.
		dump := st.DumpEntries()
		for i, e := range dump {
			if i >= 100 {
				break
			}
			if _, ok, _ := st.Lookup(0, 1, e.Trigger); !ok {
				return false
			}
		}
		return after <= st.SizeBytes()/mem.LineSize*4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFilteredStoresNeverRearrange(t *testing.T) {
	f := func(tagged, setPart bool, seed int64) bool {
		cfg := anyConfig(true, tagged, setPart, 64)
		st := NewStore(cfg, &NullBridge{Sets: 256, Ways: 16})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1500; i++ {
			st.Insert(0, 1, Entry{Trigger: mem.Line(rng.Uint64() >> 20),
				Targets: []mem.Line{1, 2, 3, 4}})
		}
		st.Resize(st.SizeBytes() / 2)
		st.Resize(cfg.MaxBytes)
		return st.Stats.RearrangeReads == 0 && st.Stats.RearrangeWrites == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyWouldFilterConsistentWithInsert(t *testing.T) {
	f := func(tagged, setPart bool, trig uint32, shrink bool) bool {
		cfg := anyConfig(true, tagged, setPart, 64)
		st := NewStore(cfg, &NullBridge{Sets: 256, Ways: 16})
		if shrink {
			st.Resize(cfg.MaxBytes / 4)
		}
		tr := mem.Line(trig)
		before := st.Stats.FilteredInserts
		st.Insert(0, 1, Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}})
		filtered := st.Stats.FilteredInserts > before
		return filtered == st.WouldFilter(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTrafficMonotone(t *testing.T) {
	// Reads+writes never decrease and each op adds at most one block.
	f := func(ops []uint32) bool {
		st := NewStore(anyConfig(true, true, true, 64), &NullBridge{Sets: 256, Ways: 16})
		prev := st.Stats.Traffic()
		for _, op := range ops {
			tr := mem.Line(op >> 2)
			if op&1 == 0 {
				st.Insert(0, 1, Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}})
			} else {
				st.Lookup(0, 1, tr)
			}
			cur := st.Stats.Traffic()
			if cur < prev || cur > prev+1 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
