package meta

import (
	"math/rand"
	"testing"

	"streamline/internal/mem"
)

// Tests for the remaining Table I scheme behaviors and partitioning corner
// cases not covered by store_test.go.

func TestAllSchemeNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, filtered := range []bool{false, true} {
		for _, tagged := range []bool{false, true} {
			for _, setPart := range []bool{false, true} {
				st := NewStore(StoreConfig{
					Format: Stream, StreamLength: 4,
					Filtered: filtered, Tagged: tagged, SetPartitioned: setPart,
					MetaWaysPerSet: 8, MaxBytes: 128 << 10,
				}, llc2MB())
				n := st.SchemeName()
				if seen[n] {
					t.Errorf("duplicate scheme name %q", n)
				}
				seen[n] = true
			}
		}
	}
	if len(seen) != 8 {
		t.Errorf("%d schemes, want 8", len(seen))
	}
}

func TestHybridIdentityAtHalfSize(t *testing.T) {
	// At a shrink factor of 2 there is nothing to split: hybrid equals
	// pure set-partitioning.
	mk := func(hybrid bool) *Store {
		cfg := streamlineConfig()
		cfg.Hybrid = hybrid
		s := NewStore(cfg, llc2MB())
		s.Resize(512 << 10)
		return s
	}
	a, b := mk(false), mk(true)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		tr := mem.Line(rng.Uint64() >> 16)
		if a.WouldFilter(tr) != b.WouldFilter(tr) {
			t.Fatalf("hybrid differs from pure at half size for trigger %d", tr)
		}
	}
}

func TestResizeToZeroAndBack(t *testing.T) {
	s := NewStore(streamlineConfig(), llc2MB())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		s.Insert(0, 1, Entry{Trigger: mem.Line(rng.Uint64() >> 16),
			Targets: []mem.Line{1, 2, 3, 4}})
	}
	s.Resize(0)
	if s.SizeBytes() != 0 {
		t.Errorf("size after Resize(0) = %d", s.SizeBytes())
	}
	if s.Occupancy() != 0 {
		t.Errorf("occupancy after Resize(0) = %d", s.Occupancy())
	}
	// Lookups and inserts at size zero are all filtered.
	if _, ok, _ := s.Lookup(0, 1, 123); ok {
		t.Error("lookup hit in a zero-size store")
	}
	before := s.Stats.FilteredInserts
	s.Insert(0, 1, Entry{Trigger: 9, Targets: []mem.Line{1, 2, 3, 4}})
	if s.Stats.FilteredInserts != before+1 {
		t.Error("insert into zero-size store not filtered")
	}
	// Growing back restores service.
	s.Resize(1 << 20)
	s.Insert(0, 1, Entry{Trigger: 9, Targets: []mem.Line{1, 2, 3, 4}})
	if _, ok, _ := s.Lookup(0, 1, 9); !ok {
		t.Error("store unusable after growing back from zero")
	}
}

func TestResizeAboveMaxClamps(t *testing.T) {
	s := NewStore(streamlineConfig(), llc2MB())
	s.Resize(64 << 20)
	if s.SizeBytes() != 1<<20 {
		t.Errorf("size after oversize resize = %d, want max 1MB", s.SizeBytes())
	}
}

func TestConfidenceBitLifecycle(t *testing.T) {
	s := NewStore(streamlineConfig(), llc2MB())
	e := Entry{Trigger: 77, Targets: []mem.Line{1, 2, 3, 4}}
	if _, conf := s.Insert(0, 1, e); conf {
		t.Error("first insert reported confirmed")
	}
	if _, conf := s.Insert(0, 1, e); !conf {
		t.Error("identical re-insert did not confirm")
	}
	got, _, _ := s.Lookup(0, 1, 77)
	if !got.Conf {
		t.Error("lookup does not see the confirmed bit")
	}
	e2 := Entry{Trigger: 77, Targets: []mem.Line{9, 8, 7, 6}}
	if _, conf := s.Insert(0, 1, e2); conf {
		t.Error("different targets kept confidence")
	}
	got, _, _ = s.Lookup(0, 1, 77)
	if got.Conf {
		t.Error("confidence bit not cleared by a retargeting store")
	}
}

func TestWayModeGranularity(t *testing.T) {
	// Way-partitioned sizes step in whole ways across all LLC sets.
	s := NewStore(triangelConfig(), llc2MB())
	s.Resize(300 << 10) // not a multiple of 128KB (2048 sets x 64B)
	if s.SizeBytes()%(2048*64) != 0 {
		t.Errorf("way-mode size %d not way-granular", s.SizeBytes())
	}
}
