package serve

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzRequestDecode feeds arbitrary bytes through the daemon's request
// decoder and checks its safety properties: it never panics, everything it
// accepts is a fully normalized spec whose identity is deterministic, and an
// accepted spec survives a marshal/decode round trip unchanged — the
// invariant the content-addressed cache rests on.
//
// The seed corpus under testdata/fuzz/FuzzRequestDecode covers the
// interesting classes: a valid minimal request, a fully specified one, an
// unknown workload, negative cores, an oversized padded body, and truncated
// JSON.
func FuzzRequestDecode(f *testing.F) {
	f.Add([]byte(`{"workload":"sphinx06"}`))
	f.Add([]byte(tinyBody))
	f.Add([]byte(`{"workload":"nope"}`))
	f.Add([]byte(`{"workload":"sphinx06","cores":-3}`))
	f.Add([]byte(`{"workload":"sphinx06","l1":"` + string(bytes.Repeat([]byte{'a'}, 4096)) + `"}`))
	f.Add([]byte(`{"workload":"sph`))
	f.Add([]byte(`{"workload":"sphinx06"} {}`))
	f.Add([]byte(`{"workload":"sphinx06","footprint":1e-300}`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := DecodeRequestBytes(data)
		if err != nil {
			return // rejection is fine; not panicking is the property
		}
		// Accepted implies normalized: a second Normalize is a no-op.
		again := sp
		if err := again.Normalize(); err != nil {
			t.Fatalf("accepted spec fails re-normalization: %v\n%+v", err, sp)
		}
		if again != sp {
			t.Fatalf("accepted spec is not normalization-stable:\n got %+v\nwas %+v", again, sp)
		}
		// Identity is a deterministic SHA-256 content address.
		key := sp.Key()
		if raw, err := hex.DecodeString(key); err != nil || len(raw) != 32 {
			t.Fatalf("key %q is not a SHA-256 hex digest", key)
		}
		if sp.Key() != key {
			t.Fatal("key is not deterministic")
		}
		// Marshal/decode round trip preserves the spec and its address.
		enc, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("marshal accepted spec: %v", err)
		}
		rt, err := DecodeRequestBytes(enc)
		if err != nil {
			t.Fatalf("round-trip decode rejected an accepted spec: %v\n%s", err, enc)
		}
		if rt != sp || rt.Key() != key {
			t.Fatalf("round trip changed the spec:\n got %+v\nwas %+v", rt, sp)
		}
	})
}

// TestFuzzSeedCorpusCommitted pins the committed corpus so the fuzz smoke in
// the verify skill always starts from the interesting request classes.
func TestFuzzSeedCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzRequestDecode")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	if len(ents) < 5 {
		t.Fatalf("seed corpus has %d entries, want >= 5", len(ents))
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, []byte("go test fuzz v1\n")) {
			t.Errorf("%s: not a go fuzz corpus file", e.Name())
		}
	}
}
