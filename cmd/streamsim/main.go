// Command streamsim runs one workload through one system configuration and
// prints its statistics — the quick way to poke at the simulator.
//
// Usage:
//
//	streamsim -workload sphinx06 -temporal streamline
//	streamsim -workload pr -l1 stride -temporal triangel -cores 4
//	streamsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"streamline/internal/audit"
	"streamline/internal/core"
	"streamline/internal/dram"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/berti"
	"streamline/internal/prefetch/bingo"
	"streamline/internal/prefetch/ipcp"
	"streamline/internal/prefetch/spp"
	"streamline/internal/prefetch/stms"
	"streamline/internal/prefetch/stride"
	"streamline/internal/prefetch/triage"
	"streamline/internal/prefetch/triangel"
	"streamline/internal/sim"
	"streamline/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "sphinx06", "workload name")
		l1        = flag.String("l1", "stride", "L1D prefetcher: none|stride|berti")
		l2        = flag.String("l2", "none", "L2 prefetcher: none|ipcp|bingo|spp")
		temporal  = flag.String("temporal", "none", "temporal prefetcher: none|triage|triangel|streamline|streamline-bypass|stms")
		cores     = flag.Int("cores", 1, "core count (same workload on every core)")
		footprint = flag.Float64("footprint", 0.1, "workload footprint scale")
		warmup    = flag.Uint64("warmup", 400_000, "warmup instructions")
		measure   = flag.Uint64("measure", 1_200_000, "measured instructions")
		metaKB    = flag.Int("meta-kb", 128, "max metadata partition per core (KB)")
		llcSets   = flag.Int("llc-sets", 256, "LLC sets per core (256=256KB, 2048=2MB)")
		seed      = flag.Int64("seed", 1, "workload seed")
		list      = flag.Bool("list", false, "list workloads and exit")
		check     = flag.Bool("check", false, "enable the runtime invariant audit; exit 1 on violations")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range workloads.All() {
			irr := ""
			if w.Irregular {
				irr = " (irregular)"
			}
			fmt.Printf("  %-14s %s%s\n", w.Name, w.Suite, irr)
		}
		return
	}

	w, err := workloads.Get(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *cores < 1 {
		*cores = 1
	}
	if *llcSets < 16 || *llcSets&(*llcSets-1) != 0 {
		fmt.Fprintf(os.Stderr, "-llc-sets must be a power of two >= 16, got %d\n", *llcSets)
		os.Exit(2)
	}

	cfg := sim.DefaultConfig(*cores)
	cfg.LLC.Sets = *llcSets
	cfg.L2.Sets = max(64, *llcSets/2)
	cfg.WarmupInstructions = *warmup
	cfg.MeasureInstructions = *measure

	switch *l1 {
	case "stride":
		cfg.L1DPrefetcher = func() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) }
	case "berti":
		cfg.L1DPrefetcher = func() prefetch.Prefetcher { return berti.New(berti.DefaultConfig) }
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "unknown l1 prefetcher %q\n", *l1)
		os.Exit(2)
	}
	switch *l2 {
	case "ipcp":
		cfg.L2Prefetcher = func() prefetch.Prefetcher { return ipcp.New(ipcp.DefaultConfig) }
	case "bingo":
		cfg.L2Prefetcher = func() prefetch.Prefetcher { return bingo.New(bingo.DefaultConfig) }
	case "spp":
		cfg.L2Prefetcher = func() prefetch.Prefetcher { return spp.New(spp.DefaultConfig) }
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "unknown l2 prefetcher %q\n", *l2)
		os.Exit(2)
	}
	metaBytes := *metaKB << 10
	switch *temporal {
	case "triage":
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			c := triage.DefaultConfig()
			c.MetaBytes = metaBytes
			return triage.New(c, b)
		}
	case "triangel":
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			c := triangel.DefaultConfig()
			c.MetaBytes = metaBytes
			return triangel.New(c, b)
		}
	case "streamline", "streamline-bypass":
		bypass := *temporal == "streamline-bypass"
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
			o := core.DefaultOptions()
			o.MetaBytes = metaBytes
			o.MinSets = max(8, *llcSets/16)
			o.Bypass = bypass
			return core.New(o, b)
		}
	case "stms":
		cfg.TemporalDRAM = func(d *dram.DRAM) prefetch.Prefetcher {
			return stms.New(stms.DefaultConfig(), d)
		}
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "unknown temporal prefetcher %q\n", *temporal)
		os.Exit(2)
	}

	var aud *audit.Auditor
	if *check {
		aud = audit.New(*seed)
		aud.Label = fmt.Sprintf("%s|%s|%s|%s|x%d", *workload, *l1, *l2, *temporal, *cores)
		cfg.Audit = aud
	}

	sys := sim.New(cfg)
	for c := 0; c < *cores; c++ {
		sys.SetTrace(c, w.NewTrace(workloads.Scale{Footprint: *footprint}, *seed+int64(c)))
	}
	res := sys.Run()

	fmt.Printf("workload=%s cores=%d l1=%s l2=%s temporal=%s\n",
		*workload, *cores, *l1, *l2, *temporal)
	for i, c := range res.Cores {
		fmt.Printf("core %d: IPC %.4f  (%d instr, %d cycles)\n", i, c.IPC, c.Instructions, c.Cycles)
		fmt.Printf("  L1D: %.1f%% hit, %d misses     L2: %.1f%% hit, %d misses (%.2f MPKI)\n",
			c.L1D.DemandHitRate()*100, c.L1D.DemandMisses,
			c.L2.DemandHitRate()*100, c.L2.DemandMisses, c.L2MPKI())
		if c.PrefetchesIssued > 0 {
			fmt.Printf("  prefetch: %d issued, %d L2 fills, %d useful (%.1f%% accuracy)\n",
				c.PrefetchesIssued, c.L2.PrefetchFills, c.L2.UsefulPrefetches,
				c.PrefetchAccuracy()*100)
		}
		if c.Meta.Lookups > 0 {
			fmt.Printf("  metadata: %d lookups (%.1f%% trigger hit), %d reads, %d writes, %d rearrange blocks, %d filtered\n",
				c.Meta.Lookups, c.Meta.TriggerHitRate()*100, c.Meta.Reads, c.Meta.Writes,
				c.Meta.RearrangeReads+c.Meta.RearrangeWrites, c.Meta.FilteredInserts)
		}
	}
	fmt.Printf("LLC: %.1f%% demand hit, %d meta reads, %d meta writes\n",
		res.LLC.DemandHitRate()*100, res.LLC.MetaReads, res.LLC.MetaWrites)
	fmt.Printf("DRAM: %d reads, %d writes, %.1f%% row hits, %d queue cycles\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.RowHitRate()*100, res.DRAM.QueueCycles)

	if aud != nil {
		// Audit output goes to stderr so stdout stays byte-identical with
		// unaudited runs.
		if aud.Total() > 0 {
			aud.WriteReport(os.Stderr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "audit: clean (%d scans)\n", aud.Scans())
	}
}
