package cpu

import "testing"

func TestWidthBoundsIPC(t *testing.T) {
	c := New(Config{Width: 4, ROB: 64})
	// Pure compute: IPC approaches the width.
	c.Advance(100000)
	if ipc := c.IPC(); ipc < 3.9 || ipc > 4.1 {
		t.Errorf("compute-only IPC = %.2f, want ~4", ipc)
	}
}

func TestFastMemoryDoesNotStall(t *testing.T) {
	c := New(DefaultConfig)
	for i := 0; i < 10000; i++ {
		c.Advance(4)
		t0 := c.BeginMem(false)
		c.EndMem(t0+5, true) // L1-hit latency
	}
	if ipc := c.IPC(); ipc < 5.5 {
		t.Errorf("L1-hit IPC = %.2f, want close to width 6", ipc)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	// Dependent misses: each load waits for the previous one; cycles should
	// be about nLoads * latency.
	run := func(dep bool) uint64 {
		c := New(DefaultConfig)
		const lat = 200
		for i := 0; i < 1000; i++ {
			c.Advance(2)
			t0 := c.BeginMem(dep)
			c.EndMem(t0+lat, true)
		}
		return c.Finish()
	}
	depCycles := run(true)
	indepCycles := run(false)
	if depCycles < 1000*200 {
		t.Errorf("dependent chain finished in %d cycles, want >= 200000", depCycles)
	}
	// Independent misses overlap within the ROB window: much faster.
	if indepCycles*4 > depCycles {
		t.Errorf("independent (%d) not much faster than dependent (%d)", indepCycles, depCycles)
	}
}

func TestROBBoundsOverlap(t *testing.T) {
	// With a tiny ROB, even independent misses cannot overlap much.
	run := func(rob int) uint64 {
		c := New(Config{Width: 6, ROB: rob})
		const lat = 400
		for i := 0; i < 2000; i++ {
			c.Advance(4)
			t0 := c.BeginMem(false)
			c.EndMem(t0+lat, true)
		}
		return c.Finish()
	}
	small, big := run(8), run(512)
	if small <= big {
		t.Errorf("small-ROB cycles (%d) <= big-ROB cycles (%d)", small, big)
	}
	if float64(small) < 1.5*float64(big) {
		t.Errorf("ROB size has too little effect: %d vs %d", small, big)
	}
}

func TestFinishWaitsForLastMiss(t *testing.T) {
	c := New(DefaultConfig)
	c.Advance(10)
	t0 := c.BeginMem(false)
	c.EndMem(t0+5000, true)
	if got := c.Finish(); got < t0+5000 {
		t.Errorf("Finish() = %d, want >= %d", got, t0+5000)
	}
}

func TestInstructionsCounted(t *testing.T) {
	c := New(DefaultConfig)
	c.Advance(123)
	c.Advance(7)
	if c.Instructions() != 130 {
		t.Errorf("Instructions = %d, want 130", c.Instructions())
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	c := New(Config{})
	c.Advance(600)
	if ipc := c.IPC(); ipc < 5.5 || ipc > 6.5 {
		t.Errorf("default-config IPC = %.2f, want ~6", ipc)
	}
}

func TestStoresDoNotSerializeDependents(t *testing.T) {
	// EndMem with isLoad=false must not update the dependence chain.
	c := New(DefaultConfig)
	c.Advance(1)
	t0 := c.BeginMem(false)
	c.EndMem(t0+10000, false) // a store with silly latency
	c.Advance(1)
	t1 := c.BeginMem(true)
	if t1 >= t0+10000 {
		t.Errorf("dependent op waited for a store: t1=%d", t1)
	}
}
