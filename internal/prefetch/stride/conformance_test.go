package stride_test

import (
	"testing"

	"streamline/internal/prefetch"
	"streamline/internal/prefetch/ptest"
	"streamline/internal/prefetch/stride"
)

func TestConformance(t *testing.T) {
	cfgs := map[string]stride.Config{
		"default": stride.DefaultConfig,
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			ptest.Exercise(t, func() prefetch.Prefetcher { return stride.New(cfg) })
		})
	}
}

// TestOracle runs this engine's request stream against the differential
// cache oracle (see ptest.Oracle).
func TestOracle(t *testing.T) {
	ptest.Oracle(t, func() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) })
}
