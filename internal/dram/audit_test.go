package dram

import (
	"testing"

	"streamline/internal/audit"
	"streamline/internal/mem"
)

func dramRules(d *DRAM) map[string]int {
	a := audit.New(0)
	d.AuditScan(a, 0)
	rules := map[string]int{}
	for _, v := range a.Violations() {
		rules[v.Rule]++
	}
	return rules
}

func exercisedDRAM() *DRAM {
	d := New(ConfigFor(1))
	for i := 0; i < 64; i++ {
		d.Access(uint64(i*100), mem.Line(i*977), false)
	}
	for i := 0; i < 16; i++ {
		d.Write(uint64(i*100), mem.Line(i*1031))
	}
	return d
}

func TestAuditCleanAfterTraffic(t *testing.T) {
	if r := dramRules(exercisedDRAM()); len(r) != 0 {
		t.Fatalf("clean DRAM reports violations: %v", r)
	}
}

func TestAuditDetectsChannelMiscount(t *testing.T) {
	d := exercisedDRAM()
	d.chanXfers[0]++
	if r := dramRules(d); r["channel-conservation"] == 0 {
		t.Fatalf("channel transfer miscount not detected: %v", r)
	}
}

func TestAuditDetectsIllegalRowState(t *testing.T) {
	d := exercisedDRAM()
	d.banks[0][0].openRow = -2
	if r := dramRules(d); r["row-state-illegal"] == 0 {
		t.Fatalf("illegal row state not detected: %v", r)
	}
}

func TestAuditDetectsRowOutcomeDrift(t *testing.T) {
	d := exercisedDRAM()
	d.Stats.RowHits++
	if r := dramRules(d); r["row-outcome-accounting"] == 0 {
		t.Fatalf("row outcome drift not detected: %v", r)
	}
}
