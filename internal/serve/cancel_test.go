package serve

// Cancellation-path coverage: client disconnect mid-simulate, job timeout,
// and drain-deadline abort. Each path must (1) stop the simulation promptly,
// (2) never cache a partial result, (3) account the outcome in the canceled
// or failed counter, and (4) leave zero goroutines behind — the requests here
// go straight through Handler().ServeHTTP with no sockets, so a bare
// runtime.NumGoroutine() before/after comparison is meaningful.

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// slowBody is a simulation near the instruction ceiling: far too slow to
// finish inside any test, so the only way these requests end is cancellation
// or timeout — which is exactly what is under test.
const slowBody = `{"workload":"sphinx06","footprint":0.05,"warmup":1000,"measure":99000000,"llcSets":16,"metaKb":8}`

// directPost performs one in-process /simulate request (no client, no
// listener), returning the recorder after the handler fully settles. A nil
// ctx means the request is never abandoned.
func directPost(s *Server, ctx context.Context, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/simulate", strings.NewReader(body))
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// scrapeGauge reads one metric's current value straight off the server's
// registry exposition.
func scrapeGauge(t *testing.T, s *Server, name string) float64 {
	t.Helper()
	var sb strings.Builder
	s.Metrics().WriteText(&sb)
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("unparseable %s sample %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// assertGoroutinesSettle fails unless the goroutine count returns to the
// baseline captured before the test body ran — the no-abandoned-goroutines
// guarantee, with a settle window for the runtime to reap exited goroutines.
func assertGoroutinesSettle(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: before=%d now=%d", before, runtime.NumGoroutine())
}

// TestClientDisconnectNotCached is the regression for the abandoned-flight
// bug: a client that disconnects mid-simulate cancels the computation (it was
// the only audience), the partial result is NOT cached, and an identical
// re-request recomputes from scratch. Deterministic ordering: the compute
// hook gates the first simulation until after the disconnect has propagated,
// so the engine observes an already-canceled context.
func TestClientDisconnectNotCached(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{})
	gate := make(chan struct{})
	var first atomic.Bool
	s.SetComputeHook(func(string) {
		if first.CompareAndSwap(false, true) {
			<-gate
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	settled := make(chan *httptest.ResponseRecorder, 1)
	go func() { settled <- directPost(s, ctx, tinyBody) }()
	waitFor(t, "flight admission", func() bool { return s.Status().Queued == 1 })

	cancel()    // the client goes away
	<-settled   // handler returned via the abandoned path: flight canceled
	close(gate) // now let the simulation proceed into its canceled context

	waitFor(t, "cancellation accounting", func() bool { return s.Counters().Canceled == 1 })
	waitFor(t, "flight teardown", func() bool { return s.Status().Queued == 0 })
	if c := s.Counters(); c.Computed != 0 || c.Failed != 0 {
		t.Fatalf("counters after disconnect: %+v, want computed=0 failed=0 canceled=1", c)
	}
	if n := s.cache.len(); n != 0 {
		t.Fatalf("canceled computation was cached (%d entries)", n)
	}

	// The identical re-request must recompute — nothing was cached.
	rec := directPost(s, nil, tinyBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("re-request: status %d, want 200\n%s", rec.Code, rec.Body.String())
	}
	if tier := rec.Header().Get("X-Streamd-Cache"); tier != "none" {
		t.Errorf("re-request tier %q, want none (disconnect must not populate any tier)", tier)
	}
	if c := s.Counters(); c.Computed != 1 || c.Canceled != 1 {
		t.Errorf("counters after re-request: %+v, want computed=1 canceled=1", c)
	}

	// The outcome is visible on both observability surfaces.
	if s.Status().Canceled != 1 {
		t.Error("statusz does not report the canceled computation")
	}
	var sb strings.Builder
	s.Metrics().WriteText(&sb)
	if !strings.Contains(sb.String(), `streamd_responses_total{outcome="canceled"} 1`) {
		t.Error("metricz does not expose the canceled outcome counter")
	}
	assertGoroutinesSettle(t, before)
}

// TestJobTimeoutFreesWorkerSlot: a cooperative timeout stops the engine at
// its next epoch boundary, answers 504, and genuinely frees the worker slot
// — with a single worker, a follow-up request computes immediately. The
// simulation is real (no hook): the near-ceiling spec cannot finish, so the
// 504 proves the timeout interrupted a live engine.
func TestJobTimeoutFreesWorkerSlot(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 1, JobTimeout: 50 * time.Millisecond})

	rec := directPost(s, nil, slowBody)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("hung job: status %d, want 504\n%s", rec.Code, rec.Body.String())
	}
	if c := s.Counters(); c.Failed != 1 || c.Computed != 0 || c.Canceled != 0 {
		t.Fatalf("counters after timeout: %+v, want failed=1 computed=0 canceled=0", c)
	}

	// The only worker slot must be free again: a fast request succeeds.
	rec = directPost(s, nil, tinyBody)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Streamd-Cache") != "none" {
		t.Fatalf("post-timeout request: status %d tier %q, want 200/none",
			rec.Code, rec.Header().Get("X-Streamd-Cache"))
	}
	if got := s.inFlight.Load(); got != 0 {
		t.Errorf("inFlight=%d after both requests settled, want 0", got)
	}
	assertGoroutinesSettle(t, before)
}

// TestDrainDeadlineCancelsInFlight: when Drain's context expires, every
// in-flight computation is canceled cooperatively, its waiter answers 503
// with the canceled outcome, and Drain returns only after the workers have
// unwound — no simulating goroutine survives a drained server.
func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{})

	settled := make(chan *httptest.ResponseRecorder, 1)
	go func() { settled <- directPost(s, nil, slowBody) }()
	waitFor(t, "simulation to take a worker slot", func() bool {
		return s.inFlight.Load() == 1
	})
	// The live-progress gauge must tick while the engine runs.
	waitFor(t, "streamd_sim_progress to advance", func() bool {
		return scrapeGauge(t, s, "streamd_sim_progress") > 0
	})

	dctx, dcancel := context.WithCancel(context.Background())
	dcancel() // deadline already passed: Drain must cancel, not wait
	if err := s.Drain(dctx); err != context.Canceled {
		t.Fatalf("Drain = %v, want context.Canceled", err)
	}

	rec := <-settled
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("aborted waiter: status %d, want 503\n%s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "canceled before completion") {
		t.Errorf("aborted waiter body %q does not explain the cancellation", rec.Body.String())
	}
	if c := s.Counters(); c.Canceled != 1 || c.Computed != 0 {
		t.Errorf("counters after drain abort: %+v, want canceled=1 computed=0", c)
	}
	if n := s.cache.len(); n != 0 {
		t.Errorf("drain-aborted computation was cached (%d entries)", n)
	}
	if g := scrapeGauge(t, s, "streamd_sim_progress"); g != 0 {
		t.Errorf("streamd_sim_progress=%v after drain, want 0 (no flights left)", g)
	}
	assertGoroutinesSettle(t, before)
}
