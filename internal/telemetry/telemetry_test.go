package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSeverityRoundTrip(t *testing.T) {
	for _, sev := range []Severity{Debug, Info, Warn} {
		got, err := ParseSeverity(sev.String())
		if err != nil || got != sev {
			t.Errorf("ParseSeverity(%q) = %v, %v", sev.String(), got, err)
		}
	}
	if _, err := ParseSeverity("loud"); err == nil {
		t.Error("ParseSeverity accepted an unknown level")
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	if c.SampleInterval() != 0 {
		t.Error("nil collector should report interval 0")
	}
	if c.WantEvent(Warn) {
		t.Error("nil collector should want no events")
	}
	c.Eventf(1, 0, "L1D", "x", Warn, "boom")
	c.RecordInterval(IntervalRecord{})
	c.KeepIntervals()
	if err := c.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if em := c.Emitter("L1D", 0); em != nil {
		t.Error("nil collector should hand out nil emitters")
	}
	var e *Emitter
	if e.Enabled(Warn) {
		t.Error("nil emitter should be disabled")
	}
	e.Eventf(1, Warn, "x", "boom") // must not panic
}

func TestSinkSeverityFilter(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf) // default min severity: Info
	c := New(s, 0)
	c.Eventf(1, 0, "L1D", "mshr-full", Debug, "filtered")
	c.Eventf(2, 0, "meta", "resize", Info, "kept")
	c.Eventf(3, 0, "sim", "audit-x", Warn, "kept")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "mshr-full") {
		t.Error("debug event leaked past an Info filter")
	}
	for _, want := range []string{"resize", "audit-x"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestSinkEventBound(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	s.SetMinSeverity(Debug)
	s.SetEventLimit(3)
	c := New(s, 0)
	for i := 0; i < 10; i++ {
		c.Eventf(uint64(i), 0, "dram", "row-conflict", Debug, "n=%d", i)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var events, summaries int
	var sum summaryRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		switch m["type"] {
		case "event":
			events++
		case "summary":
			summaries++
			if err := json.Unmarshal(sc.Bytes(), &sum); err != nil {
				t.Fatal(err)
			}
		}
	}
	if events != 3 {
		t.Errorf("retained %d events, want 3", events)
	}
	if summaries != 1 {
		t.Fatalf("got %d summary records, want 1", summaries)
	}
	if sum.Events != 3 || sum.Dropped != 7 {
		t.Errorf("summary events=%d dropped=%d, want 3/7", sum.Events, sum.Dropped)
	}
	if len(sum.Drops) != 1 || sum.Drops[0].Event != "dram/row-conflict" || sum.Drops[0].Count != 7 {
		t.Errorf("drop breakdown = %+v", sum.Drops)
	}
}

func TestIntervalsBypassFilterAndBound(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	s.SetEventLimit(1)
	s.SetMinSeverity(Warn)
	c := New(s, 100)
	for i := 0; i < 5; i++ {
		c.RecordInterval(IntervalRecord{Core: 0, Seq: i})
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), `"type":"interval"`); got != 5 {
		t.Errorf("wrote %d interval records, want 5", got)
	}
}

func TestTimelineRendering(t *testing.T) {
	c := New(nil, 1000)
	c.KeepIntervals()
	c.RecordInterval(IntervalRecord{Core: 0, Seq: 0, Instructions: 1000, IPC: 0.5, L2MPKI: 12.5})
	c.RecordInterval(IntervalRecord{Core: 1, Seq: 0, Instructions: 1000, IPC: 0.25})
	var buf bytes.Buffer
	c.Timeline(&buf)
	out := buf.String()
	if !strings.Contains(out, "l2-mpki") || !strings.Contains(out, "0.5000") {
		t.Errorf("timeline output missing expected cells:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 4 { // banner + header + 2 rows
		t.Errorf("timeline has %d lines, want 4:\n%s", lines, out)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		s := NewSink(&buf)
		s.SetMinSeverity(Debug)
		s.SetEventLimit(2)
		c := New(s, 50)
		c.RecordInterval(IntervalRecord{Core: 0, Seq: 0, IPC: 1.0 / 3.0})
		for i := 0; i < 4; i++ {
			c.Eventf(uint64(i), 0, "L2", "mshr-full", Debug, "stall %d", i)
			c.Eventf(uint64(i), 0, "dram", "row-conflict", Debug, "bank %d", i)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("two identical runs produced different output:\n%s\n----\n%s", a, b)
	}
}

// TestConcurrentSinkIsRaceFree: many goroutines share one concurrent sink;
// every emitted line must still be one valid JSON record and the closing
// summary must account for every event (run under -race to prove the locking).
func TestConcurrentSinkIsRaceFree(t *testing.T) {
	var buf bytes.Buffer
	s := NewConcurrentSink(&buf)
	s.SetEventLimit(1 << 20)
	c := New(s, 0)

	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Eventf(uint64(i), -1, "serve", "request", Info, "g%d req %d", g, i)
			}
		}(g)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	lines := 0
	var last map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("interleaved/corrupt JSONL line %q: %v", line, err)
		}
		lines++
		last = rec
	}
	if want := goroutines*perG + 1; lines != want {
		t.Errorf("sink wrote %d lines, want %d events + 1 summary", lines, want)
	}
	if last["type"] != "summary" || last["events"] != float64(goroutines*perG) {
		t.Errorf("summary record wrong: %v", last)
	}
}
