package meta

import "streamline/internal/mem"

// This file implements the dynamic partitioning machinery of Section IV-D2.
// Both Triangel and Streamline size their metadata partition by comparing
// the utility of LLC capacity spent on data against capacity spent on
// metadata. The paper realizes this with set dueling; we realize the same
// objective with sampled stack-distance profiling (auxiliary tag
// directories), which evaluates every candidate size each epoch instead of
// dueling two at a time. The difference the paper studies is preserved
// exactly: Triangel weights every metadata hit equally, while Streamline's
// utility-aware partitioner scores metadata hits by the current global
// prefetch accuracy (its Section IV-E4 increment table).

// PartitionMode selects how candidate sizes translate into capacity.
type PartitionMode int

const (
	// WayMode models Triangel: k ways of every LLC set, k in 0..8.
	WayMode PartitionMode = iota
	// SetMode models Streamline: 8 ways of every 2^k-th set, with
	// filtered indexing (smaller sizes drop a fraction of triggers
	// rather than compressing them).
	SetMode
)

// PartitionerConfig parameterizes a Partitioner.
type PartitionerConfig struct {
	Mode PartitionMode
	// Sizes are the candidate partition sizes in bytes, ascending.
	Sizes []int
	// MaxBytes is the largest size (capacity reference).
	MaxBytes int
	// LLCWays is the host associativity (16).
	LLCWays int
	// MetaWaysPerSet is the ways a set-partitioned metadata set occupies.
	MetaWaysPerSet int
	// EntriesPerBlock converts blocks to metadata entries.
	EntriesPerBlock int
	// EpochAccesses is the decision period in observed accesses (2^15).
	EpochAccesses uint64
	// DataWeight scores one data hit (16).
	DataWeight float64
	// MetaWeight scores one trigger hit given current prefetch accuracy.
	// Triangel passes a constant function; Streamline passes the banded
	// table of Section IV-E4.
	MetaWeight func(accuracy float64) float64
	// SampleShift samples every 2^SampleShift-th set (6: every 64th).
	SampleShift uint
}

// StreamlineMetaWeight is the paper's accuracy-banded increment table:
// 10-25% accuracy scores 2, 25-50% scores 3, 50-70% scores 4, 70-90%
// scores 6, 90-95% scores 7 and 95%+ scores 8 (data hits score 16).
func StreamlineMetaWeight(acc float64) float64 {
	switch {
	case acc < 0.10:
		return 1
	case acc < 0.25:
		return 2
	case acc < 0.50:
		return 3
	case acc < 0.70:
		return 4
	case acc < 0.90:
		return 6
	case acc < 0.95:
		return 7
	default:
		return 8
	}
}

// EqualMetaWeight is Triangel's equal scoring of data and metadata hits.
func EqualMetaWeight(float64) float64 { return 16 }

// lruStack is a small fully-associative LRU shadow directory that reports
// the stack distance of each access.
type lruStack struct {
	tags []uint64
	n    int
}

func newLRUStack(depth int) *lruStack { return &lruStack{tags: make([]uint64, depth)} }

// touch returns the stack position of tag (0 = MRU) or -1 on miss, then
// moves it to the top.
func (s *lruStack) touch(tag uint64) int {
	for i := 0; i < s.n; i++ {
		if s.tags[i] == tag {
			copy(s.tags[1:i+1], s.tags[:i])
			s.tags[0] = tag
			return i
		}
	}
	if s.n < len(s.tags) {
		s.n++
	}
	copy(s.tags[1:s.n], s.tags[:s.n-1])
	s.tags[0] = tag
	return -1
}

// Partitioner chooses the metadata partition size that maximizes weighted
// data-plus-metadata utility.
type Partitioner struct {
	cfg PartitionerConfig

	dataATD  map[int]*lruStack
	dataHist []uint64 // stack position histogram over LLC ways

	metaATD  map[int]*lruStack
	metaHist []uint64 // stack position histogram over metadata entries/set

	accesses uint64
	accuracy float64
	current  int // current size in bytes
}

// NewPartitioner returns a partitioner starting at the largest size.
func NewPartitioner(cfg PartitionerConfig) *Partitioner {
	if cfg.DataWeight == 0 {
		cfg.DataWeight = 16
	}
	if cfg.MetaWeight == nil {
		cfg.MetaWeight = EqualMetaWeight
	}
	if cfg.EpochAccesses == 0 {
		cfg.EpochAccesses = 1 << 15
	}
	if cfg.SampleShift == 0 {
		cfg.SampleShift = 6
	}
	if cfg.EntriesPerBlock == 0 {
		cfg.EntriesPerBlock = 12
	}
	maxEntries := cfg.maxEntriesPerSet()
	p := &Partitioner{
		cfg:      cfg,
		dataATD:  make(map[int]*lruStack),
		dataHist: make([]uint64, cfg.LLCWays+1),
		metaATD:  make(map[int]*lruStack),
		metaHist: make([]uint64, maxEntries+1),
		current:  cfg.Sizes[len(cfg.Sizes)-1],
	}
	return p
}

func (cfg PartitionerConfig) maxEntriesPerSet() int {
	if cfg.Mode == SetMode {
		return cfg.MetaWaysPerSet * cfg.EntriesPerBlock
	}
	// Way mode: up to MetaWaysPerSet blocks per LLC set.
	return cfg.MetaWaysPerSet * cfg.EntriesPerBlock
}

// Current returns the most recently decided size.
func (p *Partitioner) Current() int { return p.current }

// ObserveAccuracy records the latest epoch prefetch accuracy.
func (p *Partitioner) ObserveAccuracy(acc float64) { p.accuracy = acc }

// sampleKey returns the shadow directory for a sampled set, or nil.
func sampleKey(m map[int]*lruStack, set int, shift uint, depth int) *lruStack {
	if set&((1<<shift)-1) != 0 {
		return nil
	}
	s, ok := m[set]
	if !ok {
		s = newLRUStack(depth)
		m[set] = s
	}
	return s
}

// ObserveData feeds an LLC data access (set index and line) into the data
// shadow directory.
func (p *Partitioner) ObserveData(set int, line mem.Line) {
	st := sampleKey(p.dataATD, set, p.cfg.SampleShift, p.cfg.LLCWays)
	if st == nil {
		return
	}
	pos := st.touch(uint64(line))
	if pos < 0 {
		pos = p.cfg.LLCWays
	}
	p.dataHist[pos]++
	p.accesses++
}

// ObserveTrigger feeds a metadata trigger access (by its logical metadata
// set) into the metadata shadow directory.
func (p *Partitioner) ObserveTrigger(logicalSet int, trigger mem.Line) {
	depth := p.cfg.maxEntriesPerSet()
	st := sampleKey(p.metaATD, logicalSet, p.cfg.SampleShift, depth)
	if st == nil {
		return
	}
	pos := st.touch(mem.HashLine64(trigger))
	if pos < 0 {
		pos = depth
	}
	p.metaHist[pos]++
	p.accesses++
}

// dataHits estimates sampled data hits if each metadata-hosting set keeps
// dataWays ways for data, with fraction frac of sets hosting metadata.
func (p *Partitioner) dataHits(dataWays int, frac float64) float64 {
	var inFull, inReduced float64
	for pos, n := range p.dataHist {
		if pos < p.cfg.LLCWays {
			inFull += float64(n)
		}
		if pos < dataWays {
			inReduced += float64(n)
		}
	}
	return frac*inReduced + (1-frac)*inFull
}

// trigHits estimates sampled trigger hits at a partition size.
func (p *Partitioner) trigHits(size int) float64 {
	if size == 0 {
		return 0
	}
	var entries int
	var live float64
	switch p.cfg.Mode {
	case SetMode:
		// Filtered indexing: capacity per live set is constant; a size
		// fraction of triggers is live at all.
		entries = p.cfg.maxEntriesPerSet()
		live = float64(size) / float64(p.cfg.MaxBytes)
	default:
		// Way mode: all triggers live; smaller sizes shrink per-set
		// capacity.
		blocksPerSet := p.cfg.MetaWaysPerSet * size / p.cfg.MaxBytes
		entries = blocksPerSet * p.cfg.EntriesPerBlock
		live = 1
	}
	var hits float64
	for pos, n := range p.metaHist {
		if pos < entries {
			hits += float64(n)
		}
	}
	return hits * live
}

// metaWaysAt returns the per-set way cost of a size.
func (p *Partitioner) metaWaysAt(size int) (ways int, frac float64) {
	switch p.cfg.Mode {
	case SetMode:
		return p.cfg.MetaWaysPerSet, float64(size) / float64(p.cfg.MaxBytes)
	default:
		return p.cfg.MetaWaysPerSet * size / p.cfg.MaxBytes, 1
	}
}

// Tick advances the access clock and, at each epoch boundary, decides the
// best size. It returns (size, true) when a new decision was made.
func (p *Partitioner) Tick() (int, bool) {
	if p.accesses < p.cfg.EpochAccesses {
		return p.current, false
	}
	p.accesses = 0
	best, bestScore := p.cfg.Sizes[0], -1.0
	mw := p.cfg.MetaWeight(p.accuracy)
	for _, size := range p.cfg.Sizes {
		ways, frac := p.metaWaysAt(size)
		score := p.cfg.DataWeight*p.dataHits(p.cfg.LLCWays-ways, frac) +
			mw*p.trigHits(size)
		if score > bestScore {
			best, bestScore = size, score
		}
	}
	// Decay the histograms so the profile tracks phase changes.
	for i := range p.dataHist {
		p.dataHist[i] /= 2
	}
	for i := range p.metaHist {
		p.metaHist[i] /= 2
	}
	changed := best != p.current
	p.current = best
	return best, changed
}
