// Package stride implements the PC-localized stride prefetcher used in the
// paper's baseline L1D (Table II: degree 3). Each load PC's last address and
// stride are tracked; after two confirmations the next few strides are
// prefetched.
package stride

import (
	"streamline/internal/mem"
	"streamline/internal/prefetch"
)

// Config parameterizes the prefetcher.
type Config struct {
	// TableSize is the number of tracked PCs (direct-mapped).
	TableSize int
	// Degree is how many strides ahead to prefetch.
	Degree int
	// ConfidenceMax saturates the per-PC stride confidence.
	ConfidenceMax int
	// Threshold is the confidence needed to issue.
	Threshold int
}

// DefaultConfig matches the baseline configuration.
var DefaultConfig = Config{TableSize: 256, Degree: 3, ConfidenceMax: 3, Threshold: 2}

type entry struct {
	tag    uint32
	last   mem.Line
	stride int64 // in cache lines; same-line accesses carry no signal
	conf   int
	valid  bool
}

// Prefetcher is the IP-stride prefetcher.
type Prefetcher struct {
	cfg   Config
	table []entry
}

// New returns a stride prefetcher.
func New(cfg Config) *Prefetcher {
	if cfg.TableSize <= 0 {
		cfg.TableSize = DefaultConfig.TableSize
	}
	if cfg.Degree <= 0 {
		cfg.Degree = DefaultConfig.Degree
	}
	if cfg.ConfidenceMax <= 0 {
		cfg.ConfidenceMax = DefaultConfig.ConfidenceMax
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultConfig.Threshold
	}
	return &Prefetcher{cfg: cfg, table: make([]entry, cfg.TableSize)}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "ip-stride" }

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event, out []prefetch.Request) []prefetch.Request {
	idx := int(mem.HashPC(ev.PC, 16)) % len(p.table)
	tag := uint32(mem.HashPC(ev.PC, 24))
	line := ev.Line()
	e := &p.table[idx]
	if !e.valid || e.tag != tag {
		*e = entry{tag: tag, last: line, valid: true}
		return out
	}
	s := int64(line) - int64(e.last)
	if s == 0 {
		return out // same line: sub-line strides carry no prefetch signal
	}
	if s == e.stride {
		if e.conf < p.cfg.ConfidenceMax {
			e.conf++
		}
	} else {
		e.conf--
		if e.conf <= 0 {
			e.conf = 0
			e.stride = s
		}
	}
	e.last = line
	if e.conf >= p.cfg.Threshold && e.stride != 0 {
		for d := 1; d <= p.cfg.Degree; d++ {
			target := int64(line) + e.stride*int64(d)
			if target < 0 {
				break
			}
			out = append(out, prefetch.Request{Addr: mem.AddrOf(mem.Line(target))})
		}
	}
	return out
}
