package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"streamline/internal/mem"
)

// Additional trace-package edge cases: wrapper composition, writer error
// paths, and header robustness.

func TestLimitOverLooping(t *testing.T) {
	recs := []Record{{PC: 1, Addr: 64, NonMem: 1}, {PC: 1, Addr: 128, NonMem: 1}}
	tr := NewLimit(NewLooping(NewSlice(recs)), 11)
	n := 0
	for {
		_, ok := tr.Next()
		if !ok {
			break
		}
		n++
	}
	// 2 instructions per record: stops once used >= 11 -> 6 records.
	if n != 6 {
		t.Errorf("records = %d, want 6", n)
	}
}

func TestLoopingOverLimitIsBounded(t *testing.T) {
	// The inverse composition: looping over a limited trace replays the
	// same budget forever.
	recs := []Record{{PC: 1, Addr: 64}, {PC: 1, Addr: 128}, {PC: 1, Addr: 192}}
	tr := NewLooping(NewLimit(NewSlice(recs), 2))
	seen := map[mem.Addr]int{}
	for i := 0; i < 10; i++ {
		r, ok := tr.Next()
		if !ok {
			t.Fatal("looping limited trace ended")
		}
		seen[r.Addr]++
	}
	if seen[192] != 0 {
		t.Error("limit did not truncate the inner trace")
	}
	if seen[64] != 5 || seen[128] != 5 {
		t.Errorf("unexpected replay distribution: %v", seen)
	}
}

// failingWriter errors after n bytes.
type failingWriter struct{ left int }

var errDisk = errors.New("disk full")

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errDisk
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errDisk
	}
	return n, nil
}

func TestWriterPropagatesErrors(t *testing.T) {
	w, err := NewWriter(&failingWriter{left: 8}) // room for the header only
	if err != nil {
		t.Fatal(err)
	}
	var writeErr error
	for i := 0; i < 10_000 && writeErr == nil; i++ {
		writeErr = w.Write(Record{PC: 1, Addr: 64})
		if writeErr == nil {
			writeErr = w.Flush()
		}
	}
	if writeErr == nil {
		t.Fatal("writer never surfaced the underlying error")
	}
}

func TestNewWriterHeaderError(t *testing.T) {
	if _, err := NewWriter(&failingWriter{left: 0}); err == nil {
		// Header write is buffered; error may surface at flush instead.
		t.Skip("header buffered; covered by TestWriterPropagatesErrors")
	}
}

func TestReaderTruncatedFile(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{PC: 1, Addr: 64})
	w.Flush()
	// Chop the last record in half.
	data := buf.Bytes()[:buf.Len()-5]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("read a record from a truncated file")
	}
	if r.Err() != nil && r.Err() != io.ErrUnexpectedEOF {
		t.Errorf("unexpected error: %v", r.Err())
	}
}

func TestReaderEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("record from an empty trace")
	}
	if r.Err() != nil {
		t.Errorf("EOF should not be an error: %v", r.Err())
	}
}
