package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// DecodeRequest parses one simulation request from r: strict JSON (unknown
// fields and trailing data rejected, mirroring the sweep store's record
// decoder), then Normalize — so the returned Spec is always validated,
// defaulted, and safe to Key and simulate. The caller bounds r (the HTTP
// handler wraps the body in http.MaxBytesReader).
func DecodeRequest(r io.Reader) (Spec, error) {
	var sp Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("malformed request: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return Spec{}, errors.New("malformed request: trailing data after JSON object")
	}
	if err := sp.Normalize(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// DecodeRequestBytes is DecodeRequest over a byte slice.
func DecodeRequestBytes(data []byte) (Spec, error) {
	return DecodeRequest(bytes.NewReader(data))
}
