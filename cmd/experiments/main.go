// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run all -scale paper
//	experiments -run fig10a,fig13b -v
//	experiments -run all -jobs 8 -json results.json
//
// Independent simulations (one per configuration x workload x mix) run on a
// bounded worker pool; -jobs sets its size. Table output on stdout is
// byte-identical for every -jobs value: results are aggregated in
// deterministic job order, and everything scheduling-dependent (progress,
// timings) goes to stderr.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"streamline/internal/exp"
)

func main() {
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		scale    = flag.String("scale", "small", "experiment scale: small or paper")
		list     = flag.Bool("list", false, "list available experiments")
		verbose  = flag.Bool("v", false, "print per-run progress")
		quiet    = flag.Bool("q", false, "suppress per-job progress/ETA reporting on stderr")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation jobs (1 = serial)")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonDest = flag.String("json", "", "write all results as JSON to this file ('-' for stdout)")
		check    = flag.Bool("check", false, "run every simulation with the invariant audit enabled; exit 1 on violations")

		telDir     = flag.String("telemetry-dir", "", "write per-simulation telemetry JSONL files into this directory")
		sampleIvl  = flag.Uint64("sample-interval", 0, "measured instructions between telemetry samples per core (0: a tenth of the measured window)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *list || *runIDs == "" {
		fmt.Println("available experiments:")
		for _, e := range exp.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *runIDs == "" {
			fmt.Println("\nrun with: experiments -run <id>[,<id>...] | all")
		}
		return
	}

	var sc exp.Scale
	switch *scale {
	case "small":
		sc = exp.Small
	case "paper":
		sc = exp.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}

	var selected []exp.Experiment
	if *runIDs == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	// os.Exit skips defers, so every exit after this point goes through
	// exit() to flush the profiles.
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	runner := exp.NewRunner(sc)
	runner.Jobs = *jobs
	runner.Check = *check
	if !*quiet {
		runner.JobProgress = os.Stderr
	}
	if *verbose {
		runner.Progress = os.Stderr
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}
	if *telDir != "" {
		if err := os.MkdirAll(*telDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		runner.TelemetryDir = *telDir
		runner.SampleInterval = *sampleIvl
	}
	report := jsonReport{Scale: sc.Name, Jobs: runner.Jobs}
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("# %s — %s (%s scale)\n", e.ID, e.Title, sc.Name)
		tables := e.Run(runner)
		for _, t := range tables {
			fmt.Println(t)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintln(os.Stderr, err)
					exit(1)
				}
			}
		}
		fmt.Println()
		// Wall-clock lines are scheduling-dependent; keep stdout
		// byte-identical across -jobs values by reporting them on stderr.
		fmt.Fprintf(os.Stderr, "# %s done in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID: e.ID, Title: e.Title, Tables: tables,
		})
	}
	if *jsonDest != "" {
		if err := writeJSON(*jsonDest, report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}
	if err := runner.TelemetryErr(); err != nil {
		fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
		exit(1)
	}
	if *check {
		// The audit summary goes to stderr so stdout stays byte-identical
		// with unaudited runs.
		if runner.AuditSummary(os.Stderr) > 0 {
			exit(1)
		}
	}
	stopProfiles()
}

// startProfiles begins CPU profiling and arranges a heap profile, returning
// a stop function that must run before every exit (os.Exit skips defers).
func startProfiles(cpuDest, memDest string) (func(), error) {
	var cpuFile *os.File
	if cpuDest != "" {
		f, err := os.Create(cpuDest)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memDest != "" {
			f, err := os.Create(memDest)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

// jsonReport is the -json results document: everything the text tables
// carry, machine-readable, with no scheduling-dependent fields so the same
// run configuration always serializes identically.
type jsonReport struct {
	Scale       string           `json:"scale"`
	Jobs        int              `json:"jobs"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Tables []exp.Table `json:"tables"`
}

func writeJSON(dest string, report jsonReport) error {
	var w io.Writer = os.Stdout
	if dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// writeCSV saves one result table as <dir>/<id>.csv.
func writeCSV(dir string, t exp.Table) error {
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
