package exp

import (
	"fmt"

	"streamline/internal/core"
	"streamline/internal/mem"
	"streamline/internal/meta"
	"streamline/internal/prefetch/triangel"
	"streamline/internal/replacement"
	"streamline/internal/sim"
	"streamline/internal/workloads"
)

// This file regenerates Figure 13: storage efficiency (Streamline at half
// Triangel's budget, Triangel-Ideal with dedicated storage), metadata
// traffic across partition sizes, and the utility-aware replacement study
// (TP-Mockingjay in the stores, MIN vs TP-MIN as offline oracles).

// dedicated wraps an arm so its temporal metadata lives in dedicated
// storage instead of LLC capacity (Triangel-Ideal).
func dedicated(a Arm) Arm {
	inner := a.Apply
	return Arm{Name: a.Name + "-ideal", Apply: func(cfg *sim.Config, sc Scale) {
		inner(cfg, sc)
		cfg.DedicatedMetadata = true
	}}
}

func init() {
	register(Experiment{ID: "fig13a", Title: "Storage efficiency",
		Run: func(r *Runner) []Table {
			mb := r.Scale.MetaBytes
			base := baseArm("stride", "")
			arms := []Arm{
				triangelArm("triangel-1x", "stride", "",
					func(c *triangel.Config) { c.FixedBytes = mb }),
				dedicated(triangelArm("triangel-1x", "stride", "",
					func(c *triangel.Config) { c.FixedBytes = mb })),
				streamlineArm("streamline-0.5x", "stride", "",
					func(o *core.Options) { o.FixedBytes = mb / 2 }),
				streamlineArm("streamline-1x", "stride", "",
					func(o *core.Options) { o.FixedBytes = mb }),
			}
			t := Table{ID: "fig13a", Title: "speedup vs metadata budget (irregular subset)",
				Columns: []string{"arm", "geomean-speedup", "mean-coverage"}}
			ws := r.Scale.irregular()
			r.Precompute(Singles(append([]Arm{base}, arms...), ws))
			for _, arm := range arms {
				var spd, cov []float64
				for _, w := range ws {
					b, okB := r.TryRun(base, w.Name)
					res, okA := r.TryRun(arm, w.Name)
					if !okB || !okA {
						continue // gapped workload: excluded from this arm's means
					}
					spd = append(spd, Speedup(b, res))
					cov = append(cov, Coverage(b, res))
				}
				if len(spd) == 0 {
					t.AddRow(arm.Name, GapCell, GapCell)
					continue
				}
				t.AddRow(arm.Name, F(Geomean(spd)), Pct(Mean(cov)))
			}
			t.Notes = append(t.Notes,
				"paper: Streamline at 0.5MB matches Triangel at 1MB, and beats Triangel-Ideal (dedicated 1MB)")
			return []Table{t}
		}})

	register(Experiment{ID: "fig13b", Title: "Metadata traffic",
		Run: func(r *Runner) []Table {
			mb := r.Scale.MetaBytes
			t := Table{ID: "fig13b", Title: "LLC metadata traffic (blocks) vs partition size",
				Columns: []string{"size", "triangel", "streamline", "ratio"}}
			ws := r.Scale.irregular()
			fracs := []int{8, 4, 2, 1}
			fracArms := map[int][2]Arm{}
			var all []Arm
			for _, frac := range fracs {
				sz := mb / frac
				tri := triangelArm(fmt.Sprintf("triangel-%dKB", sz>>10), "stride", "",
					func(c *triangel.Config) { c.FixedBytes = sz })
				str := streamlineArm(fmt.Sprintf("streamline-%dKB", sz>>10), "stride", "",
					func(o *core.Options) { o.FixedBytes = sz })
				fracArms[frac] = [2]Arm{tri, str}
				all = append(all, tri, str)
			}
			r.Precompute(Singles(all, ws))
			for _, frac := range fracs {
				sz := mb / frac
				tri, str := fracArms[frac][0], fracArms[frac][1]
				var tt, st uint64
				gapped := false
				for _, w := range ws {
					resT, okT := r.TryRun(tri, w.Name)
					resS, okS := r.TryRun(str, w.Name)
					if !okT || !okS {
						gapped = true
						continue
					}
					tt += resT.Cores[0].Meta.Traffic()
					st += resS.Cores[0].Meta.Traffic()
				}
				if gapped {
					// Traffic totals are sums, not means: one missing workload
					// silently skews the ratio, so the whole row is a gap.
					t.AddRow(fmt.Sprintf("%dKB", sz>>10), GapCell, GapCell, GapCell)
					continue
				}
				ratio := 0.0
				if tt > 0 {
					ratio = float64(st) / float64(tt)
				}
				t.AddRow(fmt.Sprintf("%dKB", sz>>10), fmt.Sprint(tt), fmt.Sprint(st), Pct(ratio))
			}
			t.Notes = append(t.Notes,
				"paper: Streamline's traffic is 61% of Triangel's at 1MB and 13% at 0.125MB")
			return []Table{t}
		}})

	register(Experiment{ID: "fig13c", Title: "Utility-aware replacement",
		Run: func(r *Runner) []Table {
			// Part 1: each store's realized utility (coverage x accuracy,
			// the observable analogue of correlation hit rate) under each
			// replacement policy, on capacity-pressured workloads where
			// replacement actually decides what survives.
			mb := r.Scale.MetaBytes
			t := Table{ID: "fig13c", Title: "metadata replacement: coverage / accuracy / utility",
				Columns: []string{"arm", "coverage", "accuracy", "corr-utility"}}
			psc := r.Scale
			psc.Footprint = r.Scale.Footprint * 1.4
			// Derived shares the parent's store and failure log, so pressured
			// runs checkpoint/resume and gap like everything else.
			pressured := r.Derived(psc)
			base := baseArm("stride", "")
			ws := r.Scale.irregular()
			arms := []Arm{
				triangelArm("triangel-srrip", "stride", "",
					func(c *triangel.Config) { c.FixedBytes = mb }),
				triangelArm("triangel-tpmj", "stride", "", func(c *triangel.Config) {
					c.FixedBytes = mb
					c.Policy = core.NewTPMockingjay
				}),
				streamlineArm("streamline-srrip", "stride", "", func(o *core.Options) {
					o.FixedBytes = mb
					o.Policy = meta.NewEntrySRRIP
				}),
				streamlineArm("streamline-lru", "stride", "", func(o *core.Options) {
					o.FixedBytes = mb
					o.Policy = meta.NewEntryLRU
				}),
				streamlineArm("streamline-tpmj", "stride", "",
					func(o *core.Options) { o.FixedBytes = mb }),
			}
			pressured.Precompute(Singles(append([]Arm{base}, arms...), ws))
			for _, arm := range arms {
				var cov, acc, util []float64
				for _, w := range ws {
					b, okB := pressured.TryRun(base, w.Name)
					res, okA := pressured.TryRun(arm, w.Name)
					if !okB || !okA {
						continue // gapped workload: excluded from this arm's means
					}
					c := Coverage(b, res)
					a := Accuracy(res)
					cov = append(cov, c)
					acc = append(acc, a)
					util = append(util, c*a)
				}
				if len(cov) == 0 {
					t.AddRow(arm.Name, GapCell, GapCell, GapCell)
					continue
				}
				t.AddRow(arm.Name, Pct(Mean(cov)), Pct(Mean(acc)), Pct(Mean(util)))
			}
			t.Notes = append(t.Notes,
				"paper: TP-Mockingjay improves Streamline's correlation hit rate by 21.5 pp over Triangel and closes a third of Triangel's gap when applied to it")

			// Part 2: offline MIN vs TP-MIN oracle replay on the irregular
			// workloads' correlation streams (Section V-D3's first study).
			o := Table{ID: "fig13c-oracle", Title: "offline oracle replay: MIN vs TP-MIN",
				Columns: []string{"workload", "min-trig", "min-corr", "tpmin-trig", "tpmin-corr"}}
			capEntries := mb / 2 / mem.LineSize * meta.CorrelationsPerBlock(meta.Pairwise, 0)
			type oraclePair struct{ min, tpmin replacement.OracleStats }
			replays := ParallelMap(r, ws,
				func(w workloads.Workload) string { return "oracle|" + w.Name },
				func(w workloads.Workload) oraclePair {
					stream := correlationStream(w, r.Scale, 200_000)
					return oraclePair{
						min:   replacement.ReplayOracle(stream, capEntries, replacement.MIN),
						tpmin: replacement.ReplayOracle(stream, capEntries, replacement.TPMIN),
					}
				})
			for i, w := range ws {
				if r.Gapped("oracle|" + w.Name) {
					o.AddRow(w.Name, GapCell, GapCell, GapCell, GapCell)
					continue
				}
				m, tp := replays[i].min, replays[i].tpmin
				o.AddRow(w.Name,
					Pct(m.TriggerHitRate()), Pct(m.CorrelationHitRate()),
					Pct(tp.TriggerHitRate()), Pct(tp.CorrelationHitRate()))
			}
			o.Notes = append(o.Notes,
				"paper: TP-MIN lifts correlation hit rate +9.3 pp over MIN by discarding entries with no future correlation use")
			return []Table{t, o}
		}})
}

// correlationStream extracts the per-PC consecutive-pair correlation stream
// a temporal prefetcher trains on from a workload's first n records.
func correlationStream(w workloads.Workload, sc Scale, n int) []replacement.Correlation {
	tr := w.NewTrace(workloads.Scale{Footprint: sc.Footprint}, sc.Seed)
	last := map[mem.PC]mem.Line{}
	var out []replacement.Correlation
	for len(out) < n {
		rec, ok := tr.Next()
		if !ok {
			break
		}
		l := mem.LineOf(rec.Addr)
		if prev, ok := last[rec.PC]; ok && prev != l {
			out = append(out, replacement.Correlation{Trigger: prev, Target: l})
		}
		last[rec.PC] = l
	}
	return out
}
