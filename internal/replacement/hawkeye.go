package replacement

import "streamline/internal/mem"

// hawkeye implements the Hawkeye replacement policy (Jain & Lin, ISCA 2016):
// OPTgen reconstructs Belady-MIN decisions over sampled sets and trains a
// PC-indexed predictor; predicted-friendly lines are protected with an
// RRIP-style backbone while predicted-averse lines are evicted first.
// Triage sizes its metadata partition with Hawkeye, and Figure 13c compares
// it against TP-Mockingjay for metadata replacement.
type hawkeye struct {
	sets, ways int

	rrpv     [][]uint8 // 3-bit ages; rrpv==hawkeyeMaxAge marks cache-averse
	linePC   [][]uint16
	predict  []int8 // 3-bit saturating counters per PC signature
	sampled  map[int]*optgenSet
	interval int // sampled-set history window, in set accesses
}

const (
	hawkeyeMaxAge  = 7
	hawkeyeSigBits = 13
	hawkeyePredMax = 3
	hawkeyePredMin = -4
)

// optgenSet is the per-sampled-set OPTgen state: a sliding window of recent
// accesses and the occupancy vector that answers "would MIN have hit?".
type optgenSet struct {
	lines     []mem.Line
	pcs       []uint16
	occupancy []uint8
	head      int // logical time of the next slot
	ways      int
}

// NewHawkeye returns the Hawkeye policy.
func NewHawkeye(sets, ways int) Policy {
	p := &hawkeye{
		sets: sets, ways: ways,
		rrpv:     make([][]uint8, sets),
		linePC:   make([][]uint16, sets),
		predict:  make([]int8, 1<<hawkeyeSigBits),
		sampled:  make(map[int]*optgenSet),
		interval: 8 * ways,
	}
	for i := range p.rrpv {
		p.rrpv[i] = make([]uint8, ways)
		p.linePC[i] = make([]uint16, ways)
		for w := range p.rrpv[i] {
			p.rrpv[i][w] = hawkeyeMaxAge
		}
	}
	// Sample every 16th set (or every set for tiny structures).
	stride := 16
	if sets < 64 {
		stride = 1
	}
	for s := 0; s < sets; s += stride {
		p.sampled[s] = &optgenSet{
			lines:     make([]mem.Line, p.interval),
			pcs:       make([]uint16, p.interval),
			occupancy: make([]uint8, p.interval),
			ways:      ways,
		}
	}
	return p
}

func (p *hawkeye) Name() string { return "hawkeye" }

func (p *hawkeye) sig(pc mem.PC) uint16 { return uint16(mem.HashPC(pc, hawkeyeSigBits)) }

// observe feeds an access to OPTgen for sampled sets, returning the trained
// signature and whether OPT would have hit (+1) or missed (-1); 0 when the
// set is unsampled or the line is new to the window.
func (p *hawkeye) observe(set int, a Access) {
	og, ok := p.sampled[set]
	if !ok {
		return
	}
	sig := p.sig(a.PC)
	// Search the window (newest to oldest) for the previous access.
	n := len(og.lines)
	found := -1
	for i := 1; i <= n; i++ {
		idx := (og.head - i + n) % n
		if og.lines[idx] == a.Line {
			found = idx
			break
		}
	}
	if found >= 0 {
		// Would MIN have kept the line across [found, head)? Yes iff the
		// occupancy in every quantum of the interval is below associativity.
		fits := true
		for i := found; i != og.head; i = (i + 1) % n {
			if og.occupancy[i] >= uint8(og.ways) {
				fits = false
				break
			}
		}
		trained := og.pcs[found]
		if fits {
			for i := found; i != og.head; i = (i + 1) % n {
				og.occupancy[i]++
			}
			if p.predict[trained] < hawkeyePredMax {
				p.predict[trained]++
			}
		} else if p.predict[trained] > hawkeyePredMin {
			p.predict[trained]--
		}
	}
	og.lines[og.head] = a.Line
	og.pcs[og.head] = sig
	og.occupancy[og.head] = 0
	og.head = (og.head + 1) % n
}

func (p *hawkeye) friendly(pc mem.PC) bool { return p.predict[p.sig(pc)] >= 0 }

func (p *hawkeye) Hit(set, way int, a Access) {
	p.observe(set, a)
	p.linePC[set][way] = p.sig(a.PC)
	if p.friendly(a.PC) {
		p.rrpv[set][way] = 0
	} else {
		p.rrpv[set][way] = hawkeyeMaxAge
	}
}

func (p *hawkeye) Fill(set, way int, a Access) {
	p.observe(set, a)
	p.linePC[set][way] = p.sig(a.PC)
	if p.friendly(a.PC) {
		// Age the other friendly lines so older ones become candidates.
		for w, v := range p.rrpv[set] {
			if w != way && v < hawkeyeMaxAge-1 {
				p.rrpv[set][w] = v + 1
			}
		}
		p.rrpv[set][way] = 0
	} else {
		p.rrpv[set][way] = hawkeyeMaxAge
	}
}

func (p *hawkeye) Evict(set, way int) {
	// Evicting a line inserted as friendly means the predictor overrated
	// its PC; detrain so the PC loses protection.
	if p.rrpv[set][way] < hawkeyeMaxAge {
		s := p.linePC[set][way]
		if p.predict[s] > hawkeyePredMin {
			p.predict[s]--
		}
	}
	p.rrpv[set][way] = hawkeyeMaxAge
}

func (p *hawkeye) Victim(set, lo int, _ Access) int {
	// Prefer cache-averse lines, then the oldest friendly line.
	best, bestAge := lo, -1
	for w := lo; w < len(p.rrpv[set]); w++ {
		v := p.rrpv[set][w]
		if v == hawkeyeMaxAge {
			return w
		}
		if int(v) > bestAge {
			best, bestAge = w, int(v)
		}
	}
	return best
}
