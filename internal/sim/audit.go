package sim

import (
	"streamline/internal/audit"
	"streamline/internal/mem"
	"streamline/internal/meta"
)

// defaultAuditInterval is the number of trace records between periodic full
// invariant scans when Config.AuditInterval is zero.
const defaultAuditInterval = 4096

// coreLineStride is the per-core line-address stripe width implied by
// coreAddrStride: core c's lines all satisfy line>>38 == c.
const coreLineStride = uint64(coreAddrStride) >> mem.LineShift

// storeProvider is implemented by temporal prefetchers whose metadata lives
// in a meta.Store (Triage, Triangel, Streamline); the audit uses it for the
// partition-sum cross-check.
type storeProvider interface {
	Store() *meta.Store
}

// auditTick runs the periodic scan cadence; Engine.Step calls it after every
// trace record when auditing is enabled.
func (s *System) auditTick(cs *coreState) {
	s.sinceScan++
	every := s.cfg.AuditInterval
	if every == 0 {
		every = defaultAuditInterval
	}
	if s.sinceScan >= every {
		s.sinceScan = 0
		s.auditScan(cs.core.Now())
	}
}

// auditScan runs one full invariant sweep over every component at cycle now.
// Every check is read-only; an audited run's statistics are byte-identical
// to an unaudited one.
func (s *System) auditScan(now uint64) {
	a := s.cfg.Audit
	if a == nil {
		return
	}
	a.CountScan()
	for _, cs := range s.cores {
		cs.core.AuditScan(a, now)
		cs.l1d.AuditScan(a, now)
		cs.l2.AuditScan(a, now)
		s.auditStripe(a, now, cs)
	}
	s.llc.AuditScan(a, now)
	s.dram.AuditScan(a, now)
	s.auditPartitions(a, now)
}

// auditStripe checks core address-space isolation: demand and prefetch
// traffic for core c is striped into [c<<38, (c+1)<<38) line space, so a
// line outside that stripe in a private cache means one core's prefetcher
// reached into another core's address space.
func (s *System) auditStripe(a *audit.Auditor, now uint64, cs *coreState) {
	want := uint64(cs.id)
	check := func(name string) func(int, int, mem.Line) {
		return func(set, way int, l mem.Line) {
			if uint64(l)/coreLineStride != want {
				a.Reportf(now, name, "stripe-isolation",
					"core %d set %d way %d holds line %#x from core %d's stripe",
					cs.id, set, way, uint64(l), uint64(l)/coreLineStride)
			}
		}
	}
	cs.l1d.ForEachLine(check("L1D"))
	cs.l2.ForEachLine(check("L2"))
}

// auditPartitions cross-checks the metadata partition sums: the ways the LLC
// actually reserves must account for exactly the bytes every core's metadata
// store believes it holds. Skipped when metadata is dedicated (nothing is
// reserved) or when any core's temporal prefetcher does not expose a
// meta.Store (the STMS baseline keeps metadata in DRAM).
func (s *System) auditPartitions(a *audit.Auditor, now uint64) {
	if s.cfg.DedicatedMetadata {
		return
	}
	want := 0
	any := false
	for _, cs := range s.cores {
		sp, ok := cs.tempf.(storeProvider)
		if !ok {
			continue
		}
		st := sp.Store()
		if st == nil {
			return
		}
		any = true
		want += st.ReservedBlocks()
		st.AuditScan(a, now)
	}
	if !any {
		return
	}
	// Each reserved way slot in a physical set holds one 64B block.
	got := 0
	for set := 0; set < s.llc.Sets(); set++ {
		got += s.llc.ReservedWays(set)
	}
	if got != want {
		a.Reportf(now, "sim", "partition-sum",
			"LLC reserves %d blocks but stores account for %d", got, want)
	}
}
