package sim

import (
	"streamline/internal/cache"
	"streamline/internal/mem"
	"streamline/internal/prefetch"
	"streamline/internal/telemetry"
	"streamline/internal/trace"
)

// coreAddrStride separates the cores' address spaces so identical workloads
// on different cores never share lines in the LLC.
const coreAddrStride mem.Addr = 1 << 44

// accuracyEpoch is how often (in L2 prefetch fills) epoch accuracy is fed to
// accuracy-consuming prefetchers, matching Streamline's 2048-prefetch epochs.
const accuracyEpoch = 2048

// step executes one trace record on core cs. It returns false when the
// trace is exhausted.
func (s *System) step(cs *coreState) bool {
	rec, ok := cs.tr.Next()
	if !ok {
		return false
	}
	rec.Addr += coreAddrStride * mem.Addr(cs.id)

	cs.core.Advance(rec.Instructions())
	t := cs.core.BeginMem(rec.DependsOnPrev)

	kind := mem.Load
	if rec.IsWrite {
		kind = mem.Store
	}
	acc := mem.Access{PC: rec.PC, Addr: rec.Addr, Kind: kind, Core: cs.id}
	lat := s.demandAccess(cs, t, acc)

	done := t + lat
	if rec.IsWrite {
		// Stores retire through the store buffer: the core does not wait
		// for the miss, but the hierarchy state and traffic are real.
		done = t + s.cfg.L1D.Latency
	}
	cs.core.EndMem(done, !rec.IsWrite)
	return true
}

// demandAccess walks the hierarchy for a demand access beginning at cycle t
// and returns its latency. Fills propagate upward; prefetchers train at
// their attach levels and their requests are issued before returning.
func (s *System) demandAccess(cs *coreState, t uint64, acc mem.Access) uint64 {
	now := t + cs.l1d.PortDelay(t, true)

	// ---- L1D
	r1 := cs.l1d.Lookup(now, acc)
	if r1.Hit {
		lat := s.cfg.L1D.Latency + r1.ExtraWait
		s.trainL1(cs, now, acc, true)
		return now - t + lat
	}
	now += s.cfg.L1D.Latency // tag check before descending
	// The miss holds an L1 MSHR until its fill returns; the true fill time
	// is recorded below once known.
	l1slot, l1delay := cs.l1d.MSHRReserve(now)
	now += l1delay
	complete := func(done uint64) uint64 {
		cs.l1d.MSHRComplete(l1slot, done)
		return done - t
	}

	// ---- L2
	now += cs.l2.PortDelay(now, true)
	r2 := cs.l2.Lookup(now, acc)
	if r2.Hit {
		done := now + s.cfg.L2.Latency + r2.ExtraWait
		s.fillL1(cs, acc, done)
		s.trainL1(cs, now, acc, false)
		s.trainL2(cs, now, acc, true, r2.WasPrefetched)
		return complete(done)
	}
	l2slot, l2delay := cs.l2.MSHRReserve(now)
	now += l2delay

	// ---- LLC (shared)
	now += s.llc.PortDelay(now, true)
	if obs, ok := cs.tempf.(prefetch.LLCDataObserver); ok {
		obs.ObserveLLCData(s.llc.SetOf(acc.Line()), acc.Line())
	}
	r3 := s.llc.Lookup(now, acc)
	if r3.Hit {
		done := now + s.cfg.LLC.Latency + r3.ExtraWait
		cs.l2.MSHRComplete(l2slot, done)
		s.fillL2(cs, acc, done)
		s.fillL1(cs, acc, done)
		s.trainL1(cs, now, acc, false)
		s.trainL2(cs, now, acc, false, false)
		return complete(done)
	}
	now += s.cfg.LLC.Latency

	// ---- DRAM
	dlat := s.dram.Access(now, acc.Line(), false)
	done := now + dlat
	cs.l2.MSHRComplete(l2slot, done)
	s.fillLLC(cs, acc, now, done)
	s.fillL2(cs, acc, done)
	s.fillL1(cs, acc, done)
	s.trainL1(cs, now, acc, false)
	s.trainL2(cs, now, acc, false, false)
	return complete(done)
}

// fillL1 installs a line into the core's L1D, handling the victim. The
// victim's writeback is issued at the fill's request time, not completion:
// the eviction happens when the miss allocates.
func (s *System) fillL1(cs *coreState, acc mem.Access, ready uint64) {
	v := cs.l1d.Fill(acc, ready, cache.SrcDemand)
	if v.Valid && v.Dirty {
		s.writeback(cs, ready-s.cfg.L1D.Latency, v.Line, 2)
	}
}

func (s *System) fillL2(cs *coreState, acc mem.Access, ready uint64) {
	v := cs.l2.Fill(acc, ready, cache.SrcDemand)
	if v.Valid && v.Dirty {
		s.writeback(cs, ready-s.cfg.L2.Latency, v.Line, 3)
	}
}

func (s *System) fillLLC(cs *coreState, acc mem.Access, now, ready uint64) {
	v := s.llc.Fill(acc, ready, cache.SrcDemand)
	if v.Valid && v.Dirty {
		s.dram.Write(now, v.Line)
	}
}

// writeback propagates a dirty eviction to the given level (2=L2, 3=LLC).
// If the line is absent there it falls through to the DRAM write buffer.
func (s *System) writeback(cs *coreState, now uint64, l mem.Line, level int) {
	if level <= 2 {
		if cs.l2.MarkDirty(l) {
			return
		}
		level = 3
	}
	if level == 3 {
		if s.llc.MarkDirty(l) {
			return
		}
	}
	s.dram.Write(now, l)
}

// trainL1 feeds the L1D prefetcher and issues its requests (fill into L1D).
func (s *System) trainL1(cs *coreState, now uint64, acc mem.Access, hit bool) {
	ev := prefetch.Event{
		Now: now, PC: acc.PC, Addr: acc.Addr,
		IsStore: acc.Kind == mem.Store, Hit: hit,
	}
	cs.reqBuf = cs.l1pf.Train(ev, cs.reqBuf[:0])
	for _, req := range cs.reqBuf {
		s.issuePrefetch(cs, now+req.Delay, req, cache.SrcL1)
	}
}

// trainL2 feeds the L2 regular prefetcher on every L2 access and the
// temporal prefetcher on misses and prefetch hits (its training events).
func (s *System) trainL2(cs *coreState, now uint64, acc mem.Access, hit, prefetchHit bool) {
	ev := prefetch.Event{
		Now: now, PC: acc.PC, Addr: acc.Addr,
		IsStore: acc.Kind == mem.Store, Hit: hit, PrefetchHit: prefetchHit,
	}
	cs.reqBuf = cs.l2pf.Train(ev, cs.reqBuf[:0])
	for _, req := range cs.reqBuf {
		s.issuePrefetch(cs, now+req.Delay, req, cache.SrcL2)
	}
	if !hit || prefetchHit {
		cs.reqBuf = cs.tempf.Train(ev, cs.reqBuf[:0])
		for _, req := range cs.reqBuf {
			s.issuePrefetch(cs, now+req.Delay, req, cache.SrcTemporal)
		}
		s.feedAccuracy(cs, now)
	}
}

// issuePrefetch resolves a prefetch request into fills, attributing the
// line's lifecycle to the issuing prefetcher src: L1 requests fill the L1D
// (bypassing the L2); L2 and temporal requests fill only the L2. Requests
// whose line is already resident at the destination are dropped as
// duplicates (per-source accounting, no traffic).
func (s *System) issuePrefetch(cs *coreState, now uint64, req prefetch.Request, src cache.Source) {
	if a := s.cfg.Audit; a != nil && mem.Offset(req.Addr) != 0 {
		a.Reportf(now, "sim", "unaligned-prefetch",
			"core %d issued prefetch for %#x (offset %d within the line)",
			cs.id, uint64(req.Addr), mem.Offset(req.Addr))
	}
	toL1 := src == cache.SrcL1
	acc := mem.Access{PC: 0, Addr: req.Addr, Kind: mem.Prefetch, Core: cs.id}
	if toL1 {
		if cs.l1d.Probe(acc.Line()) {
			// Already in the L1: a duplicate whether or not the L2 also
			// holds it.
			cs.droppedBy[src]++
			return
		}
		if r, ok := cs.l2.LookupResident(now, acc); ok {
			// Promote from L2 to L1 in the same tag walk that confirmed
			// residency (the lookup updates the L2's replacement and
			// prefetch-hit state). If the L2 copy is itself still in
			// flight, the promoted L1 copy cannot be ready before it —
			// carry the ExtraWait forward like the demand L2-hit path
			// does, or the L1 line's readyAt is backdated and the wait a
			// demand hit would observe there is silently dropped.
			done := now + s.cfg.L2.Latency + r.ExtraWait
			v := cs.l1d.Fill(acc, done, src)
			if v.Valid && v.Dirty {
				s.writeback(cs, now, v.Line, 2)
			}
			cs.issued++
			cs.issuedBy[src]++
			return
		}
	} else if cs.l2.Probe(acc.Line()) {
		cs.droppedBy[src]++
		return
	}
	cs.issued++
	cs.issuedBy[src]++

	// Walk the lower hierarchy to find the data. Prefetch misses occupy
	// L2 MSHRs like demand misses do, but yield the ports to demands.
	now += cs.l2.PortDelay(now, false)
	now += s.cfg.L2.Latency
	l2slot, l2delay := cs.l2.MSHRReserve(now)
	now += l2delay
	var done uint64
	now += s.llc.PortDelay(now, false)
	r3 := s.llc.Lookup(now, acc)
	if r3.Hit {
		done = now + s.cfg.LLC.Latency + r3.ExtraWait
	} else {
		now += s.cfg.LLC.Latency
		dlat := s.dram.Access(now, acc.Line(), false)
		done = now + dlat
		v := s.llc.Fill(acc, done, src)
		if v.Valid && v.Dirty {
			s.dram.Write(now, v.Line)
		}
	}
	cs.l2.MSHRComplete(l2slot, done)
	if toL1 {
		// L1 prefetches bypass the L2: filling it would pollute the L2's
		// prefetch-accuracy accounting (demands are absorbed by the L1
		// copy) and its capacity.
		v := cs.l1d.Fill(acc, done, src)
		if v.Valid && v.Dirty {
			s.writeback(cs, now, v.Line, 2)
		}
		return
	}
	v := cs.l2.Fill(acc, done, src)
	if v.Valid && v.Dirty {
		s.writeback(cs, now, v.Line, 3)
	}
}

// feedAccuracy delivers epoch prefetch accuracy to prefetchers that consume
// it (Streamline's utility-aware partitioner). now is the training cycle,
// used only to timestamp the telemetry event.
func (s *System) feedAccuracy(cs *coreState, now uint64) {
	ac, ok := cs.tempf.(prefetch.AccuracyConsumer)
	if !ok {
		return
	}
	fills := cs.l2.Stats.PrefetchFills
	if fills-cs.lastFills < accuracyEpoch {
		return
	}
	useful := cs.l2.Stats.UsefulPrefetches
	df := fills - cs.lastFills
	du := useful - cs.lastUseful
	cs.lastFills, cs.lastUseful = fills, useful
	if df > 0 {
		acc := cache.Accuracy(du, df)
		ac.ObserveAccuracy(acc)
		if cs.tel.Enabled(telemetry.Info) {
			cs.tel.Eventf(now, telemetry.Info, "accuracy-epoch",
				"delivered epoch accuracy %.4f (%d useful / %d fills)", acc, du, df)
		}
	}
}

// pickNext scans for the unfinished core with the earliest clock (lowest
// index on ties) and the runner-up among the remaining cores. Stepping
// advances only the chosen core's clock, so the choice stays valid — with
// no rescanning — until it stops beating the runner-up.
func (s *System) pickNext() (next, runnerUp *coreState) {
	for _, cs := range s.cores {
		if cs.done || cs.tr == nil {
			continue
		}
		switch {
		case next == nil:
			next = cs
		case cs.core.Now() < next.core.Now():
			next, runnerUp = cs, next
		case runnerUp == nil || cs.core.Now() < runnerUp.core.Now():
			runnerUp = cs
		}
	}
	return next, runnerUp
}

// stillEarliest reports whether a fresh scan would pick next again: it
// still strictly beats the runner-up, or ties it with a lower index.
func stillEarliest(next, runnerUp *coreState) bool {
	if runnerUp == nil {
		return true
	}
	a, b := next.core.Now(), runnerUp.core.Now()
	return a < b || (a == b && next.id < runnerUp.id)
}

// Run drives all cores until each has executed warmup+measure instructions,
// interleaving them by current cycle time so contention is modeled, and
// returns the measured-phase results. It is a fresh Engine driven to
// completion, so one-shot and stepped execution share one code path.
func (s *System) Run() Result {
	return s.Engine().Finish()
}

// RunTrace is the single-core convenience: attach tr to core 0 and Run.
func (s *System) RunTrace(tr trace.Trace) Result {
	s.SetTrace(0, tr)
	return s.Run()
}
