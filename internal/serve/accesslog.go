package serve

import "time"

// This file is the daemon's structured access log: one JSONL record per
// /simulate request, written through a telemetry.Sink (build it with
// telemetry.NewConcurrentSink — handlers emit from many goroutines) via its
// foreign-record path, so the log shares the sink's buffered, mutex-guarded,
// first-error-sticky emission. Each record carries the same request ID the
// response exposes as X-Streamd-Request, which also keys the per-request
// lifecycle events in the -telemetry trace — one ID threads all three.

// AccessRecord is one request's access-log line.
type AccessRecord struct {
	Type string `json:"type"` // always "access"
	// ID is the request's unique ID, identical to the X-Streamd-Request
	// response header: "<boot nonce>-<arrival seq>".
	ID string `json:"id"`
	// Spec is the request's canonical configuration ID (Spec.ID), empty
	// when the body never decoded.
	Spec string `json:"spec,omitempty"`
	// Status is the HTTP status served, or 499 when the client went away
	// before the response was ready (outcome "abandoned").
	Status int `json:"status"`
	// Outcome is the request's accounting class: invalid, memory-hit,
	// store-hit, collapsed, computed, failed, canceled, rejected,
	// drain-refused, or abandoned.
	Outcome string `json:"outcome"`
	// Tier is the serving cache tier (none, memory, store, flight) for
	// requests that produced a simulation response.
	Tier string `json:"tier,omitempty"`
	// Bytes is the response body length.
	Bytes int `json:"bytes"`
	// DurationUs is the request's total wall clock in microseconds.
	DurationUs int64 `json:"durationUs"`
	// Slow marks requests at or over Config.SlowRequest; only such requests
	// carry Stages.
	Slow bool `json:"slow,omitempty"`
	// Stages is the full span breakdown, promoted into the log for slow
	// requests. Compute-side stages (queueWait onward) appear only on the
	// request that owned the computation.
	Stages *StageTimings `json:"stages,omitempty"`
}

// StageTimings is a request's per-stage span breakdown in microseconds.
// Every stage is also observed into the streamd_request_stage_seconds
// histogram regardless of the slow-request threshold.
type StageTimings struct {
	DecodeUs    int64 `json:"decodeUs"`
	LookupUs    int64 `json:"lookupUs,omitempty"`
	QueueWaitUs int64 `json:"queueWaitUs,omitempty"`
	SimulateUs  int64 `json:"simulateUs,omitempty"`
	MarshalUs   int64 `json:"marshalUs,omitempty"`
	PersistUs   int64 `json:"persistUs,omitempty"`
}

// accessSpan accumulates one request's identity and spans as the handler
// walks the tiers; finish turns it into the log record and the latency
// observation.
type accessSpan struct {
	id     string
	t0     time.Time
	spec   string
	stages StageTimings
}

// us returns d in whole microseconds, flooring at 1 so a recorded stage is
// never rendered as absent by omitempty.
func us(d time.Duration) int64 {
	if u := d.Microseconds(); u > 0 {
		return u
	}
	return 1
}

// finish closes the span: observes the total-latency histogram and, when an
// access log is configured, emits the record (with the stage breakdown when
// the request met the slow threshold).
func (s *Server) finish(sp *accessSpan, status int, outcome, tier string, bytes int) {
	elapsed := time.Since(sp.t0)
	s.metrics.request.Observe(elapsed.Seconds())
	if s.cfg.AccessLog == nil {
		return
	}
	rec := AccessRecord{
		Type:       "access",
		ID:         sp.id,
		Spec:       sp.spec,
		Status:     status,
		Outcome:    outcome,
		Tier:       tier,
		Bytes:      bytes,
		DurationUs: us(elapsed),
	}
	if s.cfg.SlowRequest > 0 && elapsed >= s.cfg.SlowRequest {
		rec.Slow = true
		stages := sp.stages
		rec.Stages = &stages
	}
	s.cfg.AccessLog.Record(rec)
}
