// Command tracegen generates synthetic workload traces to files (the trace
// package's compact binary format) and inspects existing ones.
//
// Usage:
//
//	tracegen -workload pr -instructions 1000000 -o pr.trace
//	tracegen -inspect pr.trace
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"streamline/internal/mem"
	"streamline/internal/trace"
	"streamline/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "", "workload to generate")
		out       = flag.String("o", "", "output trace file")
		instr     = flag.Uint64("instructions", 1_000_000, "instruction budget")
		footprint = flag.Float64("footprint", 0.1, "workload footprint scale")
		seed      = flag.Int64("seed", 1, "generator seed")
		inspect   = flag.String("inspect", "", "trace file to summarize")
		analyze   = flag.String("analyze", "", "workload to characterize (no file needed)")
		list      = flag.Bool("list", false, "list workloads")
	)
	flag.Parse()

	switch {
	case *list:
		for _, w := range workloads.All() {
			irr := ""
			if w.Irregular {
				irr = " (irregular)"
			}
			fmt.Printf("%-14s %s%s\n", w.Name, w.Suite, irr)
		}
	case *inspect != "":
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *analyze != "":
		w, err := workloads.Get(*analyze)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		a := workloads.Analyze(w, workloads.Scale{Footprint: *footprint}, *seed, *instr)
		fmt.Printf("%s (footprint %.2f, %d instructions):\n", w.Name, *footprint, *instr)
		fmt.Printf("  records %d, footprint %d lines (%.1f MB), %d PCs\n",
			a.Records, a.FootprintLines, float64(a.FootprintLines)*64/1e6, a.PCs)
		fmt.Printf("  line multiplicity %.2f, pair stability %.1f%%\n",
			a.LineMultiplicity, a.PairStability*100)
		fmt.Printf("  sequential %.1f%%, dependent %.1f%%, stores %.1f%%\n",
			a.SequentialFraction*100, a.DependentFraction*100, a.StoreFraction*100)
	case *workload != "" && *out != "":
		if err := generate(*workload, *out, *instr, *footprint, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(name, out string, instr uint64, footprint float64, seed int64) error {
	w, err := workloads.Get(name)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	tr := trace.NewLimit(w.NewTrace(workloads.Scale{Footprint: footprint}, seed), instr)
	var total uint64
	for {
		rec, ok := tr.Next()
		if !ok {
			break
		}
		if err := tw.Write(rec); err != nil {
			return err
		}
		total += rec.Instructions()
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d records (%d instructions) to %s\n", tw.Count(), total, out)
	return nil
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var (
		records, instr, writes, deps uint64
		lines                        = map[mem.Line]struct{}{}
		pcs                          = map[mem.PC]struct{}{}
	)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		records++
		instr += rec.Instructions()
		if rec.IsWrite {
			writes++
		}
		if rec.DependsOnPrev {
			deps++
		}
		lines[mem.LineOf(rec.Addr)] = struct{}{}
		pcs[rec.PC] = struct{}{}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("%s:\n", path)
	fmt.Printf("  %d memory records, %d instructions\n", records, instr)
	fmt.Printf("  %d writes (%.1f%%), %d dependent loads (%.1f%%)\n",
		writes, pct(writes, records), deps, pct(deps, records))
	fmt.Printf("  footprint: %d distinct lines (%.1f MB), %d PCs\n",
		len(lines), float64(len(lines))*mem.LineSize/1e6, len(pcs))
	return nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
