// Package triage implements the Triage temporal prefetcher (Wu et al.,
// MICRO 2019), the first to keep its metadata entirely on chip in an LLC
// partition. Triage stores pairwise correlations compressed with a lookup
// table: each target is a 10-bit LUT index plus an 11-bit tag, fitting 16
// correlations per block — at an accuracy cost, because LUT entries that get
// recycled silently redirect older correlations to the wrong region (the
// effect Triangel's authors quantified and this model reproduces).
//
// The paper uses an idealized Triage with unlimited metadata to define its
// "irregular subset" of benchmarks (Section V-A3); NewIdeal builds that
// variant.
package triage

import (
	"streamline/internal/mem"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
)

// Config parameterizes Triage.
type Config struct {
	// TUSize is the number of training-unit entries.
	TUSize int
	// MaxDegree bounds the prefetch chain (4).
	MaxDegree int
	// MetaBytes is the metadata partition size (resized every
	// ResizeEpoch accesses toward the best trigger hit rate).
	MetaBytes int
	// ResizeEpoch is Triage's repartitioning period (50K accesses).
	ResizeEpoch uint64
	// LUTSize is the target-compression lookup table capacity (1024).
	LUTSize int
	// Ideal gives unlimited, uncompressed, dedicated metadata — the
	// variant that defines the irregular subset.
	Ideal bool
}

// DefaultConfig returns the paper's Triage configuration.
func DefaultConfig() Config {
	return Config{
		TUSize:      256,
		MaxDegree:   4,
		MetaBytes:   1 << 20,
		ResizeEpoch: 50_000,
		LUTSize:     1024,
	}
}

// lut is the target-region lookup table: regions (line >> 11) are assigned
// 10-bit indices; recycling an index corrupts the correlations that still
// reference it.
type lut struct {
	regions []uint64 // index -> region
	gen     []uint32 // bump on recycle
	byReg   map[uint64]int
	next    int
}

func newLUT(size int) *lut {
	return &lut{
		regions: make([]uint64, size),
		gen:     make([]uint32, size),
		byReg:   make(map[uint64]int, size),
	}
}

// encode returns the LUT index for the target's region, allocating (and
// possibly recycling) as needed.
func (l *lut) encode(target mem.Line) int {
	region := uint64(target) >> 11
	if idx, ok := l.byReg[region]; ok {
		return idx
	}
	idx := l.next
	l.next = (l.next + 1) % len(l.regions)
	delete(l.byReg, l.regions[idx])
	l.regions[idx] = region
	l.gen[idx]++
	l.byReg[region] = idx
	return idx
}

// decode reconstructs a target from its compressed form; if the LUT slot was
// recycled since encoding, the result silently points into the wrong region.
func (l *lut) decode(idx int, low mem.Line) mem.Line {
	return mem.Line(l.regions[idx]<<11) | (low & (1<<11 - 1))
}

// tuEntry tracks a PC's last access and its recently issued prefetches
// (skipped without spending degree, so the chain runs ahead of the demand
// stream — the lead that makes prefetches timely).
type tuEntry struct {
	tag    uint32
	last   mem.Line
	valid  bool
	issued [64]mem.Line
	next   int
}

func (tu *tuEntry) wasIssued(l mem.Line) bool {
	for _, x := range tu.issued {
		if x == l {
			return true
		}
	}
	return false
}

func (tu *tuEntry) markIssued(l mem.Line) {
	tu.issued[tu.next] = l
	tu.next = (tu.next + 1) % len(tu.issued)
}

// idealEntry is a correlation in the unlimited ideal store.
type idealEntry struct {
	target mem.Line
}

// Prefetcher is the Triage temporal prefetcher.
type Prefetcher struct {
	cfg   Config
	store *meta.Store
	lut   *lut
	tu    []tuEntry

	ideal map[mem.Line]idealEntry

	accesses uint64

	// insTarget backs the one-element Targets slice of pairwise inserts;
	// the store copies what it keeps.
	insTarget [1]mem.Line
}

// New constructs Triage over the given LLC bridge.
func New(cfg Config, bridge meta.Bridge) *Prefetcher {
	if cfg.TUSize <= 0 {
		cfg = DefaultConfig()
	}
	p := &Prefetcher{
		cfg: cfg,
		tu:  make([]tuEntry, cfg.TUSize),
		lut: newLUT(cfg.LUTSize),
	}
	if cfg.Ideal {
		p.ideal = make(map[mem.Line]idealEntry)
		return p
	}
	p.store = meta.NewStore(meta.StoreConfig{
		Format:         meta.PairwiseCompressed,
		MetaWaysPerSet: 8,
		MaxBytes:       cfg.MetaBytes,
		Policy:         meta.NewEntryLRU, // stands in for Triage's Hawkeye-managed metadata
	}, bridge)
	return p
}

// NewIdeal returns the unlimited-metadata Triage used to define the
// irregular subset.
func NewIdeal() *Prefetcher {
	cfg := DefaultConfig()
	cfg.Ideal = true
	return New(cfg, &meta.NullBridge{Sets: 2048, Ways: 16})
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string {
	if p.cfg.Ideal {
		return "triage-ideal"
	}
	return "triage"
}

// MetaStats implements prefetch.MetaReporter.
func (p *Prefetcher) MetaStats() meta.Stats {
	if p.store == nil {
		return meta.Stats{}
	}
	return p.store.Stats
}

// Train implements prefetch.Prefetcher: on an L2 miss or prefetch hit,
// record the correlation from the PC's previous access and chase the chain.
func (p *Prefetcher) Train(ev prefetch.Event, out []prefetch.Request) []prefetch.Request {
	line := ev.Line()
	idx := int(mem.HashPC(ev.PC, 16)) % len(p.tu)
	tag := uint32(mem.HashPC(ev.PC, 24))
	tu := &p.tu[idx]
	p.accesses++

	if !tu.valid || tu.tag != tag {
		*tu = tuEntry{tag: tag, last: line, valid: true}
		return out
	}
	trigger := tu.last
	tu.last = line
	if trigger == line {
		return out
	}

	if p.cfg.Ideal {
		p.ideal[trigger] = idealEntry{target: line}
		cur := line
		issued := 0
		for hops := 0; issued < p.cfg.MaxDegree && hops < p.cfg.MaxDegree+16; hops++ {
			e, ok := p.ideal[cur]
			if !ok {
				break
			}
			if !tu.wasIssued(e.target) {
				out = append(out, prefetch.Request{Addr: mem.AddrOf(e.target)})
				tu.markIssued(e.target)
				issued++
			}
			cur = e.target
		}
		return out
	}

	// Compressed store: the target round-trips through the LUT, so stale
	// LUT slots produce wrong-region prefetches exactly as in hardware.
	lutIdx := p.lut.encode(line)
	compressed := mem.Line(uint64(lutIdx)<<48) | (line & (1<<11 - 1))
	p.insTarget[0] = compressed
	p.store.Insert(ev.Now, ev.PC, meta.Entry{Trigger: trigger, Targets: p.insTarget[:]})

	cur := line
	var delay uint64
	issued := 0
	for hops := 0; issued < p.cfg.MaxDegree && hops < p.cfg.MaxDegree+8; hops++ {
		e, found, lat := p.store.Lookup(ev.Now+delay, ev.PC, cur)
		if !found {
			break
		}
		delay += lat
		enc := e.Targets[0]
		target := p.lut.decode(int(uint64(enc)>>48), enc)
		if !tu.wasIssued(target) {
			out = append(out, prefetch.Request{Addr: mem.AddrOf(target), Delay: delay})
			tu.markIssued(target)
			issued++
		}
		cur = target
	}
	return out
}

// Store exposes the metadata store (nil for the ideal variant).
func (p *Prefetcher) Store() *meta.Store { return p.store }
