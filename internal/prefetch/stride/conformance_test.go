package stride_test

import (
	"testing"

	"streamline/internal/prefetch"
	"streamline/internal/prefetch/ptest"
	"streamline/internal/prefetch/stride"
)

func TestConformance(t *testing.T) {
	cfgs := map[string]stride.Config{
		"default": stride.DefaultConfig,
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			ptest.Exercise(t, func() prefetch.Prefetcher { return stride.New(cfg) })
		})
	}
}
