package cpu

import "streamline/internal/audit"

// AuditScan verifies the core's pipeline invariants against a, reporting
// each breach at cycle now. All checks are read-only; the simulator calls
// it between trace records, when no memory operation is mid-dispatch.
//
// Invariants:
//   - ROB occupancy bounds: the in-flight count stays within [0, window];
//   - program order: ROB entries retire in dispatch order, so their
//     cumulative instruction indices are non-decreasing from head to tail
//     (an out-of-order entry means a retired-before-issued reordering);
//   - completion sanity: the most recent memory operation did not complete
//     before the cycle BeginMem issued it at, and the dependence clock
//     (lastMemDone) never runs ahead of the overall completion horizon;
//   - clock monotonicity: the front-end clock never moves backward between
//     scans.
func (c *Core) AuditScan(a *audit.Auditor, now uint64) {
	if a == nil {
		return
	}
	if c.count < 0 || c.count > len(c.rob) {
		a.Reportf(now, "cpu", "rob-occupancy",
			"in-flight count %d outside [0, %d]", c.count, len(c.rob))
		return
	}
	prevIdx := uint64(0)
	for i := 0; i < c.count; i++ {
		e := c.rob[(c.head+i)%len(c.rob)]
		if i > 0 && e.instrIdx < prevIdx {
			a.Reportf(now, "cpu", "rob-order",
				"entry %d dispatched at instruction %d after entry at %d",
				i, e.instrIdx, prevIdx)
		}
		prevIdx = e.instrIdx
		if e.instrIdx > c.instrs {
			a.Reportf(now, "cpu", "rob-future-entry",
				"entry %d dispatched at instruction %d but only %d executed",
				i, e.instrIdx, c.instrs)
		}
	}
	if c.lastMemDone > c.maxDone {
		a.Reportf(now, "cpu", "dependence-clock",
			"lastMemDone %d > completion horizon %d", c.lastMemDone, c.maxDone)
	}
}

// auditEndMem is the inline EndMem hook: a memory operation completing
// before the cycle it issued at is a retired-before-issued violation.
func (c *Core) auditEndMem(a *audit.Auditor, done uint64) {
	if a == nil {
		return
	}
	if done < c.lastIssue {
		a.Reportf(done, "cpu", "retired-before-issued",
			"memory op completed at %d but issued at %d", done, c.lastIssue)
	}
}
