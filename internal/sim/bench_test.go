package sim

import (
	"io"
	"testing"

	"streamline/internal/telemetry"
	"streamline/internal/workloads"
)

// benchmarkRun measures a full simulation; newCollector nil benchmarks the
// disabled path (the overhead telemetry must not add), non-nil the
// instrumented one.
func benchmarkRun(b *testing.B, newCollector func() *telemetry.Collector) {
	w, err := workloads.Get("sphinx06")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := smallConfig(1)
		cfg.WarmupInstructions = 50_000
		cfg.MeasureInstructions = 200_000
		cfg.L1DPrefetcher = strideFactory
		cfg.Temporal = streamlineFactory
		var col *telemetry.Collector
		if newCollector != nil {
			col = newCollector()
			cfg.Telemetry = col
		}
		sys := New(cfg)
		sys.RunTrace(w.NewTrace(workloads.Scale{Footprint: 0.1}, 1))
		if col != nil {
			if err := col.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRunTelemetryOff(b *testing.B) {
	benchmarkRun(b, nil)
}

func BenchmarkRunTelemetryOn(b *testing.B) {
	benchmarkRun(b, func() *telemetry.Collector {
		return telemetry.New(telemetry.NewSink(io.Discard), 50_000)
	})
}
