package meta

import (
	"fmt"

	"streamline/internal/mem"
	"streamline/internal/telemetry"
)

// EntryAccess is the context handed to entry policies on every store
// operation: the correlation being accessed and the PC that produced it.
type EntryAccess struct {
	PC          mem.PC
	Trigger     mem.Line
	FirstTarget mem.Line
}

// StoreConfig describes a metadata store's format, partitioning scheme, and
// host geometry. The Tagged/Filtered/SetPartitioned triple spans the eight
// schemes of Table I.
type StoreConfig struct {
	// Format selects pairwise or stream entries.
	Format Format
	// StreamLength is the targets per entry for Stream format (ignored
	// for pairwise formats, which always hold one).
	StreamLength int

	// Tagged stores locate entries with a tag check across every metadata
	// way of the set (partial trigger tags spill into the LLC tag store);
	// untagged stores select the way with a second-level hash, Triangel's
	// two-level index function.
	Tagged bool
	// Filtered stores use the fixed index function of the maximum
	// partition size and discard entries that map outside the current
	// partition; unfiltered (rearranged) stores re-index on every resize
	// and shuffle misplaced entries, generating LLC traffic.
	Filtered bool
	// SetPartitioned stores allocate whole LLC sets (MetaWaysPerSet ways
	// in every 2^k-th set); way-partitioned stores allocate k ways of
	// every set.
	SetPartitioned bool
	// Hybrid (set-partitioned only) shrinks by reducing both allocated
	// sets and ways per set, halving the filtering rate at quarter sizes
	// (Section V-D6).
	Hybrid bool
	// Skewed (filtered set-partitioned only) biases the trigger-to-set
	// mapping toward sets that remain allocated at small partition sizes,
	// reducing filtering (Section V-D6).
	Skewed bool

	// MetaWaysPerSet is the ways each allocated set dedicates to metadata
	// (8 for Streamline; the resize ceiling for way-partitioned stores).
	MetaWaysPerSet int
	// PartialTagBits is the width of the trigger tag consulted for way
	// aliasing: the 6 partial-tag bits Streamline spills into the LLC tag
	// store plus the remaining trigger-hash bits kept inline with the
	// entry. Entries matching on all of it must share a way; Section V-D5
	// reports 3.8%% of correlations alias at this width.
	PartialTagBits int
	// TriggerHashBits is the width of the hashed trigger match (10 in
	// Triage/Triangel/Streamline); aliases cause mispredictions.
	TriggerHashBits int
	// MaxBytes is the maximum partition size, fixing the filtered index
	// function.
	MaxBytes int
	// Policy builds the entry replacement policy; nil defaults to LRU.
	Policy EntryPolicyFactory
}

type slot struct {
	valid   bool
	conf    bool   // confidence bit: targets confirmed by a repeat store
	hash    uint32 // hashed trigger tag (TriggerHashBits wide)
	partial uint16 // partial tag stored in the LLC tag array
	trigger mem.Line
	targets []mem.Line
	pc      mem.PC
}

// Store is a partitionable on-chip metadata store hosted by the LLC.
type Store struct {
	cfg    StoreConfig
	bridge Bridge

	llcSets, llcWays int
	epb              int // entries per 64B block
	metaSets         int // logical metadata sets
	maxWays          int // ways per set at maximum size

	// Current partition state.
	curBytes   int
	curWays    int // ways in use per allocated set
	curSpacing int // set-partitioned: every curSpacing-th logical set is live
	maxSpacing int

	slots [][]slot // [logical set][way*epb+idx]
	pol   EntryPolicy

	// lookupBuf backs the Targets slice of the Entry Lookup returns; it is
	// valid until the next Lookup. Callers that retain an entry across
	// store operations must copy the targets (Streamline's metadata
	// buffer does).
	lookupBuf []mem.Line

	// tel receives resize events; nil (the default) disables them. lastNow
	// tracks the most recent Lookup/Insert cycle so Resize — which has no
	// cycle argument of its own — can timestamp its event.
	tel     *telemetry.Emitter
	lastNow uint64

	Stats Stats
}

// SetTelemetry attaches a telemetry emitter for discrete store events
// (partition resizes). A nil emitter (telemetry disabled) is fine.
func (s *Store) SetTelemetry(tel *telemetry.Emitter) { s.tel = tel }

// NewStore builds a store at its maximum partition size.
func NewStore(cfg StoreConfig, bridge Bridge) *Store {
	llcSets, llcWays := bridge.Geometry()
	if cfg.MetaWaysPerSet <= 0 || cfg.MetaWaysPerSet > llcWays {
		cfg.MetaWaysPerSet = llcWays / 2
	}
	if cfg.StreamLength <= 0 {
		cfg.StreamLength = 1
	}
	if cfg.PartialTagBits <= 0 {
		cfg.PartialTagBits = 10
	}
	if cfg.TriggerHashBits <= 0 {
		cfg.TriggerHashBits = 10
	}
	if cfg.Policy == nil {
		cfg.Policy = NewEntryLRU
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = llcSets * cfg.MetaWaysPerSet * mem.LineSize
	}

	s := &Store{
		cfg:     cfg,
		bridge:  bridge,
		llcSets: llcSets,
		llcWays: llcWays,
		epb:     EntriesPerBlock(cfg.Format, cfg.StreamLength),
	}
	maxBlocks := cfg.MaxBytes / mem.LineSize
	if cfg.SetPartitioned {
		s.maxWays = cfg.MetaWaysPerSet
		s.metaSets = maxBlocks / s.maxWays
		if s.metaSets > llcSets {
			s.metaSets = llcSets
		}
		if s.metaSets < 1 {
			s.metaSets = 1
		}
		s.maxSpacing = llcSets / s.metaSets
	} else {
		s.metaSets = llcSets
		s.maxWays = maxBlocks / llcSets
		if s.maxWays > cfg.MetaWaysPerSet {
			s.maxWays = cfg.MetaWaysPerSet
		}
		if s.maxWays < 1 {
			s.maxWays = 1
		}
		s.maxSpacing = 1
	}
	s.slots = make([][]slot, s.metaSets)
	for i := range s.slots {
		s.slots[i] = make([]slot, s.maxWays*s.epb)
	}
	s.pol = cfg.Policy(s.metaSets, s.maxWays*s.epb)
	s.applySize(s.maxBytes(), true)
	return s
}

func (s *Store) maxBytes() int {
	if s.cfg.SetPartitioned {
		return s.metaSets * s.maxWays * mem.LineSize
	}
	return s.llcSets * s.maxWays * mem.LineSize
}

// Config returns the store's configuration.
func (s *Store) Config() StoreConfig { return s.cfg }

// SizeBytes returns the current partition size.
func (s *Store) SizeBytes() int { return s.curBytes }

// CapacityCorrelations returns how many correlations the current partition
// can hold.
func (s *Store) CapacityCorrelations() int {
	blocks := s.curBytes / mem.LineSize
	return blocks * CorrelationsPerBlock(s.cfg.Format, s.cfg.StreamLength)
}

// StreamLength returns the configured targets per entry.
func (s *Store) StreamLength() int { return s.cfg.StreamLength }

// The store derives its several index functions from disjoint bit ranges
// of one 64-bit line hash: bits [0,22) index the set, [22,32) form the
// hashed trigger tag, [32,38+) the partial tag, [48,58) the second-level
// way index, and [58,60) drive skewed indexing.
func (s *Store) triggerHash(t mem.Line) uint32 {
	return uint32(mem.HashLine64(t)>>22) & (1<<uint(s.cfg.TriggerHashBits) - 1)
}

func (s *Store) partialTag(t mem.Line) uint16 {
	// A different bit slice than the trigger hash, as the partial tag
	// lives in the LLC tag store.
	return uint16(mem.HashLine64(t)>>32) & (1<<uint(s.cfg.PartialTagBits) - 1)
}

// logicalSet maps a trigger to its logical metadata set under the FIXED
// maximum-size index function.
func (s *Store) logicalSet(t mem.Line) int {
	h := mem.HashLine64(t)
	set := int((h & (1<<22 - 1)) % uint64(s.metaSets))
	if s.cfg.Skewed {
		// Bias toward logical sets that survive shrinking: clear 0, 1 or 2
		// low set-index bits with equal probability, overweighting sets
		// divisible by larger powers of two.
		k := (h >> 58) % 3
		set &^= int(1<<k) - 1
	}
	return set
}

// LogicalSetOf exposes the fixed trigger-to-set index function for
// components that sample trigger locality (the dynamic partitioners).
func (s *Store) LogicalSetOf(t mem.Line) int { return s.logicalSet(t) }

// setLive reports whether a logical set is inside the current partition.
func (s *Store) setLive(logical int) bool {
	if !s.cfg.SetPartitioned {
		return s.curWays > 0
	}
	if s.curWays == 0 {
		return false
	}
	step := s.curSpacing / s.maxSpacing
	if step < 1 {
		step = 1
	}
	return logical%step == 0
}

// currentSet maps a trigger to the logical set it occupies under the
// CURRENT index function (rearranged stores re-index on resize; filtered
// stores always use logicalSet and may filter).
func (s *Store) currentSet(t mem.Line) (logical int, live bool) {
	logical = s.logicalSet(t)
	if s.cfg.Filtered {
		return logical, s.setLive(logical)
	}
	if !s.cfg.SetPartitioned {
		return logical, s.curWays > 0
	}
	// Rearranged set-partitioning: compress the index space onto the live
	// sets so nothing is filtered — at the price of re-indexing on resize.
	step := s.curSpacing / s.maxSpacing
	if step < 1 {
		step = 1
	}
	liveSets := s.metaSets / step
	if liveSets < 1 {
		return logical, false
	}
	return (logical % liveSets) * step, s.curWays > 0
}

// wayOf returns the way an entry must occupy for untagged stores under the
// current (rearranged) or maximum (filtered) way-index function, and
// whether the trigger is filtered out (filtered way-partitioning).
func (s *Store) wayOf(t mem.Line) (way int, live bool) {
	h := int(mem.HashLine64(t) >> 48 & (1<<10 - 1))
	if s.cfg.Filtered {
		way = h % s.maxWays
		return way, way < s.curWays
	}
	if s.curWays == 0 {
		return 0, false
	}
	return h % s.curWays, true
}

// candidates returns the contiguous slot range [lo, hi) the trigger's entry
// may occupy within its logical set, honoring the two-level index (untagged)
// or partial-tag aliasing (tagged). Every placement constraint resolves to a
// contiguous range — a whole way's slots or every live slot — so no index
// list is materialized. It also reports whether aliasing constrained a
// tagged placement.
func (s *Store) candidates(set int, t mem.Line) (lo, hi int, aliased bool, live bool) {
	if !s.cfg.Tagged {
		way, ok := s.wayOf(t)
		if !ok || way >= s.curWays {
			return 0, 0, false, false
		}
		lo = way * s.epb
		return lo, lo + s.epb, false, true
	}
	// Tagged: any live way, but an existing entry with the same partial
	// tag pins the incoming entry to its way.
	pt := s.partialTag(t)
	for w := 0; w < s.curWays; w++ {
		for i := 0; i < s.epb; i++ {
			sl := &s.slots[set][w*s.epb+i]
			if sl.valid && sl.partial == pt && sl.trigger != t {
				lo = w * s.epb
				return lo, lo + s.epb, true, true
			}
		}
	}
	return 0, s.curWays * s.epb, false, true
}

// WouldFilter reports whether an entry with the given trigger would be
// discarded by filtered indexing at the current partition size. Streamline's
// training unit uses this to realign streams before inserting.
func (s *Store) WouldFilter(t mem.Line) bool {
	if !s.cfg.Filtered {
		return false
	}
	logical := s.logicalSet(t)
	if !s.setLive(logical) {
		return true
	}
	if !s.cfg.Tagged && !s.cfg.SetPartitioned {
		_, ok := s.wayOf(t)
		return !ok
	}
	return false
}

// Lookup searches the store for the trigger's entry at cycle now, charging
// one LLC metadata read unless filtered indexing proves statically that the
// trigger cannot be present. It returns the entry, whether it was found, and
// the lookup latency. The entry's Targets slice is backed by a buffer owned
// by the store and is only valid until the next Lookup.
func (s *Store) Lookup(now uint64, pc mem.PC, t mem.Line) (Entry, bool, uint64) {
	s.Stats.Lookups++
	s.lastNow = now
	set, live := s.currentSet(t)
	if !live {
		s.Stats.FilteredLookups++
		return Entry{}, false, 0
	}
	lo, hi, _, ok := s.candidates(set, t)
	if !ok {
		s.Stats.FilteredLookups++
		return Entry{}, false, 0
	}
	lat := s.bridge.MetaAccess(now, mem.MetaRead)
	s.Stats.Reads++
	h := s.triggerHash(t)
	for idx := lo; idx < hi; idx++ {
		sl := &s.slots[set][idx]
		if sl.valid && sl.hash == h {
			s.Stats.TriggerHits++
			s.pol.Touch(set, idx, EntryAccess{PC: pc, Trigger: t, FirstTarget: sl.targets[0]})
			s.lookupBuf = append(s.lookupBuf[:0], sl.targets...)
			return Entry{Trigger: sl.trigger, Targets: s.lookupBuf, Conf: sl.conf}, true, lat
		}
	}
	return Entry{}, false, lat
}

// Insert writes an entry at cycle now, charging one LLC metadata write
// unless the entry is filtered. It returns the write latency and the
// entry's resulting confidence bit (true when this store confirmed an
// identical previous entry).
func (s *Store) Insert(now uint64, pc mem.PC, e Entry) (uint64, bool) {
	if !e.Valid() {
		return 0, false
	}
	s.lastNow = now
	set, live := s.currentSet(e.Trigger)
	if !live {
		s.Stats.FilteredInserts++
		return 0, false
	}
	lo, hi, aliased, ok := s.candidates(set, e.Trigger)
	if !ok {
		s.Stats.FilteredInserts++
		return 0, false
	}
	if aliased {
		s.Stats.AliasedInserts++
	}
	acc := EntryAccess{PC: pc, Trigger: e.Trigger, FirstTarget: e.Targets[0]}
	h := s.triggerHash(e.Trigger)

	// In-place update of an existing entry for this trigger. The
	// confidence bit confirms on identical targets and clears otherwise.
	for idx := lo; idx < hi; idx++ {
		sl := &s.slots[set][idx]
		if sl.valid && sl.hash == h {
			same := len(sl.targets) == len(e.Targets)
			if same {
				for i := range sl.targets {
					if sl.targets[i] != e.Targets[i] {
						same = false
						break
					}
				}
			}
			s.storeInto(set, idx, e, pc)
			s.slots[set][idx].conf = same
			s.pol.Touch(set, idx, acc)
			s.Stats.Updates++
			lat := s.bridge.MetaAccess(now, mem.MetaWrite)
			s.Stats.Writes++
			return lat, same
		}
	}
	// Free slot, else victim.
	target := -1
	for idx := lo; idx < hi; idx++ {
		if !s.slots[set][idx].valid {
			target = idx
			break
		}
	}
	if target < 0 {
		target = s.pol.Victim(set, lo, hi, acc)
		s.pol.Evict(set, target)
		s.Stats.Evictions++
	}
	s.storeInto(set, target, e, pc)
	s.pol.Fill(set, target, acc)
	s.Stats.Inserts++
	lat := s.bridge.MetaAccess(now, mem.MetaWrite)
	s.Stats.Writes++
	return lat, false
}

func (s *Store) storeInto(set, idx int, e Entry, pc mem.PC) {
	sl := &s.slots[set][idx]
	k := s.cfg.StreamLength
	if s.cfg.Format != Stream {
		k = 1
	}
	targets := sl.targets
	if cap(targets) < k {
		targets = make([]mem.Line, 0, k)
	}
	targets = targets[:0]
	for i := 0; i < k && i < len(e.Targets); i++ {
		targets = append(targets, e.Targets[i])
	}
	*sl = slot{
		valid:   true,
		hash:    s.triggerHash(e.Trigger),
		partial: s.partialTag(e.Trigger),
		trigger: e.Trigger,
		targets: targets,
		pc:      pc,
	}
}

// Resize changes the partition to newBytes (rounded down to the scheme's
// granularity), rearranging or dropping entries per the configuration and
// updating the host LLC's way reservations. It returns the number of blocks
// of shuffle traffic generated (already recorded in Stats).
func (s *Store) Resize(newBytes int) uint64 {
	s.Stats.Resizes++
	old := s.curBytes
	moved := s.applySize(newBytes, false)
	if s.tel.Enabled(telemetry.Info) {
		s.tel.Eventf(s.lastNow, telemetry.Info, "resize",
			"partition %dB -> %dB (%d blocks moved)", old, s.curBytes, moved)
	}
	return moved
}

// applySize computes the new geometry and migrates contents. initial
// suppresses rearrangement accounting for the first call from NewStore.
func (s *Store) applySize(newBytes int, initial bool) uint64 {
	maxB := s.maxBytes()
	if newBytes > maxB {
		newBytes = maxB
	}
	if newBytes < 0 {
		newBytes = 0
	}
	oldWays, oldSpacing := s.curWays, s.curSpacing

	blocks := newBytes / mem.LineSize
	if s.cfg.SetPartitioned {
		s.curWays = s.maxWays
		spacingFactor := 1
		if blocks > 0 {
			liveSets := blocks / s.maxWays
			if liveSets < 1 {
				liveSets = 1
			}
			if liveSets > s.metaSets {
				liveSets = s.metaSets
			}
			spacingFactor = s.metaSets / liveSets
			if s.cfg.Hybrid && spacingFactor > 1 {
				// Split the shrink factor between sets and ways as evenly
				// as possible: a quarter-size store halves both.
				wayFactor := 1
				for spacingFactor > wayFactor*2 && s.curWays > 1 {
					spacingFactor /= 2
					wayFactor *= 2
					s.curWays /= 2
				}
			}
		} else {
			s.curWays = 0
		}
		s.curSpacing = s.maxSpacing * spacingFactor
	} else {
		s.curWays = blocks / s.llcSets
		if s.curWays > s.maxWays {
			s.curWays = s.maxWays
		}
		s.curSpacing = 1
	}
	s.curBytes = s.currentBytes()

	var traffic uint64
	if !initial && (s.curWays != oldWays || s.curSpacing != oldSpacing) {
		traffic = s.migrate(oldWays, oldSpacing)
	}
	s.updateReservations()
	return traffic
}

func (s *Store) currentBytes() int {
	if s.cfg.SetPartitioned {
		step := s.curSpacing / s.maxSpacing
		if step < 1 {
			step = 1
		}
		if s.curWays == 0 {
			return 0
		}
		return s.metaSets / step * s.curWays * mem.LineSize
	}
	return s.llcSets * s.curWays * mem.LineSize
}

// migrate re-validates every resident entry against the new geometry.
// Filtered stores drop entries that fall outside the partition (no
// traffic); rearranged stores move misplaced entries and pay for the
// blocks they touch.
func (s *Store) migrate(oldWays, oldSpacing int) uint64 {
	type moved struct {
		e  Entry
		pc mem.PC
	}
	var toMove []moved
	var movedBlocksOut uint64

	blockDirty := make([]bool, s.maxWays)
	for set := range s.slots {
		setLiveNow := s.setLive(set) || !s.cfg.SetPartitioned
		for i := range blockDirty {
			blockDirty[i] = false
		}
		dirtyBlocks := 0
		for idx := range s.slots[set] {
			sl := &s.slots[set][idx]
			if !sl.valid {
				continue
			}
			way := idx / s.epb
			keep := setLiveNow && way < s.curWays
			if keep && !s.cfg.Filtered {
				// Rearranged: does the index function still place the
				// entry here?
				nset, nlive := s.currentSet(sl.trigger)
				if !nlive {
					keep = false
				} else if nset != set {
					keep = false
				} else if !s.cfg.Tagged {
					nway, wlive := s.wayOf(sl.trigger)
					if !wlive || nway != way {
						keep = false
					}
				}
			} else if keep && s.cfg.Filtered {
				// Filtered: fixed index function; entries are never
				// misplaced, but a shrink can deallocate their set/way.
				if s.cfg.SetPartitioned {
					keep = s.setLive(set)
				} else if !s.cfg.Tagged {
					nway, wlive := s.wayOf(sl.trigger)
					keep = wlive && nway == way && way < s.curWays
				} else {
					keep = way < s.curWays
				}
			}
			if keep {
				continue
			}
			if !s.cfg.Filtered {
				// Rearranged stores relocate the entry.
				toMove = append(toMove, moved{
					e:  Entry{Trigger: sl.trigger, Targets: append([]mem.Line(nil), sl.targets...)},
					pc: sl.pc,
				})
				if !blockDirty[way] {
					blockDirty[way] = true
					dirtyBlocks++
				}
			} else {
				s.Stats.DroppedResize++
			}
			s.pol.Evict(set, idx)
			*sl = slot{targets: sl.targets[:0]}
		}
		movedBlocksOut += uint64(dirtyBlocks)
	}

	var movedBlocksIn uint64
	if len(toMove) > 0 {
		// Reinsert without charging normal insert traffic; count shuffle
		// blocks instead.
		saveReads, saveWrites := s.Stats.Reads, s.Stats.Writes
		saveIns, saveUpd, saveEvict := s.Stats.Inserts, s.Stats.Updates, s.Stats.Evictions
		saveFilt, saveAlias := s.Stats.FilteredInserts, s.Stats.AliasedInserts
		for _, m := range toMove {
			s.Insert(0, m.pc, m.e)
		}
		s.Stats.Reads, s.Stats.Writes = saveReads, saveWrites
		s.Stats.Inserts, s.Stats.Updates, s.Stats.Evictions = saveIns, saveUpd, saveEvict
		s.Stats.FilteredInserts, s.Stats.AliasedInserts = saveFilt, saveAlias
		movedBlocksIn = uint64((len(toMove) + s.epb - 1) / s.epb)
	}

	s.Stats.RearrangeReads += movedBlocksOut
	s.Stats.RearrangeWrites += movedBlocksIn
	return movedBlocksOut + movedBlocksIn
}

// updateReservations pushes the current partition shape into the host LLC.
func (s *Store) updateReservations() {
	if s.cfg.SetPartitioned {
		step := s.curSpacing / s.maxSpacing
		if step < 1 {
			step = 1
		}
		for logical := 0; logical < s.metaSets; logical++ {
			phys := logical * s.maxSpacing
			ways := 0
			if s.curWays > 0 && logical%step == 0 {
				ways = s.curWays
			}
			s.bridge.ReserveWays(phys, ways)
		}
		return
	}
	llcSets, _ := s.bridge.Geometry()
	for set := 0; set < llcSets; set++ {
		s.bridge.ReserveWays(set, s.curWays)
	}
}

// Occupancy returns the number of valid entries (diagnostics).
func (s *Store) Occupancy() int {
	n := 0
	for set := range s.slots {
		for idx := range s.slots[set] {
			if s.slots[set][idx].valid {
				n++
			}
		}
	}
	return n
}

// SchemeName returns the Table I mnemonic for the store's partitioning
// configuration, e.g. "FTS" for filtered tagged set-partitioning.
func (s *Store) SchemeName() string {
	r := "R"
	if s.cfg.Filtered {
		r = "F"
	}
	t := "U"
	if s.cfg.Tagged {
		t = "T"
	}
	w := "W"
	if s.cfg.SetPartitioned {
		w = "S"
	}
	return fmt.Sprintf("%s%s%s", r, t, w)
}

// DumpEntries returns a copy of every resident entry, for offline analyses
// such as the Figure 12b redundancy measurement.
func (s *Store) DumpEntries() []Entry {
	var out []Entry
	for set := range s.slots {
		for idx := range s.slots[set] {
			sl := &s.slots[set][idx]
			if !sl.valid {
				continue
			}
			out = append(out, Entry{
				Trigger: sl.trigger,
				Targets: append([]mem.Line(nil), sl.targets...),
			})
		}
	}
	return out
}
