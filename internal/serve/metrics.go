package serve

import (
	"net/http"
	"time"

	"streamline/internal/metrics"
)

// This file is the daemon's service-level metrics surface: the instrument
// set every Server carries (always on — recording is a few atomics, and
// /simulate bodies are byte-identical either way) and the GET /metricz
// exposition endpoint. Counters mirror the Counters() accounting through
// read-at-scrape funcs so there is a single source of truth; stage latencies
// are real histograms observed on the request path.

// Stage names, in request-lifecycle order. Each is one span of a /simulate
// request, recorded into streamd_request_stage_seconds{stage=...} and — for
// slow requests — into the access log's stage breakdown.
const (
	stageDecode    = "decode"     // read + strict-parse + normalize the request body
	stageLookup    = "lookup"     // memory LRU probe, then durable store probe
	stageQueueWait = "queue_wait" // admission until a worker slot is acquired
	stageSimulate  = "simulate"   // the simulation itself, under the fault policy
	stageMarshal   = "marshal"    // result struct to canonical JSON
	stagePersist   = "persist"    // fsynced append into the durable store
)

// serverMetrics is one Server's instrument set over its registry.
type serverMetrics struct {
	reg     *metrics.Registry
	request *metrics.Histogram
	stage   map[string]*metrics.Histogram
}

// newServerMetrics wires the server's instruments: response-outcome counter
// funcs reading the existing atomic accounting, gauge funcs reading live
// queue/worker/cache state, and the stage/total latency histograms. reg may
// be nil (the server then owns a private registry); a non-nil reg must not
// already carry another server's instruments.
func newServerMetrics(s *Server, reg *metrics.Registry) *serverMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m := &serverMetrics{
		reg: reg,
		request: reg.Histogram("streamd_request_seconds",
			"total /simulate wall clock from first byte to response", metrics.LatencyBuckets),
		stage: make(map[string]*metrics.Histogram),
	}
	for _, st := range []string{stageDecode, stageLookup, stageQueueWait, stageSimulate, stageMarshal, stagePersist} {
		m.stage[st] = reg.Histogram("streamd_request_stage_seconds",
			"per-stage /simulate latency", metrics.LatencyBuckets, metrics.L("stage", st))
	}

	reg.CounterFunc("streamd_requests_total",
		"every /simulate request accepted for decoding", s.requests.Load)
	outcomes := map[string]func() uint64{
		"invalid":       s.invalid.Load,
		"memory_hit":    s.memHits.Load,
		"store_hit":     s.storeHits.Load,
		"collapsed":     s.collapsed.Load,
		"computed":      s.computed.Load,
		"failed":        s.failed.Load,
		"canceled":      s.canceled.Load,
		"rejected":      s.rejected.Load,
		"drain_refused": s.drainRefused.Load,
	}
	for name, fn := range outcomes {
		reg.CounterFunc("streamd_responses_total",
			"completed /simulate requests by outcome", fn, metrics.L("outcome", name))
	}

	reg.GaugeFunc("streamd_queue_depth",
		"admitted-but-unfinished distinct computations", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.queued)
		})
	reg.GaugeFunc("streamd_queue_capacity",
		"admission bound before 429 backpressure", func() float64 {
			return float64(s.cfg.QueueDepth)
		})
	reg.GaugeFunc("streamd_inflight_workers",
		"simulations currently holding a worker slot", func() float64 {
			return float64(s.inFlight.Load())
		})
	reg.GaugeFunc("streamd_worker_capacity",
		"size of the worker pool", func() float64 {
			return float64(s.cfg.Workers)
		})
	reg.GaugeFunc("streamd_sim_progress",
		"trace records retired so far by in-flight simulations", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			var total uint64
			for _, f := range s.flights {
				total += f.records.Load()
			}
			return float64(total)
		})
	reg.GaugeFunc("streamd_cache_entries",
		"response bodies resident in the in-memory LRU", func() float64 {
			return float64(s.cache.len())
		})
	reg.GaugeFunc("streamd_draining",
		"1 while the server refuses new computations", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.draining {
				return 1
			}
			return 0
		})
	if s.cfg.Store != nil {
		reg.GaugeFunc("streamd_store_records",
			"records in the durable result tier", func() float64 {
				return float64(s.cfg.Store.Len())
			})
	}
	return m
}

// observeStage records one span into its stage histogram.
func (m *serverMetrics) observeStage(stage string, d time.Duration) {
	m.stage[stage].Observe(d.Seconds())
}

// Metrics returns the server's registry — the same instance GET /metricz
// renders — so embedders (and tests) can attach their own instruments or
// scrape without HTTP.
func (s *Server) Metrics() *metrics.Registry { return s.metrics.reg }

// handleMetricz serves the Prometheus text exposition.
func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	if !allowGetHead(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if r.Method == http.MethodHead {
		return
	}
	s.metrics.reg.WriteText(w)
}

// allowGetHead admits GET and HEAD, answering anything else with 405 and an
// Allow header — the read-only endpoints' shared method gate, matching
// /simulate's POST-only handling.
func allowGetHead(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	writeError(w, http.StatusMethodNotAllowed, "read-only endpoint: use GET or HEAD")
	return false
}
