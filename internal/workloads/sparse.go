package workloads

import (
	"math/rand"

	"streamline/internal/mem"
	"streamline/internal/trace"
)

// The sparse family models soplex/milc-style sparse linear algebra and
// xz-style hash probing: indexed gathers whose index streams are themselves
// sequential (prefetchable), while the gathered lines are irregular.

// spmvSource performs y = A*x over a CSR matrix, repeatedly. The column
// pattern is fixed, so the x-gather stream repeats exactly — strong temporal
// signal with a sequential edge-index stream mixed in, like soplex's
// simplex iterations.
type spmvSource struct {
	name   string
	rows   int
	nnzRow int
	xLines int // size of the gathered vector in lines
	nonMem uint8

	cols []int32
	colA array
	x    array
	y    array
}

func (s *spmvSource) Reset(rng *rand.Rand) {
	nnz := s.rows * s.nnzRow
	s.cols = make([]int32, nnz)
	// Hot head: a quarter of the gathers hit a small dense-column region
	// (cache-resident); the cold mass is a permutation, touching each
	// remaining x line once per lap — the per-iteration uniqueness that
	// makes real sparse gather streams temporally prefetchable.
	hotLines := s.xLines / 16
	coldLines := s.xLines - hotLines
	perm := rng.Perm(coldLines)
	pos := 0
	for i := range s.cols {
		if rng.Float64() < 0.25 || pos >= len(perm) {
			u := rng.Float64()
			s.cols[i] = int32(u * u * float64(hotLines))
		} else {
			s.cols[i] = int32(hotLines + perm[pos])
			pos++
		}
	}
	a := newArena()
	s.colA = a.array(nnz, 4)
	s.x = a.array(s.xLines, mem.LineSize)
	s.y = a.array(s.rows, 8)
}

func (s *spmvSource) Lap(emit func(trace.Record)) {
	e := &emitter{emit: emit, nonMem: s.nonMem}
	pc := pcBase(s.name)
	colPC, xPC, yPC := pc, pc+8, pc+16
	idx := 0
	for r := 0; r < s.rows; r++ {
		for k := 0; k < s.nnzRow; k++ {
			e.load(colPC, s.colA.at(idx))
			e.load(xPC, s.x.at(int(s.cols[idx])))
			idx++
		}
		e.store(yPC, s.y.at(r))
	}
}

// hashProbeSource models xz/gcc-style hash-table probing: keys arrive in a
// low-repetition order, so probe addresses rarely recur in the same
// sequence. Temporal prefetchers gain little here, and inaccurate ones
// hurt — this workload separates the accuracy-aware designs from the rest.
type hashProbeSource struct {
	name      string
	buckets   int
	probes    int
	repeat    float64 // fraction of the probe schedule replayed across laps
	swapChurn bool    // churn by swapping slots (preserves uniqueness) vs
	// replacing them with random keys (accumulates duplicates, the
	// hostile case)
	seqLines int // sequential literal stream interleaved per lap
	nonMem   uint8

	rng      *rand.Rand
	schedule []int32
	table    array
	seq      array
}

func (h *hashProbeSource) Reset(rng *rand.Rand) {
	h.rng = rng
	a := newArena()
	h.table = a.array(h.buckets, mem.LineSize)
	h.seq = a.array(h.seqLines, mem.LineSize)
	// Each lap probes a fixed irregular sequence of distinct buckets
	// (hash keys rarely repeat back-to-back); cross-lap churn models new
	// keys displacing old ones.
	h.schedule = make([]int32, h.probes)
	perm := rng.Perm(h.buckets)
	for i := range h.schedule {
		h.schedule[i] = int32(perm[i%len(perm)])
	}
}

func (h *hashProbeSource) Lap(emit func(trace.Record)) {
	e := &emitter{emit: emit, nonMem: h.nonMem}
	pc := pcBase(h.name)
	probePC, seqPC := pc, pc+8
	seqPer := 0
	if h.seqLines > 0 {
		seqPer = h.seqLines / (h.probes / 8)
	}
	seqPos := 0
	for i, b := range h.schedule {
		e.chase(probePC, h.table.at(int(b)))
		if seqPer > 0 && i&7 == 7 {
			for j := 0; j < seqPer; j++ {
				e.load(seqPC, h.seq.at(seqPos%h.seqLines))
				seqPos++
			}
		}
	}
	// Rewrite the non-repeating portion of the schedule for the next lap.
	churn := int(float64(len(h.schedule)) * (1 - h.repeat))
	if h.swapChurn {
		for i := 0; i < churn/2; i++ {
			a := h.rng.Intn(len(h.schedule))
			b := h.rng.Intn(len(h.schedule))
			h.schedule[a], h.schedule[b] = h.schedule[b], h.schedule[a]
		}
	} else {
		for i := 0; i < churn; i++ {
			h.schedule[h.rng.Intn(len(h.schedule))] = int32(h.rng.Intn(h.buckets))
		}
	}
}

func init() {
	register(Workload{
		Name: "soplex06", Suite: SPEC06, Irregular: true,
		Build: func(s Scale) LapSource {
			return &spmvSource{name: "soplex06", rows: s.size(24 << 10),
				nnzRow: 6, xLines: s.size(120 << 10), nonMem: 3}
		},
	})
	register(Workload{
		Name: "milc06", Suite: SPEC06, Irregular: false,
		Build: func(s Scale) LapSource {
			// milc's gathers are larger-footprint but more local; model as
			// SpMV with a smaller gather vector dominated by streaming.
			return &spmvSource{name: "milc06", rows: s.size(48 << 10),
				nnzRow: 3, xLines: s.size(16 << 10), nonMem: 2}
		},
	})
	register(Workload{
		Name: "xz17", Suite: SPEC17, Irregular: true,
		Build: func(s Scale) LapSource {
			return &hashProbeSource{name: "xz17", buckets: s.size(96 << 10),
				probes: s.size(96 << 10), repeat: 0.35, seqLines: s.size(8 << 10), nonMem: 3}
		},
	})
	register(Workload{
		Name: "gcc17", Suite: SPEC17, Irregular: true,
		Build: func(s Scale) LapSource {
			// gcc's IR walks: hash probing with high cross-lap repetition.
			return &hashProbeSource{name: "gcc17", buckets: s.size(64 << 10),
				probes: s.size(64 << 10), repeat: 0.9, swapChurn: true,
				seqLines: s.size(4 << 10), nonMem: 4}
		},
	})
}
