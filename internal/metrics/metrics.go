// Package metrics is the repo's dependency-free instrumentation core: named
// counters, gauges, and fixed-bucket histograms behind a race-safe registry
// with deterministic Prometheus-style text exposition. One registry serves
// both runtime surfaces — the serving daemon scrapes it at GET /metricz, the
// experiment harness renders it into periodic progress lines and a final
// dump — so the daemon and the batch path share one metrics vocabulary.
//
// Design constraints, mirroring internal/telemetry's:
//
//  1. The hot path is lock-free. Instrument handles are resolved once at
//     wiring time; Inc/Add/Set/Observe are a few atomic operations with no
//     registry involvement, so instrumented request handling and job
//     execution never contend on a registry lock.
//  2. Exposition is deterministic in format. Families are sorted by name,
//     series by label signature, and floats serialize in strconv's shortest
//     round-trip form — two registries holding the same values render
//     byte-identical text.
//  3. No dependencies. Everything is stdlib, so any package (CLIs, the
//     runner, the server) can hold instruments without pulling in HTTP or
//     third-party client libraries.
//
// Registration is get-or-create: asking for the same (name, labels) again
// returns the same instrument, so independently wired subsystems (the fault
// policy, the sweep runner, the daemon) can share one registry without
// coordinating registration order. Asking for an existing name with a
// different kind or bucket layout panics — that is a programming error, not
// a runtime condition.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to an instrument. Labels
// distinguish series within a family (the histogram family
// "streamd_request_stage_seconds" has one series per stage).
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// LatencyBuckets is the default latency histogram layout: 100µs to 60s in
// roughly 2.5x steps, chosen so both a sub-millisecond cache hit and a
// multi-second paper-scale simulation land in an interior bucket.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// kind discriminates instrument families.
type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Counter is a monotonically non-decreasing count. The zero value is usable,
// but instruments are normally obtained from a Registry so they appear in
// the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket semantics follow
// Prometheus: an observation v lands in the first bucket whose upper bound
// is >= v (bounds are inclusive), with an implicit +Inf bucket at the end.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns Sum/Count, or 0 with no observations — the figure behind the
// sweep progress line's average attempt latency.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// series is one (labels, instrument) pair within a family.
type series struct {
	labels    string // canonical rendering, "" or `{a="b",c="d"}`
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
}

// family groups every series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    kind
	bounds  []float64 // histogramKind only
	series  map[string]*series
	ordered []string // insertion-independent: sorted at exposition
}

// Registry is a set of instrument families. The zero value is not usable;
// create with NewRegistry. Registration takes a lock; using the returned
// instruments does not.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter named name with the given labels, creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, counterKind, nil, labels)
	if s.counter == nil {
		panic(fmt.Sprintf("metrics: %s%s is a counter func, not a settable counter", name, s.labels))
	}
	return s.counter
}

// Gauge returns the gauge named name with the given labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, gaugeKind, nil, labels)
	if s.gauge == nil {
		panic(fmt.Sprintf("metrics: %s%s is a gauge func, not a settable gauge", name, s.labels))
	}
	return s.gauge
}

// Histogram returns the histogram named name with the given labels, creating
// it with the given bucket upper bounds (which must be sorted ascending and
// non-empty) on first use. Re-requests must pass an identical layout.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s bounds not strictly ascending", name))
		}
	}
	s := r.lookup(name, help, histogramKind, bounds, labels)
	return s.hist
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time — for monotonic counts a subsystem already maintains (the server's
// request accounting), so the exposition has a single source of truth.
// Registering the same (name, labels) twice panics: a sampled counter has
// exactly one owner.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, counterKind, labels, &series{counterFn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at exposition time
// (queue depth, cache occupancy). Registering the same (name, labels) twice
// panics.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, gaugeKind, labels, &series{gaugeFn: fn})
}

// lookup is the get-or-create path behind Counter/Gauge/Histogram.
func (r *Registry) lookup(name, help string, k kind, bounds []float64, labels []Label) *series {
	key := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, k, bounds)
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labels: key}
	switch k {
	case counterKind:
		s.counter = &Counter{}
	case gaugeKind:
		s.gauge = &Gauge{}
	case histogramKind:
		s.hist = &Histogram{
			bounds:  f.bounds,
			buckets: make([]atomic.Uint64, len(f.bounds)+1),
		}
	}
	f.series[key] = s
	return s
}

// register installs a pre-built (func-backed) series, refusing duplicates.
func (r *Registry) register(name, help string, k kind, labels []Label, s *series) {
	key := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, k, nil)
	if _, ok := f.series[key]; ok {
		panic(fmt.Sprintf("metrics: duplicate registration of %s%s", name, key))
	}
	s.labels = key
	f.series[key] = s
}

// family resolves (or creates) the family for name, enforcing kind and
// bucket-layout consistency.
func (r *Registry) family(name, help string, k kind, bounds []float64) *family {
	checkName(name)
	if f, ok := r.families[name]; ok {
		if f.kind != k {
			panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, k))
		}
		if k == histogramKind && !equalBounds(f.bounds, bounds) {
			panic(fmt.Sprintf("metrics: histogram %s requested with a different bucket layout", name))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   k,
		bounds: append([]float64(nil), bounds...),
		series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkName enforces the Prometheus metric/label name grammar.
func checkName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelSignature renders labels canonically: sorted by name, values escaped,
// "" for none. The signature doubles as the exposition text, so series
// ordering and formatting are deterministic by construction.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validName(l.Name) {
			panic(fmt.Sprintf("metrics: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeValue applies the exposition-format label value escapes.
func escapeValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp applies the exposition-format HELP text escapes.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatFloat renders a float in the shortest form that round-trips, the
// same form encoding/json uses — deterministic for a given value.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4). Families appear sorted by name, series sorted by label
// signature, each preceded by its # HELP and # TYPE lines. Values are read
// at render time; concurrent updates may land between lines, but every
// individual value is a consistent atomic read.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeText(b *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := f.series[k]
		switch f.kind {
		case counterKind:
			v := uint64(0)
			if s.counterFn != nil {
				v = s.counterFn()
			} else {
				v = s.counter.Value()
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name, s.labels, strconv.FormatUint(v, 10))
		case gaugeKind:
			v := 0.0
			if s.gaugeFn != nil {
				v = s.gaugeFn()
			} else {
				v = s.gauge.Value()
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name, s.labels, formatFloat(v))
		case histogramKind:
			s.hist.writeText(b, f.name, s.labels)
		}
	}
}

// writeText renders one histogram series: cumulative _bucket lines with le
// labels, then _sum and _count.
func (h *Histogram) writeText(b *strings.Builder, name, labels string) {
	// The le label joins any existing labels; it is always last, matching
	// the canonical rendering convention of labelSignature plus suffix.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket%sle=\"%s\"} %d\n", name, open, formatFloat(bound), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.Count())
}
