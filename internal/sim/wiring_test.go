package sim

import (
	"testing"

	"streamline/internal/mem"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/ipcp"
	"streamline/internal/trace"
)

// recordsOf builds a tiny in-memory trace.
func recordsOf(recs []trace.Record) trace.Trace { return trace.NewSlice(recs) }

func TestStoresDoNotStallTheCore(t *testing.T) {
	// A stream of store misses should retire at near store-buffer speed
	// even though each miss goes to DRAM.
	cfg := smallConfig(1)
	cfg.WarmupInstructions = 1000
	cfg.MeasureInstructions = 40_000
	var recs []trace.Record
	for i := 0; i < 20_000; i++ {
		recs = append(recs, trace.Record{
			PC: 1, Addr: mem.AddrOf(mem.Line(i * 7)), IsWrite: true, NonMem: 1,
		})
	}
	res := New(cfg).RunTrace(trace.NewLooping(recordsOf(recs)))
	if res.Cores[0].IPC < 1.0 {
		t.Errorf("store-only stream IPC = %.3f; store buffer not hiding misses", res.Cores[0].IPC)
	}
	if res.DRAM.Reads == 0 {
		t.Error("store misses generated no DRAM fills")
	}
}

func TestDirtyEvictionsReachDRAM(t *testing.T) {
	// Write a working set larger than the whole hierarchy, then overwrite
	// it: evictions must produce DRAM writes.
	cfg := smallConfig(1)
	cfg.WarmupInstructions = 1000
	cfg.MeasureInstructions = 100_000
	var recs []trace.Record
	for i := 0; i < 30_000; i++ {
		recs = append(recs, trace.Record{
			PC: 1, Addr: mem.AddrOf(mem.Line(i % 20_000)), IsWrite: true, NonMem: 1,
		})
	}
	res := New(cfg).RunTrace(trace.NewLooping(recordsOf(recs)))
	if res.DRAM.Writes == 0 {
		t.Error("no writebacks reached DRAM")
	}
}

func TestL2AndTemporalPrefetchersCoexist(t *testing.T) {
	cfg := smallConfig(1)
	cfg.WarmupInstructions = 200_000
	cfg.MeasureInstructions = 400_000
	cfg.L2Prefetcher = func() prefetch.Prefetcher { return ipcp.New(ipcp.DefaultConfig) }
	cfg.Temporal = streamlineFactory
	res := New(cfg).RunTrace(traceFor(t, "sphinx06", 31))
	if res.Cores[0].IPC <= 0 {
		t.Fatal("combined prefetchers broke the run")
	}
	if res.Cores[0].Meta.Lookups == 0 {
		t.Error("temporal prefetcher idle alongside the L2 prefetcher")
	}
}

func TestMultiCoreCoresProgressIndependently(t *testing.T) {
	// A fast core paired with a slow one: both must reach their budgets,
	// and the fast one must not be held to the slow one's IPC.
	cfg := smallConfig(2)
	cfg.WarmupInstructions = 50_000
	cfg.MeasureInstructions = 300_000
	sys := New(cfg)
	sys.SetTrace(0, traceFor(t, "bzip206", 32))  // cache-resident: fast
	sys.SetTrace(1, traceFor(t, "sphinx06", 32)) // dependent chase: slow
	res := sys.Run()
	if res.Cores[0].IPC < 4*res.Cores[1].IPC {
		t.Errorf("fast core IPC %.3f not well above slow core %.3f",
			res.Cores[0].IPC, res.Cores[1].IPC)
	}
	for i, c := range res.Cores {
		if c.Instructions < 295_000 {
			t.Errorf("core %d only measured %d instructions", i, c.Instructions)
		}
	}
}

func TestSharedLLCContentionVisibleInStats(t *testing.T) {
	cfg := smallConfig(2)
	cfg.WarmupInstructions = 50_000
	cfg.MeasureInstructions = 200_000
	sys := New(cfg)
	sys.SetTrace(0, traceFor(t, "pr", 33))
	sys.SetTrace(1, traceFor(t, "pr", 34))
	res := sys.Run()
	if res.LLC.DemandAccesses == 0 {
		t.Fatal("no LLC traffic")
	}
	if res.DRAM.Reads == 0 {
		t.Fatal("no DRAM traffic")
	}
}

func TestTemporalOfExposesPrefetcher(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Temporal = streamlineFactory
	sys := New(cfg)
	if sys.TemporalOf(0) == nil {
		t.Error("TemporalOf returned nil with a temporal prefetcher configured")
	}
	cfg2 := smallConfig(1)
	sys2 := New(cfg2)
	if p := sys2.TemporalOf(0); p == nil {
		t.Error("TemporalOf should return the Nil prefetcher, not nil")
	} else if p.Name() != "none" {
		t.Errorf("default temporal prefetcher = %q", p.Name())
	}
}

func TestSetTraceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetTrace out of range did not panic")
		}
	}()
	New(smallConfig(1)).SetTrace(3, recordsOf(nil))
}

func TestPrefetchRequestsToResidentLinesAreCheap(t *testing.T) {
	// Issuing prefetches for lines already in the L2 must not inflate
	// DRAM traffic.
	cfg := smallConfig(1)
	cfg.WarmupInstructions = 10_000
	cfg.MeasureInstructions = 100_000
	// A small cyclic working set: resident after the first lap.
	var recs []trace.Record
	for i := 0; i < 500; i++ {
		recs = append(recs, trace.Record{PC: 1, Addr: mem.AddrOf(mem.Line(i)), NonMem: 3})
	}
	cfg.Temporal = streamlineFactory
	res := New(cfg).RunTrace(trace.NewLooping(recordsOf(recs)))
	// Working set is 500 lines; DRAM reads should be within a few laps of
	// cold misses, not proportional to the full run.
	if res.DRAM.Reads > 5000 {
		t.Errorf("resident working set caused %d DRAM reads", res.DRAM.Reads)
	}
}
