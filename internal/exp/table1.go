package exp

import (
	"fmt"
	"math/rand"

	"streamline/internal/mem"
	"streamline/internal/meta"
)

// This file regenerates Table I (the partitioning-scheme comparison) and
// prints Table II (the simulated system parameters).

// schemeConfigs enumerates the eight {R,F}x{U,T}x{W,S} schemes over the
// stream format.
func schemeConfigs(maxBytes int) []meta.StoreConfig {
	var out []meta.StoreConfig
	for _, filtered := range []bool{false, true} {
		for _, tagged := range []bool{false, true} {
			for _, setPart := range []bool{false, true} {
				out = append(out, meta.StoreConfig{
					Format:         meta.Stream,
					StreamLength:   4,
					Filtered:       filtered,
					Tagged:         tagged,
					SetPartitioned: setPart,
					MetaWaysPerSet: 8,
					MaxBytes:       maxBytes,
				})
			}
		}
	}
	return out
}

// schemeRetention measures conflict behavior: insert a reused trigger
// population sized to a fraction of capacity, then measure how many remain
// findable. Low associativity shows up as lost entries.
func schemeRetention(cfg meta.StoreConfig, llcSets, llcWays, sizeBytes int, seed int64) float64 {
	bridge := &meta.NullBridge{Sets: llcSets, Ways: llcWays}
	st := meta.NewStore(cfg, bridge)
	if sizeBytes < st.SizeBytes() {
		st.Resize(sizeBytes)
	}
	capEntries := st.SizeBytes() / mem.LineSize * 4 // stream entries
	n := capEntries * 3 / 4                         // 75% load: only conflicts cause loss
	rng := rand.New(rand.NewSource(seed))
	triggers := make([]mem.Line, 0, n)
	for len(triggers) < n {
		tr := mem.Line(rng.Uint64() >> 16)
		if cfg.Filtered && st.WouldFilter(tr) {
			continue // measure conflicts, not filtering
		}
		triggers = append(triggers, tr)
	}
	for _, tr := range triggers {
		st.Insert(0, 1, meta.Entry{Trigger: tr, Targets: []mem.Line{1, 2, 3, 4}})
	}
	found := 0
	for _, tr := range triggers {
		if _, ok, _ := st.Lookup(0, 1, tr); ok {
			found++
		}
	}
	return float64(found) / float64(len(triggers))
}

// schemeResizeTraffic measures the blocks shuffled by one halving resize of
// a full store.
func schemeResizeTraffic(cfg meta.StoreConfig, llcSets, llcWays int, seed int64) uint64 {
	bridge := &meta.NullBridge{Sets: llcSets, Ways: llcWays}
	st := meta.NewStore(cfg, bridge)
	rng := rand.New(rand.NewSource(seed))
	n := st.SizeBytes() / mem.LineSize * 4
	for i := 0; i < n; i++ {
		st.Insert(0, 1, meta.Entry{Trigger: mem.Line(rng.Uint64() >> 16),
			Targets: []mem.Line{1, 2, 3, 4}})
	}
	return st.Resize(cfg.MaxBytes / 2)
}

func init() {
	register(Experiment{ID: "table1", Title: "Partitioning schemes",
		Run: func(r *Runner) []Table {
			llcSets, llcWays := r.Scale.LLCSets, 16
			mb := r.Scale.MetaBytes
			t := Table{ID: "table1",
				Title: "partitioning: retention at small/big partitions + repartition traffic",
				Columns: []string{"scheme", "retention-small", "retention-big",
					"resize-traffic(blocks)", "paper-verdict"}}
			verdicts := map[string]string{
				"RUW": "low assoc, expensive repart",
				"FUW": "low assoc, cheap repart",
				"RUS": "low assoc, expensive repart",
				"FUS": "low assoc, cheap repart",
				"RTW": "assoc ok big only, cheap",
				"FTW": "assoc ok big only, cheap",
				"RTS": "assoc ok, expensive repart",
				"FTS": "assoc ok, cheap (ours)",
			}
			type schemeRow struct {
				name       string
				small, big float64
				traffic    uint64
			}
			rows := ParallelMap(r, schemeConfigs(mb),
				func(cfg meta.StoreConfig) string {
					return "scheme|" + meta.NewStore(cfg, &meta.NullBridge{Sets: llcSets, Ways: llcWays}).SchemeName()
				},
				func(cfg meta.StoreConfig) schemeRow {
					st := meta.NewStore(cfg, &meta.NullBridge{Sets: llcSets, Ways: llcWays})
					return schemeRow{
						name:    st.SchemeName(),
						small:   schemeRetention(cfg, llcSets, llcWays, mb/8, r.Scale.Seed),
						big:     schemeRetention(cfg, llcSets, llcWays, mb, r.Scale.Seed),
						traffic: schemeResizeTraffic(cfg, llcSets, llcWays, r.Scale.Seed),
					}
				})
			for i, row := range rows {
				if row.name == "" {
					// A zero-valued row means the scheme's job failed; the
					// key still names the scheme, so recover the label.
					cfg := schemeConfigs(mb)[i]
					name := meta.NewStore(cfg, &meta.NullBridge{Sets: llcSets, Ways: llcWays}).SchemeName()
					t.AddRow(name, GapCell, GapCell, GapCell, verdicts[name])
					continue
				}
				t.AddRow(row.name, Pct(row.small), Pct(row.big),
					fmt.Sprint(row.traffic), verdicts[row.name])
			}
			t.Notes = append(t.Notes,
				"Table I: only FTS avoids low associativity at both sizes AND expensive repartitioning")
			return []Table{t}
		}})

	register(Experiment{ID: "table2", Title: "Simulated system parameters",
		Run: func(r *Runner) []Table {
			cfg := r.Scale.baseConfig(1)
			t := Table{ID: "table2", Title: "system configuration (" + r.Scale.Name + " scale)",
				Columns: []string{"component", "value"}}
			t.AddRow("core", fmt.Sprintf("%d-wide OoO, %d-entry ROB", cfg.CPU.Width, cfg.CPU.ROB))
			row := func(name string, c interface {
				SizeBytes() int
			}, extra string) {
				t.AddRow(name, fmt.Sprintf("%dKB, %s", c.SizeBytes()>>10, extra))
			}
			row("L1D", cfg.L1D, fmt.Sprintf("%d-way, %d-cycle, %d MSHRs, %d ports",
				cfg.L1D.Ways, cfg.L1D.Latency, cfg.L1D.MSHRs, cfg.L1D.Ports))
			row("L2", cfg.L2, fmt.Sprintf("%d-way, %d-cycle, %d MSHRs",
				cfg.L2.Ways, cfg.L2.Latency, cfg.L2.MSHRs))
			row("LLC/core", cfg.LLC, fmt.Sprintf("%d-way, %d-cycle, %d MSHRs",
				cfg.LLC.Ways, cfg.LLC.Latency, cfg.LLC.MSHRs))
			t.AddRow("DRAM", fmt.Sprintf("%d ch x %d ranks, %d banks/rank, tCAS/tRCD/tRP=%d cy, %d cy/line burst",
				cfg.DRAM.Channels, cfg.DRAM.RanksPerChannel, cfg.DRAM.BanksPerRank,
				cfg.DRAM.CAS, cfg.DRAM.TransferCycles))
			t.AddRow("metadata", fmt.Sprintf("max %dKB/core, %d permanent sets",
				r.Scale.MetaBytes>>10, r.Scale.MinSets))
			t.AddRow("run", fmt.Sprintf("warmup %dM + measure %dM instructions",
				r.Scale.Warmup/1e6, r.Scale.Measure/1e6))
			return []Table{t}
		}})
}

func init() {
	register(Experiment{ID: "ext-aliasing", Title: "Partial trigger tag aliasing (Section V-D5)",
		Run: func(r *Runner) []Table {
			t := Table{ID: "ext-aliasing",
				Title:   "aliased-insert rate vs partial tag width (tagged set-partitioning)",
				Columns: []string{"tag-bits", "aliased-inserts", "rate", "halving-ratio"}}
			llcSets := r.Scale.LLCSets
			const n = 120_000
			aliased := ParallelMap(r, []int{4, 5, 6, 7, 8, 10, 12},
				func(bits int) string { return fmt.Sprintf("aliasing|%d-bit", bits) },
				func(bits int) uint64 {
					st := meta.NewStore(meta.StoreConfig{
						Format: meta.Stream, StreamLength: 4,
						Tagged: true, Filtered: true, SetPartitioned: true,
						MetaWaysPerSet: 8, MaxBytes: r.Scale.MetaBytes,
						PartialTagBits: bits,
					}, &meta.NullBridge{Sets: llcSets, Ways: 16})
					rng := rand.New(rand.NewSource(r.Scale.Seed))
					for i := 0; i < n; i++ {
						tr := mem.Line(rng.Uint64() >> 16)
						st.Insert(0, 1, meta.Entry{Trigger: tr,
							Targets: []mem.Line{1, 2, 3, 4}})
					}
					return st.Stats.AliasedInserts
				})
			prev := 0.0
			for i, bits := range []int{4, 5, 6, 7, 8, 10, 12} {
				if r.Gapped(fmt.Sprintf("aliasing|%d-bit", bits)) {
					t.AddRow(fmt.Sprint(bits), GapCell, GapCell, GapCell)
					prev = 0 // the next ratio would compare across the gap
					continue
				}
				rate := float64(aliased[i]) / n
				ratio := "-"
				if prev > 0 && rate > 0 {
					ratio = F(rate / prev)
				}
				t.AddRow(fmt.Sprint(bits), fmt.Sprint(aliased[i]), Pct(rate), ratio)
				prev = rate
			}
			t.Notes = append(t.Notes,
				"paper: 6-bit partial tags alias 3.8% of correlations; each additional bit halves aliasing (ratio column should sit near 0.5)")
			return []Table{t}
		}})
}
