package core

import (
	"testing"

	"streamline/internal/mem"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
)

func testBridge() *meta.NullBridge {
	return &meta.NullBridge{Sets: 2048, Ways: 16, Latency: 20}
}

// feed drives a line sequence through the prefetcher as L2 misses from one
// PC and returns all requests issued.
func feed(p *Prefetcher, pc mem.PC, lines []mem.Line) []prefetch.Request {
	var all []prefetch.Request
	var buf []prefetch.Request
	for i, l := range lines {
		buf = p.Train(prefetch.Event{Now: uint64(i * 10), PC: pc, Addr: mem.AddrOf(l)}, buf[:0])
		all = append(all, buf...)
	}
	return all
}

func seq(start, n int) []mem.Line {
	out := make([]mem.Line, n)
	for i := range out {
		out[i] = mem.Line(start + i*7) // stride 7 lines: distinct, nonsequential
	}
	return out
}

func TestStreamEntriesAreStoredAndPrefetched(t *testing.T) {
	p := New(DefaultOptions(), testBridge())
	lap := seq(1000, 64)
	feed(p, 1, lap) // lap 1: trains
	reqs := feed(p, 1, lap)
	if len(reqs) == 0 {
		t.Fatal("no prefetches on the second lap of a repeating stream")
	}
	// The prefetched addresses must be future lines of the stream.
	want := map[mem.Addr]bool{}
	for _, l := range lap {
		want[mem.AddrOf(l)] = true
	}
	wrong := 0
	for _, r := range reqs {
		if !want[r.Addr] {
			wrong++
		}
	}
	if wrong > len(reqs)/10 {
		t.Errorf("%d/%d prefetches outside the stream", wrong, len(reqs))
	}
}

func TestRepeatingStreamReachesFullDegreeCoverage(t *testing.T) {
	p := New(DefaultOptions(), testBridge())
	lap := seq(5000, 256)
	feed(p, 1, lap)
	reqs := feed(p, 1, lap)
	// With stream length 4 and degree 4, a stable stream should produce
	// roughly one prefetch per access.
	if len(reqs) < 150 {
		t.Errorf("only %d prefetches for 256 accesses on a stable stream", len(reqs))
	}
}

func TestCompletedStreamsCounted(t *testing.T) {
	p := New(DefaultOptions(), testBridge())
	feed(p, 1, seq(100, 41))
	// 41 accesses: trigger + 4 targets per entry, chained: entries complete
	// every 4 accesses after the first.
	if p.Stats.CompletedStreams != 10 {
		t.Errorf("CompletedStreams = %d, want 10", p.Stats.CompletedStreams)
	}
}

func TestAlignStreams(t *testing.T) {
	// Figure 3/4: old [A; B C D E], fresh [B; C D X Y]. Aligned keeps A's
	// trigger with the updated stream: [A; B C D X], consuming C, D, X.
	A, B, C, D, E, X, Y := mem.Line(1), mem.Line(2), mem.Line(3), mem.Line(4), mem.Line(5), mem.Line(6), mem.Line(7)
	old := meta.Entry{Trigger: A, Targets: []mem.Line{B, C, D, E}}
	fresh := meta.Entry{Trigger: B, Targets: []mem.Line{C, D, X, Y}}
	aligned, consumed, ok := alignStreams(old, 1, fresh, 4, nil)
	if !ok {
		t.Fatal("alignment failed")
	}
	if aligned.Trigger != A {
		t.Errorf("aligned trigger = %d, want A", aligned.Trigger)
	}
	want := []mem.Line{B, C, D, X}
	for i, w := range want {
		if aligned.Targets[i] != w {
			t.Errorf("aligned target %d = %d, want %d", i, aligned.Targets[i], w)
		}
	}
	if consumed != 3 {
		t.Errorf("consumed = %d, want 3 (Y is leftover)", consumed)
	}
}

func TestAlignStreamsDeepOverlap(t *testing.T) {
	// Fresh trigger matches deep in the old entry: [A; B C D E] + [D; E F
	// G H] at pos 3 -> [A; B C D E], consuming only E.
	old := meta.Entry{Trigger: 1, Targets: []mem.Line{2, 3, 4, 5}}
	fresh := meta.Entry{Trigger: 4, Targets: []mem.Line{5, 6, 7, 8}}
	aligned, consumed, ok := alignStreams(old, 3, fresh, 4, nil)
	if !ok {
		t.Fatal("alignment failed")
	}
	want := []mem.Line{2, 3, 4, 5}
	for i, w := range want {
		if aligned.Targets[i] != w {
			t.Errorf("target %d = %d, want %d", i, aligned.Targets[i], w)
		}
	}
	if consumed != 1 {
		t.Errorf("consumed = %d, want 1", consumed)
	}
}

func TestAlignmentDetectsOverlap(t *testing.T) {
	p := New(DefaultOptions(), testBridge())
	// Repeat a stream with a phase shift so completed entries overlap
	// buffered ones: lap 1 aligns nothing (cold), later laps find overlaps.
	lap := seq(9000, 40)
	for i := 0; i < 6; i++ {
		feed(p, 1, lap)
	}
	if p.Stats.AlignmentOpportunities == 0 {
		t.Skip("no overlap arose in this pattern") // structure-dependent
	}
	if p.Stats.Alignments == 0 {
		t.Error("overlaps detected but never aligned")
	}
}

func TestDisableAlignment(t *testing.T) {
	o := DefaultOptions()
	o.DisableAlignment = true
	p := New(o, testBridge())
	lap := seq(9000, 40)
	for i := 0; i < 6; i++ {
		feed(p, 1, lap)
	}
	if p.Stats.Alignments != 0 {
		t.Errorf("alignments = %d with alignment disabled", p.Stats.Alignments)
	}
}

func TestDegreeControlDropsUnstablePC(t *testing.T) {
	o := DefaultOptions()
	o.InstabilityEpoch = 128
	p := New(o, testBridge())
	// Random-ish non-repeating lines: every prefetch attempt misses the
	// buffer and fetches (or fails); instability should drive degree to 1.
	var lines []mem.Line
	x := uint64(99991)
	for i := 0; i < 2000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		lines = append(lines, mem.Line(x>>20))
	}
	feed(p, 1, lines)
	tu := p.tuFor(1)
	if tu.degree != 1 {
		t.Errorf("degree on unstable PC = %d, want 1", tu.degree)
	}
}

func TestDegreeControlKeepsStablePC(t *testing.T) {
	o := DefaultOptions()
	o.InstabilityEpoch = 128
	p := New(o, testBridge())
	lap := seq(3000, 512)
	for i := 0; i < 4; i++ {
		feed(p, 1, lap)
	}
	tu := p.tuFor(1)
	if tu.degree < 3 {
		t.Errorf("degree on stable PC = %d, want >= 3", tu.degree)
	}
}

func TestRealignmentRecoversFilteredTriggers(t *testing.T) {
	o := DefaultOptions()
	o.FixedBytes = o.MetaBytes / 4 // 75% of triggers filtered
	p := New(o, testBridge())
	lap := seq(40000, 512)
	for i := 0; i < 3; i++ {
		feed(p, 1, lap)
	}
	if p.Stats.Realignments == 0 {
		t.Error("no realignments at quarter partition size")
	}

	o2 := o
	o2.DisableRealignment = true
	p2 := New(o2, testBridge())
	for i := 0; i < 3; i++ {
		feed(p2, 1, lap)
	}
	if p2.Stats.Realignments != 0 {
		t.Error("realignments occurred while disabled")
	}
	// Realignment should rescue inserts that filtering would drop.
	if p.store.Stats.FilteredInserts >= p2.store.Stats.FilteredInserts {
		t.Errorf("realignment did not reduce filtered inserts: %d vs %d",
			p.store.Stats.FilteredInserts, p2.store.Stats.FilteredInserts)
	}
}

func TestMetaBufferReducesStoreReads(t *testing.T) {
	run := func(bufSize int) uint64 {
		o := DefaultOptions()
		o.MetaBufferSize = bufSize
		b := testBridge()
		p := New(o, b)
		lap := seq(7000, 256)
		for i := 0; i < 4; i++ {
			feed(p, 1, lap)
		}
		return p.store.Stats.Reads
	}
	with, without := run(3), run(0)
	if with >= without {
		t.Errorf("metadata buffer did not reduce store reads: %d vs %d", with, without)
	}
}

func TestStatsAlignmentRate(t *testing.T) {
	s := Stats{AlignmentOpportunities: 10, Alignments: 7}
	if s.AlignmentRate() != 0.7 {
		t.Errorf("AlignmentRate = %v", s.AlignmentRate())
	}
	if (Stats{}).AlignmentRate() != 0 {
		t.Error("zero-opportunity rate should be 0")
	}
}

func TestAccuracyConsumerAndObservers(t *testing.T) {
	p := New(DefaultOptions(), testBridge())
	// Interface compliance and no-crash smoke.
	var _ prefetch.AccuracyConsumer = p
	var _ prefetch.MetaReporter = p
	var _ prefetch.LLCDataObserver = p
	p.ObserveAccuracy(0.9)
	p.ObserveLLCData(5, 1234)
}

func TestTPMockingjayLearnsCorrelationReuse(t *testing.T) {
	// PC 1's correlation recurs (short reuse distance); PC 2's never do.
	// The reuse-distance predictor must separate them.
	pol := NewTPMockingjay(1, 8).(*tpMockingjay)
	stable := meta.EntryAccess{PC: 1, Trigger: 100, FirstTarget: 101}
	for i := 0; i < 400; i++ {
		pol.Fill(0, i%4, stable)
		scan := meta.EntryAccess{PC: 2, Trigger: mem.Line(1000 + i), FirstTarget: mem.Line(2000 + i)}
		pol.Fill(0, 4+i%4, scan)
	}
	stableRD := pol.rdp[pol.pcSig(1)]
	scanRD := pol.rdp[pol.pcSig(2)]
	if stableRD < 0 || scanRD < 0 {
		t.Fatalf("RDP untrained: stable=%d scan=%d", stableRD, scanRD)
	}
	if scanRD <= stableRD*4 {
		t.Errorf("scan RD (%d) not well above stable RD (%d)", scanRD, stableRD)
	}
}

func TestTPMockingjayRetainsStableCorrelationsInStore(t *testing.T) {
	// Behavioral version of Figure 13c: a store managed by TP-Mockingjay
	// should keep reused correlations alive under churn better than SRRIP.
	run := func(pol meta.EntryPolicyFactory) float64 {
		cfg := meta.StoreConfig{
			Format: meta.Stream, StreamLength: 4,
			Tagged: true, Filtered: true, SetPartitioned: true,
			MetaWaysPerSet: 8, MaxBytes: 64 << 10, // small: pressure
			Policy: pol,
		}
		st := meta.NewStore(cfg, testBridge())
		stable := make([]mem.Line, 600)
		for i := range stable {
			stable[i] = mem.Line(10_000 + i*3)
		}
		churn := mem.Line(5_000_000)
		hits, lookups := 0, 0
		for lap := 0; lap < 30; lap++ {
			for i, tr := range stable {
				if lap > 0 {
					lookups++
					if _, ok, _ := st.Lookup(0, 1, tr); ok {
						hits++
					}
				}
				st.Insert(0, 1, meta.Entry{Trigger: tr,
					Targets: []mem.Line{tr + 1, tr + 2, tr + 3, tr + 4}})
				if i%2 == 0 { // interleaved never-reused churn
					st.Insert(0, 2, meta.Entry{Trigger: churn,
						Targets: []mem.Line{churn + 1, churn + 2, churn + 3, churn + 4}})
					churn += 10
				}
			}
		}
		return float64(hits) / float64(lookups)
	}
	tp := run(NewTPMockingjay)
	sr := run(meta.NewEntrySRRIP)
	if tp <= sr {
		t.Errorf("TP-Mockingjay stable hit rate %.3f <= SRRIP %.3f", tp, sr)
	}
}

func TestUnoptIsWayPartitionedSRRIP(t *testing.T) {
	p := New(UnoptOptions(), testBridge())
	if p.store.SchemeName() != "RUS" && p.store.SchemeName() != "RUW" {
		t.Errorf("unopt scheme = %s, want rearranged untagged", p.store.SchemeName())
	}
	if p.store.Config().Format != meta.Stream {
		t.Error("unopt must keep the stream format")
	}
}

func TestDefaultSchemeIsFTS(t *testing.T) {
	p := New(DefaultOptions(), testBridge())
	if got := p.store.SchemeName(); got != "FTS" {
		t.Errorf("default scheme = %s, want FTS", got)
	}
}

func TestDynamicPartitionRespectsMinimumSets(t *testing.T) {
	o := DefaultOptions()
	o.ResizeEpoch = 64 // decide quickly
	b := testBridge()
	p := New(o, b)
	// Pure data pressure, no reusable triggers: the partitioner should
	// shrink toward 0, floored at MinSets worth of bytes.
	x := uint64(7)
	for i := 0; i < 20000; i++ {
		x = x*6364136223846793005 + 1
		p.ObserveLLCData(int(x%2048), mem.Line(x>>16))
		p.maybeResize()
	}
	minBytes := o.MinSets * 8 * mem.LineSize
	if got := p.store.SizeBytes(); got > o.MetaBytes/2 || got < minBytes {
		t.Errorf("partition = %d bytes under pure data pressure, want in [%d, %d]",
			got, minBytes, o.MetaBytes/2)
	}
}
