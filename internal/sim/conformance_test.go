package sim_test

// The cross-prefetcher conformance suite: every prefetcher in the repository
// runs against every workload family with the invariant audit enabled, and
// must satisfy the contracts shared by all of them — line-aligned prefetch
// addresses and sound fill accounting (enforced by the audit), issued >=
// fills >= useful, accuracy and coverage within [0,1], bit-identical results
// across repeated runs, and zero audit violations.

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"streamline/internal/audit"
	"streamline/internal/check"
	"streamline/internal/core"
	"streamline/internal/dram"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/berti"
	"streamline/internal/prefetch/bingo"
	"streamline/internal/prefetch/ipcp"
	"streamline/internal/prefetch/spp"
	"streamline/internal/prefetch/stms"
	"streamline/internal/prefetch/stride"
	"streamline/internal/prefetch/triage"
	"streamline/internal/prefetch/triangel"
	"streamline/internal/sim"
	"streamline/internal/workloads"
)

// conformanceArm configures one prefetcher under test.
type conformanceArm struct {
	name  string
	apply func(cfg *sim.Config)
}

const confMetaBytes = 32 << 10

// conformanceArms covers every prefetcher in the repository: the two L1D
// spatial prefetchers, the three L2 spatial prefetchers, the three
// LLC-metadata temporal prefetchers, and the DRAM-metadata STMS baseline.
func conformanceArms() []conformanceArm {
	return []conformanceArm{
		{"stride", func(cfg *sim.Config) {
			cfg.L1DPrefetcher = func() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) }
		}},
		{"berti", func(cfg *sim.Config) {
			cfg.L1DPrefetcher = func() prefetch.Prefetcher { return berti.New(berti.DefaultConfig) }
		}},
		{"ipcp", func(cfg *sim.Config) {
			cfg.L2Prefetcher = func() prefetch.Prefetcher { return ipcp.New(ipcp.DefaultConfig) }
		}},
		{"bingo", func(cfg *sim.Config) {
			cfg.L2Prefetcher = func() prefetch.Prefetcher { return bingo.New(bingo.DefaultConfig) }
		}},
		{"spp", func(cfg *sim.Config) {
			cfg.L2Prefetcher = func() prefetch.Prefetcher { return spp.New(spp.DefaultConfig) }
		}},
		{"triage", func(cfg *sim.Config) {
			cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
				c := triage.DefaultConfig()
				c.MetaBytes = confMetaBytes
				return triage.New(c, b)
			}
		}},
		{"triangel", func(cfg *sim.Config) {
			cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
				c := triangel.DefaultConfig()
				c.MetaBytes = confMetaBytes
				return triangel.New(c, b)
			}
		}},
		{"streamline", func(cfg *sim.Config) {
			cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher {
				o := core.DefaultOptions()
				o.MetaBytes = confMetaBytes
				o.MinSets = 8
				return core.New(o, b)
			}
		}},
		{"stms", func(cfg *sim.Config) {
			cfg.TemporalDRAM = func(d *dram.DRAM) prefetch.Prefetcher {
				return stms.New(stms.DefaultConfig(), d)
			}
		}},
	}
}

// conformanceFamilies names one representative workload per access-pattern
// family: pointer chase, scan-then-chase, graph gather, graph frontier,
// sparse algebra, sparse streaming, and dense streaming.
var conformanceFamilies = []string{
	"mcf06", "omnetpp06", "pr", "bfs", "soplex06", "xz17", "libquantum06",
}

const conformanceSeed = 1

// runConformance executes one audited micro-run. Warmup is zero so the
// result counters cover the whole run — the fills>=useful contract only
// holds for whole-run statistics (a warmup-installed prefetch used in the
// measured phase would otherwise count as useful without a counted fill).
func runConformance(t *testing.T, arm conformanceArm, workload string) (sim.Result, *audit.Auditor) {
	res, aud, _ := runConformanceSys(t, arm, workload)
	return res, aud
}

func runConformanceSys(t *testing.T, arm conformanceArm, workload string) (sim.Result, *audit.Auditor, *sim.System) {
	t.Helper()
	sys, aud := buildConformanceSys(t, arm, workload)
	return sys.Run(), aud, sys
}

// buildConformanceSys constructs the audited micro-run system without running
// it, so callers can drive it either one-shot (Run) or stepped (Engine) —
// the stepped-equivalence suite in engine_test.go relies on both paths
// starting from identical systems.
func buildConformanceSys(t *testing.T, arm conformanceArm, workload string) (*sim.System, *audit.Auditor) {
	t.Helper()
	cfg := sim.DefaultConfig(1)
	cfg.LLC.Sets = 128
	cfg.L2.Sets = 64
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 30_000
	cfg.AuditInterval = 512
	arm.apply(&cfg)

	aud := audit.New(conformanceSeed)
	aud.Label = arm.name + "|" + workload
	cfg.Audit = aud

	w, err := workloads.Get(workload)
	if err != nil {
		t.Fatalf("workload %s: %v", workload, err)
	}
	sys := sim.New(cfg)
	sys.SetTrace(0, w.NewTrace(workloads.Scale{Footprint: 0.05}, conformanceSeed))
	return sys, aud
}

// metaDRAMTraffic reports DRAM traffic a temporal prefetcher's metadata
// machinery issued directly against the system DRAM. Only the STMS arm has
// any (its index and GHB live off-chip); LLC-partition metadata goes
// through the LLC bridge and never reaches DRAM.
func metaDRAMTraffic(sys *sim.System) check.MetaDRAMTraffic {
	p, ok := sys.TemporalOf(0).(*stms.Prefetcher)
	if !ok {
		return check.MetaDRAMTraffic{}
	}
	return check.MetaDRAMTraffic{
		Reads:  p.Stats.IndexReads + p.Stats.GHBReads,
		Writes: p.Stats.IndexWrites + p.Stats.GHBWrites,
	}
}

func TestConformance(t *testing.T) {
	base := map[string]uint64{}
	for _, w := range conformanceFamilies {
		res, aud, sys := runConformanceSys(t, conformanceArm{name: "none", apply: func(cfg *sim.Config) {}}, w)
		if n := aud.Total(); n != 0 {
			var sb strings.Builder
			aud.WriteReport(&sb)
			t.Fatalf("baseline %s: %d audit violations:\n%s", w, n, sb.String())
		}
		for _, v := range check.SimLaws(res, metaDRAMTraffic(sys), true) {
			t.Errorf("baseline %s: conservation law violated: %s", w, v)
		}
		if got := res.Cores[0].PrefetchesIssued; got != 0 {
			t.Fatalf("baseline %s issued %d prefetches, want 0", w, got)
		}
		base[w] = res.Cores[0].L2.DemandMisses
	}

	for _, arm := range conformanceArms() {
		arm := arm
		t.Run(arm.name, func(t *testing.T) {
			for _, w := range conformanceFamilies {
				w := w
				t.Run(w, func(t *testing.T) {
					res, aud, sys := runConformanceSys(t, arm, w)

					// Contract: zero invariant violations under audit.
					if n := aud.Total(); n != 0 {
						var sb strings.Builder
						aud.WriteReport(&sb)
						t.Errorf("%d audit violations:\n%s", n, sb.String())
					}
					if aud.Scans() == 0 {
						t.Error("audit performed zero scans; cadence is broken")
					}

					// Contract: conservation laws. Warmup is zero, so the
					// whole-run laws (prefetch lifecycle partition, exact
					// DRAM read ledger) apply on top of the window-safe ones.
					for _, v := range check.SimLaws(res, metaDRAMTraffic(sys), true) {
						t.Errorf("conservation law violated: %s", v)
					}

					// Contract: determinism — an identical second run must
					// produce bit-identical results.
					res2, _ := runConformance(t, arm, w)
					if !reflect.DeepEqual(res, res2) {
						t.Errorf("results differ between identical runs:\n%s", diffSummary(res, res2))
					}

					c := res.Cores[0]
					if c.Instructions < 30_000 {
						t.Errorf("ran %d instructions, want >= 30000", c.Instructions)
					}

					// Contract: fill accounting. Every prefetch fill at any
					// level traces to exactly one issued prefetch, and a
					// prefetched line must be filled before it can be useful.
					fills := c.L1D.PrefetchFills + c.L2.PrefetchFills
					if fills > c.PrefetchesIssued {
						t.Errorf("prefetch fills %d > issued %d", fills, c.PrefetchesIssued)
					}
					if c.L2.UsefulPrefetches > c.L2.PrefetchFills {
						t.Errorf("L2 useful %d > fills %d", c.L2.UsefulPrefetches, c.L2.PrefetchFills)
					}
					if c.L1D.UsefulPrefetches > c.L1D.PrefetchFills {
						t.Errorf("L1D useful %d > fills %d", c.L1D.UsefulPrefetches, c.L1D.PrefetchFills)
					}

					// Contract: derived metrics stay in range.
					if acc := c.PrefetchAccuracy(); acc < 0 || acc > 1 {
						t.Errorf("accuracy %f outside [0,1]", acc)
					}
					cov := coverage(base[w], c.L2.DemandMisses)
					if cov < 0 || cov > 1 {
						t.Errorf("coverage %f outside [0,1]", cov)
					}
				})
			}
		})
	}
}

// coverage mirrors the experiment harness's definition: the fraction of
// baseline L2 demand misses removed, floored at zero when the prefetcher
// adds misses.
func coverage(baseMisses, misses uint64) float64 {
	if baseMisses == 0 || misses >= baseMisses {
		return 0
	}
	return float64(baseMisses-misses) / float64(baseMisses)
}

// diffSummary renders the headline counters of two results for determinism
// failures.
func diffSummary(a, b sim.Result) string {
	f := func(r sim.Result) string {
		c := r.Cores[0]
		return fmt.Sprintf("instr=%d cycles=%d issued=%d l2fills=%d useful=%d dram=%d",
			c.Instructions, c.Cycles, c.PrefetchesIssued,
			c.L2.PrefetchFills, c.L2.UsefulPrefetches, r.DRAM.Reads)
	}
	return "  run1: " + f(a) + "\n  run2: " + f(b)
}
