// Package ptest is the shared harness behind each prefetcher package's
// conformance test. It drives a prefetcher over a deterministic synthetic
// access stream and checks the contracts every implementation in the
// repository must satisfy: line-aligned request addresses, a bounded degree
// per training event, determinism (two fresh instances fed the same stream
// emit identical request sequences), and — for temporal prefetchers that
// report metadata statistics — monotonically non-decreasing counters whose
// accounting identities hold at every step.
package ptest

import (
	"math/rand"
	"testing"

	"streamline/internal/cache"
	"streamline/internal/check"
	"streamline/internal/mem"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
)

// maxDegree is the sanity bound on requests per training event; no modeled
// prefetcher legitimately fans out wider on one access.
const maxDegree = 512

// streamBase keeps the synthetic stream's lines well away from address zero
// so negative-stride candidates cannot underflow.
const streamBase mem.Line = 1 << 20

// Stream returns the deterministic training stream: a sequential walk, a
// strided walk, and two laps of a pseudo-random pointer chase (the repeat is
// what gives temporal prefetchers correlations to replay), interleaved with
// occasional stores and prefetch-hit events the way the simulator would
// deliver them.
func Stream() []prefetch.Event {
	rng := rand.New(rand.NewSource(7))
	var evs []prefetch.Event
	now := uint64(0)
	emit := func(pc mem.PC, l mem.Line, hit, pfHit bool) {
		now += uint64(rng.Intn(20)) + 1
		evs = append(evs, prefetch.Event{
			Now: now, PC: pc, Addr: mem.AddrOf(l) + mem.Addr(rng.Intn(mem.LineSize)),
			IsStore: rng.Intn(16) == 0, Hit: hit, PrefetchHit: pfHit,
		})
	}
	// Sequential walk.
	for i := 0; i < 256; i++ {
		emit(0x400100, streamBase+mem.Line(i), i%4 != 0, false)
	}
	// Strided walk (stride 3 lines).
	for i := 0; i < 256; i++ {
		emit(0x400200, streamBase+4096+mem.Line(3*i), false, false)
	}
	// Pointer chase: a fixed permutation walk over 512 lines, two laps.
	perm := rng.Perm(512)
	for lap := 0; lap < 2; lap++ {
		for _, p := range perm {
			// Second-lap accesses occasionally arrive as prefetch hits,
			// the temporal prefetchers' chaining signal.
			emit(0x400300, streamBase+8192+mem.Line(p), false, lap == 1 && rng.Intn(2) == 0)
		}
	}
	return evs
}

// metaCounters flattens the identity-checkable counters of a meta.Stats.
func metaCounters(st meta.Stats) []uint64 {
	return []uint64{
		st.Lookups, st.TriggerHits, st.Inserts, st.Updates, st.Reads,
		st.Writes, st.RearrangeReads, st.RearrangeWrites, st.FilteredInserts,
		st.FilteredLookups, st.AliasedInserts, st.Evictions,
	}
}

// Exercise runs the shared conformance checks against prefetchers built by
// mk. Each call to mk must return a fresh, identically configured instance.
func Exercise(t *testing.T, mk func() prefetch.Prefetcher) {
	t.Helper()
	evs := Stream()
	p1, p2 := mk(), mk()
	var buf1, buf2 []prefetch.Request
	var prev []uint64
	for i, ev := range evs {
		buf1 = p1.Train(ev, buf1[:0])
		buf2 = p2.Train(ev, buf2[:0])

		if len(buf1) > maxDegree {
			t.Fatalf("event %d: %d requests from one event (degree bound %d)",
				i, len(buf1), maxDegree)
		}
		for _, r := range buf1 {
			if mem.Offset(r.Addr) != 0 {
				t.Fatalf("event %d: unaligned prefetch address %#x", i, uint64(r.Addr))
			}
			if r.Addr == 0 || r.Addr >= 1<<44 {
				t.Fatalf("event %d: prefetch address %#x outside the plausible range",
					i, uint64(r.Addr))
			}
		}

		if len(buf1) != len(buf2) {
			t.Fatalf("event %d: instance 1 emitted %d requests, instance 2 emitted %d",
				i, len(buf1), len(buf2))
		}
		for j := range buf1 {
			if buf1[j] != buf2[j] {
				t.Fatalf("event %d request %d: %+v vs %+v (nondeterministic)",
					i, j, buf1[j], buf2[j])
			}
		}

		if mr, ok := p1.(prefetch.MetaReporter); ok && i%64 == 63 {
			st := mr.MetaStats()
			cur := metaCounters(st)
			for k, v := range cur {
				if prev != nil && v < prev[k] {
					t.Fatalf("event %d: metadata counter %d decreased %d -> %d",
						i, k, prev[k], v)
				}
			}
			prev = cur
			if st.Reads+st.FilteredLookups != st.Lookups {
				t.Fatalf("event %d: reads %d + filtered %d != lookups %d",
					i, st.Reads, st.FilteredLookups, st.Lookups)
			}
			if st.Writes != st.Inserts+st.Updates {
				t.Fatalf("event %d: writes %d != inserts %d + updates %d",
					i, st.Writes, st.Inserts, st.Updates)
			}
			if st.TriggerHits > st.Lookups {
				t.Fatalf("event %d: trigger hits %d > lookups %d",
					i, st.TriggerHits, st.Lookups)
			}
		}
	}
	if p1.Name() == "" {
		t.Fatal("prefetcher reports an empty name")
	}
}

// Oracle replays the conformance stream through a differentially-shadowed
// cache: demand events perform lookups and fills, and the prefetcher's
// emitted requests are resolved the way the simulator's issue path would —
// duplicate-probe first, then a prefetch fill attributed to the engine.
// Every hit/miss/victim decision is verified in lockstep against the
// reference LRU model (internal/check), and the complete cache state is
// compared periodically. The point of running this per prefetcher is
// traffic shape: each engine exercises the cache with its own burst degree,
// address spread, and re-reference mix, reaching interleavings a uniform
// random stream does not.
func Oracle(t *testing.T, mk func() prefetch.Prefetcher) {
	t.Helper()
	sh := check.NewShadow(cache.Config{Name: "oracle", Sets: 64, Ways: 8, Latency: 12})
	p := mk()
	var buf []prefetch.Request
	for i, ev := range Stream() {
		a := mem.Access{PC: ev.PC, Addr: ev.Addr, Kind: mem.Load, Core: 0}
		if ev.IsStore {
			a.Kind = mem.Store
		}
		if !sh.Lookup(ev.Now, a).Hit {
			sh.Fill(a, ev.Now+40, cache.SrcDemand)
		}
		buf = p.Train(ev, buf[:0])
		for _, r := range buf {
			pa := mem.Access{Addr: r.Addr, Kind: mem.Prefetch, Core: 0}
			if sh.Probe(pa.Line()) {
				continue // duplicate: the simulator drops it untouched
			}
			sh.Fill(pa, ev.Now+r.Delay+100, cache.SrcL2)
		}
		if i%128 == 127 {
			sh.CheckState()
		}
	}
	sh.CheckState()
	for _, m := range sh.Mismatches() {
		t.Errorf("differential divergence after %d ops: %s", sh.Ops(), m)
	}
}
