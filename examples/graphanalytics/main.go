// Graph analytics: the GAP-style scenario from the paper's evaluation.
// Four graph workloads run on a multi-core system, comparing the baseline,
// Triangel, and Streamline — the setting where the paper reports its
// largest wins (Figure 9's GAP columns and Figure 10's multi-core results).
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"

	"streamline/internal/core"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/stride"
	"streamline/internal/prefetch/triangel"
	"streamline/internal/sim"
	"streamline/internal/workloads"
)

const (
	metaBytes = 128 << 10
	footprint = 0.1
)

func baseConfig(cores int) sim.Config {
	cfg := sim.DefaultConfig(cores)
	cfg.L2.Sets = 128
	cfg.LLC.Sets = 256
	cfg.WarmupInstructions = 300_000
	cfg.MeasureInstructions = 800_000
	cfg.L1DPrefetcher = func() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) }
	// The scaled-down hierarchy needs proportionally scaled memory-system
	// parallelism (see exp.Scale.Bandwidth) or everything is DRAM-bound.
	cfg.DRAM.Channels *= 4
	return cfg
}

func run(cores int, names []string, temporal sim.TemporalFactory) sim.Result {
	cfg := baseConfig(cores)
	cfg.Temporal = temporal
	sys := sim.New(cfg)
	for c := 0; c < cores; c++ {
		w, err := workloads.Get(names[c%len(names)])
		if err != nil {
			panic(err)
		}
		sys.SetTrace(c, w.NewTrace(workloads.Scale{Footprint: footprint}, int64(100+c)))
	}
	return sys.Run()
}

func sumIPC(r sim.Result) float64 {
	total := 0.0
	for _, c := range r.Cores {
		total += c.IPC
	}
	return total
}

func main() {
	graphs := []string{"pr", "bfs", "cc", "sssp"}
	cores := 4

	fmt.Printf("Graph analytics on %d cores: %v\n\n", cores, graphs)

	base := run(cores, graphs, nil)
	tri := run(cores, graphs, func(b meta.Bridge) prefetch.Prefetcher {
		c := triangel.DefaultConfig()
		c.MetaBytes = metaBytes
		return triangel.New(c, b)
	})
	str := run(cores, graphs, func(b meta.Bridge) prefetch.Prefetcher {
		o := core.DefaultOptions()
		o.MetaBytes = metaBytes
		o.MinSets = 16
		return core.New(o, b)
	})

	fmt.Printf("%-12s %10s %10s %10s\n", "core", "baseline", "triangel", "streamline")
	for i := range base.Cores {
		fmt.Printf("%-12s %10.4f %10.4f %10.4f\n",
			graphs[i%len(graphs)], base.Cores[i].IPC, tri.Cores[i].IPC, str.Cores[i].IPC)
	}
	fmt.Printf("%-12s %10.4f %10.4f %10.4f\n", "sum", sumIPC(base), sumIPC(tri), sumIPC(str))
	fmt.Printf("\nthroughput speedup: triangel %.3fx, streamline %.3fx\n",
		sumIPC(tri)/sumIPC(base), sumIPC(str)/sumIPC(base))

	var triT, strT uint64
	for i := range tri.Cores {
		triT += tri.Cores[i].Meta.Traffic()
		strT += str.Cores[i].Meta.Traffic()
	}
	fmt.Printf("metadata traffic (blocks): triangel %d, streamline %d (%.0f%%)\n",
		triT, strT, 100*float64(strT)/float64(triT))
	fmt.Println("\nthe stream-based format holds 33% more correlations per block, which")
	fmt.Println("is why streamline covers more of the graphs' gather misses (Fig 9/10).")
}
