package sim

// This file defines the kernel benchmark scenarios: small, representative
// simulations used to track the per-trace-record cost of the simulation
// kernel (System.step -> demandAccess -> cache Lookup/Fill -> dram.Access ->
// prefetcher Train). The same scenarios back the BenchmarkKernel suite in
// bench_test.go and the cmd/bench baseline writer, so committed BENCH_*.json
// files and `go test -bench=Kernel` numbers are directly comparable.

import (
	"fmt"

	"streamline/internal/core"
	"streamline/internal/meta"
	"streamline/internal/prefetch"
	"streamline/internal/prefetch/stride"
	"streamline/internal/prefetch/triangel"
	"streamline/internal/trace"
	"streamline/internal/workloads"
)

// KernelScenario is one representative kernel benchmark configuration: a
// core count, a workload per core, and instruction budgets on the scaled
// test hierarchy (the same ~8x-reduced geometry the sim tests use).
type KernelScenario struct {
	// Name identifies the scenario in benchmark output and BENCH_*.json.
	Name string
	// Cores is the simulated core count.
	Cores int
	// Workloads assigns one workload per core.
	Workloads []string
	// Footprint scales the workloads' working sets (0.1 matches the
	// scaled-down hierarchy).
	Footprint float64
	// Seed makes the generated traces reproducible.
	Seed int64
	// Warmup and Measure are the per-core instruction budgets.
	Warmup, Measure uint64
	// Temporal selects the temporal prefetcher: "streamline", "triangel",
	// or "" for none. Non-empty scenarios also attach a stride L1D
	// prefetcher so the full Train/issuePrefetch path is exercised.
	Temporal string
}

// KernelScenarios returns the representative kernel benchmark set: a
// prefetcher-free single-core baseline (pure hierarchy cost), the paper's
// two temporal prefetchers single-core, and a 4-core multi-programmed mix
// (scheduler and shared-resource cost).
func KernelScenarios() []KernelScenario {
	return []KernelScenario{
		{
			Name: "1core-base-sphinx06", Cores: 1,
			Workloads: []string{"sphinx06"}, Footprint: 0.1, Seed: 1,
			Warmup: 50_000, Measure: 200_000,
		},
		{
			Name: "1core-streamline-sphinx06", Cores: 1,
			Workloads: []string{"sphinx06"}, Footprint: 0.1, Seed: 1,
			Warmup: 50_000, Measure: 200_000, Temporal: "streamline",
		},
		{
			Name: "1core-triangel-mcf06", Cores: 1,
			Workloads: []string{"mcf06"}, Footprint: 0.1, Seed: 1,
			Warmup: 50_000, Measure: 200_000, Temporal: "triangel",
		},
		{
			Name: "4core-streamline-mix", Cores: 4,
			Workloads: []string{"sphinx06", "mcf06", "bfs", "libquantum06"},
			Footprint: 0.1, Seed: 1,
			Warmup: 25_000, Measure: 100_000, Temporal: "streamline",
		},
	}
}

// KernelScenarioByName returns the named scenario.
func KernelScenarioByName(name string) (KernelScenario, error) {
	for _, k := range KernelScenarios() {
		if k.Name == name {
			return k, nil
		}
	}
	return KernelScenario{}, fmt.Errorf("sim: unknown kernel scenario %q", name)
}

// kernelConfig mirrors the scaled-down test hierarchy (smallConfig in the
// sim tests): the 0.1-footprint workloads stress it the way the full-size
// workloads stress the Table II hierarchy.
func (k KernelScenario) kernelConfig() Config {
	cfg := DefaultConfig(k.Cores)
	cfg.L2.Sets = 128  // 64KB
	cfg.LLC.Sets = 256 // 256KB per core
	cfg.WarmupInstructions = k.Warmup
	cfg.MeasureInstructions = k.Measure
	switch k.Temporal {
	case "streamline":
		cfg.L1DPrefetcher = func() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) }
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher { return core.New(core.DefaultOptions(), b) }
	case "triangel":
		cfg.L1DPrefetcher = func() prefetch.Prefetcher { return stride.New(stride.DefaultConfig) }
		cfg.Temporal = func(b meta.Bridge) prefetch.Prefetcher { return triangel.New(triangel.DefaultConfig(), b) }
	}
	return cfg
}

// countingTrace counts the records the kernel consumes, so benchmark results
// can be normalized per record rather than per run.
type countingTrace struct {
	inner trace.Trace
	n     *uint64
}

func (c countingTrace) Next() (trace.Record, bool) {
	r, ok := c.inner.Next()
	if ok {
		*c.n++
	}
	return r, ok
}

func (c countingTrace) Reset() { c.inner.Reset() }

// Run executes the scenario once, returning the simulation result and the
// number of trace records the kernel executed (warmup plus measurement).
func (k KernelScenario) Run() (Result, uint64, error) {
	sys := New(k.kernelConfig())
	var records uint64
	for c := 0; c < k.Cores; c++ {
		w, err := workloads.Get(k.Workloads[c])
		if err != nil {
			return Result{}, 0, err
		}
		tr := w.NewTrace(workloads.Scale{Footprint: k.Footprint}, k.Seed+int64(c))
		sys.SetTrace(c, countingTrace{inner: tr, n: &records})
	}
	return sys.Run(), records, nil
}
