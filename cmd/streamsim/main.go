// Command streamsim runs one workload through one system configuration and
// prints its statistics — the quick way to poke at the simulator.
//
// Usage:
//
//	streamsim -workload sphinx06 -temporal streamline
//	streamsim -workload pr -l1 stride -temporal triangel -cores 4
//	streamsim -workload mcf06 -temporal streamline -telemetry out.jsonl -timeline
//	streamsim -list
//
// The configuration knobs are the same Spec cmd/streamd serves over HTTP
// (internal/serve), so a CLI run and a daemon request with equal knobs
// produce identical results. All flags are validated up front: a bad enum
// value or out-of-range knob exits 2 listing the allowed values, before any
// simulation state is built.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	"streamline/internal/audit"
	"streamline/internal/serve"
	"streamline/internal/sim"
	"streamline/internal/telemetry"
	"streamline/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "sphinx06", "workload name")
		l1        = flag.String("l1", serve.DefaultL1, "L1D prefetcher: none|stride|berti")
		l2        = flag.String("l2", serve.DefaultL2, "L2 prefetcher: none|ipcp|bingo|spp")
		temporal  = flag.String("temporal", serve.DefaultTemporal, "temporal prefetcher: none|triage|triangel|streamline|streamline-bypass|stms")
		cores     = flag.Int("cores", serve.DefaultCores, "core count (same workload on every core)")
		footprint = flag.Float64("footprint", serve.DefaultFootprint, "workload footprint scale")
		warmup    = flag.Uint64("warmup", serve.DefaultWarmup, "warmup instructions")
		measure   = flag.Uint64("measure", serve.DefaultMeasure, "measured instructions")
		metaKB    = flag.Int("meta-kb", serve.DefaultMetaKB, "max metadata partition per core (KB)")
		llcSets   = flag.Int("llc-sets", serve.DefaultLLCSets, "LLC sets per core (256=256KB, 2048=2MB)")
		seed      = flag.Int64("seed", serve.DefaultSeed, "workload seed")
		list      = flag.Bool("list", false, "list workloads and exit")
		check     = flag.Bool("check", false, "enable the runtime invariant audit; exit 1 on violations")

		telOut     = flag.String("telemetry", "", "write interval samples and events as JSONL to this file")
		telLevel   = flag.String("telemetry-level", "info", "minimum event severity to record: debug|info|warn")
		sampleIvl  = flag.Uint64("sample-interval", 100_000, "measured instructions between telemetry samples per core (0 disables sampling)")
		timeline   = flag.Bool("timeline", false, "render the per-interval IPC/MPKI timeline on stderr after the run")
		jsonDest   = flag.String("json", "", "write the final result as JSON to this file ('-' for stdout)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range workloads.All() {
			irr := ""
			if w.Irregular {
				irr = " (irregular)"
			}
			fmt.Printf("  %-14s %s%s\n", w.Name, w.Suite, irr)
		}
		return
	}

	// Every knob is validated up front through the same Spec the daemon
	// serves; a bad value exits 2 naming the allowed ones.
	sp := serve.Spec{
		Workload:  *workload,
		L1:        *l1,
		L2:        *l2,
		Temporal:  *temporal,
		Cores:     *cores,
		Footprint: *footprint,
		Warmup:    *warmup,
		Measure:   *measure,
		MetaKB:    *metaKB,
		LLCSets:   *llcSets,
		Seed:      *seed,
	}
	if err := sp.Normalize(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sev, err := telemetry.ParseSeverity(*telLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg, err := sp.Config()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// os.Exit skips defers, so every exit after this point goes through
	// exit() to flush the profiles.
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	var aud *audit.Auditor
	if *check {
		aud = audit.New(sp.Seed)
		aud.Label = fmt.Sprintf("%s|%s|%s|%s|x%d", sp.Workload, sp.L1, sp.L2, sp.Temporal, sp.Cores)
		cfg.Audit = aud
	}

	// Telemetry: a sink only when an output file is requested; the timeline
	// works sink-less by retaining interval records in memory. Both write
	// nothing to stdout, so instrumented runs print identical statistics.
	var col *telemetry.Collector
	var telFile *os.File
	if *telOut != "" || *timeline {
		var sink *telemetry.Sink
		if *telOut != "" {
			f, err := os.Create(*telOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(1)
			}
			telFile = f
			sink = telemetry.NewSink(f)
			sink.SetMinSeverity(sev)
		}
		col = telemetry.New(sink, *sampleIvl)
		if *timeline {
			col.KeepIntervals()
		}
		cfg.Telemetry = col
	}

	sys, err := sp.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}

	// Drive the engine in epochs so SIGINT stops the run at the next epoch
	// boundary instead of being ignored for the rest of a long simulation.
	// Stepping does not perturb the statistics: a completed run is
	// bit-identical to one-shot sys.Run().
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	eng := sys.Engine()
	for !eng.Done() {
		if ctx.Err() != nil {
			p := eng.Progress()
			fmt.Fprintf(os.Stderr, "canceled after %d records (%.1f%% of measure)\n",
				p.Records, 100*p.MeasuredFraction())
			exit(130)
		}
		eng.Step(sim.DefaultEpoch)
	}
	stopSignals()
	res := eng.Finish()

	fmt.Printf("workload=%s cores=%d l1=%s l2=%s temporal=%s\n",
		sp.Workload, sp.Cores, sp.L1, sp.L2, sp.Temporal)
	for i, c := range res.Cores {
		fmt.Printf("core %d: IPC %.4f  (%d instr, %d cycles)\n", i, c.IPC, c.Instructions, c.Cycles)
		fmt.Printf("  L1D: %.1f%% hit, %d misses     L2: %.1f%% hit, %d misses (%.2f MPKI)\n",
			c.L1D.DemandHitRate()*100, c.L1D.DemandMisses,
			c.L2.DemandHitRate()*100, c.L2.DemandMisses, c.L2MPKI())
		if c.PrefetchesIssued > 0 {
			fmt.Printf("  prefetch: %d issued, %d L2 fills, %d useful (%.1f%% accuracy)\n",
				c.PrefetchesIssued, c.L2.PrefetchFills, c.L2.UsefulPrefetches,
				c.PrefetchAccuracy()*100)
		}
		for _, p := range c.Prefetchers {
			if p.Issued == 0 && p.Fills == 0 {
				continue
			}
			fmt.Printf("    %-8s %d issued (%d dup-dropped), %d fills: %d timely + %d late useful, %d evicted unused (%.1f%% accuracy)\n",
				p.Source+":", p.Issued, p.DroppedDuplicate, p.Fills,
				p.UsefulTimely, p.UsefulLate, p.EvictedUnused, p.Accuracy()*100)
		}
		if c.Meta.Lookups > 0 {
			fmt.Printf("  metadata: %d lookups (%.1f%% trigger hit), %d reads, %d writes, %d rearrange blocks, %d filtered\n",
				c.Meta.Lookups, c.Meta.TriggerHitRate()*100, c.Meta.Reads, c.Meta.Writes,
				c.Meta.RearrangeReads+c.Meta.RearrangeWrites, c.Meta.FilteredInserts)
		}
	}
	fmt.Printf("LLC: %.1f%% demand hit, %d meta reads, %d meta writes\n",
		res.LLC.DemandHitRate()*100, res.LLC.MetaReads, res.LLC.MetaWrites)
	fmt.Printf("DRAM: %d reads, %d writes, %.1f%% row hits, %d queue cycles\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.RowHitRate()*100, res.DRAM.QueueCycles)

	if *timeline {
		col.Timeline(os.Stderr)
	}
	if err := col.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
		exit(1)
	}
	if telFile != nil {
		if err := telFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			exit(1)
		}
	}

	if *jsonDest != "" {
		// The -json document is the daemon's response document, so CLI and
		// HTTP results of the same knobs compare byte-for-byte.
		if err := writeJSON(*jsonDest, serve.BuildResult(sp, res)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}

	if aud != nil {
		// Audit output goes to stderr so stdout stays byte-identical with
		// unaudited runs.
		if aud.Total() > 0 {
			aud.WriteReport(os.Stderr)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "audit: clean (%d scans)\n", aud.Scans())
	}
	stopProfiles()
}

func writeJSON(dest string, res serve.Result) error {
	var w io.Writer = os.Stdout
	if dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// startProfiles begins CPU profiling and arranges a heap profile, returning
// a stop function that must run before every exit (os.Exit skips defers).
func startProfiles(cpuDest, memDest string) (func(), error) {
	var cpuFile *os.File
	if cpuDest != "" {
		f, err := os.Create(cpuDest)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memDest != "" {
			f, err := os.Create(memDest)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
